# Stdlib-only Go module; no codegen. `make check` is the full gate the
# test suite is expected to pass, including the race detector (the
# concurrent build pipeline and the HTTP server are exercised under -race)
# and a short pass over each fuzz target's seed corpus. `make bench` is
# the serving-path load benchmark — deliberately outside the check gate:
# it measures, it does not pass/fail. `make fuzz` runs the coverage-guided
# fuzzers for FUZZTIME each (longer runs: make fuzz FUZZTIME=5m).

GO ?= go
FUZZTIME ?= 10s

# Fuzz targets live next to the parsers they attack; each entry is
# "package:Target" (go test allows one -fuzz pattern per package run).
FUZZ_TARGETS = \
	./internal/xmlparse:FuzzParse \
	./internal/labeltree:FuzzQuerySyntax \
	./internal/labeltree:FuzzKeyDecode \
	./internal/lattice:FuzzFrozenLoad \
	./internal/lattice:FuzzCompressedLoad \
	./internal/lattice:FuzzDeltaMerge \
	./internal/fleet:FuzzTenantName \
	./internal/serve:FuzzQueryEndpoint

.PHONY: check vet build test race fuzz fuzz-short bench benchcore microbench

check: vet build race fuzz-short

fuzz:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; name=$${t##*:}; \
		echo "fuzz $$name ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run=NONE -fuzz="^$$name$$" -fuzztime=$(FUZZTIME) $$pkg || exit 1; \
	done

# fuzz-short replays each target's seed corpus only (no new input
# generation): fast enough for the check gate, still catches regressions
# on every previously interesting input checked into testdata.
fuzz-short:
	$(GO) test -run='^Fuzz' ./internal/xmlparse ./internal/labeltree ./internal/lattice ./internal/fleet ./internal/serve

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench seeds the serving perf trajectory: generate a synthetic corpus,
# start an in-process server, drive a short closed-loop load run —
# single-query, then the same workload batched 32 queries per POST
# /v1/estimate/batch request — and write BENCH_serve.json (achieved
# QPS, p50/p95/p99, server-side metrics, batched vs single throughput).
# -methods all additionally sweeps every registered estimator in-process,
# adding the accuracy×latency matrix (q-error vs exact counts, per-method
# throughput, ensemble divergence counts) to the report. -replicas adds
# the 1→N shard-replica scaling matrix (capacity-bounded replicas, one
# per shard, driven round-robin; linear_fraction ≈ 1.0 is perfect fleet
# scaling) and -tenants drives the workload through the multi-tenant
# /v1/t routes. -backends reloads the summary through both snapshot
# forms (frozen TLAT, compressed TLCZ) and adds the size×throughput
# comparison. -ingest runs a mixed read/write pass — readers estimating
# while a writer streams documents through the zero-downtime ingest
# pipeline with sub-second refreezes — and adds its read latency and
# write/backpressure counts. -query adds the plan-vs-naive twig
# execution matrix over the four Table 3 profiles (candidate reduction,
# p50 latency both ways, calibration) plus a served /v1/query count-only
# mix over the full HTTP path. The report schema is regression-tested in
# cmd/treelattice/loadbench_test.go.
bench:
	$(GO) run ./cmd/treelattice loadbench -gen xmark -scale 20000 \
		-duration 3s -warmup 500ms -seed 1 -batch 32 -methods all \
		-replicas 1,2,4 -tenants 2 -backends -ingest -query \
		-out BENCH_serve.json

# benchcore is the build/estimate-path counterpart of `make bench`: it
# runs the canonical-keying microbenchmarks (BenchmarkKey and the
# pre-optimization string-encoder reference) plus the paper macro
# benchmarks (Table 3 lattice construction, Figure 9 response time) and
# writes BENCH_core.json with ns/op, B/op, and allocs/op per result.
benchcore:
	TWIG_BENCH_SCALE=2000 $(GO) run ./cmd/benchcore -benchtime 1s -out BENCH_core.json

microbench:
	$(GO) test -bench . -benchtime 1x ./...
