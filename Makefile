# Stdlib-only Go module; no codegen. `make check` is the full gate the
# test suite is expected to pass, including the race detector (the
# concurrent build pipeline and the HTTP server are exercised under -race).
# `make bench` is the serving-path load benchmark — deliberately outside
# the check gate: it measures, it does not pass/fail.

GO ?= go

.PHONY: check vet build test race bench benchcore microbench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench seeds the serving perf trajectory: generate a synthetic corpus,
# start an in-process server, drive a short closed-loop load run, and
# write BENCH_serve.json (achieved QPS, p50/p95/p99, server-side
# metrics). The report schema is regression-tested in
# cmd/treelattice/loadbench_test.go.
bench:
	$(GO) run ./cmd/treelattice loadbench -gen xmark -scale 20000 \
		-duration 3s -warmup 500ms -seed 1 -out BENCH_serve.json

# benchcore is the build/estimate-path counterpart of `make bench`: it
# runs the canonical-keying microbenchmarks (BenchmarkKey and the
# pre-optimization string-encoder reference) plus the paper macro
# benchmarks (Table 3 lattice construction, Figure 9 response time) and
# writes BENCH_core.json with ns/op, B/op, and allocs/op per result.
benchcore:
	TWIG_BENCH_SCALE=2000 $(GO) run ./cmd/benchcore -benchtime 1s -out BENCH_core.json

microbench:
	$(GO) test -bench . -benchtime 1x ./...
