# Stdlib-only Go module; no codegen. `make check` is the full gate the
# test suite is expected to pass, including the race detector (the
# concurrent build pipeline and the HTTP server are exercised under -race).

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...
