// Command twigbench runs the full evaluation suite and prints the report
// reproducing every table and figure of the paper (see DESIGN.md for the
// experiment index).
//
// Usage:
//
//	twigbench [-scale N] [-k K] [-seed S] [-persize Q] [-budget BYTES]
package main

import (
	"flag"
	"fmt"
	"os"

	"treelattice/internal/experiments"
)

func main() {
	def := experiments.DefaultConfig()
	scale := flag.Int("scale", def.Scale, "approximate element count per generated dataset")
	k := flag.Int("k", def.K, "lattice level")
	seed := flag.Int64("seed", def.Seed, "generation seed")
	perSize := flag.Int("persize", def.PerSize, "queries per workload size")
	budget := flag.Int("budget", def.SketchBudget, "TreeSketches memory budget in bytes")
	flag.Parse()

	cfg := def
	cfg.Scale = *scale
	cfg.K = *k
	cfg.Seed = *seed
	cfg.PerSize = *perSize
	cfg.SketchBudget = *budget

	if err := experiments.NewSuite(cfg).RunAll(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "twigbench:", err)
		os.Exit(1)
	}
}
