// Command xmlgen generates the synthetic evaluation datasets (NASA-,
// IMDB-, PSD- and XMark-like documents; see internal/datagen) as XML.
//
// Usage:
//
//	xmlgen -profile xmark -scale 50000 -seed 42 > xmark.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"treelattice"
	"treelattice/internal/datagen"
)

func main() {
	profile := flag.String("profile", "xmark", "nasa | imdb | psd | xmark")
	scale := flag.Int("scale", 20000, "approximate element count")
	seed := flag.Int64("seed", 42, "generation seed")
	flag.Parse()

	dict := treelattice.NewDict()
	tree, err := datagen.Generate(datagen.Config{
		Profile: datagen.Profile(*profile),
		Scale:   *scale,
		Seed:    *seed,
	}, dict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := treelattice.WriteXML(w, tree); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
}
