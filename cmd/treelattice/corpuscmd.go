package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/labeltree"
	"treelattice/internal/serve"
)

// runExplain estimates a query with its work trace and decomposition
// spread.
func runExplain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	summaryPath := fs.String("summary", "", "summary file from 'build'")
	query := fs.String("query", "", "twig query")
	fs.Parse(args)
	if *summaryPath == "" || *query == "" {
		return fmt.Errorf("explain: -summary and -query are required")
	}
	sum, err := loadSummary(*summaryPath)
	if err != nil {
		return err
	}
	q, err := labeltree.ParsePattern(*query, sum.Dict())
	if err != nil {
		return err
	}
	est, trace, err := sum.EstimateWithTrace(q, core.MethodRecursiveVoting)
	if err != nil {
		return err
	}
	iv := sum.EstimateInterval(q)
	fmt.Fprintf(stdout, "estimate:        %.2f\n", est)
	fmt.Fprintf(stdout, "spread:          [%.2f, %.2f]\n", iv.Lo, iv.Hi)
	fmt.Fprintf(stdout, "lattice hits:    %d\n", trace.LatticeHits)
	fmt.Fprintf(stdout, "lattice misses:  %d\n", trace.LatticeMisses)
	fmt.Fprintf(stdout, "reconstructions: %d\n", trace.Reconstructions)
	fmt.Fprintf(stdout, "augmentations:   %d\n", trace.Augmentations)
	fmt.Fprintf(stdout, "max depth:       %d\n", trace.MaxDepth)
	return nil
}

// runCorpus dispatches the corpus subcommands.
func runCorpus(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("corpus: expected init | add | rm | stats")
	}
	switch args[0] {
	case "init":
		fs := flag.NewFlagSet("corpus init", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		k := fs.Int("k", 4, "lattice level")
		buckets := fs.Int("buckets", 0, "value buckets (0 = structure only)")
		attrs := fs.Bool("attributes", false, "model attributes as nodes")
		fs.Parse(args[1:])
		if *dir == "" {
			return fmt.Errorf("corpus init: -dir is required")
		}
		_, err := corpus.Create(*dir, corpus.Options{K: *k, ValueBuckets: *buckets, Attributes: *attrs})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "initialized corpus in %s (K=%d)\n", *dir, *k)
		return nil
	case "add":
		fs := flag.NewFlagSet("corpus add", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		name := fs.String("name", "", "document name")
		in := fs.String("in", "", "XML file")
		fs.Parse(args[1:])
		if *dir == "" || *name == "" || *in == "" {
			return fmt.Errorf("corpus add: -dir, -name and -in are required")
		}
		c, err := corpus.Open(*dir)
		if err != nil {
			return err
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.AddXML(*name, f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "added %s\n", *name)
		return nil
	case "rm":
		fs := flag.NewFlagSet("corpus rm", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		name := fs.String("name", "", "document name")
		fs.Parse(args[1:])
		if *dir == "" || *name == "" {
			return fmt.Errorf("corpus rm: -dir and -name are required")
		}
		c, err := corpus.Open(*dir)
		if err != nil {
			return err
		}
		if err := c.Remove(*name); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "removed %s\n", *name)
		return nil
	case "stats":
		fs := flag.NewFlagSet("corpus stats", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		fs.Parse(args[1:])
		if *dir == "" {
			return fmt.Errorf("corpus stats: -dir is required")
		}
		c, err := corpus.Open(*dir)
		if err != nil {
			return err
		}
		s := c.Summary()
		fmt.Fprintf(stdout, "K=%d patterns=%d bytes=%d documents=%d\n",
			s.K(), s.Patterns(), s.SizeBytes(), len(c.Docs()))
		for _, d := range c.Docs() {
			tree, _ := c.Doc(d)
			fmt.Fprintf(stdout, "  %s: %d elements\n", d, tree.Size())
		}
		return nil
	default:
		return fmt.Errorf("corpus: unknown subcommand %q", args[0])
	}
}

// runServe serves a corpus over HTTP until the process is stopped.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("corpus", "", "corpus directory")
	addr := fs.String("addr", "127.0.0.1:8357", "listen address")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("serve: -corpus is required")
	}
	c, err := corpus.Open(*dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serving corpus %s on http://%s\n", *dir, *addr)
	return http.ListenAndServe(*addr, serve.NewHandler(c))
}
