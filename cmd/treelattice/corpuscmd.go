package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/fleet"
	"treelattice/internal/labeltree"
	"treelattice/internal/obs"
	"treelattice/internal/serve"
)

// runExplain estimates a query with its work trace and decomposition
// spread.
func runExplain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	summaryPath := fs.String("summary", "", "summary file from 'build'")
	query := fs.String("query", "", "twig query")
	fs.Parse(args)
	if *summaryPath == "" || *query == "" {
		return fmt.Errorf("explain: -summary and -query are required")
	}
	sum, err := loadSummary(*summaryPath)
	if err != nil {
		return err
	}
	q, err := labeltree.ParsePattern(*query, sum.Dict())
	if err != nil {
		return err
	}
	est, trace, err := sum.EstimateWithTrace(q, core.MethodRecursiveVoting)
	if err != nil {
		return err
	}
	iv := sum.EstimateInterval(q)
	fmt.Fprintf(stdout, "estimate:        %.2f\n", est)
	fmt.Fprintf(stdout, "spread:          [%.2f, %.2f]\n", iv.Lo, iv.Hi)
	fmt.Fprintf(stdout, "lattice hits:    %d\n", trace.LatticeHits)
	fmt.Fprintf(stdout, "lattice misses:  %d\n", trace.LatticeMisses)
	fmt.Fprintf(stdout, "reconstructions: %d\n", trace.Reconstructions)
	fmt.Fprintf(stdout, "augmentations:   %d\n", trace.Augmentations)
	fmt.Fprintf(stdout, "max depth:       %d\n", trace.MaxDepth)
	return nil
}

// runCorpus dispatches the corpus subcommands.
func runCorpus(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("corpus: expected init | add | addall | rm | stats")
	}
	switch args[0] {
	case "init":
		fs := flag.NewFlagSet("corpus init", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		k := fs.Int("k", 4, "lattice level")
		buckets := fs.Int("buckets", 0, "value buckets (0 = structure only)")
		attrs := fs.Bool("attributes", false, "model attributes as nodes")
		fs.Parse(args[1:])
		if *dir == "" {
			return fmt.Errorf("corpus init: -dir is required")
		}
		_, err := corpus.Create(*dir, corpus.Options{K: *k, ValueBuckets: *buckets, Attributes: *attrs})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "initialized corpus in %s (K=%d)\n", *dir, *k)
		return nil
	case "add":
		fs := flag.NewFlagSet("corpus add", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		name := fs.String("name", "", "document name")
		in := fs.String("in", "", "XML file")
		fs.Parse(args[1:])
		if *dir == "" || *name == "" || *in == "" {
			return fmt.Errorf("corpus add: -dir, -name and -in are required")
		}
		c, err := corpus.Open(*dir)
		if err != nil {
			return err
		}
		// CLI loads are operator-supplied local files, not untrusted
		// uploads; the parser's depth/node caps are lifted.
		c.SetUnboundedParse(true)
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.AddXML(*name, f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "added %s\n", *name)
		return nil
	case "addall":
		fs := flag.NewFlagSet("corpus addall", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		workers := fs.Int("workers", 0, "build parallelism (0 = all CPUs)")
		fs.Parse(args[1:])
		files := fs.Args()
		if *dir == "" || len(files) == 0 {
			return fmt.Errorf("corpus addall: -dir and at least one XML file are required")
		}
		c, err := corpus.Open(*dir)
		if err != nil {
			return err
		}
		c.SetUnboundedParse(true)
		c.SetWorkers(*workers)
		docs := make([]corpus.BatchDoc, 0, len(files))
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			docs = append(docs, corpus.BatchDoc{Name: name, R: f})
		}
		if err := c.AddXMLBatch(context.Background(), docs); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "added %d documents", len(docs))
		if t := c.BuildTimings(); t != nil {
			for _, s := range t.Stages() {
				fmt.Fprintf(stdout, " %s=%s", s.Stage, s.Duration.Round(time.Millisecond))
			}
		}
		fmt.Fprintln(stdout)
		return nil
	case "rm":
		fs := flag.NewFlagSet("corpus rm", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		name := fs.String("name", "", "document name")
		fs.Parse(args[1:])
		if *dir == "" || *name == "" {
			return fmt.Errorf("corpus rm: -dir and -name are required")
		}
		c, err := corpus.Open(*dir)
		if err != nil {
			return err
		}
		if err := c.Remove(*name); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "removed %s\n", *name)
		return nil
	case "stats":
		fs := flag.NewFlagSet("corpus stats", flag.ExitOnError)
		dir := fs.String("dir", "", "corpus directory")
		fs.Parse(args[1:])
		if *dir == "" {
			return fmt.Errorf("corpus stats: -dir is required")
		}
		c, err := corpus.Open(*dir)
		if err != nil {
			return err
		}
		s := c.Summary()
		fmt.Fprintf(stdout, "K=%d patterns=%d bytes=%d documents=%d\n",
			s.K(), s.Patterns(), s.SizeBytes(), len(c.Docs()))
		for _, d := range c.Docs() {
			tree, _ := c.Doc(d)
			fmt.Fprintf(stdout, "  %s: %d elements\n", d, tree.Size())
		}
		return nil
	default:
		return fmt.Errorf("corpus: unknown subcommand %q", args[0])
	}
}

// httpTuning is the http.Server protection envelope: slowloris defense
// (header timeout), bounds on slow readers and stuck writers, idle
// connection reaping, and a header size cap. The zero value of each field
// in Go's http.Server means "no limit", which is the wrong default for a
// network-facing daemon, so every listener goes through this struct.
type httpTuning struct {
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	maxHeaderBytes    int
}

// defaultTuning returns production-safe server limits. Read and write
// timeouts are generous because document uploads can be large and exact
// counts on big corpora are slow; they exist to reap dead peers, not to
// bound work (per-endpoint deadline budgets do that).
func defaultTuning() httpTuning {
	return httpTuning{
		readHeaderTimeout: 5 * time.Second,
		readTimeout:       5 * time.Minute,
		writeTimeout:      5 * time.Minute,
		idleTimeout:       2 * time.Minute,
		maxHeaderBytes:    1 << 20,
	}
}

// register exposes the tuning knobs as flags, defaulting to the receiver's
// current values.
func (t *httpTuning) register(fs *flag.FlagSet) {
	fs.DurationVar(&t.readHeaderTimeout, "read-header-timeout", t.readHeaderTimeout, "max time to read request headers (slowloris guard)")
	fs.DurationVar(&t.readTimeout, "read-timeout", t.readTimeout, "max time to read a full request, including the body")
	fs.DurationVar(&t.writeTimeout, "write-timeout", t.writeTimeout, "max time to write a response")
	fs.DurationVar(&t.idleTimeout, "idle-timeout", t.idleTimeout, "max keep-alive idle time before the connection is closed")
	fs.IntVar(&t.maxHeaderBytes, "max-header-bytes", t.maxHeaderBytes, "max request header size in bytes")
}

// server builds an http.Server carrying the tuning limits.
func (t httpTuning) server(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: t.readHeaderTimeout,
		ReadTimeout:       t.readTimeout,
		WriteTimeout:      t.writeTimeout,
		IdleTimeout:       t.idleTimeout,
		MaxHeaderBytes:    t.maxHeaderBytes,
	}
}

// registerResilienceFlags exposes the admission/deadline knobs of
// serve.ResilienceOptions as flags. All default to off (zero), matching
// the library default; operators opt in per deployment.
func registerResilienceFlags(fs *flag.FlagSet, r *serve.ResilienceOptions) {
	fs.IntVar(&r.AdmissionLimit, "admission-limit", 0, "max concurrent query/mutation requests; excess queues then sheds with 429 (0 = unlimited)")
	fs.IntVar(&r.AdmissionQueue, "admission-queue", 0, "bounded wait queue beyond the admission limit (0 = 2x limit)")
	fs.DurationVar(&r.QueueWait, "queue-wait", 0, "max time a request waits in the admission queue before shedding (0 = default)")
	fs.DurationVar(&r.RetryAfter, "retry-after", 0, "Retry-After hint attached to shed responses (0 = default)")
	fs.DurationVar(&r.EstimateBudget, "estimate-budget", 0, "deadline for /v1/estimate and /v1/explain (0 = none)")
	fs.DurationVar(&r.ExactBudget, "exact-budget", 0, "deadline for /v1/exact (0 = none)")
	fs.DurationVar(&r.BuildBudget, "build-budget", 0, "deadline for document uploads (0 = none)")
	fs.DurationVar(&r.QueryBudget, "query-budget", 0, "deadline for /v1/query twig executions (0 = none)")
	fs.Int64Var(&r.QueryNodeBudget, "query-node-budget", 0, "max candidate nodes one /v1/query execution may visit; exhaustion returns a partial count marked degraded (0 = unlimited)")
	fs.BoolVar(&r.DisableFallback, "no-degrade", false, "return 504 instead of degrading estimates to a cheaper method on blown budgets")
	fs.IntVar(&r.TenantQuota, "tenant-quota", 0, "max concurrent estimates per tenant on the /v1/t routes; excess sheds with 429 (0 = unlimited)")
	fs.DurationVar(&r.ShardTimeout, "shard-timeout", 0, "per-shard responsiveness deadline on sharded tenants; a shard missing it is excluded and the answer degrades (0 = request deadline only)")
}

// runServe serves a corpus over HTTP until the process receives SIGINT or
// SIGTERM, then drains in-flight requests before exiting.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("corpus", "", "corpus directory")
	addr := fs.String("addr", "127.0.0.1:8357", "listen address")
	workers := fs.Int("workers", 0, "upload mining parallelism (0 = all CPUs)")
	frozen := fs.Bool("frozen", false, "serve a read-only replica: load the summary in the frozen representation (zero-allocation lookups; document mutations answer 409)")
	debugAddr := fs.String("debug-addr", "", "separate listen address for pprof/expvar/metrics (off when empty)")
	fleetRoot := fs.String("fleet", "", "fleet root directory holding tenant snapshot subdirectories; enables /v1/t/{tenant} routes beyond the default tenant")
	maxResident := fs.Int("max-resident", 0, "max lazily-loaded tenants resident at once (0 = default)")
	maxResidentBytes := fs.Int64("max-resident-bytes", 0, "byte budget for lazily-loaded tenants; least-recently-used tenants are evicted past it (0 = unlimited)")
	ingest := fs.Bool("ingest", false, "enable zero-downtime ingest: document adds land in a delta overlay served via RCU epochs, and a background refreezer folds them into crash-safe snapshots (works with -frozen)")
	refreezeInterval := fs.Duration("refreeze-interval", 30*time.Second, "background refreeze cadence; watermark crossings also trigger one (0 = watermark-only)")
	deltaMaxBytes := fs.Int("delta-max-bytes", 0, "delta size watermark that kicks an early refreeze (0 = 4MiB)")
	deltaMaxDocs := fs.Int("delta-max-docs", 0, "delta document-count watermark that kicks an early refreeze (0 = 256)")
	deltaMaxAge := fs.Duration("delta-max-age", 0, "oldest-unfolded-document watermark that kicks an early refreeze (0 = 5m)")
	deltaHardBytes := fs.Int("delta-hard-bytes", 0, "hard delta size limit past which ingest answers 429 until a refreeze catches up (0 = 4x -delta-max-bytes)")
	ingestCompress := fs.Bool("ingest-compress", false, "refreeze into compressed (TLCZ) snapshots instead of plain TLAT")
	tune := defaultTuning()
	tune.register(fs)
	var res serve.ResilienceOptions
	registerResilienceFlags(fs, &res)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("serve: -corpus is required")
	}
	open := corpus.Open
	if *frozen {
		open = corpus.OpenReadOnly
	}
	c, err := open(*dir)
	if err != nil {
		return err
	}
	if *ingest {
		err := c.EnableIngest(corpus.IngestOptions{
			RefreezeInterval: *refreezeInterval,
			MaxDeltaBytes:    *deltaMaxBytes,
			MaxDeltaDocs:     *deltaMaxDocs,
			MaxDeltaAge:      *deltaMaxAge,
			HardDeltaBytes:   *deltaHardBytes,
			Compress:         *ingestCompress,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stdout, format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		defer func() {
			// Fold the remaining delta into a final snapshot on the way
			// out; a failure is non-fatal (the manifest protocol recovers
			// unfolded documents on the next open).
			if err := c.DisableIngest(); err != nil {
				fmt.Fprintf(stdout, "serve: final refreeze: %v\n", err)
			}
		}()
	}
	sopts := serve.Options{Workers: *workers, Resilience: res}
	if *fleetRoot != "" {
		sopts.Fleet = fleet.NewRegistry(fleet.RegistryOptions{
			Root:             *fleetRoot,
			MaxResident:      *maxResident,
			MaxResidentBytes: *maxResidentBytes,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stdout, format+"\n", args...)
			},
		})
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveCorpus(ctx, c, *addr, *debugAddr, sopts, tune, stdout)
}

// shutdownTimeout bounds the graceful drain: in-flight estimates are
// sub-millisecond, but an upload mid-mine can hold the write lock for a
// while on a big document.
const shutdownTimeout = 10 * time.Second

// serveCorpus runs the HTTP server (and optional debug listener) until
// ctx is canceled, then shuts down gracefully. Split from runServe so
// tests can drive the full lifecycle without sending real signals.
func serveCorpus(ctx context.Context, c *corpus.Corpus, addr, debugAddr string, sopts serve.Options, tune httpTuning, stdout io.Writer) error {
	if sopts.Logf == nil {
		sopts.Logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}
	handler := serve.NewHandlerOptions(c, sopts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serving corpus on http://%s\n", ln.Addr())
	srv := tune.server(handler)

	// Profiling and low-level introspection never share the traffic
	// port: a held /debug/pprof/profile stream or a heap dump must not
	// compete with estimate traffic for accept slots, and the debug
	// surface stays unreachable from wherever the traffic port is
	// exposed.
	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			ln.Close()
			return err
		}
		debugSrv = tune.server(debugMux(handler.Metrics()))
		// Profile streams run for their full -seconds argument; the
		// traffic write timeout would cut them off.
		debugSrv.WriteTimeout = 0
		go debugSrv.Serve(dln)
		fmt.Fprintf(stdout, "debug endpoints (pprof, expvar, metrics) on http://%s\n", dln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "shutting down: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if debugSrv != nil {
		debugSrv.Shutdown(sctx)
	}
	return srv.Shutdown(sctx)
}

// debugMux mounts net/http/pprof, expvar, and the obs registry on a
// private mux (the pprof import's side-effect registrations go to
// http.DefaultServeMux, which the traffic server never uses).
func debugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	return mux
}
