package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/fleet"
	"treelattice/internal/labeltree"
	"treelattice/internal/loadgen"
	"treelattice/internal/metrics"
	"treelattice/internal/serve"
)

// replicaScaleRow is one point of the 1→N shard-replica scaling matrix.
type replicaScaleRow struct {
	Replicas    int     `json:"replicas"`
	AchievedQPS float64 `json:"achieved_qps"`
	P50ms       float64 `json:"p50_ms"`
	P99ms       float64 `json:"p99_ms"`
	// DeadlineMs is each replica's estimate budget — the envelope the
	// row's p99 is expected to sit inside.
	DeadlineMs float64 `json:"deadline_ms"`
	Errors     uint64  `json:"errors,omitempty"`
	// LinearFraction is AchievedQPS / (Replicas × per-replica baseline
	// QPS from the sweep's first row); 1.0 is perfectly linear scaling.
	LinearFraction float64 `json:"linear_fraction"`
}

// shardBackend adapts a single shard snapshot to the serve.Backend
// surface: a read-only replica with no resident documents, exactly what a
// fleet backend loaded from a frozen shard file looks like. Mutating and
// document-scanning operations answer with an error rather than
// pretending to hold the corpus.
type shardBackend struct {
	sum *core.Summary
}

func (b *shardBackend) Summary() *core.Summary              { return b.sum }
func (b *shardBackend) Docs() []string                      { return nil }
func (b *shardBackend) Workers() int                        { return 1 }
func (b *shardBackend) SetWorkers(int)                      {}
func (b *shardBackend) BuildTimings() *metrics.BuildTimings { return nil }
func (b *shardBackend) Remove(string) error                 { return fmt.Errorf("shard replica is read-only") }
func (b *shardBackend) AddXMLContext(context.Context, string, io.Reader) error {
	return fmt.Errorf("shard replica is read-only")
}
func (b *shardBackend) ExactCountContext(context.Context, labeltree.Pattern) (int64, error) {
	return 0, fmt.Errorf("shard replica holds no documents")
}
func (b *shardBackend) Ingesting() bool               { return false }
func (b *shardBackend) IngestStats() core.IngestStats { return core.IngestStats{} }

// capacityGate models a replica's bounded capacity: one request slot and
// a fixed per-request service floor. On a single benchmark host the
// replicas share CPUs, so raw estimate throughput cannot demonstrate
// fleet scaling; the gate makes each replica's capacity the modeled
// service time (the store/network-bound cost a real shard backend pays),
// which the floors of independent replicas pay concurrently. The sweep
// then measures what sharding buys: whether the front end's aggregate
// throughput tracks replica count, not whether one machine got faster.
type capacityGate struct {
	inner http.Handler
	slots chan struct{}
	floor time.Duration
}

func (g *capacityGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.slots <- struct{}{}
	defer func() { <-g.slots }()
	if g.floor > 0 {
		time.Sleep(g.floor)
	}
	g.inner.ServeHTTP(w, r)
}

// refreezeSummary round-trips a summary through the snapshot format into
// the frozen representation — the same bytes and read path a fleet
// backend serves after `treelattice shard`.
func refreezeSummary(sum *core.Summary) (*core.Summary, error) {
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		return nil, err
	}
	return core.ReadFrozen(bytes.NewReader(buf.Bytes()), labeltree.NewDict())
}

// runShardScaling measures the 1→N shard-replica scaling matrix: for
// each fleet size, shard the corpus that many ways, serve every shard
// from its own capacity-bounded in-process replica (frozen snapshot,
// estimate deadline, single-slot service gate), and drive the workload
// round-robin closed-loop with one worker per replica. The first row is
// the baseline; LinearFraction reports each row's throughput against
// perfectly linear scaling from it.
func runShardScaling(ctx context.Context, c *corpus.Corpus, w *loadgen.Workload, counts []int, service, dur time.Duration, method core.Method, stdout io.Writer) ([]replicaScaleRow, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("loadbench: -replicas list is empty")
	}
	for _, n := range counts {
		if n < 1 || n > fleet.MaxShards {
			return nil, fmt.Errorf("loadbench: -replicas entry %d out of range [1,%d]", n, fleet.MaxShards)
		}
	}
	// The deadline envelope leaves room for the queueing the saturated
	// closed loop deliberately induces (up to ~3 service times end to
	// end) plus estimation work; p99 is expected to sit inside it.
	envelope := 8 * service
	if envelope <= 0 {
		envelope = 50 * time.Millisecond
	}
	rows := make([]replicaScaleRow, 0, len(counts))
	var basePerReplica float64
	for _, n := range counts {
		res, err := runReplicaPoint(ctx, c, w, n, service, envelope, dur, method)
		if err != nil {
			return nil, err
		}
		row := replicaScaleRow{
			Replicas:    n,
			AchievedQPS: res.AchievedQPS,
			P50ms:       res.Latency.P50 * 1e3,
			P99ms:       res.Latency.P99 * 1e3,
			DeadlineMs:  float64(envelope) / 1e6,
			Errors:      res.Errors,
		}
		if basePerReplica == 0 && n > 0 {
			basePerReplica = res.AchievedQPS / float64(n)
		}
		if basePerReplica > 0 {
			row.LinearFraction = res.AchievedQPS / (float64(n) * basePerReplica)
		}
		fmt.Fprintf(stdout, "replicas=%d: %.0f req/s  p50=%.2fms p99=%.2fms  linear=%.2f× (deadline %.0fms, %d errors)\n",
			n, row.AchievedQPS, row.P50ms, row.P99ms, row.LinearFraction, row.DeadlineMs, row.Errors)
		rows = append(rows, row)
	}
	return rows, nil
}

// runReplicaPoint shards the corpus n ways, serves each shard from its
// own gated replica server, and runs one closed-loop measurement.
func runReplicaPoint(ctx context.Context, c *corpus.Corpus, w *loadgen.Workload, n int, service, envelope, dur time.Duration, method core.Method) (*loadgen.Result, error) {
	shards, err := c.BuildShardSummaries(ctx, n, 0)
	if err != nil {
		return nil, err
	}
	servers := make([]*http.Server, 0, n)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, srv := range servers {
			srv.Shutdown(sctx)
		}
	}()
	targets := make([]loadgen.Target, 0, n)
	for _, sum := range shards {
		frozen, err := refreezeSummary(sum)
		if err != nil {
			return nil, err
		}
		handler := serve.NewHandlerOptions(&shardBackend{sum: frozen}, serve.Options{
			Resilience: serve.ResilienceOptions{EstimateBudget: envelope},
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := defaultTuning().server(&capacityGate{
			inner: handler, slots: make(chan struct{}, 1), floor: service,
		})
		go srv.Serve(ln)
		servers = append(servers, srv)
		targets = append(targets, loadgen.NewHTTPTarget("http://"+ln.Addr().String(), method, nil))
	}
	// Two workers per replica slot keep one request queued behind the one
	// in service, so every point measures saturated replica capacity
	// (1/service-time each) rather than driver-side scheduling slack —
	// the closed-loop equivalent of benchmarking at 100% utilization.
	return loadgen.Run(ctx, loadgen.RoundRobin(targets...), w, loadgen.Options{
		Concurrency: 2 * n,
		Duration:    dur,
		Warmup:      dur / 4,
	})
}

// writeTenantFleet materializes n tenants under root, each holding the
// summary as a frozen snapshot, and returns their names — a fleet root
// the serve registry can lazily load from.
func writeTenantFleet(root string, sum *core.Summary, n int) ([]string, error) {
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		f, err := os.Create(filepath.Join(dir, fleet.SummaryFile))
		if err != nil {
			return nil, err
		}
		if _, err := sum.WriteTo(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}
