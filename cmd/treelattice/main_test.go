package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treelattice/internal/core"
	"treelattice/internal/fleet"
	"treelattice/internal/lattice"
)

const testDoc = `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`

func writeDoc(t *testing.T) (xmlPath, sumPath string) {
	t.Helper()
	dir := t.TempDir()
	xmlPath = filepath.Join(dir, "doc.xml")
	sumPath = filepath.Join(dir, "doc.tlat")
	if err := os.WriteFile(xmlPath, []byte(testDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return xmlPath, sumPath
}

func TestBuildEstimateExactStats(t *testing.T) {
	xmlPath, sumPath := writeDoc(t)
	var out bytes.Buffer
	if err := runBuild([]string{"-in", xmlPath, "-out", sumPath, "-k", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "patterns (K=3)") {
		t.Fatalf("build output: %q", out.String())
	}

	out.Reset()
	if err := runEstimate([]string{"-summary", sumPath, "-query", "laptop(brand,price)"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "2.00" {
		t.Fatalf("estimate output: %q", out.String())
	}

	out.Reset()
	if err := runExact([]string{"-in", xmlPath, "-query", "laptop(brand,price)"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "2" {
		t.Fatalf("exact output: %q", out.String())
	}

	out.Reset()
	if err := runStats([]string{"-summary", sumPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "K=3") || !strings.Contains(out.String(), "level 1:") {
		t.Fatalf("stats output: %q", out.String())
	}
}

func TestBuildWithPruning(t *testing.T) {
	xmlPath, sumPath := writeDoc(t)
	var out bytes.Buffer
	if err := runBuild([]string{"-in", xmlPath, "-out", sumPath, "-k", "3", "-prune", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pruned delta=0.00") {
		t.Fatalf("build output: %q", out.String())
	}
	out.Reset()
	if err := runStats([]string{"-summary", sumPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pruned=true") {
		t.Fatalf("stats output: %q", out.String())
	}
	// Pruned summary still answers exactly for occurring queries.
	out.Reset()
	if err := runEstimate([]string{"-summary", sumPath, "-query", "laptop(brand,price)", "-method", "recursive"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "2.00" {
		t.Fatalf("estimate on pruned summary: %q", out.String())
	}
}

func TestMissingFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runBuild(nil, &out); err == nil {
		t.Fatal("build without flags accepted")
	}
	if err := runEstimate(nil, &out); err == nil {
		t.Fatal("estimate without flags accepted")
	}
	if err := runExact(nil, &out); err == nil {
		t.Fatal("exact without flags accepted")
	}
	if err := runStats(nil, &out); err == nil {
		t.Fatal("stats without flags accepted")
	}
}

func TestBadInputs(t *testing.T) {
	xmlPath, sumPath := writeDoc(t)
	var out bytes.Buffer
	if err := runBuild([]string{"-in", "/nonexistent.xml", "-out", sumPath}, &out); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := runEstimate([]string{"-summary", "/nonexistent.tlat", "-query", "a"}, &out); err == nil {
		t.Fatal("missing summary accepted")
	}
	if err := runBuild([]string{"-in", xmlPath, "-out", sumPath}, &out); err != nil {
		t.Fatal(err)
	}
	if err := runEstimate([]string{"-summary", sumPath, "-query", "a(("}, &out); err == nil {
		t.Fatal("bad query accepted")
	}
	if err := runEstimate([]string{"-summary", sumPath, "-query", "a", "-method", "bogus"}, &out); err == nil {
		t.Fatal("bad method accepted")
	}
}

func TestExplainCommand(t *testing.T) {
	xmlPath, sumPath := writeDoc(t)
	var out bytes.Buffer
	if err := runBuild([]string{"-in", xmlPath, "-out", sumPath, "-k", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runExplain([]string{"-summary", sumPath, "-query", "computer(laptops(laptop(brand,price)))"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"estimate:", "spread:", "max depth:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("explain output missing %q: %q", want, out.String())
		}
	}
	if err := runExplain(nil, &out); err == nil {
		t.Fatal("explain without flags accepted")
	}
}

func TestCorpusAddall(t *testing.T) {
	docsDir := t.TempDir()
	xmls := []string{
		`<computer><laptops><laptop><brand/></laptop></laptops></computer>`,
		`<computer><laptops><laptop><brand/><price/></laptop></laptops></computer>`,
		`<computer><desktops><desktop/></desktops></computer>`,
	}
	paths := make([]string, len(xmls))
	for i, doc := range xmls {
		paths[i] = filepath.Join(docsDir, fmt.Sprintf("doc%d.xml", i))
		if err := os.WriteFile(paths[i], []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	var out bytes.Buffer
	if err := runCorpus([]string{"init", "-dir", dir, "-k", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	args := append([]string{"addall", "-dir", dir, "-workers", "4"}, paths...)
	if err := runCorpus(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"added 3 documents", "parse=", "mine=", "persist="} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("addall output missing %q: %q", want, out.String())
		}
	}
	out.Reset()
	if err := runCorpus([]string{"stats", "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"documents=3", "doc0", "doc1", "doc2"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stats after addall missing %q: %q", want, out.String())
		}
	}
	// Re-adding the same files must fail on the duplicate names.
	if err := runCorpus(args, &out); err == nil {
		t.Fatal("duplicate addall accepted")
	}
	if err := runCorpus([]string{"addall", "-dir", dir}, &out); err == nil {
		t.Fatal("addall without files accepted")
	}
}

// TestShardCompress: `shard -compress` must write TLCZ snapshots under
// the usual .tlat names, and the fleet loader must detect them by magic
// and answer identically to the frozen-form shards of the same corpus.
func TestShardCompress(t *testing.T) {
	xmlPath, _ := writeDoc(t)
	dir := filepath.Join(t.TempDir(), "corpus")
	var out bytes.Buffer
	if err := runCorpus([]string{"init", "-dir", dir, "-k", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := runCorpus([]string{"add", "-dir", dir, "-name", "doc1", "-in", xmlPath}, &out); err != nil {
		t.Fatal(err)
	}
	tenantRoot := t.TempDir()
	frozenDir := filepath.Join(tenantRoot, "plain")
	compDir := filepath.Join(tenantRoot, "packed")
	if err := runShard([]string{"-corpus", dir, "-out", frozenDir, "-n", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := runShard([]string{"-corpus", dir, "-out", compDir, "-n", "2", "-compress"}, &out); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 4)
	f, err := os.Open(filepath.Join(compDir, fleet.ShardFile(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if string(head) != lattice.CompressedMagic {
		t.Fatalf("compressed shard magic = %q, want %q", head, lattice.CompressedMagic)
	}
	froz, err := fleet.LoadTenant(frozenDir, "plain")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := fleet.LoadTenant(compDir, "packed")
	if err != nil {
		t.Fatal(err)
	}
	if comp.ResidentBytes() >= froz.ResidentBytes() {
		t.Fatalf("compressed tenant resident %d >= frozen %d",
			comp.ResidentBytes(), froz.ResidentBytes())
	}
	for _, qs := range []string{"laptop(brand)", "laptops(laptop(price))"} {
		fq, err := froz.Summary.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		cq, err := comp.Summary.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := froz.Estimate(context.Background(), fq, core.MethodRecursiveVoting, fleet.EstimateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := comp.Estimate(context.Background(), cq, core.MethodRecursiveVoting, fleet.EstimateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cr.Estimate != fr.Estimate {
			t.Errorf("query %q: compressed shards %v != frozen shards %v", qs, cr.Estimate, fr.Estimate)
		}
	}
}

func TestCorpusCommands(t *testing.T) {
	xmlPath, _ := writeDoc(t)
	dir := filepath.Join(t.TempDir(), "corpus")
	var out bytes.Buffer
	if err := runCorpus([]string{"init", "-dir", dir, "-k", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := runCorpus([]string{"add", "-dir", dir, "-name", "doc1", "-in", xmlPath}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runCorpus([]string{"stats", "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "documents=1") || !strings.Contains(out.String(), "doc1") {
		t.Fatalf("corpus stats: %q", out.String())
	}
	if err := runCorpus([]string{"rm", "-dir", dir, "-name", "doc1"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runCorpus([]string{"stats", "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "documents=0") {
		t.Fatalf("corpus stats after rm: %q", out.String())
	}
	if err := runCorpus(nil, &out); err == nil {
		t.Fatal("bare corpus accepted")
	}
	if err := runCorpus([]string{"bogus"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := runServe(nil, &out); err == nil {
		t.Fatal("serve without corpus accepted")
	}
}
