package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/datagen"
	"treelattice/internal/fleet"
	"treelattice/internal/labeltree"
	"treelattice/internal/loadgen"
	"treelattice/internal/obs"
	"treelattice/internal/serve"
)

// benchReport is the BENCH_serve.json schema: the run's configuration,
// the driver-side result (achieved QPS, error count, latency quantiles),
// and — when the run went over HTTP — the server-side metrics snapshot so
// driver and server numbers can be cross-checked.
type benchReport struct {
	Config   benchConfig     `json:"config"`
	Workload workloadSummary `json:"workload"`
	Result   *loadgen.Result `json:"result"`
	// BatchResult is the batched run over the same workload and worker
	// count (-batch N), for a direct single-vs-batched throughput
	// comparison in one report.
	BatchResult *loadgen.Result `json:"batch_result,omitempty"`
	// Methods is the accuracy×latency matrix from a -methods sweep: every
	// requested estimator driven in-process over the same workload, scored
	// against exact counts on a subsample.
	Methods []methodReport `json:"methods,omitempty"`
	// ShardScaling is the 1→N shard-replica matrix from a -replicas
	// sweep: the corpus sharded N ways, each shard served by its own
	// capacity-bounded replica, driven round-robin. LinearFraction is
	// throughput relative to perfectly linear scaling from the first row.
	ShardScaling []replicaScaleRow `json:"shard_scaling,omitempty"`
	// TenantResult is the multi-tenant mix run (-tenants N): the same
	// workload driven round-robin across N tenants' /v1/t routes, so the
	// registry, per-tenant quotas, and per-tenant metrics sit on the
	// measured path.
	TenantResult *loadgen.Result `json:"tenant_result,omitempty"`
	// Backends is the -backends comparison: the corpus summary snapshotted
	// in each on-disk form, reloaded through the serving path, and driven
	// in-process over the same workload — snapshot size, resident bytes,
	// and lookup throughput side by side.
	Backends []backendReport `json:"backends,omitempty"`
	// Ingest is the -ingest mixed read/write run: the same estimate
	// workload driven against an ingest-enabled copy of the corpus while
	// a writer streams document uploads through the delta/epoch pipeline,
	// so read latency under continuous ingest (and refreeze churn) is on
	// the record next to the read-only numbers.
	Ingest *ingestReport `json:"ingest,omitempty"`
	// QueryPlan is the -query matrix: plan-guided vs naive-order twig
	// execution over the Table 3 datasets (candidate reduction and
	// latency), plus the served /v1/query mix when an in-process server
	// was on the measured path.
	QueryPlan     *queryPlanReport `json:"query_plan,omitempty"`
	ServerMetrics *obs.Snapshot    `json:"server_metrics,omitempty"`
}

// ingestReport is the -ingest row: read-side throughput/latency measured
// while writes flowed, the write-side outcome tally, and the pipeline's
// final counters (epoch reached, refreezes, backpressure).
type ingestReport struct {
	ReadResult    *loadgen.Result  `json:"read_result"`
	DocsAdded     int              `json:"docs_added"`
	WriteErrors   int              `json:"write_errors"`
	Backpressured int              `json:"backpressured_429"`
	Stats         core.IngestStats `json:"stats"`
}

// backendReport is one row of the frozen-vs-compressed backend matrix.
type backendReport struct {
	Backend       string  `json:"backend"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	ResidentBytes int     `json:"resident_bytes"`
	AchievedQPS   float64 `json:"achieved_qps"`
	P50ms         float64 `json:"p50_ms"`
	P95ms         float64 `json:"p95_ms"`
	P99ms         float64 `json:"p99_ms"`
	Errors        uint64  `json:"errors,omitempty"`
}

// methodReport is one row of the accuracy×latency matrix.
type methodReport struct {
	Method string `json:"method"`
	// PrepareMs is the cold-start cost: the first estimate, which builds
	// the method's prepared instance (index, tables, sketches) on demand.
	PrepareMs   float64           `json:"prepare_ms"`
	AchievedQPS float64           `json:"achieved_qps"`
	P50ms       float64           `json:"p50_ms"`
	P95ms       float64           `json:"p95_ms"`
	P99ms       float64           `json:"p99_ms"`
	Errors      uint64            `json:"errors,omitempty"`
	Accuracy    *loadgen.Accuracy `json:"accuracy,omitempty"`
}

type benchConfig struct {
	Corpus      string  `json:"corpus,omitempty"`
	Generated   string  `json:"generated,omitempty"`
	Scale       int     `json:"scale,omitempty"`
	K           int     `json:"k"`
	Method      string  `json:"method"`
	Sizes       []int   `json:"sizes"`
	PerSize     int     `json:"per_size"`
	NegFraction float64 `json:"negative_fraction"`
	Seed        int64   `json:"seed"`
	Concurrency int     `json:"concurrency"`
	Batch       int     `json:"batch,omitempty"`
	DurationSec float64 `json:"duration_seconds,omitempty"`
	Requests    int     `json:"requests,omitempty"`
	WarmupSec   float64 `json:"warmup_seconds,omitempty"`
	OpenLoopQPS float64 `json:"open_loop_qps,omitempty"`
	Replicas    []int   `json:"replicas,omitempty"`
	ServiceMs   float64 `json:"service_floor_ms,omitempty"`
	Tenants     int     `json:"tenants,omitempty"`
}

type workloadSummary struct {
	Queries   int `json:"queries"`
	Positives int `json:"positives"`
	Negatives int `json:"negatives"`
}

// runLoadbench generates a workload, drives a target (in-process server by
// default), and writes the perf-trajectory report.
func runLoadbench(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadbench", flag.ExitOnError)
	dir := fs.String("corpus", "", "existing corpus directory to serve and query")
	gen := fs.String("gen", "", "generate a synthetic corpus instead (nasa | imdb | psd | xmark)")
	scale := fs.Int("scale", 20000, "approximate element count of the generated document")
	k := fs.Int("k", 4, "lattice level for the generated corpus")
	liveURL := fs.String("url", "", "drive a live server at this base URL instead of starting one")
	inproc := fs.Bool("inproc", false, "drive the estimator in-process (no HTTP) to isolate engine cost")
	method := fs.String("method", string(core.MethodRecursiveVoting), "estimation method")
	duration := fs.Duration("duration", 5*time.Second, "measured run length (ignored when -requests is set)")
	requests := fs.Int("requests", 0, "stop after a fixed request count instead of a duration")
	concurrency := fs.Int("concurrency", 0, "driver workers (0 = all CPUs)")
	qps := fs.Float64("qps", 0, "open-loop arrival rate; 0 = closed loop")
	batch := fs.Int("batch", 0, "also run batched via POST /v1/estimate/batch with this many queries per request (HTTP targets, closed loop only)")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "unmeasured warmup before the run")
	sizes := fs.String("sizes", "3,4,5", "comma-separated query sizes")
	perSize := fs.Int("persize", 20, "distinct positive queries per size per document")
	neg := fs.Float64("neg", 0.25, "target fraction of zero-selectivity queries in the mix")
	seed := fs.Int64("seed", 1, "workload generation seed (same seed = same mix)")
	methodsSpec := fs.String("methods", "", `sweep these estimation methods in-process ("all" or a comma list), adding a per-method accuracy×latency matrix to the report`)
	replicasSpec := fs.String("replicas", "", `shard-replica scaling sweep ("1,2,4"): shard the corpus N ways per point, serve each shard from a capacity-bounded replica, and add the 1→N scaling matrix to the report`)
	service := fs.Duration("service", 5*time.Millisecond, "modeled per-request service floor of each -replicas replica (bounds replica capacity so the sweep measures fleet scaling, not single-host CPU)")
	scaleDur := fs.Duration("scaledur", 2*time.Second, "measured duration of each -replicas point")
	tenants := fs.Int("tenants", 0, "also drive the workload round-robin across this many tenants' /v1/t/{tenant}/estimate routes (default in-process server only)")
	backends := fs.Bool("backends", false, "also compare the frozen and compressed snapshot backends in-process over the same workload, adding a size×throughput matrix to the report")
	queryMatrix := fs.Bool("query", false, "also run the plan-vs-naive twig execution matrix over the Table 3 datasets (nasa, imdb, psd, xmark), adding a query_plan section to the report; with the default in-process server, additionally drives a count-only /v1/query mix over HTTP")
	queryScale := fs.Int("queryscale", 20000, "approximate element count of each -query dataset document")
	queryPasses := fs.Int("querypasses", 3, "timed repetitions of the -query execution loop")
	ingestMix := fs.Bool("ingest", false, "also run a mixed read/write pass: enable zero-downtime ingest on a throwaway copy of the corpus and measure estimate latency while a writer streams document uploads through the delta/epoch pipeline")
	ingestDur := fs.Duration("ingestdur", 3*time.Second, "measured duration of the -ingest mixed pass")
	accQueries := fs.Int("accqueries", 60, "queries scored against exact counts per swept method (-methods)")
	sweepRequests := fs.Int("sweeprequests", 300, "timed requests per swept method (-methods)")
	out := fs.String("out", "BENCH_serve.json", "report output path")
	fs.Parse(args)

	if (*dir == "") == (*gen == "") {
		return fmt.Errorf("loadbench: exactly one of -corpus and -gen is required")
	}
	sizeList, err := parseSizes(*sizes)
	if err != nil {
		return err
	}

	// Resolve the corpus: open an existing one or generate a synthetic
	// document into a throwaway corpus directory.
	var c *corpus.Corpus
	var corpusDir string
	cfg := benchConfig{
		Method: *method, Sizes: sizeList, PerSize: *perSize,
		NegFraction: *neg, Seed: *seed, Concurrency: *concurrency,
	}
	if *dir != "" {
		c, err = corpus.Open(*dir)
		if err != nil {
			return err
		}
		cfg.Corpus = *dir
		cfg.K = c.Options().K
		corpusDir = *dir
	} else {
		tmp, err := os.MkdirTemp("", "loadbench-corpus-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		c, err = generatedCorpus(tmp, datagen.Profile(*gen), *scale, *k, *seed)
		if err != nil {
			return err
		}
		cfg.Generated, cfg.Scale, cfg.K = *gen, *scale, *k
		corpusDir = tmp
	}
	if len(c.Docs()) == 0 {
		return fmt.Errorf("loadbench: corpus has no documents to sample queries from")
	}

	// Workload: sampled from every document in the corpus.
	trees := make([]*labeltree.Tree, 0, len(c.Docs()))
	for _, name := range c.Docs() {
		t, _ := c.Doc(name)
		trees = append(trees, t)
	}
	w, err := loadgen.BuildWorkload(trees, c.Dict(), loadgen.WorkloadOptions{
		Sizes: sizeList, PerSize: *perSize, NegativeFraction: *neg, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "workload: %d queries (%d positive, %d negative), seed %d\n",
		len(w.Items), w.Positives, w.Negatives, *seed)

	// Target: a live URL, the bare estimator, or (default) an in-process
	// HTTP server over a loopback listener — the full serving path
	// without requiring a separate process.
	var target loadgen.Target
	var batchTarget loadgen.BatchTarget
	var tenantTargets []loadgen.Target
	var scrapeMetrics func() (*obs.Snapshot, error)
	var serverBase string
	switch {
	case *liveURL != "":
		base := strings.TrimSuffix(*liveURL, "/")
		target = loadgen.NewHTTPTarget(base, core.Method(*method), nil)
		batchTarget = loadgen.NewHTTPBatchTarget(base, core.Method(*method), nil)
		scrapeMetrics = func() (*obs.Snapshot, error) { return scrapeHTTPMetrics(*liveURL) }
	case *inproc:
		t, err := loadgen.NewEstimatorTarget(c.Summary(), core.Method(*method))
		if err != nil {
			return err
		}
		target = t
	default:
		var sopts serve.Options
		// -tenants: materialize a throwaway fleet root of N tenants, each
		// holding the corpus summary as a frozen snapshot, so the tenant
		// routes resolve through the real registry load path.
		var tenantNames []string
		if *tenants > 0 {
			fleetRoot, err := os.MkdirTemp("", "loadbench-fleet-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(fleetRoot)
			tenantNames, err = writeTenantFleet(fleetRoot, c.Summary(), *tenants)
			if err != nil {
				return err
			}
			sopts.Fleet = fleet.NewRegistry(fleet.RegistryOptions{
				Root: fleetRoot, MaxResident: *tenants,
			})
		}
		handler := serve.NewHandlerOptions(c, sopts)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := defaultTuning().server(handler)
		go srv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		base := "http://" + ln.Addr().String()
		serverBase = base
		fmt.Fprintf(stdout, "in-process server on %s\n", base)
		target = loadgen.NewHTTPTarget(base, core.Method(*method), nil)
		batchTarget = loadgen.NewHTTPBatchTarget(base, core.Method(*method), nil)
		for _, name := range tenantNames {
			tenantTargets = append(tenantTargets,
				loadgen.NewHTTPTarget(base, core.Method(*method), nil).
					WithPath("/v1/t/"+name+"/estimate"))
		}
		scrapeMetrics = func() (*obs.Snapshot, error) {
			s := handler.Metrics().Snapshot()
			return &s, nil
		}
	}
	if *batch > 1 && batchTarget == nil {
		return fmt.Errorf("loadbench: -batch requires an HTTP target (drop -inproc)")
	}
	if *tenants > 0 && len(tenantTargets) == 0 {
		return fmt.Errorf("loadbench: -tenants requires the default in-process server (drop -inproc and -url)")
	}

	opts := loadgen.Options{
		Concurrency: *concurrency,
		Warmup:      *warmup,
		OpenLoopQPS: *qps,
	}
	if *requests > 0 {
		opts.Requests = *requests
		cfg.Requests = *requests
	} else {
		opts.Duration = *duration
		cfg.DurationSec = duration.Seconds()
	}
	cfg.WarmupSec = warmup.Seconds()
	cfg.OpenLoopQPS = *qps

	res, err := loadgen.Run(context.Background(), target, w, opts)
	if err != nil {
		return err
	}

	// Batched pass over the same workload: identical stopping rule and
	// concurrency, queries carried -batch at a time per request.
	var batchRes *loadgen.Result
	if *batch > 1 {
		cfg.Batch = *batch
		bopts := opts
		bopts.BatchSize = *batch
		batchRes, err = loadgen.Run(context.Background(), batchTarget, w, bopts)
		if err != nil {
			return err
		}
	}

	// Multi-tenant mix: the same workload and stopping rule, driven
	// round-robin across the tenant routes, so the registry lookup,
	// per-tenant quota check, and per-tenant metrics are on the path.
	var tenantRes *loadgen.Result
	if len(tenantTargets) > 0 {
		cfg.Tenants = *tenants
		tenantRes, err = loadgen.Run(context.Background(),
			loadgen.RoundRobin(tenantTargets...), w, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tenants ×%d: %.0f req/s over %.2fs (%d issued, %d errors)\n",
			*tenants, tenantRes.AchievedQPS, tenantRes.ElapsedSeconds,
			tenantRes.Issued, tenantRes.Errors)
	}

	// Method sweep: every requested estimator in-process over the same
	// workload, timed and scored, so one report answers "which method, at
	// what cost, for what accuracy" side by side.
	var methodRows []methodReport
	if *methodsSpec != "" {
		methodRows, err = sweepMethods(context.Background(), c, trees, w,
			*methodsSpec, *concurrency, *sweepRequests, *accQueries, stdout)
		if err != nil {
			return err
		}
	}

	// Backend comparison: one row per snapshot form, reloaded through the
	// format-sniffing serving path and driven in-process.
	var backendRows []backendReport
	if *backends {
		backendRows, err = sweepBackends(context.Background(), c, w,
			core.Method(*method), *concurrency, *sweepRequests, stdout)
		if err != nil {
			return err
		}
	}

	// Mixed read/write pass: ingest-enabled copy of the corpus, estimates
	// and document uploads concurrently through the full HTTP path.
	var ingestRep *ingestReport
	if *ingestMix {
		ingestRep, err = runIngestMix(context.Background(), corpusDir, w,
			core.Method(*method), *concurrency, *ingestDur, stdout)
		if err != nil {
			return err
		}
	}

	// Plan-vs-naive twig execution matrix over the Table 3 datasets, plus
	// (when the default in-process server is up) a served /v1/query mix so
	// the full HTTP execution path has numbers on the record too.
	var queryPlan *queryPlanReport
	if *queryMatrix {
		rows, err := runQueryPlanMatrix(context.Background(), datagen.AllProfiles(),
			*queryScale, *k, *seed, *queryPasses, stdout)
		if err != nil {
			return err
		}
		queryPlan = &queryPlanReport{Datasets: rows}
		if serverBase != "" {
			qt := loadgen.NewHTTPTarget(serverBase, "", nil).
				WithPath("/v1/query").WithParam("count", "1")
			mixRes, err := loadgen.Run(context.Background(), qt, w, opts)
			if err != nil {
				return err
			}
			queryPlan.ServedMix = mixRes
			fmt.Fprintf(stdout, "served /v1/query mix: %.0f req/s  p50=%.3fms p99=%.3fms (%d issued, %d errors)\n",
				mixRes.AchievedQPS, mixRes.Latency.P50*1e3, mixRes.Latency.P99*1e3,
				mixRes.Issued, mixRes.Errors)
		}
	}

	// Shard-replica scaling sweep: the fleet-scaling headline number.
	var scaleRows []replicaScaleRow
	if *replicasSpec != "" {
		counts, err := parseIntList(*replicasSpec, "-replicas")
		if err != nil {
			return err
		}
		cfg.Replicas = counts
		cfg.ServiceMs = float64(*service) / 1e6
		scaleRows, err = runShardScaling(context.Background(), c, w,
			counts, *service, *scaleDur, core.Method(*method), stdout)
		if err != nil {
			return err
		}
	}

	report := benchReport{
		Config: cfg,
		Workload: workloadSummary{
			Queries: len(w.Items), Positives: w.Positives, Negatives: w.Negatives,
		},
		Result:       res,
		BatchResult:  batchRes,
		Methods:      methodRows,
		ShardScaling: scaleRows,
		TenantResult: tenantRes,
		Backends:     backendRows,
		Ingest:       ingestRep,
		QueryPlan:    queryPlan,
	}
	if scrapeMetrics != nil {
		snap, err := scrapeMetrics()
		if err != nil {
			return fmt.Errorf("loadbench: scraping server metrics: %w", err)
		}
		report.ServerMetrics = snap
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%s %s: %.0f req/s over %.2fs (%d issued, %d errors)\n",
		res.Mode, res.Target, res.AchievedQPS, res.ElapsedSeconds, res.Issued, res.Errors)
	fmt.Fprintf(stdout, "latency p50=%.3fms p95=%.3fms p99=%.3fms\n",
		res.Latency.P50*1e3, res.Latency.P95*1e3, res.Latency.P99*1e3)
	if batchRes != nil {
		fmt.Fprintf(stdout, "batched ×%d %s: %.0f queries/s over %.2fs (%d issued, %d errors)\n",
			batchRes.BatchSize, batchRes.Target, batchRes.AchievedQPS,
			batchRes.ElapsedSeconds, batchRes.Issued, batchRes.Errors)
		if res.AchievedQPS > 0 {
			fmt.Fprintf(stdout, "batched throughput = %.2f× single\n",
				batchRes.AchievedQPS/res.AchievedQPS)
		}
	}
	fmt.Fprintf(stdout, "report written to %s\n", *out)
	return nil
}

// sweepMethods drives each requested estimator in-process over the
// workload and scores it against exact counts, producing the report's
// accuracy×latency matrix. spec is "all" (every registered method) or a
// comma list; unknown names fail the run with the registry's method list
// in the error.
func sweepMethods(ctx context.Context, c *corpus.Corpus, trees []*labeltree.Tree, w *loadgen.Workload, spec string, concurrency, requests, accQueries int, stdout io.Writer) ([]methodReport, error) {
	sum := c.Summary()
	var methods []core.Method
	if spec == "all" {
		methods = sum.Registry().Methods()
	} else {
		for _, part := range strings.Split(spec, ",") {
			methods = append(methods, core.Method(strings.TrimSpace(part)))
		}
	}
	rows := make([]methodReport, 0, len(methods))
	for _, m := range methods {
		if _, err := sum.LookupMethod(m); err != nil {
			return nil, err
		}
		row := methodReport{Method: string(m)}

		// First estimate pays the lazy Prepare (index/table/sketch build);
		// time it separately so steady-state latency stays clean. A blown
		// probe budget on this one query is a per-query outcome, not a
		// prepare failure.
		prepStart := time.Now()
		if _, err := sum.EstimateStrict(ctx, w.Items[0].Pattern, m); err != nil &&
			!errors.Is(err, core.ErrBudgetExhausted) {
			return nil, fmt.Errorf("loadbench: method %s failed on first query: %w", m, err)
		}
		row.PrepareMs = float64(time.Since(prepStart)) / 1e6

		target, err := loadgen.NewEstimatorTarget(sum, m)
		if err != nil {
			return nil, err
		}
		res, err := loadgen.Run(ctx, target, w, loadgen.Options{
			Concurrency: concurrency, Requests: requests,
		})
		if err != nil {
			return nil, err
		}
		row.AchievedQPS = res.AchievedQPS
		row.P50ms = res.Latency.P50 * 1e3
		row.P95ms = res.Latency.P95 * 1e3
		row.P99ms = res.Latency.P99 * 1e3
		row.Errors = res.Errors

		acc, err := loadgen.MeasureAccuracy(ctx, sum, trees, w, m, accQueries)
		if err != nil {
			return nil, fmt.Errorf("loadbench: scoring method %s: %w", m, err)
		}
		row.Accuracy = acc

		line := fmt.Sprintf("method %-17s %9.0f req/s  p50=%.3fms p95=%.3fms  q-err mean=%.2f p95=%.2f",
			m, row.AchievedQPS, row.P50ms, row.P95ms, acc.MeanQError, acc.P95QError)
		if acc.Checked > 0 {
			line += fmt.Sprintf("  divergent %d/%d", acc.Divergent, acc.Checked)
		}
		fmt.Fprintln(stdout, line)
		rows = append(rows, row)
	}
	return rows, nil
}

// sweepBackends snapshots the corpus summary in each on-disk form (TLAT
// frozen, TLCZ compressed), reloads it through core.OpenSnapshotFile —
// the same magic-sniffing path serving replicas use — and drives the
// workload in-process against each, producing the report's backend
// matrix. Snapshots load against the corpus dictionary so the workload's
// already-parsed queries stay valid.
func sweepBackends(ctx context.Context, c *corpus.Corpus, w *loadgen.Workload, method core.Method, concurrency, requests int, stdout io.Writer) ([]backendReport, error) {
	tmp, err := os.MkdirTemp("", "loadbench-backend-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	sum := c.Summary()
	kinds := []struct {
		name  string
		write func(io.Writer) (int64, error)
	}{
		{"frozen", sum.WriteTo},
		{"compressed", sum.WriteCompressed},
	}
	rows := make([]backendReport, 0, len(kinds))
	for _, kind := range kinds {
		path := filepath.Join(tmp, "summary-"+kind.name+".tlat")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if _, err := kind.write(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		loaded, err := core.OpenSnapshotFile(path, c.Dict())
		if err != nil {
			return nil, fmt.Errorf("loadbench: reloading %s snapshot: %w", kind.name, err)
		}
		target, err := loadgen.NewEstimatorTarget(loaded, method)
		if err != nil {
			return nil, err
		}
		res, err := loadgen.Run(ctx, target, w, loadgen.Options{
			Concurrency: concurrency, Requests: requests,
		})
		if err != nil {
			return nil, err
		}
		row := backendReport{
			Backend:       loaded.StoreKind(),
			SnapshotBytes: info.Size(),
			ResidentBytes: loaded.ResidentBytes(),
			AchievedQPS:   res.AchievedQPS,
			P50ms:         res.Latency.P50 * 1e3,
			P95ms:         res.Latency.P95 * 1e3,
			P99ms:         res.Latency.P99 * 1e3,
			Errors:        res.Errors,
		}
		fmt.Fprintf(stdout, "backend %-10s %9.0f req/s  p50=%.3fms p95=%.3fms  snapshot=%dB resident=%dB\n",
			row.Backend, row.AchievedQPS, row.P50ms, row.P95ms, row.SnapshotBytes, row.ResidentBytes)
		rows = append(rows, row)
	}
	return rows, nil
}

// runIngestMix measures read latency under continuous ingest: it copies
// the corpus into a throwaway directory (the pipeline writes snapshots
// and delta documents; the benchmarked corpus must stay untouched),
// enables zero-downtime ingest with an aggressive refreeze cadence, and
// drives the estimate workload over HTTP while a writer goroutine
// streams small generated documents through POST /v1/docs. Reads and
// writes share the full serving path, so the row reflects epoch swaps,
// refreeze churn, and (if the writer outruns the refreezer) 429
// backpressure.
func runIngestMix(ctx context.Context, srcDir string, w *loadgen.Workload, method core.Method, concurrency int, dur time.Duration, stdout io.Writer) (*ingestReport, error) {
	tmp, err := os.MkdirTemp("", "loadbench-ingest-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	if err := copyDirTree(srcDir, tmp); err != nil {
		return nil, err
	}
	c, err := corpus.Open(tmp)
	if err != nil {
		return nil, err
	}
	err = c.EnableIngest(corpus.IngestOptions{
		RefreezeInterval: 500 * time.Millisecond,
		MaxDeltaDocs:     16,
	})
	if err != nil {
		return nil, err
	}
	defer c.DisableIngest()

	handler := serve.NewHandlerOptions(c, serve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := defaultTuning().server(handler)
	go srv.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	base := "http://" + ln.Addr().String()

	wctx, cancelWrites := context.WithCancel(ctx)
	defer cancelWrites()
	var docsAdded, writeErrs, backpressured int
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		dict := labeltree.NewDict()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-wctx.Done():
				return
			case <-tick.C:
			}
			tree, err := datagen.Generate(datagen.Config{
				Profile: datagen.Profile("xmark"), Scale: 300, Seed: int64(i) + 1,
			}, dict)
			if err != nil {
				writeErrs++
				continue
			}
			var b strings.Builder
			writeTreeXML(&b, tree, 0)
			url := fmt.Sprintf("%s/v1/docs/ingest-%05d", base, i)
			req, err := http.NewRequestWithContext(wctx, http.MethodPost, url, strings.NewReader(b.String()))
			if err != nil {
				writeErrs++
				continue
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				if wctx.Err() != nil {
					return
				}
				writeErrs++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusCreated:
				docsAdded++
			case http.StatusTooManyRequests:
				backpressured++ // delta over its hard limit; refreezer catching up
			default:
				writeErrs++
			}
		}
	}()

	target := loadgen.NewHTTPTarget(base, method, nil)
	res, err := loadgen.Run(ctx, target, w, loadgen.Options{
		Concurrency: concurrency, Duration: dur, Warmup: dur / 8,
	})
	cancelWrites()
	<-writerDone
	if err != nil {
		return nil, err
	}
	rep := &ingestReport{
		ReadResult:    res,
		DocsAdded:     docsAdded,
		WriteErrors:   writeErrs,
		Backpressured: backpressured,
		Stats:         c.IngestStats(),
	}
	fmt.Fprintf(stdout, "ingest mix: %.0f reads/s  p50=%.3fms p99=%.3fms  |  %d docs added, %d backpressured, epoch %d, %d refreezes\n",
		res.AchievedQPS, res.Latency.P50*1e3, res.Latency.P99*1e3,
		rep.DocsAdded, rep.Backpressured, rep.Stats.Epoch, rep.Stats.Refreezes)
	return rep, nil
}

// copyDirTree copies a directory recursively (regular files only — the
// corpus layout holds nothing else).
func copyDirTree(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return err
			}
			if err := copyDirTree(s, d); err != nil {
				return err
			}
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// parseSizes parses "3,4,5".
func parseSizes(s string) ([]int, error) { return parseIntList(s, "-sizes") }

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s, flagName string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("loadbench: invalid %s entry %q", flagName, p)
		}
		out = append(out, n)
	}
	return out, nil
}

// generatedCorpus creates a corpus in dir holding one synthetic document.
func generatedCorpus(dir string, profile datagen.Profile, scale, k int, seed int64) (*corpus.Corpus, error) {
	c, err := corpus.Create(dir, corpus.Options{K: k})
	if err != nil {
		return nil, err
	}
	dict := labeltree.NewDict()
	tree, err := datagen.Generate(datagen.Config{Profile: profile, Scale: scale, Seed: seed}, dict)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	writeTreeXML(&b, tree, 0)
	if err := c.AddXML(string(profile), strings.NewReader(b.String())); err != nil {
		return nil, err
	}
	return c, nil
}

// writeTreeXML renders a label tree as XML (labels are element names;
// datagen label alphabets are valid XML names).
func writeTreeXML(b *strings.Builder, t *labeltree.Tree, node int32) {
	name := t.LabelName(node)
	kids := t.Children(node)
	if len(kids) == 0 {
		fmt.Fprintf(b, "<%s/>", name)
		return
	}
	fmt.Fprintf(b, "<%s>", name)
	for _, c := range kids {
		writeTreeXML(b, t, c)
	}
	fmt.Fprintf(b, "</%s>", name)
}

// scrapeHTTPMetrics fetches a live server's /v1/metrics.
func scrapeHTTPMetrics(base string) (*obs.Snapshot, error) {
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics endpoint returned %d", resp.StatusCode)
	}
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
