// Command treelattice builds lattice summaries of XML documents and
// estimates twig-query selectivities from them.
//
// Usage:
//
//	treelattice build -in doc.xml -out doc.tlat [-k 4] [-prune DELTA]
//	treelattice estimate -summary doc.tlat -query "a(b,c(d))" [-method recursive+voting]
//	treelattice exact -in doc.xml -query "a(b,c(d))"
//	treelattice stats -summary doc.tlat
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"treelattice"
	"treelattice/internal/core"
	"treelattice/internal/fsx"
	"treelattice/internal/labeltree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:], os.Stdout)
	case "estimate":
		err = runEstimate(os.Args[2:], os.Stdout)
	case "exact":
		err = runExact(os.Args[2:], os.Stdout)
	case "stats":
		err = runStats(os.Args[2:], os.Stdout)
	case "explain":
		err = runExplain(os.Args[2:], os.Stdout)
	case "corpus":
		err = runCorpus(os.Args[2:], os.Stdout)
	case "serve":
		err = runServe(os.Args[2:], os.Stdout)
	case "shard":
		err = runShard(os.Args[2:], os.Stdout)
	case "loadbench":
		err = runLoadbench(os.Args[2:], os.Stdout)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "treelattice:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: treelattice <build|estimate|exact|stats|explain|corpus|serve|shard|loadbench> [flags]

  build     mine a K-lattice summary from an XML document
  estimate  estimate a twig query's selectivity from a summary
  exact     count a twig query's true selectivity in a document
  stats     describe a summary file
  explain   estimate with trace and decomposition-spread interval
  corpus    manage a document corpus (init | add | addall | rm | stats)
  serve     expose a corpus over HTTP (graceful shutdown on SIGINT/SIGTERM)
  shard     split a corpus into N shard snapshots for fleet serving
  loadbench drive estimation load against a corpus and report QPS/latency`)
	os.Exit(2)
}

func runBuild(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input XML document")
	out := fs.String("out", "", "output summary file")
	k := fs.Int("k", 4, "lattice level")
	workers := fs.Int("workers", 0, "build parallelism (0 = all CPUs)")
	prune := fs.Float64("prune", -1, "prune delta-derivable patterns (e.g. 0 or 0.1); negative disables")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("build: -in and -out are required")
	}
	dict := treelattice.NewDict()
	tree, err := parseFile(*in, dict)
	if err != nil {
		return err
	}
	sum, err := treelattice.BuildContext(context.Background(), tree,
		treelattice.BuildOptions{K: *k, Workers: *workers})
	if err != nil {
		return err
	}
	if *prune >= 0 {
		before := sum.SizeBytes()
		sum = sum.Prune(*prune)
		fmt.Fprintf(stdout, "pruned delta=%.2f: %d -> %d bytes\n", *prune, before, sum.SizeBytes())
	}
	var n int64
	err = fsx.WriteFileAtomic(*out, func(w io.Writer) error {
		var werr error
		n, werr = sum.WriteTo(w)
		return werr
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "summary: %d patterns (K=%d), %d bytes on disk\n", sum.Patterns(), sum.K(), n)
	return nil
}

func runEstimate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	summaryPath := fs.String("summary", "", "summary file from 'build'")
	query := fs.String("query", "", `twig query, e.g. "a(b,c(d))"`)
	method := fs.String("method", string(core.MethodRecursiveVoting), "recursive | recursive+voting | fix-sized")
	fs.Parse(args)
	if *summaryPath == "" || *query == "" {
		return fmt.Errorf("estimate: -summary and -query are required")
	}
	sum, err := loadSummary(*summaryPath)
	if err != nil {
		return err
	}
	est, err := sum.EstimateQuery(*query, core.Method(*method))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%.2f\n", est)
	return nil
}

func runExact(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("exact", flag.ExitOnError)
	in := fs.String("in", "", "input XML document")
	query := fs.String("query", "", "twig query")
	fs.Parse(args)
	if *in == "" || *query == "" {
		return fmt.Errorf("exact: -in and -query are required")
	}
	dict := treelattice.NewDict()
	tree, err := parseFile(*in, dict)
	if err != nil {
		return err
	}
	q, err := labeltree.ParsePattern(*query, dict)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, treelattice.ExactCount(tree, q))
	return nil
}

func runStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	summaryPath := fs.String("summary", "", "summary file from 'build'")
	fs.Parse(args)
	if *summaryPath == "" {
		return fmt.Errorf("stats: -summary is required")
	}
	sum, err := loadSummary(*summaryPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "K=%d patterns=%d bytes=%d pruned=%v\n",
		sum.K(), sum.Patterns(), sum.SizeBytes(), sum.Lattice().Pruned())
	for level, n := range sum.Lattice().LevelSizes() {
		if level > 0 {
			fmt.Fprintf(stdout, "  level %d: %d patterns\n", level, n)
		}
	}
	return nil
}

func parseFile(path string, dict *treelattice.Dict) (*treelattice.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return treelattice.ParseXML(f, dict)
}

func loadSummary(path string) (*treelattice.Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return treelattice.ReadSummary(f, treelattice.NewDict())
}
