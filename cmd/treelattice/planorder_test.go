package main

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/datagen"
	"treelattice/internal/twigjoin"
)

// matchKey canonicalizes one match tuple for set comparison: the bind
// order changes enumeration order, never the set of tuples.
func matchKey(m core.QueryMatch) string {
	return fmt.Sprintf("%s|%v", m.Doc, m.Nodes)
}

// matchSet sorts the serialized tuples of a result.
func matchSet(r *core.QueryResult) []string {
	keys := make([]string, len(r.Matches))
	for i, m := range r.Matches {
		keys[i] = matchKey(m)
	}
	sort.Strings(keys)
	return keys
}

// assertPlanOrderSame executes every query under the planner-chosen and
// the stored (naive) bind order and requires bit-identical counts; when
// neither side truncates, the materialized match sets must be identical
// too. Queries that blow the node budget under either order are skipped
// — the combinatorial outliers the benchmark matrix also excludes.
func assertPlanOrderSame(t *testing.T, sum *core.Summary, qs []twigjoin.Query, label string) {
	t.Helper()
	const limit = 500
	ctx := context.Background()
	checked := 0
	for qi, q := range qs {
		planned, err := sum.ExecuteQueryContext(ctx, q,
			core.QueryOptions{Limit: limit, NodeBudget: queryPlanNodeBudget})
		if err != nil {
			t.Fatalf("%s: query %d planned exec: %v", label, qi, err)
		}
		naive, err := sum.ExecuteQueryContext(ctx, q,
			core.QueryOptions{Limit: limit, NodeBudget: queryPlanNodeBudget, NaiveOrder: true})
		if err != nil {
			t.Fatalf("%s: query %d naive exec: %v", label, qi, err)
		}
		if planned.Degraded || naive.Degraded {
			continue
		}
		if planned.Count != naive.Count {
			t.Fatalf("%s: query %d: planned count %d != naive count %d",
				label, qi, planned.Count, naive.Count)
		}
		if !planned.Truncated && !naive.Truncated {
			p, n := matchSet(planned), matchSet(naive)
			for i := range p {
				if p[i] != n[i] {
					t.Fatalf("%s: query %d: match sets differ at %d: %q vs %q",
						label, qi, i, p[i], n[i])
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("%s: every query was skipped; differential checked nothing", label)
	}
}

// TestPlanOrderDifferential is the executor's correctness gate for
// planner-driven bind orders: on every Table 3 profile, the
// planner-chosen order must produce bit-identical match sets and counts
// to the stored-numbering baseline — on the map-backed lattice, after
// Freeze (TLAT snapshot store), after Compress (TLCZ store), and again
// on the fresh epoch summary published by a zero-downtime ingest
// refreeze. The backends drive different estimate plumbing into the
// planner; none of them may change an answer.
func TestPlanOrderDifferential(t *testing.T) {
	for _, profile := range datagen.AllProfiles() {
		t.Run(string(profile), func(t *testing.T) {
			dir := t.TempDir()
			c, err := generatedCorpus(dir, profile, 1200, 3, 17)
			if err != nil {
				t.Fatal(err)
			}
			sum := c.Summary()
			qs, err := queryPlanQueries(sum, c.Trees(), c.Dict(), 17)
			if err != nil {
				t.Fatal(err)
			}
			if len(qs) > 20 {
				qs = qs[:20]
			}

			assertPlanOrderSame(t, sum, qs, "map")
			sum.Freeze()
			assertPlanOrderSame(t, sum, qs, "frozen")
			sum.Compress()
			assertPlanOrderSame(t, sum, qs, "compressed")

			// A new epoch: ingest two more generated documents and refreeze,
			// then rerun the differential against the published summary.
			if err := c.EnableIngest(corpus.IngestOptions{}); err != nil {
				t.Fatal(err)
			}
			defer c.DisableIngest()
			for i := 0; i < 2; i++ {
				tree, err := datagen.Generate(datagen.Config{
					Profile: profile, Scale: 300, Seed: int64(100 + i),
				}, c.Dict())
				if err != nil {
					t.Fatal(err)
				}
				var b strings.Builder
				writeTreeXML(&b, tree, 0)
				name := fmt.Sprintf("%s-ingest-%d", profile, i)
				if err := c.AddXML(name, strings.NewReader(b.String())); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Refreeze(context.Background()); err != nil {
				t.Fatal(err)
			}
			assertPlanOrderSame(t, c.Summary(), qs, "post-ingest epoch")
		})
	}
}
