package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"treelattice/internal/corpus"
	"treelattice/internal/serve"
)

// readReport parses a BENCH_serve.json.
func readReport(t *testing.T, path string) benchReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("BENCH_serve.json is not well-formed: %v\n%s", err, data)
	}
	return r
}

// TestLoadbenchGeneratedCorpus is the end-to-end acceptance path: a
// generated corpus, an in-process server, a fixed-request closed-loop run,
// and a well-formed report whose server-side request total matches the
// driver's issued count.
func TestLoadbenchGeneratedCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := runLoadbench([]string{
		"-gen", "nasa", "-scale", "2000", "-k", "3",
		"-requests", "150", "-warmup", "0s", "-concurrency", "4",
		"-sizes", "3,4", "-persize", "10", "-neg", "0.2", "-seed", "11",
		"-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	r := readReport(t, out)
	if r.Result == nil {
		t.Fatal("report missing result")
	}
	if r.Result.Issued != 150 {
		t.Errorf("issued = %d, want 150", r.Result.Issued)
	}
	if r.Result.AchievedQPS <= 0 {
		t.Errorf("achieved_qps = %v", r.Result.AchievedQPS)
	}
	lat := r.Result.Latency
	if lat.Count != r.Result.Issued {
		t.Errorf("latency count %d != issued %d", lat.Count, r.Result.Issued)
	}
	if lat.P50 < 0 || lat.P95 < lat.P50 || lat.P99 < lat.P95 {
		t.Errorf("quantiles not ordered: p50=%v p95=%v p99=%v", lat.P50, lat.P95, lat.P99)
	}
	if r.ServerMetrics == nil {
		t.Fatal("report missing server metrics")
	}
	// No warmup: the server-side per-endpoint total must equal the
	// driver's issued count exactly.
	if got := r.ServerMetrics.Counters["http.estimate.requests"]; got != r.Result.Issued {
		t.Errorf("server estimate requests = %d, driver issued %d", got, r.Result.Issued)
	}
	if hist, ok := r.ServerMetrics.Histograms["http.estimate.latency_seconds"]; !ok || hist.Count != r.Result.Issued {
		t.Errorf("server latency histogram count = %d, want %d", hist.Count, r.Result.Issued)
	}
	if r.Config.Seed != 11 || r.Config.K != 3 {
		t.Errorf("config not recorded: %+v", r.Config)
	}
	if r.Workload.Queries == 0 || r.Workload.Negatives == 0 {
		t.Errorf("workload summary empty: %+v", r.Workload)
	}
}

// TestLoadbenchInprocAndSeed checks the -inproc target and that rerunning
// with the same seed issues the identical workload.
func TestLoadbenchInprocAndSeed(t *testing.T) {
	dir := t.TempDir()
	run := func(seed string) benchReport {
		out := filepath.Join(dir, "bench-"+seed+".json")
		var buf bytes.Buffer
		err := runLoadbench([]string{
			"-gen", "psd", "-scale", "1500", "-k", "3", "-inproc",
			"-requests", "80", "-warmup", "0s", "-concurrency", "2",
			"-sizes", "3", "-persize", "8", "-seed", seed, "-out", out,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return readReport(t, out)
	}
	a, b := run("3"), run("3")
	if a.ServerMetrics != nil {
		t.Error("inproc run should have no server metrics")
	}
	if !strings.HasPrefix(a.Result.Target, "inprocess:") {
		t.Errorf("target = %q", a.Result.Target)
	}
	if a.Workload != b.Workload {
		t.Errorf("same seed produced different workload summaries: %+v vs %+v", a.Workload, b.Workload)
	}
}

// TestLoadbenchShardScalingAndTenants covers the fleet additions to the
// report schema: the -replicas 1→N shard-scaling matrix and the -tenants
// round-robin mix over the /v1/t routes, including the per-tenant
// counters the server publishes.
func TestLoadbenchShardScalingAndTenants(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := runLoadbench([]string{
		"-gen", "psd", "-scale", "1500", "-k", "3",
		"-requests", "60", "-warmup", "0s", "-concurrency", "2",
		"-sizes", "3", "-persize", "8", "-seed", "5",
		"-replicas", "1,2", "-service", "2ms", "-scaledur", "400ms",
		"-tenants", "2", "-backends", "-sweeprequests", "40",
		"-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	r := readReport(t, out)

	if len(r.ShardScaling) != 2 {
		t.Fatalf("shard_scaling rows = %d, want 2\n%s", len(r.ShardScaling), buf.String())
	}
	for i, row := range r.ShardScaling {
		if row.Replicas != []int{1, 2}[i] {
			t.Errorf("row %d replicas = %d", i, row.Replicas)
		}
		if row.AchievedQPS <= 0 || row.DeadlineMs <= 0 {
			t.Errorf("row %d not measured: %+v", i, row)
		}
		if row.P99ms < row.P50ms {
			t.Errorf("row %d quantiles not ordered: %+v", i, row)
		}
		if row.Errors != 0 {
			t.Errorf("row %d had %d errors", i, row.Errors)
		}
	}
	// The first row is its own baseline by construction; later rows are
	// only sanity-bounded here (the acceptance threshold is checked on
	// real `make bench` runs, not under test-runner contention).
	if lf := r.ShardScaling[0].LinearFraction; lf != 1 {
		t.Errorf("baseline linear_fraction = %v, want 1", lf)
	}
	if lf := r.ShardScaling[1].LinearFraction; lf <= 0.3 {
		t.Errorf("2-replica linear_fraction = %v, want > 0.3", lf)
	}
	if r.Config.Replicas[0] != 1 || r.Config.Replicas[1] != 2 || r.Config.ServiceMs != 2 {
		t.Errorf("scaling config not recorded: %+v", r.Config)
	}

	if r.TenantResult == nil {
		t.Fatal("report missing tenant_result")
	}
	if r.TenantResult.Issued != 60 || r.TenantResult.Errors != 0 {
		t.Errorf("tenant run: %+v", r.TenantResult)
	}
	if !strings.HasPrefix(r.TenantResult.Target, "roundrobin(2)") {
		t.Errorf("tenant target = %q", r.TenantResult.Target)
	}
	if r.Config.Tenants != 2 {
		t.Errorf("tenants config not recorded: %+v", r.Config)
	}
	// The backend matrix: one frozen and one compressed row over the same
	// workload, with the compressed snapshot both smaller on disk and
	// smaller resident.
	if len(r.Backends) != 2 {
		t.Fatalf("backends rows = %d, want 2\n%s", len(r.Backends), buf.String())
	}
	froz, comp := r.Backends[0], r.Backends[1]
	if froz.Backend != "frozen" || comp.Backend != "compressed" {
		t.Fatalf("backend rows mislabeled: %q, %q", froz.Backend, comp.Backend)
	}
	for _, row := range r.Backends {
		if row.AchievedQPS <= 0 || row.Errors != 0 {
			t.Errorf("backend %s not measured cleanly: %+v", row.Backend, row)
		}
		if row.SnapshotBytes <= 0 || row.ResidentBytes <= 0 {
			t.Errorf("backend %s missing size accounting: %+v", row.Backend, row)
		}
	}
	// Disk sizes are reported, not compared: the TLAT stream is already
	// uvarint-compact, and at test scale TLCZ's fixed header and fence
	// sections can outweigh the front-coding. The resident footprint is
	// where the compressed backend must win.
	if comp.ResidentBytes >= froz.ResidentBytes {
		t.Errorf("compressed resident %d B not smaller than frozen %d B",
			comp.ResidentBytes, froz.ResidentBytes)
	}

	// The tenant mix ran through the real registry: per-tenant counters
	// account for every request, split across both tenants.
	if r.ServerMetrics == nil {
		t.Fatal("report missing server metrics")
	}
	t0 := r.ServerMetrics.Counters["tenant.t0.requests"]
	t1 := r.ServerMetrics.Counters["tenant.t1.requests"]
	if t0+t1 != 60 || t0 == 0 || t1 == 0 {
		t.Errorf("per-tenant requests t0=%d t1=%d, want a 60-request split", t0, t1)
	}
}

// TestLoadbenchQueryPlanMatrix covers the -query report section: the
// plan-vs-naive execution matrix over the four Table 3 profiles plus
// the served /v1/query count-only mix over the full HTTP path.
func TestLoadbenchQueryPlanMatrix(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := runLoadbench([]string{
		"-gen", "nasa", "-scale", "1500", "-k", "3",
		"-requests", "40", "-warmup", "0s", "-concurrency", "2",
		"-sizes", "3", "-persize", "8", "-seed", "7",
		"-query", "-queryscale", "1500", "-querypasses", "1",
		"-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	r := readReport(t, out)
	if r.QueryPlan == nil {
		t.Fatal("report missing query_plan section")
	}
	if len(r.QueryPlan.Datasets) != 4 {
		t.Fatalf("query_plan datasets = %d, want 4\n%s", len(r.QueryPlan.Datasets), buf.String())
	}
	for _, row := range r.QueryPlan.Datasets {
		if row.Queries == 0 {
			t.Errorf("%s: no queries survived screening", row.Dataset)
		}
		if row.PlanCandidates <= 0 || row.NaiveCandidates <= 0 {
			t.Errorf("%s: candidate totals not recorded: %+v", row.Dataset, row)
		}
		if row.CandidateReduction <= 0 {
			t.Errorf("%s: candidate_reduction = %v", row.Dataset, row.CandidateReduction)
		}
		// The planner must never be materially worse than the stored order
		// in aggregate; at tiny scale we only bound it away from pathology.
		if row.CandidateReduction < 0.9 {
			t.Errorf("%s: planner worse than naive: %vx", row.Dataset, row.CandidateReduction)
		}
		if row.PlanP50ms < 0 || row.NaiveP50ms < 0 || row.Speedup <= 0 {
			t.Errorf("%s: timings not recorded: %+v", row.Dataset, row)
		}
	}
	// The default in-process server also ran the served count-only mix.
	if r.QueryPlan.ServedMix == nil {
		t.Fatal("query_plan missing served_mix")
	}
	if r.QueryPlan.ServedMix.Issued != 40 || r.QueryPlan.ServedMix.Errors != 0 {
		t.Errorf("served mix: %+v", r.QueryPlan.ServedMix)
	}
	// The mix really hit the /v1/query route, not /v1/estimate.
	if r.ServerMetrics == nil {
		t.Fatal("report missing server metrics")
	}
	if got := r.ServerMetrics.Counters["http.query.requests"]; got != 40 {
		t.Errorf("server query requests = %d, want 40", got)
	}
}

// TestLoadbenchIngestMix covers the -ingest report row: the mixed
// read/write pass must record read-side latency, documents streamed
// through the delta/epoch pipeline, and the final ingest stats.
func TestLoadbenchIngestMix(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := runLoadbench([]string{
		"-gen", "xmark", "-scale", "1500", "-k", "3",
		"-requests", "40", "-warmup", "0s", "-concurrency", "2",
		"-sizes", "3", "-persize", "8", "-seed", "5",
		"-ingest", "-ingestdur", "300ms",
		"-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	r := readReport(t, out)
	if r.Ingest == nil {
		t.Fatal("report missing ingest row")
	}
	if r.Ingest.ReadResult == nil || r.Ingest.ReadResult.Issued == 0 {
		t.Fatalf("ingest read result empty: %+v", r.Ingest.ReadResult)
	}
	if r.Ingest.ReadResult.Errors != 0 {
		t.Errorf("reads failed during ingest: %d", r.Ingest.ReadResult.Errors)
	}
	if r.Ingest.DocsAdded == 0 {
		t.Error("ingest writer added no documents")
	}
	if r.Ingest.WriteErrors != 0 {
		t.Errorf("ingest write errors: %d", r.Ingest.WriteErrors)
	}
	if r.Ingest.Stats.Epoch == 0 {
		t.Errorf("ingest stats did not advance the epoch: %+v", r.Ingest.Stats)
	}
}

func TestLoadbenchFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := runLoadbench([]string{"-requests", "5"}, &buf); err == nil {
		t.Error("missing corpus/gen accepted")
	}
	if err := runLoadbench([]string{"-gen", "nasa", "-corpus", "x", "-requests", "5"}, &buf); err == nil {
		t.Error("both corpus and gen accepted")
	}
	if err := runLoadbench([]string{"-gen", "nasa", "-sizes", "0,x"}, &buf); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := runLoadbench([]string{"-gen", "nasa", "-scale", "500", "-requests", "5",
		"-inproc", "-tenants", "2"}, &buf); err == nil {
		t.Error("-tenants with -inproc accepted")
	}
}

// TestServeGracefulShutdown drives the serve lifecycle: start, answer
// traffic, cancel (as a signal would), and drain cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := runCorpus([]string{"init", "-dir", dir, "-k", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var out safeBuffer
	done := make(chan error, 1)
	go func() {
		done <- serveCorpus(ctx, c, "127.0.0.1:0", "127.0.0.1:0", serve.Options{}, defaultTuning(), &out)
	}()

	base := waitForAddr(t, &out, "serving corpus on ")
	debug := waitForAddr(t, &out, "debug endpoints (pprof, expvar, metrics) on ")

	resp, err := http.Post(base+"/v1/docs/sample", "application/xml", strings.NewReader(testDoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/estimate?q=laptop(brand,price)")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}

	// The debug listener answers on its own port: metrics JSON and pprof.
	for _, path := range []string{"/debug/metrics", "/debug/vars", "/debug/pprof/cmdline"} {
		resp, err = http.Get(debug + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
	// The traffic port does NOT expose pprof.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof on traffic port: status %d, want 404", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "draining in-flight requests") {
		t.Errorf("missing drain log: %q", out.String())
	}
	// The listener is really gone.
	if _, err := http.Get(base + "/v1/stats"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// waitForAddr polls the server log for a line with the given prefix and
// returns the http base URL it names.
func waitForAddr(t *testing.T, out *safeBuffer, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never logged %q: %q", prefix, out.String())
	return ""
}

// safeBuffer is a bytes.Buffer safe for the cross-goroutine read the
// shutdown test performs.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
