package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/loadgen"
	"treelattice/internal/obs"
	"treelattice/internal/twigjoin"
)

// queryPlanRow is one Table 3 dataset's plan-vs-naive execution matrix
// row: the same sampled query set executed count-only under the
// planner-chosen bind order and the stored-numbering baseline, with the
// executor's candidate counters as the work metric the plan is supposed
// to reduce.
type queryPlanRow struct {
	Dataset string `json:"dataset"`
	Scale   int    `json:"scale"`
	Queries int    `json:"queries"`
	Matches int64  `json:"matches"`
	// PlanCandidates / NaiveCandidates are the executor's candidate
	// totals across the query set. CandidateReduction is the geometric
	// mean of per-query naive/plan candidate ratios — the per-query view,
	// so one combinatorial outlier (where both orders explode alike)
	// cannot drown the mix the way a totals quotient would.
	PlanCandidates     int64   `json:"plan_candidates"`
	NaiveCandidates    int64   `json:"naive_candidates"`
	CandidateReduction float64 `json:"candidate_reduction"`
	TotalReduction     float64 `json:"total_candidate_reduction"`
	PlanP50ms          float64 `json:"plan_p50_ms"`
	NaiveP50ms         float64 `json:"naive_p50_ms"`
	PlanMeanMs         float64 `json:"plan_mean_ms"`
	NaiveMeanMs        float64 `json:"naive_mean_ms"`
	// Speedup is naive mean / plan mean wall-clock per query.
	Speedup float64 `json:"speedup"`
	// CalibrationP50 is the median measured/predicted candidate ratio
	// across the planned executions — the cost model's validation signal.
	CalibrationP50 float64 `json:"calibration_p50"`
	// SkippedBudget counts sampled queries excluded because either
	// execution order blew the per-query node budget — combinatorial
	// outliers both orders lose to alike.
	SkippedBudget int `json:"skipped_budget,omitempty"`
}

// queryPlanNodeBudget caps candidates per matrix execution: a sampled
// query that exceeds it under either bind order is a combinatorial
// outlier (repeated labels force factorial injectivity backtracking)
// and is excluded rather than allowed to dominate the row's wall clock.
const queryPlanNodeBudget = 2_000_000

// queryPlanReport is the BENCH_serve.json query_plan section.
type queryPlanReport struct {
	Datasets []queryPlanRow `json:"datasets"`
	// ServedMix is the /v1/query count-only mix driven over the full HTTP
	// path against the main corpus (default in-process server runs only).
	ServedMix *loadgen.Result `json:"served_mix,omitempty"`
}

// queryPlanQueries samples a descendant-anchored twig query set for the
// matrix: positive patterns from the document, rendered with a leading
// "//" so matches root anywhere. Pure chains are dropped — a chain's
// bind order is forced (parent before child), so it measures only
// planning overhead; the matrix is about queries where bind order is a
// real choice, which means at least one branching node.
func queryPlanQueries(sum *core.Summary, trees []*labeltree.Tree, dict *labeltree.Dict, seed int64) ([]twigjoin.Query, error) {
	// Half the mix is zero-selectivity queries — the selective-branch
	// case the paper's estimates exist to exploit: an estimate-guided
	// order binds the impossible branch first and kills every candidate
	// after one probe, where a naive order enumerates the fat branches
	// before discovering there is nothing to join them to.
	w, err := loadgen.BuildWorkload(trees, dict, loadgen.WorkloadOptions{
		Sizes: []int{5, 6, 7, 8}, PerSize: 40, NegativeFraction: 0.5, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	// Sibling order is shuffled before rendering: the sampled pattern's
	// stored order inherits document order, which the naive baseline then
	// executes — an accidentally-informed baseline. A client writes twig
	// branches in arbitrary order; shuffling makes "naive" mean exactly
	// "the order the query was written in".
	rng := rand.New(rand.NewSource(seed*31 + 7))
	qs := make([]twigjoin.Query, 0, len(w.Items))
	for _, it := range w.Items {
		q, err := sum.ParseTwigQuery("//" + renderShuffled(it.Pattern, dict, rng))
		if err != nil {
			continue // a sampled pattern the twig grammar rejects; skip
		}
		if !hasBranch(q) {
			continue
		}
		qs = append(qs, q)
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("loadbench: dataset produced no branching twig queries")
	}
	return qs, nil
}

// renderShuffled renders a pattern in twig syntax with uniformly random
// sibling order at every node.
func renderShuffled(p labeltree.Pattern, dict *labeltree.Dict, rng *rand.Rand) string {
	kids := make([][]int32, p.Size())
	for i := int32(1); int(i) < p.Size(); i++ {
		kids[p.Parent(i)] = append(kids[p.Parent(i)], i)
	}
	var sb strings.Builder
	var rec func(i int32)
	rec = func(i int32) {
		sb.WriteString(dict.Name(p.Label(i)))
		c := kids[i]
		if len(c) == 0 {
			return
		}
		rng.Shuffle(len(c), func(a, b int) { c[a], c[b] = c[b], c[a] })
		sb.WriteByte('(')
		for j, ch := range c {
			if j > 0 {
				sb.WriteByte(',')
			}
			rec(ch)
		}
		sb.WriteByte(')')
	}
	rec(0)
	return sb.String()
}

// hasBranch reports whether any query node has two or more children.
func hasBranch(q twigjoin.Query) bool {
	p := q.Pattern
	kids := make([]int, p.Size())
	for i := int32(1); int(i) < p.Size(); i++ {
		kids[p.Parent(i)]++
		if kids[p.Parent(i)] >= 2 {
			return true
		}
	}
	return false
}

// runQueryPlanMatrix generates each Table 3 dataset, samples a query
// set, and executes it count-only under planned and naive bind orders,
// verifying match counts stay bit-identical while recording candidates
// and latency. passes repeats the timed loop so per-query wall-clock
// stabilizes; candidates are structural and counted once.
func runQueryPlanMatrix(ctx context.Context, datasets []datagen.Profile, scale, k int, seed int64, passes int, stdout io.Writer) ([]queryPlanRow, error) {
	if passes < 1 {
		passes = 1
	}
	rows := make([]queryPlanRow, 0, len(datasets))
	for _, profile := range datasets {
		tmp, err := os.MkdirTemp("", "loadbench-queryplan-*")
		if err != nil {
			return nil, err
		}
		c, err := generatedCorpus(tmp, profile, scale, k, seed)
		if err != nil {
			os.RemoveAll(tmp)
			return nil, fmt.Errorf("loadbench: generating %s: %w", profile, err)
		}
		sum := c.Summary()
		trees := make([]*labeltree.Tree, 0, len(c.Docs()))
		for _, name := range c.Docs() {
			t, _ := c.Doc(name)
			trees = append(trees, t)
		}
		qs, err := queryPlanQueries(sum, trees, c.Dict(), seed)
		if err != nil {
			os.RemoveAll(tmp)
			return nil, fmt.Errorf("loadbench: sampling %s queries: %w", profile, err)
		}

		row := queryPlanRow{Dataset: string(profile), Scale: scale}
		var calibrations, logRatios []float64

		// Screening pass: run both orders once under the node budget,
		// verify the differential (bit-identical counts), accumulate the
		// structural candidate counters, and drop budget-blowers from the
		// timed set.
		kept := make([]twigjoin.Query, 0, len(qs))
		for qi, q := range qs {
			planned, err := sum.ExecuteQueryContext(ctx, q,
				core.QueryOptions{NodeBudget: queryPlanNodeBudget})
			if err != nil {
				os.RemoveAll(tmp)
				return nil, fmt.Errorf("loadbench: %s planned exec: %w", profile, err)
			}
			naive, err := sum.ExecuteQueryContext(ctx, q,
				core.QueryOptions{NodeBudget: queryPlanNodeBudget, NaiveOrder: true})
			if err != nil {
				os.RemoveAll(tmp)
				return nil, fmt.Errorf("loadbench: %s naive exec: %w", profile, err)
			}
			if planned.Degraded || naive.Degraded {
				row.SkippedBudget++
				continue
			}
			if planned.Count != naive.Count {
				os.RemoveAll(tmp)
				return nil, fmt.Errorf("loadbench: %s query %d: planned count %d != naive count %d",
					profile, qi, planned.Count, naive.Count)
			}
			row.Matches += planned.Count
			row.PlanCandidates += planned.Stats.Candidates
			row.NaiveCandidates += naive.Stats.Candidates
			if planned.Stats.Candidates > 0 && naive.Stats.Candidates > 0 {
				logRatios = append(logRatios,
					math.Log(float64(naive.Stats.Candidates)/float64(planned.Stats.Candidates)))
			}
			if planned.Calibration > 0 {
				calibrations = append(calibrations, planned.Calibration)
			}
			kept = append(kept, q)
		}
		if len(kept) == 0 {
			os.RemoveAll(tmp)
			return nil, fmt.Errorf("loadbench: %s: every sampled query blew the node budget", profile)
		}
		row.Queries = len(kept)

		// Timed passes over the kept set: per-query wall clock both ways,
		// planning included on the planned side — it is part of the price.
		planHist, naiveHist := obs.NewHistogram(nil), obs.NewHistogram(nil)
		var planTotal, naiveTotal time.Duration
		for pass := 0; pass < passes; pass++ {
			for _, q := range kept {
				start := time.Now()
				if _, err := sum.ExecuteQueryContext(ctx, q, core.QueryOptions{}); err != nil {
					os.RemoveAll(tmp)
					return nil, fmt.Errorf("loadbench: %s planned exec: %w", profile, err)
				}
				planDur := time.Since(start)
				start = time.Now()
				if _, err := sum.ExecuteQueryContext(ctx, q, core.QueryOptions{NaiveOrder: true}); err != nil {
					os.RemoveAll(tmp)
					return nil, fmt.Errorf("loadbench: %s naive exec: %w", profile, err)
				}
				naiveDur := time.Since(start)
				planHist.ObserveDuration(planDur)
				naiveHist.ObserveDuration(naiveDur)
				planTotal += planDur
				naiveTotal += naiveDur
			}
		}
		execs := float64(len(kept) * passes)
		row.PlanMeanMs = float64(planTotal) / execs / 1e6
		row.NaiveMeanMs = float64(naiveTotal) / execs / 1e6
		row.PlanP50ms = planHist.Snapshot().P50 * 1e3
		row.NaiveP50ms = naiveHist.Snapshot().P50 * 1e3
		if row.PlanCandidates > 0 {
			row.TotalReduction = float64(row.NaiveCandidates) / float64(row.PlanCandidates)
		}
		if len(logRatios) > 0 {
			var sum float64
			for _, r := range logRatios {
				sum += r
			}
			row.CandidateReduction = math.Exp(sum / float64(len(logRatios)))
		}
		if row.PlanMeanMs > 0 {
			row.Speedup = row.NaiveMeanMs / row.PlanMeanMs
		}
		if len(calibrations) > 0 {
			sort.Float64s(calibrations)
			row.CalibrationP50 = calibrations[len(calibrations)/2]
		}
		fmt.Fprintf(stdout, "query plan %-6s %4d queries  candidates plan=%d naive=%d (%.2fx)  p50 plan=%.3fms naive=%.3fms (%.2fx speedup)\n",
			profile, row.Queries, row.PlanCandidates, row.NaiveCandidates,
			row.CandidateReduction, row.PlanP50ms, row.NaiveP50ms, row.Speedup)
		rows = append(rows, row)
		os.RemoveAll(tmp)
	}
	return rows, nil
}
