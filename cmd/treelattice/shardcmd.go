package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"treelattice/internal/corpus"
	"treelattice/internal/fleet"
	"treelattice/internal/fsx"
)

// runShard splits a corpus into N shard summaries and writes one frozen
// snapshot file per shard into a tenant directory, ready for the fleet
// registry (`treelattice serve -fleet`). Document→shard assignment is
// deterministic (FNV over the document name), so re-sharding the same
// corpus at the same N reproduces the same files, and the shards
// combined by the scatter-gather front end answer bit-identically to
// the corpus's own merged summary.
func runShard(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	dir := fs.String("corpus", "", "corpus directory to shard")
	out := fs.String("out", "", "output tenant directory (one snapshot file per shard)")
	n := fs.Int("n", 4, "number of shards")
	workers := fs.Int("workers", 0, "build parallelism (0 = all CPUs)")
	compress := fs.Bool("compress", false,
		"write compressed (TLCZ) snapshots instead of frozen (TLAT); loaders detect the format by magic")
	fs.Parse(args)
	if *dir == "" || *out == "" {
		return fmt.Errorf("shard: -corpus and -out are required")
	}
	if err := fleet.ValidateName(filepath.Base(*out)); err != nil {
		return fmt.Errorf("shard: output directory name must be a valid tenant name: %w", err)
	}
	c, err := corpus.Open(*dir)
	if err != nil {
		return err
	}
	sums, err := c.BuildShardSummaries(context.Background(), *n, *workers)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for i, sum := range sums {
		name := fleet.ShardFile(i)
		if *n == 1 {
			name = fleet.SummaryFile
		}
		write := sum.WriteTo
		if *compress {
			write = sum.WriteCompressed
		}
		err := fsx.WriteFileAtomic(filepath.Join(*out, name), func(w io.Writer) error {
			_, werr := write(w)
			return werr
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (patterns=%d bytes=%d)\n", name, sum.Patterns(), sum.SizeBytes())
	}
	fmt.Fprintf(stdout, "sharded %d documents into %d shards in %s\n", len(c.Docs()), *n, *out)
	return nil
}
