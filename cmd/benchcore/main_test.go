package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	res, ok := parseBenchLine("BenchmarkKey/size8-8   7423137   162.3 ns/op   24 B/op   1 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if res.Name != "BenchmarkKey/size8" || res.Iterations != 7423137 || res.NsPerOp != 162.3 {
		t.Fatalf("parsed %+v", res)
	}
	if res.BytesPerOp == nil || *res.BytesPerOp != 24 || res.AllocsPerOp == nil || *res.AllocsPerOp != 1 {
		t.Fatalf("memory fields: %+v", res)
	}

	res, ok = parseBenchLine("BenchmarkTable3LatticeConstruction/xmark-8  96  12173255 ns/op  3524 summaryKB  4481237 B/op  40958 allocs/op")
	if !ok {
		t.Fatal("line with custom metric not parsed")
	}
	if res.Metrics["summaryKB"] != 3524 {
		t.Fatalf("custom metric lost: %+v", res.Metrics)
	}

	for _, line := range []string{
		"PASS",
		"ok  \ttreelattice\t4.2s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 1 ns/op",
		"BenchmarkNoTime-8 100 24 B/op", // no ns/op measurement
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}
