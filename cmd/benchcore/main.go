// Command benchcore runs the core micro- and macro-benchmarks of the
// build/estimate hot path — canonical keying (BenchmarkKey and its
// pre-optimization reference), summary construction (Table 3), and
// estimation response time (Figure 9) — and writes the parsed results to
// a JSON report (BENCH_core.json). It starts the BENCH trajectory for
// build/estimate costs alongside the serving-path BENCH_serve.json.
//
// The tool shells out to `go test -bench` and parses the standard
// benchmark output, so the numbers are exactly what a developer sees
// running the benchmarks by hand.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"b_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	BenchRegexp string   `json:"bench_regexp"`
	Benchtime   string   `json:"benchtime"`
	Scale       string   `json:"scale,omitempty"`
	Results     []Result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output report path")
	benchRe := flag.String("bench",
		"BenchmarkKey$|BenchmarkKeyReference$|BenchmarkAppendKey$|BenchmarkKeyBuilderChildKey$|BenchmarkTable3LatticeConstruction$|BenchmarkFigure9ResponseTime$|BenchmarkFrozenLookup$|BenchmarkFigure9ResponseTimeFrozen$|BenchmarkCompressedLookup$|BenchmarkFigure9ResponseTimeCompressed$|BenchmarkTwigExecIndexed$|BenchmarkPlanVsNaive$",
		"go test -bench regexp")
	benchtime := flag.String("benchtime", "", "go test -benchtime (empty = go default)")
	scale := flag.String("scale", "", "TWIG_BENCH_SCALE for the macro benchmarks (empty = package default)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem"}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, "./...")
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if *scale != "" {
		cmd.Env = append(cmd.Env, "TWIG_BENCH_SCALE="+*scale)
	}
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcore: go test: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(stdout.Bytes())

	results := parseBenchOutput(&stdout)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchcore: no benchmark results parsed")
		os.Exit(1)
	}
	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		BenchRegexp: *benchRe,
		Benchtime:   *benchtime,
		Scale:       *scale,
		Results:     results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcore: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchcore: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchcore: wrote %d results to %s\n", len(results), *out)
}

// benchLine matches "BenchmarkName-8   1234   56.7 ns/op ..." prefixes;
// the measurement fields after the iteration count are parsed as
// whitespace-separated (value, unit) pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseBenchOutput(r *bytes.Buffer) []Result {
	var out []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if res, ok := parseBenchLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out
}

// parseBenchLine parses one line of `go test -bench -benchmem` output.
func parseBenchLine(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: m[1], Iterations: iters}
	fields := strings.Fields(m[3])
	seen := false
	for i := 0; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			seen = true
		case "B/op":
			b := int64(val)
			res.BytesPerOp = &b
		case "allocs/op":
			a := int64(val)
			res.AllocsPerOp = &a
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	return res, seen
}
