package treelattice_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"treelattice"
)

const doc = `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`

func TestPublicAPIRoundTrip(t *testing.T) {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(doc), dict)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []treelattice.Method{
		treelattice.MethodRecursive,
		treelattice.MethodRecursiveVoting,
		treelattice.MethodFixSized,
	} {
		got, err := sum.EstimateQuery("//laptop(brand,price)", m)
		if err != nil {
			t.Fatal(err)
		}
		if got != 2 {
			t.Fatalf("%s: estimate = %v, want 2", m, got)
		}
	}
	q, err := treelattice.ParseQuery("laptop(brand)", dict)
	if err != nil {
		t.Fatal(err)
	}
	if got := treelattice.ExactCount(tree, q); got != 2 {
		t.Fatalf("ExactCount = %d, want 2", got)
	}

	var xml, summary bytes.Buffer
	if err := treelattice.WriteXML(&xml, tree); err != nil {
		t.Fatal(err)
	}
	if _, err := sum.WriteTo(&summary); err != nil {
		t.Fatal(err)
	}
	dict2 := treelattice.NewDict()
	sum2, err := treelattice.ReadSummary(&summary, dict2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum2.EstimateQuery("laptop(brand,price)", treelattice.MethodFixSized)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("reloaded estimate = %v, want 2", got)
	}
}

func TestPublicContextAPI(t *testing.T) {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(doc), dict)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sum, err := treelattice.BuildContext(ctx, tree, treelattice.BuildOptions{K: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.EstimateQueryContext(ctx, "laptop(brand,price)", treelattice.MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("estimate = %v, want 2", got)
	}

	forest, err := treelattice.BuildForestContext(ctx, []*treelattice.Tree{tree}, treelattice.BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	sum.WriteTo(&a)
	forest.WriteTo(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("single-tree forest build differs from Build")
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := treelattice.BuildContext(canceled, tree, treelattice.BuildOptions{K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled build returned %v", err)
	}
}

func TestPublicSentinelErrors(t *testing.T) {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(doc), dict)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sum.EstimateQuery("a((", treelattice.MethodRecursive); !errors.Is(err, treelattice.ErrBadQuery) {
		t.Fatalf("want ErrBadQuery, got %v", err)
	}
	if _, err := sum.EstimateQuery("no_such_label", treelattice.MethodRecursive); !errors.Is(err, treelattice.ErrUnknownLabel) {
		t.Fatalf("want ErrUnknownLabel, got %v", err)
	}
	if _, err := sum.EstimateQuery("laptop", treelattice.Method("bogus")); !errors.Is(err, treelattice.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
	if _, err := treelattice.Build(tree, treelattice.BuildOptions{K: treelattice.MaxK + 1}); !errors.Is(err, treelattice.ErrKTooLarge) {
		t.Fatalf("want ErrKTooLarge, got %v", err)
	}
}

func TestPublicExecutionAPI(t *testing.T) {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(doc), dict)
	if err != nil {
		t.Fatal(err)
	}
	x := treelattice.NewIndex(tree)
	q, err := treelattice.CompileXPath("//laptop[brand][price]", dict, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := treelattice.CountMatches(x, q); got != 2 {
		t.Fatalf("CountMatches = %d, want 2", got)
	}
	if _, err := treelattice.CompileXPath("bogus", dict, 0); err == nil {
		t.Fatal("bad xpath accepted")
	}
}
