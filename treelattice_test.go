package treelattice_test

import (
	"bytes"
	"strings"
	"testing"

	"treelattice"
)

const doc = `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`

func TestPublicAPIRoundTrip(t *testing.T) {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(doc), dict)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []treelattice.Method{
		treelattice.MethodRecursive,
		treelattice.MethodRecursiveVoting,
		treelattice.MethodFixSized,
	} {
		got, err := sum.EstimateQuery("//laptop(brand,price)", m)
		if err != nil {
			t.Fatal(err)
		}
		if got != 2 {
			t.Fatalf("%s: estimate = %v, want 2", m, got)
		}
	}
	q, err := treelattice.ParseQuery("laptop(brand)", dict)
	if err != nil {
		t.Fatal(err)
	}
	if got := treelattice.ExactCount(tree, q); got != 2 {
		t.Fatalf("ExactCount = %d, want 2", got)
	}

	var xml, summary bytes.Buffer
	if err := treelattice.WriteXML(&xml, tree); err != nil {
		t.Fatal(err)
	}
	if _, err := sum.WriteTo(&summary); err != nil {
		t.Fatal(err)
	}
	dict2 := treelattice.NewDict()
	sum2, err := treelattice.ReadSummary(&summary, dict2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum2.EstimateQuery("laptop(brand,price)", treelattice.MethodFixSized)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("reloaded estimate = %v, want 2", got)
	}
}

func TestPublicExecutionAPI(t *testing.T) {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(doc), dict)
	if err != nil {
		t.Fatal(err)
	}
	x := treelattice.NewIndex(tree)
	q, err := treelattice.CompileXPath("//laptop[brand][price]", dict, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := treelattice.CountMatches(x, q); got != 2 {
		t.Fatalf("CountMatches = %d, want 2", got)
	}
	if _, err := treelattice.CompileXPath("bogus", dict, 0); err == nil {
		t.Fatal("bad xpath accepted")
	}
}
