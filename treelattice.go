// Package treelattice reproduces "A Decomposition-Based Probabilistic
// Framework for Estimating the Selectivity of XML Twig Queries" (Wang,
// Jin, Parthasarathy): the TreeLattice system for estimating how many
// matches a twig query has in an XML document, from a small summary of
// subtree-pattern counts.
//
// Quickstart:
//
//	dict := treelattice.NewDict()
//	tree, err := treelattice.ParseXML(file, dict)
//	sum, err := treelattice.BuildContext(ctx, tree, treelattice.BuildOptions{K: 4})
//	est, err := sum.EstimateQueryContext(ctx, "laptop(brand,price)", treelattice.MethodRecursiveVoting)
//
// The context-free variants (Build, EstimateQuery, ...) remain as thin
// wrappers over context.Background(). Builds parallelize across
// BuildOptions.Workers goroutines (default GOMAXPROCS) and abort promptly
// when ctx is canceled; BuildForestContext fans a whole document set out
// across the worker pool. Failures wrap the exported sentinel errors
// (ErrBadQuery, ErrUnknownLabel, ErrKTooLarge, ...) for errors.Is.
//
// The package re-exports the system's public surface; the implementation
// lives in the internal packages (see DESIGN.md for the map):
//
//   - internal/labeltree: tree and twig-pattern model
//   - internal/xmlparse: XML ↔ tree conversion
//   - internal/match: exact match counting (ground truth)
//   - internal/mine: frequent subtree mining (summary construction)
//   - internal/lattice: the lattice summary store
//   - internal/estimate: the decomposition estimators and δ-pruning
//   - internal/markov: the Markov path-estimator special case
//   - internal/treesketch: the TreeSketches comparison baseline
//   - internal/datagen, internal/workload, internal/metrics,
//     internal/experiments: the evaluation harness
package treelattice

import (
	"context"
	"io"

	"treelattice/internal/core"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/twigjoin"
	"treelattice/internal/xmlparse"
	"treelattice/internal/xpath"
)

// Core types, re-exported.
type (
	// Dict interns label strings; all trees and queries that interact
	// must share one.
	Dict = labeltree.Dict
	// Tree is a parsed XML document.
	Tree = labeltree.Tree
	// Pattern is a twig query or subtree pattern.
	Pattern = labeltree.Pattern
	// Summary is a TreeLattice summary supporting estimation.
	Summary = core.Summary
	// BuildOptions configures Build.
	BuildOptions = core.BuildOptions
	// Method selects an estimation strategy.
	Method = core.Method
)

// Estimation methods.
const (
	MethodRecursive       = core.MethodRecursive
	MethodRecursiveVoting = core.MethodRecursiveVoting
	MethodFixSized        = core.MethodFixSized
)

// MaxK caps BuildOptions.K; larger values fail with ErrKTooLarge.
const MaxK = core.MaxK

// Sentinel errors, re-exported for errors.Is against any failure this
// package returns.
var (
	// ErrBadQuery reports a twig query that does not parse.
	ErrBadQuery = core.ErrBadQuery
	// ErrUnknownLabel reports a query naming a label no document or
	// summary has ever carried; its true selectivity is zero.
	ErrUnknownLabel = core.ErrUnknownLabel
	// ErrUnknownMethod reports an estimation method outside Methods().
	ErrUnknownMethod = core.ErrUnknownMethod
	// ErrKTooLarge reports a BuildOptions.K beyond MaxK.
	ErrKTooLarge = core.ErrKTooLarge
	// ErrPrunedSummary reports incremental maintenance on a pruned summary.
	ErrPrunedSummary = core.ErrPrunedSummary
	// ErrDictMismatch reports mixed label dictionaries.
	ErrDictMismatch = core.ErrDictMismatch
)

// NewDict returns an empty label dictionary.
func NewDict() *Dict { return labeltree.NewDict() }

// ParseXML reads an XML document into a Tree.
func ParseXML(r io.Reader, dict *Dict) (*Tree, error) {
	return xmlparse.Parse(r, dict, xmlparse.Options{})
}

// WriteXML serializes a Tree as XML.
func WriteXML(w io.Writer, t *Tree) error { return xmlparse.Write(w, t) }

// ParseQuery parses the twig syntax "a(b,c(d))".
func ParseQuery(query string, dict *Dict) (Pattern, error) {
	return labeltree.ParsePattern(query, dict)
}

// Build mines a K-lattice summary from a document.
func Build(t *Tree, opts BuildOptions) (*Summary, error) { return core.Build(t, opts) }

// BuildContext is Build with cancellation and deadline awareness: the
// level-wise mining loop checks ctx between levels and while counting
// candidates. opts.Workers bounds the build's parallelism (0 means
// GOMAXPROCS).
func BuildContext(ctx context.Context, t *Tree, opts BuildOptions) (*Summary, error) {
	return core.BuildContext(ctx, t, opts)
}

// BuildForestContext mines one shared summary from several documents in
// parallel: each tree is mined into a private shard by a worker pool and
// the shards are merged. All trees must share a Dict, and the result is
// bit-identical to sequential mining regardless of worker count.
func BuildForestContext(ctx context.Context, trees []*Tree, opts BuildOptions) (*Summary, error) {
	return core.BuildForestContext(ctx, trees, opts)
}

// ReadSummary loads a summary serialized with Summary.WriteTo.
func ReadSummary(r io.Reader, dict *Dict) (*Summary, error) { return core.Read(r, dict) }

// ExactCount returns the true selectivity of q in t (Definition 1 of the
// paper), by exact counting rather than estimation.
func ExactCount(t *Tree, q Pattern) int64 { return match.NewCounter(t).Count(q) }

// Execution-side types, re-exported: compile XPath to twig queries, index
// a document, and enumerate actual matches (see internal/twigjoin and
// internal/planner).
type (
	// TwigQuery is a twig pattern with per-edge axes (child/descendant).
	TwigQuery = twigjoin.Query
	// Index is the region-encoded access structure queries execute on.
	Index = twigjoin.Index
	// MatchTuple is one query answer: data node per query node.
	MatchTuple = twigjoin.Match
)

// NewIndex region-encodes t for query execution.
func NewIndex(t *Tree) *Index { return twigjoin.NewIndex(t) }

// CompileXPath compiles an XPath-subset expression ("//a[b/c]//d") into a
// twig query. valueBuckets must match the document's parse options when
// value predicates are used (0 otherwise).
func CompileXPath(expr string, dict *Dict, valueBuckets int) (TwigQuery, error) {
	return xpath.Compile(expr, dict, xpath.Options{ValueBuckets: valueBuckets})
}

// CountMatches executes q against an indexed document and returns the
// exact number of matches.
func CountMatches(x *Index, q TwigQuery) int64 { return twigjoin.Count(x, q) }
