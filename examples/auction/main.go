// Auction: the paper's motivating scenario — interactive query refinement
// against an on-line auction site (XMark). A user about to run an
// expensive twig query first asks the estimator how many matches to
// expect; overwhelming result sets prompt refinement, and COUNT-style
// aggregates can be answered approximately without touching the data.
package main

import (
	"fmt"
	"log"
	"time"

	"treelattice"
	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
)

func main() {
	dict := treelattice.NewDict()
	tree, err := datagen.Generate(datagen.Config{Profile: datagen.XMark, Scale: 50000, Seed: 1}, dict)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction site: %d elements\n", tree.Size())

	start := time.Now()
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summary built in %v: %d patterns, %.1f KB\n\n",
		time.Since(start).Round(time.Millisecond), sum.Patterns(), float64(sum.SizeBytes())/1024)

	// The user drafts increasingly selective queries; each estimate is a
	// few microseconds against the summary, versus a scan of the data.
	session := []string{
		"open_auction(bidder)",
		"open_auction(bidder(date),bidder(increase))",
		"open_auction(initial,current,bidder(date,increase))",
		"item(description(text(keyword)),mailbox(mail))",
	}
	for _, qs := range session {
		q, err := treelattice.ParseQuery(qs, dict)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		est, err := sum.Estimate(q, treelattice.MethodRecursiveVoting)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		exact := treelattice.ExactCount(tree, q)
		verdict := "ok to run"
		if est > 10000 {
			verdict = "refine first: result set too large"
		}
		fmt.Printf("%-55s est=%-10.0f exact=%-8d (%v) -> %s\n", qs, est, exact, elapsed.Round(time.Microsecond), verdict)
	}

	// Approximate COUNT aggregate: return the estimate directly.
	q := labeltree.MustParsePattern("person(watches(watch))", dict)
	est, err := sum.Estimate(q, treelattice.MethodRecursiveVoting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napproximate COUNT(person/watches/watch) = %.0f (exact %d)\n",
		est, treelattice.ExactCount(tree, q))
}
