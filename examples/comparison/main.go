// Comparison: the paper's Figure 11 worked example, executed. A document
// where three b-elements have four c-children each and one has two is
// summarized both ways; the branching twig b(c,c) exposes the difference:
// the lattice stores the pattern's count exactly, while a budget-merged
// graph synopsis multiplies the average child count 3.5 with itself and
// overshoots.
package main

import (
	"fmt"
	"log"
	"strings"

	"treelattice"
	"treelattice/internal/treesketch"
)

func main() {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 3; i++ {
		sb.WriteString("<b><c/><c/><c/><c/></b>")
	}
	sb.WriteString("<b><c/><c/></b>")
	sb.WriteString("</r>")

	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(sb.String()), dict)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	// A budget small enough to merge the two kinds of b-elements into one
	// synopsis node, as in the paper's discussion.
	sketch := treesketch.Build(tree, treesketch.Options{BudgetBytes: 90})

	fmt.Println("document: r with 3×b(c,c,c,c) and 1×b(c,c)")
	fmt.Println(sketch.String())
	fmt.Println()

	for _, qs := range []string{"b(c)", "b(c,c)", "r(b(c,c))"} {
		q, err := treelattice.ParseQuery(qs, dict)
		if err != nil {
			log.Fatal(err)
		}
		latEst, err := sum.Estimate(q, treelattice.MethodRecursive)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s true=%-4d treelattice=%-8.1f treesketches=%.1f\n",
			qs, treelattice.ExactCount(tree, q), latEst, sketch.Estimate(q))
	}
	fmt.Println("\nthe synopsis hides the per-element variance behind the 3.5 average;")
	fmt.Println("the lattice records the branching pattern's count directly.")
}
