// Pathsel: Lemma 4 in action — on pure path expressions the TreeLattice
// decomposition estimators reduce exactly to the classic Markov-table
// path estimator (Lore / Aboulnaga et al. / XPathLearner lineage), so a
// TreeLattice summary subsumes a Markov table.
package main

import (
	"fmt"
	"log"

	"treelattice"
	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/markov"
)

func main() {
	const k = 3
	dict := treelattice.NewDict()
	tree, err := datagen.Generate(datagen.Config{Profile: datagen.NASA, Scale: 30000, Seed: 11}, dict)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: k})
	if err != nil {
		log.Fatal(err)
	}
	table := markov.Build(tree, k)
	fmt.Printf("document: %d elements; %d-lattice: %d patterns; markov table: %d paths\n\n",
		tree.Size(), k, sum.Patterns(), table.Len())

	paths := []string{
		"dataset/references/reference",
		"dataset/references/reference/source",
		"dataset/references/reference/source/journal",
		"dataset/references/reference/source/journal/name",
		"datasets/dataset/history/revisions/revision",
	}
	fmt.Printf("%-50s %10s %12s %12s %10s\n", "path", "markov", "recursive", "fix-sized", "exact")
	for _, ps := range paths {
		p, err := labeltree.ParsePath(ps, dict)
		if err != nil {
			log.Fatal(err)
		}
		m := table.EstimatePattern(p)
		rec, err := sum.Estimate(p, treelattice.MethodRecursive)
		if err != nil {
			log.Fatal(err)
		}
		fix, err := sum.Estimate(p, treelattice.MethodFixSized)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-50s %10.2f %12.2f %12.2f %10d\n", ps, m, rec, fix, treelattice.ExactCount(tree, p))
	}
	fmt.Println("\nmarkov, recursive and fix-sized columns agree exactly (Lemma 4).")
}
