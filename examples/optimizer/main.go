// Optimizer: the paper's headline application — using selectivity
// estimates to pick a twig evaluation plan. The executor binds query
// nodes in some order; its cost is the candidate nodes it scans. The
// planner estimates each branch's selectivity from the TreeLattice
// summary and probes the most selective branch first, failing fast.
package main

import (
	"fmt"
	"log"

	"treelattice"
	"treelattice/internal/datagen"
	"treelattice/internal/estimate"
	"treelattice/internal/planner"
	"treelattice/internal/twigjoin"
)

func main() {
	dict := treelattice.NewDict()
	tree, err := datagen.Generate(datagen.Config{Profile: datagen.XMark, Scale: 40000, Seed: 5}, dict)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 4})
	if err != nil {
		log.Fatal(err)
	}
	est := estimate.NewRecursive(sum.Lattice(), true)
	index := twigjoin.NewIndex(tree)

	// Written the way a user naturally would: common branches first. The
	// naive executor binds them in written order; the planner reorders.
	queries := []string{
		"//item(description(text),mailbox(mail(from)))",
		"//open_auction(bidder(date,increase),itemref,current)",
		"//person(watches(watch),name,address(city))",
		"//item(mailbox(mail),location,name,payment)",
		"//person(name,address(city),watches(watch))",
	}
	fmt.Printf("document: %d elements; summary: %.1f KB\n\n", tree.Size(), float64(sum.SizeBytes())/1024)
	fmt.Printf("%-55s %10s %12s %12s %8s\n", "query", "matches", "naive scan", "planned", "saved")
	for _, qs := range queries {
		q := twigjoin.MustParseQuery(qs, dict)
		plan := planner.Choose(q, est)
		naive := planner.Plan{Order: planner.NaiveOrder(q)}
		nMatches, nStats := planner.Execute(index, q, naive)
		pMatches, pStats := planner.Execute(index, q, plan)
		if nMatches != pMatches {
			log.Fatalf("plans disagree: %d vs %d", nMatches, pMatches)
		}
		saved := 0.0
		if nStats.Candidates > 0 {
			saved = 100 * (1 - float64(pStats.Candidates)/float64(nStats.Candidates))
		}
		fmt.Printf("%-55s %10d %12d %12d %7.0f%%\n",
			qs, nMatches, nStats.Candidates, pStats.Candidates, saved)
	}
	fmt.Println("\nboth plans return identical answers; the estimate-guided order")
	fmt.Println("scans fewer candidate nodes by probing selective branches first.")
}
