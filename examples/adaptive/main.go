// Adaptive: workload-aware online tuning, the paper's XPathLearner-style
// future-work direction. After each query executes, its true cardinality
// is fed back into a budgeted correction store; repeated workloads get
// sharper, and corrections for mid-size patterns improve even unseen
// larger queries that decompose through them.
package main

import (
	"fmt"
	"log"
	"math"

	"treelattice"
	"treelattice/internal/datagen"
	"treelattice/internal/online"
	"treelattice/internal/workload"
)

func main() {
	dict := treelattice.NewDict()
	// IMDB-like data: correlated sibling counts make decomposition
	// estimates drift, so there is something to learn.
	tree, err := datagen.Generate(datagen.Config{Profile: datagen.IMDB, Scale: 30000, Seed: 6}, dict)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	tuner := online.NewTuner(sum.Lattice(), 2048) // 2 KB correction budget

	qs, err := workload.Positive(tree, workload.Options{Sizes: []int{5, 6}, PerSize: 25, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	var queries []workload.Query
	for _, size := range []int{5, 6} {
		queries = append(queries, qs[size]...)
	}

	avgError := func() float64 {
		var total float64
		for _, q := range queries {
			est := tuner.Estimate(q.Pattern)
			total += math.Abs(est-float64(q.TrueCount)) / math.Max(1, float64(q.TrueCount))
		}
		return 100 * total / float64(len(queries))
	}

	fmt.Printf("document: %d elements; 3-lattice: %.1f KB; correction budget: 2 KB\n\n",
		tree.Size(), float64(sum.SizeBytes())/1024)
	fmt.Printf("%-8s %12s %14s %12s\n", "pass", "avg err (%)", "corrections", "used (B)")
	for pass := 1; pass <= 3; pass++ {
		errPct := avgError()
		fmt.Printf("%-8d %12.1f %14d %12d\n", pass, errPct, tuner.Corrections(), tuner.UsedBytes())
		// "Execute" the workload and learn from the true cardinalities.
		for _, q := range queries {
			tuner.Feedback(q.Pattern, q.TrueCount)
		}
	}
	fmt.Println("\nafter one observed pass the repeated workload is answered (near-)exactly,")
	fmt.Println("within a correction store a fraction of the summary's size.")
}
