// Quickstart: build a summary of an XML document and estimate twig query
// selectivities with all three estimators, comparing against exact counts.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"treelattice"
)

const doc = `
<computer>
  <laptops>
    <laptop><brand/><price/></laptop>
    <laptop><brand/><price/></laptop>
    <laptop><brand/></laptop>
  </laptops>
  <desktops>
    <desktop><brand/><price/></desktop>
  </desktops>
</computer>`

func main() {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(doc), dict)
	if err != nil {
		log.Fatal(err)
	}

	// Summarize the document: occurrence counts of all subtree patterns
	// of up to 3 nodes (the "3-lattice"). The context cancels a long
	// build; Workers: 0 uses every CPU for the per-level counting.
	sum, err := treelattice.BuildContext(context.Background(), tree,
		treelattice.BuildOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements; summary: %d patterns, %d bytes\n\n",
		tree.Size(), sum.Patterns(), sum.SizeBytes())

	queries := []string{
		"laptop",                                 // single label
		"laptop(brand,price)",                    // the paper's Figure 1(b) twig
		"computer(laptops(laptop))",              // path
		"computer(laptops(laptop(brand,price)))", // beyond the lattice: estimated
	}
	methods := []treelattice.Method{
		treelattice.MethodRecursive,
		treelattice.MethodRecursiveVoting,
		treelattice.MethodFixSized,
	}
	for _, qs := range queries {
		q, err := treelattice.ParseQuery(qs, dict)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s exact=%d", qs, treelattice.ExactCount(tree, q))
		for _, m := range methods {
			est, err := sum.Estimate(q, m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s=%.2f", m, est)
		}
		fmt.Println()
	}
}
