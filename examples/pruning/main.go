// Pruning: trading memory for accuracy with δ-derivable pattern pruning
// (Section 4.3 of the paper). A 0-derivable pattern is reconstructed
// exactly by decomposition, so dropping it is free; larger δ values drop
// approximately-derivable patterns too, shrinking the summary at a
// bounded cost in accuracy.
package main

import (
	"fmt"
	"log"

	"treelattice"
	"treelattice/internal/datagen"
	"treelattice/internal/match"
	"treelattice/internal/metrics"
	"treelattice/internal/workload"
)

func main() {
	dict := treelattice.NewDict()
	tree, err := datagen.Generate(datagen.Config{Profile: datagen.IMDB, Scale: 30000, Seed: 2}, dict)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A fixed evaluation workload of size-6 twigs with known counts.
	queries, err := workload.Positive(tree, workload.Options{Sizes: []int{6}, PerSize: 40, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	var truths []int64
	for _, q := range queries[6] {
		truths = append(truths, q.TrueCount)
	}
	sanity := metrics.SanityBound(truths)
	_ = match.NewCounter(tree) // counts already recorded in the workload

	fmt.Printf("document: %d elements; full 4-lattice: %d patterns, %.1f KB\n\n",
		tree.Size(), sum.Patterns(), float64(sum.SizeBytes())/1024)
	fmt.Printf("%8s %10s %10s %12s\n", "delta", "patterns", "size(KB)", "avg err (%)")
	for _, delta := range []float64{-1, 0, 0.1, 0.2, 0.3} {
		s := sum
		label := "none"
		if delta >= 0 {
			s = sum.Prune(delta)
			label = fmt.Sprintf("%.0f%%", delta*100)
		}
		var errs []float64
		for _, q := range queries[6] {
			est, err := s.Estimate(q.Pattern, treelattice.MethodRecursiveVoting)
			if err != nil {
				log.Fatal(err)
			}
			errs = append(errs, metrics.AbsError(float64(q.TrueCount), est, sanity))
		}
		fmt.Printf("%8s %10d %10.1f %12.1f\n",
			label, s.Patterns(), float64(s.SizeBytes())/1024, 100*metrics.Mean(errs))
	}
	fmt.Println("\ndelta=0 keeps estimates identical while shrinking the summary;")
	fmt.Println("larger deltas trade more space for bounded extra error.")
}
