package treelattice_test

import (
	"fmt"
	"log"
	"strings"

	"treelattice"
)

// Example builds a summary of a small document and estimates the paper's
// Figure 1(b) twig query.
func Example() {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(
		`<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`), dict)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	est, err := sum.EstimateQuery("//laptop(brand,price)", treelattice.MethodRecursiveVoting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated %.0f matches\n", est)
	// Output: estimated 2 matches
}

// ExampleCompileXPath compiles an XPath expression and executes it
// exactly against an indexed document.
func ExampleCompileXPath() {
	dict := treelattice.NewDict()
	tree, err := treelattice.ParseXML(strings.NewReader(
		`<site><item><name/><price/></item><item><name/></item></site>`), dict)
	if err != nil {
		log.Fatal(err)
	}
	q, err := treelattice.CompileXPath("//item[name][price]", dict, 0)
	if err != nil {
		log.Fatal(err)
	}
	x := treelattice.NewIndex(tree)
	fmt.Println(treelattice.CountMatches(x, q))
	// Output: 1
}

// ExampleSummary_Prune shows the δ-derivable pruning trade-off: the
// pruned summary is smaller and answers occurring queries identically.
func ExampleSummary_Prune() {
	dict := treelattice.NewDict()
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 10; i++ {
		sb.WriteString("<a><b/><c/></a>")
	}
	sb.WriteString("</root>")
	tree, err := treelattice.ParseXML(strings.NewReader(sb.String()), dict)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := treelattice.Build(tree, treelattice.BuildOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	pruned := sum.Prune(0)
	before, _ := sum.EstimateQuery("a(b,c)", treelattice.MethodRecursive)
	after, _ := pruned.EstimateQuery("a(b,c)", treelattice.MethodRecursive)
	fmt.Printf("smaller: %v, same estimate: %v\n",
		pruned.SizeBytes() < sum.SizeBytes(), before == after)
	// Output: smaller: true, same estimate: true
}
