module treelattice

go 1.22
