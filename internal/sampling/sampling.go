// Package sampling implements a sampling-based selectivity estimator in
// the style of Alley (Kim et al.): instead of reading a synopsis, it runs
// bounded random probes through the internal/twigjoin execution engine
// against the corpus documents themselves.
//
// The estimator samples root candidates uniformly from the label streams
// of every document, counts the matches anchored at each sampled
// candidate exactly, and scales by the inverse sampling fraction:
//
//	ŝ(q) = (Σ anchored matches) · N / n
//
// where N is the total number of root-label occurrences across the corpus
// and n the number of probes that completed. Each probe is exact, so the
// estimate is unbiased in n; the budgets trade variance for latency.
//
// Two budgets bound a probe run: a probe count (how many candidates are
// examined) and a node budget (how many candidate visits the twigjoin
// executions may perform in total, shared across probes). The run is also
// cooperatively cancellable: context errors abort it mid-probe, the same
// contract the decomposition estimators honor. Probes are deterministic —
// the candidate order derives from a per-query seed — so the same query
// against the same corpus always samples the same candidates.
package sampling

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"treelattice/internal/labeltree"
	"treelattice/internal/twigjoin"
)

// ErrBudgetExhausted reports a probe run whose node budget ran out before
// a single probe completed; there is no sample to scale from. Runs that
// complete at least one probe return a (higher-variance) estimate instead.
var ErrBudgetExhausted = errors.New("sampling: node budget exhausted before any probe completed")

// Options bounds a probe run.
type Options struct {
	// Probes is the maximum number of root candidates examined per
	// estimate (default 64). When the query's root label occurs fewer
	// times than this, every occurrence is probed and the estimate is
	// exact.
	Probes int
	// MaxNodes is the candidate-visit budget shared across all probes of
	// one estimate (default 1<<20). A probe cut off mid-execution is
	// discarded; only completed probes enter the estimate.
	MaxNodes int64
	// Seed makes probe selection deterministic. The per-query candidate
	// order derives from Seed and the query's canonical key, so repeated
	// estimates of the same query sample identically.
	Seed int64
}

func (o *Options) fill() {
	if o.Probes <= 0 {
		o.Probes = 64
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 1 << 20
	}
}

// Estimator holds the per-document twigjoin indexes probes run on. Build
// one with New; it is immutable and safe for concurrent use.
type Estimator struct {
	idx  []*twigjoin.Index
	opts Options
}

// New region-encodes every document for probing. Cost is one DFS plus a
// per-label stream sort per document; the indexes are retained until the
// estimator is dropped.
func New(trees []*labeltree.Tree, opts Options) (*Estimator, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("sampling: no documents to probe")
	}
	opts.fill()
	e := &Estimator{idx: make([]*twigjoin.Index, len(trees)), opts: opts}
	for i, t := range trees {
		e.idx[i] = twigjoin.NewIndex(t)
	}
	return e, nil
}

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string { return "sampling" }

// Estimate implements the uncancellable estimator shape.
func (e *Estimator) Estimate(q labeltree.Pattern) float64 {
	v, _ := e.EstimateContext(context.Background(), q)
	return v
}

// candidate is one (document, root node) probe site.
type candidate struct {
	doc  int
	node int32
}

// EstimateContext runs the probe plan for q within the budgets. It
// returns ctx.Err() if the context expires mid-run (matching the
// decomposition estimators' cancellation contract), ErrBudgetExhausted if
// the node budget ran out before any probe completed, and the scaled
// estimate otherwise.
func (e *Estimator) EstimateContext(ctx context.Context, q labeltree.Pattern) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	root := q.Label(0)
	total := 0
	for _, x := range e.idx {
		total += len(x.Stream(root))
	}
	if total == 0 {
		return 0, nil
	}
	probes := e.opts.Probes
	if probes > total {
		probes = total
	}
	// Per-query deterministic candidate selection: Floyd's algorithm
	// draws `probes` distinct global indexes in O(probes) without
	// materializing the full candidate list.
	rng := rand.New(rand.NewSource(e.opts.Seed ^ keySeed(q.Key())))
	picked := make(map[int]struct{}, probes)
	order := make([]int, 0, probes)
	for j := total - probes; j < total; j++ {
		t := rng.Intn(j + 1)
		if _, dup := picked[t]; dup {
			t = j
		}
		picked[t] = struct{}{}
		order = append(order, t)
	}

	query, err := twigjoin.NewQuery(q, nil)
	if err != nil {
		return 0, fmt.Errorf("sampling: %w", err)
	}
	budget := e.opts.MaxNodes
	var matches int64
	completed := 0
	for _, g := range order {
		c := e.locate(root, g)
		n, err := twigjoin.CountAnchoredContext(ctx, e.idx[c.doc], query, c.node, &budget)
		switch {
		case err == nil:
			matches += n
			completed++
		case errors.Is(err, twigjoin.ErrNodeBudget):
			// Partial probe: discard its count, keep what completed.
			if completed == 0 {
				return 0, ErrBudgetExhausted
			}
			return scale(matches, total, completed), nil
		default:
			return 0, err
		}
	}
	return scale(matches, total, completed), nil
}

// scale inflates the sampled match count by the inverse sampling
// fraction.
func scale(matches int64, total, completed int) float64 {
	return float64(matches) * float64(total) / float64(completed)
}

// locate maps a global candidate index onto its (document, node) probe
// site by walking the per-document root-label streams in order.
func (e *Estimator) locate(root labeltree.LabelID, g int) candidate {
	for doc, x := range e.idx {
		s := x.Stream(root)
		if g < len(s) {
			return candidate{doc: doc, node: s[g]}
		}
		g -= len(s)
	}
	panic("sampling: candidate index out of range")
}

// keySeed folds a canonical query key into a seed, so probe selection is
// a deterministic function of (base seed, query isomorphism class).
func keySeed(k labeltree.Key) int64 {
	var h uint64 = 14695981039346656037 // FNV-1a
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return int64(h)
}
