package sampling

import (
	"context"
	"errors"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/xmlparse"
)

func sampleDocs(t *testing.T) ([]*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	docs := []string{
		`<lib>` + strings.Repeat(`<book><title/><author><name/></author></book>`, 20) + `</lib>`,
		`<lib>` + strings.Repeat(`<book><title/><year/></book>`, 15) +
			strings.Repeat(`<journal><title/></journal>`, 5) + `</lib>`,
	}
	trees := make([]*labeltree.Tree, len(docs))
	for i, d := range docs {
		tr, err := xmlparse.Parse(strings.NewReader(d), dict, xmlparse.Options{})
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tr
	}
	return trees, dict
}

func exactCount(trees []*labeltree.Tree, q labeltree.Pattern) int64 {
	var total int64
	for _, tr := range trees {
		total += match.NewCounter(tr).Count(q)
	}
	return total
}

// TestExactWhenFullyProbed: probing every root occurrence makes each
// probe exact and the scaling factor 1, so the estimate equals the true
// count.
func TestExactWhenFullyProbed(t *testing.T) {
	trees, dict := sampleDocs(t)
	e, err := New(trees, Options{Probes: 1 << 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range []string{"book(title)", "book(title,author(name))", "book(year)", "journal(title)"} {
		q, err := labeltree.ParsePattern(qs, dict)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.EstimateContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(exactCount(trees, q))
		if got != want {
			t.Errorf("%s: estimate %v != exact %v", qs, got, want)
		}
	}
}

// TestDeterministic: the same (seed, query, corpus) must sample the same
// candidates and return bit-identical estimates, run after run and across
// estimator instances.
func TestDeterministic(t *testing.T) {
	trees, dict := sampleDocs(t)
	q, err := labeltree.ParsePattern("book(title)", dict)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := New(trees, Options{Probes: 5, Seed: 42})
	b, _ := New(trees, Options{Probes: 5, Seed: 42})
	va, err := a.EstimateContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		vb, err := b.EstimateContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if vb != va {
			t.Fatalf("run %d: estimate %v != first run %v", i, vb, va)
		}
	}
}

// TestUnknownRootLabelZero: a root label absent from every document has
// nothing to probe; the estimate is exactly zero, not an error.
func TestUnknownRootLabelZero(t *testing.T) {
	trees, dict := sampleDocs(t)
	dict.Intern("ghost")
	q, err := labeltree.ParsePattern("ghost", dict)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := New(trees, Options{})
	got, err := e.EstimateContext(context.Background(), q)
	if err != nil || got != 0 {
		t.Fatalf("got (%v, %v), want (0, nil)", got, err)
	}
}

// TestBudgetExhausted: a node budget too small for even one probe fails
// with ErrBudgetExhausted; a budget that lets some probes finish returns
// a scaled partial estimate instead.
func TestBudgetExhausted(t *testing.T) {
	trees, dict := sampleDocs(t)
	// Each <lib> probe must visit every matching book child (15 or 20), so
	// a 1-node budget dies inside the first probe with nothing completed.
	q, err := labeltree.ParsePattern("lib(book)", dict)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := New(trees, Options{Probes: 64, MaxNodes: 1, Seed: 1})
	if _, err := e.EstimateContext(context.Background(), q); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("budget 1: got %v, want ErrBudgetExhausted", err)
	}
	// 25 nodes finish whichever lib comes first (≤20 visits) and die in the
	// second: one completed probe still yields a scaled partial estimate.
	partial, _ := New(trees, Options{Probes: 64, MaxNodes: 25, Seed: 1})
	got, err := partial.EstimateContext(context.Background(), q)
	if err != nil {
		t.Fatalf("partial budget: %v", err)
	}
	if got <= 0 {
		t.Fatalf("partial budget: estimate %v, want > 0", got)
	}
}

// TestCancellation: an expired context aborts the run with its error.
func TestCancellation(t *testing.T) {
	trees, dict := sampleDocs(t)
	q, err := labeltree.ParsePattern("book(title)", dict)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := New(trees, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EstimateContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestEmptyCorpusRejected: New on no documents is a construction error.
func TestEmptyCorpusRejected(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("New(nil) must fail")
	}
}
