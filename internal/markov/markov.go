// Package markov implements the Markov-table estimator for XML path
// selectivity in the style of Lore and Aboulnaga et al.: counts of all
// downward label paths up to length K, with longer paths estimated under
// the order-(K−1) Markov property. It serves two purposes: a baseline for
// the path special case, and the executable statement of Lemma 4 — the
// paper's decomposition estimators reduce exactly to this formula on path
// queries.
package markov

import (
	"fmt"
	"strings"

	"treelattice/internal/labeltree"
)

// Table stores counts of label paths of length 1..K.
type Table struct {
	k      int
	dict   *labeltree.Dict
	counts map[string]int64
}

// Build scans every downward path of length up to k in t. Cost is
// O(nodes · k).
func Build(t *labeltree.Tree, k int) *Table {
	if k < 2 {
		panic(fmt.Sprintf("markov: K must be >= 2, got %d", k))
	}
	tb := &Table{k: k, dict: t.Dict(), counts: make(map[string]int64)}
	// For each node, register the paths of length <= k that end at it.
	labels := make([]labeltree.LabelID, 0, k)
	for i := int32(0); int(i) < t.Size(); i++ {
		labels = labels[:0]
		at := i
		for len(labels) < k && at >= 0 {
			labels = append(labels, t.Label(at))
			at = t.Parent(at)
		}
		// labels is the upward label sequence from i; every suffix of it
		// reversed is a downward path ending at i.
		for l := 1; l <= len(labels); l++ {
			tb.counts[upwardKey(labels[:l])]++
		}
	}
	return tb
}

// BuildForest scans several documents (sharing one dictionary) into a
// single table; path counts are additive across independent trees.
func BuildForest(trees []*labeltree.Tree, k int) *Table {
	if len(trees) == 0 {
		panic("markov: BuildForest needs at least one tree")
	}
	tb := Build(trees[0], k)
	for _, t := range trees[1:] {
		other := Build(t, k)
		for key, n := range other.counts {
			tb.counts[key] += n
		}
	}
	return tb
}

// K returns the maximum stored path length.
func (tb *Table) K() int { return tb.k }

// Len reports the number of stored paths.
func (tb *Table) Len() int { return len(tb.counts) }

// upwardKey renders an upward label sequence (node, parent, grandparent…)
// as the key of the corresponding downward path.
func upwardKey(up []labeltree.LabelID) string {
	var b strings.Builder
	for i := len(up) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%d/", up[i])
	}
	return b.String()
}

// downwardKey renders a root-to-leaf label sequence.
func downwardKey(down []labeltree.LabelID) string {
	var b strings.Builder
	for _, l := range down {
		fmt.Fprintf(&b, "%d/", l)
	}
	return b.String()
}

// Count returns the exact stored count of a downward label path of length
// ≤ K, or 0 if it does not occur.
func (tb *Table) Count(path []labeltree.LabelID) int64 {
	if len(path) > tb.k {
		panic("markov: Count on path longer than K")
	}
	return tb.counts[downwardKey(path)]
}

// Estimate returns the estimated selectivity of a downward label path of
// any length, applying the Markov formula of Lemma 4 beyond length K:
//
//	f(t1…tn) = f(t1…tk) · Π_{i=2}^{n−k+1} f(ti…t(i+k−1)) / f(ti…t(i+k−2))
func (tb *Table) Estimate(path []labeltree.LabelID) float64 {
	if len(path) == 0 {
		return 0
	}
	if len(path) <= tb.k {
		return float64(tb.Count(path))
	}
	est := float64(tb.counts[downwardKey(path[:tb.k])])
	for i := 1; i+tb.k <= len(path); i++ {
		num := float64(tb.counts[downwardKey(path[i:i+tb.k])])
		den := float64(tb.counts[downwardKey(path[i:i+tb.k-1])])
		if den == 0 {
			return 0
		}
		est *= num / den
	}
	return est
}

// EstimatePattern estimates a path-shaped twig pattern. It panics on
// branching patterns; use the decomposition estimators for those.
func (tb *Table) EstimatePattern(p labeltree.Pattern) float64 {
	return tb.Estimate(p.PathLabels())
}

// PathTerm is one factor of a twig's path decomposition: a root-to-node
// label path raised to an integer weight (+1 for root-to-leaf paths,
// −(deg−1) for the path to a node with deg ≥ 2 children, which the leaf
// paths over-count).
type PathTerm struct {
	Path   []labeltree.LabelID
	Weight int
}

// TwigPaths decomposes a twig pattern into path terms under the standard
// path-independence assumption: the branches below a node grow
// independently given the path to it, so
//
//	f(twig) = Π_leaves f(root..leaf) / Π_branching f(root..node)^(deg−1).
//
// Leaf terms come first in node order, then branching-node corrections in
// node order. A path-shaped pattern yields exactly one term.
func TwigPaths(p labeltree.Pattern) []PathTerm {
	degree := make([]int, p.Size())
	for i := int32(1); int(i) < p.Size(); i++ {
		degree[p.Parent(i)]++
	}
	// pathTo materializes the root-to-node label path by walking parents.
	pathTo := func(n int32) []labeltree.LabelID {
		var rev []labeltree.LabelID
		for at := n; at >= 0; at = p.Parent(at) {
			rev = append(rev, p.Label(at))
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}
	var out []PathTerm
	for n := int32(0); int(n) < p.Size(); n++ {
		if degree[n] == 0 {
			out = append(out, PathTerm{Path: pathTo(n), Weight: 1})
		}
	}
	for n := int32(0); int(n) < p.Size(); n++ {
		if degree[n] >= 2 {
			out = append(out, PathTerm{Path: pathTo(n), Weight: -(degree[n] - 1)})
		}
	}
	return out
}

// CombinePathTerms folds per-term path estimates (positionally aligned
// with terms) into the twig estimate. A zero denominator means the
// branching point itself cannot occur, so the twig cannot either. The
// fold order is part of the contract: callers combining externally
// estimated terms get bit-identical results to EstimateTwig.
func CombinePathTerms(terms []PathTerm, vals []float64) float64 {
	est := 1.0
	for i, t := range terms {
		v := vals[i]
		if t.Weight >= 0 {
			for j := 0; j < t.Weight; j++ {
				est *= v
			}
			continue
		}
		if v == 0 {
			return 0
		}
		for j := 0; j < -t.Weight; j++ {
			est /= v
		}
	}
	return est
}

// EstimateTwig generalizes the table from paths to twigs via the path
// decomposition above — the markov backend of the estimation registry.
func (tb *Table) EstimateTwig(p labeltree.Pattern) float64 {
	terms := TwigPaths(p)
	vals := make([]float64, len(terms))
	for i, t := range terms {
		vals[i] = tb.Estimate(t.Path)
	}
	return CombinePathTerms(terms, vals)
}

// SizeBytes is the accounted storage size: 8 bytes of count plus 4 bytes
// per path step.
func (tb *Table) SizeBytes() int {
	total := 0
	for k := range tb.counts {
		total += 8 + 4*strings.Count(k, "/")
	}
	return total
}
