package markov

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func chainTree(t *testing.T) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	doc := `<a><b><c><d/></c></b><b><c><d/><d/></c></b></a>`
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func ids(dict *labeltree.Dict, names ...string) []labeltree.LabelID {
	out := make([]labeltree.LabelID, len(names))
	for i, n := range names {
		id, ok := dict.Lookup(n)
		if !ok {
			id = -1
		}
		out[i] = id
	}
	return out
}

func TestBuildCounts(t *testing.T) {
	tr, dict := chainTree(t)
	tb := Build(tr, 3)
	for _, tc := range []struct {
		path []string
		want int64
	}{
		{[]string{"a"}, 1},
		{[]string{"b"}, 2},
		{[]string{"d"}, 3},
		{[]string{"a", "b"}, 2},
		{[]string{"b", "c"}, 2},
		{[]string{"c", "d"}, 3},
		{[]string{"a", "b", "c"}, 2},
		{[]string{"b", "c", "d"}, 3},
		{[]string{"a", "b", "d"}, 0},
	} {
		got := tb.Count(ids(dict, tc.path...))
		if got != tc.want {
			t.Errorf("Count(%v) = %d, want %d", tc.path, got, tc.want)
		}
	}
}

func TestCountPanicsBeyondK(t *testing.T) {
	tr, dict := chainTree(t)
	tb := Build(tr, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Count beyond K did not panic")
		}
	}()
	tb.Count(ids(dict, "a", "b", "c"))
}

func TestEstimateShortPathIsExact(t *testing.T) {
	tr, dict := chainTree(t)
	tb := Build(tr, 3)
	if got := tb.Estimate(ids(dict, "a", "b", "c")); got != 2 {
		t.Fatalf("Estimate = %v, want 2", got)
	}
}

func TestEstimateMarkovFormula(t *testing.T) {
	tr, dict := chainTree(t)
	tb := Build(tr, 3)
	// f(a/b/c/d) = f(a/b/c) * f(b/c/d) / f(b/c) = 2 * 3 / 2 = 3.
	got := tb.Estimate(ids(dict, "a", "b", "c", "d"))
	if math.Abs(got-3) > 1e-12 {
		t.Fatalf("Estimate = %v, want 3", got)
	}
	// The true count is also 3 here (independence holds trivially).
	q := labeltree.MustParsePattern("a(b(c(d)))", dict)
	if truth := match.NewCounter(tr).Count(q); truth != 3 {
		t.Fatalf("true count = %d, want 3", truth)
	}
}

func TestEstimateZeroDenominator(t *testing.T) {
	tr, dict := chainTree(t)
	tb := Build(tr, 2)
	// Path with an unseen intermediate pair must estimate 0.
	if got := tb.Estimate(ids(dict, "a", "d", "c", "b")); got != 0 {
		t.Fatalf("Estimate = %v, want 0", got)
	}
	if got := tb.Estimate(nil); got != 0 {
		t.Fatalf("Estimate(empty) = %v, want 0", got)
	}
}

func TestEstimatePattern(t *testing.T) {
	tr, dict := chainTree(t)
	tb := Build(tr, 3)
	p := labeltree.MustParsePattern("b(c(d))", dict)
	if got := tb.EstimatePattern(p); got != 3 {
		t.Fatalf("EstimatePattern = %v, want 3", got)
	}
	branching := labeltree.MustParsePattern("a(b,b)", dict)
	defer func() {
		if recover() == nil {
			t.Fatal("EstimatePattern on branching pattern did not panic")
		}
	}()
	tb.EstimatePattern(branching)
}

func TestPathCountsAgreeWithMatcher(t *testing.T) {
	// Path counts in the Markov table must equal twig-match counts of the
	// corresponding path patterns: the lattice and the table agree on the
	// shared special case.
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(7))
	tr := treetest.RandomTree(rng, 80, alphabet, dict)
	tb := Build(tr, 4)
	counter := match.NewCounter(tr)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		path := make([]labeltree.LabelID, n)
		for i := range path {
			path[i] = alphabet[rng.Intn(len(alphabet))]
		}
		want := counter.Count(labeltree.PathPattern(path...))
		if got := tb.Count(path); got != want {
			t.Fatalf("path %v: table=%d matcher=%d", path, got, want)
		}
	}
}

func TestSizeBytesPositive(t *testing.T) {
	tr, _ := chainTree(t)
	tb := Build(tr, 3)
	if tb.SizeBytes() <= 0 || tb.Len() <= 0 {
		t.Fatalf("SizeBytes=%d Len=%d", tb.SizeBytes(), tb.Len())
	}
}

func TestBuildPanicsOnTinyK(t *testing.T) {
	tr, _ := chainTree(t)
	defer func() {
		if recover() == nil {
			t.Fatal("K=1 accepted")
		}
	}()
	Build(tr, 1)
}
