package markov_test

import (
	"fmt"
	"log"
	"strings"

	"treelattice/internal/labeltree"
	"treelattice/internal/markov"
	"treelattice/internal/xmlparse"
)

// ExampleTable_Estimate extends a path beyond the stored length with the
// order-(K−1) Markov formula of Lemma 4.
func ExampleTable_Estimate() {
	dict := labeltree.NewDict()
	tree, err := xmlparse.Parse(strings.NewReader(
		`<a><b><c><d/></c></b><b><c><d/><d/></c></b></a>`), dict, xmlparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tb := markov.Build(tree, 3)
	a, _ := dict.Lookup("a")
	b, _ := dict.Lookup("b")
	c, _ := dict.Lookup("c")
	d, _ := dict.Lookup("d")
	// f(a/b/c/d) = f(a/b/c) · f(b/c/d)/f(b/c) = 2 · 3/2 = 3.
	fmt.Println(tb.Estimate([]labeltree.LabelID{a, b, c, d}))
	// Output: 3
}
