// Package workload generates the query workloads of Section 5.1.
//
// Positive workloads: queries with non-zero selectivity, sampled per
// query size ("level") by growing random connected subtrees of the data
// tree, deduplicated by canonical key. The paper enumerates all occurred
// patterns per level and samples them; growing from the document samples
// the same population without materializing high levels of the lattice.
//
// Negative workloads: queries with zero selectivity, obtained from
// positive queries by randomly replacing node labels in proportion to
// label frequency (frequent labels replace more often, making the
// erroneous queries look plausible), keeping only those whose true
// selectivity is zero.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
)

// Query is a workload entry with its ground-truth selectivity.
type Query struct {
	Pattern   labeltree.Pattern
	TrueCount int64
}

// Options configures workload generation.
type Options struct {
	// Sizes lists the query sizes (levels) to generate; the paper uses
	// 4 through 8.
	Sizes []int
	// PerSize is the number of distinct queries per size.
	PerSize int
	// Seed makes generation deterministic.
	Seed int64
	// MaxAttempts bounds sampling effort per size; generation returns
	// fewer queries when a level has too few distinct patterns. Default
	// 200 × PerSize.
	MaxAttempts int
}

// Positive samples positive workloads from t, keyed by query size.
func Positive(t *labeltree.Tree, opts Options) (map[int][]Query, error) {
	if len(opts.Sizes) == 0 || opts.PerSize <= 0 {
		return nil, fmt.Errorf("workload: Sizes and PerSize must be set")
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 200 * opts.PerSize
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	counter := match.NewCounter(t)
	out := make(map[int][]Query, len(opts.Sizes))
	for _, size := range opts.Sizes {
		if size < 1 {
			return nil, fmt.Errorf("workload: invalid size %d", size)
		}
		seen := make(map[labeltree.Key]bool)
		var queries []Query
		var patterns []labeltree.Pattern
		for attempt := 0; attempt < maxAttempts && len(patterns) < opts.PerSize; attempt++ {
			p, ok := growPattern(t, rng, size)
			if !ok {
				continue
			}
			key := p.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			patterns = append(patterns, p)
		}
		counts := counter.CountAll(patterns)
		for i, p := range patterns {
			if counts[i] == 0 {
				// Cannot happen for grown patterns; defensive.
				continue
			}
			queries = append(queries, Query{Pattern: p, TrueCount: counts[i]})
		}
		out[size] = queries
	}
	return out, nil
}

// growPattern grows a connected subtree of size nodes starting from a
// random data node, returning the induced pattern. It reports failure if
// the chosen start cannot reach the requested size.
func growPattern(t *labeltree.Tree, rng *rand.Rand, size int) (labeltree.Pattern, bool) {
	start := int32(rng.Intn(t.Size()))
	chosen := []int32{start}
	inChosen := map[int32]bool{start: true}
	// Frontier: data children of chosen nodes, plus the parent of the
	// current root (upward growth keeps path-heavy shapes reachable).
	for len(chosen) < size {
		var frontier []int32
		for _, v := range chosen {
			for _, c := range t.Children(v) {
				if !inChosen[c] {
					frontier = append(frontier, c)
				}
			}
		}
		if p := t.Parent(chosen[0]); p >= 0 && !inChosen[p] {
			frontier = append(frontier, p)
		}
		if len(frontier) == 0 {
			return labeltree.Pattern{}, false
		}
		pick := frontier[rng.Intn(len(frontier))]
		inChosen[pick] = true
		if pick == t.Parent(chosen[0]) {
			// Upward growth: the new node becomes the subtree root. (The
			// parent of the current root is never also a child of a
			// chosen node, since all other chosen nodes are descendants
			// of the root.)
			chosen = append([]int32{pick}, chosen...)
		} else {
			chosen = append(chosen, pick)
		}
	}
	return inducedPattern(t, chosen), true
}

// inducedPattern converts a connected set of data nodes (first element is
// the shallowest) into a pattern.
func inducedPattern(t *labeltree.Tree, nodes []int32) labeltree.Pattern {
	ordered := append([]int32(nil), nodes...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a] < ordered[b] })
	idx := make(map[int32]int32, len(ordered))
	for i, v := range ordered {
		idx[v] = int32(i)
	}
	labels := make([]labeltree.LabelID, len(ordered))
	parents := make([]int32, len(ordered))
	for i, v := range ordered {
		labels[i] = t.Label(v)
		if i == 0 {
			parents[i] = -1
			continue
		}
		p, ok := idx[t.Parent(v)]
		if !ok {
			panic("workload: chosen nodes are not connected")
		}
		parents[i] = p
	}
	return labeltree.MustPattern(labels, parents)
}

// FromLattice samples positive workloads exactly the way the paper
// describes (Section 5.1): enumerate the set of all occurred patterns at
// each level by mining, then sample per level. It costs a mining run to
// the largest requested size — affordable for small sizes; Positive's
// subtree growth samples the same population without materializing high
// lattice levels.
func FromLattice(t *labeltree.Tree, miner func(level int) ([]labeltree.Pattern, []int64, error), opts Options) (map[int][]Query, error) {
	if len(opts.Sizes) == 0 || opts.PerSize <= 0 {
		return nil, fmt.Errorf("workload: Sizes and PerSize must be set")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make(map[int][]Query, len(opts.Sizes))
	for _, size := range opts.Sizes {
		patterns, counts, err := miner(size)
		if err != nil {
			return nil, err
		}
		if len(patterns) != len(counts) {
			return nil, fmt.Errorf("workload: miner returned %d patterns but %d counts", len(patterns), len(counts))
		}
		idx := rng.Perm(len(patterns))
		n := opts.PerSize
		if n > len(idx) {
			n = len(idx)
		}
		qs := make([]Query, 0, n)
		for _, i := range idx[:n] {
			qs = append(qs, Query{Pattern: patterns[i], TrueCount: counts[i]})
		}
		out[size] = qs
	}
	return out, nil
}

// Negative derives zero-selectivity queries from a positive workload by
// frequency-weighted label perturbation.
func Negative(t *labeltree.Tree, positive map[int][]Query, opts Options) (map[int][]Query, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	counter := match.NewCounter(t)
	// Frequency-weighted label sampler.
	labels := t.DistinctLabels()
	sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
	cum := make([]int, len(labels))
	total := 0
	for i, l := range labels {
		total += t.LabelCount(l)
		cum[i] = total
	}
	pickLabel := func() labeltree.LabelID {
		x := rng.Intn(total)
		i := sort.SearchInts(cum, x+1)
		return labels[i]
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 200 * opts.PerSize
	}
	out := make(map[int][]Query, len(positive))
	// Iterate sizes in ascending order: ranging over the map would
	// consume rng draws in a runtime-randomized order, making the
	// "deterministic" seed produce a different workload every run.
	sizes := make([]int, 0, len(positive))
	for size := range positive {
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		qs := positive[size]
		if len(qs) == 0 {
			continue
		}
		seen := make(map[labeltree.Key]bool)
		var negs []Query
		for attempt := 0; attempt < maxAttempts && len(negs) < opts.PerSize; attempt++ {
			base := qs[rng.Intn(len(qs))].Pattern
			node := int32(rng.Intn(base.Size()))
			mutated := base.Relabel(node, pickLabel())
			key := mutated.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			if counter.Count(mutated) != 0 {
				continue
			}
			negs = append(negs, Query{Pattern: mutated, TrueCount: 0})
		}
		out[size] = negs
	}
	return out, nil
}
