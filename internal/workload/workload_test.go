package workload

import (
	"testing"

	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/mine"
)

func sampleTree(t *testing.T) *labeltree.Tree {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := datagen.Generate(datagen.Config{Profile: datagen.NASA, Scale: 3000, Seed: 9}, dict)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPositiveWorkload(t *testing.T) {
	tr := sampleTree(t)
	qs, err := Positive(tr, Options{Sizes: []int{4, 5, 6}, PerSize: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counter := match.NewCounter(tr)
	for _, size := range []int{4, 5, 6} {
		if len(qs[size]) < 10 {
			t.Fatalf("size %d: only %d queries", size, len(qs[size]))
		}
		seen := make(map[labeltree.Key]bool)
		for _, q := range qs[size] {
			if q.Pattern.Size() != size {
				t.Fatalf("size %d workload contains a %d-node query", size, q.Pattern.Size())
			}
			if q.TrueCount <= 0 {
				t.Fatalf("positive query with count %d", q.TrueCount)
			}
			if got := counter.Count(q.Pattern); got != q.TrueCount {
				t.Fatalf("recorded count %d != recomputed %d", q.TrueCount, got)
			}
			key := q.Pattern.Key()
			if seen[key] {
				t.Fatal("duplicate query in workload")
			}
			seen[key] = true
		}
	}
}

func TestPositiveDeterministic(t *testing.T) {
	tr := sampleTree(t)
	a, err := Positive(tr, Options{Sizes: []int{4}, PerSize: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Positive(tr, Options{Sizes: []int{4}, PerSize: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a[4]) != len(b[4]) {
		t.Fatal("workload size not deterministic")
	}
	for i := range a[4] {
		if a[4][i].Pattern.Key() != b[4][i].Pattern.Key() {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestPositiveValidation(t *testing.T) {
	tr := sampleTree(t)
	if _, err := Positive(tr, Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := Positive(tr, Options{Sizes: []int{0}, PerSize: 5}); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestNegativeWorkload(t *testing.T) {
	tr := sampleTree(t)
	pos, err := Positive(tr, Options{Sizes: []int{4, 5}, PerSize: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := Negative(tr, pos, Options{Sizes: []int{4, 5}, PerSize: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counter := match.NewCounter(tr)
	total := 0
	for size, qs := range neg {
		for _, q := range qs {
			total++
			if q.TrueCount != 0 {
				t.Fatalf("negative query with recorded count %d", q.TrueCount)
			}
			if got := counter.Count(q.Pattern); got != 0 {
				t.Fatalf("size %d: negative query matches %d times", size, got)
			}
		}
	}
	if total < 20 {
		t.Fatalf("only %d negative queries generated", total)
	}
}

func TestSingleNodeWorkload(t *testing.T) {
	tr := sampleTree(t)
	qs, err := Positive(tr, Options{Sizes: []int{1}, PerSize: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs[1] {
		if q.Pattern.Size() != 1 {
			t.Fatal("size-1 workload has larger query")
		}
	}
}

func TestOversizeRequestsReturnFewer(t *testing.T) {
	// A tiny document cannot produce queries larger than itself; the
	// generator degrades gracefully instead of spinning.
	dict := labeltree.NewDict()
	b := labeltree.NewBuilder(dict)
	root := b.AddRoot("a")
	b.AddChild(root, "b")
	tr := b.Build()
	qs, err := Positive(tr, Options{Sizes: []int{5}, PerSize: 3, Seed: 1, MaxAttempts: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs[5]) != 0 {
		t.Fatalf("impossible size produced %d queries", len(qs[5]))
	}
}

func TestFromLattice(t *testing.T) {
	tr := sampleTree(t)
	sum, err := mine.Mine(tr, 4, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	miner := func(level int) ([]labeltree.Pattern, []int64, error) {
		var ps []labeltree.Pattern
		var cs []int64
		for _, e := range sum.Entries(level) {
			ps = append(ps, e.Pattern)
			cs = append(cs, e.Count)
		}
		return ps, cs, nil
	}
	qs, err := FromLattice(tr, miner, Options{Sizes: []int{3, 4}, PerSize: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counter := match.NewCounter(tr)
	for _, size := range []int{3, 4} {
		if len(qs[size]) == 0 {
			t.Fatalf("size %d: empty", size)
		}
		for _, q := range qs[size] {
			if q.Pattern.Size() != size || q.TrueCount <= 0 {
				t.Fatalf("bad query %+v", q)
			}
			if counter.Count(q.Pattern) != q.TrueCount {
				t.Fatal("recorded count wrong")
			}
		}
	}
	// Deterministic for a fixed seed.
	qs2, err := FromLattice(tr, miner, Options{Sizes: []int{3, 4}, PerSize: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{3, 4} {
		for i := range qs[size] {
			if qs[size][i].Pattern.Key() != qs2[size][i].Pattern.Key() {
				t.Fatal("FromLattice not deterministic")
			}
		}
	}
	if _, err := FromLattice(tr, miner, Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}
