// Package online implements workload-aware summary tuning in the spirit
// of XPathLearner, the paper's third future-work direction ("adapt
// TreeLattice in a manner similar to XPathLearner where information
// learned from on-line workload can guide what is to be maintained in the
// summary structure").
//
// The tuner wraps a lattice summary. Estimation runs normally; when the
// system later observes a query's true selectivity — for example after
// actually executing it — Feedback records the (pattern, true count) pair
// as a correction. Corrections live in a budgeted auxiliary store that
// the estimators consult before the lattice, at any pattern size: a
// correction for a size-7 twig short-circuits the decomposition not only
// for that exact query but for every larger query that decomposes through
// it. When the budget is exceeded, the correction with the least benefit
// (observed error × hit count) is evicted.
package online

import (
	"fmt"
	"math"
	"sort"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
)

// Tuner is a workload-adaptive wrapper around a lattice summary. It is
// not safe for concurrent use; wrap with a mutex if shared.
type Tuner struct {
	base        *lattice.Summary
	budgetBytes int
	corrections map[labeltree.Key]*correction
	usedBytes   int
	clock       int64
}

type correction struct {
	pattern  labeltree.Pattern
	count    int64
	benefit  float64 // observed |error| at feedback time, relative
	hits     int64
	lastUsed int64
}

// NewTuner wraps base with a correction store of at most budgetBytes.
func NewTuner(base *lattice.Summary, budgetBytes int) *Tuner {
	if budgetBytes <= 0 {
		panic(fmt.Sprintf("online: budget must be positive, got %d", budgetBytes))
	}
	return &Tuner{
		base:        base,
		budgetBytes: budgetBytes,
		corrections: make(map[labeltree.Key]*correction),
	}
}

// Store interface: corrections first, then the base summary.

// Count implements estimate.Store.
func (t *Tuner) Count(p labeltree.Pattern) (int64, bool) {
	return t.CountKey(p.Key())
}

// CountKey implements estimate.Store: corrections first, then the base
// summary, without re-encoding the pattern.
func (t *Tuner) CountKey(key labeltree.Key) (int64, bool) {
	if c, ok := t.corrections[key]; ok {
		t.clock++
		c.hits++
		c.lastUsed = t.clock
		return c.count, true
	}
	return t.base.CountKey(key)
}

// K implements estimate.Store.
func (t *Tuner) K() int { return t.base.K() }

// Pruned implements estimate.Store.
func (t *Tuner) Pruned() bool { return t.base.Pruned() }

var _ estimate.Store = (*Tuner)(nil)

// Estimator returns a decomposition estimator reading through the tuner.
func (t *Tuner) Estimator(voting bool) *estimate.Recursive {
	return estimate.NewRecursive(t, voting)
}

// Estimate estimates q with the voting estimator through the corrections.
func (t *Tuner) Estimate(q labeltree.Pattern) float64 {
	return t.Estimator(true).Estimate(q)
}

// Feedback records the observed true selectivity of q. Worthless feedback
// (the estimate was already exact) is ignored; otherwise the correction
// is stored and the budget enforced by evicting the least valuable
// entries (lowest benefit × hits, oldest first).
func (t *Tuner) Feedback(q labeltree.Pattern, trueCount int64) {
	if trueCount < 0 {
		panic("online: negative true count")
	}
	key := q.Key()
	est := t.Estimate(q)
	errRel := math.Abs(est-float64(trueCount)) / math.Max(1, float64(trueCount))
	if c, ok := t.corrections[key]; ok {
		// Refresh an existing correction (document may have changed).
		c.count = trueCount
		c.benefit = math.Max(c.benefit, errRel)
		return
	}
	if errRel == 0 {
		return // the summary already answers this exactly
	}
	t.clock++
	t.corrections[key] = &correction{
		pattern:  q.Clone(),
		count:    trueCount,
		benefit:  errRel,
		lastUsed: t.clock,
	}
	t.usedBytes += correctionBytes(q)
	t.enforceBudget()
}

// Corrections reports the number of stored corrections.
func (t *Tuner) Corrections() int { return len(t.corrections) }

// UsedBytes reports the accounted size of the correction store.
func (t *Tuner) UsedBytes() int { return t.usedBytes }

// correctionBytes matches the lattice's per-entry accounting.
func correctionBytes(p labeltree.Pattern) int { return 8 + 5*p.Size() }

// enforceBudget evicts corrections until the store fits.
func (t *Tuner) enforceBudget() {
	if t.usedBytes <= t.budgetBytes {
		return
	}
	type scored struct {
		key   labeltree.Key
		score float64
		used  int64
	}
	var all []scored
	for k, c := range t.corrections {
		all = append(all, scored{k, c.benefit * float64(1+c.hits), c.lastUsed})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score < all[b].score
		}
		return all[a].used < all[b].used
	})
	for _, s := range all {
		if t.usedBytes <= t.budgetBytes {
			return
		}
		c := t.corrections[s.key]
		t.usedBytes -= correctionBytes(c.pattern)
		delete(t.corrections, s.key)
	}
}
