package online_test

import (
	"fmt"
	"log"
	"strings"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/mine"
	"treelattice/internal/online"
	"treelattice/internal/xmlparse"
)

// ExampleTuner shows the feedback loop: an estimate drifts on correlated
// data, the executed query's true cardinality is fed back, and the next
// estimate is exact.
func ExampleTuner() {
	dict := labeltree.NewDict()
	// Correlated document: b and c always co-occur, d never joins them.
	doc := `<root>` +
		strings.Repeat(`<a><b/><c/></a>`, 8) +
		strings.Repeat(`<a><d/></a>`, 8) +
		`</root>`
	tree, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := mine.Mine(tree, 2, mine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tuner := online.NewTuner(sum, 1024)
	q := labeltree.MustParsePattern("a(b,c)", dict)
	truth := match.NewCounter(tree).Count(q)

	before := tuner.Estimate(q)
	tuner.Feedback(q, truth)
	after := tuner.Estimate(q)
	fmt.Printf("true %d: estimate %.0f before feedback, %.0f after\n", truth, before, after)
	// Output: true 8: estimate 4 before feedback, 8 after
}
