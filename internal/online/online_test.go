package online

import (
	"math"
	"testing"

	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/mine"
	"treelattice/internal/workload"
)

func setup(t *testing.T) (*Tuner, *labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tree, err := datagen.Generate(datagen.Config{Profile: datagen.IMDB, Scale: 8000, Seed: 4}, dict)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mine.Mine(tree, 3, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewTuner(sum, 4096), tree, dict
}

func TestFeedbackCorrectsExactQuery(t *testing.T) {
	tuner, tree, dict := setup(t)
	q := labeltree.MustParsePattern("movie(actor(name),keyword,genre)", dict)
	truth := match.NewCounter(tree).Count(q)
	if truth == 0 {
		t.Skip("query has zero selectivity in this document")
	}
	before := tuner.Estimate(q)
	if before == float64(truth) {
		t.Skip("estimate already exact; feedback is a no-op")
	}
	tuner.Feedback(q, truth)
	after := tuner.Estimate(q)
	if after != float64(truth) {
		t.Fatalf("after feedback: %v, want %d", after, truth)
	}
}

func TestFeedbackHelpsSupersetQueries(t *testing.T) {
	// A correction for a size-5 pattern must improve a size-6 query that
	// decomposes through it.
	tuner, tree, dict := setup(t)
	counter := match.NewCounter(tree)
	sub := labeltree.MustParsePattern("movie(actor,keyword,genre,release)", dict)
	big := labeltree.MustParsePattern("movie(actor(name),keyword,genre,release)", dict)
	subTruth := counter.Count(sub)
	bigTruth := counter.Count(big)
	if subTruth == 0 || bigTruth == 0 {
		t.Skip("workload patterns do not occur")
	}
	before := math.Abs(tuner.Estimate(big) - float64(bigTruth))
	tuner.Feedback(sub, subTruth)
	after := math.Abs(tuner.Estimate(big) - float64(bigTruth))
	if after > before {
		t.Fatalf("correction hurt a superset query: before=%v after=%v", before, after)
	}
	if after == before {
		// The correction must at least have been consulted.
		if tuner.Corrections() == 0 {
			t.Fatal("feedback stored nothing")
		}
	}
}

func TestWorkloadErrorDropsWithFeedback(t *testing.T) {
	// Replay a workload twice, feeding back true counts in between: the
	// aggregate error on the second pass must drop substantially.
	tuner, tree, _ := setup(t)
	qs, err := workload.Positive(tree, workload.Options{Sizes: []int{5, 6}, PerSize: 15, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var queries []workload.Query
	for _, size := range []int{5, 6} {
		queries = append(queries, qs[size]...)
	}
	pass := func() float64 {
		var total float64
		for _, q := range queries {
			est := tuner.Estimate(q.Pattern)
			total += math.Abs(est-float64(q.TrueCount)) / math.Max(1, float64(q.TrueCount))
		}
		return total / float64(len(queries))
	}
	first := pass()
	for _, q := range queries {
		tuner.Feedback(q.Pattern, q.TrueCount)
	}
	second := pass()
	if first == 0 {
		t.Skip("workload already exact")
	}
	if second > first/2 {
		t.Fatalf("feedback did not halve error: first=%.4f second=%.4f (corrections=%d, used=%dB)",
			first, second, tuner.Corrections(), tuner.UsedBytes())
	}
}

func TestBudgetEnforced(t *testing.T) {
	dict := labeltree.NewDict()
	tree, err := datagen.Generate(datagen.Config{Profile: datagen.NASA, Scale: 5000, Seed: 4}, dict)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mine.Mine(tree, 2, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget := 200
	tuner := NewTuner(sum, budget)
	qs, err := workload.Positive(tree, workload.Options{Sizes: []int{4, 5}, PerSize: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fed := 0
	for _, size := range []int{4, 5} {
		for _, q := range qs[size] {
			tuner.Feedback(q.Pattern, q.TrueCount)
			fed++
			if tuner.UsedBytes() > budget {
				t.Fatalf("budget exceeded: %d > %d after %d feedbacks", tuner.UsedBytes(), budget, fed)
			}
		}
	}
	if tuner.Corrections() == 0 {
		t.Fatal("everything evicted; budget policy degenerate")
	}
	if fed < 20 {
		t.Fatalf("only %d feedbacks exercised", fed)
	}
}

func TestFeedbackIgnoresExactEstimates(t *testing.T) {
	tuner, tree, dict := setup(t)
	// In-lattice pattern: estimate is already exact, feedback is a no-op.
	q := labeltree.MustParsePattern("movie(actor)", dict)
	truth := match.NewCounter(tree).Count(q)
	tuner.Feedback(q, truth)
	if tuner.Corrections() != 0 {
		t.Fatal("stored a correction for an exact estimate")
	}
}

func TestFeedbackRefreshesExistingCorrection(t *testing.T) {
	tuner, tree, dict := setup(t)
	q := labeltree.MustParsePattern("movie(actor(name),keyword,genre)", dict)
	truth := match.NewCounter(tree).Count(q)
	if truth == 0 || tuner.Estimate(q) == float64(truth) {
		t.Skip("query unusable for refresh test")
	}
	tuner.Feedback(q, truth)
	// Document "changed": new truth.
	tuner.Feedback(q, truth+5)
	if got := tuner.Estimate(q); got != float64(truth+5) {
		t.Fatalf("refreshed estimate = %v, want %d", got, truth+5)
	}
	if tuner.Corrections() != 1 {
		t.Fatalf("Corrections = %d, want 1", tuner.Corrections())
	}
}

func TestNewTunerPanicsOnBadBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero budget accepted")
		}
	}()
	NewTuner(nil, 0)
}
