package planner

import (
	"strings"
	"testing"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/mine"
	"treelattice/internal/twigjoin"
	"treelattice/internal/xmlparse"
)

// skewedDoc has many r elements with common children and a single rare
// child: a plan that probes the rare branch first fails fast.
func skewedDoc(t *testing.T) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 200; i++ {
		sb.WriteString("<r>")
		for j := 0; j < 5; j++ {
			sb.WriteString("<common><x/></common>")
		}
		if i == 0 {
			sb.WriteString("<rare><y/></rare>")
		}
		sb.WriteString("</r>")
	}
	sb.WriteString("</root>")
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(sb.String()), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func estimatorFor(t *testing.T, tr *labeltree.Tree) estimate.Estimator {
	t.Helper()
	sum, err := mine.Mine(tr, 3, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return estimate.NewRecursive(sum, true)
}

func TestChooseOrdersSelectiveSubtreeFirst(t *testing.T) {
	tr, dict := skewedDoc(t)
	est := estimatorFor(t, tr)
	// Stored numbering binds common (node 1..2) before rare (node 3..4).
	q := twigjoin.MustParseQuery("//r(common(x),rare(y))", dict)
	plan := Choose(q, est)
	// The rare subtree must come right after the root in the plan.
	if plan.Order[0] != 0 {
		t.Fatalf("plan does not start at root: %v", plan.Order)
	}
	rareIdx := int32(-1)
	for i := int32(0); int(i) < q.Pattern.Size(); i++ {
		if dict.Name(q.Pattern.Label(i)) == "rare" {
			rareIdx = i
		}
	}
	if plan.Order[1] != rareIdx {
		t.Fatalf("plan %v does not bind rare (node %d) first", plan.Order, rareIdx)
	}
	if plan.EstimatedMatches <= 0 {
		t.Fatalf("estimated matches = %v", plan.EstimatedMatches)
	}
}

func TestPlannedExecutionBeatsNaive(t *testing.T) {
	tr, dict := skewedDoc(t)
	est := estimatorFor(t, tr)
	x := twigjoin.NewIndex(tr)
	q := twigjoin.MustParseQuery("//r(common(x),rare(y))", dict)

	planned := Choose(q, est)
	gotPlanned, stPlanned := Execute(x, q, planned)

	naive := Plan{Order: NaiveOrder(q)}
	gotNaive, stNaive := Execute(x, q, naive)

	truth := match.NewCounter(tr).Count(q.Pattern)
	if gotPlanned != truth || gotNaive != truth {
		t.Fatalf("match counts diverge: planned=%d naive=%d truth=%d", gotPlanned, gotNaive, truth)
	}
	if stPlanned.Candidates >= stNaive.Candidates {
		t.Fatalf("planned scan (%d candidates) not cheaper than naive (%d)",
			stPlanned.Candidates, stNaive.Candidates)
	}
	// The saving should be substantial on this skew.
	if stPlanned.Candidates*2 > stNaive.Candidates {
		t.Fatalf("planned scan only marginally cheaper: %d vs %d",
			stPlanned.Candidates, stNaive.Candidates)
	}
}

func TestAnchorPath(t *testing.T) {
	dict := labeltree.NewDict()
	p := labeltree.MustParsePattern("a(b,c(d))", dict)
	got := anchorPath(p, 3) // d
	a, _ := dict.Lookup("a")
	c, _ := dict.Lookup("c")
	d, _ := dict.Lookup("d")
	if !got.Equal(labeltree.PathPattern(a, c, d)) {
		t.Fatalf("anchorPath = %s", got.String(dict))
	}
	if !anchorPath(p, 0).Equal(labeltree.SingleNode(a)) {
		t.Fatal("root anchor path wrong")
	}
}

func TestPlanOrderIsValidPermutation(t *testing.T) {
	tr, dict := skewedDoc(t)
	est := estimatorFor(t, tr)
	for _, qs := range []string{"//r", "//r(common)", "//r(common(x),rare(y))", "//root(r(common,rare))"} {
		q := twigjoin.MustParseQuery(qs, dict)
		plan := Choose(q, est)
		seen := make(map[int32]int)
		for at, n := range plan.Order {
			seen[n] = at
		}
		if len(seen) != q.Pattern.Size() {
			t.Fatalf("%s: order %v is not a permutation", qs, plan.Order)
		}
		for i := int32(1); int(i) < q.Pattern.Size(); i++ {
			if seen[i] < seen[q.Pattern.Parent(i)] {
				t.Fatalf("%s: child before parent in %v", qs, plan.Order)
			}
		}
		if len(plan.PathEstimates) != q.Pattern.Size() {
			t.Fatalf("%s: missing path estimates", qs)
		}
	}
}
