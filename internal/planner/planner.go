// Package planner turns TreeLattice selectivity estimates into twig
// evaluation plans — the query-optimization application the paper
// motivates ("determining an optimal query plan, based on said
// estimates, for complex queries").
//
// The twigjoin executor binds query nodes one at a time, parent before
// child, scanning a candidate list per binding. Evaluating the branches
// under a node in sequence has the classic pipelined-selection structure:
// with branch fanouts f (expected matches per parent binding) and
// per-probe costs c, evaluating branch 1 before branch 2 costs
// c1 + f1·c2 versus c2 + f2·c1, so branches are ordered by ascending rank
// (f − 1)/c — filters (f < 1) first, cheap filters before expensive ones,
// expanding branches (f > 1) last. Both f and c come from TreeLattice
// estimates.
package planner

import (
	"sort"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/twigjoin"
)

// Plan is a bind order for a query with its estimation detail.
type Plan struct {
	// Order is the node binding order (parent always before child).
	Order []int32
	// PathEstimates holds, per query node, the estimated selectivity of
	// the root-to-node anchor path.
	PathEstimates []float64
	// EstimatedMatches is the estimated selectivity of the whole query.
	EstimatedMatches float64
	// PredictedCandidates is the cost model's prediction of
	// twigjoin.Stats.Candidates for the execution: each query node is
	// predicted to scan as many candidates as its anchor path has
	// matches (Σ PathEstimates). Comparing it with the measured
	// Stats.Candidates yields the calibration ratio exported by the
	// serving layer — the signal that validates the model with real
	// work.
	PredictedCandidates float64
}

// Choose builds a plan for q against the estimator.
//
// Descendant-axis fallback: the estimator sees child-axis patterns
// regardless of the query's axes — the lattice stores child-edge
// statistics, so a descendant ("//") edge is planned by the selectivity
// of the corresponding child edge. That underestimates descendant fanout
// on recursive documents but preserves the *relative* branch ordering
// whenever recursion is limited, which is what the rank needs; the
// executor's region-containment probes evaluate the true descendant
// semantics either way.
func Choose(q twigjoin.Query, est estimate.Estimator) Plan {
	p := q.Pattern
	n := p.Size()
	c := &chooser{p: p, est: est}
	c.pathEst = make([]float64, n)
	for i := int32(0); int(i) < n; i++ {
		c.pathEst[i] = est.Estimate(anchorPath(p, i))
	}
	order := make([]int32, 0, n)
	var visit func(i int32)
	visit = func(i int32) {
		order = append(order, i)
		kids := append([]int32(nil), p.Children(i)...)
		ranks := make(map[int32]float64, len(kids))
		for _, k := range kids {
			ranks[k] = c.rank(i, k)
		}
		sort.Slice(kids, func(a, b int) bool {
			if ranks[kids[a]] != ranks[kids[b]] {
				return ranks[kids[a]] < ranks[kids[b]]
			}
			return kids[a] < kids[b]
		})
		for _, k := range kids {
			visit(k)
		}
	}
	visit(0)
	var predicted float64
	for _, pe := range c.pathEst {
		predicted += pe
	}
	return Plan{
		Order:               order,
		PathEstimates:       c.pathEst,
		EstimatedMatches:    est.Estimate(p),
		PredictedCandidates: predicted,
	}
}

type chooser struct {
	p       labeltree.Pattern
	est     estimate.Estimator
	pathEst []float64
}

// rank scores the branch rooted at child c of node i: (fanout − 1)/cost,
// ascending-better.
func (ch *chooser) rank(i, c int32) float64 {
	f := ch.branchFanout(i, c)
	cost := ch.branchCost(c)
	if cost <= 0 {
		cost = 1e-9
	}
	return (f - 1) / cost
}

// branchFanout is the expected number of matches of the whole branch
// (anchor path to i plus the entire subtree under c) per binding of i.
func (ch *chooser) branchFanout(i, c int32) float64 {
	if ch.pathEst[i] <= 0 {
		return 0
	}
	nodes := ch.chainTo(i)
	nodes = append(nodes, ch.subtree(c)...)
	branch := ch.p.Subpattern(nodes)
	return ch.est.Estimate(branch) / ch.pathEst[i]
}

// branchCost approximates the candidates scanned evaluating the branch
// once: each node contributes its expected per-parent match count, and a
// node's children are only probed per match of the node.
func (ch *chooser) branchCost(c int32) float64 {
	m := ch.stepFanout(c)
	var childSum float64
	for _, k := range ch.p.Children(c) {
		childSum += ch.branchCost(k)
	}
	return m + m*childSum
}

// stepFanout is the expected matches of node n's anchor path per binding
// of its parent's anchor path.
func (ch *chooser) stepFanout(n int32) float64 {
	par := ch.p.Parent(n)
	if par < 0 || ch.pathEst[par] <= 0 {
		return 0
	}
	return ch.pathEst[n] / ch.pathEst[par]
}

// chainTo returns the query nodes on the path from the root to i.
func (ch *chooser) chainTo(i int32) []int32 {
	var chain []int32
	for at := i; at >= 0; at = ch.p.Parent(at) {
		chain = append(chain, at)
	}
	return chain
}

// subtree returns all query nodes in the subtree rooted at c.
func (ch *chooser) subtree(c int32) []int32 {
	out := []int32{c}
	for i := 0; i < len(out); i++ {
		out = append(out, ch.p.Children(out[i])...)
	}
	return out
}

// anchorPath extracts the root-to-node path pattern of p ending at node i.
func anchorPath(p labeltree.Pattern, i int32) labeltree.Pattern {
	var chain []int32
	for at := i; at >= 0; at = p.Parent(at) {
		chain = append(chain, at)
	}
	labels := make([]labeltree.LabelID, 0, len(chain))
	for j := len(chain) - 1; j >= 0; j-- {
		labels = append(labels, p.Label(chain[j]))
	}
	return labeltree.PathPattern(labels...)
}

// Execute runs q under the plan and reports the matches with the work
// performed.
func Execute(x *twigjoin.Index, q twigjoin.Query, plan Plan) (int64, twigjoin.Stats) {
	st := twigjoin.Enumerate(x, q, plan.Order, func(twigjoin.Match) bool { return true })
	return st.Matches, st
}

// NaiveOrder is the stored-numbering baseline order, for comparisons.
func NaiveOrder(q twigjoin.Query) []int32 {
	order := make([]int32, q.Pattern.Size())
	for i := range order {
		order[i] = int32(i)
	}
	return order
}
