package planner

import (
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/mine"
	"treelattice/internal/twigjoin"
	"treelattice/internal/xmlparse"

	"treelattice/internal/estimate"
)

// benchDoc is skewedDoc scaled up: many r subtrees with fat common
// branches and one rare branch, the structure where bind order dominates
// executor work.
func benchDoc(b *testing.B) (*labeltree.Tree, *labeltree.Dict) {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 2000; i++ {
		sb.WriteString("<r>")
		for j := 0; j < 5; j++ {
			sb.WriteString("<common><x/></common>")
		}
		if i%100 == 0 {
			sb.WriteString("<rare><y/></rare>")
		}
		sb.WriteString("</r>")
	}
	sb.WriteString("</root>")
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(sb.String()), dict, xmlparse.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return tr, dict
}

// BenchmarkPlanVsNaive executes the same query under the planner-chosen
// bind order and the stored-numbering baseline; candidates/op is the
// work metric the plan is supposed to reduce.
func BenchmarkPlanVsNaive(b *testing.B) {
	tr, dict := benchDoc(b)
	sum, err := mine.Mine(tr, 3, mine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	est := estimate.NewRecursive(sum, true)
	x := twigjoin.NewIndex(tr)
	q := twigjoin.MustParseQuery("//r(common(x),rare(y))", dict)

	plan := Choose(q, est)
	naive := NaiveOrder(q)
	wantPlanned, _ := Execute(x, q, plan)
	wantNaive := twigjoin.Enumerate(x, q, naive, func(twigjoin.Match) bool { return true })
	if wantPlanned != wantNaive.Matches {
		b.Fatalf("plan count %d != naive count %d", wantPlanned, wantNaive.Matches)
	}

	b.Run("plan", func(b *testing.B) {
		b.ReportAllocs()
		var st twigjoin.Stats
		for i := 0; i < b.N; i++ {
			_, st = Execute(x, q, plan)
		}
		b.ReportMetric(float64(st.Candidates), "candidates/op")
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		var st twigjoin.Stats
		for i := 0; i < b.N; i++ {
			st = twigjoin.Enumerate(x, q, naive, func(twigjoin.Match) bool { return true })
		}
		b.ReportMetric(float64(st.Candidates), "candidates/op")
	})
}
