// Package fsx holds the crash-safe file-writing discipline every
// snapshot in the system goes through: write to a temp file in the
// destination directory, fsync the file, atomically rename it over the
// destination, and fsync the directory so the rename itself is durable.
// A crash at any point leaves either the old file or the new one —
// never a truncated hybrid a replica would later mmap.
package fsx

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the bytes fill produces to path with full
// crash-safety: temp file in path's directory, fsync, rename, directory
// fsync. On any error the temp file is removed and the destination is
// untouched.
func WriteFileAtomic(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives a
// crash. Some platforms (and some filesystems) reject fsync on
// directories; those errors are swallowed — the rename is still atomic,
// only its durability window widens to the next metadata flush.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
