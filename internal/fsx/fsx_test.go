package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tlat")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite in place: the new content fully replaces the old.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second-longer")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second-longer" {
		t.Fatalf("after overwrite: %q", got)
	}
}

// TestWriteFileAtomicFillError: a failing fill leaves the destination
// untouched and no temp files behind.
func TestWriteFileAtomicFillError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tlat")
	if err := os.WriteFile(path, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "keep" {
		t.Fatalf("destination clobbered: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
