// Package xmlparse converts XML documents to and from the labeltree data
// model. Following the paper (and Polyzotis & Garofalakis), text values are
// not modeled by default: only element structure is retained. An optional
// mode buckets leaf text into synthetic value labels, supporting the
// paper's future-work extension to value predicates.
package xmlparse

import (
	"encoding/xml"
	"fmt"
	"hash/fnv"
	"io"

	"treelattice/internal/labeltree"
)

// Default parse limits. The zero Options used to mean "unlimited", which
// made every caller that forgot to set a cap a resource-exhaustion hole for
// untrusted input (/v1/docs uploads). Zero now means these defaults; bulk
// CLI loads of trusted files opt out with Unlimited.
const (
	// DefaultMaxDepth bounds element nesting. encoding/xml recurses per
	// level nowhere, but the builder's stack and any later traversal grow
	// with depth; 10k is far beyond real documents (DBLP/NASA are < 10).
	DefaultMaxDepth = 10_000
	// DefaultMaxNodes bounds tree size. 20M nodes is roughly a 1 GiB
	// working set — larger than any benchmark document by two orders of
	// magnitude, small enough to fail before the process OOMs.
	DefaultMaxNodes = 20_000_000
	// Unlimited disables a limit when set as MaxDepth or MaxNodes.
	Unlimited = -1
)

// Options configures parsing.
type Options struct {
	// ValueBuckets, when positive, maps leaf text content to one of this
	// many synthetic labels "#vN" attached as an extra child, so value
	// predicates can be estimated like structural predicates (the
	// paper's future-work extension). ValueLabel computes the bucket
	// label for a predicate value.
	ValueBuckets int
	// Attributes, when true, models each XML attribute as a child node
	// labeled "@name" (the paper's data model labels non-leaf nodes with
	// element tags *and attribute names*). With ValueBuckets set, the
	// attribute node gets a value-bucket child.
	Attributes bool
	// MaxNodes aborts the parse once the tree exceeds this many nodes.
	// Zero means DefaultMaxNodes; Unlimited (or any negative) disables
	// the check.
	MaxNodes int
	// MaxDepth aborts the parse once element nesting exceeds this depth.
	// Zero means DefaultMaxDepth; Unlimited (or any negative) disables
	// the check.
	MaxDepth int
}

// limits resolves the zero-value defaults.
func (o Options) limits() (maxNodes, maxDepth int) {
	maxNodes, maxDepth = o.MaxNodes, o.MaxDepth
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	}
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	return maxNodes, maxDepth
}

// Parse reads one XML document from r into a data tree, interning element
// names into dict.
func Parse(r io.Reader, dict *labeltree.Dict, opts Options) (*labeltree.Tree, error) {
	maxNodes, maxDepth := opts.limits()
	dec := xml.NewDecoder(r)
	b := labeltree.NewBuilder(dict)
	var stack []int32
	var pendingText []byte
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlparse: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			var id int32
			if len(stack) == 0 {
				if b.Len() > 0 {
					return nil, fmt.Errorf("xmlparse: multiple document roots")
				}
				id = b.AddRoot(tk.Name.Local)
			} else {
				id = b.AddChild(stack[len(stack)-1], tk.Name.Local)
			}
			if maxDepth > 0 && len(stack)+1 > maxDepth {
				return nil, fmt.Errorf("xmlparse: document exceeds depth %d", maxDepth)
			}
			if maxNodes > 0 && b.Len() > maxNodes {
				return nil, fmt.Errorf("xmlparse: document exceeds %d nodes", maxNodes)
			}
			if opts.Attributes {
				for _, attr := range tk.Attr {
					an := b.AddChild(id, "@"+attr.Name.Local)
					if opts.ValueBuckets > 0 {
						b.AddChild(an, ValueLabel(attr.Value, opts.ValueBuckets))
					}
					if maxNodes > 0 && b.Len() > maxNodes {
						return nil, fmt.Errorf("xmlparse: document exceeds %d nodes", maxNodes)
					}
				}
			}
			stack = append(stack, id)
			pendingText = pendingText[:0]
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlparse: unbalanced end element %q", tk.Name.Local)
			}
			if opts.ValueBuckets > 0 && len(pendingText) > 0 {
				b.AddChild(stack[len(stack)-1], ValueLabel(string(pendingText), opts.ValueBuckets))
				pendingText = pendingText[:0]
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if opts.ValueBuckets > 0 {
				pendingText = appendTrimmed(pendingText, tk)
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlparse: unexpected EOF with %d open elements", len(stack))
	}
	if b.Len() == 0 {
		return nil, fmt.Errorf("xmlparse: no elements in document")
	}
	return b.Build(), nil
}

// ValueLabel buckets a text value into one of n synthetic labels "#vN".
// Queries with value predicates use the same function to name the bucket
// a predicate value falls into, e.g.
// "price(" + ValueLabel("42", 16) + ")".
func ValueLabel(text string, n int) string {
	h := fnv.New32a()
	h.Write([]byte(text))
	return fmt.Sprintf("#v%d", h.Sum32()%uint32(n))
}

func appendTrimmed(dst []byte, src []byte) []byte {
	for _, c := range src {
		if c != ' ' && c != '\n' && c != '\t' && c != '\r' {
			dst = append(dst, c)
		}
	}
	return dst
}

// Write serializes a data tree back to XML. Attribute nodes (labels
// starting with '@', produced by Options.Attributes) are emitted as
// attributes of their parent element; synthetic value-bucket nodes
// (labels starting with '#') are skipped — bucket identities are hashes
// and do not survive a round trip. Structural and attribute content
// round-trips exactly under the same parse options.
//
// The traversal is iterative (an explicit frame stack), so serializing a
// pathologically deep document — parse limits can be opted out of — grows
// the heap, never the goroutine stack.
func Write(w io.Writer, t *labeltree.Tree) error {
	bw := &errWriter{w: w}
	type frame struct {
		node  int32
		elems []int32
		next  int
	}
	// open emits the start tag (or the whole element, when childless) and
	// reports whether the caller must descend.
	open := func(i int32) (frame, bool) {
		name := t.LabelName(i)
		var attrs, elems []int32
		for _, c := range t.Children(i) {
			switch t.LabelName(c)[0] {
			case '@':
				attrs = append(attrs, c)
			case '#':
				// value bucket: dropped
			default:
				elems = append(elems, c)
			}
		}
		bw.printf("<%s", name)
		for _, a := range attrs {
			bw.printf(" %s=%q", t.LabelName(a)[1:], "")
		}
		if len(elems) == 0 {
			bw.printf("/>")
			return frame{}, false
		}
		bw.printf(">")
		return frame{node: i, elems: elems}, true
	}
	var stack []frame
	if f, descend := open(0); descend {
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next == len(top.elems) {
			bw.printf("</%s>", t.LabelName(top.node))
			stack = stack[:len(stack)-1]
			continue
		}
		c := top.elems[top.next]
		top.next++
		if f, descend := open(c); descend {
			stack = append(stack, f)
		}
	}
	bw.printf("\n")
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
