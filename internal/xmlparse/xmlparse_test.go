package xmlparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

const sampleDoc = `<computer>
  <laptops>
    <laptop><brand/><price/></laptop>
    <laptop><brand/><price/></laptop>
  </laptops>
  <desktops/>
</computer>`

func TestParseSample(t *testing.T) {
	dict := labeltree.NewDict()
	tr, err := Parse(strings.NewReader(sampleDoc), dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 9 {
		t.Fatalf("Size = %d, want 9", tr.Size())
	}
	if tr.LabelName(0) != "computer" {
		t.Fatalf("root = %q", tr.LabelName(0))
	}
	laptop, ok := dict.Lookup("laptop")
	if !ok || tr.LabelCount(laptop) != 2 {
		t.Fatalf("laptop count wrong")
	}
}

func TestParseErrors(t *testing.T) {
	dict := labeltree.NewDict()
	cases := map[string]string{
		"empty":          "",
		"unbalanced":     "<a><b></a>",
		"truncated":      "<a><b>",
		"multiple roots": "<a/><b/>",
	}
	for name, doc := range cases {
		if _, err := Parse(strings.NewReader(doc), dict, Options{}); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestParseMaxNodes(t *testing.T) {
	dict := labeltree.NewDict()
	if _, err := Parse(strings.NewReader(sampleDoc), dict, Options{MaxNodes: 3}); err == nil {
		t.Fatal("MaxNodes not enforced")
	}
	if _, err := Parse(strings.NewReader(sampleDoc), dict, Options{MaxNodes: 9}); err != nil {
		t.Fatalf("MaxNodes=9 rejected 9-node doc: %v", err)
	}
}

func TestParseValueBuckets(t *testing.T) {
	dict := labeltree.NewDict()
	doc := `<a><b>hello</b><c>world</c></a>`
	tr, err := Parse(strings.NewReader(doc), dict, Options{ValueBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	// a, b, c plus two value leaves.
	if tr.Size() != 5 {
		t.Fatalf("Size = %d, want 5", tr.Size())
	}
	values := 0
	for _, l := range tr.DistinctLabels() {
		if strings.HasPrefix(dict.Name(l), "#v") {
			values++
		}
	}
	if values == 0 {
		t.Fatal("no value bucket labels created")
	}
	// Same text must land in the same bucket.
	tr2, err := Parse(strings.NewReader(doc), dict, Options{ValueBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Size() != tr.Size() {
		t.Fatal("value bucketing not deterministic")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	dict := labeltree.NewDict()
	tr, err := Parse(strings.NewReader(sampleDoc), dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Parse(&buf, dict, Options{})
	if err != nil {
		t.Fatalf("reparsing serialized doc: %v", err)
	}
	if tr2.Size() != tr.Size() {
		t.Fatalf("round trip size %d != %d", tr2.Size(), tr.Size())
	}
	for i := int32(0); int(i) < tr.Size(); i++ {
		if tr.Label(i) != tr2.Label(i) || tr.Parent(i) != tr2.Parent(i) {
			t.Fatalf("round trip differs at node %d", i)
		}
	}
}

func TestRoundTripRandomTrees(t *testing.T) {
	dict, alphabet := treetest.Alphabet(6)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tr := treetest.RandomTree(rng, 1+rng.Intn(200), alphabet, dict)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		tr2, err := Parse(&buf, dict, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr2.Size() != tr.Size() {
			t.Fatalf("trial %d: size %d != %d", trial, tr2.Size(), tr.Size())
		}
	}
}

func TestIgnoresCommentsAndPI(t *testing.T) {
	dict := labeltree.NewDict()
	doc := `<?xml version="1.0"?><!-- hi --><a><!-- inner --><b/></a>`
	tr, err := Parse(strings.NewReader(doc), dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2 {
		t.Fatalf("Size = %d, want 2", tr.Size())
	}
}

func TestParseAttributes(t *testing.T) {
	dict := labeltree.NewDict()
	doc := `<a id="1" kind="x"><b ref="2"/></a>`
	tr, err := Parse(strings.NewReader(doc), dict, Options{Attributes: true})
	if err != nil {
		t.Fatal(err)
	}
	// a, @id, @kind, b, @ref
	if tr.Size() != 5 {
		t.Fatalf("Size = %d, want 5", tr.Size())
	}
	id, ok := dict.Lookup("@id")
	if !ok || tr.LabelCount(id) != 1 {
		t.Fatal("@id attribute node missing")
	}
	// Without the option, attributes are ignored.
	tr2, err := Parse(strings.NewReader(doc), dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Size() != 2 {
		t.Fatalf("Size without attributes = %d, want 2", tr2.Size())
	}
}

func TestParseAttributeValueBuckets(t *testing.T) {
	dict := labeltree.NewDict()
	doc := `<a id="42"/>`
	tr, err := Parse(strings.NewReader(doc), dict, Options{Attributes: true, ValueBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	// a, @id, #vN
	if tr.Size() != 3 {
		t.Fatalf("Size = %d, want 3", tr.Size())
	}
	want := ValueLabel("42", 8)
	if _, ok := dict.Lookup(want); !ok {
		t.Fatalf("bucket label %s not interned", want)
	}
}

func TestValueLabelDeterministic(t *testing.T) {
	if ValueLabel("hello", 16) != ValueLabel("hello", 16) {
		t.Fatal("ValueLabel not deterministic")
	}
	seen := map[string]bool{}
	for _, s := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		seen[ValueLabel(s, 4)] = true
	}
	if len(seen) < 2 {
		t.Fatal("ValueLabel degenerate: everything in one bucket")
	}
	for l := range seen {
		if !strings.HasPrefix(l, "#v") {
			t.Fatalf("bucket label %q lacks #v prefix", l)
		}
	}
}

func TestWriteAttributesRoundTrip(t *testing.T) {
	dict := labeltree.NewDict()
	doc := `<a id="1"><b ref="2"><c/></b></a>`
	tr, err := Parse(strings.NewReader(doc), dict, Options{Attributes: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Parse(bytes.NewReader(buf.Bytes()), dict, Options{Attributes: true})
	if err != nil {
		t.Fatalf("reparse %q: %v", buf.String(), err)
	}
	if tr2.Size() != tr.Size() {
		t.Fatalf("round trip size %d != %d (%q)", tr2.Size(), tr.Size(), buf.String())
	}
	for i := int32(0); int(i) < tr.Size(); i++ {
		if tr.Label(i) != tr2.Label(i) || tr.Parent(i) != tr2.Parent(i) {
			t.Fatalf("round trip differs at node %d", i)
		}
	}
}

func TestWriteSkipsValueBuckets(t *testing.T) {
	dict := labeltree.NewDict()
	doc := `<a><b>text</b></a>`
	tr, err := Parse(strings.NewReader(doc), dict, Options{ValueBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#v") {
		t.Fatalf("serialized bucket label: %q", buf.String())
	}
	tr2, err := Parse(bytes.NewReader(buf.Bytes()), dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Size() != 2 {
		t.Fatalf("structural content lost: size %d", tr2.Size())
	}
}

// deepDoc builds <a><a>...<a/>...</a></a> nested n levels.
func deepDoc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < n; i++ {
		b.WriteString("</a>")
	}
	return b.String()
}

// TestParseMaxDepth: nesting beyond MaxDepth aborts; exactly MaxDepth
// parses; Unlimited opts out.
func TestParseMaxDepth(t *testing.T) {
	doc := deepDoc(50)
	if _, err := Parse(strings.NewReader(doc), labeltree.NewDict(), Options{MaxDepth: 49}); err == nil {
		t.Fatal("MaxDepth not enforced")
	}
	if _, err := Parse(strings.NewReader(doc), labeltree.NewDict(), Options{MaxDepth: 50}); err != nil {
		t.Fatalf("MaxDepth=50 rejected 50-deep doc: %v", err)
	}
	if _, err := Parse(strings.NewReader(doc), labeltree.NewDict(), Options{MaxDepth: Unlimited, MaxNodes: Unlimited}); err != nil {
		t.Fatalf("Unlimited rejected doc: %v", err)
	}
}

// TestWriteDeepDocument: serialization is iterative, so a document far
// deeper than any recursive traversal could survive writes fine (the
// parse limits can be opted out of, so Write must not assume bounded
// depth).
func TestWriteDeepDocument(t *testing.T) {
	const depth = 200_000
	tr, err := Parse(strings.NewReader(deepDoc(depth)), labeltree.NewDict(),
		Options{MaxDepth: Unlimited, MaxNodes: Unlimited})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := Write(&out, tr); err != nil {
		t.Fatal(err)
	}
	// The innermost element self-closes on the way back out.
	want := strings.Repeat("<a>", depth-1) + "<a/>" + strings.Repeat("</a>", depth-1)
	if got := strings.TrimSuffix(out.String(), "\n"); got != want {
		t.Fatalf("deep round trip diverged (len %d vs %d)", len(got), len(want))
	}
}
