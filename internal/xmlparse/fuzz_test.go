package xmlparse

import (
	"strings"
	"testing"

	"treelattice/internal/labeltree"
)

// FuzzParse: the XML parser never panics on arbitrary bytes, respects its
// node/depth limits, and whatever it accepts reaches a serialization
// fixed point: Write(t) reparsed and rewritten is byte-identical. (The
// first Write can differ from the input — whitespace, attribute values,
// and value buckets are not preserved — but the second round trip must be
// stable or estimates over re-ingested documents would drift.)
func FuzzParse(f *testing.F) {
	f.Add("<a><b/><c><d/></c></a>")
	f.Add(`<computer><laptop brand="x">1 900 </laptop></computer>`)
	f.Add("<a/>")
	f.Add("<a><a><a><a/></a></a></a>")
	f.Add("<a></b>")
	f.Add("<a/><b/>")
	f.Fuzz(func(t *testing.T, input string) {
		opts := Options{MaxNodes: 10_000, MaxDepth: 200}
		tr, err := Parse(strings.NewReader(input), labeltree.NewDict(), opts)
		if err != nil {
			return
		}
		if tr.Size() > 10_000 {
			t.Fatalf("limit breached: %d nodes from %q", tr.Size(), input)
		}
		// Write treats '@'/'#' label prefixes as attribute/value-bucket
		// markers; documents whose element names collide with those
		// synthetic prefixes are out of round-trip scope.
		for i := int32(0); i < int32(tr.Size()); i++ {
			if n := tr.LabelName(i); n == "" || n[0] == '@' || n[0] == '#' {
				return
			}
		}
		var b1 strings.Builder
		if err := Write(&b1, tr); err != nil {
			t.Fatalf("Write failed on accepted document %q: %v", input, err)
		}
		t1, err := Parse(strings.NewReader(b1.String()), labeltree.NewDict(), opts)
		if err != nil {
			t.Fatalf("rewritten document does not reparse: %v\ninput: %q\nrewritten: %q", err, input, b1.String())
		}
		var b2 strings.Builder
		if err := Write(&b2, t1); err != nil {
			t.Fatal(err)
		}
		if b1.String() != b2.String() {
			t.Fatalf("round trip not a fixed point:\nfirst:  %q\nsecond: %q", b1.String(), b2.String())
		}
	})
}
