package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff produces jittered exponential retry delays: each Next() grows
// the base delay by Factor up to Max, then adds a uniformly distributed
// jitter of up to Jitter×delay — the standard defense against a fleet
// of failed refreezers all retrying on the same beat. Safe for use by
// one goroutine at a time per value; the seeded generator keeps failing
// tests replayable.
type Backoff struct {
	// Base is the first delay (default 100ms).
	Base time.Duration
	// Max caps the grown delay before jitter (default 30s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the delay added as random jitter
	// (0 means the 0.5 default; negative disables jitter entirely,
	// making the schedule fully deterministic).
	Jitter float64
	// Seed seeds the jitter generator (0 means time-seeded).
	Seed int64

	mu      sync.Mutex
	attempt int
	rng     *rand.Rand
}

// Next returns the delay to sleep before the next retry and advances
// the attempt counter.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 30 * time.Second
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 0; i < b.attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	b.attempt++
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		if b.rng == nil {
			seed := b.Seed
			if seed == 0 {
				seed = time.Now().UnixNano()
			}
			b.rng = rand.New(rand.NewSource(seed))
		}
		d += b.rng.Float64() * jitter * d
	}
	return time.Duration(d)
}

// Reset restarts the schedule after a success.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempts reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}
