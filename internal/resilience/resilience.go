// Package resilience keeps the serving path alive under hostile
// conditions: overload, slow queries, and panicking handlers. It supplies
// the three primitives the HTTP layer composes per endpoint:
//
//   - Limiter: a concurrency-limited admission controller. A fixed number
//     of requests run at once; a bounded queue absorbs short bursts; and
//     everything beyond that is shed immediately, so the server's response
//     to overload is fast 429s instead of unbounded queueing and collapse.
//   - Deadline: middleware attaching a per-endpoint context budget, so a
//     single expensive query (the paper's Definition-1 exact count, a full
//     document scan) cannot hold a connection forever. The kernels check
//     their context cooperatively; see internal/match and
//     internal/estimate.
//   - Recover: middleware converting a handler panic into a 500 JSON
//     envelope plus a counter, isolating the fault to the one request
//     instead of killing the process.
//
// All counters are internal/obs metrics, so shedding and panic rates are
// visible in /v1/metrics next to the latency histograms they explain.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"treelattice/internal/obs"
)

// ErrShed reports that admission control rejected a request: the limiter
// was at capacity and the wait queue was full (or the queue wait expired).
var ErrShed = errors.New("resilience: request shed by admission control")

// LimiterOptions configures a Limiter.
type LimiterOptions struct {
	// Limit is the number of requests allowed to run concurrently.
	// Must be positive.
	Limit int
	// Queue bounds how many requests may wait for a slot; arrivals beyond
	// Limit+Queue are shed immediately. Default 2×Limit.
	Queue int
	// QueueWait bounds how long a queued request waits before being shed.
	// Default 100ms.
	QueueWait time.Duration
}

// Limiter is a concurrency-limited admission controller with a bounded
// wait queue. Safe for concurrent use.
type Limiter struct {
	sem   chan struct{}
	queue chan struct{}
	wait  time.Duration

	admitted, queued, shed *obs.Counter
	depth                  *obs.Gauge
}

// NewLimiter builds a limiter. Counters are private until Instrument
// points them at a registry.
func NewLimiter(opts LimiterOptions) *Limiter {
	if opts.Limit <= 0 {
		opts.Limit = 1
	}
	if opts.Queue <= 0 {
		opts.Queue = 2 * opts.Limit
	}
	if opts.QueueWait <= 0 {
		opts.QueueWait = 100 * time.Millisecond
	}
	return &Limiter{
		sem:      make(chan struct{}, opts.Limit),
		queue:    make(chan struct{}, opts.Queue),
		wait:     opts.QueueWait,
		admitted: &obs.Counter{},
		queued:   &obs.Counter{},
		shed:     &obs.Counter{},
		depth:    &obs.Gauge{},
	}
}

// Instrument registers the limiter's counters in reg under
// <prefix>.admitted, <prefix>.queued, <prefix>.shed and the queue-depth
// gauge <prefix>.queue_depth. Call before the limiter sees traffic.
func (l *Limiter) Instrument(reg *obs.Registry, prefix string) {
	l.admitted = reg.Counter(prefix + ".admitted")
	l.queued = reg.Counter(prefix + ".queued")
	l.shed = reg.Counter(prefix + ".shed")
	l.depth = reg.Gauge(prefix + ".queue_depth")
}

// Acquire admits the caller, queues it briefly when at capacity, or sheds
// it. Returns nil on admission (pair with Release), ErrShed when shed, and
// ctx.Err() when the caller's context ends while queued.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		l.admitted.Inc()
		return nil
	default:
	}
	// At capacity: try to take a queue slot without blocking.
	select {
	case l.queue <- struct{}{}:
	default:
		l.shed.Inc()
		return ErrShed
	}
	l.queued.Inc()
	l.depth.Add(1)
	defer func() {
		<-l.queue
		l.depth.Add(-1)
	}()
	timer := time.NewTimer(l.wait)
	defer timer.Stop()
	select {
	case l.sem <- struct{}{}:
		l.admitted.Inc()
		return nil
	case <-timer.C:
		l.shed.Inc()
		return ErrShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns an admitted caller's slot. Must be called exactly once
// per successful Acquire.
func (l *Limiter) Release() { <-l.sem }

// Stats reports the admission counters and the current concurrency.
func (l *Limiter) Stats() (admitted, queued, shed uint64, inFlight int) {
	return l.admitted.Value(), l.queued.Value(), l.shed.Value(), len(l.sem)
}

// Saturated reports whether the limiter is full: every run slot busy and
// every queue slot taken, so a new arrival would be shed. The readiness
// probe uses this to steer load-balancer traffic away before clients see
// 429s. A nil limiter (admission control off) is never saturated.
func (l *Limiter) Saturated() bool {
	if l == nil {
		return false
	}
	return len(l.sem) == cap(l.sem) && len(l.queue) == cap(l.queue)
}

// ErrorWriter renders an error response. The serving layer passes its JSON
// envelope writer so shed and panic responses look like every other error.
type ErrorWriter func(w http.ResponseWriter, status int, code, msg string)

// defaultErrorWriter is the fallback envelope, matching the serve package's
// {"error": ..., "code": ...} shape.
func defaultErrorWriter(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q,\"code\":%q}\n", msg, code)
}

// Admission wraps a handler with the limiter: shed requests get 429 with a
// Retry-After header; a client that disconnects while queued gets 499.
func Admission(l *Limiter, retryAfter time.Duration, writeErr ErrorWriter) func(http.HandlerFunc) http.HandlerFunc {
	if writeErr == nil {
		writeErr = defaultErrorWriter
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	secs := int(retryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	retry := fmt.Sprintf("%d", secs)
	return func(fn http.HandlerFunc) http.HandlerFunc {
		if l == nil {
			return fn
		}
		return func(w http.ResponseWriter, r *http.Request) {
			switch err := l.Acquire(r.Context()); {
			case err == nil:
				defer l.Release()
				fn(w, r)
			case errors.Is(err, ErrShed):
				w.Header().Set("Retry-After", retry)
				writeErr(w, http.StatusTooManyRequests, "shed",
					"server over capacity; retry later")
			default: // the caller's context ended while queued
				writeErr(w, 499, "canceled", err.Error())
			}
		}
	}
}

// Deadline attaches a context budget to each request. A zero budget is a
// no-op, so unset budgets cost nothing.
func Deadline(budget time.Duration) func(http.HandlerFunc) http.HandlerFunc {
	return func(fn http.HandlerFunc) http.HandlerFunc {
		if budget <= 0 {
			return fn
		}
		return func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), budget)
			defer cancel()
			fn(w, r.WithContext(ctx))
		}
	}
}

// headerTracker remembers whether the handler already started the
// response, so the panic recovery path only writes its envelope onto a
// virgin connection.
type headerTracker struct {
	http.ResponseWriter
	wrote bool
}

func (h *headerTracker) WriteHeader(code int) {
	h.wrote = true
	h.ResponseWriter.WriteHeader(code)
}

func (h *headerTracker) Write(b []byte) (int, error) {
	h.wrote = true
	return h.ResponseWriter.Write(b)
}

// Recover converts a handler panic into a 500 JSON envelope and a counter
// increment instead of a process crash. http.ErrAbortHandler is re-raised:
// it is the stdlib's sanctioned way to abort a response, not a fault.
// panics may be nil (count is dropped); logf may be nil (panic values are
// not logged).
func Recover(panics *obs.Counter, logf func(format string, args ...any), writeErr ErrorWriter) func(http.HandlerFunc) http.HandlerFunc {
	if writeErr == nil {
		writeErr = defaultErrorWriter
	}
	return func(fn http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			ht := &headerTracker{ResponseWriter: w}
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				if panics != nil {
					panics.Inc()
				}
				if logf != nil {
					logf("resilience: recovered handler panic on %s %s: %v", r.Method, r.URL.Path, rec)
				}
				if !ht.wrote {
					writeErr(ht, http.StatusInternalServerError, "internal",
						"internal error: handler panicked")
				}
			}()
			fn(ht, r)
		}
	}
}
