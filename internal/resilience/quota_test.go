package resilience

import (
	"sync"
	"testing"
	"time"
)

func TestQuotaSetPerKey(t *testing.T) {
	q := NewQuotaSet(2)
	if !q.Acquire("a") || !q.Acquire("a") {
		t.Fatal("first two acquires for a key must admit")
	}
	if q.Acquire("a") {
		t.Fatal("third concurrent acquire must shed")
	}
	// Quotas are per key: another tenant is unaffected.
	if !q.Acquire("b") {
		t.Fatal("other key must admit")
	}
	q.Release("a")
	if !q.Acquire("a") {
		t.Fatal("released slot must readmit")
	}
	if got := q.Shed(); got != 1 {
		t.Fatalf("shed count %d, want 1", got)
	}
	if got := q.InFlight("a"); got != 2 {
		t.Fatalf("in-flight %d, want 2", got)
	}
}

func TestQuotaSetDisabled(t *testing.T) {
	for _, q := range []*QuotaSet{nil, NewQuotaSet(0)} {
		for i := 0; i < 100; i++ {
			if !q.Acquire("a") {
				t.Fatal("disabled quota must always admit")
			}
		}
		q.Release("a")
		if q.Shed() != 0 || q.InFlight("a") != 0 {
			t.Fatal("disabled quota must report zeros")
		}
	}
}

func TestQuotaSetConcurrent(t *testing.T) {
	q := NewQuotaSet(4)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if q.Acquire("k") {
					if n := q.InFlight("k"); n > 4 {
						t.Errorf("in-flight %d exceeds quota", n)
					}
					q.Release("k")
				}
			}
		}()
	}
	wg.Wait()
	if got := q.InFlight("k"); got != 0 {
		t.Fatalf("leaked %d in-flight slots", got)
	}
}

func TestLimiterSaturated(t *testing.T) {
	var nilL *Limiter
	if nilL.Saturated() {
		t.Fatal("nil limiter must never be saturated")
	}
	l := NewLimiter(LimiterOptions{Limit: 1, Queue: 1, QueueWait: time.Millisecond})
	if l.Saturated() {
		t.Fatal("idle limiter must not be saturated")
	}
	if err := l.Acquire(t.Context()); err != nil {
		t.Fatal(err)
	}
	// Occupy the queue slot: a second caller waits in the queue until
	// its short QueueWait expires, during which the limiter is full.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = l.Acquire(t.Context())
	}()
	saturated := false
	for i := 0; i < 1000 && !saturated; i++ {
		saturated = l.Saturated()
		time.Sleep(10 * time.Microsecond)
	}
	<-done
	if !saturated {
		t.Fatal("limiter with full run and queue slots must report saturated")
	}
	l.Release()
	if l.Saturated() {
		t.Fatal("drained limiter must not be saturated")
	}
}
