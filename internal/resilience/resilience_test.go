package resilience

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"treelattice/internal/obs"
)

// TestLimiterAdmitsUpToLimit checks the basic semaphore behaviour without
// contention.
func TestLimiterAdmitsUpToLimit(t *testing.T) {
	l := NewLimiter(LimiterOptions{Limit: 2, Queue: 1, QueueWait: 10 * time.Millisecond})
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	admitted, _, _, inFlight := l.Stats()
	if admitted != 2 || inFlight != 2 {
		t.Fatalf("admitted=%d inFlight=%d, want 2/2", admitted, inFlight)
	}
	l.Release()
	l.Release()
	if _, _, _, inFlight := l.Stats(); inFlight != 0 {
		t.Fatalf("inFlight after release = %d, want 0", inFlight)
	}
}

// TestLimiterShedsBeyondQueue fills the limit and the queue; the next
// arrival must be shed immediately (no QueueWait delay).
func TestLimiterShedsBeyondQueue(t *testing.T) {
	l := NewLimiter(LimiterOptions{Limit: 1, Queue: 1, QueueWait: time.Minute})
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- l.Acquire(ctx) }()
	// Wait until the goroutine holds the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, q, _, _ := l.Stats(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued acquire never registered")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	err := l.Acquire(ctx)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("over-queue acquire: %v, want ErrShed", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("immediate shed took %v", d)
	}
	l.Release() // admits the queued goroutine
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	l.Release()
	if _, _, shed, _ := l.Stats(); shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
}

// TestLimiterQueueWaitExpires: a queued request is shed once the queue
// wait elapses without a slot freeing.
func TestLimiterQueueWaitExpires(t *testing.T) {
	l := NewLimiter(LimiterOptions{Limit: 1, Queue: 1, QueueWait: 20 * time.Millisecond})
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	start := time.Now()
	err := l.Acquire(context.Background())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("expired queue wait: %v, want ErrShed", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond || d > 5*time.Second {
		t.Fatalf("queue wait shed after %v, want ~20ms", d)
	}
}

// TestLimiterCtxCanceledWhileQueued: a caller that gives up while queued
// gets its context error, not ErrShed.
func TestLimiterCtxCanceledWhileQueued(t *testing.T) {
	l := NewLimiter(LimiterOptions{Limit: 1, Queue: 1, QueueWait: time.Minute})
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, q, _, _ := l.Stats(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued acquire never registered")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued acquire: %v, want context.Canceled", err)
	}
}

// TestLimiterConcurrentNeverExceedsLimit hammers the limiter (run under
// -race) and asserts the in-flight count never exceeds the limit.
func TestLimiterConcurrentNeverExceedsLimit(t *testing.T) {
	const limit = 4
	l := NewLimiter(LimiterOptions{Limit: limit, Queue: 8, QueueWait: 50 * time.Millisecond})
	var mu sync.Mutex
	var cur, peak int
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			l.Release()
		}()
	}
	wg.Wait()
	if peak > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", peak, limit)
	}
	admitted, _, shed, _ := l.Stats()
	if admitted+shed != 64 {
		t.Fatalf("admitted %d + shed %d != 64 arrivals", admitted, shed)
	}
}

// TestAdmissionMiddleware checks the 429 + Retry-After surface.
func TestAdmissionMiddleware(t *testing.T) {
	l := NewLimiter(LimiterOptions{Limit: 1, Queue: 1, QueueWait: 10 * time.Millisecond})
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	h := Admission(l, 3*time.Second, nil)(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})

	var wg sync.WaitGroup
	codes := make(chan int, 3)
	headers := make(chan string, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h(rec, httptest.NewRequest("GET", "/v1/estimate", nil))
			codes <- rec.Code
			headers <- rec.Header().Get("Retry-After")
		}()
		if i == 0 {
			<-started // the first request holds the only slot
		}
	}
	// Give the remaining two time to queue/shed, then release the first.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	close(codes)
	close(headers)
	var ok200, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok200 < 1 || shed < 1 {
		t.Fatalf("ok=%d shed=%d, want at least one of each", ok200, shed)
	}
	sawRetry := false
	for hdr := range headers {
		if hdr == "3" {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no shed response carried Retry-After: 3")
	}
}

// TestDeadlineMiddleware: the budget lands on the request context.
func TestDeadlineMiddleware(t *testing.T) {
	var sawDeadline bool
	h := Deadline(time.Second)(func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !sawDeadline {
		t.Fatal("budget did not reach the request context")
	}

	sawDeadline = false
	h = Deadline(0)(func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if sawDeadline {
		t.Fatal("zero budget attached a deadline")
	}
}

// TestRecoverMiddleware: a panic becomes a 500 envelope plus a counter,
// and a panic after headers were sent does not double-write.
func TestRecoverMiddleware(t *testing.T) {
	panics := &obs.Counter{}
	logged := 0
	logf := func(string, ...any) { logged++ }

	h := Recover(panics, logf, nil)(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if panics.Value() != 1 || logged != 1 {
		t.Fatalf("panics=%d logged=%d, want 1/1", panics.Value(), logged)
	}

	// Headers already written: the recovery must not overwrite the status.
	h = Recover(panics, nil, nil)(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late boom")
	})
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("late panic rewrote status to %d", rec.Code)
	}
	if panics.Value() != 2 {
		t.Fatalf("panics = %d, want 2", panics.Value())
	}

	// ErrAbortHandler passes through untouched.
	h = Recover(panics, nil, nil)(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Fatal("ErrAbortHandler was swallowed")
			}
		}()
		h(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	if panics.Value() != 2 {
		t.Fatalf("ErrAbortHandler counted as a panic: %d", panics.Value())
	}
}

// TestLimiterInstrument: registry counters observe the same events.
func TestLimiterInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(LimiterOptions{Limit: 1, Queue: 1, QueueWait: time.Millisecond})
	l.Instrument(reg, "resilience")
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("want shed, got %v", err)
	}
	l.Release()
	s := reg.Snapshot()
	if s.Counters["resilience.admitted"] != 1 {
		t.Fatalf("admitted counter = %d", s.Counters["resilience.admitted"])
	}
	if s.Counters["resilience.shed"] != 1 {
		t.Fatalf("shed counter = %d", s.Counters["resilience.shed"])
	}
}

// TestDefaultErrorWriterShape pins the fallback envelope to the serve
// package's JSON shape.
func TestDefaultErrorWriterShape(t *testing.T) {
	rec := httptest.NewRecorder()
	defaultErrorWriter(rec, 429, "shed", "busy")
	want := fmt.Sprintf("{\"error\":%q,\"code\":%q}\n", "busy", "shed")
	if rec.Body.String() != want {
		t.Fatalf("envelope = %q, want %q", rec.Body.String(), want)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
}
