package resilience

import (
	"sync"

	"treelattice/internal/obs"
)

// QuotaSet bounds concurrent in-flight work per key (per tenant, in the
// fleet's case), on top of the global Limiter: admission control decides
// whether the server has capacity at all, the quota decides whether this
// tenant may use it. Quota rejections shed immediately — there is no
// per-tenant queue, so one tenant's burst cannot build up latency for
// the others. Safe for concurrent use; keys are created on first use.
type QuotaSet struct {
	limit int

	mu       sync.Mutex
	inFlight map[string]int

	shed *obs.Counter
}

// NewQuotaSet builds a quota of limit concurrent requests per key. A
// non-positive limit disables quotas: Acquire always admits.
func NewQuotaSet(limit int) *QuotaSet {
	return &QuotaSet{limit: limit, inFlight: make(map[string]int), shed: &obs.Counter{}}
}

// Instrument registers the quota-shed counter in reg as <prefix>.shed.
// Call before the set sees traffic.
func (q *QuotaSet) Instrument(reg *obs.Registry, prefix string) {
	q.shed = reg.Counter(prefix + ".shed")
}

// Acquire admits one request for key, or reports false when key is at
// its quota (pair a true return with Release).
func (q *QuotaSet) Acquire(key string) bool {
	if q == nil || q.limit <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inFlight[key] >= q.limit {
		q.shed.Inc()
		return false
	}
	q.inFlight[key]++
	return true
}

// Release returns key's slot. Must be called exactly once per successful
// Acquire.
func (q *QuotaSet) Release(key string) {
	if q == nil || q.limit <= 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := q.inFlight[key]; n <= 1 {
		delete(q.inFlight, key)
	} else {
		q.inFlight[key] = n - 1
	}
}

// Shed reports how many requests quotas have rejected.
func (q *QuotaSet) Shed() uint64 {
	if q == nil {
		return 0
	}
	return q.shed.Value()
}

// InFlight reports key's current concurrency.
func (q *QuotaSet) InFlight(key string) int {
	if q == nil || q.limit <= 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inFlight[key]
}
