package resilience

import (
	"testing"
	"time"
)

// TestBackoffGrowsAndCaps: without jitter the schedule is exactly
// base·factorⁿ capped at Max.
func TestBackoffGrowsAndCaps(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("attempt %d: %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if b.Attempts() != len(want) {
		t.Fatalf("attempts = %d", b.Attempts())
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after reset: %v", got)
	}
}

// TestBackoffJitterBounds: jittered delays stay within [d, d·(1+J))
// and the seeded generator replays identically.
func TestBackoffJitterBounds(t *testing.T) {
	a := &Backoff{Base: 100 * time.Millisecond, Max: time.Second, Seed: 42}
	c := &Backoff{Base: 100 * time.Millisecond, Max: time.Second, Seed: 42}
	base := 100 * time.Millisecond
	for i := 0; i < 5; i++ {
		da, dc := a.Next(), c.Next()
		if da != dc {
			t.Fatalf("attempt %d: seeded runs diverge: %v vs %v", i, da, dc)
		}
		lo := base
		hi := base + base/2 // default 0.5 jitter fraction
		if da < lo || da > hi {
			t.Fatalf("attempt %d: %v outside [%v, %v]", i, da, lo, hi)
		}
		if base < time.Second {
			base *= 2
		}
		if base > time.Second {
			base = time.Second
		}
	}
}
