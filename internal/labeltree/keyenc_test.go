package labeltree

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomPattern builds a random pattern over the alphabet (local copy of
// treetest.RandomPattern; treetest imports labeltree).
func randomPattern(rng *rand.Rand, size int, alphabet []LabelID) Pattern {
	labels := make([]LabelID, size)
	parent := make([]int32, size)
	parent[0] = -1
	for i := 0; i < size; i++ {
		labels[i] = alphabet[rng.Intn(len(alphabet))]
		if i > 0 {
			parent[i] = int32(rng.Intn(i))
		}
	}
	return MustPattern(labels, parent)
}

// permutePattern renumbers p by a random parent-before-child permutation:
// the result is isomorphic to p with sibling order (and numbering)
// shuffled.
func permutePattern(rng *rand.Rand, p Pattern) Pattern {
	n := p.Size()
	// Random topological order: repeatedly pick any node whose parent is
	// already placed.
	placed := make([]bool, n)
	order := make([]int32, 0, n)
	for len(order) < n {
		candidates := make([]int32, 0, n)
		for i := int32(0); int(i) < n; i++ {
			if placed[i] {
				continue
			}
			if p.Parent(i) < 0 || placed[p.Parent(i)] {
				candidates = append(candidates, i)
			}
		}
		pick := candidates[rng.Intn(len(candidates))]
		placed[pick] = true
		order = append(order, pick)
	}
	newIdx := make([]int32, n)
	for ni, old := range order {
		newIdx[old] = int32(ni)
	}
	labels := make([]LabelID, n)
	parent := make([]int32, n)
	for ni, old := range order {
		labels[ni] = p.Label(old)
		if pp := p.Parent(old); pp < 0 {
			parent[ni] = -1
		} else {
			parent[ni] = newIdx[pp]
		}
	}
	return MustPattern(labels, parent)
}

func bigAlphabet(n int) []LabelID {
	d := NewDict()
	out := make([]LabelID, n)
	for i := range out {
		out[i] = d.Intern(fmt.Sprintf("l%d", i))
	}
	return out
}

// TestKeyMatchesSlowReference is the differential property test: the byte
// encoder must induce exactly the same equivalence classes as the original
// string encoder — equal keys for isomorphic patterns (random sibling
// permutations), distinct keys for non-isomorphic ones. The alphabet is
// larger than 10 labels so multi-byte varints and multi-digit reference
// labels are both exercised.
func TestKeyMatchesSlowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	alphabet := bigAlphabet(140) // forces two-byte varints for high labels
	type seen struct {
		slow string
		pat  Pattern
	}
	var pats []seen
	for trial := 0; trial < 400; trial++ {
		p := randomPattern(rng, 1+rng.Intn(10), alphabet)
		kp := p.Key()
		sp := slowKey(p)
		// Isomorphic permutations agree under both encoders.
		for i := 0; i < 3; i++ {
			q := permutePattern(rng, p)
			if q.Key() != kp {
				t.Fatalf("trial %d: permutation changed byte key", trial)
			}
			if slowKey(q) != sp {
				t.Fatalf("trial %d: permutation changed reference key", trial)
			}
		}
		// Cross-pattern: byte keys collide exactly when reference keys do.
		for _, prev := range pats {
			if (prev.pat.Key() == kp) != (prev.slow == sp) {
				t.Fatalf("encoders disagree:\n%v\n%v", prev.pat, p)
			}
		}
		pats = append(pats, seen{sp, p})
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := bigAlphabet(20)
	var buf []byte
	for trial := 0; trial < 200; trial++ {
		p := randomPattern(rng, 1+rng.Intn(9), alphabet)
		buf = p.AppendKey(buf[:0])
		if Key(buf) != p.Key() {
			t.Fatalf("AppendKey differs from Key for %v", p)
		}
	}
}

func TestKeyBuilderChildKey(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alphabet := bigAlphabet(150)
	kb := NewKeyBuilder()
	for trial := 0; trial < 300; trial++ {
		p := randomPattern(rng, 1+rng.Intn(8), alphabet)
		kb.Reset(p)
		// Every (attachment point, label) extension must match the full
		// re-encode of the extended pattern.
		for i := int32(0); int(i) < p.Size(); i++ {
			l := alphabet[rng.Intn(len(alphabet))]
			want := p.AddChild(i, l).Key()
			if got := kb.ChildKey(i, l); got != want {
				t.Fatalf("trial %d: ChildKey(%d, %d) = %x, want %x", trial, i, l, got, want)
			}
		}
	}
}

func TestKeyBuilderReuseAcrossPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	alphabet := bigAlphabet(12)
	kb := NewKeyBuilder()
	for trial := 0; trial < 50; trial++ {
		p := randomPattern(rng, 2+rng.Intn(6), alphabet)
		kb.Reset(p)
		at := int32(rng.Intn(p.Size()))
		l := alphabet[rng.Intn(len(alphabet))]
		if got, want := kb.ChildKey(at, l), p.AddChild(at, l).Key(); got != want {
			t.Fatalf("reused builder diverged on trial %d", trial)
		}
	}
}

func TestKeyBuilderPanicsBeforeReset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ChildKey before Reset did not panic")
		}
	}()
	NewKeyBuilder().ChildKey(0, 0)
}

// TestAppendKeyZeroAlloc gates the allocation contract: keying through a
// caller-owned buffer must be amortized zero-alloc (pooled scratch).
func TestAppendKeyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under -race; allocation counts unreliable")
	}
	p := benchPattern(8)
	buf := make([]byte, 0, 256)
	buf = p.AppendKey(buf[:0]) // warm the pool and size the buffer
	if avg := testing.AllocsPerRun(200, func() {
		buf = p.AppendKey(buf[:0])
	}); avg != 0 {
		t.Fatalf("AppendKey allocates %v times per run, want 0", avg)
	}
}

func TestAppendChildKeyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under -race; allocation counts unreliable")
	}
	p := benchPattern(7)
	kb := NewKeyBuilder()
	kb.Reset(p)
	buf := make([]byte, 0, 256)
	buf = kb.AppendChildKey(buf[:0], 3, 5)
	if avg := testing.AllocsPerRun(200, func() {
		buf = kb.AppendChildKey(buf[:0], 3, 5)
	}); avg != 0 {
		t.Fatalf("AppendChildKey allocates %v times per run, want 0", avg)
	}
}

func TestEqualZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under -race; allocation counts unreliable")
	}
	p := benchPattern(8)
	q := p.Canonicalize()
	if !p.Equal(q) {
		t.Fatal("canonical copy not Equal")
	}
	p.Equal(q) // warm the pool
	if avg := testing.AllocsPerRun(200, func() {
		p.Equal(q)
	}); avg != 0 {
		t.Fatalf("Equal allocates %v times per run, want 0", avg)
	}
}

// benchPattern builds a branchy size-n pattern (node i under node i/2)
// over a 12-label alphabet.
func benchPattern(size int) Pattern {
	alphabet := bigAlphabet(12)
	labels := make([]LabelID, size)
	parent := make([]int32, size)
	parent[0] = -1
	for i := 0; i < size; i++ {
		labels[i] = alphabet[i%len(alphabet)]
		if i > 0 {
			parent[i] = int32(i / 2)
		}
	}
	return MustPattern(labels, parent)
}

func BenchmarkKey(b *testing.B) {
	for _, size := range []int{4, 8, 16} {
		p := benchPattern(size)
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p.Key()
			}
		})
	}
}

// BenchmarkKeyReference is the pre-optimization string encoder kept as the
// before/after baseline for BENCH_core.json.
func BenchmarkKeyReference(b *testing.B) {
	for _, size := range []int{4, 8, 16} {
		p := benchPattern(size)
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = slowKey(p)
			}
		})
	}
}

func BenchmarkAppendKey(b *testing.B) {
	for _, size := range []int{4, 8} {
		p := benchPattern(size)
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]byte, 0, 256)
			for i := 0; i < b.N; i++ {
				buf = p.AppendKey(buf[:0])
			}
		})
	}
}

func BenchmarkKeyBuilderChildKey(b *testing.B) {
	p := benchPattern(7)
	kb := NewKeyBuilder()
	kb.Reset(p)
	b.Run("size8", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 256)
		for i := 0; i < b.N; i++ {
			buf = kb.AppendChildKey(buf[:0], int32(i%7), LabelID(i%12))
		}
	})
}

func BenchmarkCanonicalize(b *testing.B) {
	p := benchPattern(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Canonicalize()
	}
}
