package labeltree

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// slowKey is the original recursive string encoder, kept as the slow
// reference implementation the byte encoder (keyenc.go) is differentially
// tested against: a node encodes as "label." + "(" + sorted child
// encodings + ")", so sibling order is irrelevant. It defines the same
// isomorphism classes as Pattern.Key but not the same ordering.
func slowKey(p Pattern) string {
	children := make([][]int32, p.Size())
	for i := int32(1); int(i) < p.Size(); i++ {
		children[p.Parent(i)] = append(children[p.Parent(i)], i)
	}
	var enc func(i int32) string
	enc = func(i int32) string {
		cs := children[i]
		if len(cs) == 0 {
			return fmt.Sprintf("%d.", p.Label(i))
		}
		parts := make([]string, len(cs))
		for j, c := range cs {
			parts[j] = enc(c)
		}
		sort.Strings(parts)
		return fmt.Sprintf("%d.", p.Label(i)) + "(" + strings.Join(parts, "") + ")"
	}
	return enc(0)
}

func dictABC() (*Dict, LabelID, LabelID, LabelID, LabelID) {
	d := NewDict()
	return d, d.Intern("a"), d.Intern("b"), d.Intern("c"), d.Intern("d")
}

func TestNewPatternValidation(t *testing.T) {
	_, a, b, _, _ := dictABC()
	cases := []struct {
		name    string
		labels  []LabelID
		parent  []int32
		wantErr bool
	}{
		{"ok", []LabelID{a, b}, []int32{-1, 0}, false},
		{"empty", nil, nil, true},
		{"mismatch", []LabelID{a}, []int32{-1, 0}, true},
		{"bad root", []LabelID{a}, []int32{0}, true},
		{"forward parent", []LabelID{a, b}, []int32{-1, 1}, true},
		{"negative parent", []LabelID{a, b}, []int32{-1, -2}, true},
	}
	for _, tc := range cases {
		_, err := NewPattern(tc.labels, tc.parent)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestPatternAccessors(t *testing.T) {
	_, a, b, c, d := dictABC()
	// a(b, c(d))
	p := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 0, 2})
	if p.Size() != 4 || p.RootLabel() != a {
		t.Fatalf("size/root = %d/%d", p.Size(), p.RootLabel())
	}
	if got := p.Children(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Children(0) = %v", got)
	}
	if got := p.ChildCounts(); got[0] != 2 || got[2] != 1 || got[1] != 0 {
		t.Fatalf("ChildCounts = %v", got)
	}
	if p.Degree(0) != 2 || p.Degree(2) != 2 || p.Degree(3) != 1 {
		t.Fatalf("degrees = %d %d %d", p.Degree(0), p.Degree(2), p.Degree(3))
	}
}

func TestLeavesIncludesDegreeOneRoot(t *testing.T) {
	_, a, b, c, _ := dictABC()
	// path a/b/c: leaves are the root a and the leaf c.
	p := PathPattern(a, b, c)
	leaves := p.Leaves()
	if len(leaves) != 2 || leaves[0] != 0 || leaves[1] != 2 {
		t.Fatalf("Leaves = %v, want [0 2]", leaves)
	}
	// a(b,c): root has degree 2, not a leaf.
	q := MustPattern([]LabelID{a, b, c}, []int32{-1, 0, 0})
	leaves = q.Leaves()
	if len(leaves) != 2 || leaves[0] != 1 || leaves[1] != 2 {
		t.Fatalf("Leaves = %v, want [1 2]", leaves)
	}
}

func TestSingleNodeHasNoLeaves(t *testing.T) {
	_, a, _, _, _ := dictABC()
	if got := SingleNode(a).Leaves(); len(got) != 0 {
		t.Fatalf("Leaves of single node = %v", got)
	}
}

func TestIsPathAndPathLabels(t *testing.T) {
	_, a, b, c, d := dictABC()
	p := PathPattern(a, b, c)
	if !p.IsPath() {
		t.Fatal("path not recognized")
	}
	got := p.PathLabels()
	if len(got) != 3 || got[0] != a || got[2] != c {
		t.Fatalf("PathLabels = %v", got)
	}
	q := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 0, 2})
	if q.IsPath() {
		t.Fatal("branching pattern reported as path")
	}
}

func TestRemoveLeaf(t *testing.T) {
	_, a, b, c, d := dictABC()
	// a(b, c(d))
	p := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 0, 2})
	q := p.RemoveLeaf(3) // drop d -> a(b,c)
	if q.Size() != 3 || q.Key() != MustPattern([]LabelID{a, b, c}, []int32{-1, 0, 0}).Key() {
		t.Fatalf("RemoveLeaf(3) = %s-node pattern key %q", q.String(NewDict()), q.Key())
	}
	// removing the leaf b -> a(c(d))
	q2 := p.RemoveLeaf(1)
	want := MustPattern([]LabelID{a, c, d}, []int32{-1, 0, 1})
	if !q2.Equal(want) {
		t.Fatalf("RemoveLeaf(1) mismatch")
	}
}

func TestRemoveLeafRoot(t *testing.T) {
	_, a, b, c, _ := dictABC()
	p := PathPattern(a, b, c)
	q := p.RemoveLeaf(0) // drop root -> b/c
	if !q.Equal(PathPattern(b, c)) {
		t.Fatal("removing degree-1 root failed to promote child")
	}
}

func TestRemoveLeafPanics(t *testing.T) {
	_, a, b, c, _ := dictABC()
	p := MustPattern([]LabelID{a, b, c}, []int32{-1, 0, 0})
	for _, idx := range []int32{0} { // branching root
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RemoveLeaf(%d) did not panic", idx)
				}
			}()
			p.RemoveLeaf(idx)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RemoveLeaf on internal node did not panic")
			}
		}()
		PathPattern(a, b, c).RemoveLeaf(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RemoveLeaf on single node did not panic")
			}
		}()
		SingleNode(a).RemoveLeaf(0)
	}()
}

func TestSubpattern(t *testing.T) {
	_, a, b, c, d := dictABC()
	// a(b, c(d))
	p := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 0, 2})
	sub := p.Subpattern([]int32{2, 3}) // c(d), rerooted at c
	if !sub.Equal(PathPattern(c, d)) {
		t.Fatal("Subpattern c(d) mismatch")
	}
	all := p.Subpattern([]int32{3, 1, 0, 2})
	if all.Key() != p.Key() {
		t.Fatal("Subpattern of all nodes changed identity")
	}
}

func TestSubpatternDisconnectedPanics(t *testing.T) {
	_, a, b, c, d := dictABC()
	p := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 0, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("disconnected Subpattern did not panic")
		}
	}()
	p.Subpattern([]int32{1, 3}) // b and d are not connected
}

func TestAddChild(t *testing.T) {
	_, a, b, c, _ := dictABC()
	p := SingleNode(a).AddChild(0, b).AddChild(0, c)
	if !p.Equal(MustPattern([]LabelID{a, b, c}, []int32{-1, 0, 0})) {
		t.Fatal("AddChild chain mismatch")
	}
}

func TestKeyUnorderedInvariance(t *testing.T) {
	_, a, b, c, d := dictABC()
	p1 := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 0, 2}) // a(b, c(d))
	p2 := MustPattern([]LabelID{a, c, d, b}, []int32{-1, 0, 1, 0}) // a(c(d), b)
	if p1.Key() != p2.Key() {
		t.Fatalf("sibling order changed key: %q vs %q", p1.Key(), p2.Key())
	}
	p3 := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 1, 0}) // a(b(c), d)
	if p1.Key() == p3.Key() {
		t.Fatal("different shapes collided")
	}
}

func TestKeyDistinguishesLabels(t *testing.T) {
	_, a, b, _, _ := dictABC()
	if SingleNode(a).Key() == SingleNode(b).Key() {
		t.Fatal("labels collided")
	}
	// Multi-digit labels must not be ambiguous with concatenations:
	// pattern with children {1, 2} vs child {12} alone.
	d := NewDict()
	var ids []LabelID
	for i := 0; i < 13; i++ {
		ids = append(ids, d.Intern(string(rune('A'+i))))
	}
	p := MustPattern([]LabelID{ids[0], ids[1], ids[2]}, []int32{-1, 0, 0})
	q := MustPattern([]LabelID{ids[0], ids[12]}, []int32{-1, 0})
	if p.Key() == q.Key() {
		t.Fatal("encoding ambiguity between {1,2} and {12}")
	}
}

func TestPreorder(t *testing.T) {
	_, a, b, c, d := dictABC()
	// a(b, c(d)); preorder by numbering: a b c d.
	p := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 0, 2})
	got := p.Preorder()
	want := []int32{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Preorder = %v, want %v", got, want)
		}
	}
	// Non-contiguous numbering: a with children c(d) then b, stored as
	// labels [a c b d] parents [-1 0 0 1]: preorder is a, c, d, b.
	p2 := MustPattern([]LabelID{a, c, b, d}, []int32{-1, 0, 0, 1})
	got = p2.Preorder()
	want = []int32{0, 1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Preorder = %v, want %v", got, want)
		}
	}
}

func TestPreorderPrefixIsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDict()
	var alphabet []LabelID
	for i := 0; i < 5; i++ {
		alphabet = append(alphabet, d.Intern(string(rune('a'+i))))
	}
	for trial := 0; trial < 200; trial++ {
		size := 2 + rng.Intn(9)
		labels := make([]LabelID, size)
		parent := make([]int32, size)
		parent[0] = -1
		for i := 0; i < size; i++ {
			labels[i] = alphabet[rng.Intn(len(alphabet))]
			if i > 0 {
				parent[i] = int32(rng.Intn(i))
			}
		}
		p := MustPattern(labels, parent)
		order := p.Preorder()
		for k := 1; k <= size; k++ {
			// Every preorder prefix must form a connected subtree:
			// Subpattern panics otherwise.
			_ = p.Subpattern(order[:k])
		}
	}
}

func TestParseAndString(t *testing.T) {
	d := NewDict()
	cases := []string{
		"a",
		"a(b)",
		"a(b,c)",
		"a(b,c(d))",
		"laptop(brand,price)",
	}
	for _, src := range cases {
		p, err := ParsePattern(src, d)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", src, err)
		}
		round, err := ParsePattern(p.String(d), d)
		if err != nil {
			t.Fatalf("reparse of %q: %v", p.String(d), err)
		}
		if round.Key() != p.Key() {
			t.Fatalf("round trip of %q changed identity", src)
		}
	}
}

func TestParseDescendantPrefixAndSpaces(t *testing.T) {
	d := NewDict()
	p := MustParsePattern("//laptop( brand , price )", d)
	q := MustParsePattern("laptop(price,brand)", d)
	if p.Key() != q.Key() {
		t.Fatal("whitespace or // prefix changed identity")
	}
}

func TestParseErrors(t *testing.T) {
	d := NewDict()
	for _, src := range []string{"", "(", "a(", "a(b", "a(b,)", "a)b", "a b"} {
		if _, err := ParsePattern(src, d); err == nil {
			t.Errorf("ParsePattern(%q) succeeded, want error", src)
		}
	}
}

func TestParsePath(t *testing.T) {
	d := NewDict()
	p, err := ParsePath("//a/b/c", d)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.Lookup("a")
	b, _ := d.Lookup("b")
	c, _ := d.Lookup("c")
	if !p.Equal(PathPattern(a, b, c)) {
		t.Fatal("ParsePath mismatch")
	}
	if _, err := ParsePath("a//b", d); err == nil {
		t.Fatal("empty step accepted")
	}
}

func TestRelabelAndClone(t *testing.T) {
	_, a, b, c, _ := dictABC()
	p := PathPattern(a, b)
	q := p.Relabel(1, c)
	if p.Label(1) != b || q.Label(1) != c {
		t.Fatal("Relabel mutated the original or failed")
	}
	cl := p.Clone()
	if !cl.Equal(p) {
		t.Fatal("Clone not equal")
	}
}

func TestStringDeterministicAcrossIsomorphs(t *testing.T) {
	d := NewDict()
	a, b, c := d.Intern("a"), d.Intern("b"), d.Intern("c")
	p1 := MustPattern([]LabelID{a, b, c}, []int32{-1, 0, 0})
	p2 := MustPattern([]LabelID{a, c, b}, []int32{-1, 0, 0})
	if p1.String(d) != p2.String(d) {
		t.Fatalf("String differs across isomorphic patterns: %q vs %q", p1.String(d), p2.String(d))
	}
}

func TestCanonicalize(t *testing.T) {
	_, a, b, c, d := dictABC()
	p1 := MustPattern([]LabelID{a, c, d, b}, []int32{-1, 0, 1, 0}) // a(c(d), b)
	p2 := MustPattern([]LabelID{a, b, c, d}, []int32{-1, 0, 0, 2}) // a(b, c(d))
	c1, c2 := p1.Canonicalize(), p2.Canonicalize()
	if c1.Key() != p1.Key() {
		t.Fatal("Canonicalize changed identity")
	}
	for i := int32(0); int(i) < c1.Size(); i++ {
		if c1.Label(i) != c2.Label(i) || c1.Parent(i) != c2.Parent(i) {
			t.Fatalf("canonical forms differ at node %d", i)
		}
	}
}

func TestCanonicalizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := NewDict()
	var alphabet []LabelID
	for i := 0; i < 3; i++ {
		alphabet = append(alphabet, d.Intern(string(rune('a'+i))))
	}
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(9)
		labels := make([]LabelID, size)
		parent := make([]int32, size)
		parent[0] = -1
		for i := 0; i < size; i++ {
			labels[i] = alphabet[rng.Intn(len(alphabet))]
			if i > 0 {
				parent[i] = int32(rng.Intn(i))
			}
		}
		p := MustPattern(labels, parent)
		cp := p.Canonicalize()
		if cp.Key() != p.Key() {
			t.Fatal("Canonicalize changed identity")
		}
		// Canonical form must be a fixpoint.
		ccp := cp.Canonicalize()
		for i := int32(0); int(i) < cp.Size(); i++ {
			if cp.Label(i) != ccp.Label(i) || cp.Parent(i) != ccp.Parent(i) {
				t.Fatal("Canonicalize not idempotent")
			}
		}
	}
}
