package labeltree_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

// TestQuickKeyInvariantUnderRenumbering checks that canonical keys are
// invariant under isomorphic renumbering of pattern nodes.
func TestQuickKeyInvariantUnderRenumbering(t *testing.T) {
	dict, alphabet := treetest.Alphabet(4)
	_ = dict
	f := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeRaw%10)
		p := treetest.RandomPattern(rng, size, alphabet)
		q := treetest.ShufflePattern(rng, p)
		return p.Key() == q.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAddChildRemoveLeafRoundTrip checks that attaching a child and
// removing it restores the original pattern identity.
func TestQuickAddChildRemoveLeafRoundTrip(t *testing.T) {
	_, alphabet := treetest.Alphabet(4)
	f := func(seed int64, sizeRaw, atRaw, labRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeRaw%8)
		p := treetest.RandomPattern(rng, size, alphabet)
		at := int32(int(atRaw) % size)
		q := p.AddChild(at, alphabet[int(labRaw)%len(alphabet)])
		back := q.RemoveLeaf(int32(size)) // the appended node
		return back.Key() == p.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStringParseRoundTrip checks parse/format stability on random
// patterns.
func TestQuickStringParseRoundTrip(t *testing.T) {
	dict, alphabet := treetest.Alphabet(5)
	f := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeRaw%9)
		p := treetest.RandomPattern(rng, size, alphabet)
		q, err := labeltree.ParsePattern(p.String(dict), dict)
		return err == nil && q.Key() == p.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLeavesRemovable checks that every reported leaf can actually be
// removed and yields a pattern one node smaller.
func TestQuickLeavesRemovable(t *testing.T) {
	_, alphabet := treetest.Alphabet(3)
	f := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2 + int(sizeRaw%9)
		p := treetest.RandomPattern(rng, size, alphabet)
		for _, leaf := range p.Leaves() {
			q := p.RemoveLeaf(leaf)
			if q.Size() != size-1 {
				return false
			}
		}
		return len(p.Leaves()) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPreorderIsPermutation checks Preorder visits each node once.
func TestQuickPreorderIsPermutation(t *testing.T) {
	_, alphabet := treetest.Alphabet(3)
	f := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeRaw%12)
		p := treetest.RandomPattern(rng, size, alphabet)
		seen := make(map[int32]bool)
		for _, n := range p.Preorder() {
			if seen[n] {
				return false
			}
			seen[n] = true
		}
		return len(seen) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
