package labeltree

import (
	"fmt"
	"math"
)

// Tree is a large rooted node-labeled data tree stored in an index arena.
// Node 0 is the root. Trees are immutable once built; construct them with
// a Builder or via xmlparse.
type Tree struct {
	dict     *Dict
	labels   []LabelID
	parent   []int32 // parent[i] < i; parent[0] == -1
	children [][]int32

	byLabel map[LabelID][]int32 // lazily built node index
}

// Builder incrementally constructs a Tree. Nodes must be added parents
// before children (the natural order for both streaming XML parses and
// top-down generators).
type Builder struct {
	dict   *Dict
	labels []LabelID
	parent []int32
}

// NewBuilder returns a Builder that interns labels into dict.
func NewBuilder(dict *Dict) *Builder {
	return &Builder{dict: dict}
}

// AddRoot adds the root node. It must be the first node added.
func (b *Builder) AddRoot(label string) int32 {
	if len(b.labels) != 0 {
		panic("labeltree: AddRoot on non-empty builder")
	}
	b.labels = append(b.labels, b.dict.Intern(label))
	b.parent = append(b.parent, -1)
	return 0
}

// AddChild adds a node labeled label under parent and returns its index.
func (b *Builder) AddChild(parent int32, label string) int32 {
	return b.AddChildID(parent, b.dict.Intern(label))
}

// AddChildID is AddChild for an already-interned label.
func (b *Builder) AddChildID(parent int32, label LabelID) int32 {
	if parent < 0 || int(parent) >= len(b.labels) {
		panic(fmt.Sprintf("labeltree: AddChild parent %d out of range", parent))
	}
	id := int32(len(b.labels))
	b.labels = append(b.labels, label)
	b.parent = append(b.parent, parent)
	return id
}

// Len reports the number of nodes added so far.
func (b *Builder) Len() int { return len(b.labels) }

// Build finalizes the tree. The Builder must not be reused afterwards.
func (b *Builder) Build() *Tree {
	t := &Tree{dict: b.dict, labels: b.labels, parent: b.parent}
	t.children = make([][]int32, len(b.labels))
	counts := make([]int32, len(b.labels))
	for i := 1; i < len(b.parent); i++ {
		counts[b.parent[i]]++
	}
	arena := make([]int32, len(b.labels)-1+1)
	off := 0
	for i := range t.children {
		t.children[i] = arena[off : off : off+int(counts[i])]
		off += int(counts[i])
	}
	for i := 1; i < len(b.parent); i++ {
		p := b.parent[i]
		t.children[p] = append(t.children[p], int32(i))
	}
	return t
}

// Dict returns the label dictionary the tree was built against.
func (t *Tree) Dict() *Dict { return t.dict }

// Size reports the number of nodes.
func (t *Tree) Size() int { return len(t.labels) }

// Label returns the label ID of node i.
func (t *Tree) Label(i int32) LabelID { return t.labels[i] }

// LabelName returns the label string of node i.
func (t *Tree) LabelName(i int32) string { return t.dict.Name(t.labels[i]) }

// Parent returns the parent index of node i, or -1 for the root.
func (t *Tree) Parent(i int32) int32 { return t.parent[i] }

// Children returns the child indices of node i. The slice is shared with
// the tree and must not be modified.
func (t *Tree) Children(i int32) []int32 { return t.children[i] }

// NodesByLabel returns all node indices carrying label, building the label
// index on first use. The slice is shared and must not be modified.
func (t *Tree) NodesByLabel(label LabelID) []int32 {
	if t.byLabel == nil {
		t.byLabel = make(map[LabelID][]int32)
		for i, l := range t.labels {
			t.byLabel[l] = append(t.byLabel[l], int32(i))
		}
	}
	return t.byLabel[label]
}

// LabelCount reports how many nodes carry label.
func (t *Tree) LabelCount(label LabelID) int { return len(t.NodesByLabel(label)) }

// DistinctLabels returns the set of labels that occur in the tree.
func (t *Tree) DistinctLabels() []LabelID {
	seen := make(map[LabelID]bool)
	var out []LabelID
	for _, l := range t.labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// ChildLabelPairs returns, for each parent label, the set of labels that
// occur as its children anywhere in the tree. Candidate generation during
// mining uses this to prune extensions that cannot occur.
func (t *Tree) ChildLabelPairs() map[LabelID][]LabelID {
	sets := make(map[LabelID]map[LabelID]bool)
	for i := 1; i < len(t.labels); i++ {
		p := t.labels[t.parent[i]]
		if sets[p] == nil {
			sets[p] = make(map[LabelID]bool)
		}
		sets[p][t.labels[i]] = true
	}
	out := make(map[LabelID][]LabelID, len(sets))
	for p, s := range sets {
		for l := range s {
			out[p] = append(out[p], l)
		}
	}
	return out
}

// Stats summarizes structural characteristics of a tree (Table 1 of the
// paper reports elements and file size; depth and fanout aid validation).
type Stats struct {
	Nodes          int
	Labels         int
	MaxDepth       int
	MaxFanout      int
	MeanFanout     float64 // over internal nodes
	FanoutVariance float64 // over internal nodes
}

// Stats computes structural statistics in one pass.
func (t *Tree) Stats() Stats {
	s := Stats{Nodes: t.Size(), Labels: len(t.DistinctLabels())}
	depth := make([]int32, t.Size())
	var sum, sumsq float64
	internal := 0
	for i := int32(0); int(i) < t.Size(); i++ {
		if p := t.parent[i]; p >= 0 {
			depth[i] = depth[p] + 1
			if int(depth[i]) > s.MaxDepth {
				s.MaxDepth = int(depth[i])
			}
		}
		if n := len(t.children[i]); n > 0 {
			internal++
			sum += float64(n)
			sumsq += float64(n) * float64(n)
			if n > s.MaxFanout {
				s.MaxFanout = n
			}
		}
	}
	if internal > 0 {
		s.MeanFanout = sum / float64(internal)
		s.FanoutVariance = math.Max(0, sumsq/float64(internal)-s.MeanFanout*s.MeanFanout)
	}
	return s
}
