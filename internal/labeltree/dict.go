// Package labeltree provides the rooted node-labeled tree model that the
// whole system is built on: large data trees (XML documents), small twig
// patterns (queries and lattice entries), canonical forms for unordered
// trees, and the textual twig syntax "a(b,c(d))".
//
// An XML document is modeled as a rooted tree whose nodes carry element
// labels (Section 2.1 of the paper); values are not modeled, following
// Polyzotis and Garofalakis. A twig query is a small node-labeled tree,
// and a match is a 1-1 mapping into the data tree that preserves labels
// and parent-child edges (Definition 1).
package labeltree

import (
	"fmt"
	"sort"
	"sync"
)

// Dict interns label strings as dense int32 identifiers. All trees and
// patterns that are compared against each other must share a Dict.
//
// A Dict is safe for concurrent use: parsing goroutines may intern while
// estimators resolve names, which is what the parallel build pipeline and
// the HTTP serving path do.
//
// The zero value is not ready to use; call NewDict.
type Dict struct {
	mu     sync.RWMutex
	byName map[string]LabelID
	names  []string
}

// LabelID identifies an interned label. IDs are dense, starting at 0.
type LabelID = int32

// NewDict returns an empty label dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]LabelID)}
}

// Intern returns the ID for name, assigning a fresh one if needed.
func (d *Dict) Intern(name string) LabelID {
	d.mu.RLock()
	id, ok := d.byName[name]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byName[name]; ok {
		return id
	}
	id = LabelID(len(d.names))
	d.byName[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the ID for name and whether it is known.
func (d *Dict) Lookup(name string) (LabelID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the label string for id. It panics on unknown IDs, which
// indicate trees built against a different dictionary.
func (d *Dict) Name(id LabelID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(d.names) {
		panic(fmt.Sprintf("labeltree: unknown label id %d", id))
	}
	return d.names[id]
}

// Len reports the number of interned labels.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// Names returns all interned labels in ID order. The returned slice is a
// copy and may be modified by the caller.
func (d *Dict) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// SortedNames returns all interned labels in lexicographic order.
func (d *Dict) SortedNames() []string {
	out := d.Names()
	sort.Strings(out)
	return out
}
