//go:build race

package labeltree

// raceEnabled reports whether the race detector is compiled in. Under
// -race, sync.Pool deliberately bypasses its cache on a fraction of Gets
// to widen interleaving coverage, so AllocsPerRun gates on pooled scratch
// are skipped.
const raceEnabled = true
