package labeltree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Canonical key encoding
//
// A pattern's Key is a compact byte encoding of its canonical form as an
// unordered rooted labeled tree:
//
//	enc(node) = uvarint(label) { 0x01 enc(child) }* 0x00
//
// with the children emitted in ascending byte order of their encodings.
// The marker bytes make the format prefix-decodable — after the label
// varint the next byte is unambiguously either a child marker (0x01) or
// the end marker (0x00) — so decoding is deterministic and the encoding
// is injective on isomorphism classes: two patterns have equal keys iff
// they are isomorphic as unordered trees.
//
// The encoding is process-internal and derived: keys are never
// serialized (summaries store patterns, not keys), so the format is free
// to change between versions.
//
// The encoder is allocation-light by design: it runs an iterative
// post-order over a pooled scratch state (per-node encodings are spans
// into one reusable buffer, children are sorted by comparing spans in
// place), so AppendKey into a caller-owned buffer is amortized
// zero-alloc and Key() costs exactly the one string conversion its
// comparable map-key contract requires.

const (
	keyChildMark = 0x01 // a child encoding follows
	keyEndMark   = 0x00 // end of this node's children
)

// keyScratch is the reusable state of one encoder run. The per-node child
// lists are a CSR layout (childIdx[childPos[i]:childPos[i+1]]); encodings
// are spans enc[start[i]:end[i]].
type keyScratch struct {
	enc        []byte
	start, end []int32
	childPos   []int32
	childIdx   []int32
}

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

// grow resizes an int32 scratch slice to n without retaining old contents.
func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// encode computes the canonical encoding of every node of p and returns
// the root's span. The span aliases ks.enc and is valid until the next
// encode on the same scratch. After encode, each node's child list in
// childIdx is in canonical order (ascending child-encoding bytes, ties in
// ascending node order), which Canonicalize reuses directly.
func (ks *keyScratch) encode(p Pattern) []byte {
	n := len(p.labels)
	ks.start = grow(ks.start, n)
	ks.end = grow(ks.end, n)
	ks.childPos = grow(ks.childPos, n+1)
	ks.childIdx = grow(ks.childIdx, n)
	ks.enc = ks.enc[:0]

	// CSR child lists: counts, prefix-sum, fill (ascending j per node).
	pos := ks.childPos
	for i := 0; i <= n; i++ {
		pos[i] = 0
	}
	for i := 1; i < n; i++ {
		pos[p.parent[i]+1]++
	}
	for i := 0; i < n; i++ {
		pos[i+1] += pos[i]
	}
	fill := ks.childIdx[:n] // reuse as cursor-free fill via second pass
	next := ks.end          // borrow end as fill cursors before encodings are written
	copy(next, pos[:n])
	for i := 1; i < n; i++ {
		par := p.parent[i]
		fill[next[par]] = int32(i)
		next[par]++
	}

	// Post-order: parent-before-child numbering means descending index
	// visits every child before its parent.
	for i := n - 1; i >= 0; i-- {
		ks.start[i] = int32(len(ks.enc))
		ks.enc = binary.AppendUvarint(ks.enc, uint64(p.labels[i]))
		kids := ks.childIdx[pos[i]:pos[i+1]]
		// Insertion sort by encoding bytes; stable, so equal encodings
		// keep ascending node order (Canonicalize's tie-break).
		for a := 1; a < len(kids); a++ {
			c := kids[a]
			cb := ks.enc[ks.start[c]:ks.end[c]]
			b := a
			for b > 0 {
				prev := kids[b-1]
				if bytes.Compare(ks.enc[ks.start[prev]:ks.end[prev]], cb) <= 0 {
					break
				}
				kids[b] = prev
				b--
			}
			kids[b] = c
		}
		for _, c := range kids {
			ks.enc = append(ks.enc, keyChildMark)
			ks.enc = append(ks.enc, ks.enc[ks.start[c]:ks.end[c]]...)
		}
		ks.enc = append(ks.enc, keyEndMark)
		ks.end[i] = int32(len(ks.enc))
	}
	return ks.enc[ks.start[0]:ks.end[0]]
}

// encLen returns the length of the single node encoding at the start of b.
func encLen(b []byte) int {
	_, i := binary.Uvarint(b)
	for b[i] == keyChildMark {
		i++
		i += encLen(b[i:])
	}
	return i + 1 // the end marker
}

// AppendKey appends the canonical key bytes of p to buf and returns the
// extended buffer. Reusing buf across calls makes steady-state keying
// allocation-free; Key() is AppendKey plus the string conversion a
// comparable map key requires.
func (p Pattern) AppendKey(buf []byte) []byte {
	ks := keyScratchPool.Get().(*keyScratch)
	buf = append(buf, ks.encode(p)...)
	keyScratchPool.Put(ks)
	return buf
}

// DecodeKey parses a canonical key back into a Pattern. It is strict: it
// accepts exactly the byte strings the encoder produces, so
//
//	DecodeKey(k) == p, nil  ⇒  p.Key() == k
//
// Anything else — truncated input, trailing bytes, non-minimal label
// varints, labels outside the LabelID range, children out of canonical
// order, unbounded nesting — is an error, never a panic. The strictness is
// what makes the round-trip property testable (and fuzzable): every
// accepted key is a fixed point of decode∘encode.
func DecodeKey(k Key) (Pattern, error) {
	d := keyDecoder{b: []byte(k)}
	if err := d.node(-1, 1); err != nil {
		return Pattern{}, err
	}
	if d.pos != len(d.b) {
		return Pattern{}, fmt.Errorf("labeltree: %d trailing bytes after key", len(d.b)-d.pos)
	}
	return Pattern{labels: d.labels, parent: d.parents}, nil
}

type keyDecoder struct {
	b       []byte
	pos     int
	labels  []LabelID
	parents []int32
}

// node decodes one enc(node) production at d.pos, recording it under
// parent. Nodes are appended parent-before-child, preserving the Pattern
// numbering invariant.
func (d *keyDecoder) node(parent int32, depth int) error {
	if depth > maxQueryDepth {
		return fmt.Errorf("labeltree: key exceeds depth %d", maxQueryDepth)
	}
	if len(d.labels) >= maxQueryNodes {
		return fmt.Errorf("labeltree: key exceeds %d nodes", maxQueryNodes)
	}
	label, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return fmt.Errorf("labeltree: bad label varint at key offset %d", d.pos)
	}
	// Reject non-minimal varints (a zero final group, e.g. 0x80 0x00 for
	// 0): the encoder never emits them, and accepting them would break the
	// decode∘encode fixed point.
	if n > 1 && d.b[d.pos+n-1] == 0 {
		return fmt.Errorf("labeltree: non-minimal label varint at key offset %d", d.pos)
	}
	if label > math.MaxInt32 {
		return fmt.Errorf("labeltree: label %d out of range at key offset %d", label, d.pos)
	}
	d.pos += n
	idx := int32(len(d.labels))
	d.labels = append(d.labels, LabelID(label))
	d.parents = append(d.parents, parent)
	var prev []byte
	for {
		if d.pos >= len(d.b) {
			return fmt.Errorf("labeltree: truncated key (no end marker for node %d)", idx)
		}
		switch d.b[d.pos] {
		case keyEndMark:
			d.pos++
			return nil
		case keyChildMark:
			d.pos++
			cstart := d.pos
			if err := d.node(idx, depth+1); err != nil {
				return err
			}
			span := d.b[cstart:d.pos]
			// Canonical order is non-decreasing child encodings (equal
			// spans are legal: isomorphic duplicate children).
			if prev != nil && bytes.Compare(prev, span) > 0 {
				return fmt.Errorf("labeltree: key children out of canonical order at offset %d", cstart)
			}
			prev = span
		default:
			return fmt.Errorf("labeltree: invalid key marker 0x%02x at offset %d", d.b[d.pos], d.pos)
		}
	}
}

// KeyBuilder derives the canonical keys of a pattern's one-node
// extensions incrementally. Reset caches the per-node encodings of a base
// pattern once; ChildKey(at, l) then computes AddChild(at, l).Key()
// by splicing the new leaf's encoding into the cached encodings along the
// at→root path only, instead of re-encoding (and re-sorting) the whole
// extended pattern. The level-wise miner generates every candidate this
// way, so the per-candidate keying cost is proportional to the extension
// path, not the pattern.
//
// A KeyBuilder owns its scratch state and is not safe for concurrent use.
type KeyBuilder struct {
	p         Pattern
	ks        keyScratch
	cur, next []byte
}

// NewKeyBuilder returns a KeyBuilder ready for Reset.
func NewKeyBuilder() *KeyBuilder { return &KeyBuilder{} }

// Reset caches the per-node encodings of p, the base for subsequent
// ChildKey calls.
func (kb *KeyBuilder) Reset(p Pattern) {
	kb.p = p
	kb.ks.encode(p)
}

// ChildKey returns kb's base pattern's key after attaching a new leaf
// labeled label under node at: it equals p.AddChild(at, label).Key()
// without constructing the extended pattern.
func (kb *KeyBuilder) ChildKey(at int32, label LabelID) Key {
	return Key(kb.AppendChildKey(nil, at, label))
}

// AppendChildKey is ChildKey appending the key bytes to dst, for callers
// that manage their own buffers.
func (kb *KeyBuilder) AppendChildKey(dst []byte, at int32, label LabelID) []byte {
	if kb.p.IsZero() {
		panic("labeltree: KeyBuilder used before Reset")
	}
	cur, next := kb.cur[:0], kb.next[:0]
	// The new leaf's encoding.
	cur = binary.AppendUvarint(cur, uint64(label))
	cur = append(cur, keyEndMark)

	// Rebuild encodings along the path at→root: at node `at` the leaf is
	// inserted at its sorted position among the cached children; at each
	// ancestor the modified child's old encoding is replaced, keeping the
	// rest of the (already sorted) children byte-for-byte.
	node := at
	var old []byte // cached encoding of the child replaced at this level
	for {
		span := kb.ks.enc[kb.ks.start[node]:kb.ks.end[node]]
		_, labelLen := binary.Uvarint(span)
		next = append(next, span[:labelLen]...)
		rest := span[labelLen : len(span)-1] // the (mark, child-enc) sequence
		inserted, removed := false, false
		for off := 0; off < len(rest); {
			clen := encLen(rest[off+1:])
			child := rest[off+1 : off+1+clen]
			if !removed && old != nil && bytes.Equal(child, old) {
				removed = true
				off += 1 + clen
				continue
			}
			if !inserted && bytes.Compare(cur, child) <= 0 {
				next = append(next, keyChildMark)
				next = append(next, cur...)
				inserted = true
			}
			next = append(next, keyChildMark)
			next = append(next, child...)
			off += 1 + clen
		}
		if old != nil && !removed {
			panic("labeltree: KeyBuilder cache does not match its pattern")
		}
		if !inserted {
			next = append(next, keyChildMark)
			next = append(next, cur...)
		}
		next = append(next, keyEndMark)
		cur, next = next, cur[:0]
		if node == 0 {
			break
		}
		old = kb.ks.enc[kb.ks.start[node]:kb.ks.end[node]]
		node = kb.p.parent[node]
	}
	dst = append(dst, cur...)
	kb.cur, kb.next = cur, next // retain capacity across calls
	return dst
}
