package labeltree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary tree format (little-endian varints):
//
//	magic "TLTR" | version u8
//	labelCount uvarint | labelCount × (len uvarint, bytes)
//	nodeCount uvarint | nodeCount × label-index uvarint
//	(nodeCount−1) × parent uvarint (node 0's parent is implicit)
//
// The label table is embedded so trees can be loaded against any
// dictionary; IDs are remapped by name on load. This is the corpus
// store's on-disk form — much faster to reload than reparsing XML.
const (
	treeMagic   = "TLTR"
	treeVersion = 1
)

// WriteTree serializes t.
func WriteTree(w io.Writer, t *Tree) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var err error
	write := func(b []byte) {
		if err != nil {
			return
		}
		var k int
		k, err = bw.Write(b)
		n += int64(k)
	}
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		k := binary.PutUvarint(buf[:], v)
		write(buf[:k])
	}
	write([]byte(treeMagic))
	write([]byte{treeVersion})
	// Labels actually used, in first-use order.
	used := make(map[LabelID]uint64)
	var names []string
	for i := int32(0); int(i) < t.Size(); i++ {
		l := t.Label(i)
		if _, ok := used[l]; !ok {
			used[l] = uint64(len(names))
			names = append(names, t.dict.Name(l))
		}
	}
	uv(uint64(len(names)))
	for _, name := range names {
		uv(uint64(len(name)))
		write([]byte(name))
	}
	uv(uint64(t.Size()))
	for i := int32(0); int(i) < t.Size(); i++ {
		uv(used[t.Label(i)])
	}
	for i := int32(1); int(i) < t.Size(); i++ {
		uv(uint64(t.Parent(i)))
	}
	if err == nil {
		err = bw.Flush()
	}
	return n, err
}

// ReadTree deserializes a tree written by WriteTree, interning labels
// into dict.
func ReadTree(r io.Reader, dict *Dict) (*Tree, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(treeMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("labeltree: reading tree header: %w", err)
	}
	if string(head[:len(treeMagic)]) != treeMagic {
		return nil, fmt.Errorf("labeltree: bad tree magic %q", head[:len(treeMagic)])
	}
	if head[len(treeMagic)] != treeVersion {
		return nil, fmt.Errorf("labeltree: unsupported tree version %d", head[len(treeMagic)])
	}
	nLabels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("labeltree: label count: %w", err)
	}
	if nLabels > 1<<24 {
		return nil, fmt.Errorf("labeltree: implausible label count %d", nLabels)
	}
	ids := make([]LabelID, nLabels)
	for i := range ids {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("labeltree: label %d length: %w", i, err)
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("labeltree: label %d implausibly long (%d bytes)", i, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("labeltree: label %d: %w", i, err)
		}
		ids[i] = dict.Intern(string(buf))
	}
	nNodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("labeltree: node count: %w", err)
	}
	if nNodes == 0 {
		return nil, fmt.Errorf("labeltree: empty tree")
	}
	if nNodes > 1<<31 {
		return nil, fmt.Errorf("labeltree: implausible node count %d", nNodes)
	}
	labels := make([]LabelID, nNodes)
	for i := range labels {
		li, err := binary.ReadUvarint(br)
		if err != nil || li >= nLabels {
			return nil, fmt.Errorf("labeltree: node %d label (err %v)", i, err)
		}
		labels[i] = ids[li]
	}
	b := NewBuilder(dict)
	b.AddRoot(dict.Name(labels[0]))
	for i := uint64(1); i < nNodes; i++ {
		pi, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("labeltree: node %d parent: %w", i, err)
		}
		if pi >= i {
			return nil, fmt.Errorf("labeltree: node %d has forward parent %d", i, pi)
		}
		b.AddChildID(int32(pi), labels[i])
	}
	return b.Build(), nil
}
