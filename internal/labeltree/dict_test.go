package labeltree

import "testing"

func TestDictInternIsIdempotent(t *testing.T) {
	d := NewDict()
	a := d.Intern("a")
	b := d.Intern("b")
	if a == b {
		t.Fatalf("distinct labels got the same id %d", a)
	}
	if got := d.Intern("a"); got != a {
		t.Fatalf("re-interning a: got %d want %d", got, a)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict()
	a := d.Intern("a")
	if id, ok := d.Lookup("a"); !ok || id != a {
		t.Fatalf("Lookup(a) = %d,%v want %d,true", id, ok, a)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) reported present")
	}
}

func TestDictName(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	if got := d.Name(a); got != "alpha" {
		t.Fatalf("Name = %q, want alpha", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Name on unknown id did not panic")
		}
	}()
	d.Name(99)
}

func TestDictNamesAreCopies(t *testing.T) {
	d := NewDict()
	d.Intern("x")
	names := d.Names()
	names[0] = "mutated"
	if d.Name(0) != "x" {
		t.Fatal("Names() exposed internal storage")
	}
}

func TestDictSortedNames(t *testing.T) {
	d := NewDict()
	d.Intern("b")
	d.Intern("a")
	d.Intern("c")
	got := d.SortedNames()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedNames = %v, want %v", got, want)
		}
	}
}
