//go:build !race

package labeltree

// raceEnabled reports whether the race detector is compiled in. See
// race_on_test.go.
const raceEnabled = false
