package labeltree

import (
	"bytes"
	"testing"
)

// FuzzQuerySyntax: the twig query parser never panics on arbitrary input
// (it sits directly behind /v1/estimate's q parameter), and everything it
// accepts survives the canonical pipeline: Canonicalize, Key, String, and
// a re-parse of the String form that keys identically.
func FuzzQuerySyntax(f *testing.F) {
	f.Add("a")
	f.Add("//laptop(brand,price)")
	f.Add("a(b,c(d,e),f)")
	f.Add("a(b,b)")
	f.Add("a((")
	f.Add("a(b,)")
	f.Add(" a ( b , c ) ")
	f.Fuzz(func(t *testing.T, src string) {
		dict := NewDict()
		p, err := ParsePattern(src, dict)
		if err != nil {
			return
		}
		if p.Size() < 1 {
			t.Fatalf("accepted %q as an empty pattern", src)
		}
		key := p.Canonicalize().Key()
		str := p.String(dict)
		back, err := ParsePattern(str, dict)
		if err != nil {
			t.Fatalf("String form %q of accepted query %q does not re-parse: %v", str, src, err)
		}
		if back.Canonicalize().Key() != key {
			t.Fatalf("re-parsed %q keys differently from %q", str, src)
		}
	})
}

// FuzzKeyDecode: DecodeKey never panics, and everything it accepts is a
// fixed point of decode∘encode — the strictness property the decoder
// documents.
func FuzzKeyDecode(f *testing.F) {
	dict := NewDict()
	for _, q := range []string{"a", "a(b,c)", "a(b(c),b(c))", "root(x(y,z))"} {
		f.Add([]byte(MustParsePattern(q, dict).Key()))
	}
	f.Add([]byte{0x80, 0x00, 0x00}) // non-minimal varint
	f.Add([]byte{0x05})             // truncated: no end marker
	f.Add([]byte{0x05, 0x00, 0x00}) // trailing byte
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeKey(Key(data))
		if err != nil {
			return
		}
		if p.Size() < 1 {
			t.Fatalf("accepted %x as an empty pattern", data)
		}
		if got := p.Key(); !bytes.Equal([]byte(got), data) {
			t.Fatalf("decode(%x).Key() = %x; decoder accepted a non-canonical key", data, got)
		}
	})
}
