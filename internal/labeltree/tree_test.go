package labeltree

import (
	"testing"
)

// buildSample builds the paper's Figure 1(a) document:
// computer(laptops(laptop(brand,price), laptop(brand,price)), desktops).
func buildSample(t *testing.T) (*Tree, *Dict) {
	t.Helper()
	d := NewDict()
	b := NewBuilder(d)
	root := b.AddRoot("computer")
	laptops := b.AddChild(root, "laptops")
	b.AddChild(root, "desktops")
	l1 := b.AddChild(laptops, "laptop")
	l2 := b.AddChild(laptops, "laptop")
	b.AddChild(l1, "brand")
	b.AddChild(l1, "price")
	b.AddChild(l2, "brand")
	b.AddChild(l2, "price")
	return b.Build(), d
}

func TestBuilderShape(t *testing.T) {
	tr, d := buildSample(t)
	if tr.Size() != 9 {
		t.Fatalf("Size = %d, want 9", tr.Size())
	}
	if tr.LabelName(0) != "computer" {
		t.Fatalf("root label = %q", tr.LabelName(0))
	}
	if tr.Parent(0) != -1 {
		t.Fatalf("root parent = %d", tr.Parent(0))
	}
	laptops, _ := d.Lookup("laptops")
	kids := tr.Children(0)
	if len(kids) != 2 || tr.Label(kids[0]) != laptops {
		t.Fatalf("root children = %v", kids)
	}
}

func TestNodesByLabel(t *testing.T) {
	tr, d := buildSample(t)
	laptop, _ := d.Lookup("laptop")
	if got := tr.NodesByLabel(laptop); len(got) != 2 {
		t.Fatalf("laptop nodes = %v, want 2 entries", got)
	}
	brand, _ := d.Lookup("brand")
	if tr.LabelCount(brand) != 2 {
		t.Fatalf("brand count = %d", tr.LabelCount(brand))
	}
	if tr.LabelCount(LabelID(100)) != 0 {
		t.Fatal("unknown label should count 0")
	}
}

func TestDistinctLabels(t *testing.T) {
	tr, _ := buildSample(t)
	if got := len(tr.DistinctLabels()); got != 6 {
		t.Fatalf("DistinctLabels = %d, want 6", got)
	}
}

func TestChildLabelPairs(t *testing.T) {
	tr, d := buildSample(t)
	pairs := tr.ChildLabelPairs()
	laptop, _ := d.Lookup("laptop")
	brand, _ := d.Lookup("brand")
	price, _ := d.Lookup("price")
	got := pairs[laptop]
	if len(got) != 2 {
		t.Fatalf("children of laptop = %v", got)
	}
	seen := map[LabelID]bool{got[0]: true, got[1]: true}
	if !seen[brand] || !seen[price] {
		t.Fatalf("children of laptop = %v, want {brand, price}", got)
	}
}

func TestTreeStats(t *testing.T) {
	tr, _ := buildSample(t)
	s := tr.Stats()
	if s.Nodes != 9 || s.Labels != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDepth != 3 {
		t.Fatalf("MaxDepth = %d, want 3", s.MaxDepth)
	}
	if s.MaxFanout != 2 {
		t.Fatalf("MaxFanout = %d, want 2", s.MaxFanout)
	}
	if s.MeanFanout <= 0 || s.FanoutVariance < 0 {
		t.Fatalf("fanout stats = %+v", s)
	}
}

func TestBuilderPanics(t *testing.T) {
	d := NewDict()
	b := NewBuilder(d)
	b.AddRoot("a")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second AddRoot did not panic")
			}
		}()
		b.AddRoot("b")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddChild with bad parent did not panic")
			}
		}()
		b.AddChild(5, "c")
	}()
}

func TestSingleNodeTree(t *testing.T) {
	d := NewDict()
	b := NewBuilder(d)
	b.AddRoot("only")
	tr := b.Build()
	if tr.Size() != 1 || len(tr.Children(0)) != 0 {
		t.Fatalf("single-node tree malformed: size=%d children=%v", tr.Size(), tr.Children(0))
	}
	s := tr.Stats()
	if s.MaxDepth != 0 || s.MeanFanout != 0 {
		t.Fatalf("single-node stats = %+v", s)
	}
}
