package labeltree_test

import (
	"bytes"
	"math/rand"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

func TestTreeSerializeRoundTrip(t *testing.T) {
	dict, alphabet := treetest.Alphabet(5)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tr := treetest.RandomTree(rng, 1+rng.Intn(300), alphabet, dict)
		var buf bytes.Buffer
		n, err := labeltree.WriteTree(&buf, tr)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTree reported %d bytes, wrote %d", n, buf.Len())
		}
		// Load into a fresh dict with shifted IDs.
		dict2 := labeltree.NewDict()
		dict2.Intern("shift")
		got, err := labeltree.ReadTree(&buf, dict2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != tr.Size() {
			t.Fatalf("size %d != %d", got.Size(), tr.Size())
		}
		for i := int32(0); int(i) < tr.Size(); i++ {
			if got.LabelName(i) != tr.LabelName(i) || got.Parent(i) != tr.Parent(i) {
				t.Fatalf("node %d differs", i)
			}
		}
	}
}

func TestReadTreeRejectsGarbage(t *testing.T) {
	dict := labeltree.NewDict()
	for _, data := range [][]byte{
		nil,
		[]byte("XXXX\x01"),
		[]byte("TLTR\x02"),     // bad version
		[]byte("TLTR\x01\x01"), // truncated label table
	} {
		if _, err := labeltree.ReadTree(bytes.NewReader(data), dict); err == nil {
			t.Errorf("ReadTree(%q) succeeded", data)
		}
	}
}

func TestReadTreeRobustAgainstCorruption(t *testing.T) {
	// Flip/truncate bytes of a valid serialization: every corruption must
	// produce an error or a valid tree, never a panic.
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(9))
	tr := treetest.RandomTree(rng, 60, alphabet, dict)
	var buf bytes.Buffer
	if _, err := labeltree.WriteTree(&buf, tr); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), orig...)
		switch trial % 3 {
		case 0: // flip a byte
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		case 1: // truncate
			data = data[:rng.Intn(len(data))]
		case 2: // flip several
			for k := 0; k < 4; k++ {
				data[rng.Intn(len(data))] ^= 0xFF
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadTree panicked on corrupted input: %v", r)
				}
			}()
			d := labeltree.NewDict()
			_, _ = labeltree.ReadTree(bytes.NewReader(data), d)
		}()
	}
}
