package labeltree

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Pattern is a small rooted node-labeled tree: a twig query or a lattice
// entry. Nodes are numbered with every parent before its children
// (parent[i] < i, parent[0] == -1). Patterns are value types; the
// mutating-style operations return fresh patterns.
//
// Twig matching treats patterns as unordered trees: sibling order does not
// matter. Key (the canonical encoding) is therefore the identity used for
// equality and map storage.
type Pattern struct {
	labels []LabelID
	parent []int32
}

// Key is the canonical encoding of a pattern, usable as a map key. Two
// patterns have equal keys iff they are isomorphic as unordered rooted
// labeled trees. The contents are a compact byte encoding (see
// keyenc.go), not printable text, and are process-internal: keys are
// derived on demand and never serialized.
type Key string

// NewPattern builds a pattern from parallel label and parent slices.
// parent[0] must be -1 and parent[i] < i for i > 0. The slices are copied.
func NewPattern(labels []LabelID, parent []int32) (Pattern, error) {
	if len(labels) != len(parent) {
		return Pattern{}, fmt.Errorf("labeltree: labels/parent length mismatch %d != %d", len(labels), len(parent))
	}
	if len(labels) == 0 {
		return Pattern{}, fmt.Errorf("labeltree: empty pattern")
	}
	if parent[0] != -1 {
		return Pattern{}, fmt.Errorf("labeltree: parent[0] must be -1, got %d", parent[0])
	}
	for i := 1; i < len(parent); i++ {
		if parent[i] < 0 || parent[i] >= int32(i) {
			return Pattern{}, fmt.Errorf("labeltree: parent[%d]=%d violates parent-before-child numbering", i, parent[i])
		}
	}
	p := Pattern{labels: append([]LabelID(nil), labels...), parent: append([]int32(nil), parent...)}
	return p, nil
}

// MustPattern is NewPattern that panics on malformed input; intended for
// literals in tests and examples.
func MustPattern(labels []LabelID, parent []int32) Pattern {
	p, err := NewPattern(labels, parent)
	if err != nil {
		panic(err)
	}
	return p
}

// SingleNode returns the one-node pattern labeled label.
func SingleNode(label LabelID) Pattern {
	return Pattern{labels: []LabelID{label}, parent: []int32{-1}}
}

// Size reports the number of nodes.
func (p Pattern) Size() int { return len(p.labels) }

// IsZero reports whether p is the zero Pattern (no nodes).
func (p Pattern) IsZero() bool { return len(p.labels) == 0 }

// Label returns the label of node i.
func (p Pattern) Label(i int32) LabelID { return p.labels[i] }

// RootLabel returns the label of the root node.
func (p Pattern) RootLabel() LabelID { return p.labels[0] }

// Parent returns the parent of node i (-1 for the root).
func (p Pattern) Parent(i int32) int32 { return p.parent[i] }

// Children returns the children of node i in numbering order.
func (p Pattern) Children(i int32) []int32 {
	var out []int32
	for j := i + 1; int(j) < len(p.parent); j++ {
		if p.parent[j] == i {
			out = append(out, j)
		}
	}
	return out
}

// ChildCounts returns the number of children of every node.
func (p Pattern) ChildCounts() []int {
	counts := make([]int, len(p.labels))
	for i := 1; i < len(p.parent); i++ {
		counts[p.parent[i]]++
	}
	return counts
}

// Degree returns the degree of node i in the undirected sense (children
// plus one for the parent edge, if any).
func (p Pattern) Degree(i int32) int {
	d := p.ChildCounts()[i]
	if i != 0 {
		d++
	}
	return d
}

// Leaves returns the nodes of degree 1: ordinary leaves, plus the root if
// it has exactly one child. The paper treats a degree-1 root as a leaf for
// decomposition purposes (Section 3.2).
func (p Pattern) Leaves() []int32 {
	counts := p.ChildCounts()
	var out []int32
	for i := range counts {
		switch {
		case i == 0 && counts[i] == 1 && len(p.labels) > 1:
			out = append(out, int32(i))
		case i != 0 && counts[i] == 0:
			out = append(out, int32(i))
		}
	}
	return out
}

// IsPath reports whether the pattern is a simple path (every node has at
// most one child).
func (p Pattern) IsPath() bool {
	for _, c := range p.ChildCounts() {
		if c > 1 {
			return false
		}
	}
	return true
}

// PathLabels returns the root-to-leaf label sequence of a path pattern.
// It panics if the pattern is not a path.
func (p Pattern) PathLabels() []LabelID {
	if !p.IsPath() {
		panic("labeltree: PathLabels on a branching pattern")
	}
	out := make([]LabelID, 0, len(p.labels))
	i := int32(0)
	for {
		out = append(out, p.labels[i])
		cs := p.Children(i)
		if len(cs) == 0 {
			return out
		}
		i = cs[0]
	}
}

// PathPattern builds a path pattern from a root-to-leaf label sequence.
func PathPattern(labels ...LabelID) Pattern {
	if len(labels) == 0 {
		panic("labeltree: empty path")
	}
	parent := make([]int32, len(labels))
	parent[0] = -1
	for i := 1; i < len(labels); i++ {
		parent[i] = int32(i - 1)
	}
	return Pattern{labels: append([]LabelID(nil), labels...), parent: parent}
}

// AddChild returns a copy of p with a new node labeled label attached under
// node at. The new node gets the highest index.
func (p Pattern) AddChild(at int32, label LabelID) Pattern {
	q := Pattern{
		labels: append(append([]LabelID(nil), p.labels...), label),
		parent: append(append([]int32(nil), p.parent...), at),
	}
	return q
}

// RemoveLeaf returns a copy of p with degree-1 node i removed. Removing an
// ordinary leaf drops the node; removing a single-child root promotes the
// child to root. It panics if node i has degree > 1 or p has one node.
func (p Pattern) RemoveLeaf(i int32) Pattern {
	if len(p.labels) <= 1 {
		panic("labeltree: RemoveLeaf on trivial pattern")
	}
	counts := p.ChildCounts()
	if i == 0 {
		if counts[0] != 1 {
			panic("labeltree: RemoveLeaf on branching root")
		}
	} else if counts[i] != 0 {
		panic("labeltree: RemoveLeaf on internal node")
	}
	keep := make([]int32, 0, len(p.labels)-1)
	for j := int32(0); int(j) < len(p.labels); j++ {
		if j != i {
			keep = append(keep, j)
		}
	}
	return p.Subpattern(keep)
}

// Subpattern extracts the pattern induced by the given nodes, which must
// form a connected subtree of p. Nodes may be in any order; the result is
// renumbered parent-before-child.
func (p Pattern) Subpattern(nodes []int32) Pattern {
	inSet := make(map[int32]int32, len(nodes))
	ordered := append([]int32(nil), nodes...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a] < ordered[b] })
	for newIdx, old := range ordered {
		inSet[old] = int32(newIdx)
	}
	labels := make([]LabelID, len(ordered))
	parent := make([]int32, len(ordered))
	rootSeen := false
	for newIdx, old := range ordered {
		labels[newIdx] = p.labels[old]
		par := p.parent[old]
		if par < 0 {
			parent[newIdx] = -1
			rootSeen = true
			continue
		}
		np, ok := inSet[par]
		if !ok {
			if rootSeen {
				panic("labeltree: Subpattern nodes are not connected")
			}
			parent[newIdx] = -1
			rootSeen = true
			continue
		}
		parent[newIdx] = np
	}
	if !rootSeen {
		panic("labeltree: Subpattern has no root")
	}
	// Because original numbering is parent-before-child and we kept
	// ascending order, parent[i] < i holds in the result.
	return Pattern{labels: labels, parent: parent}
}

// Preorder returns the nodes of p in a depth-first preorder, visiting
// children in numbering order. Used by the fix-sized decomposition, which
// covers the query in preorder (Section 3.3).
func (p Pattern) Preorder() []int32 {
	children := make([][]int32, len(p.labels))
	for i := 1; i < len(p.parent); i++ {
		children[p.parent[i]] = append(children[p.parent[i]], int32(i))
	}
	out := make([]int32, 0, len(p.labels))
	stack := []int32{0}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		cs := children[n]
		for j := len(cs) - 1; j >= 0; j-- {
			stack = append(stack, cs[j])
		}
	}
	return out
}

// Key returns the canonical encoding of p as an unordered rooted labeled
// tree: a compact byte string (see keyenc.go for the format) in which
// every node's child encodings appear sorted, making sibling order
// irrelevant. Two patterns have equal keys iff they are isomorphic.
func (p Pattern) Key() Key {
	ks := keyScratchPool.Get().(*keyScratch)
	k := Key(ks.encode(p))
	keyScratchPool.Put(ks)
	return k
}

// encodeLabel renders a label ID unambiguously inside String's child
// ordering keys (display only; canonical Keys use the byte encoder).
func encodeLabel(l LabelID) string { return fmt.Sprintf("%d.", l) }

// Canonicalize returns an isomorphic copy of p renumbered into canonical
// preorder: children are visited in the order of their canonical
// encodings, so two isomorphic patterns canonicalize to structurally
// identical values. Order-sensitive algorithms (like the fix-sized
// preorder cover) canonicalize first to become isomorphism-invariant.
func (p Pattern) Canonicalize() Pattern {
	n := len(p.labels)
	ks := keyScratchPool.Get().(*keyScratch)
	ks.encode(p) // leaves every node's child list in canonical order
	labels := make([]LabelID, 0, n)
	parent := make([]int32, 0, n)
	type frame struct{ old, newParent int32 }
	stack := make([]frame, 1, n)
	stack[0] = frame{0, -1}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := int32(len(labels))
		labels = append(labels, p.labels[f.old])
		parent = append(parent, f.newParent)
		kids := ks.childIdx[ks.childPos[f.old]:ks.childPos[f.old+1]]
		for j := len(kids) - 1; j >= 0; j-- {
			stack = append(stack, frame{kids[j], idx})
		}
	}
	keyScratchPool.Put(ks)
	return Pattern{labels: labels, parent: parent}
}

// Equal reports whether p and q are isomorphic as unordered trees.
func (p Pattern) Equal(q Pattern) bool {
	if len(p.labels) != len(q.labels) {
		return false
	}
	ks1 := keyScratchPool.Get().(*keyScratch)
	ks2 := keyScratchPool.Get().(*keyScratch)
	eq := bytes.Equal(ks1.encode(p), ks2.encode(q))
	keyScratchPool.Put(ks1)
	keyScratchPool.Put(ks2)
	return eq
}

// Clone returns a deep copy of p.
func (p Pattern) Clone() Pattern {
	return Pattern{
		labels: append([]LabelID(nil), p.labels...),
		parent: append([]int32(nil), p.parent...),
	}
}

// Relabel returns a copy of p with node i relabeled to label.
func (p Pattern) Relabel(i int32, label LabelID) Pattern {
	q := p.Clone()
	q.labels[i] = label
	return q
}

// String renders p in the twig syntax using dict for label names, e.g.
// "a(b,c(d))". Children appear in canonical (sorted-encoding) order so the
// output is deterministic across isomorphic patterns.
func (p Pattern) String(dict *Dict) string {
	children := make([][]int32, len(p.labels))
	for i := 1; i < len(p.parent); i++ {
		children[p.parent[i]] = append(children[p.parent[i]], int32(i))
	}
	type rendered struct{ key, text string }
	var enc func(i int32) rendered
	enc = func(i int32) rendered {
		name := dict.Name(p.labels[i])
		cs := children[i]
		if len(cs) == 0 {
			return rendered{encodeLabel(p.labels[i]), name}
		}
		parts := make([]rendered, len(cs))
		for j, c := range cs {
			parts[j] = enc(c)
		}
		sort.Slice(parts, func(a, b int) bool { return parts[a].key < parts[b].key })
		keys := make([]string, len(parts))
		texts := make([]string, len(parts))
		for j, r := range parts {
			keys[j] = r.key
			texts[j] = r.text
		}
		return rendered{
			encodeLabel(p.labels[i]) + "(" + strings.Join(keys, "") + ")",
			name + "(" + strings.Join(texts, ",") + ")",
		}
	}
	return enc(0).text
}
