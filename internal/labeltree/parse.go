package labeltree

import (
	"fmt"
	"strings"
	"unicode"
)

// Query-shape guards: the twig parser accepts untrusted input (it sits
// behind /v1/estimate's q parameter), so both the node count and the
// nesting depth are bounded. The limits are far above any meaningful twig
// query — the paper's workloads top out at tens of nodes — and exist only
// to keep adversarial inputs from exhausting memory or the goroutine
// stack.
const (
	maxQueryNodes = 1 << 16
	maxQueryDepth = 1024
)

// ParsePattern parses the twig syntax "a(b,c(d))" into a Pattern,
// interning labels into dict. Whitespace around labels and punctuation is
// ignored. A leading "//" (as in the paper's "//laptop" example) is
// accepted and ignored: patterns are matched anywhere in the data tree, so
// the descendant axis at the root is implicit.
func ParsePattern(s string, dict *Dict) (Pattern, error) {
	p := &patternParser{src: s, dict: dict}
	p.skipSpace()
	p.acceptPrefix("//")
	root, err := p.parseNode(-1, 1)
	if err != nil {
		return Pattern{}, err
	}
	_ = root
	p.skipSpace()
	if p.pos != len(p.src) {
		return Pattern{}, fmt.Errorf("labeltree: trailing input %q at offset %d", p.src[p.pos:], p.pos)
	}
	return Pattern{labels: p.labels, parent: p.parents}, nil
}

// MustParsePattern is ParsePattern that panics on error; for tests and
// examples with literal queries.
func MustParsePattern(s string, dict *Dict) Pattern {
	p, err := ParsePattern(s, dict)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePath parses a path expression "a/b/c" (or "//a/b/c") into a path
// Pattern, interning labels into dict.
func ParsePath(s string, dict *Dict) (Pattern, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "//")
	parts := strings.Split(s, "/")
	if len(parts) > maxQueryNodes {
		return Pattern{}, fmt.Errorf("labeltree: path exceeds %d steps", maxQueryNodes)
	}
	labels := make([]LabelID, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return Pattern{}, fmt.Errorf("labeltree: empty step in path %q", s)
		}
		labels = append(labels, dict.Intern(part))
	}
	return PathPattern(labels...), nil
}

type patternParser struct {
	src     string
	pos     int
	dict    *Dict
	labels  []LabelID
	parents []int32
}

func (p *patternParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *patternParser) acceptPrefix(prefix string) {
	if strings.HasPrefix(p.src[p.pos:], prefix) {
		p.pos += len(prefix)
	}
}

// isLabelByte admits element names plus the synthetic prefixes '@'
// (attribute nodes) and '#' (value-bucket nodes) so queries can carry
// attribute and value predicates.
func isLabelByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' || c == '@' || c == '#' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// parseNode parses "label" or "label(child,child,...)" and records the node
// under parent. It returns the new node's index.
func (p *patternParser) parseNode(parent int32, depth int) (int32, error) {
	if depth > maxQueryDepth {
		return -1, fmt.Errorf("labeltree: query exceeds depth %d", maxQueryDepth)
	}
	if len(p.labels) >= maxQueryNodes {
		return -1, fmt.Errorf("labeltree: query exceeds %d nodes", maxQueryNodes)
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return -1, fmt.Errorf("labeltree: expected label at offset %d in %q", p.pos, p.src)
	}
	idx := int32(len(p.labels))
	p.labels = append(p.labels, p.dict.Intern(p.src[start:p.pos]))
	p.parents = append(p.parents, parent)
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			if _, err := p.parseNode(idx, depth+1); err != nil {
				return -1, err
			}
			p.skipSpace()
			if p.pos >= len(p.src) {
				return -1, fmt.Errorf("labeltree: unterminated '(' in %q", p.src)
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return -1, fmt.Errorf("labeltree: expected ',' or ')' at offset %d in %q", p.pos, p.src)
		}
	}
	return idx, nil
}
