package bloomhist

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/markov"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func parseDoc(t *testing.T, doc string) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func ids(dict *labeltree.Dict, names ...string) []labeltree.LabelID {
	out := make([]labeltree.LabelID, len(names))
	for i, n := range names {
		id, ok := dict.Lookup(n)
		if !ok {
			id = -1
		}
		out[i] = id
	}
	return out
}

func TestEstimateWithinBucketBounds(t *testing.T) {
	// The defining guarantee: for any stored path, the estimate's bucket
	// range brackets the true count.
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(5))
	tr := treetest.RandomTree(rng, 400, alphabet, dict)
	h := Build(tr, Options{MaxPathLen: 3, Buckets: 6})
	tb := markov.Build(tr, 3)
	checked := 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3)
		path := make([]labeltree.LabelID, n)
		for i := range path {
			path[i] = alphabet[rng.Intn(len(alphabet))]
		}
		truth := tb.Count(path)
		if truth == 0 {
			continue
		}
		checked++
		est, bounds := h.EstimatePath(path)
		if est <= 0 {
			t.Fatalf("stored path %v estimated 0 (true %d)", path, truth)
		}
		if truth < bounds[0] || truth > bounds[1] {
			t.Fatalf("path %v: true %d outside bucket range %v", path, truth, bounds)
		}
		if est < float64(bounds[0])-1e-9 || est > float64(bounds[1])+1e-9 {
			t.Fatalf("path %v: representative %v outside its own range %v", path, est, bounds)
		}
	}
	if checked < 30 {
		t.Fatalf("only %d stored paths checked", checked)
	}
}

func TestAbsentPathsMostlyZero(t *testing.T) {
	// Absent paths return 0 except for Bloom false positives, which must
	// be rare.
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(9))
	tr := treetest.RandomTree(rng, 300, alphabet, dict)
	h := Build(tr, Options{MaxPathLen: 3})
	tb := markov.Build(tr, 3)
	falsePos, absent := 0, 0
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(2)
		path := make([]labeltree.LabelID, n)
		for i := range path {
			path[i] = alphabet[rng.Intn(len(alphabet))]
		}
		if tb.Count(path) != 0 {
			continue
		}
		absent++
		if est, _ := h.EstimatePath(path); est != 0 {
			falsePos++
		}
	}
	if absent == 0 {
		t.Skip("no absent paths sampled")
	}
	if float64(falsePos) > 0.05*float64(absent)+1 {
		t.Fatalf("%d/%d false positives", falsePos, absent)
	}
}

func TestBucketsSeparateScales(t *testing.T) {
	// Counts 1 and 1000 must not share a bucket representative.
	var sb strings.Builder
	sb.WriteString("<r><rare/>")
	for i := 0; i < 1000; i++ {
		sb.WriteString("<common/>")
	}
	sb.WriteString("</r>")
	tr, dict := parseDoc(t, sb.String())
	h := Build(tr, Options{MaxPathLen: 2, Buckets: 4})
	rare, _ := h.EstimatePath(ids(dict, "rare"))
	common, _ := h.EstimatePath(ids(dict, "common"))
	if rare <= 0 || common <= 0 {
		t.Fatalf("estimates: rare=%v common=%v", rare, common)
	}
	if common < 100*rare {
		t.Fatalf("buckets merged scales: rare=%v common=%v", rare, common)
	}
	if math.Abs(common-1000) > 500 {
		t.Fatalf("common = %v, want ~1000", common)
	}
}

func TestMiscAccessors(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b/></a>`)
	h := Build(tr, Options{})
	if h.Buckets() == 0 || h.SizeBytes() <= 0 || h.Name() != "bloomhist" {
		t.Fatalf("buckets=%d size=%d", h.Buckets(), h.SizeBytes())
	}
	if est, _ := h.EstimatePath(nil); est != 0 {
		t.Fatalf("empty path = %v", est)
	}
	long := ids(dict, "a", "b", "a", "b", "a")
	if est, _ := h.EstimatePath(long); est != 0 {
		t.Fatalf("over-length path = %v", est)
	}
	p := labeltree.MustParsePattern("a(b)", dict)
	if got := h.Estimate(p); got <= 0 {
		t.Fatalf("Estimate = %v", got)
	}
}

func TestBloomFilter(t *testing.T) {
	b := newBloom(1024, 3)
	keys := []string{"a", "bb", "ccc", "dddd"}
	for _, k := range keys {
		b.add(k)
	}
	for _, k := range keys {
		if !b.contains(k) {
			t.Fatalf("member %q missing", k)
		}
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		if !b.contains(strings.Repeat("x", 1+i%7) + string(rune('0'+i%10))) {
			misses++
		}
	}
	if misses < 900 {
		t.Fatalf("only %d/1000 non-members rejected", misses)
	}
}
