// Package bloomhist implements the Bloom-histogram path-selectivity
// summary of Wang et al. (VLDB 2004), the last of the path-lineage
// baselines the paper cites — notable as the first method with a
// theoretical bound on estimation error.
//
// Construction: collect every downward label path up to length L with its
// count; sort paths by count and partition them into B buckets so that
// within-bucket counts are close (greedy splitting on the largest
// relative spread); store, per bucket, a Bloom filter of the member path
// keys and a representative value (the bucket's geometric midpoint).
// Estimation probes the buckets' filters: a hit returns the bucket
// representative (error bounded by the bucket spread, up to Bloom false
// positives); no hit returns 0.
package bloomhist

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"treelattice/internal/labeltree"
)

// Options configures construction.
type Options struct {
	// MaxPathLen is the maximum stored path length (default 4).
	MaxPathLen int
	// Buckets is the number of histogram buckets (default 8).
	Buckets int
	// BitsPerKey sizes each bucket's Bloom filter (default 10, ~1% false
	// positives with 3 hash functions).
	BitsPerKey int
}

func (o *Options) fill() {
	if o.MaxPathLen == 0 {
		o.MaxPathLen = 4
	}
	if o.Buckets == 0 {
		o.Buckets = 8
	}
	if o.BitsPerKey == 0 {
		o.BitsPerKey = 10
	}
}

// Histogram is a built Bloom histogram. Immutable and safe for concurrent
// use.
type Histogram struct {
	opts    Options
	buckets []bucket
}

type bucket struct {
	filter *bloom
	value  float64 // representative count
	lo, hi int64   // true count range (for error-bound reporting)
	keys   int
}

// Build scans all downward paths of length ≤ L and buckets their counts.
func Build(t *labeltree.Tree, opts Options) *Histogram {
	opts.fill()
	counts := make(map[string]int64)
	labels := make([]labeltree.LabelID, 0, opts.MaxPathLen)
	var walk func(at int32)
	walk = func(at int32) {
		labels = append(labels, t.Label(at))
		counts[pathKey(labels)]++
		if len(labels) < opts.MaxPathLen {
			for _, c := range t.Children(at) {
				walk(c)
			}
		}
		labels = labels[:len(labels)-1]
	}
	for v := int32(0); int(v) < t.Size(); v++ {
		walk(v)
	}

	type kv struct {
		key   string
		count int64
	}
	all := make([]kv, 0, len(counts))
	for k, c := range counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].count != all[b].count {
			return all[a].count < all[b].count
		}
		return all[a].key < all[b].key
	})

	h := &Histogram{opts: opts}
	if len(all) == 0 {
		return h
	}
	// Greedy equi-spread partition: split at the largest count ratios.
	sorted := make([]int64, len(all))
	for i := range all {
		sorted[i] = all[i].count
	}
	boundaries := splitBoundaries(sorted, opts.Buckets)
	start := 0
	for _, end := range boundaries {
		members := all[start:end]
		start = end
		if len(members) == 0 {
			continue
		}
		bl := newBloom(len(members)*opts.BitsPerKey, 3)
		for _, m := range members {
			bl.add(m.key)
		}
		lo := members[0].count
		hi := members[len(members)-1].count
		h.buckets = append(h.buckets, bucket{
			filter: bl,
			value:  math.Sqrt(float64(lo) * float64(hi)),
			lo:     lo,
			hi:     hi,
			keys:   len(members),
		})
	}
	return h
}

// splitBoundaries returns ascending end indexes partitioning sorted
// counts into at most b buckets, cutting where adjacent counts have the
// largest ratio.
func splitBoundaries(counts []int64, b int) []int {
	n := len(counts)
	if b <= 1 || n <= 1 {
		return []int{n}
	}
	type cut struct {
		idx   int
		ratio float64
	}
	cuts := make([]cut, 0, n-1)
	for i := 1; i < n; i++ {
		r := float64(counts[i]) / float64(counts[i-1])
		cuts = append(cuts, cut{idx: i, ratio: r})
	}
	sort.Slice(cuts, func(a, b int) bool {
		if cuts[a].ratio != cuts[b].ratio {
			return cuts[a].ratio > cuts[b].ratio
		}
		return cuts[a].idx < cuts[b].idx
	})
	keep := b - 1
	if keep > len(cuts) {
		keep = len(cuts)
	}
	idxs := make([]int, 0, keep+1)
	for _, c := range cuts[:keep] {
		idxs = append(idxs, c.idx)
	}
	idxs = append(idxs, n)
	sort.Ints(idxs)
	return idxs
}

// Buckets reports the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// SizeBytes is the accounted size: filter bits plus 24 bytes of metadata
// per bucket.
func (h *Histogram) SizeBytes() int {
	total := 0
	for _, b := range h.buckets {
		total += len(b.filter.bits)*8 + 24
	}
	return total
}

// Name identifies the estimator in experiment output.
func (h *Histogram) Name() string { return "bloomhist" }

// EstimatePath returns the representative count of the bucket whose
// filter contains the path, 0 when no bucket matches. The second return
// is the bucket's true-count range — the paper's error bound.
func (h *Histogram) EstimatePath(labels []labeltree.LabelID) (float64, [2]int64) {
	if len(labels) == 0 || len(labels) > h.opts.MaxPathLen {
		return 0, [2]int64{}
	}
	key := pathKey(labels)
	for _, b := range h.buckets {
		if b.filter.contains(key) {
			return b.value, [2]int64{b.lo, b.hi}
		}
	}
	return 0, [2]int64{}
}

// Estimate adapts EstimatePath to the common estimator shape for path
// patterns; it panics on branching patterns (Bloom histograms summarize
// paths only — the limitation the paper calls out).
func (h *Histogram) Estimate(p labeltree.Pattern) float64 {
	v, _ := h.EstimatePath(p.PathLabels())
	return v
}

func pathKey(labels []labeltree.LabelID) string {
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%d/", l)
	}
	return b.String()
}

// ---- Bloom filter (double hashing over FNV-1a 64) ----

type bloom struct {
	bits []uint64
	k    int
}

func newBloom(bits, k int) *bloom {
	if bits < 64 {
		bits = 64
	}
	return &bloom{bits: make([]uint64, (bits+63)/64), k: k}
}

func (b *bloom) hashes(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h.Write([]byte{0xFF})
	h2 := h.Sum64() | 1
	return h1, h2
}

func (b *bloom) add(key string) {
	h1, h2 := b.hashes(key)
	m := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

func (b *bloom) contains(key string) bool {
	h1, h2 := b.hashes(key)
	m := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}
