package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"treelattice/internal/corpus"
	"treelattice/internal/obs"
)

const doc = `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops></computer>`

func newServer(t *testing.T) (*httptest.Server, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

func do(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestLifecycle(t *testing.T) {
	srv, _ := newServer(t)

	code, out := do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	if code != http.StatusCreated || out["added"] != "sample" {
		t.Fatalf("add: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)", "")
	if code != 200 || out["estimate"].(float64) != 2 {
		t.Fatalf("estimate: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/exact?q=laptop(brand,price)", "")
	if code != 200 || out["count"].(float64) != 2 {
		t.Fatalf("exact: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/stats", "")
	if code != 200 || out["k"].(float64) != 3 {
		t.Fatalf("stats: %d %v", code, out)
	}
	docs := out["documents"].([]any)
	if len(docs) != 1 || docs[0] != "sample" {
		t.Fatalf("stats docs: %v", docs)
	}

	code, out = do(t, "DELETE", srv.URL+"/v1/docs/sample", "")
	if code != 200 || out["removed"] != "sample" {
		t.Fatalf("delete: %d %v", code, out)
	}
	code, out = do(t, "GET", srv.URL+"/v1/estimate?q=laptop", "")
	if code != 200 || out["estimate"].(float64) != 0 {
		t.Fatalf("estimate after delete: %d %v", code, out)
	}
}

func TestExplain(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := do(t, "GET", srv.URL+"/v1/explain?q=computer(laptops(laptop(brand,price)))", "")
	if code != 200 {
		t.Fatalf("explain: %d %v", code, out)
	}
	if out["estimate"].(float64) <= 0 {
		t.Fatalf("explain estimate: %v", out)
	}
	if _, ok := out["trace"]; !ok {
		t.Fatalf("explain missing trace: %v", out)
	}
	lo, hi := out["spread_lo"].(float64), out["spread_hi"].(float64)
	if lo > hi {
		t.Fatalf("inverted spread: %v %v", lo, hi)
	}
}

func TestErrors(t *testing.T) {
	srv, _ := newServer(t)
	for _, tc := range []struct {
		method, path, body string
		wantCode           int
	}{
		{"GET", "/v1/estimate", "", 400},                       // missing q
		{"GET", "/v1/estimate?q=a((", "", 400},                 // bad query
		{"GET", "/v1/estimate?q=laptop&method=bogus", "", 400}, // bad method
		{"GET", "/v1/exact", "", 400},
		{"GET", "/v1/explain", "", 400},
		{"GET", "/v1/nope", "", 404},
		{"POST", "/v1/docs/bad", "<a><b>", 400},     // malformed XML
		{"DELETE", "/v1/docs/missing", "", 404},     // unknown doc
		{"PUT", "/v1/docs/x", "<a/>", 405},          // bad method
		{"PUT", "/v1/estimate", "", 405},            // bad method on query route
		{"POST", "/v1/docs/%2e%2e", "<a/>", 400},    // traversal name
		{"POST", "/v1/docs/sample", doc + doc, 400}, // two roots
	} {
		code, out := do(t, tc.method, srv.URL+tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s %s: code %d (%v), want %d", tc.method, tc.path, code, out, tc.wantCode)
		}
		if code >= 400 {
			if _, ok := out["error"]; !ok {
				t.Errorf("%s %s: error response missing error field: %v", tc.method, tc.path, out)
			}
			if s, ok := out["code"].(string); !ok || s == "" {
				t.Errorf("%s %s: error response missing code field: %v", tc.method, tc.path, out)
			}
		}
	}
}

// TestErrorCodes pins the machine-readable code per failure class.
func TestErrorCodes(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	for _, tc := range []struct {
		method, path, body string
		wantCode           string
	}{
		{"GET", "/v1/estimate?q=a((", "", "bad_query"},
		{"GET", "/v1/estimate?q=laptop&method=bogus", "", "unknown_method"},
		{"GET", "/v1/nope", "", "not_found"},
		{"PUT", "/v1/docs/x", "<a/>", "method_not_allowed"},
		{"POST", "/v1/docs/sample", doc, "exists"},
		{"POST", "/v1/docs/bad", "<a><b>", "bad_document"},
		{"DELETE", "/v1/docs/missing", "", "not_found"},
	} {
		_, out := do(t, tc.method, srv.URL+tc.path, tc.body)
		if got, _ := out["code"].(string); got != tc.wantCode {
			t.Errorf("%s %s: code %q, want %q (%v)", tc.method, tc.path, got, tc.wantCode, out)
		}
	}
}

// TestUnknownLabelEstimatesZero checks that a query naming a label no
// document ever carried answers 0 rather than erroring: absence is a
// selectivity fact, not a client mistake.
func TestUnknownLabelEstimatesZero(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := do(t, "GET", srv.URL+"/v1/estimate?q=never_seen(brand)", "")
	if code != 200 || out["estimate"].(float64) != 0 {
		t.Fatalf("unknown label estimate: %d %v", code, out)
	}
	code, out = do(t, "GET", srv.URL+"/v1/exact?q=never_seen2", "")
	if code != 200 || out["count"].(float64) != 0 {
		t.Fatalf("unknown label exact: %d %v", code, out)
	}
}

// TestUploadTooLarge checks the MaxBytesReader guard: an oversized body
// gets 413 with the too_large code, and the corpus stays unchanged.
func TestUploadTooLarge(t *testing.T) {
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerOptions(c, Options{MaxDocumentBytes: 256}))
	t.Cleanup(srv.Close)

	big := "<root>" + strings.Repeat("<a/>", 200) + "</root>"
	code, out := do(t, "POST", srv.URL+"/v1/docs/big", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: code %d (%v), want 413", code, out)
	}
	if got, _ := out["code"].(string); got != "too_large" {
		t.Fatalf("oversized upload code = %q, want too_large (%v)", got, out)
	}
	_, stats := do(t, "GET", srv.URL+"/v1/stats", "")
	if docs := stats["documents"].([]any); len(docs) != 0 {
		t.Fatalf("oversized upload mutated corpus: %v", docs)
	}

	// A body under the limit still works.
	code, _ = do(t, "POST", srv.URL+"/v1/docs/small", "<root><a/></root>")
	if code != http.StatusCreated {
		t.Fatalf("small upload: code %d", code)
	}
}

// TestConcurrentEstimateAndUpload races reads against incremental merges:
// run under -race, it checks the lock discipline across the estimate
// path, the cache, and the upload pipeline.
func TestConcurrentEstimateAndUpload(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/seed", doc)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get(srv.URL + "/v1/estimate?q=laptop(brand,price)")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("estimate status %d", resp.StatusCode)
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("doc%d", i)
			resp, err := http.Post(srv.URL+"/v1/docs/"+name, "application/xml", strings.NewReader(doc))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("upload %s status %d", name, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	// All five documents merged: the corpus-wide count is exact.
	_, out := do(t, "GET", srv.URL+"/v1/exact?q=laptop(brand,price)", "")
	if got := out["count"].(float64); got != 10 {
		t.Fatalf("after concurrent uploads count = %v, want 10", got)
	}
}

// TestStatsReportsBuildTimings checks per-stage timings surface after an
// upload.
func TestStatsReportsBuildTimings(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	_, out := do(t, "GET", srv.URL+"/v1/stats", "")
	ms, ok := out["last_build_ms"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing last_build_ms: %v", out)
	}
	for _, stage := range []string{"parse", "mine", "persist"} {
		if _, ok := ms[stage]; !ok {
			t.Errorf("last_build_ms missing stage %q: %v", stage, ms)
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/estimate?q=laptop(brand)")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
}

func TestEstimateCaching(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	_, out := do(t, "GET", srv.URL+"/v1/stats", "")
	if out["cache_hits"].(float64) < 1 {
		t.Fatalf("no cache hits recorded: %v", out)
	}
	// A mutation invalidates: estimates change after a second document.
	do(t, "POST", srv.URL+"/v1/docs/sample2", doc)
	_, est := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	if est["estimate"].(float64) != 4 {
		t.Fatalf("post-invalidation estimate = %v, want 4", est["estimate"])
	}
}

// decodeMetrics scrapes /v1/metrics into an obs.Snapshot.
func decodeMetrics(t *testing.T, url string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMetricsEndpoint drives a known request mix and checks the exported
// counters and histograms agree with it.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	const n = 7
	for i := 0; i < n; i++ {
		do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)", "")
	}
	do(t, "GET", srv.URL+"/v1/estimate?q=a((", "") // one 400

	s := decodeMetrics(t, srv.URL)
	if got := s.Counters["http.estimate.requests"]; got != n+1 {
		t.Errorf("estimate requests = %d, want %d", got, n+1)
	}
	if got := s.Counters["http.estimate.status.2xx"]; got != n {
		t.Errorf("estimate 2xx = %d, want %d", got, n)
	}
	if got := s.Counters["http.estimate.status.4xx"]; got != 1 {
		t.Errorf("estimate 4xx = %d, want 1", got)
	}
	if got := s.Counters["http.doc_add.requests"]; got != 1 {
		t.Errorf("doc_add requests = %d, want 1", got)
	}
	hist, ok := s.Histograms["http.estimate.latency_seconds"]
	if !ok || hist.Count != n+1 {
		t.Errorf("estimate latency histogram count = %d, want %d", hist.Count, n+1)
	}
	// The estimate path records per-method latencies in core: the cache
	// absorbed repeats, so the voting estimator ran for the two distinct
	// computations (good query once, plus zero for the bad one which never
	// reaches the estimator).
	if got := s.Histograms["estimate.recursive+voting.latency_seconds"].Count; got != 1 {
		t.Errorf("estimator latency count = %d, want 1 (cache absorbed repeats)", got)
	}
	if got := s.Counters["qcache.hits"]; got != n-1 {
		t.Errorf("qcache.hits = %d, want %d", got, n-1)
	}
	if got := s.Counters["qcache.misses"]; got != 1 {
		t.Errorf("qcache.misses = %d, want 1", got)
	}
	// The scrape observes itself: the snapshot is taken while the metrics
	// request is still in flight.
	if got, ok := s.Gauges["http.in_flight"]; !ok || got != 1 {
		t.Errorf("in_flight = %d (present %v), want 1 (the scrape itself)", got, ok)
	}
}

// TestStatsObsSummary checks the satellite: /v1/stats carries the cache
// hit ratio and the per-endpoint obs summary.
func TestStatsObsSummary(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	_, out := do(t, "GET", srv.URL+"/v1/stats", "")
	if ratio, ok := out["cache_hit_ratio"].(float64); !ok || ratio != 0.5 {
		t.Errorf("cache_hit_ratio = %v, want 0.5", out["cache_hit_ratio"])
	}
	if _, ok := out["cache_evictions"].(float64); !ok {
		t.Errorf("stats missing cache_evictions: %v", out)
	}
	eps, ok := out["endpoints"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing endpoints summary: %v", out)
	}
	est, ok := eps["estimate"].(map[string]any)
	if !ok {
		t.Fatalf("endpoints missing estimate: %v", eps)
	}
	if est["requests"].(float64) != 2 {
		t.Errorf("endpoint requests = %v, want 2", est["requests"])
	}
	for _, q := range []string{"p50_ms", "p95_ms", "p99_ms"} {
		if _, ok := est[q]; !ok {
			t.Errorf("endpoint summary missing %s: %v", q, est)
		}
	}
}

// TestMetricsUnderConcurrentLoad hammers estimates, uploads, and metrics
// scrapes together (run under -race): every scrape must be self-consistent
// (histogram count == bucket sum) and counters must be monotone across
// scrapes.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/seed", doc)

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				resp, err := http.Get(srv.URL + "/v1/estimate?q=laptop(brand,price)")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+fmt.Sprintf("/v1/docs/d%d", i),
				"application/xml", strings.NewReader(doc))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}(i)
	}
	scrapeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev map[string]uint64
		for k := 0; k < 30; k++ {
			s := decodeMetrics(t, srv.URL)
			for name, hist := range s.Histograms {
				var sum uint64
				for _, b := range hist.Buckets {
					sum += b.Count
				}
				if sum != hist.Count {
					select {
					case scrapeErr <- fmt.Errorf("torn histogram %s: %d != %d", name, sum, hist.Count):
					default:
					}
					return
				}
			}
			for name, v := range prev {
				if s.Counters[name] < v {
					select {
					case scrapeErr <- fmt.Errorf("counter %s went backwards: %d -> %d", name, v, s.Counters[name]):
					default:
					}
					return
				}
			}
			prev = s.Counters
		}
	}()
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	s := decodeMetrics(t, srv.URL)
	if got := s.Counters["http.estimate.requests"]; got != 150 {
		t.Errorf("estimate requests = %d, want 150", got)
	}
	if got := s.Counters["http.doc_add.requests"]; got != 4 {
		t.Errorf("doc_add requests = %d, want 4", got)
	}
}

// TestMetricsMethodNotAllowed pins the envelope on the metrics route too.
func TestMetricsMethodNotAllowed(t *testing.T) {
	srv, _ := newServer(t)
	code, out := do(t, "POST", srv.URL+"/v1/metrics", "x")
	if code != 405 || out["code"] != "method_not_allowed" {
		t.Fatalf("POST /v1/metrics: %d %v", code, out)
	}
}
