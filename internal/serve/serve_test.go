package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"treelattice/internal/corpus"
)

const doc = `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops></computer>`

func newServer(t *testing.T) (*httptest.Server, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

func do(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestLifecycle(t *testing.T) {
	srv, _ := newServer(t)

	code, out := do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	if code != http.StatusCreated || out["added"] != "sample" {
		t.Fatalf("add: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)", "")
	if code != 200 || out["estimate"].(float64) != 2 {
		t.Fatalf("estimate: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/exact?q=laptop(brand,price)", "")
	if code != 200 || out["count"].(float64) != 2 {
		t.Fatalf("exact: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/stats", "")
	if code != 200 || out["k"].(float64) != 3 {
		t.Fatalf("stats: %d %v", code, out)
	}
	docs := out["documents"].([]any)
	if len(docs) != 1 || docs[0] != "sample" {
		t.Fatalf("stats docs: %v", docs)
	}

	code, out = do(t, "DELETE", srv.URL+"/v1/docs/sample", "")
	if code != 200 || out["removed"] != "sample" {
		t.Fatalf("delete: %d %v", code, out)
	}
	code, out = do(t, "GET", srv.URL+"/v1/estimate?q=laptop", "")
	if code != 200 || out["estimate"].(float64) != 0 {
		t.Fatalf("estimate after delete: %d %v", code, out)
	}
}

func TestExplain(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := do(t, "GET", srv.URL+"/v1/explain?q=computer(laptops(laptop(brand,price)))", "")
	if code != 200 {
		t.Fatalf("explain: %d %v", code, out)
	}
	if out["estimate"].(float64) <= 0 {
		t.Fatalf("explain estimate: %v", out)
	}
	if _, ok := out["trace"]; !ok {
		t.Fatalf("explain missing trace: %v", out)
	}
	lo, hi := out["spread_lo"].(float64), out["spread_hi"].(float64)
	if lo > hi {
		t.Fatalf("inverted spread: %v %v", lo, hi)
	}
}

func TestErrors(t *testing.T) {
	srv, _ := newServer(t)
	for _, tc := range []struct {
		method, path, body string
		wantCode           int
	}{
		{"GET", "/v1/estimate", "", 400},                       // missing q
		{"GET", "/v1/estimate?q=a((", "", 400},                 // bad query
		{"GET", "/v1/estimate?q=laptop&method=bogus", "", 400}, // bad method
		{"GET", "/v1/exact", "", 400},
		{"GET", "/v1/explain", "", 400},
		{"GET", "/v1/nope", "", 404},
		{"POST", "/v1/docs/bad", "<a><b>", 400},     // malformed XML
		{"DELETE", "/v1/docs/missing", "", 404},     // unknown doc
		{"PUT", "/v1/docs/x", "<a/>", 405},          // bad method
		{"PUT", "/v1/estimate", "", 405},            // bad method on query route
		{"POST", "/v1/docs/%2e%2e", "<a/>", 400},    // traversal name
		{"POST", "/v1/docs/sample", doc + doc, 400}, // two roots
	} {
		code, out := do(t, tc.method, srv.URL+tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s %s: code %d (%v), want %d", tc.method, tc.path, code, out, tc.wantCode)
		}
		if code >= 400 {
			if _, ok := out["error"]; !ok {
				t.Errorf("%s %s: error response missing error field: %v", tc.method, tc.path, out)
			}
			if s, ok := out["code"].(string); !ok || s == "" {
				t.Errorf("%s %s: error response missing code field: %v", tc.method, tc.path, out)
			}
		}
	}
}

// TestErrorCodes pins the machine-readable code per failure class.
func TestErrorCodes(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	for _, tc := range []struct {
		method, path, body string
		wantCode           string
	}{
		{"GET", "/v1/estimate?q=a((", "", "bad_query"},
		{"GET", "/v1/estimate?q=laptop&method=bogus", "", "unknown_method"},
		{"GET", "/v1/nope", "", "not_found"},
		{"PUT", "/v1/docs/x", "<a/>", "method_not_allowed"},
		{"POST", "/v1/docs/sample", doc, "exists"},
		{"POST", "/v1/docs/bad", "<a><b>", "bad_document"},
		{"DELETE", "/v1/docs/missing", "", "not_found"},
	} {
		_, out := do(t, tc.method, srv.URL+tc.path, tc.body)
		if got, _ := out["code"].(string); got != tc.wantCode {
			t.Errorf("%s %s: code %q, want %q (%v)", tc.method, tc.path, got, tc.wantCode, out)
		}
	}
}

// TestUnknownLabelEstimatesZero checks that a query naming a label no
// document ever carried answers 0 rather than erroring: absence is a
// selectivity fact, not a client mistake.
func TestUnknownLabelEstimatesZero(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := do(t, "GET", srv.URL+"/v1/estimate?q=never_seen(brand)", "")
	if code != 200 || out["estimate"].(float64) != 0 {
		t.Fatalf("unknown label estimate: %d %v", code, out)
	}
	code, out = do(t, "GET", srv.URL+"/v1/exact?q=never_seen2", "")
	if code != 200 || out["count"].(float64) != 0 {
		t.Fatalf("unknown label exact: %d %v", code, out)
	}
}

// TestUploadTooLarge checks the MaxBytesReader guard: an oversized body
// gets 413 with the too_large code, and the corpus stays unchanged.
func TestUploadTooLarge(t *testing.T) {
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerOptions(c, Options{MaxDocumentBytes: 256}))
	t.Cleanup(srv.Close)

	big := "<root>" + strings.Repeat("<a/>", 200) + "</root>"
	code, out := do(t, "POST", srv.URL+"/v1/docs/big", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: code %d (%v), want 413", code, out)
	}
	if got, _ := out["code"].(string); got != "too_large" {
		t.Fatalf("oversized upload code = %q, want too_large (%v)", got, out)
	}
	_, stats := do(t, "GET", srv.URL+"/v1/stats", "")
	if docs := stats["documents"].([]any); len(docs) != 0 {
		t.Fatalf("oversized upload mutated corpus: %v", docs)
	}

	// A body under the limit still works.
	code, _ = do(t, "POST", srv.URL+"/v1/docs/small", "<root><a/></root>")
	if code != http.StatusCreated {
		t.Fatalf("small upload: code %d", code)
	}
}

// TestConcurrentEstimateAndUpload races reads against incremental merges:
// run under -race, it checks the lock discipline across the estimate
// path, the cache, and the upload pipeline.
func TestConcurrentEstimateAndUpload(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/seed", doc)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get(srv.URL + "/v1/estimate?q=laptop(brand,price)")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("estimate status %d", resp.StatusCode)
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("doc%d", i)
			resp, err := http.Post(srv.URL+"/v1/docs/"+name, "application/xml", strings.NewReader(doc))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("upload %s status %d", name, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	// All five documents merged: the corpus-wide count is exact.
	_, out := do(t, "GET", srv.URL+"/v1/exact?q=laptop(brand,price)", "")
	if got := out["count"].(float64); got != 10 {
		t.Fatalf("after concurrent uploads count = %v, want 10", got)
	}
}

// TestStatsReportsBuildTimings checks per-stage timings surface after an
// upload.
func TestStatsReportsBuildTimings(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	_, out := do(t, "GET", srv.URL+"/v1/stats", "")
	ms, ok := out["last_build_ms"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing last_build_ms: %v", out)
	}
	for _, stage := range []string{"parse", "mine", "persist"} {
		if _, ok := ms[stage]; !ok {
			t.Errorf("last_build_ms missing stage %q: %v", stage, ms)
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/estimate?q=laptop(brand)")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
}

func TestEstimateCaching(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	_, out := do(t, "GET", srv.URL+"/v1/stats", "")
	if out["cache_hits"].(float64) < 1 {
		t.Fatalf("no cache hits recorded: %v", out)
	}
	// A mutation invalidates: estimates change after a second document.
	do(t, "POST", srv.URL+"/v1/docs/sample2", doc)
	_, est := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	if est["estimate"].(float64) != 4 {
		t.Fatalf("post-invalidation estimate = %v, want 4", est["estimate"])
	}
}
