package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"treelattice/internal/corpus"
)

const doc = `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops></computer>`

func newServer(t *testing.T) (*httptest.Server, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

func do(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestLifecycle(t *testing.T) {
	srv, _ := newServer(t)

	code, out := do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	if code != http.StatusCreated || out["added"] != "sample" {
		t.Fatalf("add: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)", "")
	if code != 200 || out["estimate"].(float64) != 2 {
		t.Fatalf("estimate: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/exact?q=laptop(brand,price)", "")
	if code != 200 || out["count"].(float64) != 2 {
		t.Fatalf("exact: %d %v", code, out)
	}

	code, out = do(t, "GET", srv.URL+"/v1/stats", "")
	if code != 200 || out["k"].(float64) != 3 {
		t.Fatalf("stats: %d %v", code, out)
	}
	docs := out["documents"].([]any)
	if len(docs) != 1 || docs[0] != "sample" {
		t.Fatalf("stats docs: %v", docs)
	}

	code, out = do(t, "DELETE", srv.URL+"/v1/docs/sample", "")
	if code != 200 || out["removed"] != "sample" {
		t.Fatalf("delete: %d %v", code, out)
	}
	code, out = do(t, "GET", srv.URL+"/v1/estimate?q=laptop", "")
	if code != 200 || out["estimate"].(float64) != 0 {
		t.Fatalf("estimate after delete: %d %v", code, out)
	}
}

func TestExplain(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := do(t, "GET", srv.URL+"/v1/explain?q=computer(laptops(laptop(brand,price)))", "")
	if code != 200 {
		t.Fatalf("explain: %d %v", code, out)
	}
	if out["estimate"].(float64) <= 0 {
		t.Fatalf("explain estimate: %v", out)
	}
	if _, ok := out["trace"]; !ok {
		t.Fatalf("explain missing trace: %v", out)
	}
	lo, hi := out["spread_lo"].(float64), out["spread_hi"].(float64)
	if lo > hi {
		t.Fatalf("inverted spread: %v %v", lo, hi)
	}
}

func TestErrors(t *testing.T) {
	srv, _ := newServer(t)
	for _, tc := range []struct {
		method, path, body string
		wantCode           int
	}{
		{"GET", "/v1/estimate", "", 400},                  // missing q
		{"GET", "/v1/estimate?q=a((", "", 400},            // bad query
		{"GET", "/v1/estimate?q=a&method=bogus", "", 400}, // bad method
		{"GET", "/v1/exact", "", 400},
		{"GET", "/v1/explain", "", 400},
		{"GET", "/v1/nope", "", 404},
		{"POST", "/v1/docs/bad", "<a><b>", 400}, // malformed XML
		{"DELETE", "/v1/docs/missing", "", 404}, // unknown doc
		{"PUT", "/v1/docs/x", "<a/>", 405},      // bad method
		{"POST", "/v1/docs/..", "<a/>", 400},    // bad name
	} {
		code, out := do(t, tc.method, srv.URL+tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s %s: code %d (%v), want %d", tc.method, tc.path, code, out, tc.wantCode)
		}
		if _, ok := out["error"]; !ok && code >= 400 {
			t.Errorf("%s %s: error response missing error field: %v", tc.method, tc.path, out)
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/estimate?q=laptop(brand)")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
}

func TestEstimateCaching(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	_, out := do(t, "GET", srv.URL+"/v1/stats", "")
	if out["cache_hits"].(float64) < 1 {
		t.Fatalf("no cache hits recorded: %v", out)
	}
	// A mutation invalidates: estimates change after a second document.
	do(t, "POST", srv.URL+"/v1/docs/sample2", doc)
	_, est := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)", "")
	if est["estimate"].(float64) != 4 {
		t.Fatalf("post-invalidation estimate = %v, want 4", est["estimate"])
	}
}
