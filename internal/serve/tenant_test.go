package serve

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/fleet"
	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

// writeFleetTenant materializes a tenant under root: nShards snapshot
// files (or a single summary.tlat) over a small deterministic forest
// labeled l0..l3.
func writeFleetTenant(t *testing.T, root, name string, nShards int) {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	dict, ids := treetest.Alphabet(4)
	rng := rand.New(rand.NewSource(42))
	trees := make([]*labeltree.Tree, 6)
	for i := range trees {
		trees[i] = treetest.RandomTree(rng, 14, ids, dict)
	}
	write := func(path string, group []*labeltree.Tree) {
		sum, err := core.BuildForestContext(context.Background(), group, core.BuildOptions{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := sum.WriteTo(f); err != nil {
			t.Fatal(err)
		}
	}
	if nShards == 1 {
		write(filepath.Join(dir, fleet.SummaryFile), trees)
		return
	}
	for s := 0; s < nShards; s++ {
		var group []*labeltree.Tree
		for i, tree := range trees {
			if i%nShards == s {
				group = append(group, tree)
			}
		}
		write(filepath.Join(dir, fleet.ShardFile(s)), group)
	}
}

// newFleetServer builds a server whose corpus holds the sample doc and
// whose fleet root holds tenants "acme" (2 shards) and "solo" (single).
func newFleetServer(t *testing.T, opts Options) (*httptest.Server, *Handler) {
	t.Helper()
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	writeFleetTenant(t, root, "acme", 2)
	writeFleetTenant(t, root, "solo", 1)
	opts.Fleet = fleet.NewRegistry(fleet.RegistryOptions{Root: root, MaxResident: 4})
	h := NewHandlerOptions(c, opts)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	srv, _ := newServer(t)
	code, out := do(t, "GET", srv.URL+"/v1/healthz", "")
	if code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, out)
	}
	code, out = do(t, "GET", srv.URL+"/v1/readyz", "")
	if code != http.StatusOK || out["status"] != "ready" {
		t.Fatalf("readyz: %d %v", code, out)
	}
}

func TestReadyzSaturatedLimiter(t *testing.T) {
	srv, h := newFleetServer(t, Options{Resilience: ResilienceOptions{
		AdmissionLimit: 1,
		AdmissionQueue: 1,
		QueueWait:      200 * time.Millisecond,
	}})
	// Fill the run slot, then park a second caller in the queue: the
	// limiter is saturated until the queue wait expires.
	if err := h.limiter.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer h.limiter.Release()
	release := make(chan struct{})
	go func() {
		defer close(release)
		_ = h.limiter.Acquire(context.Background())
	}()
	deadline := time.Now().Add(time.Second)
	sawNotReady := false
	for time.Now().Before(deadline) && !sawNotReady {
		code, out := do(t, "GET", srv.URL+"/v1/readyz", "")
		if code == http.StatusServiceUnavailable {
			if out["code"] != "not_ready" {
				t.Fatalf("readyz envelope: %v", out)
			}
			sawNotReady = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-release
	if !sawNotReady {
		t.Fatal("saturated limiter never turned readyz 503")
	}
	// healthz stays 200 throughout: liveness is not readiness.
	if code, _ := do(t, "GET", srv.URL+"/v1/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", code)
	}
}

func TestTenantRoutes(t *testing.T) {
	srv, _ := newFleetServer(t, Options{})

	// Sharded tenant answers with shard accounting.
	code, out := do(t, "GET", srv.URL+"/v1/t/acme/estimate?q=l0(l1)&method=fix-sized", "")
	if code != http.StatusOK {
		t.Fatalf("acme estimate: %d %v", code, out)
	}
	if out["tenant"] != "acme" || out["method"] != "fix-sized" {
		t.Fatalf("acme envelope: %v", out)
	}
	if out["shards_total"] != 2.0 || out["shards_answered"] != 2.0 {
		t.Fatalf("acme shard accounting: %v", out)
	}
	if _, ok := out["degraded"]; ok {
		t.Fatalf("healthy fleet marked degraded: %v", out)
	}

	// Single-summary tenant: no shard accounting on the wire.
	code, out = do(t, "GET", srv.URL+"/v1/t/solo/estimate?q=l0(l1)", "")
	if code != http.StatusOK || out["tenant"] != "solo" {
		t.Fatalf("solo estimate: %d %v", code, out)
	}
	if _, ok := out["shards_total"]; ok {
		t.Fatalf("single tenant leaked shard fields: %v", out)
	}

	// Unknown label estimates to exactly zero, as on the legacy route.
	code, out = do(t, "GET", srv.URL+"/v1/t/acme/estimate?q=nosuchlabel", "")
	if code != http.StatusOK || out["estimate"] != 0.0 {
		t.Fatalf("unknown label: %d %v", code, out)
	}

	// Unknown tenant and invalid names map to the envelope.
	code, out = do(t, "GET", srv.URL+"/v1/t/ghost/estimate?q=l0", "")
	if code != http.StatusNotFound || out["code"] != "unknown_tenant" {
		t.Fatalf("unknown tenant: %d %v", code, out)
	}
	code, out = do(t, "GET", srv.URL+"/v1/t/..%2Fescape/estimate?q=l0", "")
	if code != http.StatusBadRequest || out["code"] != "bad_tenant" {
		t.Fatalf("traversal name: %d %v", code, out)
	}

	// The default tenant is the live corpus: same answer as the legacy
	// route, by name.
	if code, _ := do(t, "POST", srv.URL+"/v1/docs/sample", doc); code != http.StatusCreated {
		t.Fatal("seeding corpus")
	}
	_, legacy := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)&method=recursive", "")
	code, byName := do(t, "GET", srv.URL+"/v1/t/default/estimate?q=laptop(brand)&method=recursive", "")
	if code != http.StatusOK || byName["estimate"] != legacy["estimate"] {
		t.Fatalf("default tenant diverged from legacy route: %v vs %v", byName, legacy)
	}

	// Tenant stats and the registry listing.
	code, out = do(t, "GET", srv.URL+"/v1/t/acme/stats", "")
	if code != http.StatusOK || out["shards"] != 2.0 || out["requests"].(float64) < 1 {
		t.Fatalf("acme stats: %d %v", code, out)
	}
	if out["backend"] != "shards" || out["resident_bytes"].(float64) <= 0 {
		t.Fatalf("acme stats backend accounting: %v", out)
	}
	code, out = do(t, "GET", srv.URL+"/v1/tenants", "")
	if code != http.StatusOK || out["default"] != DefaultTenant {
		t.Fatalf("tenants: %d %v", code, out)
	}
	resident, ok := out["resident"].([]any)
	if !ok || len(resident) < 2 {
		t.Fatalf("resident listing: %v", out)
	}
	shapes, ok := out["tenants"].(map[string]any)
	if !ok {
		t.Fatalf("tenants listing has no per-tenant shapes: %v", out)
	}
	acmeShape, ok := shapes["acme"].(map[string]any)
	if !ok || acmeShape["backend"] != "shards" || acmeShape["resident_bytes"].(float64) <= 0 {
		t.Fatalf("acme shape: %v", shapes)
	}
	defShape, ok := shapes[DefaultTenant].(map[string]any)
	if !ok || defShape["backend"] != "map" {
		t.Fatalf("default tenant shape: %v", shapes)
	}

	// /v1/stats gains the per-tenant section without touching the flat
	// fields loadbench scrapes.
	code, out = do(t, "GET", srv.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	for _, flat := range []string{"cache_hits", "endpoints", "resilience", "subcache"} {
		if _, ok := out[flat]; !ok {
			t.Fatalf("stats lost flat field %q", flat)
		}
	}
	tenants, ok := out["tenants"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no tenants section: %v", out)
	}
	acme, ok := tenants["acme"].(map[string]any)
	if !ok || acme["requests"].(float64) < 1 {
		t.Fatalf("tenants section: %v", tenants)
	}
	if acme["backend"] != "shards" || acme["resident_bytes"].(float64) <= 0 {
		t.Fatalf("tenants section backend accounting: %v", acme)
	}
	if out["backend"] != "map" || out["resident_bytes"].(float64) <= 0 {
		t.Fatalf("stats backend accounting: backend=%v resident_bytes=%v",
			out["backend"], out["resident_bytes"])
	}
	if _, ok := out["fleet"]; !ok {
		t.Fatalf("stats has no fleet registry section")
	}
}

func TestTenantQuota(t *testing.T) {
	srv, h := newFleetServer(t, Options{Resilience: ResilienceOptions{TenantQuota: 1}})
	// Occupy acme's only quota slot directly, then watch the route shed
	// — and other tenants stay unaffected.
	if !h.quota.Acquire("acme") {
		t.Fatal("priming quota")
	}
	code, out := do(t, "GET", srv.URL+"/v1/t/acme/estimate?q=l0", "")
	if code != http.StatusTooManyRequests || out["code"] != "shed" {
		t.Fatalf("quota shed: %d %v", code, out)
	}
	if code, _ := do(t, "GET", srv.URL+"/v1/t/solo/estimate?q=l0", ""); code != http.StatusOK {
		t.Fatalf("other tenant affected by acme quota: %d", code)
	}
	h.quota.Release("acme")
	if code, _ := do(t, "GET", srv.URL+"/v1/t/acme/estimate?q=l0", ""); code != http.StatusOK {
		t.Fatalf("released quota still shedding: %d", code)
	}
	// The shed is visible per tenant in /v1/stats.
	_, stats := do(t, "GET", srv.URL+"/v1/stats", "")
	acme := stats["tenants"].(map[string]any)["acme"].(map[string]any)
	if acme["shed"].(float64) != 1 {
		t.Fatalf("tenant shed counter: %v", acme)
	}
}

// TestTenantReloadEndpoint: POST /v1/t/{tenant}/reload swaps in the
// tenant's current on-disk snapshots and rolls the cache scope, so the
// next estimate reflects the new data instead of a stale cached answer.
func TestTenantReloadEndpoint(t *testing.T) {
	srv, h := newFleetServer(t, Options{})

	// Warm the tenant and its query cache.
	code, out := do(t, "GET", srv.URL+"/v1/t/solo/estimate?q=l0(l1)", "")
	if code != http.StatusOK {
		t.Fatalf("estimate: %d %v", code, out)
	}
	before := out["estimate"].(float64)
	do(t, "GET", srv.URL+"/v1/t/solo/estimate?q=l0(l1)", "") // cache it

	code, out = do(t, "POST", srv.URL+"/v1/t/solo/reload", "")
	if code != http.StatusOK || out["reloaded"] != true {
		t.Fatalf("reload: %d %v", code, out)
	}
	gen := out["generation"].(float64)
	if gen < 2 {
		t.Fatalf("generation after reload: %v", out)
	}
	if g := h.flt.Generation("solo"); g != uint64(gen) {
		t.Fatalf("endpoint generation %v != registry %d", gen, g)
	}

	// Same snapshot files, so the answer is unchanged — but it must be
	// recomputed under the new scope, not replayed from the old cache.
	code, out = do(t, "GET", srv.URL+"/v1/t/solo/estimate?q=l0(l1)", "")
	if code != http.StatusOK || out["estimate"].(float64) != before {
		t.Fatalf("estimate after reload: %d %v (want %v)", code, out, before)
	}

	// Stats surface the scope discriminator.
	code, out = do(t, "GET", srv.URL+"/v1/t/solo/stats", "")
	if code != http.StatusOK {
		t.Fatalf("tenant stats: %d %v", code, out)
	}
	if out["epoch"].(float64) != gen {
		t.Fatalf("tenant stats epoch %v != generation %v", out["epoch"], gen)
	}

	// Unknown tenants and bad methods keep their envelopes.
	code, out = do(t, "POST", srv.URL+"/v1/t/nosuch/reload", "")
	if code != http.StatusNotFound || out["code"] != "unknown_tenant" {
		t.Fatalf("reload unknown: %d %v", code, out)
	}
	code, _ = do(t, "GET", srv.URL+"/v1/t/solo/reload", "")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d", code)
	}
}
