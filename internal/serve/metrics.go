package serve

import (
	"net/http"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/estimate"
	"treelattice/internal/obs"
)

// routeMetrics is one endpoint's pre-registered metric handles. All hot
// path updates are atomic operations on these pointers; nothing is looked
// up per request.
type routeMetrics struct {
	requests *obs.Counter
	status   [6]*obs.Counter // status[i] counts (i)xx responses; 0,1 unused
	latency  *obs.Histogram
}

func newRouteMetrics(reg *obs.Registry, route string) *routeMetrics {
	m := &routeMetrics{
		requests: reg.Counter("http." + route + ".requests"),
		latency:  reg.Histogram("http."+route+".latency_seconds", nil),
	}
	for _, class := range []int{2, 3, 4, 5} {
		m.status[class] = reg.Counter("http." + route + ".status." +
			string(rune('0'+class)) + "xx")
	}
	return m
}

// statusWriter captures the response status for the status-class counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint handler with request counting, status
// classification, an in-flight gauge, and a latency histogram, and
// remembers the route for the stats summary.
func (h *Handler) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	m := newRouteMetrics(h.reg, route)
	h.routes[route] = m
	return func(w http.ResponseWriter, r *http.Request) {
		h.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		fn(sw, r)
		h.inFlight.Add(-1)
		m.requests.Inc()
		if class := sw.status / 100; class >= 2 && class <= 5 {
			m.status[class].Inc()
		}
		m.latency.ObserveSince(start)
	}
}

// metrics serves the full registry snapshot.
func (h *Handler) metricsEndpoint(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, h.reg.Snapshot())
}

// endpointSummary is the operator's one-stop view of an endpoint inside
// /v1/stats: totals plus headline latency quantiles in milliseconds.
type endpointSummary struct {
	Requests uint64  `json:"requests"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// endpointSummaries condenses the per-route metrics for /v1/stats.
func (h *Handler) endpointSummaries() map[string]endpointSummary {
	out := make(map[string]endpointSummary, len(h.routes))
	for route, m := range h.routes {
		s := m.latency.Snapshot()
		out[route] = endpointSummary{
			Requests: m.requests.Value(),
			P50ms:    s.P50 * 1e3,
			P95ms:    s.P95 * 1e3,
			P99ms:    s.P99 * 1e3,
		}
	}
	return out
}

// instrumentCorpus wires the corpus-side metrics: qcache hit/miss/eviction
// counters and per-method estimate latency histograms.
func (h *Handler) instrumentCorpus() {
	h.cache.Instrument(
		h.reg.Counter("qcache.hits"),
		h.reg.Counter("qcache.misses"),
		h.reg.Counter("qcache.evictions"),
	)
	registered := h.c.Summary().Registry().Methods()
	hists := make(map[core.Method]*obs.Histogram, len(registered))
	for _, m := range registered {
		hists[m] = h.reg.Histogram("estimate."+string(m)+".latency_seconds", nil)
	}
	// Mirror each decomposition method's sub-estimate cache into the
	// registry so /v1/metrics shows which estimator's workload shares
	// structure. Only the decomposition methods keep sub-caches; the
	// sampling, markov, and sketch backends have none to report. The
	// creation hook (rather than eager SubCache calls) makes the wiring
	// survive epoch swaps: every published epoch builds fresh per-epoch
	// sub-caches, inherits the hook, and instruments them with the same
	// registry counters — which are deduplicated by name, so the series
	// accumulate across epochs.
	h.c.Summary().OnSubCacheCreate(func(m core.Method, c *estimate.SubCache) {
		c.Instrument(
			h.reg.Counter("subcache."+string(m)+".hits"),
			h.reg.Counter("subcache."+string(m)+".misses"),
			h.reg.Counter("subcache."+string(m)+".evictions"),
		)
	})
	for _, m := range core.Methods() {
		h.c.Summary().SubCache(m) // create now; creation fires the hook
	}
	h.c.Summary().Instrument(func(m core.Method, d time.Duration) {
		if hist, ok := hists[m]; ok {
			hist.ObserveDuration(d)
		}
	})
}
