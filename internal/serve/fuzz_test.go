package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"treelattice/internal/corpus"
)

// FuzzQueryEndpoint throws arbitrary query strings and parameter
// combinations at /v1/query, both as GET parameters and as a raw POST
// body. The invariants: no panic, never a 5xx, and every response body
// is the JSON envelope. The parser guards (maxParseNodes,
// maxParseDepth) are what keep adversarial inputs like deep
// "a(a(a(..." nests from exhausting the stack.
func FuzzQueryEndpoint(f *testing.F) {
	c, err := corpus.Create(f.TempDir(), corpus.Options{K: 3})
	if err != nil {
		f.Fatal(err)
	}
	if err := c.AddXMLContext(context.Background(), "sample", strings.NewReader(doc)); err != nil {
		f.Fatal(err)
	}
	h := NewHandler(c)

	f.Add("//laptop(brand,price)", uint8(1), false, false)
	f.Add("laptop", uint8(0), true, true)
	f.Add("//a(b,//c(d))", uint8(200), false, true)
	f.Add("a((", uint8(3), true, false)
	f.Add(strings.Repeat("a(", 64), uint8(0), false, false)
	f.Add(`{"q":"//laptop","limit":5}`, uint8(0), false, false)

	f.Fuzz(func(t *testing.T, q string, limit uint8, naive, count bool) {
		v := url.Values{"q": {q}}
		if limit > 0 {
			v.Set("limit", strconv.Itoa(int(limit)))
		}
		if naive {
			v.Set("naive", "1")
		}
		if count {
			v.Set("count", "1")
		}
		for _, req := range []*httptest.ResponseRecorder{
			serveOnce(h, "GET", "/v1/query?"+v.Encode(), ""),
			serveOnce(h, "POST", "/v1/query", q),
		} {
			if req.Code >= 500 {
				t.Fatalf("5xx for q=%q: %d %s", q, req.Code, req.Body.String())
			}
			var out map[string]any
			if err := json.Unmarshal(req.Body.Bytes(), &out); err != nil {
				t.Fatalf("non-JSON response for q=%q: %v: %s", q, err, req.Body.String())
			}
		}
	})
}

func serveOnce(h *Handler, method, target, body string) *httptest.ResponseRecorder {
	var r *strings.Reader
	if body == "" {
		r = strings.NewReader("")
	} else {
		r = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, r)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}
