// Package serve exposes a corpus over HTTP, stdlib only — the service
// shape a query optimizer or interactive UI calls into.
//
// Endpoints (JSON unless noted):
//
//	GET    /v1/estimate?q=<twig>&method=<name>  estimated selectivity
//	GET    /v1/exact?q=<twig>                   exact count (scans documents)
//	GET    /v1/explain?q=<twig>                 estimate + trace + spread interval
//	GET    /v1/stats                            summary and corpus statistics
//	POST   /v1/docs/{name}                      add a document (XML body)
//	DELETE /v1/docs/{name}                      remove a document
//
// Queries use the twig syntax ("a(b,c(d))"). Estimation methods:
// recursive, recursive+voting (default), fix-sized.
//
// Every error response carries the JSON envelope
//
//	{"error": <message>, "code": <machine-readable code>}
//
// with codes: bad_query, unknown_method, bad_document, too_large,
// exists, not_found, method_not_allowed, canceled, internal.
//
// Document uploads are mined into a private shard lattice and merged
// into the live summary incrementally — a POST never triggers a full
// rebuild — and the mine is bounded by the request context, so a client
// disconnect abandons the work without mutating the corpus.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/estimate"
	"treelattice/internal/obs"
	"treelattice/internal/qcache"
)

// MaxDocumentBytes bounds uploaded document size; larger bodies get 413.
const MaxDocumentBytes = 64 << 20

// Options configures the handler.
type Options struct {
	// Workers bounds the parallelism of upload mining (0 = GOMAXPROCS).
	Workers int
	// MaxDocumentBytes overrides the upload size limit (0 = the
	// MaxDocumentBytes constant).
	MaxDocumentBytes int64
	// Registry receives the handler's metrics; nil creates a private one.
	// Sharing a registry lets an embedding process (the loadbench driver,
	// a debug listener) read the same counters the handler writes.
	Registry *obs.Registry
}

// Handler serves a corpus. Reads take the read lock; document mutations
// serialize on the write lock and invalidate the estimate cache.
type Handler struct {
	mu       sync.RWMutex
	c        *corpus.Corpus
	cache    *qcache.Cache
	mux      *http.ServeMux
	maxBytes int64

	reg      *obs.Registry
	inFlight *obs.Gauge
	routes   map[string]*routeMetrics
}

// NewHandler wraps a corpus with default options.
func NewHandler(c *corpus.Corpus) *Handler {
	return NewHandlerOptions(c, Options{})
}

// NewHandlerOptions wraps a corpus.
func NewHandlerOptions(c *corpus.Corpus, opts Options) *Handler {
	if opts.Workers > 0 {
		c.SetWorkers(opts.Workers)
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	h := &Handler{
		c:        c,
		cache:    qcache.New(4096),
		maxBytes: opts.MaxDocumentBytes,
		reg:      reg,
		inFlight: reg.Gauge("http.in_flight"),
		routes:   make(map[string]*routeMetrics),
	}
	if h.maxBytes <= 0 {
		h.maxBytes = MaxDocumentBytes
	}
	h.instrumentCorpus()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/estimate", h.instrument("estimate", h.estimate))
	mux.HandleFunc("GET /v1/exact", h.instrument("exact", h.exact))
	mux.HandleFunc("GET /v1/explain", h.instrument("explain", h.explain))
	mux.HandleFunc("GET /v1/stats", h.instrument("stats", h.stats))
	mux.HandleFunc("GET /v1/metrics", h.instrument("metrics", h.metricsEndpoint))
	mux.HandleFunc("POST /v1/docs/{name}", h.instrument("doc_add", h.addDoc))
	mux.HandleFunc("DELETE /v1/docs/{name}", h.instrument("doc_remove", h.removeDoc))
	// Method-less fallbacks: a matching path with the wrong verb gets the
	// JSON envelope instead of the mux's plain-text 405. They share one
	// "other" metric with the 404 fallback: per-endpoint histograms are
	// for traffic that reached an endpoint.
	other := func(fn http.HandlerFunc) http.HandlerFunc { return h.instrument("other", fn) }
	mux.HandleFunc("/v1/estimate", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/exact", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/explain", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/stats", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/metrics", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/docs/{name}", other(methodNotAllowed("POST, DELETE")))
	mux.HandleFunc("/", other(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint")
	}))
	h.mux = mux
	return h
}

// Metrics exposes the handler's registry (shared with Options.Registry
// when one was supplied).
func (h *Handler) Metrics() *obs.Registry { return h.reg }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) method(r *http.Request) core.Method {
	m := r.URL.Query().Get("method")
	if m == "" {
		return core.MethodRecursiveVoting
	}
	return core.Method(m)
}

func (h *Handler) estimate(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	method := h.method(r)
	h.mu.RLock()
	defer h.mu.RUnlock()
	sum := h.c.Summary()
	estimator, err := sum.Estimator(method)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	q, err := sum.ParseQuery(qs)
	if errors.Is(err, core.ErrUnknownLabel) {
		// A label no document has ever carried cannot match: the true
		// selectivity is exactly zero.
		writeJSON(w, map[string]any{"query": qs, "estimate": 0.0})
		return
	}
	if err != nil {
		writeCoreError(w, err)
		return
	}
	est := h.cache.GetOrCompute(string(method), q, func() float64 {
		return estimator.Estimate(q)
	})
	writeJSON(w, map[string]any{"query": qs, "estimate": est})
}

func (h *Handler) exact(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	q, err := h.c.Summary().ParseQuery(qs)
	if errors.Is(err, core.ErrUnknownLabel) {
		writeJSON(w, map[string]any{"query": qs, "count": int64(0)})
		return
	}
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, map[string]any{"query": qs, "count": h.c.ExactCount(q)})
}

func (h *Handler) explain(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	sum := h.c.Summary()
	q, err := sum.ParseQuery(qs)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	est, trace, err := sum.EstimateWithTrace(q, core.MethodRecursiveVoting)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	iv := sum.EstimateInterval(q)
	writeJSON(w, explainResponse{
		Query:    qs,
		Estimate: est,
		Trace:    trace,
		SpreadLo: iv.Lo,
		SpreadHi: iv.Hi,
	})
}

type explainResponse struct {
	Query    string         `json:"query"`
	Estimate float64        `json:"estimate"`
	Trace    estimate.Trace `json:"trace"`
	SpreadLo float64        `json:"spread_lo"`
	SpreadHi float64        `json:"spread_hi"`
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.c.Summary()
	hits, misses, evictions, size := h.cache.Stats()
	resp := map[string]any{
		"k":               s.K(),
		"patterns":        s.Patterns(),
		"bytes":           s.SizeBytes(),
		"documents":       h.c.Docs(),
		"cache_hits":      hits,
		"cache_misses":    misses,
		"cache_evictions": evictions,
		"cache_size":      size,
		"cache_hit_ratio": h.cache.HitRatio(),
		"workers":         h.c.Workers(),
		// One-stop obs summary: per-endpoint totals and latency quantiles,
		// plus current concurrency, without scraping /v1/metrics.
		"endpoints": h.endpointSummaries(),
		"in_flight": h.inFlight.Value(),
	}
	if t := h.c.BuildTimings(); t != nil {
		resp["last_build_ms"] = t.Millis()
	}
	writeJSON(w, resp)
}

func (h *Handler) addDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, h.maxBytes)
	h.mu.Lock()
	err := h.c.AddXMLContext(r.Context(), name, body)
	if err == nil {
		h.cache.Invalidate()
	}
	h.mu.Unlock()
	if err != nil {
		writeCorpusError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{"added": name})
}

func (h *Handler) removeDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	h.mu.Lock()
	err := h.c.Remove(name)
	if err == nil {
		h.cache.Invalidate()
	}
	h.mu.Unlock()
	if err != nil {
		writeCorpusError(w, err)
		return
	}
	writeJSON(w, map[string]any{"removed": name})
}

func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("use %s", allow))
	}
}

// writeCoreError maps estimation-side errors onto the envelope.
func writeCoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrBadQuery):
		writeError(w, http.StatusBadRequest, "bad_query", err.Error())
	case errors.Is(err, core.ErrUnknownLabel):
		writeError(w, http.StatusBadRequest, "unknown_label", err.Error())
	case errors.Is(err, core.ErrUnknownMethod):
		writeError(w, http.StatusBadRequest, "unknown_method", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	}
}

// writeCorpusError maps document-mutation errors onto the envelope.
func writeCorpusError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("document exceeds %d bytes", tooLarge.Limit))
	case errors.Is(err, corpus.ErrDocExists):
		writeError(w, http.StatusConflict, "exists", err.Error())
	case errors.Is(err, corpus.ErrNoSuchDoc):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// 499 in nginx's vocabulary; stdlib has no constant for it.
		writeError(w, 499, "canceled", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "bad_document", err.Error())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than note it.
		fmt.Println("serve: encoding response:", err)
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}
