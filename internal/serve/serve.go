// Package serve exposes a corpus over HTTP, stdlib only — the service
// shape a query optimizer or interactive UI calls into.
//
// Endpoints (JSON unless noted):
//
//	GET    /v1/estimate?q=<twig>&method=<name>  estimated selectivity
//	POST   /v1/estimate/batch                   many estimates in one call
//	GET    /v1/methods                          registered estimators + capabilities
//	GET    /v1/exact?q=<twig>                   exact count (scans documents)
//	GET    /v1/query?q=<twig>&limit=<n>         execute a twig query, return matches
//	POST   /v1/query                            same, JSON body {"q": ..., "limit": ...}
//	GET    /v1/explain?q=<twig>                 estimate + trace + spread interval
//	GET    /v1/stats                            summary and corpus statistics
//	POST   /v1/docs/{name}                      add a document (XML body)
//	DELETE /v1/docs/{name}                      remove a document
//	GET    /v1/t/{tenant}/estimate              estimate against a named tenant
//	GET    /v1/t/{tenant}/query                 execute a query against a named tenant
//	GET    /v1/t/{tenant}/stats                 per-tenant statistics
//	POST   /v1/t/{tenant}/reload                hot-swap a tenant's new snapshot epoch
//	GET    /v1/tenants                          resident tenants + registry stats
//	GET    /v1/healthz                          liveness probe
//	GET    /v1/readyz                           readiness probe (503 when not ready)
//
// Multi-tenant serving (see internal/fleet): Options.Fleet supplies a
// registry of named tenants loaded lazily from frozen snapshots; the
// legacy routes answer as the default tenant. A sharded tenant scatters
// each estimate across its shard summaries and gathers one combined
// answer — bit-identical to a single merged summary when every shard
// answers, and a degraded partial answer (shards_answered <
// shards_total) when one misses its deadline. Tenant routes sit behind
// per-tenant admission quotas (Resilience.TenantQuota); the whole-query
// cache is scoped by (tenant, epoch), so tenants never share entries
// and POST /v1/t/{tenant}/reload (or an ingest epoch swap) invalidates
// only the affected scope.
//
// Queries use the twig syntax ("a(b,c(d))"). Estimation methods resolve
// through the core registry (GET /v1/methods lists them): the paper's
// recursive, recursive+voting (default), and fix-sized decompositions,
// plus markov, treesketches, sampling, and ensemble. An ensemble answer
// carries its sampling cross-check verdict (cross_estimate, divergence,
// divergent) when the check completed.
//
// Every error response carries the JSON envelope
//
//	{"error": <message>, "code": <machine-readable code>}
//
// with codes: bad_query, unknown_method, method_unavailable,
// budget_exhausted, bad_document, too_large, batch_too_large, exists,
// not_found, frozen, ingest_backpressure, ingest_active,
// method_not_allowed, canceled, shed, deadline_exceeded, internal,
// bad_tenant, unknown_tenant, no_shards, not_ready, reload_failed,
// no_documents.
//
// GET/POST /v1/query executes a twig query (extended axis syntax, so
// descendant steps like "//a(b,//c)" work) against the corpus documents
// through the label-region-indexed twig-join executor. The bind order
// comes from the planner consulting the serving estimator
// (method=<name> picks it, naive=1 skips planning for the
// stored-numbering baseline); limit caps materialized match tuples
// (count stays exact past it), count=1 suppresses tuples entirely, and
// a blown node budget returns the partial count marked degraded. Every
// planned execution records measured/predicted candidates in the
// query.calibration_ratio histogram surfaced under /v1/stats' "query"
// section — the cost model's live validation signal.
//
// POST /v1/estimate/batch accepts {"queries": [...], "method": <name>}
// (up to MaxBatchQueries queries) and answers positionally with per-item
// envelopes: one unparseable query fails alone, not the batch. A batch
// entry may also be an object {"q": <twig>, "method": <name>} overriding
// the batch-level method for that item; every item's envelope echoes the
// method that answered it. The whole
// batch occupies a single admission slot and fans out across a worker
// pool sharing the summary's sub-estimate cache, so structurally
// overlapping queries decompose shared sub-twigs once.
//
// Document uploads are mined into a private shard lattice and merged
// into the live summary incrementally — a POST never triggers a full
// rebuild — and the mine is bounded by the request context, so a client
// disconnect abandons the work without mutating the corpus.
//
// Resilience (see Options.Resilience and internal/resilience): the
// work-bearing endpoints sit behind admission control (shed requests get
// 429 + Retry-After), per-endpoint deadline budgets (blown budgets get 504,
// or a cheaper degraded estimate when a fallback method exists), and panic
// recovery (500 instead of a process death). /v1/stats and /v1/metrics stay
// ungated so operators can observe an overloaded server.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/estimate"
	"treelattice/internal/fleet"
	"treelattice/internal/labeltree"
	"treelattice/internal/metrics"
	"treelattice/internal/obs"
	"treelattice/internal/qcache"
	"treelattice/internal/resilience"
)

// MaxDocumentBytes bounds uploaded document size; larger bodies get 413.
const MaxDocumentBytes = 64 << 20

// Backend is the corpus surface the handler serves. *corpus.Corpus is the
// production implementation; internal/faultinject wraps one with injectable
// latency, errors, and panics for resilience testing.
type Backend interface {
	Summary() *core.Summary
	Docs() []string
	Workers() int
	SetWorkers(n int)
	BuildTimings() *metrics.BuildTimings
	ExactCountContext(ctx context.Context, q labeltree.Pattern) (int64, error)
	AddXMLContext(ctx context.Context, name string, r io.Reader) error
	Remove(name string) error
	// Ingesting reports whether the zero-downtime ingest pipeline is
	// active; IngestStats snapshots its counters (all zeros when it is
	// not). With ingest active, document adds publish new epochs instead
	// of mutating the serving summary, so the handler takes only the read
	// lock and skips cache invalidation — epoch-scoped cache keys make
	// stale entries unreachable.
	Ingesting() bool
	IngestStats() core.IngestStats
}

var _ Backend = (*corpus.Corpus)(nil)

// ResilienceOptions configures admission control, deadline budgets, and
// graceful degradation. The zero value disables all of it, preserving the
// pre-resilience behavior for embedded and test use.
type ResilienceOptions struct {
	// AdmissionLimit bounds how many work-bearing requests (estimate,
	// exact, explain, document mutations) run concurrently; excess load
	// queues briefly and is then shed with 429 + Retry-After. Zero
	// disables admission control.
	AdmissionLimit int
	// AdmissionQueue bounds the burst-absorbing wait queue
	// (default 2×AdmissionLimit).
	AdmissionQueue int
	// QueueWait bounds how long a queued request waits before being shed
	// (default 100ms).
	QueueWait time.Duration
	// RetryAfter is the Retry-After hint on shed responses (default 1s).
	RetryAfter time.Duration
	// EstimateBudget is the deadline for /v1/estimate and /v1/explain.
	// Zero means no deadline.
	EstimateBudget time.Duration
	// ExactBudget is the deadline for /v1/exact (the expensive
	// Definition-1 full-document scan). Zero means no deadline.
	ExactBudget time.Duration
	// BuildBudget is the deadline for POST /v1/docs (parse + mine +
	// merge). Zero means no deadline.
	BuildBudget time.Duration
	// QueryBudget is the deadline for /v1/query (plan + indexed twig
	// execution across the corpus). Zero means no deadline.
	QueryBudget time.Duration
	// QueryNodeBudget bounds the candidate nodes one /v1/query execution
	// may visit across the whole corpus scan; an exhausted budget returns
	// the partial count marked degraded instead of failing. Zero means
	// unlimited.
	QueryNodeBudget int64
	// DisableFallback turns off graceful degradation: an estimate that
	// blows its budget returns 504 instead of falling back to a cheaper
	// method.
	DisableFallback bool
	// TenantQuota bounds concurrent in-flight estimates per tenant on
	// the tenant routes, on top of the global admission limit: the
	// limiter decides whether the server has capacity, the quota decides
	// whether one tenant may monopolize it. Zero disables quotas.
	TenantQuota int
	// ShardTimeout bounds each shard's responsiveness probe on sharded
	// tenants; a shard that misses it is excluded from that estimate and
	// the answer degrades to the responders. Zero means probes run under
	// the request deadline alone.
	ShardTimeout time.Duration
}

// Options configures the handler.
type Options struct {
	// Workers bounds the parallelism of upload mining (0 = GOMAXPROCS).
	Workers int
	// MaxDocumentBytes overrides the upload size limit (0 = the
	// MaxDocumentBytes constant).
	MaxDocumentBytes int64
	// Registry receives the handler's metrics; nil creates a private one.
	// Sharing a registry lets an embedding process (the loadbench driver,
	// a debug listener) read the same counters the handler writes.
	Registry *obs.Registry
	// Resilience configures admission control, deadlines, and
	// degradation. Zero value: all off.
	Resilience ResilienceOptions
	// Fleet is the multi-tenant registry behind the /v1/t/{tenant}/*
	// routes; nil serves only the default tenant (the corpus). The
	// registry loads tenants lazily from frozen snapshots and keeps an
	// LRU of resident ones.
	Fleet *fleet.Registry
	// DefaultTenant names the live corpus on the tenant routes — the
	// legacy routes and /v1/t/<DefaultTenant>/estimate answer from the
	// same summary. Empty means DefaultTenant ("default").
	DefaultTenant string
	// Logf receives panic-recovery log lines; nil means no logging.
	Logf func(format string, args ...any)
}

// Handler serves a corpus. Reads take the read lock; document mutations
// serialize on the write lock and invalidate the estimate cache.
type Handler struct {
	mu       sync.RWMutex
	c        Backend
	cache    *qcache.Cache
	mux      *http.ServeMux
	maxBytes int64
	res      ResilienceOptions

	flt           *fleet.Registry
	defaultTenant string
	quota         *resilience.QuotaSet
	tenantMu      sync.Mutex
	tenantStats   map[string]*tenantMetrics

	reg               *obs.Registry
	inFlight          *obs.Gauge
	epochG            *obs.Gauge
	deltaDocsG        *obs.Gauge
	deltaBytesG       *obs.Gauge
	routes            map[string]*routeMetrics
	limiter           *resilience.Limiter
	panics            *obs.Counter
	degraded          *obs.Counter
	timeouts          *obs.Counter
	batchSizes        *obs.Histogram
	ensembleChecked   *obs.Counter
	ensembleDivergent *obs.Counter

	queries          *obs.Counter
	queryDegradedC   *obs.Counter
	queryCandidates  *obs.Counter
	queryCalibration *obs.Histogram
}

// NewHandler wraps a corpus with default options.
func NewHandler(c Backend) *Handler {
	return NewHandlerOptions(c, Options{})
}

// NewHandlerOptions wraps a corpus.
func NewHandlerOptions(c Backend, opts Options) *Handler {
	if opts.Workers > 0 {
		c.SetWorkers(opts.Workers)
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	defTenant := opts.DefaultTenant
	if defTenant == "" {
		defTenant = DefaultTenant
	}
	h := &Handler{
		c:             c,
		cache:         qcache.New(4096),
		maxBytes:      opts.MaxDocumentBytes,
		res:           opts.Resilience,
		flt:           opts.Fleet,
		defaultTenant: defTenant,
		quota:         resilience.NewQuotaSet(opts.Resilience.TenantQuota),
		tenantStats:   make(map[string]*tenantMetrics),
		reg:           reg,
		inFlight:      reg.Gauge("http.in_flight"),
		epochG:        reg.Gauge("ingest.epoch"),
		deltaDocsG:    reg.Gauge("ingest.delta_docs"),
		deltaBytesG:   reg.Gauge("ingest.delta_bytes"),
		routes:        make(map[string]*routeMetrics),
		panics:        reg.Counter("http.panics"),
		degraded:      reg.Counter("estimate.degraded"),
		timeouts:      reg.Counter("http.deadline_exceeded"),
		batchSizes: reg.Histogram("http.estimate_batch.batch_size",
			batchSizeBounds),
		ensembleChecked:   reg.Counter("ensemble.checked"),
		ensembleDivergent: reg.Counter("ensemble.divergent"),
		queries:           reg.Counter("query.executed"),
		queryDegradedC:    reg.Counter("query.degraded"),
		queryCandidates:   reg.Counter("query.candidates"),
		queryCalibration: reg.Histogram("query.calibration_ratio",
			calibrationBounds),
	}
	if h.maxBytes <= 0 {
		h.maxBytes = MaxDocumentBytes
	}
	if h.res.AdmissionLimit > 0 {
		h.limiter = resilience.NewLimiter(resilience.LimiterOptions{
			Limit:     h.res.AdmissionLimit,
			Queue:     h.res.AdmissionQueue,
			QueueWait: h.res.QueueWait,
		})
		h.limiter.Instrument(reg, "resilience")
	}
	h.quota.Instrument(reg, "resilience.tenant_quota")
	h.instrumentCorpus()

	// Middleware assembly, innermost first: the deadline budget must be on
	// the context the handler sees; admission runs before the budget starts
	// ticking (queue wait should not eat into compute time); recovery wraps
	// everything so a panic anywhere inside becomes a 500 + counter.
	recov := resilience.Recover(h.panics, opts.Logf, writeError)
	admit := resilience.Admission(h.limiter, h.res.RetryAfter, writeError)
	guarded := func(budget time.Duration, fn http.HandlerFunc) http.HandlerFunc {
		return recov(admit(resilience.Deadline(budget)(fn)))
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/estimate", h.instrument("estimate", guarded(h.res.EstimateBudget, h.estimate)))
	mux.HandleFunc("POST /v1/estimate/batch", h.instrument("estimate_batch", guarded(h.res.EstimateBudget, h.estimateBatch)))
	mux.HandleFunc("GET /v1/exact", h.instrument("exact", guarded(h.res.ExactBudget, h.exact)))
	mux.HandleFunc("GET /v1/query", h.instrument("query", guarded(h.res.QueryBudget, h.query)))
	mux.HandleFunc("POST /v1/query", h.instrument("query", guarded(h.res.QueryBudget, h.query)))
	mux.HandleFunc("GET /v1/explain", h.instrument("explain", guarded(h.res.EstimateBudget, h.explain)))
	mux.HandleFunc("GET /v1/methods", h.instrument("methods", recov(h.methods)))
	mux.HandleFunc("GET /v1/stats", h.instrument("stats", recov(h.stats)))
	mux.HandleFunc("GET /v1/metrics", h.instrument("metrics", recov(h.metricsEndpoint)))
	mux.HandleFunc("POST /v1/docs/{name}", h.instrument("doc_add", guarded(h.res.BuildBudget, h.addDoc)))
	mux.HandleFunc("DELETE /v1/docs/{name}", h.instrument("doc_remove", guarded(0, h.removeDoc)))
	// Multi-tenant routes: the same estimate pipeline, routed by tenant,
	// through the fleet registry and (for sharded tenants) the
	// scatter-gather front end.
	mux.HandleFunc("GET /v1/t/{tenant}/estimate", h.instrument("tenant_estimate", guarded(h.res.EstimateBudget, h.tenantEstimate)))
	mux.HandleFunc("GET /v1/t/{tenant}/query", h.instrument("tenant_query", guarded(h.res.QueryBudget, h.tenantQuery)))
	mux.HandleFunc("POST /v1/t/{tenant}/query", h.instrument("tenant_query", guarded(h.res.QueryBudget, h.tenantQuery)))
	mux.HandleFunc("GET /v1/t/{tenant}/stats", h.instrument("tenant_stats", recov(h.tenantStatsEndpoint)))
	mux.HandleFunc("POST /v1/t/{tenant}/reload", h.instrument("tenant_reload", guarded(0, h.tenantReload)))
	mux.HandleFunc("GET /v1/tenants", h.instrument("tenants", recov(h.tenantsEndpoint)))
	// Health probes stay outside admission control: a load balancer must
	// be able to ask an overloaded replica how it is doing — readyz
	// reports the saturation instead of queueing behind it.
	mux.HandleFunc("GET /v1/healthz", h.instrument("healthz", recov(h.healthz)))
	mux.HandleFunc("GET /v1/readyz", h.instrument("readyz", recov(h.readyz)))
	// Method-less fallbacks: a matching path with the wrong verb gets the
	// JSON envelope instead of the mux's plain-text 405. They share one
	// "other" metric with the 404 fallback: per-endpoint histograms are
	// for traffic that reached an endpoint.
	other := func(fn http.HandlerFunc) http.HandlerFunc { return h.instrument("other", fn) }
	mux.HandleFunc("/v1/estimate", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/estimate/batch", other(methodNotAllowed("POST")))
	mux.HandleFunc("/v1/methods", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/exact", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/query", other(methodNotAllowed("GET, POST")))
	mux.HandleFunc("/v1/explain", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/stats", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/metrics", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/docs/{name}", other(methodNotAllowed("POST, DELETE")))
	mux.HandleFunc("/v1/t/{tenant}/estimate", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/t/{tenant}/query", other(methodNotAllowed("GET, POST")))
	mux.HandleFunc("/v1/t/{tenant}/stats", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/t/{tenant}/reload", other(methodNotAllowed("POST")))
	mux.HandleFunc("/v1/tenants", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/healthz", other(methodNotAllowed("GET")))
	mux.HandleFunc("/v1/readyz", other(methodNotAllowed("GET")))
	mux.HandleFunc("/", other(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint")
	}))
	h.mux = mux
	return h
}

// Metrics exposes the handler's registry (shared with Options.Registry
// when one was supplied).
func (h *Handler) Metrics() *obs.Registry { return h.reg }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// scopeFor derives the cache scope for an estimate computed against sum.
// When the summary belongs to a published RCU epoch, the epoch ID joins
// the key, so an estimate cached against one epoch can never answer a
// lookup against another — publishing IS the invalidation. Summaries
// outside the ingest pipeline (classic corpora, fleet snapshots) carry
// epoch 0 and rely on DropScope on mutation or reload.
func scopeFor(tenant string, sum *core.Summary) qcache.Scope {
	sc := qcache.Scope{Tenant: tenant}
	if ep, ok := sum.Source().(*core.Epoch); ok {
		sc.Epoch = ep.ID
	}
	return sc
}

func (h *Handler) method(r *http.Request) core.Method {
	m := r.URL.Query().Get("method")
	if m == "" {
		return core.MethodRecursiveVoting
	}
	return core.Method(m)
}

func (h *Handler) estimate(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	method := h.method(r)
	h.mu.RLock()
	defer h.mu.RUnlock()
	sum := h.c.Summary()
	// Validate the method before the query: with an empty corpus every
	// label is unknown, and a bogus method should still 400. LookupMethod
	// checks the registry without preparing the backend.
	if _, err := sum.LookupMethod(method); err != nil {
		writeCoreError(w, err)
		return
	}
	q, err := sum.ParseQuery(qs)
	if errors.Is(err, core.ErrUnknownLabel) {
		// A label no document has ever carried cannot match: the true
		// selectivity is exactly zero.
		writeJSON(w, map[string]any{"query": qs, "estimate": 0.0})
		return
	}
	if err != nil {
		writeCoreError(w, err)
		return
	}
	// Cache lookup under the requested method and the pinned summary's
	// scope; a hit needs no budget. (Cached ensemble answers lose their
	// divergence verdict — only fresh runs cross-check.)
	scope := scopeFor("", sum)
	if est, ok := h.cache.Get(scope, string(method), q); ok {
		writeJSON(w, map[string]any{"query": qs, "estimate": est, "method": string(method)})
		return
	}
	res, err := h.runEstimate(r.Context(), sum, q, method)
	if err != nil {
		h.coreError(w, err)
		return
	}
	// Cache under the method that actually produced the value: a degraded
	// answer must not masquerade as the requested method once pressure
	// subsides.
	h.cache.Put(scope, string(res.Method), q, res.Estimate)
	resp := map[string]any{"query": qs, "estimate": res.Estimate, "method": string(res.Method)}
	if res.Degraded {
		resp["degraded"] = true
	}
	if res.Checked {
		resp["cross_estimate"] = res.CrossEstimate
		resp["divergence"] = res.Divergence
		resp["divergent"] = res.Divergent
	}
	writeJSON(w, resp)
}

// methodCapabilities is one /v1/methods entry: the registered name plus
// the backend's declared capabilities.
type methodCapabilities struct {
	Name string `json:"name"`
	core.Capabilities
}

// methods serves GET /v1/methods: the estimator discovery endpoint,
// driven entirely by the summary's backend registry.
func (h *Handler) methods(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	sum := h.c.Summary()
	list := sum.Registry().Methods()
	out := make([]methodCapabilities, 0, len(list))
	for _, m := range list {
		caps, err := sum.LookupMethod(m)
		if err != nil {
			continue // raced with registry mutation; skip
		}
		out = append(out, methodCapabilities{Name: string(m), Capabilities: caps})
	}
	writeJSON(w, map[string]any{
		"default": string(core.MethodRecursiveVoting),
		"methods": out,
	})
}

// runEstimate evaluates q against sum within the request budget,
// degrading to a cheaper method when the budget expires (unless
// disabled), and accounts ensemble cross-check outcomes. The caller
// passes the summary it already loaded (and derived the cache scope
// from) so the whole request pins one epoch — re-loading here could
// observe a newer one mid-request.
func (h *Handler) runEstimate(ctx context.Context, sum *core.Summary, q labeltree.Pattern, method core.Method) (core.DegradedEstimate, error) {
	run := sum.EstimateDegradable
	if h.res.DisableFallback {
		run = sum.EstimateStrict
	}
	res, err := run(ctx, q, method)
	if err != nil {
		return core.DegradedEstimate{}, err
	}
	if res.Degraded {
		h.degraded.Inc()
	}
	h.observeEnsemble(res)
	return res, nil
}

// observeEnsemble feeds an estimate's cross-check outcome into the obs
// counters behind /v1/stats' ensemble section.
func (h *Handler) observeEnsemble(res core.DegradedEstimate) {
	if !res.Checked {
		return
	}
	h.ensembleChecked.Inc()
	if res.Divergent {
		h.ensembleDivergent.Inc()
	}
}

func (h *Handler) exact(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	q, err := h.c.Summary().ParseQuery(qs)
	if errors.Is(err, core.ErrUnknownLabel) {
		writeJSON(w, map[string]any{"query": qs, "count": int64(0)})
		return
	}
	if err != nil {
		writeCoreError(w, err)
		return
	}
	count, err := h.c.ExactCountContext(r.Context(), q)
	if err != nil {
		h.coreError(w, err)
		return
	}
	writeJSON(w, map[string]any{"query": qs, "count": count})
}

func (h *Handler) explain(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	sum := h.c.Summary()
	q, err := sum.ParseQuery(qs)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	est, trace, err := sum.EstimateWithTrace(q, core.MethodRecursiveVoting)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	iv := sum.EstimateInterval(q)
	writeJSON(w, explainResponse{
		Query:    qs,
		Estimate: est,
		Trace:    trace,
		SpreadLo: iv.Lo,
		SpreadHi: iv.Hi,
	})
}

type explainResponse struct {
	Query    string         `json:"query"`
	Estimate float64        `json:"estimate"`
	Trace    estimate.Trace `json:"trace"`
	SpreadLo float64        `json:"spread_lo"`
	SpreadHi float64        `json:"spread_hi"`
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.c.Summary()
	hits, misses, evictions, size := h.cache.Stats()
	ing := h.syncIngest()
	resp := map[string]any{
		"k":               s.K(),
		"patterns":        s.Patterns(),
		"bytes":           s.SizeBytes(),
		"backend":         s.StoreKind(),
		"resident_bytes":  s.ResidentBytes(),
		"documents":       h.c.Docs(),
		"cache_hits":      hits,
		"cache_misses":    misses,
		"cache_evictions": evictions,
		"cache_size":      size,
		"cache_hit_ratio": h.cache.HitRatio(),
		"workers":         h.c.Workers(),
		// One-stop obs summary: per-endpoint totals and latency quantiles,
		// plus current concurrency, without scraping /v1/metrics.
		"endpoints": h.endpointSummaries(),
		"in_flight": h.inFlight.Value(),
		// Resilience headline: is the server shedding, degrading, timing
		// out, or eating panics right now?
		"resilience": h.resilienceSummary(),
		// Shared sub-estimate cache effectiveness across the estimator
		// worker pool (distinct from the whole-query cache above).
		"subcache": h.subcacheSummary(s),
		// Ensemble cross-check outcomes: how many estimates carried a
		// completed sampling cross-check, and how many of those diverged
		// past the threshold.
		"ensemble": map[string]any{
			"checked":   h.ensembleChecked.Value(),
			"divergent": h.ensembleDivergent.Value(),
		},
		// Batch endpoint traffic shape: are clients batching, and how big?
		"batch": h.batchSummary(),
		// Twig query execution: volume, degradation, and the planner's
		// calibration (measured candidates / predicted candidates).
		"query": h.querySummary(),
		// Per-tenant traffic split (requests, shed, subcache hit ratio);
		// the flat totals above are unchanged and fleet-wide.
		"tenants": h.tenantsSummary(),
		// Zero-downtime ingest pipeline: serving epoch, delta overlay
		// size, and refreezer health. All zeros when ingest is off.
		"epoch":  ing.Epoch,
		"ingest": ing,
	}
	if h.flt != nil {
		resp["fleet"] = h.flt.Stats()
	}
	if t := h.c.BuildTimings(); t != nil {
		resp["last_build_ms"] = t.Millis()
	}
	writeJSON(w, resp)
}

// resilienceSummary condenses the admission/degradation counters for
// /v1/stats.
func (h *Handler) resilienceSummary() map[string]any {
	out := map[string]any{
		"degraded":          h.degraded.Value(),
		"panics":            h.panics.Value(),
		"deadline_exceeded": h.timeouts.Value(),
	}
	if h.limiter != nil {
		admitted, queued, shed, inFlight := h.limiter.Stats()
		out["admitted"] = admitted
		out["queued"] = queued
		out["shed"] = shed
		out["admission_in_flight"] = inFlight
	}
	return out
}

// subcacheSummary condenses the summary's shared sub-estimate cache
// counters (aggregated across the per-method caches) for /v1/stats.
func (h *Handler) subcacheSummary(s *core.Summary) map[string]any {
	st := s.SubCacheStats()
	ratio := 0.0
	if st.Hits+st.Misses > 0 {
		ratio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return map[string]any{
		"hits":      st.Hits,
		"misses":    st.Misses,
		"evictions": st.Evictions,
		"entries":   st.Entries,
		"hit_ratio": ratio,
	}
}

// batchSummary condenses the batch-size histogram for /v1/stats. The
// histogram observes sizes, not seconds, so the snapshot's sum is the
// total number of queries carried by batch requests.
func (h *Handler) batchSummary() map[string]any {
	snap := h.batchSizes.Snapshot()
	return map[string]any{
		"requests":      snap.Count,
		"total_queries": int64(snap.SumSeconds + 0.5),
		"p50_size":      snap.P50,
		"p95_size":      snap.P95,
		"size_buckets":  snap.Buckets,
	}
}

// syncIngest snapshots the backend's ingest counters and mirrors the
// headline ones into the obs registry, so /v1/metrics scrapes see the
// epoch and delta size without hitting /v1/stats.
func (h *Handler) syncIngest() core.IngestStats {
	ing := h.c.IngestStats()
	h.epochG.Set(int64(ing.Epoch))
	h.deltaDocsG.Set(int64(ing.DeltaDocs))
	h.deltaBytesG.Set(int64(ing.DeltaBytes))
	return ing
}

func (h *Handler) addDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, h.maxBytes)
	var err error
	if h.c.Ingesting() {
		// Zero-downtime path: the add lands in the delta and publishes a
		// new epoch; in-flight reads finish against the epoch they pinned.
		// Only the read lock is needed (the corpus serializes writers
		// internally), and no cache invalidation: entries are keyed by
		// epoch, so the old epoch's entries simply become unreachable.
		h.mu.RLock()
		err = h.c.AddXMLContext(r.Context(), name, body)
		h.mu.RUnlock()
	} else {
		h.mu.Lock()
		err = h.c.AddXMLContext(r.Context(), name, body)
		if err == nil {
			// Classic path mutates the serving summary in place, so the
			// default tenant's cached estimates (epoch 0) are stale. Other
			// tenants' entries stay warm.
			h.cache.DropScope("")
		}
		h.mu.Unlock()
	}
	if err != nil {
		writeCorpusError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{"added": name})
}

func (h *Handler) removeDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	h.mu.Lock()
	err := h.c.Remove(name)
	if err == nil {
		h.cache.DropScope("")
	}
	h.mu.Unlock()
	if err != nil {
		writeCorpusError(w, err)
		return
	}
	writeJSON(w, map[string]any{"removed": name})
}

func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("use %s", allow))
	}
}

// coreError is writeCoreError plus deadline accounting.
func (h *Handler) coreError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		h.timeouts.Inc()
	}
	writeCoreError(w, err)
}

// coreErrorCode classifies estimation-side errors into the envelope's
// (status, code) vocabulary. Shared between whole-response errors
// (writeCoreError) and the batch endpoint's per-item envelopes.
func coreErrorCode(err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrBadQuery):
		return http.StatusBadRequest, "bad_query"
	case errors.Is(err, core.ErrUnknownLabel):
		return http.StatusBadRequest, "unknown_label"
	case errors.Is(err, core.ErrUnknownMethod):
		return http.StatusBadRequest, "unknown_method"
	case errors.Is(err, core.ErrMethodUnavailable):
		// Registered but unusable here (no documents for a sampling-class
		// backend): a conflict with server state, not a client typo.
		return http.StatusConflict, "method_unavailable"
	case errors.Is(err, core.ErrNoDocuments):
		// Query execution needs bound documents; snapshot-only summaries
		// (frozen fleet tenants) can estimate but not execute. Server
		// state, not a client typo.
		return http.StatusConflict, "no_documents"
	case errors.Is(err, core.ErrBudgetExhausted):
		// A budgeted backend ran out of internal budget with fallback
		// disabled — the 504 family, like a blown deadline.
		return http.StatusGatewayTimeout, "budget_exhausted"
	case errors.Is(err, context.DeadlineExceeded):
		// The endpoint's deadline budget expired mid-computation.
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in nginx's vocabulary.
		return 499, "canceled"
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

// writeCoreError maps estimation-side errors onto the envelope.
func writeCoreError(w http.ResponseWriter, err error) {
	status, code := coreErrorCode(err)
	writeError(w, status, code, err.Error())
}

// writeCorpusError maps document-mutation errors onto the envelope.
func writeCorpusError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("document exceeds %d bytes", tooLarge.Limit))
	case errors.Is(err, corpus.ErrDocExists):
		writeError(w, http.StatusConflict, "exists", err.Error())
	case errors.Is(err, corpus.ErrNoSuchDoc):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, corpus.ErrIngestBackpressure):
		// The delta overlay hit its hard size limit before the refreezer
		// caught up; the client should back off and retry — the same
		// contract as admission shedding.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "ingest_backpressure", err.Error())
	case errors.Is(err, corpus.ErrIngestActive):
		// Removal (and other non-additive mutations) conflict with the
		// append-only ingest pipeline; disable ingest first.
		writeError(w, http.StatusConflict, "ingest_active", err.Error())
	case errors.Is(err, core.ErrFrozenSummary):
		// A read-only replica (loaded via corpus.OpenReadOnly) cannot
		// accept document mutations.
		writeError(w, http.StatusConflict, "frozen", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// 499 in nginx's vocabulary; stdlib has no constant for it.
		writeError(w, 499, "canceled", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "bad_document", err.Error())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than note it.
		fmt.Println("serve: encoding response:", err)
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}
