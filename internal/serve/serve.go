// Package serve exposes a corpus over HTTP, stdlib only — the service
// shape a query optimizer or interactive UI calls into.
//
// Endpoints (JSON unless noted):
//
//	GET    /v1/estimate?q=<twig>&method=<name>  estimated selectivity
//	GET    /v1/exact?q=<twig>                   exact count (scans documents)
//	GET    /v1/explain?q=<twig>                 estimate + trace + spread interval
//	GET    /v1/stats                            summary and corpus statistics
//	POST   /v1/docs/{name}                      add a document (XML body)
//	DELETE /v1/docs/{name}                      remove a document
//
// Queries use the twig syntax ("a(b,c(d))"). Estimation methods:
// recursive, recursive+voting (default), fix-sized.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/qcache"
)

// MaxDocumentBytes bounds uploaded document size.
const MaxDocumentBytes = 64 << 20

// Handler serves a corpus. Reads take the read lock; document mutations
// serialize on the write lock and invalidate the estimate cache.
type Handler struct {
	mu    sync.RWMutex
	c     *corpus.Corpus
	cache *qcache.Cache
}

// NewHandler wraps a corpus.
func NewHandler(c *corpus.Corpus) *Handler {
	return &Handler{c: c, cache: qcache.New(4096)}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/estimate" && r.Method == http.MethodGet:
		h.estimate(w, r)
	case r.URL.Path == "/v1/exact" && r.Method == http.MethodGet:
		h.exact(w, r)
	case r.URL.Path == "/v1/explain" && r.Method == http.MethodGet:
		h.explain(w, r)
	case r.URL.Path == "/v1/stats" && r.Method == http.MethodGet:
		h.stats(w, r)
	case strings.HasPrefix(r.URL.Path, "/v1/docs/"):
		h.docs(w, r)
	default:
		httpError(w, http.StatusNotFound, "no such endpoint")
	}
}

func (h *Handler) method(r *http.Request) core.Method {
	m := r.URL.Query().Get("method")
	if m == "" {
		return core.MethodRecursiveVoting
	}
	return core.Method(m)
}

func (h *Handler) estimate(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	method := h.method(r)
	h.mu.RLock()
	defer h.mu.RUnlock()
	q, err := labeltree.ParsePattern(qs, h.c.Dict())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	estimator, err := h.c.Summary().Estimator(method)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	est := h.cache.GetOrCompute(string(method), q, func() float64 {
		return estimator.Estimate(q)
	})
	writeJSON(w, map[string]any{"query": qs, "estimate": est})
}

func (h *Handler) exact(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	q, err := labeltree.ParsePattern(qs, h.c.Dict())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, map[string]any{"query": qs, "count": h.c.ExactCount(q)})
}

func (h *Handler) explain(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	if qs == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	q, err := labeltree.ParsePattern(qs, h.c.Dict())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	est, trace, err := h.c.Summary().EstimateWithTrace(q, core.MethodRecursiveVoting)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	iv := h.c.Summary().EstimateInterval(q)
	writeJSON(w, explainResponse{
		Query:    qs,
		Estimate: est,
		Trace:    trace,
		SpreadLo: iv.Lo,
		SpreadHi: iv.Hi,
	})
}

type explainResponse struct {
	Query    string         `json:"query"`
	Estimate float64        `json:"estimate"`
	Trace    estimate.Trace `json:"trace"`
	SpreadLo float64        `json:"spread_lo"`
	SpreadHi float64        `json:"spread_hi"`
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.c.Summary()
	hits, misses, size := h.cache.Stats()
	writeJSON(w, map[string]any{
		"k":            s.K(),
		"patterns":     s.Patterns(),
		"bytes":        s.SizeBytes(),
		"documents":    h.c.Docs(),
		"cache_hits":   hits,
		"cache_misses": misses,
		"cache_size":   size,
	})
}

func (h *Handler) docs(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/docs/")
	switch r.Method {
	case http.MethodPost:
		h.mu.Lock()
		err := h.c.AddXML(name, http.MaxBytesReader(w, r.Body, MaxDocumentBytes))
		if err == nil {
			h.cache.Invalidate()
		}
		h.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, map[string]any{"added": name})
	case http.MethodDelete:
		h.mu.Lock()
		err := h.c.Remove(name)
		if err == nil {
			h.cache.Invalidate()
		}
		h.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, map[string]any{"removed": name})
	default:
		httpError(w, http.StatusMethodNotAllowed, "use POST or DELETE")
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than note it.
		fmt.Println("serve: encoding response:", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
