package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"treelattice/internal/corpus"
	"treelattice/internal/faultinject"
	"treelattice/internal/loadgen"
)

// newResilientServer builds a corpus-backed server with the given
// resilience options and an optional fault injector wrapped around the
// corpus.
func newResilientServer(t *testing.T, res ResilienceOptions, inj *faultinject.Injector) (*httptest.Server, *Handler) {
	t.Helper()
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var backend Backend = c
	if inj != nil {
		backend = faultinject.WrapCorpus(c, inj)
	}
	h := NewHandlerOptions(backend, Options{Resilience: res})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	// Seed one document through the (possibly fault-injected) backend
	// before the schedule-sensitive traffic starts.
	code, out := do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	if code != http.StatusCreated {
		t.Fatalf("seeding doc: %d %v", code, out)
	}
	return srv, h
}

// TestExactDeadline504: a /v1/exact whose budget expires mid-count answers
// 504 deadline_exceeded, promptly.
func TestExactDeadline504(t *testing.T) {
	inj := faultinject.New(faultinject.Options{Latency: 5 * time.Second})
	srv, _ := newResilientServer(t, ResilienceOptions{ExactBudget: 30 * time.Millisecond}, inj)

	start := time.Now()
	code, out := do(t, "GET", srv.URL+"/v1/exact?q=laptop(brand,price)", "")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("exact under expired budget: %d %v, want 504", code, out)
	}
	if got, _ := out["code"].(string); got != "deadline_exceeded" {
		t.Fatalf("code = %q, want deadline_exceeded (%v)", got, out)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("504 took %v; deadline did not interrupt the scan", d)
	}

	_, stats := do(t, "GET", srv.URL+"/v1/stats", "")
	res, ok := stats["resilience"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing resilience section: %v", stats)
	}
	if res["deadline_exceeded"].(float64) < 1 {
		t.Fatalf("deadline_exceeded counter = %v, want >= 1", res["deadline_exceeded"])
	}
}

// TestEstimateDegrades: a recursive estimate that blows its budget falls
// back to fix-sized and says so, instead of erroring.
func TestEstimateDegrades(t *testing.T) {
	// A budget of 1ns is expired by the time the estimator polls it, so
	// the degradation path runs deterministically without sleeps.
	srv, _ := newResilientServer(t, ResilienceOptions{EstimateBudget: time.Nanosecond}, nil)

	code, out := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)&method=recursive", "")
	if code != 200 {
		t.Fatalf("degradable estimate: %d %v, want 200", code, out)
	}
	if out["degraded"] != true {
		t.Fatalf("response not marked degraded: %v", out)
	}
	if out["method"] != "fix-sized" {
		t.Fatalf("fallback method = %v, want fix-sized", out["method"])
	}
	if out["estimate"].(float64) != 2 {
		t.Fatalf("degraded estimate = %v, want 2 (fix-sized is exact here)", out["estimate"])
	}

	_, stats := do(t, "GET", srv.URL+"/v1/stats", "")
	res := stats["resilience"].(map[string]any)
	if res["degraded"].(float64) < 1 {
		t.Fatalf("degraded counter = %v, want >= 1", res["degraded"])
	}
}

// TestEstimate504WhenNoFallback: fix-sized is the bottom of the ladder, so
// a blown budget surfaces as 504.
func TestEstimate504WhenNoFallback(t *testing.T) {
	srv, _ := newResilientServer(t, ResilienceOptions{EstimateBudget: time.Nanosecond}, nil)
	code, out := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)&method=fix-sized", "")
	if code != http.StatusGatewayTimeout || out["code"] != "deadline_exceeded" {
		t.Fatalf("fix-sized under expired budget: %d %v, want 504 deadline_exceeded", code, out)
	}
}

// TestEstimateDisableFallback: with degradation off, the recursive methods
// 504 too.
func TestEstimateDisableFallback(t *testing.T) {
	srv, _ := newResilientServer(t, ResilienceOptions{
		EstimateBudget:  time.Nanosecond,
		DisableFallback: true,
	}, nil)
	code, out := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)&method=recursive", "")
	if code != http.StatusGatewayTimeout || out["code"] != "deadline_exceeded" {
		t.Fatalf("fallback-disabled estimate: %d %v, want 504 deadline_exceeded", code, out)
	}
}

// TestAdmissionShed429: with the limiter saturated by slow exact scans,
// excess arrivals get 429 + Retry-After and the shed counter moves.
func TestAdmissionShed429(t *testing.T) {
	inj := faultinject.New(faultinject.Options{Latency: 300 * time.Millisecond})
	srv, _ := newResilientServer(t, ResilienceOptions{
		AdmissionLimit: 1,
		AdmissionQueue: 1,
		QueueWait:      10 * time.Millisecond,
		RetryAfter:     2 * time.Second,
		ExactBudget:    5 * time.Second,
	}, inj)

	const clients = 6
	codes := make(chan int, clients)
	retry := make(chan string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/exact?q=laptop(brand,price)")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
			retry <- resp.Header.Get("Retry-After")
		}()
	}
	wg.Wait()
	close(codes)
	close(retry)

	var ok200, shed int
	for c := range codes {
		switch c {
		case 200:
			ok200++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok200 < 1 || shed < 1 {
		t.Fatalf("ok=%d shed=%d, want at least one of each", ok200, shed)
	}
	sawRetry := false
	for h := range retry {
		if h == "2" {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no shed response carried Retry-After: 2")
	}

	s := decodeMetrics(t, srv.URL)
	if s.Counters["resilience.shed"] < 1 {
		t.Fatalf("resilience.shed = %d, want >= 1", s.Counters["resilience.shed"])
	}
	if s.Counters["resilience.admitted"] < 1 {
		t.Fatalf("resilience.admitted = %d, want >= 1", s.Counters["resilience.admitted"])
	}
	_, stats := do(t, "GET", srv.URL+"/v1/stats", "")
	res := stats["resilience"].(map[string]any)
	if res["shed"].(float64) < 1 {
		t.Fatalf("stats shed = %v, want >= 1", res["shed"])
	}
}

// TestPanicIsolation: an injected handler panic becomes a 500 envelope and
// a counter; the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	// PanicEvery: 1 — every injected operation panics. The seeding upload
	// goes through AddXMLContext, which is also injected, so seed without
	// an injector and swap it in afterwards via a second handler.
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	plain := httptest.NewServer(NewHandler(c))
	code, _ := do(t, "POST", plain.URL+"/v1/docs/sample", doc)
	plain.Close()
	if code != http.StatusCreated {
		t.Fatalf("seed: %d", code)
	}

	inj := faultinject.New(faultinject.Options{PanicEvery: 1})
	h := NewHandlerOptions(faultinject.WrapCorpus(c, inj), Options{})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	code, out := do(t, "GET", srv.URL+"/v1/exact?q=laptop(brand,price)", "")
	if code != http.StatusInternalServerError || out["code"] != "internal" {
		t.Fatalf("panicking exact: %d %v, want 500 internal", code, out)
	}
	// The process survived; a cheap endpoint still answers.
	code, _ = do(t, "GET", srv.URL+"/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats after panic: %d", code)
	}
	s := decodeMetrics(t, srv.URL)
	if s.Counters["http.panics"] < 1 {
		t.Fatalf("http.panics = %d, want >= 1", s.Counters["http.panics"])
	}
}

// TestOverloadAcceptance is the issue's acceptance scenario: admission
// limit N, loadgen driving >= 4N concurrent clients against a
// fault-injected slow corpus with scheduled panics. The server must shed
// with 429s, keep admitted p99 under the deadline envelope, absorb the
// panics, and stay up.
func TestOverloadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("overload run takes ~1s of wall clock")
	}
	const (
		limit    = 4
		clients  = 4 * limit // >= 4N
		latency  = 30 * time.Millisecond
		budget   = 150 * time.Millisecond
		maxWait  = 25 * time.Millisecond
		p99Bound = 0.5 // seconds: budget + queue wait + generous scheduling slack
	)
	inj := faultinject.New(faultinject.Options{
		Latency:    latency,
		PanicEvery: 17,
		Seed:       1,
	})
	srv, _ := newResilientServer(t, ResilienceOptions{
		AdmissionLimit: limit,
		AdmissionQueue: limit,
		QueueWait:      maxWait,
		ExactBudget:    budget,
	}, inj)

	w := &loadgen.Workload{Items: []loadgen.Item{{Text: "laptop(brand,price)"}}}
	target := loadgen.NewHTTPTarget(srv.URL, "", nil).
		WithPath("/v1/exact").
		// Shed, panic-500, and deadline-504 responses are the behaviors
		// under test, not driver errors.
		WithAcceptStatus(429, 500, 504)
	res, err := loadgen.Run(t.Context(), target, w, loadgen.Options{
		Concurrency: clients,
		Duration:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("driver saw %d unexpected responses", res.Errors)
	}

	s := decodeMetrics(t, srv.URL)
	if s.Counters["resilience.shed"] < 1 {
		t.Fatalf("no requests shed at %d clients over limit %d", clients, limit)
	}
	if s.Counters["http.panics"] < 1 {
		t.Fatalf("no injected panics recovered (issued %d)", res.Issued)
	}
	if s.Counters["http.exact.status.5xx"] < 1 {
		t.Fatalf("no 5xx recorded despite injected panics")
	}
	if s.Counters["http.exact.status.4xx"] < 1 {
		t.Fatalf("no 4xx recorded despite shedding")
	}
	hist, ok := s.Histograms["http.exact.latency_seconds"]
	if !ok || hist.Count == 0 {
		t.Fatalf("no exact latency samples")
	}
	if hist.P99 > p99Bound {
		t.Fatalf("exact p99 = %.3fs, want <= %.1fs (deadline envelope)", hist.P99, p99Bound)
	}
	// Zero process deaths: the server still answers after the storm.
	code, stats := do(t, "GET", srv.URL+"/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats after overload: %d", code)
	}
	resSec := stats["resilience"].(map[string]any)
	if resSec["panics"].(float64) < 1 || resSec["shed"].(float64) < 1 {
		t.Fatalf("stats resilience section inconsistent: %v", resSec)
	}
}
