package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"treelattice/internal/corpus"
)

func postBatch(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	return do(t, "POST", url+"/v1/estimate/batch", body)
}

func TestBatchEstimate(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)

	code, out := postBatch(t, srv.URL,
		`{"queries": ["laptop(brand,price)", "a((", "nosuchlabel", "laptop(brand,price)"]}`)
	if code != 200 {
		t.Fatalf("batch: %d %v", code, out)
	}
	results := out["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	first := results[0].(map[string]any)
	if first["query"] != "laptop(brand,price)" || first["estimate"].(float64) != 2 {
		t.Fatalf("item 0: %v", first)
	}
	bad := results[1].(map[string]any)
	if bad["code"] != "bad_query" || bad["error"] == "" {
		t.Fatalf("item 1 not a per-item bad_query envelope: %v", bad)
	}
	if _, hasEst := bad["estimate"]; hasEst {
		t.Fatalf("failed item carries an estimate: %v", bad)
	}
	// Unknown labels answer zero, matching the single endpoint.
	unknown := results[2].(map[string]any)
	if unknown["estimate"].(float64) != 0 {
		t.Fatalf("item 2: %v", unknown)
	}
	last := results[3].(map[string]any)
	if last["estimate"].(float64) != 2 {
		t.Fatalf("item 3: %v", last)
	}

	// Batch answers must equal the single endpoint's, per method.
	for _, method := range []string{"recursive", "recursive+voting", "fix-sized"} {
		q := "computer(laptops(laptop(brand,price)))"
		_, single := do(t, "GET", srv.URL+"/v1/estimate?q="+q+"&method="+url.QueryEscape(method), "")
		code, out := postBatch(t, srv.URL,
			fmt.Sprintf(`{"queries": [%q], "method": %q}`, q, method))
		if code != 200 {
			t.Fatalf("%s: %d %v", method, code, out)
		}
		item := out["results"].([]any)[0].(map[string]any)
		if item["estimate"] != single["estimate"] {
			t.Fatalf("%s: batch %v != single %v", method, item["estimate"], single["estimate"])
		}
	}
}

func TestBatchErrors(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)

	for _, tc := range []struct {
		body     string
		wantCode int
		wantErr  string
	}{
		{`{"queries": []}`, 400, "bad_request"},
		{`not json`, 400, "bad_request"},
		{`{"queries": ["laptop"], "method": "bogus"}`, 400, "unknown_method"},
		{`{"queries": [` + strings.Repeat(`"laptop",`, MaxBatchQueries) + `"laptop"]}`, 400, "batch_too_large"},
	} {
		code, out := postBatch(t, srv.URL, tc.body)
		if code != tc.wantCode || out["code"] != tc.wantErr {
			t.Fatalf("body %.40q: got %d %v, want %d %s", tc.body, code, out, tc.wantCode, tc.wantErr)
		}
	}

	// Wrong verb gets the JSON 405 envelope like every other endpoint.
	code, out := do(t, "GET", srv.URL+"/v1/estimate/batch", "")
	if code != 405 || out["code"] != "method_not_allowed" {
		t.Fatalf("GET batch: %d %v", code, out)
	}
}

// TestBatchStats: the batch endpoint feeds the size histogram and the
// shared sub-estimate cache counters surfaced in /v1/stats.
func TestBatchStats(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)

	queries := make([]string, 8)
	for i := range queries {
		queries[i] = `"computer(laptops(laptop(brand,price)),desktops)"`
	}
	body := `{"queries": [` + strings.Join(queries, ",") + `], "method": "recursive"}`
	if code, out := postBatch(t, srv.URL, body); code != 200 {
		t.Fatalf("batch: %d %v", code, out)
	}

	code, out := do(t, "GET", srv.URL+"/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats: %d %v", code, out)
	}
	batch := out["batch"].(map[string]any)
	if batch["requests"].(float64) != 1 || batch["total_queries"].(float64) != 8 {
		t.Fatalf("batch stats: %v", batch)
	}
	if _, ok := batch["size_buckets"].([]any); !ok {
		t.Fatalf("batch stats missing size histogram: %v", batch)
	}
	sub := out["subcache"].(map[string]any)
	for _, field := range []string{"hits", "misses", "evictions", "entries", "hit_ratio"} {
		if _, ok := sub[field]; !ok {
			t.Fatalf("subcache stats missing %q: %v", field, sub)
		}
	}

	// The per-method subcache counters reach the registry too.
	code, out = do(t, "GET", srv.URL+"/v1/metrics", "")
	if code != 200 {
		t.Fatalf("metrics: %d %v", code, out)
	}
	counters := out["counters"].(map[string]any)
	if _, ok := counters["subcache.recursive.hits"]; !ok {
		t.Fatalf("registry missing subcache counters: %v", counters)
	}
}

// TestServeReadOnlyCorpus: a handler over corpus.OpenReadOnly serves
// estimates (single and batch) but answers document mutations with 409
// frozen.
func TestServeReadOnlyCorpus(t *testing.T) {
	dir := t.TempDir()
	c, err := corpus.Create(dir, corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("sample", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	ro, err := corpus.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Summary().Mutable() || !ro.Summary().FrozenStore() {
		t.Fatal("OpenReadOnly did not produce a frozen summary")
	}
	srv := httptest.NewServer(NewHandler(ro))
	defer srv.Close()

	code, out := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)", "")
	if code != 200 || out["estimate"].(float64) != 2 {
		t.Fatalf("frozen estimate: %d %v", code, out)
	}
	code, out = postBatch(t, srv.URL, `{"queries": ["laptop(brand,price)"]}`)
	if code != 200 || out["results"].([]any)[0].(map[string]any)["estimate"].(float64) != 2 {
		t.Fatalf("frozen batch: %d %v", code, out)
	}
	code, out = do(t, "POST", srv.URL+"/v1/docs/extra", doc)
	if code != http.StatusConflict || out["code"] != "frozen" {
		t.Fatalf("frozen add: %d %v", code, out)
	}
	code, out = do(t, "DELETE", srv.URL+"/v1/docs/sample", "")
	if code != http.StatusConflict || out["code"] != "frozen" {
		t.Fatalf("frozen remove: %d %v", code, out)
	}
}
