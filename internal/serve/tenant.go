package serve

import (
	"context"
	"errors"
	"net/http"
	"sort"

	"treelattice/internal/core"
	"treelattice/internal/fleet"
	"treelattice/internal/obs"
	"treelattice/internal/qcache"
)

// DefaultTenant is the name the legacy single-tenant routes answer as
// when no override is configured: /v1/estimate and
// /v1/t/default/estimate are the same corpus.
const DefaultTenant = "default"

// tenantMetrics is one tenant's slice of the obs registry. The metric
// names are namespaced under tenant.<name>.* so the existing flat names
// (http.*, resilience.*, subcache.*) keep their meaning — loadbench and
// dashboards scraping them see fleet-wide totals, and the per-tenant
// split is additive.
type tenantMetrics struct {
	requests *obs.Counter
	shed     *obs.Counter
}

// tenantMetricsFor returns (creating on first use) name's counters.
// Names are validated before this point, so the label space is bounded
// by the tenants that actually exist.
func (h *Handler) tenantMetricsFor(name string) *tenantMetrics {
	h.tenantMu.Lock()
	defer h.tenantMu.Unlock()
	tm, ok := h.tenantStats[name]
	if !ok {
		tm = &tenantMetrics{
			requests: h.reg.Counter("tenant." + name + ".requests"),
			shed:     h.reg.Counter("tenant." + name + ".shed"),
		}
		h.tenantStats[name] = tm
	}
	return tm
}

// tenantFor resolves a tenant name: the default tenant is the live
// corpus behind the legacy routes, everything else loads through the
// fleet registry (when one is configured).
func (h *Handler) tenantFor(ctx context.Context, name string) (*fleet.Tenant, error) {
	if err := fleet.ValidateName(name); err != nil {
		return nil, err
	}
	if name == h.defaultTenant {
		return fleet.NewTenant(name, h.c.Summary()), nil
	}
	if h.flt == nil {
		return nil, fleet.ErrUnknownTenant
	}
	return h.flt.Acquire(ctx, name)
}

// tenantEstimate serves GET /v1/t/{tenant}/estimate: the multi-tenant
// twin of /v1/estimate. Sharded tenants answer through the
// scatter-gather front end and report how much of the fleet produced
// the answer; a partial answer (some shard missed its deadline) is
// marked degraded. The whole-query cache applies here too — entries are
// keyed by (tenant, epoch), so tenants never see each other's answers
// and a reload or epoch swap makes old entries unreachable. Partial and
// degraded answers are never cached: they reflect transient pressure,
// not the tenant's true estimate.
func (h *Handler) tenantEstimate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	tn, err := h.tenantFor(r.Context(), name)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	qs := r.URL.Query().Get("q")
	if qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	method := h.method(r)
	if _, err := tn.Summary.LookupMethod(method); err != nil {
		writeCoreError(w, err)
		return
	}
	tm := h.tenantMetricsFor(name)
	if !h.quota.Acquire(name) {
		tm.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "shed",
			"tenant over its admission quota; retry later")
		return
	}
	defer h.quota.Release(name)
	tm.requests.Inc()

	q, err := tn.Summary.ParseQuery(qs)
	if errors.Is(err, core.ErrUnknownLabel) {
		writeJSON(w, map[string]any{"tenant": name, "query": qs, "estimate": 0.0})
		return
	}
	if err != nil {
		writeCoreError(w, err)
		return
	}
	scope := h.tenantScope(name, tn.Summary)
	if est, ok := h.cache.Get(scope, string(method), q); ok {
		writeJSON(w, map[string]any{
			"tenant": name, "query": qs, "estimate": est, "method": string(method),
		})
		return
	}
	res, err := tn.Estimate(r.Context(), q, method, fleet.EstimateOptions{
		ShardTimeout: h.res.ShardTimeout,
		NoFallback:   h.res.DisableFallback,
	})
	if err != nil {
		if errors.Is(err, fleet.ErrNoShards) {
			writeFleetError(w, err)
			return
		}
		h.coreError(w, err)
		return
	}
	if res.Degraded {
		h.degraded.Inc()
	}
	h.observeEnsemble(res.DegradedEstimate)
	if !res.Degraded && !res.Partial {
		h.cache.Put(scope, string(res.Method), q, res.Estimate)
	}
	resp := map[string]any{
		"tenant":   name,
		"query":    qs,
		"estimate": res.Estimate,
		"method":   string(res.Method),
	}
	if tn.Shards > 1 || res.Partial {
		resp["shards_total"] = res.ShardsTotal
		resp["shards_answered"] = res.ShardsAnswered
	}
	if res.Degraded {
		resp["degraded"] = true
	}
	if res.Checked {
		resp["cross_estimate"] = res.CrossEstimate
		resp["divergence"] = res.Divergence
		resp["divergent"] = res.Divergent
	}
	writeJSON(w, resp)
}

// tenantScope derives the cache scope for an estimate against a named
// tenant. Ingesting backends discriminate by RCU epoch; fleet tenants
// loaded from static snapshots carry no epoch, so their registry
// generation fills the slot — a reload bumps it and the previous
// generation's entries become unreachable.
func (h *Handler) tenantScope(name string, sum *core.Summary) qcache.Scope {
	sc := scopeFor(name, sum)
	if sc.Epoch == 0 && h.flt != nil && name != h.defaultTenant {
		sc.Epoch = h.flt.Generation(name)
	}
	return sc
}

// tenantReload serves POST /v1/t/{tenant}/reload: hot-swap the tenant's
// freshly published snapshots into the registry without evicting the
// serving copy — in-flight estimates finish against the old tenant,
// new requests see the new one. The fleet-side half of zero-downtime
// ingest: a writer replica refreezes, then the serving fleet reloads.
func (h *Handler) tenantReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if err := fleet.ValidateName(name); err != nil {
		writeFleetError(w, err)
		return
	}
	if name == h.defaultTenant {
		writeError(w, http.StatusConflict, "reload_failed",
			"default tenant is the live corpus; it publishes epochs, not snapshot reloads")
		return
	}
	if h.flt == nil {
		writeFleetError(w, fleet.ErrUnknownTenant)
		return
	}
	tn, err := h.flt.Reload(r.Context(), name)
	if err != nil {
		switch {
		case errors.Is(err, fleet.ErrBadName), errors.Is(err, fleet.ErrUnknownTenant),
			errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeFleetError(w, err)
		default:
			writeError(w, http.StatusConflict, "reload_failed", err.Error())
		}
		return
	}
	// The generation bump already routes new lookups past the old
	// entries; dropping them too frees the LRU slots immediately.
	h.cache.DropScope(name)
	writeJSON(w, map[string]any{
		"tenant":     name,
		"reloaded":   true,
		"generation": h.flt.Generation(name),
		"backend":    tn.StoreKind(),
		"shards":     tn.Shards,
	})
}

// tenantStatsEndpoint serves GET /v1/t/{tenant}/stats: the tenant's
// summary shape, traffic counters, and sub-estimate cache
// effectiveness.
func (h *Handler) tenantStatsEndpoint(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	tn, err := h.tenantFor(r.Context(), name)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	tm := h.tenantMetricsFor(name)
	writeJSON(w, map[string]any{
		"tenant":         name,
		"shards":         tn.Shards,
		"epoch":          h.tenantScope(name, tn.Summary).Epoch,
		"k":              tn.Summary.K(),
		"patterns":       tn.Summary.Patterns(),
		"bytes":          tn.Summary.SizeBytes(),
		"backend":        tn.StoreKind(),
		"resident_bytes": tn.ResidentBytes(),
		"requests":       tm.requests.Value(),
		"shed":           tm.shed.Value(),
		"in_flight":      h.quota.InFlight(name),
		"subcache":       h.subcacheSummary(tn.Summary),
	})
}

// tenantsEndpoint serves GET /v1/tenants: residence and churn of the
// fleet registry, plus per-tenant backend kind and resident footprint
// for every loaded tenant (and always the default tenant).
func (h *Handler) tenantsEndpoint(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"default": h.defaultTenant}
	tenants := map[string]any{}
	if h.flt != nil {
		names := h.flt.Resident()
		resp["resident"] = names
		resp["registry"] = h.flt.Stats()
		for _, name := range names {
			if tn, ok := h.flt.Peek(name); ok {
				tenants[name] = tenantShape(tn)
			}
		}
	} else {
		resp["resident"] = []string{h.defaultTenant}
	}
	if _, ok := tenants[h.defaultTenant]; !ok {
		tenants[h.defaultTenant] = tenantShape(fleet.NewTenant(h.defaultTenant, h.c.Summary()))
	}
	resp["tenants"] = tenants
	writeJSON(w, resp)
}

// tenantShape is the /v1/tenants per-tenant entry: which backend the
// tenant's summary runs on and how many bytes it keeps resident.
func tenantShape(tn *fleet.Tenant) map[string]any {
	return map[string]any{
		"backend":        tn.StoreKind(),
		"shards":         tn.Shards,
		"resident_bytes": tn.ResidentBytes(),
	}
}

// healthz serves GET /v1/healthz — pure liveness: the process answers.
func (h *Handler) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

// readyz serves GET /v1/readyz — readiness for load-balancer rotation:
// the default tenant answers estimates and admission control has spare
// capacity. 503 keeps new traffic away without killing the replica
// (that is healthz's job).
func (h *Handler) readyz(w http.ResponseWriter, r *http.Request) {
	if h.limiter.Saturated() {
		writeError(w, http.StatusServiceUnavailable, "not_ready",
			"admission control saturated")
		return
	}
	if _, err := h.tenantFor(r.Context(), h.defaultTenant); err != nil {
		writeError(w, http.StatusServiceUnavailable, "not_ready",
			"default tenant not loaded: "+err.Error())
		return
	}
	writeJSON(w, map[string]any{"status": "ready"})
}

// tenantsSummary is the /v1/stats "tenants" section: per-tenant request
// and shed totals plus sub-estimate cache hit ratio, for every tenant
// that has seen traffic. The default tenant's summary is the live
// corpus; other tenants report their caches only while resident.
func (h *Handler) tenantsSummary() map[string]any {
	h.tenantMu.Lock()
	names := make([]string, 0, len(h.tenantStats))
	for name := range h.tenantStats {
		names = append(names, name)
	}
	h.tenantMu.Unlock()
	sort.Strings(names)
	out := make(map[string]any, len(names))
	for _, name := range names {
		tm := h.tenantMetricsFor(name)
		entry := map[string]any{
			"requests": tm.requests.Value(),
			"shed":     tm.shed.Value(),
		}
		var sum *core.Summary
		if name == h.defaultTenant {
			sum = h.c.Summary()
		} else if h.flt != nil {
			if tn, ok := h.flt.Peek(name); ok {
				sum = tn.Summary
			}
		}
		if sum != nil {
			st := sum.SubCacheStats()
			ratio := 0.0
			if st.Hits+st.Misses > 0 {
				ratio = float64(st.Hits) / float64(st.Hits+st.Misses)
			}
			entry["subcache_hit_ratio"] = ratio
			entry["backend"] = sum.StoreKind()
			entry["resident_bytes"] = sum.ResidentBytes()
		}
		out[name] = entry
	}
	return out
}

// writeFleetError maps fleet-side errors onto the JSON envelope.
func writeFleetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, fleet.ErrBadName):
		writeError(w, http.StatusBadRequest, "bad_tenant", err.Error())
	case errors.Is(err, fleet.ErrUnknownTenant):
		writeError(w, http.StatusNotFound, "unknown_tenant", err.Error())
	case errors.Is(err, fleet.ErrNoShards):
		// Every shard missed its deadline: the service is up but this
		// tenant cannot answer right now.
		writeError(w, http.StatusServiceUnavailable, "no_shards", err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, 499, "canceled", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	}
}
