package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"treelattice/internal/core"
)

// MaxQueryLimit caps how many match tuples one /v1/query response may
// materialize; a larger limit parameter is clamped, never an error.
const MaxQueryLimit = 1000

// DefaultQueryLimit is the materialization cap when the client sends no
// limit parameter (count-only requests materialize nothing regardless).
const DefaultQueryLimit = 100

// calibrationBounds bucket the measured/predicted candidate ratio: 1.0
// is a perfect cost model, powers of two either side grade how far off
// it runs. Ratios are dimensionless; the histogram's "seconds" plumbing
// carries them unchanged.
var calibrationBounds = []float64{0.0625, 0.125, 0.25, 0.5, 1, 2, 4, 8, 16}

// queryParams is one /v1/query request's decoded parameters, shared by
// the default-tenant and tenant-scoped handlers and both verbs.
type queryParams struct {
	qs        string
	method    core.Method
	limit     int
	countOnly bool
	naive     bool
}

// queryBody is the POST /v1/query JSON body. Fields mirror the GET
// parameters; absent fields fall back to the URL query string, so a
// POST with an empty body behaves exactly like the GET.
type queryBody struct {
	Q         string `json:"q"`
	Method    string `json:"method"`
	Limit     *int   `json:"limit"`
	CountOnly *bool  `json:"count"`
	Naive     *bool  `json:"naive"`
}

// parseQueryParams decodes a query request. GET reads URL parameters;
// POST overlays a JSON body on top of them. The limit is clamped to
// [0, MaxQueryLimit] and defaults to DefaultQueryLimit.
func parseQueryParams(r *http.Request) (queryParams, error) {
	uq := r.URL.Query()
	p := queryParams{
		qs:        uq.Get("q"),
		method:    core.Method(uq.Get("method")),
		limit:     DefaultQueryLimit,
		countOnly: boolParam(uq.Get("count")),
		naive:     boolParam(uq.Get("naive")),
	}
	if v := uq.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, errors.New("limit must be a non-negative integer")
		}
		p.limit = n
	}
	if r.Method == http.MethodPost && r.Body != nil {
		data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
		if err != nil {
			return p, errors.New("reading body: " + err.Error())
		}
		var b queryBody
		if len(bytes.TrimSpace(data)) > 0 {
			if err := json.Unmarshal(data, &b); err != nil {
				return p, errors.New("bad JSON body: " + err.Error())
			}
		}
		if b.Q != "" {
			p.qs = b.Q
		}
		if b.Method != "" {
			p.method = core.Method(b.Method)
		}
		if b.Limit != nil {
			if *b.Limit < 0 {
				return p, errors.New("limit must be a non-negative integer")
			}
			p.limit = *b.Limit
		}
		if b.CountOnly != nil {
			p.countOnly = *b.CountOnly
		}
		if b.Naive != nil {
			p.naive = *b.Naive
		}
	}
	if p.limit > MaxQueryLimit {
		p.limit = MaxQueryLimit
	}
	if p.countOnly {
		p.limit = 0
	}
	return p, nil
}

func boolParam(v string) bool {
	return v == "1" || v == "true" || v == "yes"
}

// queryResponse is the /v1/query JSON answer.
type queryResponse struct {
	Tenant      string            `json:"tenant,omitempty"`
	Query       string            `json:"query"`
	Count       int64             `json:"count"`
	Matches     []core.QueryMatch `json:"matches,omitempty"`
	Truncated   bool              `json:"truncated,omitempty"`
	Degraded    bool              `json:"degraded,omitempty"`
	DocsScanned int               `json:"docs_scanned"`
	Candidates  int64             `json:"candidates"`
	Plan        []int32           `json:"plan"`
	PlanMethod  string            `json:"plan_method,omitempty"`
	Predicted   float64           `json:"predicted_candidates,omitempty"`
	Calibration float64           `json:"calibration,omitempty"`
}

// runQuery parses and executes one twig query against sum, recording
// the execution and calibration metrics. The caller holds whatever lock
// pins sum and has already validated the method.
func (h *Handler) runQuery(r *http.Request, sum *core.Summary, p queryParams) (*queryResponse, error) {
	q, err := sum.ParseTwigQuery(p.qs)
	if err != nil {
		return nil, err
	}
	res, err := sum.ExecuteQueryContext(r.Context(), q, core.QueryOptions{
		Method:     p.method,
		Limit:      p.limit,
		NodeBudget: h.res.QueryNodeBudget,
		NaiveOrder: p.naive,
	})
	if err != nil {
		return nil, err
	}
	h.queries.Inc()
	h.queryCandidates.Add(uint64(res.Stats.Candidates))
	if res.Degraded {
		h.queryDegradedC.Inc()
	}
	if res.Calibration > 0 {
		h.queryCalibration.Observe(res.Calibration)
	}
	return &queryResponse{
		Query:       p.qs,
		Count:       res.Count,
		Matches:     res.Matches,
		Truncated:   res.Truncated,
		Degraded:    res.Degraded,
		DocsScanned: res.DocsScanned,
		Candidates:  res.Stats.Candidates,
		Plan:        res.Plan.Order,
		PlanMethod:  string(res.PlanMethod),
		Predicted:   res.Plan.PredictedCandidates,
		Calibration: res.Calibration,
	}, nil
}

// query serves GET/POST /v1/query: planner-driven twig query execution
// against the default tenant's documents.
func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	p, err := parseQueryParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	if p.qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	sum := h.c.Summary()
	// Validate a requested planning method up front, like /v1/estimate:
	// a bogus method should 400 even when the query would not parse.
	if !p.naive && p.method != "" {
		if _, err := sum.LookupMethod(p.method); err != nil {
			writeCoreError(w, err)
			return
		}
	}
	resp, err := h.runQuery(r, sum, p)
	if errors.Is(err, core.ErrUnknownLabel) {
		// A label no document carries cannot match: zero matches, no scan.
		writeJSON(w, queryResponse{Query: p.qs, Plan: []int32{}})
		return
	}
	if err != nil {
		h.coreError(w, err)
		return
	}
	writeJSON(w, resp)
}

// tenantQuery serves GET/POST /v1/t/{tenant}/query: the multi-tenant
// twin of /v1/query, behind the per-tenant admission quota. Tenants
// loaded from frozen snapshots carry no documents and answer 409
// no_documents — they estimate, the corpus owner executes.
func (h *Handler) tenantQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	tn, err := h.tenantFor(r.Context(), name)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	p, err := parseQueryParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	if p.qs == "" {
		writeError(w, http.StatusBadRequest, "bad_query", "missing q parameter")
		return
	}
	if !p.naive && p.method != "" {
		if _, err := tn.Summary.LookupMethod(p.method); err != nil {
			writeCoreError(w, err)
			return
		}
	}
	tm := h.tenantMetricsFor(name)
	if !h.quota.Acquire(name) {
		tm.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "shed",
			"tenant over its admission quota; retry later")
		return
	}
	defer h.quota.Release(name)
	tm.requests.Inc()

	h.mu.RLock()
	defer h.mu.RUnlock()
	resp, err := h.runQuery(r, tn.Summary, p)
	if errors.Is(err, core.ErrUnknownLabel) {
		writeJSON(w, queryResponse{Tenant: name, Query: p.qs, Plan: []int32{}})
		return
	}
	if err != nil {
		h.coreError(w, err)
		return
	}
	resp.Tenant = name
	writeJSON(w, resp)
}

// querySummary condenses the query-execution counters and the
// calibration histogram for /v1/stats. A well-calibrated planner keeps
// p50 near 1.0; drift in either direction says the lattice statistics
// have diverged from the executor's real workload.
func (h *Handler) querySummary() map[string]any {
	snap := h.queryCalibration.Snapshot()
	return map[string]any{
		"executed":            h.queries.Value(),
		"degraded":            h.queryDegradedC.Value(),
		"candidates":          h.queryCandidates.Value(),
		"calibrated":          snap.Count,
		"calibration_p50":     snap.P50,
		"calibration_p95":     snap.P95,
		"calibration_buckets": snap.Buckets,
	}
}
