package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treelattice/internal/corpus"
)

// TestIngestZeroDowntime is the serve-layer acceptance scenario: a
// read-only (frozen) replica with ingest enabled accepts writes while
// readers hammer estimate, batch, and readyz across at least ten
// background refreezes under injected refreeze faults. Zero 409s, zero
// failed reads, readyz stays ready throughout — readers never observe a
// swap in progress.
func TestIngestZeroDowntime(t *testing.T) {
	dir := t.TempDir()
	seed, err := corpus.Create(dir, corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.AddXML("seed", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}

	// Reopen as a frozen serving replica — the shape a production
	// read-only node runs — and switch it into ingest mode with an
	// aggressive refreeze cadence and a fault every third attempt.
	ro, err := corpus.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	var hookCalls atomic.Int64
	err = ro.EnableIngest(corpus.IngestOptions{
		RefreezeInterval: 10 * time.Millisecond,
		MaxDeltaDocs:     2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		BackoffSeed:      1,
		RefreezeHook: func(context.Context) error {
			if hookCalls.Add(1)%3 == 0 {
				return errors.New("injected refreeze fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.DisableIngest()

	srv := httptest.NewServer(NewHandler(ro))
	defer srv.Close()

	var (
		stop      atomic.Bool
		readErrs  atomic.Int64
		reads     atomic.Int64
		conflicts atomic.Int64 // 409s, must stay zero
		writes    atomic.Int64
		wg        sync.WaitGroup
	)
	fail := func(format string, args ...any) {
		readErrs.Add(1)
		t.Errorf(format, args...)
	}

	// Readers: single estimates, batches, and readiness probes.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Get(srv.URL + "/v1/estimate?q=laptop(brand,price)")
				if err != nil {
					fail("estimate: %v", err)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("estimate status: %d", resp.StatusCode)
				}
				reads.Add(1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		body := `{"queries":["laptop(brand,price)","computer(laptops)","laptop"]}`
		for !stop.Load() {
			resp, err := http.Post(srv.URL+"/v1/estimate/batch", "application/json", strings.NewReader(body))
			if err != nil {
				fail("batch: %v", err)
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("batch status: %d", resp.StatusCode)
			}
			reads.Add(1)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			resp, err := http.Get(srv.URL + "/v1/readyz")
			if err != nil {
				fail("readyz: %v", err)
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("readyz not ready during refreeze: %d", resp.StatusCode)
			}
			reads.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	// Writer: continuous ingest against the frozen replica. Backpressure
	// (429) would be acceptable by contract but must never become a 409.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			url := fmt.Sprintf("%s/v1/docs/ingest-%04d", srv.URL, i)
			resp, err := http.Post(url, "application/xml", strings.NewReader(doc))
			if err != nil {
				t.Errorf("ingest write: %v", err)
				continue
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusCreated, http.StatusTooManyRequests:
				writes.Add(1)
			case http.StatusConflict:
				conflicts.Add(1)
			default:
				t.Errorf("ingest write status: %d", resp.StatusCode)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for ro.IngestStats().Refreezes < 10 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("only %d refreezes before deadline", ro.IngestStats().Refreezes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	st := ro.IngestStats()
	if st.Refreezes < 10 {
		t.Fatalf("refreezes = %d, want >= 10", st.Refreezes)
	}
	if st.RefreezeFailures == 0 {
		t.Errorf("fault injection never fired (attempts=%d)", st.RefreezeAttempts)
	}
	if n := conflicts.Load(); n != 0 {
		t.Errorf("409 conflicts = %d, want 0", n)
	}
	if n := readErrs.Load(); n != 0 {
		t.Errorf("failed reads = %d of %d, want 0", n, reads.Load())
	}
	if writes.Load() == 0 || reads.Load() == 0 {
		t.Fatalf("degenerate run: writes=%d reads=%d", writes.Load(), reads.Load())
	}

	// The merged view answers for both the frozen base and the delta.
	resp, err := http.Get(srv.URL + "/v1/estimate?q=laptop(brand,price)")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final estimate: %d", resp.StatusCode)
	}
}

// TestIngestStatsAndBackpressure covers the serve-facing ingest
// surface: /v1/stats grows epoch + ingest sections, a delta past the
// hard limit turns POST /v1/docs into 429 with Retry-After, and
// DELETE — unsupported while ingesting — maps to 409 ingest_active.
func TestIngestStatsAndBackpressure(t *testing.T) {
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIngest(corpus.IngestOptions{HardDeltaBytes: 1}); err != nil {
		t.Fatal(err)
	}
	defer c.DisableIngest()
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	code, _ := do(t, "POST", srv.URL+"/v1/docs/a", doc)
	if code != http.StatusCreated {
		t.Fatalf("first add: %d", code)
	}

	// The add landed in the delta; stats surface it before any refreeze.
	code, out := do(t, "GET", srv.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if _, ok := out["epoch"]; !ok {
		t.Errorf("stats missing epoch: %v", out)
	}
	ing, ok := out["ingest"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing ingest section: %v", out)
	}
	if ing["delta_docs"].(float64) != 1 {
		t.Errorf("delta_docs = %v, want 1", ing["delta_docs"])
	}

	// Second add exceeds the hard delta limit: 429 + Retry-After. The
	// rejection also kicks the refreezer, which drains the delta.
	resp, err := http.Post(srv.URL+"/v1/docs/b", "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressured add: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("backpressured add missing Retry-After")
	}

	code, out = do(t, "DELETE", srv.URL+"/v1/docs/a", "")
	if code != http.StatusConflict || out["code"] != "ingest_active" {
		t.Fatalf("delete during ingest: %d %v, want 409 ingest_active", code, out)
	}

	// The backpressure counter is cumulative — stable even after the
	// kicked refreeze drains the delta.
	code, out = do(t, "GET", srv.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	ing, ok = out["ingest"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing ingest section: %v", out)
	}
	if ing["backpressured"].(float64) != 1 {
		t.Errorf("backpressured = %v, want 1", ing["backpressured"])
	}
}

// TestIngestEpochScopedCache: answers cached under one epoch must not
// leak into the next — a cached pre-ingest estimate would hide the
// freshly added document. The epoch-keyed scope makes invalidation
// automatic, with no global Reset on the write path.
func TestIngestEpochScopedCache(t *testing.T) {
	c, err := corpus.Create(t.TempDir(), corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIngest(corpus.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	defer c.DisableIngest()
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	get := func() float64 {
		t.Helper()
		code, out := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)", "")
		if code != http.StatusOK {
			t.Fatalf("estimate: %d %v", code, out)
		}
		return out["estimate"].(float64)
	}

	do(t, "POST", srv.URL+"/v1/docs/a", doc)
	if est := get(); est != 2 {
		t.Fatalf("estimate after first doc = %v, want 2", est)
	}
	get() // populate the cache under the current epoch

	do(t, "POST", srv.URL+"/v1/docs/b", doc)
	if est := get(); est != 4 {
		t.Fatalf("estimate after second doc = %v, want 4 (stale cache?)", est)
	}
}
