package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"treelattice/internal/core"
	"treelattice/internal/labeltree"
)

// MaxBatchQueries bounds how many queries one batch request may carry.
// A batch occupies a single admission slot regardless of size, so the cap
// keeps one client from smuggling unbounded work past the limiter.
const MaxBatchQueries = 256

// maxBatchBodyBytes bounds the batch request body. 256 twig queries fit
// comfortably in far less; anything beyond this is malformed or hostile.
const maxBatchBodyBytes = 1 << 20

// batchSizeBounds are the batch-size histogram buckets — powers of two up
// to MaxBatchQueries, so the distribution shows whether clients actually
// batch or send singletons through the batch endpoint.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// batchEntry is one requested query: either a bare JSON string ("a(b)")
// or an object {"q": "a(b)", "method": "sampling"} overriding the
// batch-level method for this item.
type batchEntry struct {
	Q      string `json:"q"`
	Method string `json:"method"`
}

// UnmarshalJSON accepts both entry forms.
func (e *batchEntry) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &e.Q)
	}
	type plain batchEntry // drop the method set to avoid recursion
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	if p.Q == "" {
		return fmt.Errorf("batch entry object missing \"q\"")
	}
	*e = batchEntry(p)
	return nil
}

type batchRequest struct {
	Queries []batchEntry `json:"queries"`
	// Method applies to entries without their own; empty means
	// recursive+voting.
	Method string `json:"method"`
}

// batchItem is the per-query result envelope. Exactly one of Estimate or
// Error is present: a failed item carries the same code vocabulary as the
// single-query endpoint's error envelope. Method always echoes the method
// that answered (or was asked, for failed items) — with per-item
// overrides in play, positional results alone no longer identify it.
type batchItem struct {
	Query         string   `json:"query"`
	Estimate      *float64 `json:"estimate,omitempty"`
	Method        string   `json:"method"`
	Degraded      bool     `json:"degraded,omitempty"`
	CrossEstimate *float64 `json:"cross_estimate,omitempty"`
	Divergence    float64  `json:"divergence,omitempty"`
	// Divergent is a pointer so checked-but-agreeing items still carry an
	// explicit false, matching the single endpoint's envelope.
	Divergent *bool  `json:"divergent,omitempty"`
	Error     string `json:"error,omitempty"`
	Code      string `json:"code,omitempty"`
}

type batchResponse struct {
	Method  string      `json:"method"`
	Results []batchItem `json:"results"`
}

// estimateBatch serves POST /v1/estimate/batch: many twig queries, one
// admission slot, one worker-pool fan-out sharing the summary's
// sub-estimate cache. Results are positional with per-item error
// envelopes — one unparseable query does not fail its neighbors.
func (h *Handler) estimateBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large", "batch body too large")
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", "malformed batch request: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch")
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		writeError(w, http.StatusBadRequest, "batch_too_large",
			"batch exceeds the per-request query cap")
		return
	}
	method := core.MethodRecursiveVoting
	if req.Method != "" {
		method = core.Method(req.Method)
	}

	h.mu.RLock()
	defer h.mu.RUnlock()
	sum := h.c.Summary()
	scope := scopeFor("", sum)
	if _, err := sum.LookupMethod(method); err != nil {
		writeCoreError(w, err)
		return
	}
	// Resolve and validate each entry's effective method. A bad per-item
	// override fails that item alone, mirroring per-item parse errors.
	methods := make([]core.Method, len(req.Queries))
	items := make([]batchItem, len(req.Queries))
	for i, entry := range req.Queries {
		m := method
		if entry.Method != "" {
			m = core.Method(entry.Method)
			if _, err := sum.LookupMethod(m); err != nil {
				_, code := coreErrorCode(err)
				items[i].Error = err.Error()
				items[i].Code = code
			}
		}
		methods[i] = m
		items[i].Query = entry.Q
		items[i].Method = string(m)
	}
	h.batchSizes.Observe(float64(len(req.Queries)))

	// Parse and consult the query cache first; only misses reach the
	// worker pool. pending[j] remembers which item slot miss j fills.
	var (
		pending     []int
		queries     []labeltree.Pattern
		itemMethods []core.Method
	)
	for i, entry := range req.Queries {
		if items[i].Error != "" {
			continue // failed method validation above
		}
		q, err := sum.ParseQuery(entry.Q)
		if errors.Is(err, core.ErrUnknownLabel) {
			// Same semantics as the single endpoint: a label no document
			// carries cannot match, so the true selectivity is zero.
			zero := 0.0
			items[i].Estimate = &zero
			continue
		}
		if err != nil {
			_, code := coreErrorCode(err)
			items[i].Error = err.Error()
			items[i].Code = code
			continue
		}
		if est, ok := h.cache.Get(scope, string(methods[i]), q); ok {
			e := est
			items[i].Estimate = &e
			continue
		}
		pending = append(pending, i)
		queries = append(queries, q)
		itemMethods = append(itemMethods, methods[i])
	}

	if len(queries) > 0 {
		results, err := sum.EstimateBatchContext(r.Context(), queries, method,
			core.BatchOptions{DisableFallback: h.res.DisableFallback, Methods: itemMethods})
		if err != nil {
			h.coreError(w, err)
			return
		}
		for j, res := range results {
			i := pending[j]
			if res.Err != nil {
				status, code := coreErrorCode(res.Err)
				if status == http.StatusGatewayTimeout {
					h.timeouts.Inc()
				}
				items[i].Error = res.Err.Error()
				items[i].Code = code
				continue
			}
			e := res.Estimate
			items[i].Estimate = &e
			items[i].Method = string(res.Method)
			if res.Degraded {
				items[i].Degraded = true
				h.degraded.Inc()
			}
			if res.Checked {
				ce, div := res.CrossEstimate, res.Divergent
				items[i].CrossEstimate = &ce
				items[i].Divergence = res.Divergence
				items[i].Divergent = &div
			}
			h.observeEnsemble(core.DegradedEstimate{Checked: res.Checked, Divergent: res.Divergent})
			// Cache under the producing method, mirroring the single
			// endpoint: degraded answers must not masquerade as the
			// requested method once pressure subsides.
			h.cache.Put(scope, string(res.Method), queries[j], res.Estimate)
		}
	}
	writeJSON(w, batchResponse{Method: string(method), Results: items})
}
