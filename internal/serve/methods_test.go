package serve

import (
	"net/http"
	"net/url"
	"strings"
	"testing"

	"treelattice/internal/core"
)

// TestMethodsEndpoint: GET /v1/methods enumerates every registered
// estimator with its capabilities, and names the default.
func TestMethodsEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	code, out := do(t, "GET", srv.URL+"/v1/methods", "")
	if code != http.StatusOK {
		t.Fatalf("methods: %d %v", code, out)
	}
	if out["default"] != string(core.MethodRecursiveVoting) {
		t.Fatalf("default = %v", out["default"])
	}
	list, ok := out["methods"].([]any)
	if !ok {
		t.Fatalf("methods list missing: %v", out)
	}
	byName := make(map[string]map[string]any, len(list))
	for _, e := range list {
		m := e.(map[string]any)
		byName[m["name"].(string)] = m
	}
	for _, m := range core.RegisteredMethods() {
		if _, ok := byName[string(m)]; !ok {
			t.Errorf("registered method %q missing from /v1/methods", m)
		}
	}
	s, ok := byName[string(core.MethodSampling)]
	if !ok || s["budgeted"] != true || s["needs_documents"] != true {
		t.Errorf("sampling capabilities wrong: %v", s)
	}
	e, ok := byName[string(core.MethodEnsemble)]
	if !ok || e["fallback"] != string(core.MethodRecursiveVoting) {
		t.Errorf("ensemble capabilities wrong: %v", e)
	}

	// Method not allowed on the route still gets an envelope.
	if code, _ := do(t, "POST", srv.URL+"/v1/methods", "{}"); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/methods: %d", code)
	}
}

// TestUnknownMethodEnumerates: the estimate endpoint's unknown_method
// error names the registered methods so clients can self-correct.
func TestUnknownMethodEnumerates(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand)&method=bogus", "")
	if code != http.StatusBadRequest || out["code"] != "unknown_method" {
		t.Fatalf("got %d %v", code, out)
	}
	msg, _ := out["error"].(string)
	for _, m := range []string{"sampling", "ensemble", "markov"} {
		if !strings.Contains(msg, m) {
			t.Errorf("error %q does not enumerate %q", msg, m)
		}
	}
}

// TestEstimateMethodsServeAll: every registered method answers the single
// estimate endpoint on a corpus-backed summary.
func TestEstimateMethodsServeAll(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	for _, m := range core.RegisteredMethods() {
		code, out := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)&method="+url.QueryEscape(string(m)), "")
		if code != http.StatusOK {
			t.Fatalf("method %s: %d %v", m, code, out)
		}
		if out["method"] != string(m) {
			t.Errorf("method %s echoed as %v", m, out["method"])
		}
		if _, ok := out["estimate"].(float64); !ok {
			t.Errorf("method %s returned no estimate: %v", m, out)
		}
	}
}

// TestEnsembleResponseAndStats: the ensemble annotates its response with
// the cross-check verdict, and /v1/stats carries the running counters.
func TestEnsembleResponseAndStats(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := do(t, "GET", srv.URL+"/v1/estimate?q=laptop(brand,price)&method=ensemble", "")
	if code != http.StatusOK {
		t.Fatalf("ensemble estimate: %d %v", code, out)
	}
	if _, ok := out["cross_estimate"].(float64); !ok {
		t.Fatalf("no cross_estimate in %v", out)
	}
	if div, ok := out["divergence"].(float64); !ok || div < 1 {
		t.Fatalf("divergence = %v", out["divergence"])
	}
	if _, ok := out["divergent"].(bool); !ok {
		t.Fatalf("no divergent flag in %v", out)
	}

	code, stats := do(t, "GET", srv.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	ens, ok := stats["ensemble"].(map[string]any)
	if !ok {
		t.Fatalf("no ensemble section in stats: %v", stats)
	}
	if ens["checked"].(float64) < 1 {
		t.Errorf("ensemble.checked = %v, want >= 1", ens["checked"])
	}
}

// TestBatchPerItemMethod: batch entries may be bare strings or objects
// carrying a per-item method override; every result echoes the method
// that answered it.
func TestBatchPerItemMethod(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := postBatch(t, srv.URL, `{
		"queries": [
			"laptop(brand)",
			{"q": "laptop(brand,price)", "method": "fix-sized"},
			{"q": "laptop(price)", "method": "sampling"},
			{"q": "laptop(brand)", "method": "nope"}
		],
		"method": "recursive"
	}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %v", code, out)
	}
	results := out["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	wantMethods := []string{"recursive", "fix-sized", "sampling", "nope"}
	for i, r := range results {
		item := r.(map[string]any)
		if item["method"] != wantMethods[i] {
			t.Errorf("item %d method = %v, want %s", i, item["method"], wantMethods[i])
		}
	}
	for i := 0; i < 3; i++ {
		item := results[i].(map[string]any)
		if _, ok := item["estimate"].(float64); !ok {
			t.Errorf("item %d has no estimate: %v", i, item)
		}
	}
	bad := results[3].(map[string]any)
	if bad["code"] != "unknown_method" {
		t.Errorf("unknown per-item method: %v", bad)
	}
	if _, ok := bad["estimate"]; ok {
		t.Errorf("failed item carries an estimate: %v", bad)
	}
}

// TestBatchEnsembleFields: ensemble items in a batch carry the
// cross-check verdict like the single endpoint.
func TestBatchEnsembleFields(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "POST", srv.URL+"/v1/docs/sample", doc)
	code, out := postBatch(t, srv.URL,
		`{"queries": [{"q": "laptop(brand,price)", "method": "ensemble"}]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %v", code, out)
	}
	item := out["results"].([]any)[0].(map[string]any)
	if item["method"] != "ensemble" {
		t.Fatalf("method = %v", item["method"])
	}
	if _, ok := item["cross_estimate"].(float64); !ok {
		t.Fatalf("no cross_estimate: %v", item)
	}
	if div, ok := item["divergence"].(float64); !ok || div < 1 {
		t.Fatalf("divergence = %v", item["divergence"])
	}
}
