package serve

import (
	"net/http"
	"testing"
)

// TestQueryEndpoint drives GET/POST /v1/query end to end: planned and
// naive executions, limits, count-only mode, descendant axes, and the
// zero-answer path for unknown labels.
func TestQueryEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	if code, out := do(t, "POST", srv.URL+"/v1/docs/sample", doc); code != http.StatusCreated {
		t.Fatalf("add: %d %v", code, out)
	}

	code, out := do(t, "GET", srv.URL+"/v1/query?q=//laptop(brand,price)", "")
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	if out["count"].(float64) != 2 {
		t.Fatalf("count = %v, want 2", out["count"])
	}
	matches := out["matches"].([]any)
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(matches))
	}
	m0 := matches[0].(map[string]any)
	if m0["doc"] != "sample" {
		t.Fatalf("doc = %v, want sample", m0["doc"])
	}
	if nodes := m0["nodes"].([]any); len(nodes) != 3 {
		t.Fatalf("nodes = %v, want 3 bindings", nodes)
	}
	if out["plan_method"] == "" || out["plan"] == nil {
		t.Fatalf("missing plan info: %v", out)
	}

	// limit=1 truncates materialization but not the count.
	code, out = do(t, "GET", srv.URL+"/v1/query?q=//laptop(brand,price)&limit=1", "")
	if code != http.StatusOK || out["count"].(float64) != 2 {
		t.Fatalf("limited query: %d %v", code, out)
	}
	if len(out["matches"].([]any)) != 1 || out["truncated"] != true {
		t.Fatalf("limit=1 should truncate: %v", out)
	}

	// count=1 suppresses tuples entirely.
	code, out = do(t, "GET", srv.URL+"/v1/query?q=//laptop(brand,price)&count=1", "")
	if code != http.StatusOK || out["count"].(float64) != 2 {
		t.Fatalf("count-only: %d %v", code, out)
	}
	if _, has := out["matches"]; has {
		t.Fatalf("count-only should omit matches: %v", out)
	}

	// naive=1 skips planning; same count.
	code, out = do(t, "GET", srv.URL+"/v1/query?q=//laptop(brand,price)&naive=1", "")
	if code != http.StatusOK || out["count"].(float64) != 2 {
		t.Fatalf("naive: %d %v", code, out)
	}
	if _, has := out["plan_method"]; has {
		t.Fatalf("naive should carry no plan method: %v", out)
	}

	// POST body mirrors the GET parameters.
	code, out = do(t, "POST", srv.URL+"/v1/query",
		`{"q": "//laptop(brand,price)", "count": true}`)
	if code != http.StatusOK || out["count"].(float64) != 2 {
		t.Fatalf("POST query: %d %v", code, out)
	}

	// Unknown label: zero matches without a scan.
	code, out = do(t, "GET", srv.URL+"/v1/query?q=//nosuchlabel", "")
	if code != http.StatusOK || out["count"].(float64) != 0 {
		t.Fatalf("unknown label: %d %v", code, out)
	}
}

// TestQueryEndpointErrors covers the envelope codes specific to the
// query route.
func TestQueryEndpointErrors(t *testing.T) {
	srv, _ := newServer(t)
	if code, out := do(t, "POST", srv.URL+"/v1/docs/sample", doc); code != http.StatusCreated {
		t.Fatalf("add: %d %v", code, out)
	}

	cases := []struct {
		name, method, url, body string
		status                  int
		code                    string
	}{
		{"missing q", "GET", "/v1/query", "", http.StatusBadRequest, "bad_query"},
		{"syntax", "GET", "/v1/query?q=laptop((", "", http.StatusBadRequest, "bad_query"},
		{"bad limit", "GET", "/v1/query?q=//laptop&limit=x", "", http.StatusBadRequest, "bad_query"},
		{"bad method", "GET", "/v1/query?q=//laptop&method=nope", "", http.StatusBadRequest, "unknown_method"},
		{"bad body", "POST", "/v1/query", "{", http.StatusBadRequest, "bad_query"},
		{"wrong verb", "DELETE", "/v1/query", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"unknown tenant", "GET", "/v1/t/ghost/query?q=//laptop", "", http.StatusNotFound, "unknown_tenant"},
	}
	for _, tc := range cases {
		code, out := do(t, tc.method, srv.URL+tc.url, tc.body)
		if code != tc.status || out["code"] != tc.code {
			t.Errorf("%s: got %d %v, want %d %s", tc.name, code, out, tc.status, tc.code)
		}
	}
}

// TestTenantQueryDefault exercises /v1/t/{tenant}/query against the
// default tenant (the live corpus) — the one tenant that always has
// documents bound.
func TestTenantQueryDefault(t *testing.T) {
	srv, _ := newServer(t)
	if code, out := do(t, "POST", srv.URL+"/v1/docs/sample", doc); code != http.StatusCreated {
		t.Fatalf("add: %d %v", code, out)
	}
	code, out := do(t, "GET", srv.URL+"/v1/t/default/query?q=//laptop(brand)", "")
	if code != http.StatusOK {
		t.Fatalf("tenant query: %d %v", code, out)
	}
	if out["tenant"] != "default" || out["count"].(float64) != 2 {
		t.Fatalf("tenant query answer: %v", out)
	}
}

// TestQueryStatsSection checks /v1/stats grows a query section fed by
// executions, including the calibration histogram.
func TestQueryStatsSection(t *testing.T) {
	srv, _ := newServer(t)
	if code, out := do(t, "POST", srv.URL+"/v1/docs/sample", doc); code != http.StatusCreated {
		t.Fatalf("add: %d %v", code, out)
	}
	if code, out := do(t, "GET", srv.URL+"/v1/query?q=//laptop(brand,price)", ""); code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	code, out := do(t, "GET", srv.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	qs, ok := out["query"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing query section: %v", out["query"])
	}
	if qs["executed"].(float64) < 1 {
		t.Fatalf("executed = %v, want >= 1", qs["executed"])
	}
	if qs["calibrated"].(float64) < 1 {
		t.Fatalf("calibrated = %v, want >= 1 (planned run should observe ratio)", qs["calibrated"])
	}
}
