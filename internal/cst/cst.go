// Package cst implements a Correlated Sub-path Tree baseline in the
// style of Chen et al. (ICDE 2001), the earliest twig-selectivity method
// the paper compares against in its related work: store the counts of all
// downward label paths up to a length L, and augment each stored path
// with a set-hashing (min-hash) signature of the data nodes it starts at,
// so the correlation between the branches of a twig can be estimated from
// signature intersections instead of being assumed away.
//
// A twig query is decomposed into its root-to-leaf paths. Each branch
// path contributes (a) its anchored occurrence count, (b) the set of
// anchor nodes supporting it. The twig estimate is
//
//	|∩ supports| · Π (anchored count / |support|)
//
// with the support intersection sized by min-hash Jaccard estimation —
// exactly the role the set-hashing signatures play in CST. Paths longer
// than L fall back to an order-(L−1) Markov extension.
package cst

import (
	"fmt"
	"strings"

	"treelattice/internal/labeltree"
)

// Options configures construction.
type Options struct {
	// MaxPathLen is the maximum stored path length L (default 4).
	MaxPathLen int
	// SignatureSize is the number of min-hash slots per stored path
	// (default 32).
	SignatureSize int
}

func (o *Options) fill() {
	if o.MaxPathLen == 0 {
		o.MaxPathLen = 4
	}
	if o.SignatureSize == 0 {
		o.SignatureSize = 32
	}
}

// Tree is a built CST summary. It is immutable and safe for concurrent
// use.
type Tree struct {
	opts    Options
	dict    *labeltree.Dict
	entries map[string]*entry
}

type entry struct {
	count    int64    // occurrences of the path (anchored anywhere)
	support  int64    // distinct start nodes
	sig      []uint32 // min-hash signature of the start-node set
	lastSeen int32    // during construction: last start node folded in
}

// Build scans every downward path of length ≤ L from every node.
func Build(t *labeltree.Tree, opts Options) *Tree {
	opts.fill()
	c := &Tree{opts: opts, dict: t.Dict(), entries: make(map[string]*entry)}
	labels := make([]labeltree.LabelID, 0, opts.MaxPathLen)
	var walk func(start, at int32)
	walk = func(start, at int32) {
		labels = append(labels, t.Label(at))
		c.record(labels, start)
		if len(labels) < opts.MaxPathLen {
			for _, ch := range t.Children(at) {
				walk(start, ch)
			}
		}
		labels = labels[:len(labels)-1]
	}
	for v := int32(0); int(v) < t.Size(); v++ {
		walk(v, v)
	}
	return c
}

func (c *Tree) record(labels []labeltree.LabelID, start int32) {
	key := pathKey(labels)
	e, ok := c.entries[key]
	if !ok {
		e = &entry{sig: newSignature(c.opts.SignatureSize), lastSeen: -1}
		c.entries[key] = e
	}
	e.count++
	if e.lastSeen != start {
		e.lastSeen = start
		e.support++
		foldSignature(e.sig, uint32(start))
	}
}

// Len reports the number of stored paths.
func (c *Tree) Len() int { return len(c.entries) }

// SizeBytes is the accounted storage size: 16 bytes of counters plus 4
// per signature slot and 4 per path step.
func (c *Tree) SizeBytes() int {
	total := 0
	for k := range c.entries {
		total += 16 + 4*c.opts.SignatureSize + 4*strings.Count(k, "/")
	}
	return total
}

// Name identifies the estimator in experiment output.
func (c *Tree) Name() string { return "cst" }

// PathCount returns the stored count of a downward label path (0 if it
// does not occur); paths longer than L are Markov-extended.
func (c *Tree) PathCount(labels []labeltree.LabelID) float64 {
	if len(labels) == 0 {
		return 0
	}
	L := c.opts.MaxPathLen
	if len(labels) <= L {
		if e, ok := c.entries[pathKey(labels)]; ok {
			return float64(e.count)
		}
		return 0
	}
	est := c.PathCount(labels[:L])
	for i := 1; i+L <= len(labels); i++ {
		num := c.PathCount(labels[i : i+L])
		den := c.PathCount(labels[i : i+L-1])
		if den == 0 {
			return 0
		}
		est *= num / den
	}
	return est
}

// Estimate returns the CST estimate of a twig pattern's selectivity:
// occurrences of the root label times the expected per-occurrence matches
// of the body, where each branching point multiplies the branches'
// conditional multiplicities (count ratios of stored paths) and applies a
// set-hashing correlation correction — the joint branch support sized by
// min-hash intersection against the independence expectation.
func (c *Tree) Estimate(q labeltree.Pattern) float64 {
	children := make([][]int32, q.Size())
	for i := int32(1); int(i) < q.Size(); i++ {
		children[q.Parent(i)] = append(children[q.Parent(i)], i)
	}
	anchor := []labeltree.LabelID{q.Label(0)}
	rootCount := c.PathCount(anchor)
	if rootCount == 0 {
		return 0
	}
	return rootCount * c.estFrom(q, 0, anchor, children)
}

// estFrom returns the expected matches of the subtree rooted at query
// node n per occurrence of the anchor path (which ends at n's label).
func (c *Tree) estFrom(q labeltree.Pattern, n int32, anchor []labeltree.LabelID, children [][]int32) float64 {
	kids := children[n]
	if len(kids) == 0 {
		return 1
	}
	anchorCnt := c.PathCount(anchor)
	if anchorCnt == 0 {
		return 0
	}
	prod := 1.0
	type suppInfo struct {
		size int64
		sig  []uint32
	}
	var supports []suppInfo
	for _, k := range kids {
		kidAnchor := append(anchor[:len(anchor):len(anchor)], q.Label(k))
		kc := c.PathCount(kidAnchor)
		if kc == 0 {
			return 0
		}
		sub := c.estFrom(q, k, kidAnchor, children)
		if sub == 0 {
			return 0
		}
		prod *= (kc / anchorCnt) * sub
		size, sig := c.supportOf(kidAnchor)
		supports = append(supports, suppInfo{size: size, sig: sig})
	}
	if len(kids) < 2 {
		return prod
	}
	// Correlation correction at this branching point: the fraction of
	// anchor-path instances supporting *all* branches, against the
	// independence expectation Π per-branch fractions.
	anchorSupp, _ := c.supportOf(anchor)
	if anchorSupp == 0 {
		return 0
	}
	joint := float64(supports[0].size)
	jointSig := supports[0].sig
	indepFrac := 1.0
	for i, st := range supports {
		if st.size == 0 || st.sig == nil {
			return 0
		}
		indepFrac *= float64(st.size) / float64(anchorSupp)
		if i == 0 {
			continue
		}
		j := jaccard(jointSig, st.sig)
		inter := j / (1 + j) * (joint + float64(st.size))
		if inter > joint {
			inter = joint
		}
		if inter > float64(st.size) {
			inter = float64(st.size)
		}
		joint = inter
		jointSig = mergeMin(jointSig, st.sig)
	}
	if joint <= 0 {
		return 0
	}
	jointFrac := joint / float64(anchorSupp)
	if jointFrac > 1 {
		jointFrac = 1
	}
	if indepFrac <= 0 {
		return 0
	}
	return prod * jointFrac / indepFrac
}

// supportOf returns the support statistics of a branch path, truncating
// to the stored length when necessary (the truncation keeps the anchor
// set of the stored prefix, CST's behaviour for long paths).
func (c *Tree) supportOf(labels []labeltree.LabelID) (int64, []uint32) {
	if len(labels) > c.opts.MaxPathLen {
		labels = labels[:c.opts.MaxPathLen]
	}
	e, ok := c.entries[pathKey(labels)]
	if !ok {
		return 0, nil
	}
	return e.support, e.sig
}

// rootToLeafPaths decomposes a pattern into its root-to-leaf label paths.
func rootToLeafPaths(q labeltree.Pattern) [][]labeltree.LabelID {
	children := make([][]int32, q.Size())
	for i := int32(1); int(i) < q.Size(); i++ {
		children[q.Parent(i)] = append(children[q.Parent(i)], i)
	}
	var out [][]labeltree.LabelID
	var walk func(i int32, prefix []labeltree.LabelID)
	walk = func(i int32, prefix []labeltree.LabelID) {
		prefix = append(prefix, q.Label(i))
		if len(children[i]) == 0 {
			out = append(out, append([]labeltree.LabelID(nil), prefix...))
			return
		}
		for _, ch := range children[i] {
			walk(ch, prefix)
		}
	}
	walk(0, nil)
	return out
}

func pathKey(labels []labeltree.LabelID) string {
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%d/", l)
	}
	return b.String()
}

// ---- min-hash signatures ----

// newSignature returns a sketch with all slots empty (max value).
func newSignature(k int) []uint32 {
	s := make([]uint32, k)
	for i := range s {
		s[i] = ^uint32(0)
	}
	return s
}

// foldSignature folds one element into the sketch: slot i keeps the
// minimum of hash_i(x) over all folded elements.
func foldSignature(sig []uint32, x uint32) {
	for i := range sig {
		h := slotHash(x, uint32(i))
		if h < sig[i] {
			sig[i] = h
		}
	}
}

// slotHash is a per-slot 32-bit mix (xorshift-multiply).
func slotHash(x, slot uint32) uint32 {
	h := x*2654435761 + slot*0x9E3779B9
	h ^= h >> 16
	h *= 0x85EBCA6B
	h ^= h >> 13
	h *= 0xC2B2AE35
	h ^= h >> 16
	return h
}

// jaccard estimates |A∩B|/|A∪B| from two sketches.
func jaccard(a, b []uint32) float64 {
	if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] && a[i] != ^uint32(0) {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// mergeMin approximates the sketch of an intersection by the slot-wise
// maximum (elements surviving in both sets have the larger of the two
// minima as a lower bound).
func mergeMin(a, b []uint32) []uint32 {
	out := make([]uint32, len(a))
	for i := range a {
		if a[i] > b[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}
