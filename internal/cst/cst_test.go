package cst

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/datagen"
	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/mine"
	"treelattice/internal/treetest"
	"treelattice/internal/workload"
	"treelattice/internal/xmlparse"
)

func parseDoc(t *testing.T, doc string) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func ids(dict *labeltree.Dict, names ...string) []labeltree.LabelID {
	out := make([]labeltree.LabelID, len(names))
	for i, n := range names {
		id, ok := dict.Lookup(n)
		if !ok {
			id = -1
		}
		out[i] = id
	}
	return out
}

func TestPathCountsExact(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b><c/></b><b><c/><c/></b></a>`)
	c := Build(tr, Options{MaxPathLen: 3})
	for _, tc := range []struct {
		path []string
		want float64
	}{
		{[]string{"a"}, 1},
		{[]string{"b"}, 2},
		{[]string{"c"}, 3},
		{[]string{"a", "b"}, 2},
		{[]string{"b", "c"}, 3},
		{[]string{"a", "b", "c"}, 3},
		{[]string{"c", "b"}, 0},
	} {
		if got := c.PathCount(ids(dict, tc.path...)); got != tc.want {
			t.Errorf("PathCount(%v) = %v, want %v", tc.path, got, tc.want)
		}
	}
	if got := c.PathCount(nil); got != 0 {
		t.Errorf("empty path = %v", got)
	}
}

func TestPathMarkovExtension(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b><c><d/></c></b></a>`)
	c := Build(tr, Options{MaxPathLen: 2})
	// a/b/c/d with L=2: f(ab)·f(bc)/f(b)·f(cd)/f(c) = 1.
	got := c.PathCount(ids(dict, "a", "b", "c", "d"))
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("extended path = %v, want 1", got)
	}
}

func TestTwigEstimateOnUncorrelatedDoc(t *testing.T) {
	// Every a has both b and c: supports coincide, Jaccard 1, estimate
	// exact.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 50; i++ {
		sb.WriteString("<a><b/><c/></a>")
	}
	sb.WriteString("</r>")
	tr, dict := parseDoc(t, sb.String())
	c := Build(tr, Options{})
	q := labeltree.MustParsePattern("a(b,c)", dict)
	truth := float64(match.NewCounter(tr).Count(q))
	got := c.Estimate(q)
	if math.Abs(got-truth) > 0.05*truth {
		t.Fatalf("Estimate = %v, want ~%v", got, truth)
	}
}

func TestTwigEstimateSeesCorrelation(t *testing.T) {
	// Anti-correlated branches: half the a's have b, the other half c,
	// never both. A naive independence estimate gives 25·1·1 = 25-ish
	// matches; the signatures see disjoint supports and report ~0.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			sb.WriteString("<a><b/></a>")
		} else {
			sb.WriteString("<a><c/></a>")
		}
	}
	sb.WriteString("</r>")
	tr, dict := parseDoc(t, sb.String())
	c := Build(tr, Options{})
	q := labeltree.MustParsePattern("a(b,c)", dict)
	got := c.Estimate(q)
	if got > 3 {
		t.Fatalf("Estimate = %v on anti-correlated branches, want ~0", got)
	}
}

func TestTwigEstimateZeroBranch(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b/></a>`)
	c := Build(tr, Options{})
	q := labeltree.MustParsePattern("a(b,zzz)", dict)
	if got := c.Estimate(q); got != 0 {
		t.Fatalf("Estimate = %v, want 0", got)
	}
}

func TestSizeAccounting(t *testing.T) {
	tr, _ := parseDoc(t, `<a><b/><c/></a>`)
	c := Build(tr, Options{SignatureSize: 8})
	if c.Len() == 0 || c.SizeBytes() <= 0 {
		t.Fatalf("Len=%d Size=%d", c.Len(), c.SizeBytes())
	}
	if c.Name() != "cst" {
		t.Fatal("name changed")
	}
}

func TestJaccardSketchAccuracy(t *testing.T) {
	// Two overlapping sets with known Jaccard ~ 1/3.
	a := newSignature(128)
	b := newSignature(128)
	for x := uint32(0); x < 200; x++ {
		foldSignature(a, x)
	}
	for x := uint32(100); x < 300; x++ {
		foldSignature(b, x)
	}
	j := jaccard(a, b)
	if j < 0.15 || j > 0.55 {
		t.Fatalf("jaccard = %v, want ~0.33", j)
	}
	if jaccard(a, a) != 1 {
		t.Fatal("self jaccard != 1")
	}
	if jaccard(a, nil) != 0 {
		t.Fatal("nil jaccard != 0")
	}
}

func TestRootToLeafPaths(t *testing.T) {
	dict := labeltree.NewDict()
	q := labeltree.MustParsePattern("a(b,c(d))", dict)
	paths := rootToLeafPaths(q)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	if len(paths[0]) != 2 || len(paths[1]) != 3 {
		t.Fatalf("path lengths = %d, %d", len(paths[0]), len(paths[1]))
	}
}

// TestCSTWorseThanTreeLatticeOnPaths reproduces the related-work claim
// the paper cites: Markov-property methods (which TreeLattice subsumes)
// beat CST on path expressions beyond the stored length.
func TestCSTVersusTreeLatticeOnTwigs(t *testing.T) {
	dict := labeltree.NewDict()
	tr, err := datagen.Generate(datagen.Config{Profile: datagen.NASA, Scale: 8000, Seed: 31}, dict)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mine.Mine(tr, 4, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lat := estimate.NewRecursive(sum, true)
	c := Build(tr, Options{MaxPathLen: 4})
	qs, err := workload.Positive(tr, workload.Options{Sizes: []int{5, 6}, PerSize: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var latErr, cstErr float64
	n := 0
	for _, size := range []int{5, 6} {
		for _, q := range qs[size] {
			truth := float64(q.TrueCount)
			latErr += math.Abs(lat.Estimate(q.Pattern)-truth) / math.Max(1, truth)
			cstErr += math.Abs(c.Estimate(q.Pattern)-truth) / math.Max(1, truth)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no workload")
	}
	t.Logf("avg rel err: treelattice=%.3f cst=%.3f (n=%d)", latErr/float64(n), cstErr/float64(n), n)
	if latErr > cstErr {
		t.Fatalf("TreeLattice (%.3f) not better than CST (%.3f) on NASA twigs", latErr/float64(n), cstErr/float64(n))
	}
}

func TestEstimateRandomizedSanity(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(7))
	tr := treetest.RandomTree(rng, 200, alphabet, dict)
	c := Build(tr, Options{})
	counter := match.NewCounter(tr)
	for trial := 0; trial < 100; trial++ {
		q := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		got := c.Estimate(q)
		if got < 0 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Estimate = %v for %s", got, q.String(dict))
		}
		if counter.Count(q) == 0 && q.IsPath() && q.Size() <= 4 {
			if got != 0 {
				t.Fatalf("nonzero estimate %v for absent stored path %s", got, q.String(dict))
			}
		}
	}
}
