// Package loadgen drives estimation traffic against a TreeLattice
// deployment and measures what it achieves. It closes the loop the
// accuracy experiments leave open: Section 5 of the paper evaluates what
// the estimates are worth; loadgen measures what they cost to serve.
//
// A load run has three ingredients:
//
//   - A Workload: a positive/negative query mix sampled from real
//     documents through internal/workload, pre-rendered to both pattern
//     and twig-text form so either target kind can consume it without
//     per-request work. Generation is seeded — the same seed reproduces
//     the same mix run-to-run.
//   - A Target: where requests go. EstimatorTarget calls an in-process
//     estimator (measures the estimation engine alone); HTTPTarget drives
//     a live /v1/estimate endpoint (measures the full serving path).
//   - Options: closed- or open-loop arrival control, concurrency, warmup,
//     and a fixed-duration or fixed-count stopping rule.
//
// Closed loop (the default) keeps Concurrency workers saturated: each
// issues its next request as soon as the previous one returns, measuring
// maximum sustainable throughput. Open loop (OpenLoopQPS > 0) schedules
// arrivals on a fixed clock regardless of completions, the way real user
// traffic behaves, so queueing delay shows up in the latencies rather
// than being absorbed by backpressure; arrivals that would exceed
// MaxOutstanding in-flight requests are counted as Dropped instead of
// silently coordinating with the server.
//
// Latencies are recorded into an obs fixed-bucket histogram, so driver
// quantiles and server-side /v1/metrics quantiles are directly
// comparable.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/obs"
	"treelattice/internal/workload"
)

// Item is one issuable query.
type Item struct {
	// Pattern is the parsed query, consumed by in-process targets.
	Pattern labeltree.Pattern
	// Text is the twig syntax rendering, consumed by HTTP targets.
	Text string
	// Negative marks a zero-selectivity query.
	Negative bool
}

// Workload is a generated query mix.
type Workload struct {
	Items []Item
	// Positives and Negatives count the mix composition.
	Positives, Negatives int
}

// WorkloadOptions configures mix generation.
type WorkloadOptions struct {
	// Sizes lists query sizes to sample; default {3, 4, 5}.
	Sizes []int
	// PerSize is the number of distinct positive queries per size per
	// document; default 20.
	PerSize int
	// NegativeFraction is the target share of zero-selectivity queries in
	// the mix (0..1); default 0.
	NegativeFraction float64
	// Seed makes generation deterministic, including the final shuffle.
	Seed int64
}

func (o *WorkloadOptions) defaults() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{3, 4, 5}
	}
	if o.PerSize <= 0 {
		o.PerSize = 20
	}
}

// BuildWorkload samples a query mix from the given documents (all sharing
// dict). Sizes a document cannot produce are skipped for that document;
// the call fails only if no document yields any query.
func BuildWorkload(trees []*labeltree.Tree, dict *labeltree.Dict, opts WorkloadOptions) (*Workload, error) {
	opts.defaults()
	if len(trees) == 0 {
		return nil, fmt.Errorf("loadgen: no documents to sample queries from")
	}
	var pos, neg []Item
	for i, t := range trees {
		wopts := workload.Options{
			Sizes:   opts.Sizes,
			PerSize: opts.PerSize,
			// Offset the seed per document so identical documents do not
			// contribute identical mixes.
			Seed: opts.Seed + int64(i)*1_000_003,
		}
		p, err := workload.Positive(t, wopts)
		if err != nil {
			return nil, fmt.Errorf("loadgen: sampling positive workload: %w", err)
		}
		// Iterate sizes in order: map iteration would make the mix depend
		// on runtime map randomization, defeating the seed.
		for _, size := range wopts.Sizes {
			for _, q := range p[size] {
				pos = append(pos, Item{Pattern: q.Pattern, Text: q.Pattern.String(dict)})
			}
		}
		if opts.NegativeFraction > 0 {
			n, err := workload.Negative(t, p, wopts)
			if err != nil {
				return nil, fmt.Errorf("loadgen: sampling negative workload: %w", err)
			}
			for _, size := range wopts.Sizes {
				for _, q := range n[size] {
					neg = append(neg, Item{Pattern: q.Pattern, Text: q.Pattern.String(dict), Negative: true})
				}
			}
		}
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("loadgen: documents produced no positive queries at sizes %v", opts.Sizes)
	}
	// Trim negatives to the requested share of the final mix:
	// frac = n / (n + len(pos))  ⇒  n = frac/(1-frac) · len(pos).
	if f := opts.NegativeFraction; f > 0 && f < 1 {
		want := int(f / (1 - f) * float64(len(pos)))
		if want < len(neg) {
			neg = neg[:want]
		}
	}
	items := append(pos, neg...)
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return &Workload{Items: items, Positives: len(pos), Negatives: len(neg)}, nil
}

// Accuracy summarizes estimate quality against exact Definition-1 match
// counts on a workload subsample. QError is the standard multiplicative
// metric max(est/exact, exact/est) with +1 smoothing so zero-selectivity
// queries still score; 1.0 is a perfect estimate.
type Accuracy struct {
	Queries       int     `json:"queries"`
	MeanQError    float64 `json:"mean_q_error"`
	MedianQError  float64 `json:"median_q_error"`
	P95QError     float64 `json:"p95_q_error"`
	MaxQError     float64 `json:"max_q_error"`
	MeanAbsRelErr float64 `json:"mean_abs_rel_err"`
	// Checked and Divergent count ensemble cross-check verdicts among the
	// measured queries; zero for single-method estimators.
	Checked   int `json:"ensemble_checked,omitempty"`
	Divergent int `json:"ensemble_divergent,omitempty"`
	// BudgetExhausted counts queries the method could not answer within
	// its budget (scored queries exclude them — the matrix reports what
	// the method achieves when it answers, and how often it cannot).
	BudgetExhausted int `json:"budget_exhausted,omitempty"`
}

// qError is the smoothed multiplicative error between an estimate and the
// exact count.
func qError(est, exact float64) float64 {
	a, b := est+1, exact+1
	if a < b {
		a, b = b, a
	}
	return a / b
}

// MeasureAccuracy estimates up to maxQueries workload items under method
// (strictly — no degradation, so the numbers describe the method itself)
// and scores each against its exact match count over trees. maxQueries
// bounds the exact-count bill, which dwarfs estimation cost on large
// documents; <= 0 measures the whole workload.
func MeasureAccuracy(ctx context.Context, sum *core.Summary, trees []*labeltree.Tree, w *Workload, method core.Method, maxQueries int) (*Accuracy, error) {
	if w == nil || len(w.Items) == 0 {
		return nil, fmt.Errorf("loadgen: empty workload")
	}
	n := len(w.Items)
	if maxQueries > 0 && maxQueries < n {
		n = maxQueries
	}
	counters := make([]*match.Counter, len(trees))
	for i, t := range trees {
		counters[i] = match.NewCounter(t)
	}
	acc := &Accuracy{}
	qerrs := make([]float64, 0, n)
	var sumQ, sumRel float64
	for _, it := range w.Items[:n] {
		de, err := sum.EstimateStrict(ctx, it.Pattern, method)
		if errors.Is(err, core.ErrBudgetExhausted) {
			acc.BudgetExhausted++
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("loadgen: estimating %q: %w", it.Text, err)
		}
		var exact int64
		for _, c := range counters {
			cnt, err := c.CountContext(ctx, it.Pattern)
			if err != nil {
				return nil, err
			}
			exact += cnt
		}
		qe := qError(de.Estimate, float64(exact))
		qerrs = append(qerrs, qe)
		sumQ += qe
		sumRel += math.Abs(de.Estimate-float64(exact)) / (float64(exact) + 1)
		if de.Checked {
			acc.Checked++
			if de.Divergent {
				acc.Divergent++
			}
		}
	}
	scored := len(qerrs)
	acc.Queries = scored
	if scored == 0 {
		return acc, nil
	}
	sort.Float64s(qerrs)
	acc.MeanQError = sumQ / float64(scored)
	acc.MedianQError = qerrs[scored/2]
	acc.P95QError = qerrs[min(scored-1, scored*95/100)]
	acc.MaxQError = qerrs[scored-1]
	acc.MeanAbsRelErr = sumRel / float64(scored)
	return acc, nil
}

// Target executes one request. Implementations must be safe for
// concurrent Issue calls.
type Target interface {
	Issue(it Item) error
	Name() string
}

// BatchTarget is a Target that can carry several queries in one request.
// Options.BatchSize > 1 requires the target to implement it.
type BatchTarget interface {
	Target
	IssueBatch(items []Item) error
}

// EstimatorTarget drives an in-process estimator — the estimation engine
// with no HTTP, parsing, or cache in the way.
type EstimatorTarget struct {
	est estimate.Estimator
}

// NewEstimatorTarget resolves method over sum.
func NewEstimatorTarget(sum *core.Summary, method core.Method) (*EstimatorTarget, error) {
	est, err := sum.Estimator(method)
	if err != nil {
		return nil, err
	}
	return &EstimatorTarget{est: est}, nil
}

// Issue estimates the item's pattern.
func (t *EstimatorTarget) Issue(it Item) error {
	t.est.Estimate(it.Pattern)
	return nil
}

// Name identifies the target in reports.
func (t *EstimatorTarget) Name() string { return "inprocess:" + t.est.Name() }

// HTTPTarget drives a live query endpoint (default /v1/estimate).
type HTTPTarget struct {
	base   string
	path   string
	method string
	extra  string
	client *http.Client
	accept map[int]bool
}

// NewHTTPTarget points at a server's base URL (e.g. "http://127.0.0.1:8357").
// A nil client uses a dedicated one with sensible pooling for load
// generation.
func NewHTTPTarget(base string, method core.Method, client *http.Client) *HTTPTarget {
	if client == nil {
		transport := http.DefaultTransport.(*http.Transport).Clone()
		// The default per-host idle cap (2) would force new connections
		// under concurrency and measure TCP setup, not the server.
		transport.MaxIdleConnsPerHost = 256
		client = &http.Client{Transport: transport, Timeout: 30 * time.Second}
	}
	return &HTTPTarget{base: base, path: "/v1/estimate", method: string(method), client: client}
}

// WithPath retargets Issue at a different query endpoint taking the same
// q/method parameters (e.g. "/v1/exact" for overload-testing the expensive
// ground-truth scan, or "/v1/query" for a twig-execution mix). Returns the
// target for chaining.
func (t *HTTPTarget) WithPath(path string) *HTTPTarget {
	t.path = path
	return t
}

// WithParam appends a fixed query parameter to every issued request —
// e.g. WithParam("count", "1") turns a /v1/query mix count-only so the
// measured path is planning + execution, not match serialization.
// Returns the target for chaining.
func (t *HTTPTarget) WithParam(key, value string) *HTTPTarget {
	t.extra += "&" + url.QueryEscape(key) + "=" + url.QueryEscape(value)
	return t
}

// WithAcceptStatus marks extra HTTP statuses as non-errors (e.g. 429 when
// deliberately driving a server past its admission limit: shedding is the
// behavior under test, not a failure). 200 is always accepted.
func (t *HTTPTarget) WithAcceptStatus(codes ...int) *HTTPTarget {
	if t.accept == nil {
		t.accept = make(map[int]bool, len(codes))
	}
	for _, c := range codes {
		t.accept[c] = true
	}
	return t
}

// Issue GETs the configured endpoint for the item and drains the response.
func (t *HTTPTarget) Issue(it Item) error {
	u := t.base + t.path + "?q=" + url.QueryEscape(it.Text)
	if t.method != "" {
		u += "&method=" + url.QueryEscape(t.method)
	}
	u += t.extra
	resp, err := t.client.Get(u)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && !t.accept[resp.StatusCode] {
		return fmt.Errorf("loadgen: %s returned %d", u, resp.StatusCode)
	}
	return nil
}

// Name identifies the target in reports.
func (t *HTTPTarget) Name() string { return "http:" + t.base }

// HTTPBatchTarget drives POST /v1/estimate/batch: one request carries a
// whole batch, so the driver measures the amortization the batch endpoint
// buys — one HTTP round trip and one admission slot per BatchSize queries,
// plus the shared sub-estimate cache across the batch's worker pool.
type HTTPBatchTarget struct {
	base   string
	method string
	client *http.Client
}

// NewHTTPBatchTarget points at a server's base URL. A nil client uses the
// same pooled defaults as NewHTTPTarget.
func NewHTTPBatchTarget(base string, method core.Method, client *http.Client) *HTTPBatchTarget {
	if client == nil {
		transport := http.DefaultTransport.(*http.Transport).Clone()
		transport.MaxIdleConnsPerHost = 256
		client = &http.Client{Transport: transport, Timeout: 30 * time.Second}
	}
	return &HTTPBatchTarget{base: base, method: string(method), client: client}
}

// Issue sends a single-query batch, satisfying Target so the same target
// can serve both modes of a single/batched comparison run.
func (t *HTTPBatchTarget) Issue(it Item) error { return t.IssueBatch([]Item{it}) }

// IssueBatch POSTs the items as one batch request and drains the response.
// Per-item error envelopes inside a 200 response are the server doing its
// job, not a driver-visible failure; only transport errors and non-200
// statuses count.
func (t *HTTPBatchTarget) IssueBatch(items []Item) error {
	var body bytes.Buffer
	body.WriteString(`{"queries":[`)
	for i, it := range items {
		if i > 0 {
			body.WriteByte(',')
		}
		b, _ := json.Marshal(it.Text)
		body.Write(b)
	}
	body.WriteString(`]`)
	if t.method != "" {
		body.WriteString(`,"method":`)
		b, _ := json.Marshal(t.method)
		body.Write(b)
	}
	body.WriteString(`}`)
	resp, err := t.client.Post(t.base+"/v1/estimate/batch", "application/json", &body)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: batch returned %d", resp.StatusCode)
	}
	return nil
}

// Name identifies the target in reports.
func (t *HTTPBatchTarget) Name() string { return "http-batch:" + t.base }

// RoundRobin fans Issue calls across targets in rotation, so one driver
// measures a fleet of replicas as a unit: the dispatch order is a global
// atomic counter, which spreads closed-loop workers evenly across the
// replicas regardless of which worker issues next.
func RoundRobin(targets ...Target) Target {
	if len(targets) == 1 {
		return targets[0]
	}
	return &roundRobinTarget{targets: targets}
}

type roundRobinTarget struct {
	targets []Target
	next    atomic.Uint64
}

// Issue dispatches to the next target in rotation.
func (t *roundRobinTarget) Issue(it Item) error {
	n := t.next.Add(1) - 1
	return t.targets[n%uint64(len(t.targets))].Issue(it)
}

// Name identifies the fleet in reports.
func (t *roundRobinTarget) Name() string {
	return fmt.Sprintf("roundrobin(%d):%s", len(t.targets), t.targets[0].Name())
}

// Options configures a load run.
type Options struct {
	// Concurrency is the worker count (closed loop) or the in-flight
	// budget's unit (open loop). Default GOMAXPROCS.
	Concurrency int
	// Duration stops the measured run after a fixed wall-clock time.
	// Exactly one of Duration and Requests must be set.
	Duration time.Duration
	// Requests stops the measured run after a fixed request count
	// (closed loop only).
	Requests int
	// Warmup runs the closed loop unmeasured for this long first, letting
	// caches fill and the scheduler settle.
	Warmup time.Duration
	// OpenLoopQPS, when positive, switches to open-loop arrivals at this
	// rate. Requires Duration.
	OpenLoopQPS float64
	// MaxOutstanding caps in-flight open-loop requests; arrivals beyond
	// it count as Dropped. Default 32 × Concurrency.
	MaxOutstanding int
	// BatchSize, when > 1, carries this many queries per request (closed
	// loop only; the target must implement BatchTarget). Issued and
	// AchievedQPS still count individual queries, so single and batched
	// runs compare directly; each latency observation covers one batch.
	BatchSize int
}

// Result is the outcome of a load run.
type Result struct {
	Target         string                `json:"target"`
	Mode           string                `json:"mode"` // "closed" | "open"
	Concurrency    int                   `json:"concurrency"`
	BatchSize      int                   `json:"batch_size,omitempty"`
	Issued         uint64                `json:"issued"`
	Errors         uint64                `json:"errors"`
	Dropped        uint64                `json:"dropped,omitempty"`
	ElapsedSeconds float64               `json:"elapsed_seconds"`
	AchievedQPS    float64               `json:"achieved_qps"`
	TargetQPS      float64               `json:"target_qps,omitempty"`
	Latency        obs.HistogramSnapshot `json:"latency"`
}

// Run executes a load run and reports the measured window (warmup
// excluded). The context cancels the run early; whatever was measured by
// then is still returned.
func Run(ctx context.Context, target Target, w *Workload, opts Options) (*Result, error) {
	if w == nil || len(w.Items) == 0 {
		return nil, fmt.Errorf("loadgen: empty workload")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	if (opts.Duration > 0) == (opts.Requests > 0) {
		return nil, fmt.Errorf("loadgen: exactly one of Duration and Requests must be set")
	}
	if opts.OpenLoopQPS > 0 {
		if opts.Duration <= 0 {
			return nil, fmt.Errorf("loadgen: open loop requires Duration")
		}
		if opts.MaxOutstanding <= 0 {
			opts.MaxOutstanding = 32 * opts.Concurrency
		}
		if opts.BatchSize > 1 {
			return nil, fmt.Errorf("loadgen: batched runs are closed loop only")
		}
	}
	if opts.BatchSize > 1 {
		if _, ok := target.(BatchTarget); !ok {
			return nil, fmt.Errorf("loadgen: target %s does not support batching", target.Name())
		}
	}

	if opts.Warmup > 0 {
		warmCtx, cancel := context.WithTimeout(ctx, opts.Warmup)
		runClosed(warmCtx, target, w, opts.Concurrency, 0, opts.BatchSize, nil, nil, nil)
		cancel()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}

	hist := obs.NewHistogram(nil)
	var issued, errs, dropped atomic.Uint64
	res := &Result{Target: target.Name(), Concurrency: opts.Concurrency}
	if opts.BatchSize > 1 {
		res.BatchSize = opts.BatchSize
	}
	start := time.Now()
	if opts.OpenLoopQPS > 0 {
		res.Mode = "open"
		res.TargetQPS = opts.OpenLoopQPS
		runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
		runOpen(runCtx, target, w, opts, hist, &issued, &errs, &dropped)
		cancel()
	} else {
		res.Mode = "closed"
		runCtx := ctx
		var cancel context.CancelFunc = func() {}
		if opts.Duration > 0 {
			runCtx, cancel = context.WithTimeout(ctx, opts.Duration)
		}
		runClosed(runCtx, target, w, opts.Concurrency, opts.Requests, opts.BatchSize, hist, &issued, &errs)
		cancel()
	}
	elapsed := time.Since(start)

	res.Issued = issued.Load()
	res.Errors = errs.Load()
	res.Dropped = dropped.Load()
	res.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		res.AchievedQPS = float64(res.Issued) / elapsed.Seconds()
	}
	res.Latency = hist.Snapshot()
	return res, nil
}

// runClosed keeps workers issuing back-to-back until the context is done
// or maxQueries (when positive) queries have been issued. batch > 1
// claims that many queries per request through the target's BatchTarget
// side. A nil hist skips recording (warmup). Counters count queries;
// latency observations cover one request (a whole batch).
func runClosed(ctx context.Context, target Target, w *Workload, workers, maxQueries, batch int, hist *obs.Histogram, issued, errs *atomic.Uint64) {
	bt, isBatch := target.(BatchTarget)
	if batch <= 1 || !isBatch {
		batch = 1
	}
	var next atomic.Uint64
	var wg sync.WaitGroup
	items := w.Items
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch: batches wrap around the workload ring, so
			// the claimed range is copied out instead of sliced.
			var scratch []Item
			if batch > 1 {
				scratch = make([]Item, 0, batch)
			}
			for {
				if ctx.Err() != nil {
					return
				}
				end := next.Add(uint64(batch))
				first := end - uint64(batch)
				if maxQueries > 0 {
					if first >= uint64(maxQueries) {
						return
					}
					if end > uint64(maxQueries) {
						end = uint64(maxQueries)
					}
				}
				n := end - first
				var err error
				start := time.Now()
				if batch == 1 {
					err = target.Issue(items[first%uint64(len(items))])
				} else {
					scratch = scratch[:0]
					for q := first; q < end; q++ {
						scratch = append(scratch, items[q%uint64(len(items))])
					}
					err = bt.IssueBatch(scratch)
				}
				if hist != nil {
					hist.ObserveSince(start)
					issued.Add(n)
					if err != nil {
						errs.Add(n)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runOpen schedules arrivals at a fixed rate until the context is done,
// spawning each request into a bounded in-flight pool.
func runOpen(ctx context.Context, target Target, w *Workload, opts Options, hist *obs.Histogram, issued, errs, dropped *atomic.Uint64) {
	interval := time.Duration(float64(time.Second) / opts.OpenLoopQPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, opts.MaxOutstanding)
	var wg sync.WaitGroup
	items := w.Items
	var n uint64
	nextArrival := time.Now()
	for {
		if ctx.Err() != nil {
			break
		}
		now := time.Now()
		if now.Before(nextArrival) {
			wait := nextArrival.Sub(now)
			select {
			case <-ctx.Done():
			case <-time.After(wait):
			}
			continue
		}
		nextArrival = nextArrival.Add(interval)
		it := items[n%uint64(len(items))]
		n++
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(it Item) {
				defer wg.Done()
				defer func() { <-sem }()
				start := time.Now()
				err := target.Issue(it)
				hist.ObserveSince(start)
				issued.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}(it)
		default:
			// In-flight budget exhausted: a real open-loop client would
			// queue unboundedly; we record the overload instead.
			dropped.Add(1)
		}
	}
	wg.Wait()
}
