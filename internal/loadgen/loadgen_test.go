package loadgen

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/corpus"
	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/serve"
	"treelattice/internal/xmlparse"
)

const doc = `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops><desktop><brand/></desktop></desktops></computer>`

func sampleTree(t *testing.T) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func genTree(t *testing.T, seed int64) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := datagen.Generate(datagen.Config{Profile: datagen.NASA, Scale: 2000, Seed: seed}, dict)
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func TestBuildWorkloadMix(t *testing.T) {
	tr, dict := genTree(t, 1)
	w, err := BuildWorkload([]*labeltree.Tree{tr}, dict, WorkloadOptions{
		Sizes: []int{3, 4}, PerSize: 10, NegativeFraction: 0.25, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Positives == 0 {
		t.Fatal("no positive queries")
	}
	var negs int
	for _, it := range w.Items {
		if it.Text == "" || it.Pattern.IsZero() {
			t.Fatalf("unrendered item: %+v", it)
		}
		if it.Negative {
			negs++
		}
	}
	if negs != w.Negatives {
		t.Fatalf("negative count mismatch: %d items vs %d recorded", negs, w.Negatives)
	}
	if negs == 0 {
		t.Fatal("mix has no negative queries despite NegativeFraction=0.25")
	}
	if frac := float64(negs) / float64(len(w.Items)); frac > 0.35 {
		t.Fatalf("negative fraction = %v, want ≈0.25", frac)
	}
}

// TestBuildWorkloadSeedReproducible is the -seed satellite: the same seed
// reproduces the same mix, a different seed changes it.
func TestBuildWorkloadSeedReproducible(t *testing.T) {
	render := func(seed int64) []string {
		tr, dict := genTree(t, 5)
		w, err := BuildWorkload([]*labeltree.Tree{tr}, dict, WorkloadOptions{
			Sizes: []int{3, 4}, PerSize: 15, NegativeFraction: 0.2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(w.Items))
		for i, it := range w.Items {
			out[i] = it.Text
		}
		return out
	}
	a, b, c := render(7), render(7), render(8)
	if len(a) == 0 {
		t.Fatal("empty workload")
	}
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatal("same seed produced different workloads")
	}
	if strings.Join(a, "|") == strings.Join(c, "|") {
		t.Fatal("different seeds produced identical workloads")
	}
}

type countingTarget struct {
	n    atomic.Uint64
	fail uint64 // every fail-th issue errors
}

func (c *countingTarget) Issue(Item) error {
	n := c.n.Add(1)
	if c.fail > 0 && n%c.fail == 0 {
		return errors.New("synthetic failure")
	}
	return nil
}
func (c *countingTarget) Name() string { return "counting" }

func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	tr, dict := sampleTree(t)
	w, err := BuildWorkload([]*labeltree.Tree{tr}, dict, WorkloadOptions{
		Sizes: []int{2, 3}, PerSize: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunClosedFixedRequests(t *testing.T) {
	w := smallWorkload(t)
	target := &countingTarget{fail: 10}
	res, err := Run(context.Background(), target, w, Options{
		Concurrency: 4, Requests: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" {
		t.Errorf("mode = %q", res.Mode)
	}
	if res.Issued != 200 {
		t.Errorf("issued = %d, want 200", res.Issued)
	}
	if res.Errors != 20 {
		t.Errorf("errors = %d, want 20", res.Errors)
	}
	if res.Latency.Count != res.Issued {
		t.Errorf("latency count %d != issued %d", res.Latency.Count, res.Issued)
	}
	if res.AchievedQPS <= 0 {
		t.Errorf("achieved QPS = %v", res.AchievedQPS)
	}
	if target.n.Load() != 200 {
		t.Errorf("target saw %d issues, want 200", target.n.Load())
	}
}

func TestRunClosedFixedDuration(t *testing.T) {
	w := smallWorkload(t)
	res, err := Run(context.Background(), &countingTarget{}, w, Options{
		Concurrency: 2, Duration: 60 * time.Millisecond, Warmup: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued == 0 {
		t.Fatal("nothing issued in duration mode")
	}
	if res.ElapsedSeconds <= 0 || res.ElapsedSeconds > 5 {
		t.Errorf("elapsed = %v", res.ElapsedSeconds)
	}
}

func TestRunOpenLoop(t *testing.T) {
	w := smallWorkload(t)
	res, err := Run(context.Background(), &countingTarget{}, w, Options{
		Concurrency: 4, Duration: 200 * time.Millisecond, OpenLoopQPS: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.TargetQPS != 500 {
		t.Errorf("mode/target = %q/%v", res.Mode, res.TargetQPS)
	}
	if res.Issued == 0 {
		t.Fatal("open loop issued nothing")
	}
	// The schedule admits at most duration×qps arrivals (plus one tick of
	// slack); achieving far more would mean the loop is closed.
	if max := uint64(200*time.Millisecond/time.Second*500) + 0; res.Issued > 150 {
		t.Errorf("open loop issued %d, want ≤ ~100 (max %d)", res.Issued, max)
	}
}

func TestRunOptionValidation(t *testing.T) {
	w := smallWorkload(t)
	tgt := &countingTarget{}
	if _, err := Run(context.Background(), tgt, w, Options{}); err == nil {
		t.Error("no stopping rule accepted")
	}
	if _, err := Run(context.Background(), tgt, w, Options{Duration: time.Second, Requests: 5}); err == nil {
		t.Error("both stopping rules accepted")
	}
	if _, err := Run(context.Background(), tgt, w, Options{Requests: 5, OpenLoopQPS: 10}); err == nil {
		t.Error("open loop without duration accepted")
	}
	if _, err := Run(context.Background(), tgt, nil, Options{Requests: 5}); err == nil {
		t.Error("nil workload accepted")
	}
}

// TestEstimatorTarget drives the real in-process estimator.
func TestEstimatorTarget(t *testing.T) {
	tr, _ := sampleTree(t)
	sum, err := core.Build(tr, core.BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	target, err := NewEstimatorTarget(sum, core.MethodRecursiveVoting)
	if err != nil {
		t.Fatal(err)
	}
	w := smallWorkload(t)
	res, err := Run(context.Background(), target, w, Options{Concurrency: 2, Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("in-process estimates errored %d times", res.Errors)
	}
	if !strings.HasPrefix(res.Target, "inprocess:") {
		t.Errorf("target name = %q", res.Target)
	}
}

// TestHTTPTarget drives a real serve.Handler end to end and cross-checks
// the driver's issued count against the server's own metrics.
func TestHTTPTarget(t *testing.T) {
	dir := t.TempDir()
	c, err := corpus.Create(dir, corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("sample", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	handler := serve.NewHandler(c)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	tr, dict := c.Doc("sample")
	if !dict {
		t.Fatal("sample doc missing")
	}
	w, err := BuildWorkload([]*labeltree.Tree{tr}, c.Dict(), WorkloadOptions{
		Sizes: []int{2, 3}, PerSize: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := NewHTTPTarget(srv.URL, core.MethodRecursiveVoting, nil)
	res, err := Run(context.Background(), target, w, Options{Concurrency: 4, Requests: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("HTTP run errored %d/%d times", res.Errors, res.Issued)
	}
	snap := handler.Metrics().Snapshot()
	if got := snap.Counters["http.estimate.requests"]; got != res.Issued {
		t.Fatalf("server saw %d estimate requests, driver issued %d", got, res.Issued)
	}
}

type countingBatchTarget struct {
	countingTarget
	batches  atomic.Uint64
	maxBatch atomic.Uint64
}

func (c *countingBatchTarget) IssueBatch(items []Item) error {
	c.batches.Add(1)
	c.n.Add(uint64(len(items)))
	for {
		old := c.maxBatch.Load()
		if uint64(len(items)) <= old || c.maxBatch.CompareAndSwap(old, uint64(len(items))) {
			return nil
		}
	}
}

// TestRunBatched: a batched closed-loop run issues exactly Requests
// queries grouped into BatchSize claims, and counts queries (not
// requests) in Issued.
func TestRunBatched(t *testing.T) {
	w := smallWorkload(t)
	target := &countingBatchTarget{}
	res, err := Run(context.Background(), target, w, Options{
		Concurrency: 3, Requests: 100, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 8 {
		t.Errorf("result batch size = %d", res.BatchSize)
	}
	if res.Issued != 100 || target.n.Load() != 100 {
		t.Errorf("issued %d queries (target saw %d), want 100", res.Issued, target.n.Load())
	}
	// 100 queries in claims of 8: 12 full batches plus one remainder of 4.
	if got := target.batches.Load(); got != 13 {
		t.Errorf("target saw %d batch requests, want 13", got)
	}
	if got := target.maxBatch.Load(); got > 8 {
		t.Errorf("a batch carried %d queries, cap is 8", got)
	}
	if res.Latency.Count != target.batches.Load() {
		t.Errorf("latency count %d != batch requests %d", res.Latency.Count, target.batches.Load())
	}
}

func TestRunBatchedValidation(t *testing.T) {
	w := smallWorkload(t)
	if _, err := Run(context.Background(), &countingTarget{}, w, Options{Requests: 10, BatchSize: 4}); err == nil {
		t.Error("batching accepted on a non-batch target")
	}
	if _, err := Run(context.Background(), &countingBatchTarget{}, w, Options{Duration: time.Second, OpenLoopQPS: 10, BatchSize: 4}); err == nil {
		t.Error("batching accepted in open loop")
	}
}

// TestHTTPBatchTarget drives the real batch endpoint end to end and
// cross-checks against the server's batch metrics.
func TestHTTPBatchTarget(t *testing.T) {
	dir := t.TempDir()
	c, err := corpus.Create(dir, corpus.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("sample", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	handler := serve.NewHandler(c)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	tr, ok := c.Doc("sample")
	if !ok {
		t.Fatal("sample doc missing")
	}
	w, err := BuildWorkload([]*labeltree.Tree{tr}, c.Dict(), WorkloadOptions{
		Sizes: []int{2, 3}, PerSize: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := NewHTTPBatchTarget(srv.URL, core.MethodRecursiveVoting, nil)
	res, err := Run(context.Background(), target, w, Options{Concurrency: 2, Requests: 64, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("batched HTTP run errored %d/%d times", res.Errors, res.Issued)
	}
	if res.Issued != 64 {
		t.Fatalf("issued %d queries, want 64", res.Issued)
	}
	snap := handler.Metrics().Snapshot()
	if got := snap.Counters["http.estimate_batch.requests"]; got != 4 {
		t.Fatalf("server saw %d batch requests, want 4", got)
	}
}
