package core

import (
	"fmt"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
)

// FromShards combines N shard summaries into one read-only summary whose
// estimates are bit-identical to a summary built over the union of the
// shards' documents.
//
// The combination happens at the count level, one algebra step below the
// estimators: documents are independent trees, so the count of a pattern
// over a union corpus is the sum of its per-shard counts — the same
// additivity BuildForestContext's pairwise reduce exploits. Summing at
// the estimate.Store seam therefore presents every estimator with exactly
// the store a single merged summary would have, and each produces the
// same bits it would have produced there. (Combining per-shard *estimates*
// would not be exact: decomposition estimates are nonlinear products of
// count ratios.)
//
// All shards must share one label dictionary and one lattice level K;
// pruning is contagious (the union is pruned if any shard is). The result
// carries no TreeSource; bind one with BindSource to enable
// document-needing methods. Like a ReadFrozen summary, it rejects every
// mutation with ErrFrozenSummary — shards are rebuilt, not edited.
func FromShards(shards []*Summary) (*Summary, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: FromShards needs at least one shard")
	}
	dict := shards[0].dict
	k := shards[0].K()
	ss := &shardStore{stores: make([]estimate.Store, len(shards)), k: k}
	for i, sh := range shards {
		if sh.dict != dict {
			return nil, fmt.Errorf("%w: shard %d does not share the dictionary", ErrDictMismatch, i)
		}
		if sh.K() != k {
			return nil, fmt.Errorf("core: shard %d has K=%d, want K=%d", i, sh.K(), k)
		}
		st := sh.store()
		ss.stores[i] = st
		if st.Pruned() {
			ss.pruned = true
		}
	}
	return &Summary{multi: ss, dict: dict}, nil
}

// shardStore sums pattern counts across per-shard stores. Presence is the
// union of per-shard presence: a pattern found in any shard is found, and
// its count is the sum over the shards that hold it.
type shardStore struct {
	stores []estimate.Store
	k      int
	pruned bool
}

var _ estimate.Store = (*shardStore)(nil)

func (m *shardStore) Count(p labeltree.Pattern) (int64, bool) {
	var total int64
	found := false
	for _, st := range m.stores {
		if c, ok := st.Count(p); ok {
			total += c
			found = true
		}
	}
	return total, found
}

func (m *shardStore) CountKey(key labeltree.Key) (int64, bool) {
	var total int64
	found := false
	for _, st := range m.stores {
		if c, ok := st.CountKey(key); ok {
			total += c
			found = true
		}
	}
	return total, found
}

func (m *shardStore) K() int { return m.k }

func (m *shardStore) Pruned() bool { return m.pruned }

// SizeBytes sums the accounted storage of the shard stores.
func (m *shardStore) SizeBytes() int {
	total := 0
	for _, st := range m.stores {
		if sz, ok := st.(sized); ok {
			total += sz.SizeBytes()
		}
	}
	return total
}

// ResidentBytes sums the resident bytes of the shard stores, falling
// back to accounted storage for backends that cannot report residency.
func (m *shardStore) ResidentBytes() int {
	total := 0
	for _, st := range m.stores {
		switch sz := st.(type) {
		case residentSized:
			total += sz.ResidentBytes()
		case sized:
			total += sz.SizeBytes()
		}
	}
	return total
}

// Len sums per-shard entry counts. A pattern present in several shards is
// counted once per shard — the figure reports stored entries, not
// distinct patterns.
func (m *shardStore) Len() int {
	total := 0
	for _, st := range m.stores {
		if sz, ok := st.(sized); ok {
			total += sz.Len()
		}
	}
	return total
}
