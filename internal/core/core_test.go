package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/xmlparse"
)

func buildSample(t *testing.T, k int) (*Summary, *labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	doc := `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Build(tr, BuildOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return sum, tr, dict
}

func TestBuildDefaults(t *testing.T) {
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader("<a><b/></a>"), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Build(tr, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.K() != 4 {
		t.Fatalf("default K = %d, want 4", sum.K())
	}
	if sum.Patterns() == 0 || sum.SizeBytes() == 0 {
		t.Fatal("empty summary built")
	}
}

func TestEstimateQueryAllMethods(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	for _, m := range Methods() {
		got, err := sum.EstimateQuery("laptop(brand,price)", m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != 2 {
			t.Fatalf("%s: estimate = %v, want 2", m, got)
		}
	}
}

func TestEstimateQueryErrors(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	if _, err := sum.EstimateQuery("a((", MethodRecursive); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := sum.EstimateQuery("laptop", Method("bogus")); err == nil {
		t.Fatal("bad method accepted")
	}
	if _, err := sum.Estimator("bogus"); err == nil {
		t.Fatal("bad method accepted by Estimator")
	}
}

func TestAddTreeIncremental(t *testing.T) {
	sum, tr, dict := buildSample(t, 3)
	// Add a second copy of the document: counts double.
	tr2, err := xmlparse.Parse(strings.NewReader(`<computer><laptops><laptop><brand/><price/></laptop></laptops></computer>`), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := sum.EstimateQuery("laptop(brand,price)", MethodRecursive)
	if err := sum.AddTree(tr2); err != nil {
		t.Fatal(err)
	}
	after, _ := sum.EstimateQuery("laptop(brand,price)", MethodRecursive)
	if after != before+1 {
		t.Fatalf("incremental count = %v, want %v", after, before+1)
	}
	// Merged summary equals mining the concatenation: cross-check one
	// more pattern.
	c1 := match.NewCounter(tr).Count(labeltree.MustParsePattern("laptops(laptop)", dict))
	c2 := match.NewCounter(tr2).Count(labeltree.MustParsePattern("laptops(laptop)", dict))
	got, _ := sum.EstimateQuery("laptops(laptop)", MethodRecursive)
	if got != float64(c1+c2) {
		t.Fatalf("merged laptops(laptop) = %v, want %d", got, c1+c2)
	}
}

func TestAddTreeRejectsForeignDictAndPruned(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	otherDict := labeltree.NewDict()
	other, err := xmlparse.Parse(strings.NewReader("<x><y/></x>"), otherDict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.AddTree(other); err == nil {
		t.Fatal("foreign dictionary accepted")
	}
	pruned := sum.Prune(0)
	_, tr, _ := buildSample(t, 3)
	if err := pruned.AddTree(tr); err == nil {
		t.Fatal("AddTree on pruned summary accepted")
	}
}

func TestPruneKeepsEstimates(t *testing.T) {
	sum, tr, dict := buildSample(t, 3)
	pruned := sum.Prune(0)
	if pruned.SizeBytes() > sum.SizeBytes() {
		t.Fatal("pruning grew the summary")
	}
	counter := match.NewCounter(tr)
	for _, qs := range []string{"laptop(brand,price)", "computer(laptops(laptop))", "laptops(laptop,laptop)"} {
		q := labeltree.MustParsePattern(qs, dict)
		want := float64(counter.Count(q))
		got, err := pruned.Estimate(q, MethodRecursive)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("pruned estimate of %s = %v, want %v", qs, got, want)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dict2 := labeltree.NewDict()
	got, err := Read(&buf, dict2)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != sum.K() || got.Patterns() != sum.Patterns() {
		t.Fatal("round trip mismatch")
	}
	est, err := got.EstimateQuery("laptop(brand,price)", MethodFixSized)
	if err != nil {
		t.Fatal(err)
	}
	if est != 2 {
		t.Fatalf("estimate after reload = %v, want 2", est)
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope")), labeltree.NewDict()); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEstimateWithTrace(t *testing.T) {
	sum, _, dict := buildSample(t, 3)
	q := labeltree.MustParsePattern("computer(laptops(laptop(brand,price)))", dict)
	est, trace, err := sum.EstimateWithTrace(q, MethodRecursiveVoting)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sum.Estimate(q, MethodRecursiveVoting)
	if est != want {
		t.Fatalf("traced estimate %v != %v", est, want)
	}
	if trace.MaxDepth == 0 || trace.Augmentations == 0 {
		t.Fatalf("trace = %+v for an out-of-lattice query", trace)
	}
	if _, _, err := sum.EstimateWithTrace(q, MethodFixSized); err == nil {
		t.Fatal("fix-sized trace accepted")
	}
}

func TestEstimateIntervalFacade(t *testing.T) {
	sum, tr, dict := buildSample(t, 3)
	q := labeltree.MustParsePattern("computer(laptops(laptop(brand,price)))", dict)
	iv := sum.EstimateInterval(q)
	truth := float64(match.NewCounter(tr).Count(q))
	est, _ := sum.Estimate(q, MethodRecursiveVoting)
	if !iv.Contains(est) {
		t.Fatalf("interval %+v does not contain estimate %v", iv, est)
	}
	_ = truth // the interval is a decomposition spread, not a truth bound
}

func TestValuePredicateEstimation(t *testing.T) {
	// The future-work value-predicate extension end to end: parse with
	// value buckets, query a bucketed predicate like price=42.
	dict := labeltree.NewDict()
	doc := `<shop>` +
		strings.Repeat(`<laptop><brand>apple</brand><price>42</price></laptop>`, 3) +
		strings.Repeat(`<laptop><brand>dell</brand><price>99</price></laptop>`, 2) +
		`</shop>`
	tree, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{ValueBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Build(tree, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// laptop[price = 42] as a structural twig through the bucket label.
	q := "laptop(price(" + xmlparse.ValueLabel("42", 64) + "))"
	got, err := sum.EstimateQuery(q, MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("value predicate estimate = %v, want 3", got)
	}
	// Combined structure + value predicate.
	q2 := "laptop(brand(" + xmlparse.ValueLabel("dell", 64) + "),price)"
	got2, err := sum.EstimateQuery(q2, MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != 2 {
		t.Fatalf("combined predicate estimate = %v, want 2", got2)
	}
}

func TestRemoveTreeInvertsAddTree(t *testing.T) {
	sum, _, dict := buildSample(t, 3)
	baseline := sum.Lattice().Entries(0)
	tr2, err := xmlparse.Parse(strings.NewReader(`<computer><laptops><laptop><brand/></laptop></laptops></computer>`), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.AddTree(tr2); err != nil {
		t.Fatal(err)
	}
	if err := sum.RemoveTree(tr2); err != nil {
		t.Fatal(err)
	}
	after := sum.Lattice().Entries(0)
	if len(after) != len(baseline) {
		t.Fatalf("entry count %d != %d after add+remove", len(after), len(baseline))
	}
	for i := range baseline {
		if baseline[i].Pattern.Key() != after[i].Pattern.Key() || baseline[i].Count != after[i].Count {
			t.Fatalf("entry %d changed after add+remove", i)
		}
	}
}

func TestRemoveTreeGuards(t *testing.T) {
	sum, tr, _ := buildSample(t, 3)
	pruned := sum.Prune(0)
	if err := pruned.RemoveTree(tr); err == nil {
		t.Fatal("RemoveTree on pruned summary accepted")
	}
	otherDict := labeltree.NewDict()
	other, err := xmlparse.Parse(strings.NewReader("<x/>"), otherDict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.RemoveTree(other); err == nil {
		t.Fatal("foreign dictionary accepted")
	}
	// Removing a document that was never added drives counts negative.
	bigDict := sum.Dict()
	big, err := xmlparse.Parse(strings.NewReader(`<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops></computer>`), bigDict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.RemoveTree(big); err == nil {
		t.Fatal("over-removal accepted")
	}
}
