package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/xmlparse"
)

func buildSample(t *testing.T, k int) (*Summary, *labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	doc := `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Build(tr, BuildOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return sum, tr, dict
}

func TestBuildDefaults(t *testing.T) {
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader("<a><b/></a>"), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Build(tr, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.K() != 4 {
		t.Fatalf("default K = %d, want 4", sum.K())
	}
	if sum.Patterns() == 0 || sum.SizeBytes() == 0 {
		t.Fatal("empty summary built")
	}
}

func TestEstimateQueryAllMethods(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	for _, m := range Methods() {
		got, err := sum.EstimateQuery("laptop(brand,price)", m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != 2 {
			t.Fatalf("%s: estimate = %v, want 2", m, got)
		}
	}
}

func TestEstimateQueryErrors(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	if _, err := sum.EstimateQuery("a((", MethodRecursive); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := sum.EstimateQuery("laptop", Method("bogus")); err == nil {
		t.Fatal("bad method accepted")
	}
	if _, err := sum.Estimator("bogus"); err == nil {
		t.Fatal("bad method accepted by Estimator")
	}
}

func TestSentinelErrors(t *testing.T) {
	sum, tr, _ := buildSample(t, 3)
	if _, err := sum.EstimateQuery("a((", MethodRecursive); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("syntax error = %v, want ErrBadQuery", err)
	}
	if _, err := sum.EstimateQuery("never_seen_label", MethodRecursive); !errors.Is(err, ErrUnknownLabel) {
		t.Fatalf("unknown label = %v, want ErrUnknownLabel", err)
	}
	if _, err := sum.EstimateQuery("laptop", Method("bogus")); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("bogus method = %v, want ErrUnknownMethod", err)
	}
	if _, err := Build(tr, BuildOptions{K: MaxK + 1}); !errors.Is(err, ErrKTooLarge) {
		t.Fatalf("K=%d accepted, err = %v, want ErrKTooLarge", MaxK+1, err)
	}
	if err := sum.Prune(0).AddTree(tr); !errors.Is(err, ErrPrunedSummary) {
		t.Fatalf("pruned AddTree = %v, want ErrPrunedSummary", err)
	}
	otherDict := labeltree.NewDict()
	other, err := xmlparse.Parse(strings.NewReader("<x><y/></x>"), otherDict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.AddTree(other); !errors.Is(err, ErrDictMismatch) {
		t.Fatalf("foreign dict AddTree = %v, want ErrDictMismatch", err)
	}
}

func TestBuildContextCanceled(t *testing.T) {
	_, tr, _ := buildSample(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, tr, BuildOptions{K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled build returned %v, want context.Canceled", err)
	}
	if _, err := BuildForestContext(ctx, []*labeltree.Tree{tr}, BuildOptions{K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled forest build returned %v, want context.Canceled", err)
	}
}

// forestTrees parses several distinct documents sharing one dictionary.
func forestTrees(t *testing.T, n int) []*labeltree.Tree {
	t.Helper()
	dict := labeltree.NewDict()
	trees := make([]*labeltree.Tree, n)
	for i := range trees {
		var sb strings.Builder
		sb.WriteString("<computer><laptops>")
		for j := 0; j <= i%3; j++ {
			sb.WriteString("<laptop><brand/><price/></laptop>")
		}
		sb.WriteString("</laptops>")
		if i%2 == 0 {
			sb.WriteString(fmt.Sprintf("<desktops><desktop><tag%d/></desktop></desktops>", i))
		}
		sb.WriteString("</computer>")
		tr, err := xmlparse.Parse(strings.NewReader(sb.String()), dict, xmlparse.Options{})
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tr
	}
	return trees
}

// TestBuildForestEquivalence is the pipeline's core invariant: for any
// worker count the parallel build is bit-identical (serialized form) to
// the sequential incremental build. Serialized equality also pins the
// candidate enumeration order: which isomorphism representative a summary
// stores for each key is decided by the byte-encoder's lexicographic
// candidate ordering in the miner, and must not shift with parallelism.
func TestBuildForestEquivalence(t *testing.T) {
	trees := forestTrees(t, 9)

	seq, err := Build(trees[0], BuildOptions{K: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees[1:] {
		if err := seq.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	if _, err := seq.WriteTo(&want); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		par, err := BuildForestContext(context.Background(), trees, BuildOptions{K: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if _, err := par.WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("workers=%d: parallel build differs from sequential build", workers)
		}
	}
}

func TestBuildForestRejectsMixedDicts(t *testing.T) {
	a := forestTrees(t, 1)
	b := forestTrees(t, 1)
	_, err := BuildForestContext(context.Background(), []*labeltree.Tree{a[0], b[0]}, BuildOptions{K: 3})
	if !errors.Is(err, ErrDictMismatch) {
		t.Fatalf("mixed dict forest = %v, want ErrDictMismatch", err)
	}
}

func TestMergeSummary(t *testing.T) {
	trees := forestTrees(t, 2)
	a, err := Build(trees[0], BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(trees[1], BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(trees[0], BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := want.AddTree(trees[1]); err != nil {
		t.Fatal(err)
	}
	if err := a.MergeSummary(b); err != nil {
		t.Fatal(err)
	}
	var wantBuf, gotBuf bytes.Buffer
	want.WriteTo(&wantBuf)
	a.WriteTo(&gotBuf)
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatal("MergeSummary differs from AddTree")
	}
	if err := a.Prune(0).MergeSummary(b); !errors.Is(err, ErrPrunedSummary) {
		t.Fatalf("pruned merge = %v, want ErrPrunedSummary", err)
	}
}

func TestAddTreeIncremental(t *testing.T) {
	sum, tr, dict := buildSample(t, 3)
	// Add a second copy of the document: counts double.
	tr2, err := xmlparse.Parse(strings.NewReader(`<computer><laptops><laptop><brand/><price/></laptop></laptops></computer>`), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := sum.EstimateQuery("laptop(brand,price)", MethodRecursive)
	if err := sum.AddTree(tr2); err != nil {
		t.Fatal(err)
	}
	after, _ := sum.EstimateQuery("laptop(brand,price)", MethodRecursive)
	if after != before+1 {
		t.Fatalf("incremental count = %v, want %v", after, before+1)
	}
	// Merged summary equals mining the concatenation: cross-check one
	// more pattern.
	c1 := match.NewCounter(tr).Count(labeltree.MustParsePattern("laptops(laptop)", dict))
	c2 := match.NewCounter(tr2).Count(labeltree.MustParsePattern("laptops(laptop)", dict))
	got, _ := sum.EstimateQuery("laptops(laptop)", MethodRecursive)
	if got != float64(c1+c2) {
		t.Fatalf("merged laptops(laptop) = %v, want %d", got, c1+c2)
	}
}

func TestAddTreeRejectsForeignDictAndPruned(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	otherDict := labeltree.NewDict()
	other, err := xmlparse.Parse(strings.NewReader("<x><y/></x>"), otherDict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.AddTree(other); err == nil {
		t.Fatal("foreign dictionary accepted")
	}
	pruned := sum.Prune(0)
	_, tr, _ := buildSample(t, 3)
	if err := pruned.AddTree(tr); err == nil {
		t.Fatal("AddTree on pruned summary accepted")
	}
}

func TestPruneKeepsEstimates(t *testing.T) {
	sum, tr, dict := buildSample(t, 3)
	pruned := sum.Prune(0)
	if pruned.SizeBytes() > sum.SizeBytes() {
		t.Fatal("pruning grew the summary")
	}
	counter := match.NewCounter(tr)
	for _, qs := range []string{"laptop(brand,price)", "computer(laptops(laptop))", "laptops(laptop,laptop)"} {
		q := labeltree.MustParsePattern(qs, dict)
		want := float64(counter.Count(q))
		got, err := pruned.Estimate(q, MethodRecursive)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("pruned estimate of %s = %v, want %v", qs, got, want)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dict2 := labeltree.NewDict()
	got, err := Read(&buf, dict2)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != sum.K() || got.Patterns() != sum.Patterns() {
		t.Fatal("round trip mismatch")
	}
	est, err := got.EstimateQuery("laptop(brand,price)", MethodFixSized)
	if err != nil {
		t.Fatal(err)
	}
	if est != 2 {
		t.Fatalf("estimate after reload = %v, want 2", est)
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope")), labeltree.NewDict()); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEstimateWithTrace(t *testing.T) {
	sum, _, dict := buildSample(t, 3)
	q := labeltree.MustParsePattern("computer(laptops(laptop(brand,price)))", dict)
	est, trace, err := sum.EstimateWithTrace(q, MethodRecursiveVoting)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sum.Estimate(q, MethodRecursiveVoting)
	if est != want {
		t.Fatalf("traced estimate %v != %v", est, want)
	}
	if trace.MaxDepth == 0 || trace.Augmentations == 0 {
		t.Fatalf("trace = %+v for an out-of-lattice query", trace)
	}
	if _, _, err := sum.EstimateWithTrace(q, MethodFixSized); err == nil {
		t.Fatal("fix-sized trace accepted")
	}
}

func TestEstimateIntervalFacade(t *testing.T) {
	sum, tr, dict := buildSample(t, 3)
	q := labeltree.MustParsePattern("computer(laptops(laptop(brand,price)))", dict)
	iv := sum.EstimateInterval(q)
	truth := float64(match.NewCounter(tr).Count(q))
	est, _ := sum.Estimate(q, MethodRecursiveVoting)
	if !iv.Contains(est) {
		t.Fatalf("interval %+v does not contain estimate %v", iv, est)
	}
	_ = truth // the interval is a decomposition spread, not a truth bound
}

func TestValuePredicateEstimation(t *testing.T) {
	// The future-work value-predicate extension end to end: parse with
	// value buckets, query a bucketed predicate like price=42.
	dict := labeltree.NewDict()
	doc := `<shop>` +
		strings.Repeat(`<laptop><brand>apple</brand><price>42</price></laptop>`, 3) +
		strings.Repeat(`<laptop><brand>dell</brand><price>99</price></laptop>`, 2) +
		`</shop>`
	tree, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{ValueBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Build(tree, BuildOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// laptop[price = 42] as a structural twig through the bucket label.
	q := "laptop(price(" + xmlparse.ValueLabel("42", 64) + "))"
	got, err := sum.EstimateQuery(q, MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("value predicate estimate = %v, want 3", got)
	}
	// Combined structure + value predicate.
	q2 := "laptop(brand(" + xmlparse.ValueLabel("dell", 64) + "),price)"
	got2, err := sum.EstimateQuery(q2, MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != 2 {
		t.Fatalf("combined predicate estimate = %v, want 2", got2)
	}
}

func TestRemoveTreeInvertsAddTree(t *testing.T) {
	sum, _, dict := buildSample(t, 3)
	baseline := sum.Lattice().Entries(0)
	tr2, err := xmlparse.Parse(strings.NewReader(`<computer><laptops><laptop><brand/></laptop></laptops></computer>`), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.AddTree(tr2); err != nil {
		t.Fatal(err)
	}
	if err := sum.RemoveTree(tr2); err != nil {
		t.Fatal(err)
	}
	after := sum.Lattice().Entries(0)
	if len(after) != len(baseline) {
		t.Fatalf("entry count %d != %d after add+remove", len(after), len(baseline))
	}
	for i := range baseline {
		if baseline[i].Pattern.Key() != after[i].Pattern.Key() || baseline[i].Count != after[i].Count {
			t.Fatalf("entry %d changed after add+remove", i)
		}
	}
}

func TestRemoveTreeGuards(t *testing.T) {
	sum, tr, _ := buildSample(t, 3)
	pruned := sum.Prune(0)
	if err := pruned.RemoveTree(tr); err == nil {
		t.Fatal("RemoveTree on pruned summary accepted")
	}
	otherDict := labeltree.NewDict()
	other, err := xmlparse.Parse(strings.NewReader("<x/>"), otherDict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.RemoveTree(other); err == nil {
		t.Fatal("foreign dictionary accepted")
	}
	// Removing a document that was never added drives counts negative.
	bigDict := sum.Dict()
	big, err := xmlparse.Parse(strings.NewReader(`<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops></computer>`), bigDict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.RemoveTree(big); err == nil {
		t.Fatal("over-removal accepted")
	}
}

// TestInstrumentObservesEstimates checks the latency observer fires once
// per estimate with the issuing method, through both the estimator and the
// trace paths.
func TestInstrumentObservesEstimates(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	var mu sync.Mutex
	calls := map[Method]int{}
	sum.Instrument(func(m Method, d time.Duration) {
		if d < 0 {
			t.Errorf("negative latency observed: %v", d)
		}
		mu.Lock()
		calls[m]++
		mu.Unlock()
	})
	for _, m := range Methods() {
		if _, err := sum.EstimateQuery("laptop(brand,price)", m); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sum.ParseQuery("laptop(brand)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sum.EstimateWithTrace(q, MethodRecursiveVoting); err != nil {
		t.Fatal(err)
	}
	if calls[MethodRecursive] != 1 || calls[MethodFixSized] != 1 {
		t.Fatalf("observer calls = %v", calls)
	}
	if calls[MethodRecursiveVoting] != 2 {
		t.Fatalf("voting observer calls = %d, want 2 (estimate + trace)", calls[MethodRecursiveVoting])
	}

	// A nil observer disables instrumentation: further estimates add no
	// observations.
	sum.Instrument(nil)
	est, err := sum.Estimator(MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sum.ParseQuery("laptop(price)")
	if err != nil {
		t.Fatal(err)
	}
	est.Estimate(q2)
	if calls[MethodRecursive] != 1 {
		t.Fatalf("nil observer still observes: calls = %v", calls)
	}
}
