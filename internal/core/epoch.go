package core

import (
	"fmt"
	"sync/atomic"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/twigjoin"
)

// This file is the RCU epoch seam of the zero-downtime ingest pipeline.
// An Epoch is one immutable serving state: a base summary (frozen,
// compressed, or map-backed), the delta overlay of documents ingested
// since the base was cut, and the document snapshot backing
// document-driven estimators. Writers publish a fresh Epoch per change
// through an atomic pointer swap; readers load the pointer once per
// request and finish against that epoch even if a dozen more are
// published meanwhile. Nothing in an epoch ever mutates, so there is no
// read-side locking anywhere — and because every epoch carries a fresh
// merged Summary, its sub-estimate and prepared-backend caches are
// per-epoch by construction: publishing a new epoch is the cache
// invalidation.

// Epoch is one immutable serving state. Estimates run against Summary;
// Docs/Names are the sorted document snapshot the summary's
// document-driven backends (markov, treesketch, sampling) prepare from.
type Epoch struct {
	// ID is the monotonically increasing epoch number (1 = first publish).
	ID uint64
	// Summary is the merged (base + delta) read view for this epoch.
	Summary *Summary
	// Docs holds the document trees, sorted by name (stable order keeps
	// sampling probe selection deterministic).
	Docs []*labeltree.Tree
	// Names holds the document names, positionally aligned with Docs.
	Names []string
	// indexer is the region-index cache shared across epochs (trees
	// survive epoch swaps by pointer, so indexes do too); set from the
	// handle at publish.
	indexer *twigjoin.Indexer
}

// Trees implements TreeSource: the epoch's frozen document snapshot.
func (e *Epoch) Trees() []*labeltree.Tree { return e.Docs }

// DocNames implements DocNamer: names aligned with Trees().
func (e *Epoch) DocNames() []string { return e.Names }

// TwigIndexer implements TwigIndexerSource; nil before the owning handle
// installed a cache (ExecuteQueryContext then falls back to a
// summary-local one).
func (e *Epoch) TwigIndexer() *twigjoin.Indexer { return e.indexer }

// HasDoc reports whether name is in the epoch's document snapshot.
func (e *Epoch) HasDoc(name string) (int, bool) {
	lo, hi := 0, len(e.Names)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.Names[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(e.Names) && e.Names[lo] == name
}

// EpochHandle is the atomic publication point readers and the ingest
// writer share. Current never blocks; Publish is called by one writer
// at a time (the ingest path serializes writers internally).
type EpochHandle struct {
	cur atomic.Pointer[Epoch]
	seq atomic.Uint64
	// indexer, when set (before the first Publish), is carried into
	// every published epoch so query execution reuses region indexes
	// across epoch swaps.
	indexer *twigjoin.Indexer
}

// SetTwigIndexer installs the region-index cache future epochs carry.
// Call before the first Publish.
func (h *EpochHandle) SetTwigIndexer(ix *twigjoin.Indexer) { h.indexer = ix }

// Current returns the serving epoch, or nil before the first Publish.
func (h *EpochHandle) Current() *Epoch { return h.cur.Load() }

// Publish builds the next epoch over base merged with delta and swaps
// it in. The serving configuration (instrumentation observer, private
// registry, sub-cache capacity and creation hook) is inherited from the
// base summary when set there, else from the previous epoch's summary —
// so a handler that instrumented epoch 1 keeps its metrics flowing
// through every later epoch. docs/names must be sorted by name and
// positionally aligned; the new epoch's summary binds them as its
// TreeSource.
func (h *EpochHandle) Publish(base *Summary, delta estimate.Store, docs []*labeltree.Tree, names []string) *Epoch {
	prev := h.cur.Load()
	sum := &Summary{
		multi:       &estimate.Merged{Base: base.store(), Delta: delta},
		dict:        base.dict,
		observe:     base.observe,
		registry:    base.registry,
		subCacheCap: base.subCacheCap,
		subCacheNew: base.subCacheNew,
	}
	if prev != nil {
		ps := prev.Summary
		if sum.observe == nil {
			sum.observe = ps.observe
		}
		if sum.registry == nil {
			sum.registry = ps.registry
		}
		if sum.subCacheCap == 0 {
			sum.subCacheCap = ps.subCacheCap
		}
		if sum.subCacheNew == nil {
			sum.subCacheNew = ps.subCacheNew
		}
	}
	e := &Epoch{ID: h.seq.Add(1), Summary: sum, Docs: docs, Names: names, indexer: h.indexer}
	sum.BindSource(e)
	h.cur.Store(e)
	return e
}

// IngestStats is the observability snapshot of the zero-downtime ingest
// pipeline, surfaced under /v1/stats.
type IngestStats struct {
	// Epoch is the serving epoch number (0 = ingest not enabled).
	Epoch uint64 `json:"epoch"`
	// DeltaDocs / DeltaBytes size the unfolded delta overlay.
	DeltaDocs  int `json:"delta_docs"`
	DeltaBytes int `json:"delta_bytes"`
	// RefreezeAttempts counts refreeze tries, RefreezeFailures the ones
	// that errored (each failure retries with jittered backoff), and
	// Refreezes the snapshots successfully published.
	RefreezeAttempts uint64 `json:"refreeze_attempts"`
	RefreezeFailures uint64 `json:"refreeze_failures"`
	Refreezes        uint64 `json:"refreezes"`
	// LastRefreezeMS is the wall-clock duration of the last successful
	// refreeze, in milliseconds.
	LastRefreezeMS int64 `json:"refreeze_last_duration_ms"`
	// Backpressured counts ingests rejected because the delta hit its
	// hard size limit before the refreezer could catch up.
	Backpressured uint64 `json:"backpressured"`
}

// entriesStore is the backend surface Materialize needs: every
// single-store backend (map, frozen, compressed) can enumerate its
// entries with decoded patterns.
type entriesStore interface {
	Entries(size int) []lattice.Entry
	K() int
	Pruned() bool
}

// Materialize returns a mutable map-backed copy of the summary's
// counts — the refreeze path's way back from a frozen or compressed
// base to a lattice it can fold a delta into. Shard-combined summaries
// cannot materialize (shards are rebuilt, not edited), and pruned
// summaries must not (missing patterns are derivable, not absent; a
// fold would corrupt them).
func (s *Summary) Materialize() (*lattice.Summary, error) {
	if s.lat != nil {
		if s.lat.Pruned() {
			return nil, fmt.Errorf("%w: cannot materialize", ErrPrunedSummary)
		}
		return s.lat.Clone(), nil
	}
	st, ok := s.store().(entriesStore)
	if !ok {
		return nil, fmt.Errorf("core: %s summary cannot materialize", s.StoreKind())
	}
	if st.Pruned() {
		return nil, fmt.Errorf("%w: cannot materialize", ErrPrunedSummary)
	}
	lat := lattice.New(st.K(), s.dict)
	for _, e := range st.Entries(0) {
		if err := lat.Add(e.Pattern, e.Count); err != nil {
			return nil, err
		}
	}
	return lat, nil
}
