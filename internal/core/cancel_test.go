package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/xmlparse"
)

func cancelTestTree(t *testing.T) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	var b strings.Builder
	b.WriteString("<computer><laptops>")
	for i := 0; i < 512; i++ {
		b.WriteString("<laptop><brand/><price/></laptop>")
	}
	b.WriteString("</laptops></computer>")
	tr, err := xmlparse.Parse(strings.NewReader(b.String()), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

// TestEstimateDegradable is the degradation-ladder table: DeadlineExceeded
// with a fallback degrades, DeadlineExceeded without one propagates, and
// Canceled never degrades (the client is gone; nobody reads the answer).
func TestEstimateDegradable(t *testing.T) {
	tr, dict := cancelTestTree(t)
	sum, err := Build(tr, BuildOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := labeltree.MustParsePattern("laptop(brand,price)", dict)

	expired, cancelExp := context.WithTimeout(context.Background(), -1)
	defer cancelExp()
	canceled, cancelC := context.WithCancel(context.Background())
	cancelC()

	t.Run("live", func(t *testing.T) {
		res, err := sum.EstimateDegradable(context.Background(), q, MethodRecursive)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || res.Method != MethodRecursive {
			t.Fatalf("live estimate reported %+v, want undegraded recursive", res)
		}
	})
	t.Run("expired-degrades", func(t *testing.T) {
		res, err := sum.EstimateDegradable(expired, q, MethodRecursive)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || res.Method != MethodFixSized {
			t.Fatalf("expired estimate reported %+v, want degraded fix-sized", res)
		}
		want, _ := sum.Estimate(q, MethodFixSized)
		if res.Estimate != want {
			t.Fatalf("degraded estimate %v != fix-sized estimate %v", res.Estimate, want)
		}
	})
	t.Run("expired-no-fallback", func(t *testing.T) {
		if _, err := sum.EstimateDegradable(expired, q, MethodFixSized); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("fix-sized under expired budget: err = %v, want DeadlineExceeded", err)
		}
	})
	t.Run("canceled-never-degrades", func(t *testing.T) {
		if _, err := sum.EstimateDegradable(canceled, q, MethodRecursive); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled estimate: err = %v, want Canceled (not a degraded answer)", err)
		}
	})
}

// TestFallbackLadder pins the ladder itself.
func TestFallbackLadder(t *testing.T) {
	for _, tc := range []struct {
		in   Method
		want Method
		ok   bool
	}{
		{MethodRecursive, MethodFixSized, true},
		{MethodRecursiveVoting, MethodFixSized, true},
		{MethodFixSized, "", false},
	} {
		if got, ok := Fallback(tc.in); got != tc.want || ok != tc.ok {
			t.Errorf("Fallback(%s) = %q,%v, want %q,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}
