package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"treelattice/internal/labeltree"
)

// BatchOptions configures EstimateBatchContext.
type BatchOptions struct {
	// Workers bounds the goroutines fanning queries out. Zero means
	// min(GOMAXPROCS, len(queries)); 1 forces sequential evaluation.
	Workers int
	// DisableFallback answers each item strictly under the requested
	// method: items that blow the budget fail with their context error
	// instead of degrading to a cheaper method.
	DisableFallback bool
	// Methods, when non-empty, overrides the batch-level method per item:
	// Methods[i] applies to queries[i], with the empty Method falling
	// back to the batch-level one. Length must match queries. Every named
	// method is validated against the registry up front.
	Methods []Method
}

// BatchResult is the per-item outcome of a batch estimate. Exactly one of
// Err or the estimate fields is meaningful; Method always names the
// method involved — on success the one that produced the estimate (the
// requested one, or its fallback when Degraded is set), on failure the
// one that was asked for.
type BatchResult struct {
	Estimate float64
	Method   Method
	Degraded bool
	// Checked through Divergent carry the ensemble cross-check verdict,
	// mirroring DegradedEstimate.
	Checked       bool
	CrossEstimate float64
	Divergence    float64
	Divergent     bool
	Err           error
}

// EstimateBatchContext estimates every query in one call, fanning the
// batch across a worker pool. All workers share the summary's per-method
// sub-estimate cache, so structurally overlapping queries — the common
// case for optimizer-generated batches — decompose shared sub-twigs once
// instead of once per query.
//
// Results are positional: results[i] answers queries[i], with per-item
// errors (an expired budget fails the not-yet-evaluated items
// individually, it does not poison completed ones). Methods — the
// batch-level one and every per-item override — are validated up front;
// an unknown method fails the whole batch, since its items could never
// succeed.
func (s *Summary) EstimateBatchContext(ctx context.Context, queries []labeltree.Pattern, method Method, opts BatchOptions) ([]BatchResult, error) {
	if _, err := s.LookupMethod(method); err != nil {
		return nil, err
	}
	if len(opts.Methods) > 0 && len(opts.Methods) != len(queries) {
		return nil, fmt.Errorf("core: %d method overrides for %d queries", len(opts.Methods), len(queries))
	}
	methodAt := func(i int) Method {
		if len(opts.Methods) > 0 && opts.Methods[i] != "" {
			return opts.Methods[i]
		}
		return method
	}
	checked := map[Method]bool{method: true}
	for i := range opts.Methods {
		m := methodAt(i)
		if checked[m] {
			continue
		}
		if _, err := s.LookupMethod(m); err != nil {
			return nil, err
		}
		checked[m] = true
	}
	results := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				results[i] = s.estimateBatchItem(ctx, queries[i], methodAt(i), opts.DisableFallback)
			}
		}()
	}
	wg.Wait()
	return results, nil
}

func (s *Summary) estimateBatchItem(ctx context.Context, q labeltree.Pattern, method Method, strict bool) BatchResult {
	run := s.EstimateDegradable
	if strict {
		run = s.EstimateStrict
	}
	de, err := run(ctx, q, method)
	if err != nil {
		return BatchResult{Method: method, Err: err}
	}
	return BatchResult{
		Estimate: de.Estimate, Method: de.Method, Degraded: de.Degraded,
		Checked: de.Checked, CrossEstimate: de.CrossEstimate,
		Divergence: de.Divergence, Divergent: de.Divergent,
	}
}
