package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"treelattice/internal/labeltree"
)

// BatchOptions configures EstimateBatchContext.
type BatchOptions struct {
	// Workers bounds the goroutines fanning queries out. Zero means
	// min(GOMAXPROCS, len(queries)); 1 forces sequential evaluation.
	Workers int
	// DisableFallback answers each item strictly under the requested
	// method: items that blow the budget fail with their context error
	// instead of degrading to a cheaper method.
	DisableFallback bool
}

// BatchResult is the per-item outcome of a batch estimate. Exactly one
// of Err or the estimate fields is meaningful: on success Method names
// the method that produced the estimate (the requested one, or its
// fallback when Degraded is set).
type BatchResult struct {
	Estimate float64
	Method   Method
	Degraded bool
	Err      error
}

// EstimateBatchContext estimates every query in one call, fanning the
// batch across a worker pool. All workers share the summary's per-method
// sub-estimate cache, so structurally overlapping queries — the common
// case for optimizer-generated batches — decompose shared sub-twigs once
// instead of once per query.
//
// Results are positional: results[i] answers queries[i], with per-item
// errors (an expired budget fails the not-yet-evaluated items
// individually, it does not poison completed ones). The method is
// validated up front; an unknown method fails the whole batch, since no
// item could succeed.
func (s *Summary) EstimateBatchContext(ctx context.Context, queries []labeltree.Pattern, method Method, opts BatchOptions) ([]BatchResult, error) {
	if _, err := s.Estimator(method); err != nil {
		return nil, err
	}
	results := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				results[i] = s.estimateBatchItem(ctx, queries[i], method, opts.DisableFallback)
			}
		}()
	}
	wg.Wait()
	return results, nil
}

func (s *Summary) estimateBatchItem(ctx context.Context, q labeltree.Pattern, method Method, strict bool) BatchResult {
	if strict {
		est, err := s.EstimateContext(ctx, q, method)
		if err != nil {
			return BatchResult{Err: err}
		}
		return BatchResult{Estimate: est, Method: method}
	}
	de, err := s.EstimateDegradable(ctx, q, method)
	if err != nil {
		return BatchResult{Err: err}
	}
	return BatchResult{Estimate: de.Estimate, Method: de.Method, Degraded: de.Degraded}
}
