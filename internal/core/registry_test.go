package core

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/markov"
	"treelattice/internal/sampling"
	"treelattice/internal/treesketch"
	"treelattice/internal/xmlparse"
)

// registrySample builds a summary with a richer document than buildSample
// so every method has structure to estimate over, plus a query mix
// covering linear paths, branching, and repeated labels.
func registrySample(t *testing.T) (*Summary, *labeltree.Tree, []labeltree.Pattern) {
	t.Helper()
	dict := labeltree.NewDict()
	doc := `<site><people>` +
		strings.Repeat(`<person><name/><address><city/><zip/></address><watch/></person>`, 8) +
		strings.Repeat(`<person><name/><phone/></person>`, 5) +
		`</people><items>` +
		strings.Repeat(`<item><name/><price/><desc><par/></desc></item>`, 6) +
		`</items></site>`
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Build(tr, BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var queries []labeltree.Pattern
	for _, qs := range []string{
		"person(name)",
		"person(name,address(city))",
		"person(address(city,zip),watch)",
		"item(name,price)",
		"item(desc(par))",
		"site(people(person(name)),items(item))",
	} {
		q, err := sum.ParseQuery(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		queries = append(queries, q)
	}
	return sum, tr, queries
}

// directEstimate computes each method's estimate exactly the way the
// pre-registry API did — hand-built estimator structs with no registry,
// no Prepared cache, no subquery plumbing.
func directEstimate(t *testing.T, sum *Summary, tr *labeltree.Tree, m Method, q labeltree.Pattern) float64 {
	t.Helper()
	switch m {
	case MethodRecursive:
		return (&estimate.Recursive{Sum: sum.store()}).Estimate(q)
	case MethodRecursiveVoting:
		return (&estimate.Recursive{Sum: sum.store(), Voting: true}).Estimate(q)
	case MethodFixSized:
		return (&estimate.FixSized{Sum: sum.store()}).Estimate(q)
	case MethodMarkov:
		k := sum.K()
		if k < 2 {
			k = 2
		}
		return markov.BuildForest([]*labeltree.Tree{tr}, k).EstimateTwig(q)
	case MethodTreeSketch:
		return treesketch.Build(tr, treesketchOptions).Estimate(q)
	case MethodSampling:
		se, err := sampling.New([]*labeltree.Tree{tr}, DefaultSamplingOptions)
		if err != nil {
			t.Fatal(err)
		}
		v, err := se.EstimateContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		return v
	default:
		t.Fatalf("no direct construction for method %q", m)
		return 0
	}
}

// TestRegistryDifferentialIdentity: routing through the registry must be
// a pure refactor — bit-identical to direct estimator calls for every
// method, on the map, frozen, and compressed backends alike.
func TestRegistryDifferentialIdentity(t *testing.T) {
	methods := []Method{
		MethodRecursive, MethodRecursiveVoting, MethodFixSized,
		MethodMarkov, MethodTreeSketch, MethodSampling,
	}
	for _, backend := range []string{"map", "frozen", "compressed"} {
		sum, tr, queries := registrySample(t)
		switch backend {
		case "frozen":
			sum.Freeze()
		case "compressed":
			sum.Compress()
		}
		if got := sum.StoreKind(); got != backend {
			t.Fatalf("StoreKind() = %q, want %q", got, backend)
		}
		for _, m := range methods {
			for _, q := range queries {
				want := directEstimate(t, sum, tr, m, q)
				got, err := sum.EstimateContext(context.Background(), q, m)
				if err != nil {
					t.Fatalf("%s/%s EstimateContext(%v): %v", backend, m, q, err)
				}
				if got != want {
					t.Errorf("%s/%s query %v: registry %v != direct %v", backend, m, q, got, want)
				}
			}
		}
	}
}

// TestRegistryDifferentialSnapshotFiles: a summary round-tripped through
// each on-disk snapshot form and reloaded by the magic-sniffing
// OpenSnapshotFile — fresh dictionary, exactly the serving path,
// memory-mapped for TLCZ where the platform supports it — must answer
// every decomposition method bit-identically to the original map-backed
// summary. (Document-driven methods never read the store; the in-memory
// backend loop above covers them.)
func TestRegistryDifferentialSnapshotFiles(t *testing.T) {
	sum, _, _ := registrySample(t)
	queryStrings := []string{
		"person(name)",
		"person(name,address(city))",
		"person(address(city,zip),watch)",
		"item(name,price)",
		"item(desc(par))",
		"site(people(person(name)),items(item))",
	}
	methods := []Method{MethodRecursive, MethodRecursiveVoting, MethodFixSized}

	dir := t.TempDir()
	files := []struct {
		kind  string
		write func(io.Writer) (int64, error)
	}{
		{"frozen", sum.WriteTo},
		{"compressed", sum.WriteCompressed},
	}
	for _, fc := range files {
		path := filepath.Join(dir, fc.kind+".tlat")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fc.write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		loaded, err := OpenSnapshotFile(path, labeltree.NewDict())
		if err != nil {
			t.Fatalf("OpenSnapshotFile(%s): %v", fc.kind, err)
		}
		if got := loaded.StoreKind(); got != fc.kind {
			t.Fatalf("loaded %s snapshot: StoreKind() = %q", fc.kind, got)
		}
		if loaded.Mutable() {
			t.Fatalf("loaded %s snapshot must not be mutable", fc.kind)
		}
		if loaded.ResidentBytes() <= 0 {
			t.Fatalf("loaded %s snapshot: ResidentBytes() = %d", fc.kind, loaded.ResidentBytes())
		}
		for _, qs := range queryStrings {
			origQ, err := sum.ParseQuery(qs)
			if err != nil {
				t.Fatal(err)
			}
			loadedQ, err := loaded.ParseQuery(qs)
			if err != nil {
				t.Fatalf("%s: parse %q against loaded dict: %v", fc.kind, qs, err)
			}
			for _, m := range methods {
				want, err := sum.EstimateContext(context.Background(), origQ, m)
				if err != nil {
					t.Fatal(err)
				}
				got, err := loaded.EstimateContext(context.Background(), loadedQ, m)
				if err != nil {
					t.Fatalf("%s/%s: %v", fc.kind, m, err)
				}
				if got != want {
					t.Errorf("%s/%s query %q: loaded %v != original %v", fc.kind, m, qs, got, want)
				}
			}
		}
	}
}

// TestEnsembleMatchesPrimary: the ensemble answers with exactly its
// primary method's estimate; the cross-check only annotates.
func TestEnsembleMatchesPrimary(t *testing.T) {
	sum, _, queries := registrySample(t)
	for _, q := range queries {
		primary, err := sum.EstimateContext(context.Background(), q, MethodRecursiveVoting)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sum.EstimateStrict(context.Background(), q, MethodEnsemble)
		if err != nil {
			t.Fatal(err)
		}
		if res.Estimate != primary {
			t.Errorf("query %v: ensemble %v != primary %v", q, res.Estimate, primary)
		}
		if !res.Checked {
			t.Errorf("query %v: ensemble did not run its cross-check", q)
		}
		if res.Divergence < 1 {
			t.Errorf("query %v: divergence %v < 1", q, res.Divergence)
		}
	}
}

// TestEnsembleFlagsDivergence: a cross-estimate more than threshold× off
// the primary must set Divergent. Exercised through a registry carrying a
// rigged ensemble whose delegates disagree wildly.
func TestEnsembleFlagsDivergence(t *testing.T) {
	_, _, queries := registrySample(t)
	q := queries[0]
	agg := ensemblePrepared{threshold: DefaultEnsembleThreshold}.AggCard(
		[]Subquery{{Pattern: q, Role: rolePrimary}, {Pattern: q, Role: roleCross, Optional: true}},
		[]Card{{Value: 100}, {Value: 3}},
	)
	if !agg.Checked || !agg.Divergent {
		t.Fatalf("100 vs 3 should flag divergence, got %+v", agg)
	}
	agg = ensemblePrepared{threshold: DefaultEnsembleThreshold}.AggCard(
		[]Subquery{{Pattern: q, Role: rolePrimary}, {Pattern: q, Role: roleCross, Optional: true}},
		[]Card{{Value: 100}, {Value: 90}},
	)
	if !agg.Checked || agg.Divergent {
		t.Fatalf("100 vs 90 should agree, got %+v", agg)
	}
	// A failed cross-check (blown budget) degrades to unchecked.
	agg = ensemblePrepared{threshold: DefaultEnsembleThreshold}.AggCard(
		[]Subquery{{Pattern: q, Role: rolePrimary}, {Pattern: q, Role: roleCross, Optional: true}},
		[]Card{{Value: 100}, {Err: ErrBudgetExhausted}},
	)
	if agg.Checked || agg.Divergent {
		t.Fatalf("failed cross-check must leave the estimate unchecked, got %+v", agg)
	}
}

// TestUnknownMethodListsRegistered: the error for an unknown method must
// enumerate what IS registered, so callers can self-correct.
func TestUnknownMethodListsRegistered(t *testing.T) {
	sum, _, _ := registrySample(t)
	_, err := sum.LookupMethod(Method("bogus"))
	if !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
	for _, m := range RegisteredMethods() {
		if !strings.Contains(err.Error(), string(m)) {
			t.Errorf("error %q does not mention registered method %q", err, m)
		}
	}
}

// TestRegistryOrderAndDuplicates: Methods() preserves registration order;
// duplicate registration fails.
func TestRegistryOrderAndDuplicates(t *testing.T) {
	r := NewRegistry()
	a := fakeEstimator{method: "a"}
	b := fakeEstimator{method: "b"}
	r.MustRegister(a)
	r.MustRegister(b)
	got := r.Methods()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Methods() = %v, want [a b]", got)
	}
	if err := r.Register(fakeEstimator{method: "a"}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
}

// TestRegistryFallbackLadder: the degradation ladder comes from
// registered capabilities — sampling and ensemble must degrade to
// something cheaper, terminal methods to nothing.
func TestRegistryFallbackLadder(t *testing.T) {
	cases := []struct {
		method Method
		want   Method
	}{
		{MethodSampling, MethodFixSized},
		{MethodEnsemble, MethodRecursiveVoting},
		{MethodMarkov, ""},
		{MethodTreeSketch, ""},
	}
	for _, c := range cases {
		got, ok := Fallback(c.method)
		if c.want == "" {
			if ok {
				t.Errorf("Fallback(%s) = %q, want none", c.method, got)
			}
			continue
		}
		if !ok || got != c.want {
			t.Errorf("Fallback(%s) = %q/%v, want %q", c.method, got, ok, c.want)
		}
	}
}

// TestUnboundSourceUnavailable: document-needing methods on a summary
// with no bound source must fail with ErrMethodUnavailable, not panic.
func TestUnboundSourceUnavailable(t *testing.T) {
	sum, _, queries := registrySample(t)
	sum.BindSource(nil)
	for _, m := range []Method{MethodMarkov, MethodTreeSketch, MethodSampling, MethodEnsemble} {
		_, err := sum.EstimateContext(context.Background(), queries[0], m)
		if !errors.Is(err, ErrMethodUnavailable) {
			t.Errorf("method %s without source: got %v, want ErrMethodUnavailable", m, err)
		}
	}
	// The decomposition methods need no documents and must be untouched.
	if _, err := sum.EstimateContext(context.Background(), queries[0], MethodRecursiveVoting); err != nil {
		t.Errorf("recursive+voting must not need a source: %v", err)
	}
}

// fakeEstimator is a minimal registrable backend for registry-shape tests.
type fakeEstimator struct {
	method Method
}

func (f fakeEstimator) Method() Method             { return f.method }
func (f fakeEstimator) Capabilities() Capabilities { return Capabilities{} }
func (f fakeEstimator) Prepare(context.Context, *Summary) (Prepared, error) {
	return wholeQueryPrepared{}, nil
}

// TestConcurrentRegistryUse: lookups, registrations (fresh registry), and
// registry-routed estimates across every method racing each other — the
// -race pass of `make check` is the real assertion here.
func TestConcurrentRegistryUse(t *testing.T) {
	sum, _, queries := registrySample(t)
	methods := RegisteredMethods()
	fresh := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				m := methods[(i+j)%len(methods)]
				q := queries[(i*7+j)%len(queries)]
				if _, err := sum.EstimateContext(context.Background(), q, m); err != nil {
					t.Errorf("concurrent %s: %v", m, err)
					return
				}
				if _, err := DefaultRegistry.Lookup(m); err != nil {
					t.Errorf("concurrent lookup %s: %v", m, err)
					return
				}
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = fresh.Register(fakeEstimator{method: Method(rune('a' + i))})
			_ = fresh.Methods()
			_, _ = fresh.Lookup(Method("a"))
		}(i)
	}
	wg.Wait()
}
