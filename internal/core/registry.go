package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
)

// This file is the estimation seam: every method — the paper's
// decomposition estimators, the markov and treesketch baselines, sampling,
// and the ensemble cross-check — is an Estimator registered in a Registry,
// and the Summary routes every estimate through the same four-step
// pipeline:
//
//	Prepare(summary) → Decompose(query) → EstCard(subquery) → AggCard
//
// (the shape Alley uses for its sampling estimators). A Method is a
// registry key, not a switch arm; new backends drop in by registering.

// TreeSource supplies the corpus documents to backends that estimate from
// the trees themselves (markov, treesketch, sampling) rather than from
// the lattice summary. Trees must return documents in a stable order.
// *corpus.Corpus implements it; Build and BuildForestContext bind the
// built trees automatically.
type TreeSource interface {
	Trees() []*labeltree.Tree
}

// TreeSliceSource adapts a fixed slice of documents to TreeSource.
type TreeSliceSource []*labeltree.Tree

// Trees returns the slice.
func (s TreeSliceSource) Trees() []*labeltree.Tree { return s }

// Subquery is one unit of work a backend's Decompose step produced. Which
// fields are meaningful depends on the backend: decomposition methods emit
// a single whole-query subquery, markov emits weighted path terms,
// treesketch one subquery per document, and the ensemble tags its primary
// and cross-check runs by Role.
type Subquery struct {
	// Pattern is the twig this subquery estimates (the whole query for
	// most backends).
	Pattern labeltree.Pattern
	// Path is a root-to-node label path for path-term backends (markov).
	Path []labeltree.LabelID
	// Doc indexes into the TreeSource for per-document backends.
	Doc int
	// Weight is the subquery's exponent in a product aggregate: markov
	// leaf paths carry +1, branching-prefix corrections carry −(deg−1).
	Weight float64
	// Optional marks a subquery whose failure does not fail the whole
	// estimate (the ensemble's sampling cross-check under a blown
	// budget). Its error is recorded in the Card and left to AggCard.
	Optional bool
	// Role is a backend-private dispatch tag (the ensemble's "primary" /
	// "cross").
	Role string
}

// Card is one subquery's estimated cardinality, or the error that kept it
// from being estimated (only Optional subqueries reach AggCard with an
// error).
type Card struct {
	Value float64
	Err   error
}

// Aggregate is AggCard's combined answer. Estimate is always meaningful;
// the remaining fields are the ensemble's cross-check verdict and stay
// zero for single-estimate backends.
type Aggregate struct {
	Estimate float64
	// Checked reports that an independent cross-estimate completed.
	Checked bool
	// CrossEstimate is the cross-checking backend's answer.
	CrossEstimate float64
	// Divergence is the smoothed ratio (max+1)/(min+1) between the
	// primary and cross estimates; 1 means perfect agreement.
	Divergence float64
	// Divergent flags a divergence at or beyond the backend's threshold —
	// the query's primary estimate deserves suspicion.
	Divergent bool
}

// Capabilities describes what a backend supports, for the /v1/methods
// discovery endpoint and the degradation ladder.
type Capabilities struct {
	// SupportsFrozen: the backend works on summaries loaded with
	// ReadFrozen (no map-backed lattice).
	SupportsFrozen bool `json:"supports_frozen"`
	// SupportsBatch: the backend is safe to fan out across the batch
	// endpoint's worker pool.
	SupportsBatch bool `json:"supports_batch"`
	// Budgeted: the backend enforces an internal work budget (beyond
	// cooperative context cancellation) and can fail with
	// ErrBudgetExhausted.
	Budgeted bool `json:"budgeted"`
	// NeedsDocuments: Prepare requires a bound TreeSource.
	NeedsDocuments bool `json:"needs_documents"`
	// Fallback names the cheaper method the degradation ladder retries
	// with when this one blows its budget; empty means nothing cheaper
	// exists.
	Fallback Method `json:"fallback,omitempty"`
	// Description is a one-line human summary for discovery output.
	Description string `json:"description"`
}

// Prepared is a backend bound to one summary, ready to estimate. A
// Prepared must be safe for concurrent use: the batch endpoint fans
// queries across a worker pool sharing one instance.
type Prepared interface {
	// Decompose splits q into the backend's subqueries.
	Decompose(q labeltree.Pattern) ([]Subquery, error)
	// EstCard estimates one subquery's cardinality, honoring ctx
	// cooperatively.
	EstCard(ctx context.Context, sub Subquery) (float64, error)
	// AggCard combines the per-subquery cards, positionally aligned with
	// the subqueries Decompose returned.
	AggCard(subs []Subquery, cards []Card) Aggregate
}

// concurrentPrepared is implemented by Prepared backends whose subqueries
// should be estimated concurrently (the ensemble's primary + cross pair).
type concurrentPrepared interface {
	ConcurrentSubqueries() bool
}

// tracePrepared is implemented by Prepared backends that can produce the
// recursive decomposition's work trace.
type tracePrepared interface {
	EstimateWithTrace(q labeltree.Pattern) (float64, estimate.Trace)
}

// Estimator is a registered estimation backend — the factory side of the
// seam. Implementations must be stateless values; per-summary state lives
// in the Prepared they return.
type Estimator interface {
	// Method is the registry key clients select the backend by.
	Method() Method
	// Capabilities describes the backend for discovery and degradation.
	Capabilities() Capabilities
	// Prepare binds the backend to a summary (building synopses,
	// indexes, or tables as needed). The result is cached per summary
	// until the summary mutates.
	Prepare(ctx context.Context, s *Summary) (Prepared, error)
}

// Registry maps methods to backends. Lookups are concurrent with
// registration; serving reads take a read lock only.
type Registry struct {
	mu       sync.RWMutex
	backends map[Method]Estimator
	order    []Method
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{backends: make(map[Method]Estimator)}
}

// Register adds a backend, failing on duplicate method names.
func (r *Registry) Register(b Estimator) error {
	m := b.Method()
	if m == "" {
		return fmt.Errorf("core: backend with empty method name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.backends[m]; dup {
		return fmt.Errorf("core: method %q registered twice", m)
	}
	r.backends[m] = b
	r.order = append(r.order, m)
	return nil
}

// MustRegister is Register that panics on error (init-time wiring).
func (r *Registry) MustRegister(b Estimator) {
	if err := r.Register(b); err != nil {
		panic(err)
	}
}

// Lookup resolves a method to its backend. Unknown methods fail with an
// error wrapping ErrUnknownMethod that enumerates what is registered.
func (r *Registry) Lookup(m Method) (Estimator, error) {
	r.mu.RLock()
	b, ok := r.backends[m]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)", ErrUnknownMethod, m, r.methodList())
	}
	return b, nil
}

// Methods lists registered methods in registration order.
func (r *Registry) Methods() []Method {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Method, len(r.order))
	copy(out, r.order)
	return out
}

// methodList renders the registered method names sorted, for error
// messages.
func (r *Registry) methodList() string {
	r.mu.RLock()
	names := make([]string, 0, len(r.order))
	for _, m := range r.order {
		names = append(names, string(m))
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// DefaultRegistry holds the built-in backends. Summaries use it unless
// SetRegistry installs a private one.
var DefaultRegistry = NewRegistry()

// RegisteredMethods lists every method in the default registry, in
// registration order — the discovery surface; Methods() remains the
// paper's three decomposition strategies.
func RegisteredMethods() []Method { return DefaultRegistry.Methods() }

// registryFor resolves the summary's registry (default: DefaultRegistry).
func (s *Summary) registryFor() *Registry {
	if s.registry != nil {
		return s.registry
	}
	return DefaultRegistry
}

// SetRegistry installs a private backend registry on the summary. Call
// before serving; nil restores the default.
func (s *Summary) SetRegistry(r *Registry) { s.registry = r }

// Registry returns the registry the summary resolves methods against.
func (s *Summary) Registry() *Registry { return s.registryFor() }

// BindSource attaches the document source backends like markov,
// treesketch, and sampling prepare from. Build and BuildForestContext
// bind the built trees automatically; corpora bind themselves on open.
// Binding invalidates prepared backends, which may hold the old source.
func (s *Summary) BindSource(src TreeSource) {
	s.prepMu.Lock()
	s.source = src
	s.prepared = nil
	s.prepMu.Unlock()
}

// Source returns the bound document source, or nil.
func (s *Summary) Source() TreeSource {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	return s.source
}

// LookupMethod validates a method against the summary's registry without
// preparing it — the cheap validation path for request handlers.
func (s *Summary) LookupMethod(m Method) (Capabilities, error) {
	b, err := s.registryFor().Lookup(m)
	if err != nil {
		return Capabilities{}, err
	}
	return b.Capabilities(), nil
}

// preparedFor returns the cached Prepared for method, preparing on first
// use. Preparation runs outside the lock (it may be expensive — sampling
// builds per-document indexes), so two racing first uses may both
// prepare; the extra instance is dropped. The cache empties whenever the
// summary mutates, freezes, or rebinds its source.
func (s *Summary) preparedFor(ctx context.Context, m Method) (Prepared, error) {
	s.prepMu.Lock()
	p, ok := s.prepared[m]
	s.prepMu.Unlock()
	if ok {
		return p, nil
	}
	b, err := s.registryFor().Lookup(m)
	if err != nil {
		return nil, err
	}
	p, err = b.Prepare(ctx, s)
	if err != nil {
		return nil, err
	}
	s.prepMu.Lock()
	if prev, ok := s.prepared[m]; ok {
		p = prev // lost the race; keep the instance others may already use
	} else {
		if s.prepared == nil {
			s.prepared = make(map[Method]Prepared)
		}
		s.prepared[m] = p
	}
	s.prepMu.Unlock()
	return p, nil
}

// invalidatePrepared drops every cached Prepared; called on mutation and
// freeze, whose store changes would leave backends reading stale state.
func (s *Summary) invalidatePrepared() {
	s.prepMu.Lock()
	s.prepared = nil
	s.prepMu.Unlock()
}

// runPrepared drives one estimate through a Prepared's
// Decompose → EstCard → AggCard pipeline. A non-Optional subquery error
// fails the estimate; Optional errors ride into AggCard on their Card.
// Sequential backends get a ctx poll between subqueries; backends that
// declare ConcurrentSubqueries have all subqueries estimated in parallel.
func runPrepared(ctx context.Context, p Prepared, q labeltree.Pattern) (Aggregate, error) {
	subs, err := p.Decompose(q)
	if err != nil {
		return Aggregate{}, err
	}
	cards := make([]Card, len(subs))
	if cp, ok := p.(concurrentPrepared); ok && cp.ConcurrentSubqueries() && len(subs) > 1 {
		var wg sync.WaitGroup
		for i := range subs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v, err := p.EstCard(ctx, subs[i])
				cards[i] = Card{Value: v, Err: err}
			}(i)
		}
		wg.Wait()
		for i, c := range cards {
			if c.Err != nil && !subs[i].Optional {
				return Aggregate{}, c.Err
			}
		}
	} else {
		for i, sub := range subs {
			if err := ctx.Err(); err != nil {
				return Aggregate{}, err
			}
			v, err := p.EstCard(ctx, sub)
			if err != nil && !sub.Optional {
				return Aggregate{}, err
			}
			cards[i] = Card{Value: v, Err: err}
		}
	}
	return p.AggCard(subs, cards), nil
}
