package core

import (
	"context"
	"errors"
	"fmt"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/markov"
	"treelattice/internal/sampling"
	"treelattice/internal/treesketch"
)

// The non-decomposition methods the registry serves alongside the
// paper's three (MethodRecursive, MethodRecursiveVoting, MethodFixSized).
const (
	// MethodMarkov estimates via a Markov table of path counts: twigs
	// decompose into root-to-leaf paths under path independence (the
	// Lemma 4 baseline generalized to branching queries).
	MethodMarkov Method = "markov"
	// MethodTreeSketch estimates from per-document TreeSketches graph
	// synopses (the comparison baseline).
	MethodTreeSketch Method = "treesketches"
	// MethodSampling estimates by bounded random probes through the
	// twigjoin engine against the corpus documents — the Alley-style
	// independent cross-check on the synopsis methods.
	MethodSampling Method = "sampling"
	// MethodEnsemble runs the primary decomposition estimator and the
	// sampling estimator concurrently, answers with the primary estimate,
	// and flags queries where the two diverge.
	MethodEnsemble Method = "ensemble"
)

// DefaultSamplingOptions bounds the registered sampling backend: enough
// probes to stabilize the inverse-fraction scaling, a node budget that
// keeps one estimate under a few milliseconds on paper-scale documents,
// and a fixed seed so estimates are reproducible run-to-run.
var DefaultSamplingOptions = sampling.Options{Probes: 64, MaxNodes: 1 << 20, Seed: 1}

// DefaultEnsembleThreshold is the smoothed divergence ratio
// (max+1)/(min+1) at which the ensemble flags a query. 4 tolerates the
// variance a 64-probe sample carries while still catching the
// order-of-magnitude misses compounded independence assumptions produce.
const DefaultEnsembleThreshold = 4.0

func init() {
	DefaultRegistry.MustRegister(decompBackend{
		method: MethodRecursive, fallback: MethodFixSized,
		desc: "recursive leaf-pair decomposition (Section 3.2)",
	})
	DefaultRegistry.MustRegister(decompBackend{
		method: MethodRecursiveVoting, voting: true, fallback: MethodFixSized,
		desc: "recursive decomposition averaging all leaf pairs (Section 3.2, voting)",
	})
	DefaultRegistry.MustRegister(decompBackend{
		method: MethodFixSized, fixed: true,
		desc: "preorder K-subtree cover with telescoping product (Section 3.3)",
	})
	DefaultRegistry.MustRegister(markovBackend{})
	DefaultRegistry.MustRegister(treesketchBackend{})
	DefaultRegistry.MustRegister(samplingBackend{})
	DefaultRegistry.MustRegister(ensembleBackend{
		primary: MethodRecursiveVoting, cross: MethodSampling,
		threshold: DefaultEnsembleThreshold,
	})
}

// ---- decomposition backends (the paper's estimators) ----

// decompBackend adapts the estimate package's decomposition estimators.
// Decompose emits the whole query as one subquery and EstCard delegates
// to exactly the estimator construction the pre-registry API used, so
// registry-routed estimates are bit-identical to direct calls.
type decompBackend struct {
	method   Method
	voting   bool
	fixed    bool
	fallback Method
	desc     string
}

func (b decompBackend) Method() Method { return b.method }

func (b decompBackend) Capabilities() Capabilities {
	return Capabilities{
		SupportsFrozen: true,
		SupportsBatch:  true,
		Fallback:       b.fallback,
		Description:    b.desc,
	}
}

func (b decompBackend) Prepare(_ context.Context, s *Summary) (Prepared, error) {
	if b.fixed {
		return wholeQueryPrepared{est: &estimate.FixSized{Sum: s.store(), Cache: s.SubCache(b.method)}}, nil
	}
	return recursivePrepared{
		wholeQueryPrepared{est: &estimate.Recursive{Sum: s.store(), Voting: b.voting, Cache: s.SubCache(b.method)}},
	}, nil
}

// wholeQueryPrepared runs a ContextEstimator as a single-subquery
// pipeline.
type wholeQueryPrepared struct {
	est estimate.ContextEstimator
}

func (p wholeQueryPrepared) Decompose(q labeltree.Pattern) ([]Subquery, error) {
	return []Subquery{{Pattern: q, Weight: 1}}, nil
}

func (p wholeQueryPrepared) EstCard(ctx context.Context, sub Subquery) (float64, error) {
	return p.est.EstimateContext(ctx, sub.Pattern)
}

func (p wholeQueryPrepared) AggCard(_ []Subquery, cards []Card) Aggregate {
	return Aggregate{Estimate: cards[0].Value}
}

// recursivePrepared additionally exposes the recursive estimator's work
// trace for /v1/explain.
type recursivePrepared struct {
	wholeQueryPrepared
}

func (p recursivePrepared) EstimateWithTrace(q labeltree.Pattern) (float64, estimate.Trace) {
	return p.est.(*estimate.Recursive).EstimateWithTrace(q)
}

// ---- markov backend ----

type markovBackend struct{}

func (markovBackend) Method() Method { return MethodMarkov }

func (markovBackend) Capabilities() Capabilities {
	return Capabilities{
		SupportsFrozen: true,
		SupportsBatch:  true,
		NeedsDocuments: true,
		Description:    "Markov path table, twigs via root-to-leaf path independence (Lemma 4 baseline)",
	}
}

func (markovBackend) Prepare(_ context.Context, s *Summary) (Prepared, error) {
	trees, err := s.sourceTrees(MethodMarkov)
	if err != nil {
		return nil, err
	}
	k := s.K()
	if k < 2 {
		k = 2
	}
	return markovPrepared{tb: markov.BuildForest(trees, k)}, nil
}

type markovPrepared struct {
	tb *markov.Table
}

func (p markovPrepared) Decompose(q labeltree.Pattern) ([]Subquery, error) {
	terms := markov.TwigPaths(q)
	subs := make([]Subquery, len(terms))
	for i, t := range terms {
		subs[i] = Subquery{Path: t.Path, Weight: float64(t.Weight)}
	}
	return subs, nil
}

func (p markovPrepared) EstCard(ctx context.Context, sub Subquery) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return p.tb.Estimate(sub.Path), nil
}

func (p markovPrepared) AggCard(subs []Subquery, cards []Card) Aggregate {
	terms := make([]markov.PathTerm, len(subs))
	vals := make([]float64, len(subs))
	for i, sub := range subs {
		terms[i] = markov.PathTerm{Path: sub.Path, Weight: int(sub.Weight)}
		vals[i] = cards[i].Value
	}
	return Aggregate{Estimate: markov.CombinePathTerms(terms, vals)}
}

// ---- treesketch backend ----

type treesketchBackend struct{}

func (treesketchBackend) Method() Method { return MethodTreeSketch }

func (treesketchBackend) Capabilities() Capabilities {
	return Capabilities{
		SupportsFrozen: true,
		SupportsBatch:  true,
		NeedsDocuments: true,
		Description:    "TreeSketches graph synopsis per document, estimates summed (comparison baseline)",
	}
}

// treesketchOptions bounds synopsis construction for serving: the default
// (effectively unbounded) refinement and merge limits reproduce the
// paper's construction-cost findings, which is exactly what a Prepare on
// the request path must not do.
var treesketchOptions = treesketch.Options{
	BudgetBytes:       50 << 10,
	MaxRefineClusters: 2048,
	MaxRefineRounds:   8,
	MaxMergeRounds:    512,
}

func (treesketchBackend) Prepare(ctx context.Context, s *Summary) (Prepared, error) {
	trees, err := s.sourceTrees(MethodTreeSketch)
	if err != nil {
		return nil, err
	}
	syn := make([]*treesketch.Synopsis, len(trees))
	for i, t := range trees {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		syn[i] = treesketch.Build(t, treesketchOptions)
	}
	return treesketchPrepared{syn: syn}, nil
}

type treesketchPrepared struct {
	syn []*treesketch.Synopsis
}

// Decompose emits one subquery per document: matches never span
// documents, so per-document estimates are additive.
func (p treesketchPrepared) Decompose(q labeltree.Pattern) ([]Subquery, error) {
	subs := make([]Subquery, len(p.syn))
	for i := range subs {
		subs[i] = Subquery{Pattern: q, Doc: i, Weight: 1}
	}
	return subs, nil
}

func (p treesketchPrepared) EstCard(ctx context.Context, sub Subquery) (float64, error) {
	return p.syn[sub.Doc].EstimateContext(ctx, sub.Pattern)
}

func (p treesketchPrepared) AggCard(_ []Subquery, cards []Card) Aggregate {
	var total float64
	for _, c := range cards {
		total += c.Value
	}
	return Aggregate{Estimate: total}
}

// ---- sampling backend ----

type samplingBackend struct{}

func (samplingBackend) Method() Method { return MethodSampling }

func (samplingBackend) Capabilities() Capabilities {
	return Capabilities{
		SupportsFrozen: true,
		SupportsBatch:  true,
		Budgeted:       true,
		NeedsDocuments: true,
		Fallback:       MethodFixSized,
		Description:    "bounded random probes through the twigjoin engine (Alley-style cross-check)",
	}
}

func (samplingBackend) Prepare(_ context.Context, s *Summary) (Prepared, error) {
	trees, err := s.sourceTrees(MethodSampling)
	if err != nil {
		return nil, err
	}
	se, err := sampling.New(trees, DefaultSamplingOptions)
	if err != nil {
		return nil, err
	}
	return samplingPrepared{se: se}, nil
}

type samplingPrepared struct {
	se *sampling.Estimator
}

func (p samplingPrepared) Decompose(q labeltree.Pattern) ([]Subquery, error) {
	return []Subquery{{Pattern: q, Weight: 1}}, nil
}

func (p samplingPrepared) EstCard(ctx context.Context, sub Subquery) (float64, error) {
	v, err := p.se.EstimateContext(ctx, sub.Pattern)
	if errors.Is(err, sampling.ErrBudgetExhausted) {
		// Re-class into the core vocabulary so the degradation ladder and
		// the serve layer can branch without importing sampling.
		return 0, fmt.Errorf("%w: %v", ErrBudgetExhausted, err)
	}
	return v, err
}

func (p samplingPrepared) AggCard(_ []Subquery, cards []Card) Aggregate {
	return Aggregate{Estimate: cards[0].Value}
}

// ---- ensemble backend ----

type ensembleBackend struct {
	primary, cross Method
	threshold      float64
}

func (b ensembleBackend) Method() Method { return MethodEnsemble }

func (b ensembleBackend) Capabilities() Capabilities {
	return Capabilities{
		SupportsFrozen: true,
		SupportsBatch:  true,
		Budgeted:       true,
		NeedsDocuments: true,
		Fallback:       b.primary,
		Description: fmt.Sprintf("%s answered, %s cross-checked concurrently; flags divergence ≥ %g",
			b.primary, b.cross, b.threshold),
	}
}

// Prepare resolves both delegate backends through the summary's prepared
// cache, so an ensemble shares its primary's sub-estimate cache and its
// cross-checker's probe indexes with direct uses of those methods.
func (b ensembleBackend) Prepare(ctx context.Context, s *Summary) (Prepared, error) {
	pp, err := s.preparedFor(ctx, b.primary)
	if err != nil {
		return nil, err
	}
	cp, err := s.preparedFor(ctx, b.cross)
	if err != nil {
		return nil, err
	}
	return ensemblePrepared{primary: pp, cross: cp, threshold: b.threshold}, nil
}

type ensemblePrepared struct {
	primary, cross Prepared
	threshold      float64
}

// roles of the ensemble's two subqueries.
const (
	rolePrimary = "primary"
	roleCross   = "cross"
)

// Decompose emits the primary run and the optional cross-check: a
// cross-check that blows its probe budget degrades the estimate to
// unchecked instead of failing it.
func (p ensemblePrepared) Decompose(q labeltree.Pattern) ([]Subquery, error) {
	return []Subquery{
		{Pattern: q, Role: rolePrimary, Weight: 1},
		{Pattern: q, Role: roleCross, Optional: true},
	}, nil
}

// ConcurrentSubqueries runs primary and cross in parallel — the
// cross-check costs wall-clock max instead of sum.
func (p ensemblePrepared) ConcurrentSubqueries() bool { return true }

func (p ensemblePrepared) EstCard(ctx context.Context, sub Subquery) (float64, error) {
	delegate := p.primary
	if sub.Role == roleCross {
		delegate = p.cross
	}
	agg, err := runPrepared(ctx, delegate, sub.Pattern)
	return agg.Estimate, err
}

func (p ensemblePrepared) AggCard(subs []Subquery, cards []Card) Aggregate {
	agg := Aggregate{Estimate: cards[0].Value}
	for i, sub := range subs {
		if sub.Role != roleCross || cards[i].Err != nil {
			continue
		}
		agg.Checked = true
		agg.CrossEstimate = cards[i].Value
		agg.Divergence = divergenceRatio(agg.Estimate, agg.CrossEstimate)
		agg.Divergent = agg.Divergence >= p.threshold
	}
	return agg
}

// divergenceRatio is the smoothed ratio (max+1)/(min+1): 1 at perfect
// agreement, and finite even when one side estimates zero (where a raw
// q-error would divide by zero).
func divergenceRatio(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	return (a + 1) / (b + 1)
}

// sourceTrees fetches the bound document source for a backend that needs
// one, classifying the failure modes under ErrMethodUnavailable.
func (s *Summary) sourceTrees(m Method) ([]*labeltree.Tree, error) {
	src := s.Source()
	if src == nil {
		return nil, fmt.Errorf("%w: method %q needs documents and the summary has no bound source", ErrMethodUnavailable, m)
	}
	trees := src.Trees()
	if len(trees) == 0 {
		return nil, fmt.Errorf("%w: method %q needs documents and the corpus is empty", ErrMethodUnavailable, m)
	}
	return trees, nil
}
