package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/xmlparse"
)

// epochDoc returns one of a few structurally distinct documents, so
// bases and deltas built from different subsets have different counts.
func epochDoc(i int) string {
	switch i % 3 {
	case 0:
		return `<site><people>` +
			strings.Repeat(`<person><name/><address><city/><zip/></address></person>`, 4) +
			`</people></site>`
	case 1:
		return `<site><people><person><name/><phone/></person></people><items>` +
			strings.Repeat(`<item><name/><price/></item>`, 3) +
			`</items></site>`
	default:
		return `<site><items><item><name/><desc><par/></desc></item></items></site>`
	}
}

func epochTrees(t *testing.T, dict *labeltree.Dict, lo, hi int) []*labeltree.Tree {
	t.Helper()
	var out []*labeltree.Tree
	for i := lo; i < hi; i++ {
		tr, err := xmlparse.Parse(strings.NewReader(epochDoc(i)), dict, xmlparse.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return out
}

func epochQueries(t *testing.T, s *Summary) []labeltree.Pattern {
	t.Helper()
	var out []labeltree.Pattern
	for _, qs := range []string{
		"person(name)",
		"person(name,address(city))",
		"item(name,price)",
		"item(desc(par))",
		"site(people(person(name)))",
	} {
		q, err := s.ParseQuery(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		out = append(out, q)
	}
	return out
}

// mineDelta folds each tree's single-document counts into a fresh delta.
func mineDelta(t *testing.T, k int, dict *labeltree.Dict, trees []*labeltree.Tree) *lattice.Delta {
	t.Helper()
	d := lattice.NewDelta(k, dict)
	for _, tr := range trees {
		inc, err := BuildForestContext(context.Background(), []*labeltree.Tree{tr}, BuildOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		var aerr error
		if d, aerr = d.Apply(inc.Lattice()); aerr != nil {
			t.Fatal(aerr)
		}
	}
	return d
}

func epochNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("doc-%03d", i)
	}
	return out
}

// TestEpochDifferentialIdentity is the acceptance check: an epoch
// serving (base + delta) answers every registered estimator
// bit-identically to a from-scratch rebuild over the union forest, for
// map, frozen, and compressed base backends. Counts are additive across
// documents, so the merged store is pointwise equal to the rebuilt one
// and every estimator — a deterministic function of the store and the
// (identically ordered) document source — must agree exactly.
func TestEpochDifferentialIdentity(t *testing.T) {
	const k = 3
	ctx := context.Background()
	dict := labeltree.NewDict()
	all := epochTrees(t, dict, 0, 6)
	baseTrees, deltaTrees := all[:4], all[4:]

	rebuilt, err := BuildForestContext(ctx, all, BuildOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	queries := epochQueries(t, rebuilt)
	delta := mineDelta(t, k, dict, deltaTrees)

	for _, backend := range []string{"map", "frozen", "compressed"} {
		t.Run(backend, func(t *testing.T) {
			base, err := BuildForestContext(ctx, baseTrees, BuildOptions{K: k})
			if err != nil {
				t.Fatal(err)
			}
			switch backend {
			case "frozen":
				base.Freeze()
			case "compressed":
				base.Compress()
			}
			handle := &EpochHandle{}
			ep := handle.Publish(base, delta, all, epochNames(len(all)))
			if ep.Summary.StoreKind() != "delta" {
				t.Fatalf("epoch store kind = %q", ep.Summary.StoreKind())
			}
			for _, m := range RegisteredMethods() {
				for qi, q := range queries {
					got, gerr := ep.Summary.EstimateContext(ctx, q, m)
					want, werr := rebuilt.EstimateContext(ctx, q, m)
					if (gerr == nil) != (werr == nil) {
						t.Fatalf("%s q%d: error mismatch: %v vs %v", m, qi, gerr, werr)
					}
					if gerr == nil && got != want {
						t.Fatalf("%s q%d: epoch %v != rebuilt %v", m, qi, got, want)
					}
				}
				gotB, gerr := ep.Summary.EstimateBatchContext(ctx, queries, m, BatchOptions{})
				wantB, werr := rebuilt.EstimateBatchContext(ctx, queries, m, BatchOptions{})
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("%s batch: error mismatch: %v vs %v", m, gerr, werr)
				}
				for i := range gotB {
					if (gotB[i].Err == nil) != (wantB[i].Err == nil) {
						t.Fatalf("%s batch[%d]: error mismatch: %v vs %v", m, i, gotB[i].Err, wantB[i].Err)
					}
					if gotB[i].Err == nil && gotB[i].Estimate != wantB[i].Estimate {
						t.Fatalf("%s batch[%d]: %v != %v", m, i, gotB[i].Estimate, wantB[i].Estimate)
					}
				}
			}
		})
	}
}

// TestEpochSwapStress is the torn-read check: readers hammer
// EstimateContext and EstimateBatchContext while a writer publishes
// 1000 epoch swaps alternating between two states, and every answer
// must be bit-identical to one state or the other — and within a batch,
// consistently from ONE state, since a reader pins the epoch it loaded.
// Run under -race this also proves the swap path is data-race free.
func TestEpochSwapStress(t *testing.T) {
	const k = 3
	const swaps = 1000
	ctx := context.Background()
	dict := labeltree.NewDict()
	all := epochTrees(t, dict, 0, 6)
	baseTrees, deltaTrees := all[:4], all[4:]
	names := epochNames(len(all))

	base, err := BuildForestContext(ctx, baseTrees, BuildOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	base.Freeze()
	queries := epochQueries(t, base)
	deltaB := mineDelta(t, k, dict, deltaTrees)
	deltaA := lattice.NewDelta(k, dict)

	// Precompute the two legal answer vectors.
	answers := func(d *lattice.Delta, docs []*labeltree.Tree, ns []string) []float64 {
		h := &EpochHandle{}
		ep := h.Publish(base, d, docs, ns)
		out := make([]float64, len(queries))
		for i, q := range queries {
			v, err := ep.Summary.EstimateContext(ctx, q, MethodRecursive)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v
		}
		return out
	}
	ansA := answers(deltaA, baseTrees, names[:len(baseTrees)])
	ansB := answers(deltaB, all, names)
	differs := false
	for i := range ansA {
		if ansA[i] != ansB[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("test is vacuous: both states answer identically")
	}

	handle := &EpochHandle{}
	handle.Publish(base, deltaA, baseTrees, names[:len(baseTrees)])
	done := make(chan struct{})
	var readerIters atomic.Int64

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-done:
					return
				default:
				}
				readerIters.Add(1)
				ep := handle.Current()
				if iter%4 == 0 {
					// Batch path: all answers must come from ep's state.
					res, err := ep.Summary.EstimateBatchContext(ctx, queries, MethodRecursive, BatchOptions{Workers: 1})
					if err != nil {
						report("reader %d: batch: %v", r, err)
						return
					}
					var want []float64
					switch res[0].Estimate {
					case ansA[0]:
						want = ansA
					case ansB[0]:
						want = ansB
					default:
						report("reader %d: batch[0] = %v, not in {%v, %v}", r, res[0].Estimate, ansA[0], ansB[0])
						return
					}
					for i := range res {
						if res[i].Err != nil {
							report("reader %d: batch[%d]: %v", r, i, res[i].Err)
							return
						}
						if res[i].Estimate != want[i] {
							report("reader %d: torn batch: [%d] = %v, want %v", r, i, res[i].Estimate, want[i])
							return
						}
					}
					continue
				}
				qi := iter % len(queries)
				v, err := ep.Summary.EstimateContext(ctx, queries[qi], MethodRecursive)
				if err != nil {
					report("reader %d: estimate: %v", r, err)
					return
				}
				if v != ansA[qi] && v != ansB[qi] {
					report("reader %d: q%d = %v, not in {%v, %v}", r, qi, v, ansA[qi], ansB[qi])
					return
				}
			}
		}(r)
	}

	// Pace the swaps against actual reader progress (not Gosched, which
	// can stall for a scheduler timeslice per call under spinning
	// readers): every 50 swaps, wait until readers collectively complete
	// a few more iterations, so reads genuinely interleave with swaps.
	for i := 0; i < swaps; i++ {
		if i%2 == 0 {
			handle.Publish(base, deltaB, all, names)
		} else {
			handle.Publish(base, deltaA, baseTrees, names[:len(baseTrees)])
		}
		if i%50 == 0 {
			target := readerIters.Load() + 8
			for readerIters.Load() < target {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := handle.Current().ID; got != uint64(swaps)+1 {
		t.Fatalf("epoch ID = %d, want %d (1 initial + %d swaps)", got, swaps+1, swaps)
	}
}
