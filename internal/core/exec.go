package core

import (
	"context"
	"errors"
	"fmt"

	"treelattice/internal/labeltree"
	"treelattice/internal/planner"
	"treelattice/internal/twigjoin"
)

// ErrNoDocuments reports a query execution against a summary with no
// bound documents — snapshot-only summaries (frozen fleet tenants,
// scatter-gather shards) can estimate but cannot answer queries.
var ErrNoDocuments = errors.New("treelattice: no documents bound to summary")

// DocNamer is an optional TreeSource capability: document names
// positionally aligned with Trees(). Sources that lack it get positional
// fallback names in query results.
type DocNamer interface {
	DocNames() []string
}

// TwigIndexerSource is an optional TreeSource capability: a shared
// per-document region-index cache built at corpus/snapshot load, so
// query execution never rebuilds an index for a tree it has seen.
type TwigIndexerSource interface {
	TwigIndexer() *twigjoin.Indexer
}

// ParseTwigQuery parses a twig query in the extended axis syntax
// ("a(b,//c)", with optional leading "/" or "//") against the summary's
// dictionary, classifying failures exactly like ParseQuery: syntax
// errors wrap ErrBadQuery, labels the dictionary has never seen wrap
// ErrUnknownLabel. This is the query-execution counterpart of
// ParseQuery, which accepts only the child-axis estimator syntax.
func (s *Summary) ParseTwigQuery(query string) (twigjoin.Query, error) {
	known := labeltree.LabelID(s.dict.Len())
	q, err := twigjoin.ParseQuery(query, s.dict)
	if err != nil {
		return twigjoin.Query{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	for i := int32(0); int(i) < q.Pattern.Size(); i++ {
		if l := q.Pattern.Label(i); l >= known {
			return twigjoin.Query{}, fmt.Errorf("%w: %q", ErrUnknownLabel, s.dict.Name(l))
		}
	}
	return q, nil
}

// QueryOptions configures ExecuteQueryContext.
type QueryOptions struct {
	// Method selects the estimator the planner consults for the bind
	// order. Empty means MethodFixSized — the fastest registered
	// estimator, and planning only needs the relative ordering.
	Method Method
	// Limit caps how many match tuples are materialized; matching
	// continues past the limit so Count stays exact. 0 materializes
	// nothing (count-only).
	Limit int
	// NodeBudget bounds the candidates visited across the whole corpus
	// scan; 0 means unlimited. An exhausted budget marks the result
	// Degraded with the partial count instead of failing.
	NodeBudget int64
	// NaiveOrder skips the planner and binds in stored numbering — the
	// baseline side of every plan-vs-naive comparison.
	NaiveOrder bool
}

// QueryMatch is one materialized match tuple: Nodes[i] is the data node
// (preorder id within Doc) bound to query node i.
type QueryMatch struct {
	Doc   string  `json:"doc"`
	Nodes []int32 `json:"nodes"`
}

// QueryResult is the outcome of a twig query execution.
type QueryResult struct {
	// Count is the number of matches found. When Degraded, it is the
	// count up to the point the node budget ran out.
	Count int64
	// Matches holds up to QueryOptions.Limit materialized tuples.
	Matches []QueryMatch
	// Truncated reports that more matches exist than were materialized.
	Truncated bool
	// Degraded reports the node budget ran out mid-scan: Count is a
	// partial answer.
	Degraded bool
	// DocsScanned is how many documents the execution visited.
	DocsScanned int
	// Stats is the measured work, summed across documents.
	Stats twigjoin.Stats
	// Plan is the bind order used, with its estimates. For a naive-order
	// execution PredictedCandidates is 0 and Calibration is absent.
	Plan planner.Plan
	// PlanMethod is the estimator method that drove the plan ("" for
	// naive order).
	PlanMethod Method
	// Calibration is measured candidates / predicted candidates — the
	// cost model's validation signal, 0 when no prediction was made.
	Calibration float64
}

// execIndexer lazily creates the summary-local fallback index cache for
// sources that do not share one (plain Build summaries).
func (s *Summary) execIndexer() *twigjoin.Indexer {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	if s.indexer == nil {
		s.indexer = twigjoin.NewIndexer()
	}
	return s.indexer
}

// ExecuteQueryContext answers a twig query against the summary's bound
// documents: it plans a bind order with planner.Choose against this
// summary's estimator (the current epoch's view, since callers load the
// summary once per request), runs the chosen order through the
// region-indexed executor document by document under the node budget and
// ctx, and reports the measured work next to the plan's prediction so
// the cost model is validated by real executions.
func (s *Summary) ExecuteQueryContext(ctx context.Context, q twigjoin.Query, opts QueryOptions) (*QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	src := s.Source()
	if src == nil {
		return nil, fmt.Errorf("%w: cannot execute queries", ErrNoDocuments)
	}
	trees := src.Trees()
	if len(trees) == 0 {
		return nil, fmt.Errorf("%w: corpus is empty", ErrNoDocuments)
	}

	res := &QueryResult{}
	if opts.NaiveOrder {
		res.Plan = planner.Plan{Order: planner.NaiveOrder(q)}
	} else {
		method := opts.Method
		if method == "" {
			method = MethodFixSized
		}
		est, err := s.Estimator(method)
		if err != nil {
			return nil, err
		}
		res.Plan = planner.Choose(q, est)
		res.PlanMethod = method
	}

	var names []string
	if dn, ok := src.(DocNamer); ok {
		names = dn.DocNames()
	}
	var indexer *twigjoin.Indexer
	if ts, ok := src.(TwigIndexerSource); ok {
		indexer = ts.TwigIndexer()
	}
	if indexer == nil {
		indexer = s.execIndexer()
	}

	var budget *int64
	if opts.NodeBudget > 0 {
		b := opts.NodeBudget
		budget = &b
	}
	for i, t := range trees {
		x := indexer.For(t)
		emit := func(m twigjoin.Match) bool {
			res.Count++
			if opts.Limit > 0 && len(res.Matches) < opts.Limit {
				name := fmt.Sprintf("doc[%d]", i)
				if i < len(names) {
					name = names[i]
				}
				res.Matches = append(res.Matches, QueryMatch{
					Doc:   name,
					Nodes: append([]int32(nil), m...),
				})
			}
			return true
		}
		st, err := twigjoin.EnumerateContext(ctx, x, q, res.Plan.Order, budget, emit)
		res.Stats.Candidates += st.Candidates
		res.Stats.Matches += st.Matches
		res.DocsScanned++
		if err != nil {
			if errors.Is(err, twigjoin.ErrNodeBudget) {
				res.Degraded = true
				break
			}
			return nil, err
		}
	}
	res.Truncated = res.Count > int64(len(res.Matches)) && opts.Limit > 0
	if res.Plan.PredictedCandidates > 0 {
		res.Calibration = float64(res.Stats.Candidates) / res.Plan.PredictedCandidates
	}
	return res, nil
}
