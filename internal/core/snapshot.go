package core

import (
	"fmt"
	"io"
	"os"

	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
)

// This file holds the snapshot-format surface of Summary: serializing
// to and loading from the two immutable on-disk forms (TLAT, consumed
// by Read/ReadFrozen, and the compressed TLCZ layout), plus the
// introspection servers use to account for what is resident.

// WriteCompressed serializes the summary in the compressed TLCZ form.
// Like WriteTo it needs the map-backed lattice; snapshot-only summaries
// are rejected with ErrFrozenSummary.
func (s *Summary) WriteCompressed(w io.Writer) (int64, error) {
	if s.lat == nil {
		return 0, fmt.Errorf("%w: cannot serialize", ErrFrozenSummary)
	}
	return lattice.WriteCompressed(w, s.lat)
}

// ReadCompressed deserializes a summary written by WriteCompressed,
// interning labels into dict. Like ReadFrozen, the result serves
// estimates but rejects every mutation with ErrFrozenSummary.
func ReadCompressed(r io.Reader, dict *labeltree.Dict) (*Summary, error) {
	c, err := lattice.ReadCompressed(r, dict)
	if err != nil {
		return nil, err
	}
	return &Summary{comp: c, dict: dict}, nil
}

// OpenSnapshotFile loads a read-only summary from path, detecting the
// format by its magic: TLCZ snapshots open through the compressed
// loader (memory-mapped where the platform supports it), TLAT
// snapshots through ReadFrozen. This is the serving-path loader —
// replicas point it at whatever snapshot the build wrote.
func OpenSnapshotFile(path string, dict *labeltree.Dict) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [4]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: reading snapshot magic from %s: %w", path, err)
	}
	if string(head[:]) == lattice.CompressedMagic {
		f.Close()
		c, err := lattice.OpenCompressedFile(path, dict)
		if err != nil {
			return nil, err
		}
		return &Summary{comp: c, dict: dict}, nil
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ReadFrozen(f, dict)
}

// kinded is implemented by combining stores that name their own backend
// kind (the delta-merged view); plain shard combination stays "shards".
type kinded interface{ StoreKind() string }

// StoreKind names the backend estimates currently read from: "shards",
// "delta" (epoch view: immutable base + ingest overlay), "compressed",
// "frozen", or "map".
func (s *Summary) StoreKind() string {
	switch {
	case s.multi != nil:
		if k, ok := s.multi.(kinded); ok {
			return k.StoreKind()
		}
		return "shards"
	case s.comp != nil:
		return "compressed"
	case s.frozen != nil:
		return "frozen"
	default:
		return "map"
	}
}

// residentSized is implemented by backends that can report the bytes
// they actually keep resident (all current backends do).
type residentSized interface {
	ResidentBytes() int
}

// ResidentBytes reports the bytes the active backend keeps resident in
// memory (or memory-mapped). Unlike SizeBytes — the accounted storage
// size, identical across backends — this reflects the representation,
// which is what byte-budget admission in the fleet registry meters.
func (s *Summary) ResidentBytes() int {
	if rs, ok := s.store().(residentSized); ok {
		return rs.ResidentBytes()
	}
	if sz, ok := s.store().(sized); ok {
		return sz.SizeBytes()
	}
	return 0
}

// CloseStore releases resources held by the active backend — today the
// memory mapping behind a compressed snapshot opened from a file. The
// caller must ensure no estimates are in flight; after the call the
// summary answers misses. Summaries whose backends hold no external
// resources return nil untouched.
func (s *Summary) CloseStore() error {
	if s.comp != nil {
		return s.comp.Close()
	}
	return nil
}
