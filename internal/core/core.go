// Package core ties the paper's pieces into the TreeLattice system: build
// a lattice summary from a document by frequent-tree mining, estimate twig
// query selectivities by probabilistic decomposition, prune δ-derivable
// patterns under a memory budget, and maintain the summary incrementally
// across document batches.
package core

import (
	"fmt"
	"io"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/mine"
)

// Method selects an estimation strategy.
type Method string

// The estimation strategies evaluated in the paper.
const (
	// MethodRecursive removes one deterministic leaf pair per recursion
	// level (Section 3.2).
	MethodRecursive Method = "recursive"
	// MethodRecursiveVoting averages all admissible leaf pairs per level
	// (Section 3.2, voting extension). Most accurate, slowest.
	MethodRecursiveVoting Method = "recursive+voting"
	// MethodFixSized covers the query with K-subtrees in preorder
	// (Section 3.3). Fastest.
	MethodFixSized Method = "fix-sized"
)

// Methods returns all estimation methods in presentation order.
func Methods() []Method {
	return []Method{MethodRecursive, MethodRecursiveVoting, MethodFixSized}
}

// BuildOptions configures summary construction.
type BuildOptions struct {
	// K is the lattice level: all subtree patterns up to this size are
	// collected. Default 4, the paper's standard setting.
	K int
	// Mining passes through to the miner.
	Mining mine.Options
}

// Summary is a TreeLattice summary of one or more documents.
type Summary struct {
	lat  *lattice.Summary
	dict *labeltree.Dict
}

// Build mines a K-lattice summary from t.
func Build(t *labeltree.Tree, opts BuildOptions) (*Summary, error) {
	if opts.K == 0 {
		opts.K = 4
	}
	lat, err := mine.Mine(t, opts.K, opts.Mining)
	if err != nil {
		return nil, fmt.Errorf("core: building summary: %w", err)
	}
	return &Summary{lat: lat, dict: t.Dict()}, nil
}

// FromLattice wraps an existing lattice summary.
func FromLattice(lat *lattice.Summary) *Summary {
	return &Summary{lat: lat, dict: lat.Dict()}
}

// K returns the lattice level.
func (s *Summary) K() int { return s.lat.K() }

// Dict returns the label dictionary queries must be parsed against.
func (s *Summary) Dict() *labeltree.Dict { return s.dict }

// Lattice exposes the underlying lattice summary.
func (s *Summary) Lattice() *lattice.Summary { return s.lat }

// SizeBytes is the accounted storage size of the summary.
func (s *Summary) SizeBytes() int { return s.lat.SizeBytes() }

// Patterns reports the number of stored patterns.
func (s *Summary) Patterns() int { return s.lat.Len() }

// Estimator returns the estimator implementing method over this summary.
func (s *Summary) Estimator(method Method) (estimate.Estimator, error) {
	switch method {
	case MethodRecursive:
		return estimate.NewRecursive(s.lat, false), nil
	case MethodRecursiveVoting:
		return estimate.NewRecursive(s.lat, true), nil
	case MethodFixSized:
		return estimate.NewFixSized(s.lat), nil
	default:
		return nil, fmt.Errorf("core: unknown method %q", method)
	}
}

// Estimate returns the estimated selectivity of q under method.
func (s *Summary) Estimate(q labeltree.Pattern, method Method) (float64, error) {
	est, err := s.Estimator(method)
	if err != nil {
		return 0, err
	}
	return est.Estimate(q), nil
}

// EstimateQuery parses a twig query in the "a(b,c(d))" syntax and
// estimates its selectivity.
func (s *Summary) EstimateQuery(query string, method Method) (float64, error) {
	q, err := labeltree.ParsePattern(query, s.dict)
	if err != nil {
		return 0, err
	}
	return s.Estimate(q, method)
}

// EstimateWithTrace estimates q with the recursive estimator (voting per
// the method) and returns the work record: lattice hits/misses,
// reconstruction count, and the recursion depth over which independence
// assumptions compounded. Only the recursive methods carry traces.
func (s *Summary) EstimateWithTrace(q labeltree.Pattern, method Method) (float64, estimate.Trace, error) {
	switch method {
	case MethodRecursive, MethodRecursiveVoting:
		r := estimate.NewRecursive(s.lat, method == MethodRecursiveVoting)
		est, tr := r.EstimateWithTrace(q)
		return est, tr, nil
	default:
		return 0, estimate.Trace{}, fmt.Errorf("core: method %q does not support traces", method)
	}
}

// EstimateInterval returns the decomposition-choice spread [Lo, Hi] of
// q's estimate: how much the answer varies across admissible
// decompositions, an indicator of how hard the conditional-independence
// assumption is working.
func (s *Summary) EstimateInterval(q labeltree.Pattern) estimate.Interval {
	return estimate.EstimateInterval(s.lat, q)
}

// AddTree incrementally folds another document into the summary: the
// document is mined at the same K and its counts are merged. (Documents
// are independent trees, so pattern matches never span batches and counts
// are additive.) AddTree fails on a pruned summary, whose missing patterns
// cannot be updated.
func (s *Summary) AddTree(t *labeltree.Tree) error {
	if s.lat.Pruned() {
		return fmt.Errorf("core: cannot add documents to a pruned summary")
	}
	if t.Dict() != s.dict {
		return fmt.Errorf("core: document uses a different label dictionary")
	}
	inc, err := mine.Mine(t, s.lat.K(), mine.Options{})
	if err != nil {
		return err
	}
	return s.lat.Merge(inc)
}

// RemoveTree subtracts a previously added document's counts from the
// summary — the inverse of AddTree for corpora maintained incrementally.
// Removing a document that was never added is invalid: counts going
// negative are reported as errors, and the summary may be left partially
// updated when that happens.
func (s *Summary) RemoveTree(t *labeltree.Tree) error {
	if s.lat.Pruned() {
		return fmt.Errorf("core: cannot remove documents from a pruned summary")
	}
	if t.Dict() != s.dict {
		return fmt.Errorf("core: document uses a different label dictionary")
	}
	dec, err := mine.Mine(t, s.lat.K(), mine.Options{})
	if err != nil {
		return err
	}
	for _, e := range dec.Entries(0) {
		if err := s.lat.AddCount(e.Pattern, -e.Count); err != nil {
			return fmt.Errorf("core: removing document: %w", err)
		}
	}
	return nil
}

// Prune returns a copy of the summary without δ-derivable patterns
// (Section 4.3). delta is a relative tolerance; 0 prunes only patterns
// whose decomposition estimate is exact.
func (s *Summary) Prune(delta float64) *Summary {
	return &Summary{lat: estimate.PruneDerivable(s.lat, delta), dict: s.dict}
}

// WriteTo serializes the summary.
func (s *Summary) WriteTo(w io.Writer) (int64, error) { return s.lat.WriteTo(w) }

// Read deserializes a summary written by WriteTo, interning labels into
// dict.
func Read(r io.Reader, dict *labeltree.Dict) (*Summary, error) {
	lat, err := lattice.Read(r, dict)
	if err != nil {
		return nil, err
	}
	return &Summary{lat: lat, dict: dict}, nil
}
