// Package core ties the paper's pieces into the TreeLattice system: build
// a lattice summary from a document by frequent-tree mining, estimate twig
// query selectivities by probabilistic decomposition, prune δ-derivable
// patterns under a memory budget, and maintain the summary incrementally
// across document batches.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/metrics"
	"treelattice/internal/mine"
	"treelattice/internal/twigjoin"
)

// Method selects an estimation strategy.
type Method string

// The estimation strategies evaluated in the paper.
const (
	// MethodRecursive removes one deterministic leaf pair per recursion
	// level (Section 3.2).
	MethodRecursive Method = "recursive"
	// MethodRecursiveVoting averages all admissible leaf pairs per level
	// (Section 3.2, voting extension). Most accurate, slowest.
	MethodRecursiveVoting Method = "recursive+voting"
	// MethodFixSized covers the query with K-subtrees in preorder
	// (Section 3.3). Fastest.
	MethodFixSized Method = "fix-sized"
)

// Methods returns the paper's estimation methods in presentation order.
// The full set of registered backends (markov, treesketches, sampling,
// ensemble included) is RegisteredMethods().
func Methods() []Method {
	return []Method{MethodRecursive, MethodRecursiveVoting, MethodFixSized}
}

// MaxK caps the lattice level. Level-wise enumeration is exponential in
// K, and the paper's evaluation never goes beyond 5; the cap turns a
// runaway K into ErrKTooLarge instead of an out-of-memory build.
const MaxK = 16

// BuildOptions configures summary construction.
type BuildOptions struct {
	// K is the lattice level: all subtree patterns up to this size are
	// collected. Default 4, the paper's standard setting. Values beyond
	// MaxK are rejected with ErrKTooLarge.
	K int
	// Workers bounds the build's parallelism: candidate counting within
	// one document, and document fan-out in BuildForestContext. Zero
	// means GOMAXPROCS; 1 forces a sequential build.
	Workers int
	// Mining passes through to the miner. Its Workers field, when zero,
	// inherits the Workers setting above.
	Mining mine.Options
	// Timings, when non-nil, receives per-stage wall-clock measurements
	// of the build (mine, reduce).
	Timings *metrics.BuildTimings
}

// EstimateObserver receives the wall-clock latency of each estimate, keyed
// by method. Implementations must be safe for concurrent use; the serving
// layer feeds these into per-method obs histograms.
type EstimateObserver func(method Method, d time.Duration)

// Summary is a TreeLattice summary of one or more documents.
//
// A summary has up to three backends: the map-backed lattice (mutable;
// built by mining), an optional frozen snapshot (immutable, flat
// arena + open addressing; see lattice.Frozen), and an optional
// compressed snapshot (immutable, front-coded sorted blocks; see
// lattice.Compressed). Freeze or Compress installs the respective
// snapshot and routes all estimates through it; a summary loaded with
// ReadFrozen or ReadCompressed has only that snapshot and rejects every
// mutation with ErrFrozenSummary. All backends answer identically, so
// switching is purely a space/speed decision.
type Summary struct {
	lat    *lattice.Summary    // nil when loaded snapshot-only
	frozen *lattice.Frozen     // nil until Freeze or ReadFrozen
	comp   *lattice.Compressed // nil until Compress or ReadCompressed
	multi  estimate.Store      // set by FromShards: summing view over shard stores
	dict   *labeltree.Dict
	// observe, when non-nil, is called with the latency of every estimate
	// issued through Estimator or EstimateWithTrace. Set once via
	// Instrument before the summary sees concurrent traffic.
	observe EstimateObserver

	// Per-method shared sub-estimate caches, created on first use. Cached
	// values depend on the estimator configuration (voting changes
	// out-of-range sub-estimates), so each method gets its own cache; all
	// are reset whenever the summary mutates.
	cacheMu     sync.Mutex
	subCaches   map[Method]*estimate.SubCache
	subCacheCap int // entries per cache; 0 = estimate's default
	// subCacheNew, when non-nil, runs for each per-method cache as it is
	// created — the serving layer's way to instrument caches on epoch
	// summaries it never saw at construction time.
	subCacheNew func(Method, *estimate.SubCache)

	// registry resolves methods to backends (nil = DefaultRegistry).
	registry *Registry
	// prepMu guards source and the prepared-backend cache; the cache
	// empties whenever the summary mutates, freezes, or rebinds its
	// source (see registry.go).
	prepMu   sync.Mutex
	source   TreeSource
	prepared map[Method]Prepared
	// indexer is the fallback per-document region-index cache for query
	// execution, created lazily when the bound source does not share one
	// (see exec.go). Guarded by prepMu.
	indexer *twigjoin.Indexer
}

// Instrument installs an estimate-latency observer on the summary. Call
// before serving; a nil observer disables instrumentation.
func (s *Summary) Instrument(obs EstimateObserver) { s.observe = obs }

// methodEstimator adapts a registered method to the estimate.Estimator /
// estimate.ContextEstimator shape callers hold — every call routes through
// the summary's registry pipeline, so it sees the same prepared backends,
// caches, and instrumentation as EstimateContext.
type methodEstimator struct {
	s      *Summary
	method Method
}

func (e methodEstimator) Estimate(q labeltree.Pattern) float64 {
	v, _ := e.EstimateContext(context.Background(), q)
	return v
}

func (e methodEstimator) EstimateContext(ctx context.Context, q labeltree.Pattern) (float64, error) {
	return e.s.EstimateContext(ctx, q, e.method)
}

func (e methodEstimator) Name() string { return string(e.method) }

var _ estimate.ContextEstimator = methodEstimator{}

// Build mines a K-lattice summary from t.
func Build(t *labeltree.Tree, opts BuildOptions) (*Summary, error) {
	return BuildContext(context.Background(), t, opts)
}

// BuildContext is Build with cancellation and deadline awareness: mining
// checks ctx between enumeration levels and while counting candidates, so
// a long build aborts promptly with ctx.Err() once ctx is done.
func BuildContext(ctx context.Context, t *labeltree.Tree, opts BuildOptions) (*Summary, error) {
	if err := checkOptions(&opts); err != nil {
		return nil, err
	}
	stop := opts.Timings.Start("mine")
	lat, err := mine.MineContext(ctx, t, opts.K, miningOptions(opts))
	stop()
	if err != nil {
		return nil, fmt.Errorf("core: building summary: %w", err)
	}
	return &Summary{lat: lat, dict: t.Dict(), source: TreeSliceSource{t}}, nil
}

// BuildForestContext mines a shared summary of several documents in
// parallel: each tree is mined into a private shard lattice by a worker
// pool, and the shards are pairwise-reduced into one summary. All trees
// must share a dictionary. The result is bit-identical to mining the
// trees sequentially and merging in order, for any worker count.
func BuildForestContext(ctx context.Context, trees []*labeltree.Tree, opts BuildOptions) (*Summary, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: BuildForest needs at least one tree")
	}
	if err := checkOptions(&opts); err != nil {
		return nil, err
	}
	dict := trees[0].Dict()
	for _, t := range trees[1:] {
		if t.Dict() != dict {
			return nil, fmt.Errorf("%w: trees in a forest must share one dictionary", ErrDictMismatch)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Split the budget: across documents first, leftover capacity into
	// each document's candidate counting (a single huge document still
	// uses every worker).
	inner := workers / len(trees)
	if inner < 1 {
		inner = 1
	}
	mo := miningOptions(opts)
	mo.Workers = inner

	shards := make([]*lattice.Summary, len(trees))
	errs := make([]error, len(trees))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	stop := opts.Timings.Start("mine")
	for i, t := range trees {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t *labeltree.Tree) {
			defer wg.Done()
			defer func() { <-sem }()
			shards[i], errs[i] = mine.MineContext(ctx, t, opts.K, mo)
		}(i, t)
	}
	wg.Wait()
	stop()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: building summary: %w", err)
		}
	}
	stop = opts.Timings.Start("reduce")
	merged, err := lattice.Reduce(ctx, shards, workers)
	stop()
	if err != nil {
		return nil, fmt.Errorf("core: merging shards: %w", err)
	}
	return &Summary{lat: merged, dict: dict, source: TreeSliceSource(trees)}, nil
}

// checkOptions applies defaults and validates the lattice level.
func checkOptions(opts *BuildOptions) error {
	if opts.K == 0 {
		opts.K = 4
	}
	if opts.K > MaxK {
		return fmt.Errorf("%w: K=%d exceeds MaxK=%d", ErrKTooLarge, opts.K, MaxK)
	}
	return nil
}

// miningOptions resolves the miner options, inheriting Workers.
func miningOptions(opts BuildOptions) mine.Options {
	mo := opts.Mining
	if mo.Workers == 0 {
		mo.Workers = opts.Workers
	}
	return mo
}

// FromLattice wraps an existing lattice summary.
func FromLattice(lat *lattice.Summary) *Summary {
	return &Summary{lat: lat, dict: lat.Dict()}
}

// store returns the backend estimates read from: the shard-combining
// view when built with FromShards, else the compressed snapshot, else
// the frozen snapshot, else the map-backed lattice.
func (s *Summary) store() estimate.Store {
	if s.multi != nil {
		return s.multi
	}
	if s.comp != nil {
		return s.comp
	}
	if s.frozen != nil {
		return s.frozen
	}
	return s.lat
}

// sized is implemented by every store backend that can report its
// accounted storage size and entry count (all three can).
type sized interface {
	SizeBytes() int
	Len() int
}

// Freeze installs (or refreshes) a read-optimized snapshot of the
// summary and routes subsequent estimates through it. The summary stays
// mutable; mutations refresh the snapshot automatically. Freezing an
// already frozen-only summary is a no-op.
func (s *Summary) Freeze() {
	if s.lat != nil {
		s.frozen = lattice.Freeze(s.lat)
		// Prepared backends hold the previous store; rebind lazily.
		s.invalidatePrepared()
	}
}

// Compress installs (or refreshes) a compressed read-only snapshot of
// the summary and routes subsequent estimates through it. The summary
// stays mutable; mutations refresh the snapshot automatically.
// Compressing a snapshot-only summary is a no-op.
func (s *Summary) Compress() {
	if s.lat != nil {
		s.comp = lattice.Compress(s.lat)
		s.invalidatePrepared()
	}
}

// Mutable reports whether the summary can accept mutations (AddTree,
// RemoveTree, MergeSummary). Summaries loaded with ReadFrozen or
// ReadCompressed are not mutable.
func (s *Summary) Mutable() bool { return s.lat != nil }

// FrozenStore reports whether estimates run against an immutable
// snapshot (frozen or compressed) rather than the map-backed lattice.
func (s *Summary) FrozenStore() bool { return s.frozen != nil || s.comp != nil }

// SubCache returns the shared sub-estimate cache for method, creating it
// on first use. Safe for concurrent use; the cache is dedicated to this
// summary's store and method configuration, which is what keeps cached
// estimates bit-identical to uncached ones.
func (s *Summary) SubCache(method Method) *estimate.SubCache {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	c, ok := s.subCaches[method]
	if !ok {
		if s.subCaches == nil {
			s.subCaches = make(map[Method]*estimate.SubCache, 3)
		}
		c = estimate.NewSubCache(s.subCacheCap)
		s.subCaches[method] = c
		if s.subCacheNew != nil {
			s.subCacheNew(method, c)
		}
	}
	return c
}

// OnSubCacheCreate registers fn to run for every per-method
// sub-estimate cache, existing ones immediately and future ones as they
// are created. Epoch publication carries the hook forward, so a serving
// layer that instruments caches here keeps its metrics flowing through
// every epoch swap. Call before the summary sees concurrent traffic.
func (s *Summary) OnSubCacheCreate(fn func(Method, *estimate.SubCache)) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.subCacheNew = fn
	if fn != nil {
		for m, c := range s.subCaches {
			fn(m, c)
		}
	}
}

// SetSubCacheCapacity bounds each per-method sub-estimate cache to
// roughly n entries (0 restores the default). Only caches created after
// the call are affected; call before serving.
func (s *Summary) SetSubCacheCapacity(n int) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.subCacheCap = n
}

// SubCacheStats aggregates hit/miss/eviction counters and occupancy
// across the per-method sub-estimate caches.
func (s *Summary) SubCacheStats() estimate.SubCacheStats {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	var total estimate.SubCacheStats
	for _, c := range s.subCaches {
		st := c.Stats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		total.Entries += st.Entries
	}
	return total
}

// invalidateDerived resets every derived read structure after a
// successful mutation: sub-estimate caches are emptied and an installed
// frozen snapshot is rebuilt. Callers synchronize mutations against
// concurrent estimates themselves (the map-backed lattice is not
// concurrency-safe under writes to begin with).
func (s *Summary) invalidateDerived() {
	s.cacheMu.Lock()
	for _, c := range s.subCaches {
		c.Reset()
	}
	s.cacheMu.Unlock()
	if s.frozen != nil && s.lat != nil {
		s.frozen = lattice.Freeze(s.lat)
	}
	if s.comp != nil && s.lat != nil {
		s.comp = lattice.Compress(s.lat)
	}
	s.invalidatePrepared()
}

// K returns the lattice level.
func (s *Summary) K() int { return s.store().K() }

// Dict returns the label dictionary queries must be parsed against.
func (s *Summary) Dict() *labeltree.Dict { return s.dict }

// Lattice exposes the underlying map-backed lattice summary. It is nil
// for summaries loaded with ReadFrozen.
func (s *Summary) Lattice() *lattice.Summary { return s.lat }

// SizeBytes is the accounted storage size of the summary.
func (s *Summary) SizeBytes() int {
	if sz, ok := s.store().(sized); ok {
		return sz.SizeBytes()
	}
	return 0
}

// Patterns reports the number of stored pattern entries. For a
// shard-combined summary this sums per-shard entries, so a pattern held
// by several shards counts once per shard.
func (s *Summary) Patterns() int {
	if sz, ok := s.store().(sized); ok {
		return sz.Len()
	}
	return 0
}

// Estimator returns an estimator handle for method over this summary,
// validated against the registry. Every call on the handle routes through
// the registry pipeline, sharing prepared backends and instrumentation
// with EstimateContext.
func (s *Summary) Estimator(method Method) (estimate.Estimator, error) {
	if _, err := s.registryFor().Lookup(method); err != nil {
		return nil, err
	}
	return methodEstimator{s: s, method: method}, nil
}

// estimateVia drives one estimate through the registry pipeline,
// reporting its latency to the instrumentation observer. Failed (canceled
// or budget-blown) estimates are still observed: their latency is exactly
// the budget burned.
func (s *Summary) estimateVia(ctx context.Context, q labeltree.Pattern, method Method) (Aggregate, error) {
	p, err := s.preparedFor(ctx, method)
	if err != nil {
		return Aggregate{}, err
	}
	start := time.Now()
	agg, err := runPrepared(ctx, p, q)
	if s.observe != nil {
		s.observe(method, time.Since(start))
	}
	return agg, err
}

// Estimate returns the estimated selectivity of q under method.
func (s *Summary) Estimate(q labeltree.Pattern, method Method) (float64, error) {
	return s.EstimateContext(context.Background(), q, method)
}

// EstimateContext is Estimate with cooperative cancellation: both built-in
// estimators poll ctx at bounded intervals during the decomposition
// recursion, so a deadline interrupts an expensive voting estimate
// mid-flight rather than merely gating entry.
func (s *Summary) EstimateContext(ctx context.Context, q labeltree.Pattern, method Method) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	agg, err := s.estimateVia(ctx, q, method)
	if err != nil {
		return 0, err
	}
	return agg.Estimate, nil
}

// Fallback names the cheaper method EstimateDegradable retries with when
// method blows its budget, consulting the default registry's declared
// capabilities: the recursive variants and sampling degrade to fix-sized
// decomposition (the fastest estimator), the ensemble drops its
// cross-check and degrades to its primary, and fix-sized has nothing
// cheaper to fall to.
func Fallback(method Method) (Method, bool) {
	return DefaultRegistry.fallbackFor(method)
}

// fallbackFor reads a method's registered fallback capability.
func (r *Registry) fallbackFor(method Method) (Method, bool) {
	b, err := r.Lookup(method)
	if err != nil {
		return "", false
	}
	fb := b.Capabilities().Fallback
	return fb, fb != ""
}

// DegradedEstimate is the result of EstimateStrict/EstimateDegradable:
// the estimate, the method that actually produced it, whether that method
// was a budget-forced downgrade from the one requested, and — when the
// producing method was the ensemble — its cross-check verdict.
type DegradedEstimate struct {
	Estimate float64
	Method   Method
	Degraded bool
	// Checked through Divergent mirror Aggregate: an ensemble estimate
	// that completed its sampling cross-check reports how far the two
	// backends disagreed.
	Checked       bool
	CrossEstimate float64
	Divergence    float64
	Divergent     bool
}

// EstimateStrict estimates q under exactly the requested method —
// EstimateContext plus the full result envelope (the ensemble's
// divergence verdict), without the degradation ladder.
func (s *Summary) EstimateStrict(ctx context.Context, q labeltree.Pattern, method Method) (DegradedEstimate, error) {
	if err := ctx.Err(); err != nil {
		return DegradedEstimate{}, err
	}
	agg, err := s.estimateVia(ctx, q, method)
	if err != nil {
		return DegradedEstimate{}, err
	}
	return DegradedEstimate{
		Estimate:      agg.Estimate,
		Method:        method,
		Checked:       agg.Checked,
		CrossEstimate: agg.CrossEstimate,
		Divergence:    agg.Divergence,
		Divergent:     agg.Divergent,
	}, nil
}

// EstimateDegradable estimates q under method within ctx's budget; if the
// budget expires mid-estimate — the deadline passes, or a budgeted
// backend exhausts its internal work budget (ErrBudgetExhausted) — and
// the method has a registered cheaper fallback, it re-runs under the
// fallback instead of failing. The fallback runs outside the expired
// deadline (the request already paid for an answer; a degraded one beats
// a 504) but still honors the caller's cancellation — a client that hung
// up gets context.Canceled, never a degraded answer it will not read.
func (s *Summary) EstimateDegradable(ctx context.Context, q labeltree.Pattern, method Method) (DegradedEstimate, error) {
	res, err := s.EstimateStrict(ctx, q, method)
	if err == nil {
		return res, nil
	}
	fb, ok := s.registryFor().fallbackFor(method)
	if !ok || !(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrBudgetExhausted)) {
		return DegradedEstimate{}, err
	}
	// Drop the expired deadline but keep cancellation semantics: parent
	// cancellation no longer propagates through WithoutCancel, so the
	// fallback run completes unconditionally.
	res, err = s.EstimateStrict(context.WithoutCancel(ctx), q, fb)
	if err != nil {
		return DegradedEstimate{}, err
	}
	res.Degraded = true
	return res, nil
}

// EstimateQuery parses a twig query in the "a(b,c(d))" syntax and
// estimates its selectivity. Parse failures wrap ErrBadQuery; queries
// naming labels the dictionary has never seen wrap ErrUnknownLabel (their
// true selectivity is zero).
func (s *Summary) EstimateQuery(query string, method Method) (float64, error) {
	return s.EstimateQueryContext(context.Background(), query, method)
}

// EstimateQueryContext is EstimateQuery with cancellation.
func (s *Summary) EstimateQueryContext(ctx context.Context, query string, method Method) (float64, error) {
	q, err := s.ParseQuery(query)
	if err != nil {
		return 0, err
	}
	return s.EstimateContext(ctx, q, method)
}

// ParseQuery parses a twig query against the summary's dictionary,
// classifying failures: syntax errors wrap ErrBadQuery, and labels the
// dictionary has never seen wrap ErrUnknownLabel.
func (s *Summary) ParseQuery(query string) (labeltree.Pattern, error) {
	// Labels interned by this parse get IDs at or past the current
	// dictionary length — exactly the ones no document or summary has
	// ever mentioned.
	known := labeltree.LabelID(s.dict.Len())
	q, err := labeltree.ParsePattern(query, s.dict)
	if err != nil {
		return labeltree.Pattern{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	for i := int32(0); int(i) < q.Size(); i++ {
		if l := q.Label(i); l >= known {
			return labeltree.Pattern{}, fmt.Errorf("%w: %q", ErrUnknownLabel, s.dict.Name(l))
		}
	}
	return q, nil
}

// EstimateWithTrace estimates q and returns the work record: lattice
// hits/misses, reconstruction count, and the recursion depth over which
// independence assumptions compounded. Only backends whose Prepared
// exposes a trace (the recursive methods) support it.
func (s *Summary) EstimateWithTrace(q labeltree.Pattern, method Method) (float64, estimate.Trace, error) {
	p, err := s.preparedFor(context.Background(), method)
	if err != nil {
		return 0, estimate.Trace{}, err
	}
	tp, ok := p.(tracePrepared)
	if !ok {
		return 0, estimate.Trace{}, fmt.Errorf("core: method %q does not support traces", method)
	}
	start := time.Now()
	est, tr := tp.EstimateWithTrace(q)
	if s.observe != nil {
		s.observe(method, time.Since(start))
	}
	return est, tr, nil
}

// EstimateInterval returns the decomposition-choice spread [Lo, Hi] of
// q's estimate: how much the answer varies across admissible
// decompositions, an indicator of how hard the conditional-independence
// assumption is working.
func (s *Summary) EstimateInterval(q labeltree.Pattern) estimate.Interval {
	return estimate.EstimateInterval(s.store(), q)
}

// AddTree incrementally folds another document into the summary: the
// document is mined at the same K and its counts are merged. (Documents
// are independent trees, so pattern matches never span batches and counts
// are additive.) AddTree fails with ErrPrunedSummary on a pruned summary,
// whose missing patterns cannot be updated.
func (s *Summary) AddTree(t *labeltree.Tree) error {
	return s.AddTreeContext(context.Background(), t, 0)
}

// AddTreeContext is AddTree with cancellation and an explicit worker
// count for mining the incoming document (0 means GOMAXPROCS). The
// incremental mine runs on a private lattice, so a canceled add leaves
// the summary untouched.
func (s *Summary) AddTreeContext(ctx context.Context, t *labeltree.Tree, workers int) error {
	if s.lat == nil {
		return fmt.Errorf("%w: cannot add documents", ErrFrozenSummary)
	}
	if s.lat.Pruned() {
		return fmt.Errorf("%w: cannot add documents", ErrPrunedSummary)
	}
	if t.Dict() != s.dict {
		return fmt.Errorf("%w: document dictionary differs from summary's", ErrDictMismatch)
	}
	inc, err := mine.MineContext(ctx, t, s.lat.K(), mine.Options{Workers: workers})
	if err != nil {
		return err
	}
	if err := s.lat.Merge(inc); err != nil {
		return err
	}
	s.invalidateDerived()
	return nil
}

// MergeSummary folds another summary's counts into this one — the bulk
// equivalent of AddTree for pre-mined batches. Both summaries must share
// a dictionary and K, and neither may be pruned.
func (s *Summary) MergeSummary(other *Summary) error {
	if s.lat == nil || other.lat == nil {
		return fmt.Errorf("%w: cannot merge", ErrFrozenSummary)
	}
	if s.lat.Pruned() || other.lat.Pruned() {
		return fmt.Errorf("%w: cannot merge", ErrPrunedSummary)
	}
	if other.dict != s.dict {
		return fmt.Errorf("%w: summaries do not share a dictionary", ErrDictMismatch)
	}
	if err := s.lat.Merge(other.lat); err != nil {
		return err
	}
	s.invalidateDerived()
	return nil
}

// RemoveTree subtracts a previously added document's counts from the
// summary — the inverse of AddTree for corpora maintained incrementally.
// Removing a document that was never added is invalid: counts going
// negative are reported as errors, and the summary may be left partially
// updated when that happens.
func (s *Summary) RemoveTree(t *labeltree.Tree) error {
	if s.lat == nil {
		return fmt.Errorf("%w: cannot remove documents", ErrFrozenSummary)
	}
	if s.lat.Pruned() {
		return fmt.Errorf("%w: cannot remove documents", ErrPrunedSummary)
	}
	if t.Dict() != s.dict {
		return fmt.Errorf("%w: document dictionary differs from summary's", ErrDictMismatch)
	}
	dec, err := mine.Mine(t, s.lat.K(), mine.Options{})
	if err != nil {
		return err
	}
	for _, e := range dec.Entries(0) {
		if err := s.lat.AddCount(e.Pattern, -e.Count); err != nil {
			return fmt.Errorf("core: removing document: %w", err)
		}
	}
	s.invalidateDerived()
	return nil
}

// Prune returns a copy of the summary without δ-derivable patterns
// (Section 4.3). delta is a relative tolerance; 0 prunes only patterns
// whose decomposition estimate is exact. A frozen-only summary is
// returned unchanged: pruning needs the map-backed lattice.
func (s *Summary) Prune(delta float64) *Summary {
	if s.lat == nil {
		return s
	}
	return &Summary{lat: estimate.PruneDerivable(s.lat, delta), dict: s.dict}
}

// WriteTo serializes the summary. Frozen-only summaries were loaded from
// the serialized form and cannot have changed; re-serializing them is
// rejected with ErrFrozenSummary.
func (s *Summary) WriteTo(w io.Writer) (int64, error) {
	if s.lat == nil {
		return 0, fmt.Errorf("%w: cannot serialize", ErrFrozenSummary)
	}
	return s.lat.WriteTo(w)
}

// Read deserializes a summary written by WriteTo, interning labels into
// dict.
func Read(r io.Reader, dict *labeltree.Dict) (*Summary, error) {
	lat, err := lattice.Read(r, dict)
	if err != nil {
		return nil, err
	}
	return &Summary{lat: lat, dict: dict}, nil
}

// ReadFrozen deserializes a summary straight into the read-optimized
// frozen representation, never materializing the map backend. The result
// serves estimates (typically faster, with zero-allocation lookups) but
// rejects every mutation with ErrFrozenSummary — the load path for
// read-only serving replicas.
func ReadFrozen(r io.Reader, dict *labeltree.Dict) (*Summary, error) {
	f, err := lattice.ReadFrozen(r, dict)
	if err != nil {
		return nil, err
	}
	return &Summary{frozen: f, dict: dict}, nil
}
