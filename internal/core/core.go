// Package core ties the paper's pieces into the TreeLattice system: build
// a lattice summary from a document by frequent-tree mining, estimate twig
// query selectivities by probabilistic decomposition, prune δ-derivable
// patterns under a memory budget, and maintain the summary incrementally
// across document batches.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/metrics"
	"treelattice/internal/mine"
)

// Method selects an estimation strategy.
type Method string

// The estimation strategies evaluated in the paper.
const (
	// MethodRecursive removes one deterministic leaf pair per recursion
	// level (Section 3.2).
	MethodRecursive Method = "recursive"
	// MethodRecursiveVoting averages all admissible leaf pairs per level
	// (Section 3.2, voting extension). Most accurate, slowest.
	MethodRecursiveVoting Method = "recursive+voting"
	// MethodFixSized covers the query with K-subtrees in preorder
	// (Section 3.3). Fastest.
	MethodFixSized Method = "fix-sized"
)

// Methods returns all estimation methods in presentation order.
func Methods() []Method {
	return []Method{MethodRecursive, MethodRecursiveVoting, MethodFixSized}
}

// MaxK caps the lattice level. Level-wise enumeration is exponential in
// K, and the paper's evaluation never goes beyond 5; the cap turns a
// runaway K into ErrKTooLarge instead of an out-of-memory build.
const MaxK = 16

// BuildOptions configures summary construction.
type BuildOptions struct {
	// K is the lattice level: all subtree patterns up to this size are
	// collected. Default 4, the paper's standard setting. Values beyond
	// MaxK are rejected with ErrKTooLarge.
	K int
	// Workers bounds the build's parallelism: candidate counting within
	// one document, and document fan-out in BuildForestContext. Zero
	// means GOMAXPROCS; 1 forces a sequential build.
	Workers int
	// Mining passes through to the miner. Its Workers field, when zero,
	// inherits the Workers setting above.
	Mining mine.Options
	// Timings, when non-nil, receives per-stage wall-clock measurements
	// of the build (mine, reduce).
	Timings *metrics.BuildTimings
}

// EstimateObserver receives the wall-clock latency of each estimate, keyed
// by method. Implementations must be safe for concurrent use; the serving
// layer feeds these into per-method obs histograms.
type EstimateObserver func(method Method, d time.Duration)

// Summary is a TreeLattice summary of one or more documents.
type Summary struct {
	lat  *lattice.Summary
	dict *labeltree.Dict
	// observe, when non-nil, is called with the latency of every estimate
	// issued through Estimator or EstimateWithTrace. Set once via
	// Instrument before the summary sees concurrent traffic.
	observe EstimateObserver
}

// Instrument installs an estimate-latency observer on the summary. Call
// before serving; a nil observer disables instrumentation.
func (s *Summary) Instrument(obs EstimateObserver) { s.observe = obs }

// timedEstimator wraps an estimator with latency observation.
type timedEstimator struct {
	inner   estimate.Estimator
	method  Method
	observe EstimateObserver
}

func (t timedEstimator) Estimate(q labeltree.Pattern) float64 {
	start := time.Now()
	v := t.inner.Estimate(q)
	t.observe(t.method, time.Since(start))
	return v
}

// EstimateContext keeps the wrapped estimator's cooperative cancellation
// visible through the instrumentation layer. Failed (canceled) estimates
// are still observed: their latency is exactly the budget burned.
func (t timedEstimator) EstimateContext(ctx context.Context, q labeltree.Pattern) (float64, error) {
	start := time.Now()
	var v float64
	var err error
	if ce, ok := t.inner.(estimate.ContextEstimator); ok {
		v, err = ce.EstimateContext(ctx, q)
	} else {
		v = t.inner.Estimate(q)
	}
	t.observe(t.method, time.Since(start))
	return v, err
}

func (t timedEstimator) Name() string { return t.inner.Name() }

// Build mines a K-lattice summary from t.
func Build(t *labeltree.Tree, opts BuildOptions) (*Summary, error) {
	return BuildContext(context.Background(), t, opts)
}

// BuildContext is Build with cancellation and deadline awareness: mining
// checks ctx between enumeration levels and while counting candidates, so
// a long build aborts promptly with ctx.Err() once ctx is done.
func BuildContext(ctx context.Context, t *labeltree.Tree, opts BuildOptions) (*Summary, error) {
	if err := checkOptions(&opts); err != nil {
		return nil, err
	}
	stop := opts.Timings.Start("mine")
	lat, err := mine.MineContext(ctx, t, opts.K, miningOptions(opts))
	stop()
	if err != nil {
		return nil, fmt.Errorf("core: building summary: %w", err)
	}
	return &Summary{lat: lat, dict: t.Dict()}, nil
}

// BuildForestContext mines a shared summary of several documents in
// parallel: each tree is mined into a private shard lattice by a worker
// pool, and the shards are pairwise-reduced into one summary. All trees
// must share a dictionary. The result is bit-identical to mining the
// trees sequentially and merging in order, for any worker count.
func BuildForestContext(ctx context.Context, trees []*labeltree.Tree, opts BuildOptions) (*Summary, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: BuildForest needs at least one tree")
	}
	if err := checkOptions(&opts); err != nil {
		return nil, err
	}
	dict := trees[0].Dict()
	for _, t := range trees[1:] {
		if t.Dict() != dict {
			return nil, fmt.Errorf("%w: trees in a forest must share one dictionary", ErrDictMismatch)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Split the budget: across documents first, leftover capacity into
	// each document's candidate counting (a single huge document still
	// uses every worker).
	inner := workers / len(trees)
	if inner < 1 {
		inner = 1
	}
	mo := miningOptions(opts)
	mo.Workers = inner

	shards := make([]*lattice.Summary, len(trees))
	errs := make([]error, len(trees))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	stop := opts.Timings.Start("mine")
	for i, t := range trees {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t *labeltree.Tree) {
			defer wg.Done()
			defer func() { <-sem }()
			shards[i], errs[i] = mine.MineContext(ctx, t, opts.K, mo)
		}(i, t)
	}
	wg.Wait()
	stop()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: building summary: %w", err)
		}
	}
	stop = opts.Timings.Start("reduce")
	merged, err := lattice.Reduce(ctx, shards, workers)
	stop()
	if err != nil {
		return nil, fmt.Errorf("core: merging shards: %w", err)
	}
	return &Summary{lat: merged, dict: dict}, nil
}

// checkOptions applies defaults and validates the lattice level.
func checkOptions(opts *BuildOptions) error {
	if opts.K == 0 {
		opts.K = 4
	}
	if opts.K > MaxK {
		return fmt.Errorf("%w: K=%d exceeds MaxK=%d", ErrKTooLarge, opts.K, MaxK)
	}
	return nil
}

// miningOptions resolves the miner options, inheriting Workers.
func miningOptions(opts BuildOptions) mine.Options {
	mo := opts.Mining
	if mo.Workers == 0 {
		mo.Workers = opts.Workers
	}
	return mo
}

// FromLattice wraps an existing lattice summary.
func FromLattice(lat *lattice.Summary) *Summary {
	return &Summary{lat: lat, dict: lat.Dict()}
}

// K returns the lattice level.
func (s *Summary) K() int { return s.lat.K() }

// Dict returns the label dictionary queries must be parsed against.
func (s *Summary) Dict() *labeltree.Dict { return s.dict }

// Lattice exposes the underlying lattice summary.
func (s *Summary) Lattice() *lattice.Summary { return s.lat }

// SizeBytes is the accounted storage size of the summary.
func (s *Summary) SizeBytes() int { return s.lat.SizeBytes() }

// Patterns reports the number of stored patterns.
func (s *Summary) Patterns() int { return s.lat.Len() }

// Estimator returns the estimator implementing method over this summary.
// When the summary is instrumented, the estimator reports every Estimate's
// latency to the observer.
func (s *Summary) Estimator(method Method) (estimate.Estimator, error) {
	var est estimate.Estimator
	switch method {
	case MethodRecursive:
		est = estimate.NewRecursive(s.lat, false)
	case MethodRecursiveVoting:
		est = estimate.NewRecursive(s.lat, true)
	case MethodFixSized:
		est = estimate.NewFixSized(s.lat)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
	if s.observe != nil {
		est = timedEstimator{inner: est, method: method, observe: s.observe}
	}
	return est, nil
}

// Estimate returns the estimated selectivity of q under method.
func (s *Summary) Estimate(q labeltree.Pattern, method Method) (float64, error) {
	return s.EstimateContext(context.Background(), q, method)
}

// EstimateContext is Estimate with cooperative cancellation: both built-in
// estimators poll ctx at bounded intervals during the decomposition
// recursion, so a deadline interrupts an expensive voting estimate
// mid-flight rather than merely gating entry.
func (s *Summary) EstimateContext(ctx context.Context, q labeltree.Pattern, method Method) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	est, err := s.Estimator(method)
	if err != nil {
		return 0, err
	}
	if ce, ok := est.(estimate.ContextEstimator); ok {
		return ce.EstimateContext(ctx, q)
	}
	return est.Estimate(q), nil
}

// Fallback names the cheaper method EstimateDegradable retries with when
// method blows its budget. The ladder follows the paper's cost ordering:
// both recursive variants degrade to fix-sized decomposition (Section 3.3,
// the fastest estimator); fix-sized has nothing cheaper to fall to.
func Fallback(method Method) (Method, bool) {
	switch method {
	case MethodRecursive, MethodRecursiveVoting:
		return MethodFixSized, true
	default:
		return "", false
	}
}

// DegradedEstimate is the result of EstimateDegradable: the estimate, the
// method that actually produced it, and whether that method was a
// budget-forced downgrade from the one requested.
type DegradedEstimate struct {
	Estimate float64
	Method   Method
	Degraded bool
}

// EstimateDegradable estimates q under method within ctx's budget; if the
// budget expires mid-estimate and the method has a cheaper Fallback, it
// re-runs under the fallback instead of failing. The fallback runs outside
// the expired deadline (the request already paid for an answer; a degraded
// one beats a 504) but still honors the caller's cancellation — a client
// that hung up gets context.Canceled, never a degraded answer it will not
// read.
func (s *Summary) EstimateDegradable(ctx context.Context, q labeltree.Pattern, method Method) (DegradedEstimate, error) {
	est, err := s.EstimateContext(ctx, q, method)
	if err == nil {
		return DegradedEstimate{Estimate: est, Method: method}, nil
	}
	fb, ok := Fallback(method)
	if !ok || !errors.Is(err, context.DeadlineExceeded) {
		return DegradedEstimate{}, err
	}
	// Drop the expired deadline but keep cancellation semantics: parent
	// cancellation no longer propagates through WithoutCancel, so the
	// fix-sized run (microseconds) completes unconditionally.
	est, err = s.EstimateContext(context.WithoutCancel(ctx), q, fb)
	if err != nil {
		return DegradedEstimate{}, err
	}
	return DegradedEstimate{Estimate: est, Method: fb, Degraded: true}, nil
}

// EstimateQuery parses a twig query in the "a(b,c(d))" syntax and
// estimates its selectivity. Parse failures wrap ErrBadQuery; queries
// naming labels the dictionary has never seen wrap ErrUnknownLabel (their
// true selectivity is zero).
func (s *Summary) EstimateQuery(query string, method Method) (float64, error) {
	return s.EstimateQueryContext(context.Background(), query, method)
}

// EstimateQueryContext is EstimateQuery with cancellation.
func (s *Summary) EstimateQueryContext(ctx context.Context, query string, method Method) (float64, error) {
	q, err := s.ParseQuery(query)
	if err != nil {
		return 0, err
	}
	return s.EstimateContext(ctx, q, method)
}

// ParseQuery parses a twig query against the summary's dictionary,
// classifying failures: syntax errors wrap ErrBadQuery, and labels the
// dictionary has never seen wrap ErrUnknownLabel.
func (s *Summary) ParseQuery(query string) (labeltree.Pattern, error) {
	// Labels interned by this parse get IDs at or past the current
	// dictionary length — exactly the ones no document or summary has
	// ever mentioned.
	known := labeltree.LabelID(s.dict.Len())
	q, err := labeltree.ParsePattern(query, s.dict)
	if err != nil {
		return labeltree.Pattern{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	for i := int32(0); int(i) < q.Size(); i++ {
		if l := q.Label(i); l >= known {
			return labeltree.Pattern{}, fmt.Errorf("%w: %q", ErrUnknownLabel, s.dict.Name(l))
		}
	}
	return q, nil
}

// EstimateWithTrace estimates q with the recursive estimator (voting per
// the method) and returns the work record: lattice hits/misses,
// reconstruction count, and the recursion depth over which independence
// assumptions compounded. Only the recursive methods carry traces.
func (s *Summary) EstimateWithTrace(q labeltree.Pattern, method Method) (float64, estimate.Trace, error) {
	switch method {
	case MethodRecursive, MethodRecursiveVoting:
		r := estimate.NewRecursive(s.lat, method == MethodRecursiveVoting)
		start := time.Now()
		est, tr := r.EstimateWithTrace(q)
		if s.observe != nil {
			s.observe(method, time.Since(start))
		}
		return est, tr, nil
	default:
		return 0, estimate.Trace{}, fmt.Errorf("core: method %q does not support traces", method)
	}
}

// EstimateInterval returns the decomposition-choice spread [Lo, Hi] of
// q's estimate: how much the answer varies across admissible
// decompositions, an indicator of how hard the conditional-independence
// assumption is working.
func (s *Summary) EstimateInterval(q labeltree.Pattern) estimate.Interval {
	return estimate.EstimateInterval(s.lat, q)
}

// AddTree incrementally folds another document into the summary: the
// document is mined at the same K and its counts are merged. (Documents
// are independent trees, so pattern matches never span batches and counts
// are additive.) AddTree fails with ErrPrunedSummary on a pruned summary,
// whose missing patterns cannot be updated.
func (s *Summary) AddTree(t *labeltree.Tree) error {
	return s.AddTreeContext(context.Background(), t, 0)
}

// AddTreeContext is AddTree with cancellation and an explicit worker
// count for mining the incoming document (0 means GOMAXPROCS). The
// incremental mine runs on a private lattice, so a canceled add leaves
// the summary untouched.
func (s *Summary) AddTreeContext(ctx context.Context, t *labeltree.Tree, workers int) error {
	if s.lat.Pruned() {
		return fmt.Errorf("%w: cannot add documents", ErrPrunedSummary)
	}
	if t.Dict() != s.dict {
		return fmt.Errorf("%w: document dictionary differs from summary's", ErrDictMismatch)
	}
	inc, err := mine.MineContext(ctx, t, s.lat.K(), mine.Options{Workers: workers})
	if err != nil {
		return err
	}
	return s.lat.Merge(inc)
}

// MergeSummary folds another summary's counts into this one — the bulk
// equivalent of AddTree for pre-mined batches. Both summaries must share
// a dictionary and K, and neither may be pruned.
func (s *Summary) MergeSummary(other *Summary) error {
	if s.lat.Pruned() || other.lat.Pruned() {
		return fmt.Errorf("%w: cannot merge", ErrPrunedSummary)
	}
	if other.dict != s.dict {
		return fmt.Errorf("%w: summaries do not share a dictionary", ErrDictMismatch)
	}
	return s.lat.Merge(other.lat)
}

// RemoveTree subtracts a previously added document's counts from the
// summary — the inverse of AddTree for corpora maintained incrementally.
// Removing a document that was never added is invalid: counts going
// negative are reported as errors, and the summary may be left partially
// updated when that happens.
func (s *Summary) RemoveTree(t *labeltree.Tree) error {
	if s.lat.Pruned() {
		return fmt.Errorf("%w: cannot remove documents", ErrPrunedSummary)
	}
	if t.Dict() != s.dict {
		return fmt.Errorf("%w: document dictionary differs from summary's", ErrDictMismatch)
	}
	dec, err := mine.Mine(t, s.lat.K(), mine.Options{})
	if err != nil {
		return err
	}
	for _, e := range dec.Entries(0) {
		if err := s.lat.AddCount(e.Pattern, -e.Count); err != nil {
			return fmt.Errorf("core: removing document: %w", err)
		}
	}
	return nil
}

// Prune returns a copy of the summary without δ-derivable patterns
// (Section 4.3). delta is a relative tolerance; 0 prunes only patterns
// whose decomposition estimate is exact.
func (s *Summary) Prune(delta float64) *Summary {
	return &Summary{lat: estimate.PruneDerivable(s.lat, delta), dict: s.dict}
}

// WriteTo serializes the summary.
func (s *Summary) WriteTo(w io.Writer) (int64, error) { return s.lat.WriteTo(w) }

// Read deserializes a summary written by WriteTo, interning labels into
// dict.
func Read(r io.Reader, dict *labeltree.Dict) (*Summary, error) {
	lat, err := lattice.Read(r, dict)
	if err != nil {
		return nil, err
	}
	return &Summary{lat: lat, dict: dict}, nil
}
