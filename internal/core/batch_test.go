package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"treelattice/internal/labeltree"
	"treelattice/internal/xmlparse"
)

// sampleQueries builds a mixed batch (present patterns, decomposed
// over-size patterns, absent patterns) against buildSample's document.
func sampleQueries(t *testing.T, s *Summary) []labeltree.Pattern {
	t.Helper()
	queries := make([]labeltree.Pattern, 0, 8)
	for _, src := range []string{
		"laptop(brand,price)",
		"computer(laptops(laptop(brand,price)),desktops)",
		"computer(laptops,desktops)",
		"laptop(brand)",
		"computer(laptops(laptop(brand),laptop(price)))",
		"desktops(laptop)", // structurally absent
		"laptop(brand,price)",
	} {
		q, err := s.ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		queries = append(queries, q)
	}
	return queries
}

// TestEstimateBatchMatchesSingle: the batch API is a fan-out, not a
// different estimator — every item must equal the single-query result,
// for every method and worker count.
func TestEstimateBatchMatchesSingle(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	queries := sampleQueries(t, sum)
	for _, method := range Methods() {
		want := make([]float64, len(queries))
		for i, q := range queries {
			v, err := sum.Estimate(q, method)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = v
		}
		for _, workers := range []int{1, 2, 8} {
			results, err := sum.EstimateBatchContext(context.Background(), queries, method, BatchOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(queries) {
				t.Fatalf("%d results for %d queries", len(results), len(queries))
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("%s w=%d item %d: %v", method, workers, i, r.Err)
				}
				if r.Estimate != want[i] || r.Method != method || r.Degraded {
					t.Fatalf("%s w=%d item %d: got %v/%s/%v want %v/%s", method, workers, i, r.Estimate, r.Method, r.Degraded, want[i], method)
				}
			}
		}
	}
}

func TestEstimateBatchUnknownMethod(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	if _, err := sum.EstimateBatchContext(context.Background(), sampleQueries(t, sum), Method("nope"), BatchOptions{}); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("err = %v, want ErrUnknownMethod", err)
	}
}

func TestEstimateBatchEmpty(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	results, err := sum.EstimateBatchContext(context.Background(), nil, MethodRecursive, BatchOptions{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(results))
	}
}

// TestEstimateBatchCancelled: an already-cancelled context fails items
// individually (per-item error envelopes), not the whole call.
func TestEstimateBatchCancelled(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	queries := sampleQueries(t, sum)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := sum.EstimateBatchContext(ctx, queries, MethodRecursive, BatchOptions{DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestEstimateBatchDegrades: an expired deadline with fallback enabled
// degrades recursive items to fix-sized instead of failing them.
func TestEstimateBatchDegrades(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	queries := sampleQueries(t, sum)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	results, err := sum.EstimateBatchContext(ctx, queries, MethodRecursiveVoting, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if !r.Degraded || r.Method != MethodFixSized {
			t.Fatalf("item %d: not degraded to fix-sized: %+v", i, r)
		}
	}
}

// TestFrozenSummaryEstimates: a summary reloaded via ReadFrozen answers
// every method and the batch API bit-identically to the mutable one.
func TestFrozenSummaryEstimates(t *testing.T) {
	sum, _, _ := buildSample(t, 3)
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dict := labeltree.NewDict()
	frozen, err := ReadFrozen(bytes.NewReader(buf.Bytes()), dict)
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Mutable() || !frozen.FrozenStore() {
		t.Fatalf("frozen summary: Mutable=%v FrozenStore=%v", frozen.Mutable(), frozen.FrozenStore())
	}
	if frozen.K() != sum.K() || frozen.Patterns() != sum.Patterns() || frozen.SizeBytes() != sum.SizeBytes() {
		t.Fatal("frozen summary header diverges")
	}
	queries := sampleQueries(t, sum)
	for _, method := range Methods() {
		for i, q := range queries {
			want, err := sum.Estimate(q, method)
			if err != nil {
				t.Fatal(err)
			}
			// Re-parse against the frozen summary's dictionary.
			fq, err := frozen.ParseQuery(q.String(sum.Dict()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := frozen.Estimate(fq, method)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s query %d: frozen %v != mutable %v", method, i, got, want)
			}
		}
	}
}

// TestFrozenSummaryRejectsMutation: every mutating entry point fails
// with ErrFrozenSummary and the summary stays serviceable.
func TestFrozenSummaryRejectsMutation(t *testing.T) {
	sum, tr, _ := buildSample(t, 3)
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	frozen, err := ReadFrozen(bytes.NewReader(buf.Bytes()), labeltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	if err := frozen.AddTree(tr); !errors.Is(err, ErrFrozenSummary) {
		t.Fatalf("AddTree err = %v", err)
	}
	if err := frozen.RemoveTree(tr); !errors.Is(err, ErrFrozenSummary) {
		t.Fatalf("RemoveTree err = %v", err)
	}
	if err := frozen.MergeSummary(sum); !errors.Is(err, ErrFrozenSummary) {
		t.Fatalf("MergeSummary err = %v", err)
	}
	if err := sum.MergeSummary(frozen); !errors.Is(err, ErrFrozenSummary) {
		t.Fatalf("MergeSummary(frozen other) err = %v", err)
	}
	if _, err := frozen.WriteTo(&bytes.Buffer{}); !errors.Is(err, ErrFrozenSummary) {
		t.Fatalf("WriteTo err = %v", err)
	}
	if got := frozen.Prune(0); got != frozen {
		t.Fatal("Prune on frozen-only summary did not return the summary unchanged")
	}
	// Still serves estimates after the failed mutations.
	q, err := frozen.ParseQuery("laptop(brand,price)")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := frozen.Estimate(q, MethodRecursive); err != nil || v != 2 {
		t.Fatalf("estimate after failed mutations = %v, %v", v, err)
	}
}

// TestFreezeTracksMutation: a frozen snapshot on a mutable summary is
// refreshed by mutations, so reads never see stale counts.
func TestFreezeTracksMutation(t *testing.T) {
	sum, _, dict := buildSample(t, 3)
	sum.Freeze()
	if !sum.FrozenStore() || !sum.Mutable() {
		t.Fatalf("after Freeze: FrozenStore=%v Mutable=%v", sum.FrozenStore(), sum.Mutable())
	}
	q, err := sum.ParseQuery("laptop(brand,price)")
	if err != nil {
		t.Fatal(err)
	}
	before, err := sum.Estimate(q, MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := xmlparse.Parse(strings.NewReader("<computer><laptops><laptop><brand/><price/></laptop></laptops></computer>"), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.AddTree(extra); err != nil {
		t.Fatal(err)
	}
	after, err := sum.Estimate(q, MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Fatalf("frozen store stale after AddTree: before=%v after=%v", before, after)
	}
}

// TestSubCacheInvalidatedOnMutation: cached sub-estimates must not
// survive a summary mutation.
func TestSubCacheInvalidatedOnMutation(t *testing.T) {
	sum, _, dict := buildSample(t, 2) // K=2 forces decomposition (and caching) early
	q, err := sum.ParseQuery("computer(laptops(laptop(brand,price)))")
	if err != nil {
		t.Fatal(err)
	}
	before, err := sum.Estimate(q, MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SubCacheStats().Entries == 0 {
		t.Fatal("no sub-estimates cached")
	}
	extra, err := xmlparse.Parse(strings.NewReader("<computer><laptops><laptop><brand/><price/></laptop></laptops></computer>"), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.AddTree(extra); err != nil {
		t.Fatal(err)
	}
	if got := sum.SubCacheStats().Entries; got != 0 {
		t.Fatalf("%d cached sub-estimates survived AddTree", got)
	}
	after, err := sum.Estimate(q, MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("estimate unchanged after adding a matching document (stale cache?)")
	}
}

// TestBatchSharesCache: a batch of duplicated structurally-overlapping
// queries hits the shared cache.
func TestBatchSharesCache(t *testing.T) {
	sum, _, _ := buildSample(t, 2)
	q, err := sum.ParseQuery("computer(laptops(laptop(brand,price)))")
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]labeltree.Pattern, 16)
	for i := range batch {
		batch[i] = q
	}
	if _, err := sum.EstimateBatchContext(context.Background(), batch, MethodRecursive, BatchOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	st := sum.SubCacheStats()
	if st.Hits == 0 {
		t.Fatalf("no shared-cache hits across a duplicated batch: %+v", st)
	}
}

func TestReadFrozenGarbage(t *testing.T) {
	for i, data := range []string{"", "XXXX", "TLAT\x02", "TLAT\x01\x04\x00"} {
		if _, err := ReadFrozen(strings.NewReader(data), labeltree.NewDict()); err == nil {
			t.Errorf("case %d: ReadFrozen accepted garbage", i)
		}
	}
}
