package core

import "errors"

// Sentinel errors for the failure classes callers are expected to branch
// on with errors.Is. Returned errors wrap these with detail.
var (
	// ErrBadQuery reports a twig query that does not parse.
	ErrBadQuery = errors.New("treelattice: bad twig query")
	// ErrUnknownLabel reports a query referencing a label the summary's
	// dictionary has never seen. The true selectivity of such a query is
	// zero; callers that prefer 0 over an error can test for this.
	ErrUnknownLabel = errors.New("treelattice: unknown label")
	// ErrUnknownMethod reports an estimation method name with no
	// registered backend; the wrapping error enumerates what is
	// registered.
	ErrUnknownMethod = errors.New("treelattice: unknown estimation method")
	// ErrKTooLarge reports a BuildOptions.K beyond MaxK. Level-wise
	// enumeration is exponential in K; the cap keeps a mistyped K from
	// consuming the machine.
	ErrKTooLarge = errors.New("treelattice: K too large")
	// ErrPrunedSummary reports an incremental update against a pruned
	// summary, whose missing patterns cannot be maintained.
	ErrPrunedSummary = errors.New("treelattice: summary is pruned")
	// ErrDictMismatch reports trees or summaries that do not share a
	// label dictionary.
	ErrDictMismatch = errors.New("treelattice: different label dictionary")
	// ErrFrozenSummary reports a mutation against a summary loaded in the
	// read-only frozen representation (ReadFrozen), which has no map
	// backend to update.
	ErrFrozenSummary = errors.New("treelattice: summary is frozen")
	// ErrBudgetExhausted reports an estimator that ran out of its internal
	// work budget (the sampling backend's node budget) before producing an
	// answer. Like a blown deadline, it makes the estimate degradable: the
	// ladder retries with the backend's registered fallback.
	ErrBudgetExhausted = errors.New("treelattice: estimation budget exhausted")
	// ErrMethodUnavailable reports a registered method that cannot serve
	// this summary — a document-needing backend (markov, treesketch,
	// sampling, ensemble) with no bound TreeSource or an empty corpus.
	ErrMethodUnavailable = errors.New("treelattice: method unavailable for this summary")
)
