package qcache

import (
	"fmt"
	"sync"
	"testing"

	"treelattice/internal/labeltree"
)

func patterns(n int) ([]labeltree.Pattern, *labeltree.Dict) {
	d := labeltree.NewDict()
	out := make([]labeltree.Pattern, n)
	for i := range out {
		out[i] = labeltree.SingleNode(d.Intern(fmt.Sprintf("l%d", i)))
	}
	return out, d
}

func TestGetPut(t *testing.T) {
	ps, _ := patterns(3)
	c := New(10)
	if _, ok := c.Get("m", ps[0]); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("m", ps[0], 42)
	if v, ok := c.Get("m", ps[0]); !ok || v != 42 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	// Method is part of the key.
	if _, ok := c.Get("other", ps[0]); ok {
		t.Fatal("method leaked across keys")
	}
	// Isomorphic patterns share an entry.
	iso := ps[0].Clone()
	if v, ok := c.Get("m", iso); !ok || v != 42 {
		t.Fatal("canonical keying failed")
	}
	// Overwrite.
	c.Put("m", ps[0], 7)
	if v, _ := c.Get("m", ps[0]); v != 7 {
		t.Fatalf("overwrite = %v", v)
	}
}

func TestLRUEviction(t *testing.T) {
	ps, _ := patterns(4)
	c := New(2)
	c.Put("m", ps[0], 0)
	c.Put("m", ps[1], 1)
	c.Get("m", ps[0]) // refresh 0
	c.Put("m", ps[2], 2)
	if _, ok := c.Get("m", ps[1]); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.Get("m", ps[0]); !ok {
		t.Fatal("refreshed entry evicted")
	}
	_, _, size := c.Stats()
	if size != 2 {
		t.Fatalf("size = %d", size)
	}
}

func TestGetOrCompute(t *testing.T) {
	ps, _ := patterns(1)
	c := New(4)
	calls := 0
	compute := func() float64 { calls++; return 5 }
	if v := c.GetOrCompute("m", ps[0], compute); v != 5 {
		t.Fatalf("first = %v", v)
	}
	if v := c.GetOrCompute("m", ps[0], compute); v != 5 {
		t.Fatalf("second = %v", v)
	}
	if calls != 1 {
		t.Fatalf("compute called %d times", calls)
	}
}

func TestInvalidate(t *testing.T) {
	ps, _ := patterns(2)
	c := New(4)
	c.Put("m", ps[0], 1)
	c.Invalidate()
	if _, ok := c.Get("m", ps[0]); ok {
		t.Fatal("entry survived invalidation")
	}
	hits, misses, size := c.Stats()
	if size != 0 || hits != 0 || misses != 1 {
		t.Fatalf("stats = %d %d %d", hits, misses, size)
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	ps, _ := patterns(1)
	c.Put("m", ps[0], 1)
	if _, ok := c.Get("m", ps[0]); !ok {
		t.Fatal("default-capacity cache broken")
	}
}

func TestConcurrent(t *testing.T) {
	ps, _ := patterns(8)
	c := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := ps[(g+i)%len(ps)]
				c.GetOrCompute("m", p, func() float64 { return float64(i) })
				if i%13 == 0 {
					c.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
}
