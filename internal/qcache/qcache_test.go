package qcache

import (
	"fmt"
	"sync"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/obs"
)

func patterns(n int) ([]labeltree.Pattern, *labeltree.Dict) {
	d := labeltree.NewDict()
	out := make([]labeltree.Pattern, n)
	for i := range out {
		out[i] = labeltree.SingleNode(d.Intern(fmt.Sprintf("l%d", i)))
	}
	return out, d
}

func TestGetPut(t *testing.T) {
	ps, _ := patterns(3)
	c := New(10)
	if _, ok := c.Get(Scope{}, "m", ps[0]); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(Scope{}, "m", ps[0], 42)
	if v, ok := c.Get(Scope{}, "m", ps[0]); !ok || v != 42 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	// Method is part of the key.
	if _, ok := c.Get(Scope{}, "other", ps[0]); ok {
		t.Fatal("method leaked across keys")
	}
	// Isomorphic patterns share an entry.
	iso := ps[0].Clone()
	if v, ok := c.Get(Scope{}, "m", iso); !ok || v != 42 {
		t.Fatal("canonical keying failed")
	}
	// Overwrite.
	c.Put(Scope{}, "m", ps[0], 7)
	if v, _ := c.Get(Scope{}, "m", ps[0]); v != 7 {
		t.Fatalf("overwrite = %v", v)
	}
}

func TestLRUEviction(t *testing.T) {
	ps, _ := patterns(4)
	c := New(2)
	c.Put(Scope{}, "m", ps[0], 0)
	c.Put(Scope{}, "m", ps[1], 1)
	c.Get(Scope{}, "m", ps[0]) // refresh 0
	c.Put(Scope{}, "m", ps[2], 2)
	if _, ok := c.Get(Scope{}, "m", ps[1]); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.Get(Scope{}, "m", ps[0]); !ok {
		t.Fatal("refreshed entry evicted")
	}
	_, _, evictions, size := c.Stats()
	if size != 2 {
		t.Fatalf("size = %d", size)
	}
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
}

func TestGetOrCompute(t *testing.T) {
	ps, _ := patterns(1)
	c := New(4)
	calls := 0
	compute := func() float64 { calls++; return 5 }
	if v := c.GetOrCompute(Scope{}, "m", ps[0], compute); v != 5 {
		t.Fatalf("first = %v", v)
	}
	if v := c.GetOrCompute(Scope{}, "m", ps[0], compute); v != 5 {
		t.Fatalf("second = %v", v)
	}
	if calls != 1 {
		t.Fatalf("compute called %d times", calls)
	}
}

func TestInvalidate(t *testing.T) {
	ps, _ := patterns(2)
	c := New(4)
	c.Put(Scope{}, "m", ps[0], 1)
	c.Invalidate()
	if _, ok := c.Get(Scope{}, "m", ps[0]); ok {
		t.Fatal("entry survived invalidation")
	}
	hits, misses, _, size := c.Stats()
	if size != 0 || hits != 0 || misses != 1 {
		t.Fatalf("stats = %d %d %d", hits, misses, size)
	}
}

func TestHitRatioAndInstrument(t *testing.T) {
	ps, _ := patterns(3)
	c := New(2)
	reg := obs.NewRegistry()
	hits, misses, evict := reg.Counter("hits"), reg.Counter("misses"), reg.Counter("evictions")
	c.Instrument(hits, misses, evict)

	if got := c.HitRatio(); got != 0 {
		t.Fatalf("hit ratio before any lookup = %v, want 0", got)
	}
	c.Get(Scope{}, "m", ps[0]) // miss
	c.Put(Scope{}, "m", ps[0], 1)
	c.Get(Scope{}, "m", ps[0]) // hit
	c.Get(Scope{}, "m", ps[0]) // hit
	if got, want := c.HitRatio(), 2.0/3.0; got != want {
		t.Fatalf("hit ratio = %v, want %v", got, want)
	}
	c.Put(Scope{}, "m", ps[1], 2)
	c.Put(Scope{}, "m", ps[2], 3) // evicts ps[0]
	if hits.Value() != 2 || misses.Value() != 1 || evict.Value() != 1 {
		t.Fatalf("obs mirrors = %d/%d/%d, want 2/1/1",
			hits.Value(), misses.Value(), evict.Value())
	}
	h, m, e, _ := c.Stats()
	if h != hits.Value() || m != misses.Value() || e != evict.Value() {
		t.Fatalf("internal counters diverge from obs mirrors: %d/%d/%d", h, m, e)
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	ps, _ := patterns(1)
	c.Put(Scope{}, "m", ps[0], 1)
	if _, ok := c.Get(Scope{}, "m", ps[0]); !ok {
		t.Fatal("default-capacity cache broken")
	}
}

func TestScopeIsolation(t *testing.T) {
	ps, _ := patterns(1)
	c := New(16)
	a1 := Scope{Tenant: "a", Epoch: 1}
	a2 := Scope{Tenant: "a", Epoch: 2}
	b1 := Scope{Tenant: "b", Epoch: 1}
	c.Put(a1, "m", ps[0], 10)
	c.Put(a2, "m", ps[0], 20)
	c.Put(b1, "m", ps[0], 30)
	// Same query, three scopes, three independent entries.
	for _, tc := range []struct {
		scope Scope
		want  float64
	}{{a1, 10}, {a2, 20}, {b1, 30}} {
		if v, ok := c.Get(tc.scope, "m", ps[0]); !ok || v != tc.want {
			t.Fatalf("Get(%+v) = %v,%v, want %v", tc.scope, v, ok, tc.want)
		}
	}
	// Dropping tenant a removes both of its epochs, leaves b warm.
	c.DropScope("a")
	if _, ok := c.Get(a1, "m", ps[0]); ok {
		t.Fatal("a/1 survived DropScope(a)")
	}
	if _, ok := c.Get(a2, "m", ps[0]); ok {
		t.Fatal("a/2 survived DropScope(a)")
	}
	if v, ok := c.Get(b1, "m", ps[0]); !ok || v != 30 {
		t.Fatal("b/1 did not survive DropScope(a)")
	}
	// Default-tenant scope is just Tenant: "".
	c.Put(Scope{Epoch: 7}, "m", ps[0], 70)
	c.DropScope("")
	if _, ok := c.Get(Scope{Epoch: 7}, "m", ps[0]); ok {
		t.Fatal("default-tenant entry survived DropScope(\"\")")
	}
}

func TestConcurrent(t *testing.T) {
	ps, _ := patterns(8)
	c := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := ps[(g+i)%len(ps)]
				c.GetOrCompute(Scope{}, "m", p, func() float64 { return float64(i) })
				if i%13 == 0 {
					c.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
}
