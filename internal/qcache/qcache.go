// Package qcache caches twig-selectivity estimates keyed by the query's
// canonical form, estimation method, and serving scope. Estimation is
// microseconds, but a served corpus answers the same optimizer-generated
// queries repeatedly; the cache turns those into map hits.
//
// The scope — (tenant, epoch) — is what keeps invalidation surgical in a
// multi-tenant, continuously-ingesting server. Every entry carries the
// scope it was computed under, so:
//
//   - publishing a new epoch needs no invalidation at all: lookups carry
//     the new epoch and simply miss, while stale-epoch entries become
//     unreachable and age out of the LRU;
//   - mutating or reloading one tenant drops that tenant's entries only
//     (DropScope), leaving every other tenant's warm cache intact.
package qcache

import (
	"container/list"
	"sync"

	"treelattice/internal/labeltree"
	"treelattice/internal/obs"
)

// Scope identifies the serving state an estimate was computed against:
// the tenant (empty for the default corpus) and the RCU epoch (0 when
// the backend does not publish epochs). Estimates are only valid within
// their scope.
type Scope struct {
	Tenant string
	Epoch  uint64
}

// Cache is a bounded LRU of estimates. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *entry
	items    map[cacheKey]*list.Element

	hits, misses, evictions uint64

	// Optional obs mirrors, bumped alongside the internal counters so a
	// served cache exports hit/miss/eviction rates without the handler
	// polling Stats. Nil until Instrument is called.
	hitC, missC, evictC *obs.Counter
}

// cacheKey combines scope, method name, and canonical query key. A
// comparable struct, so lookups build no concatenated string.
type cacheKey struct {
	scope  Scope
	method string
	query  labeltree.Key
}

type entry struct {
	key   cacheKey
	value float64
}

// New returns a cache holding up to capacity entries.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[cacheKey]*list.Element, capacity),
	}
}

// Instrument mirrors hit/miss/eviction events into obs counters (any may
// be nil to skip that event). Call before the cache sees traffic; the
// counters are written under the cache mutex.
func (c *Cache) Instrument(hits, misses, evictions *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hitC, c.missC, c.evictC = hits, misses, evictions
}

// Get returns the cached estimate for (scope, method, q).
func (c *Cache) Get(scope Scope, method string, q labeltree.Pattern) (float64, bool) {
	k := cacheKey{scope, method, q.Key()}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		if c.missC != nil {
			c.missC.Inc()
		}
		return 0, false
	}
	c.hits++
	if c.hitC != nil {
		c.hitC.Inc()
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put stores an estimate, evicting the least recently used entry when
// full.
func (c *Cache) Put(scope Scope, method string, q labeltree.Pattern, value float64) {
	k := cacheKey{scope, method, q.Key()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&entry{key: k, value: value})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*entry).key)
		c.evictions++
		if c.evictC != nil {
			c.evictC.Inc()
		}
	}
}

// GetOrCompute returns the cached estimate or computes, stores, and
// returns it.
func (c *Cache) GetOrCompute(scope Scope, method string, q labeltree.Pattern, compute func() float64) float64 {
	if v, ok := c.Get(scope, method, q); ok {
		return v
	}
	v := compute()
	c.Put(scope, method, q, v)
	return v
}

// DropScope removes every entry belonging to tenant, across all of its
// epochs — the invalidation for a classic (non-epoch) mutation or a
// fleet tenant reload. Other tenants' entries are untouched.
func (c *Cache) DropScope(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*entry)
		if e.key.scope.Tenant == tenant {
			c.order.Remove(el)
			delete(c.items, e.key)
		}
	}
}

// Invalidate drops every entry across all scopes; the big hammer for
// changes that affect the whole process (e.g. a registry swap).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[cacheKey]*list.Element, c.capacity)
}

// Stats reports hits, misses, evictions, and current size.
func (c *Cache) Stats() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len()
}

// HitRatio is hits / (hits + misses), or 0 before any lookup.
func (c *Cache) HitRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
