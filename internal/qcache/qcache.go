// Package qcache caches twig-selectivity estimates keyed by the query's
// canonical form and estimation method. Estimation is microseconds, but a
// served corpus answers the same optimizer-generated queries repeatedly;
// the cache turns those into map hits and is invalidated wholesale
// whenever the underlying summary changes (a generation counter, bumped
// by the owner on any mutation).
package qcache

import (
	"container/list"
	"sync"

	"treelattice/internal/labeltree"
	"treelattice/internal/obs"
)

// Cache is a bounded LRU of estimates. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	gen      uint64
	order    *list.List // front = most recent; values are *entry
	items    map[cacheKey]*list.Element

	hits, misses, evictions uint64

	// Optional obs mirrors, bumped alongside the internal counters so a
	// served cache exports hit/miss/eviction rates without the handler
	// polling Stats. Nil until Instrument is called.
	hitC, missC, evictC *obs.Counter
}

// cacheKey combines method name and canonical query key. A comparable
// struct, so lookups build no concatenated string.
type cacheKey struct {
	method string
	query  labeltree.Key
}

type entry struct {
	key   cacheKey
	value float64
}

// New returns a cache holding up to capacity entries.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[cacheKey]*list.Element, capacity),
	}
}

// Instrument mirrors hit/miss/eviction events into obs counters (any may
// be nil to skip that event). Call before the cache sees traffic; the
// counters are written under the cache mutex.
func (c *Cache) Instrument(hits, misses, evictions *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hitC, c.missC, c.evictC = hits, misses, evictions
}

// Get returns the cached estimate for (method, q).
func (c *Cache) Get(method string, q labeltree.Pattern) (float64, bool) {
	k := cacheKey{method, q.Key()}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		if c.missC != nil {
			c.missC.Inc()
		}
		return 0, false
	}
	c.hits++
	if c.hitC != nil {
		c.hitC.Inc()
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put stores an estimate, evicting the least recently used entry when
// full.
func (c *Cache) Put(method string, q labeltree.Pattern, value float64) {
	k := cacheKey{method, q.Key()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&entry{key: k, value: value})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*entry).key)
		c.evictions++
		if c.evictC != nil {
			c.evictC.Inc()
		}
	}
}

// GetOrCompute returns the cached estimate or computes, stores, and
// returns it.
func (c *Cache) GetOrCompute(method string, q labeltree.Pattern, compute func() float64) float64 {
	if v, ok := c.Get(method, q); ok {
		return v
	}
	v := compute()
	c.Put(method, q, v)
	return v
}

// Invalidate drops every entry; call when the summary changes.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.order.Init()
	c.items = make(map[cacheKey]*list.Element, c.capacity)
}

// Stats reports hits, misses, evictions, and current size.
func (c *Cache) Stats() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len()
}

// HitRatio is hits / (hits + misses), or 0 before any lookup.
func (c *Cache) HitRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
