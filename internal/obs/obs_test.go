package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs") != c {
		t.Fatal("re-registering a counter returned a different instance")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge after Set = %d, want 7", g.Value())
	}
}

// TestHistogramBuckets pins the bucket assignment rule: value v lands in
// the first bucket with v <= bound; values past the last bound land in the
// overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // (≤1): 0.5,1.0  (≤2): 1.5,2.0  (≤4): 3,4  (>4): 9
	for i, w := range want {
		if s.Buckets[i].Count != w {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Errorf("overflow bucket bound = %v, want +Inf", s.Buckets[3].UpperBound)
	}
	if got, want := s.SumSeconds, 21.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

// TestQuantileBoundaries exercises the interpolation math exactly at
// bucket edges.
func TestQuantileBoundaries(t *testing.T) {
	// 10 observations all in the first bucket (0, 1].
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	// Rank q*10 interpolated across (0, 1]: p50 → 0.5, p99 → 0.99, p100 → 1.
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
	if got := s.Quantile(1.0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("p100 = %v, want 1.0", got)
	}

	// Two equal buckets: the median falls exactly on the shared edge.
	h2 := NewHistogram([]float64{1, 2})
	for i := 0; i < 5; i++ {
		h2.Observe(0.5) // bucket (0,1]
		h2.Observe(1.5) // bucket (1,2]
	}
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.5); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("median at bucket edge = %v, want 1.0", got)
	}
	// p75: rank 7.5, bucket 2 holds ranks (5,10], interpolate (1,2]:
	// 1 + (7.5-5)/5 = 1.5.
	if got := s2.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %v, want 1.5", got)
	}

	// Overflow-bucket quantile clamps to the last finite bound.
	h3 := NewHistogram([]float64{1})
	h3.Observe(100)
	if got := h3.Snapshot().Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want 1 (last finite bound)", got)
	}

	// Empty histogram.
	if got := NewHistogram(nil).Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestSnapshotPrecomputedQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Errorf("precomputed quantiles disagree with Quantile(): %+v", s)
	}
}

// TestHotPathAllocFree is the acceptance gate: recording into registered
// metrics must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	start := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Add(1)
		g.Add(-1)
		h.Observe(0.0007)
		h.ObserveDuration(300 * time.Microsecond)
		h.ObserveSince(start)
	}); n != 0 {
		t.Fatalf("hot path allocates %v times per run, want 0", n)
	}
}

// TestConcurrentObserveSnapshot checks snapshot self-consistency under
// concurrent writers: Count always equals the sum of bucket counts, and
// successive snapshots are monotone. Run under -race this also gates the
// atomics discipline.
func TestConcurrentObserveSnapshot(t *testing.T) {
	h := NewHistogram([]float64{1e-3, 1e-2})
	c := &Counter{}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					h.Observe(5e-4)
					c.Inc()
				}
			}
		}()
	}
	var prevCount, prevCounter uint64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var sum uint64
		for _, b := range s.Buckets {
			sum += b.Count
		}
		if sum != s.Count {
			t.Fatalf("torn snapshot: bucket sum %d != count %d", sum, s.Count)
		}
		if s.Count < prevCount {
			t.Fatalf("histogram count went backwards: %d -> %d", prevCount, s.Count)
		}
		prevCount = s.Count
		if v := c.Value(); v < prevCounter {
			t.Fatalf("counter went backwards: %d -> %d", prevCounter, v)
		} else {
			prevCounter = v
		}
	}
	close(done)
	wg.Wait()
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(-3)
	r.Histogram("lat", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if s.Counters["a"] != 1 || s.Counters["b"] != 2 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Gauges["g"] != -3 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if hs, ok := s.Histograms["lat"]; !ok || hs.Count != 1 {
		t.Errorf("histograms = %v", s.Histograms)
	}

	// Stable export: two marshals of the same state are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("snapshot JSON is not stable across encodes")
	}
}
