// Package obs is the serving path's observability core: a stdlib-only
// metrics registry of atomic counters, gauges, and fixed-boundary latency
// histograms, with a stable JSON snapshot export.
//
// The design constraint is the hot path: once a metric is registered,
// recording into it (Counter.Inc, Gauge.Add, Histogram.Observe) performs
// only atomic operations on pre-allocated memory — no locks, no maps, no
// heap allocations — so instrumentation never shows up in the profiles it
// exists to explain. Registration (Registry.Counter and friends) takes a
// mutex and may allocate; callers resolve metric handles once at
// construction time and hold the pointers.
//
// Histograms use fixed bucket boundaries rather than adaptive sketches:
// fixed buckets make Observe O(#buckets) worst case with zero allocation,
// merge trivially across snapshots, and give quantile estimates whose
// error is bounded by bucket width — the standard trade for serving
// systems (Prometheus histograms make the same one). Quantiles (p50, p95,
// p99) are extracted from a snapshot by linear interpolation within the
// covering bucket.
//
// Snapshots are internally consistent per histogram: Count is defined as
// the sum of the bucket counts read, so a snapshot taken mid-Observe can
// lag the true total but never reports a count that disagrees with its own
// buckets (no torn reads).
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (in-flight
// requests, queue depth). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBounds are the histogram bucket upper bounds (seconds)
// used for request and estimate latencies: roughly logarithmic from 25µs
// to 5s, dense in the sub-millisecond range where estimates live.
var DefaultLatencyBounds = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// Histogram counts observations into fixed buckets. Bucket i holds
// observations v with v <= bounds[i] (and > bounds[i-1]); one extra
// overflow bucket holds everything above the last bound. Construct through
// Registry.Histogram or NewHistogram.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, seconds
	buckets []atomic.Uint64
	sumNano atomic.Int64 // total observed time in nanoseconds
}

// NewHistogram builds a standalone histogram over the given ascending
// upper bounds (nil means DefaultLatencyBounds).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records a value in seconds.
func (h *Histogram) Observe(seconds float64) {
	// Linear scan: bounds are short (≤ ~20) and in cache; a binary search
	// saves nothing at this size and costs branch misses.
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNano.Add(int64(seconds * 1e9))
}

// ObserveDuration records a duration.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.ObserveDuration(time.Since(start))
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below UpperBound (and above the previous bound).
type Bucket struct {
	UpperBound float64 `json:"-"` // +Inf for the overflow bucket
	Count      uint64  `json:"count"`
}

// bucketJSON is the wire form: encoding/json rejects +Inf, so the overflow
// bound is rendered as the string "+Inf" (the Prometheus convention).
type bucketJSON struct {
	UpperBound any    `json:"le"`
	Count      uint64 `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b Bucket) MarshalJSON() ([]byte, error) {
	ub := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		ub = "+Inf"
	}
	return json.Marshal(bucketJSON{UpperBound: ub, Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	b.Count = w.Count
	switch v := w.UpperBound.(type) {
	case float64:
		b.UpperBound = v
	default: // "+Inf" or absent
		b.UpperBound = math.Inf(1)
	}
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram. Count always
// equals the sum of Buckets[i].Count.
type HistogramSnapshot struct {
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets"`
	P50        float64  `json:"p50_seconds"`
	P95        float64  `json:"p95_seconds"`
	P99        float64  `json:"p99_seconds"`
}

// Snapshot copies the histogram's current state and precomputes the
// standard quantiles. The per-bucket reads are individually atomic;
// Count is derived from the bucket values read, keeping the snapshot
// self-consistent even under concurrent Observes.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]Bucket, len(h.buckets))}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: n}
		s.Count += n
	}
	s.SumSeconds = float64(h.sumNano.Load()) / 1e9
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the snapshot by
// locating the covering bucket and interpolating linearly inside it. The
// first bucket interpolates from zero; the overflow bucket reports its
// lower bound (the largest finite boundary), which under-reports extreme
// tails — acceptable because anything past the last bound is "too slow"
// regardless of by how much. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, b := range s.Buckets {
		if b.Count == 0 {
			cum += 0
			continue
		}
		next := cum + float64(b.Count)
		if rank > next {
			cum = next
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Buckets[i-1].UpperBound
		}
		hi := b.UpperBound
		if math.IsInf(hi, 1) {
			// Overflow bucket: no finite upper edge to interpolate toward.
			return lo
		}
		return lo + (hi-lo)*(rank-cum)/float64(b.Count)
	}
	// Unreachable: rank ≤ Count = Σ bucket counts.
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Registry is a named collection of metrics. Lookups take a mutex and are
// meant for construction time and snapshots; the returned metric handles
// are the hot-path interface. A name identifies exactly one metric: asking
// for an existing name returns the existing metric (for histograms, the
// requested bounds are then ignored).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds (nil = DefaultLatencyBounds) if needed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric. Marshaled
// to JSON the output is stable: encoding/json sorts map keys.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures all metrics. Counters and gauges are read atomically;
// histogram snapshots are self-consistent per the Histogram.Snapshot
// contract.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
