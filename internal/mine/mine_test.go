package mine

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func figure1Tree(t *testing.T) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	doc := `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func TestMineFigure1Counts(t *testing.T) {
	tr, dict := figure1Tree(t)
	sum, err := Mine(tr, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		q    string
		want int64
	}{
		{"laptop", 2},
		{"computer", 1},
		{"laptops(laptop)", 2},
		{"laptop(brand)", 2},
		{"laptop(brand,price)", 2},
		{"computer(laptops(laptop))", 2},
		{"laptops(laptop,laptop)", 2},
	} {
		q := labeltree.MustParsePattern(tc.q, dict)
		got, ok := sum.Count(q)
		if !ok || got != tc.want {
			t.Errorf("Count(%s) = %d,%v want %d", tc.q, got, ok, tc.want)
		}
	}
	// 4-node pattern must not be present in a 3-lattice.
	q4 := labeltree.MustParsePattern("computer(laptops(laptop(brand)))", dict)
	if _, ok := sum.Count(q4); ok {
		t.Fatal("3-lattice contains a 4-node pattern")
	}
}

func TestMineCompleteness(t *testing.T) {
	// Every size-<=k connected pattern with a positive match count must be
	// in the lattice, with the exact count. Cross-check by sampling
	// subtrees of a random data tree.
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(17))
	tr := treetest.RandomTree(rng, 60, alphabet, dict)
	const k = 4
	sum, err := Mine(tr, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counter := match.NewCounter(tr)
	checked := 0
	for trial := 0; trial < 400; trial++ {
		p := treetest.RandomPattern(rng, 1+rng.Intn(k), alphabet)
		want := counter.Count(p)
		got, ok := sum.Count(p)
		if want == 0 {
			if ok {
				t.Fatalf("zero-count pattern %s stored with %d", p.String(dict), got)
			}
			continue
		}
		checked++
		if !ok || got != want {
			t.Fatalf("pattern %s: lattice=%d,%v matcher=%d", p.String(dict), got, ok, want)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d positive patterns checked; test is weak", checked)
	}
}

func TestMineRejectsBadK(t *testing.T) {
	tr, _ := figure1Tree(t)
	if _, err := Mine(tr, 1, Options{}); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestMineLevelLimit(t *testing.T) {
	tr, _ := figure1Tree(t)
	if _, err := Mine(tr, 4, Options{MaxPatternsPerLevel: 1}); err == nil {
		t.Fatal("level limit not enforced")
	}
}

func TestMineProgressCallback(t *testing.T) {
	tr, _ := figure1Tree(t)
	var levels []int
	_, err := Mine(tr, 3, Options{Progress: func(level, n int) {
		levels = append(levels, level)
		if n <= 0 {
			t.Errorf("level %d reported %d patterns", level, n)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 || levels[0] != 1 || levels[2] != 3 {
		t.Fatalf("progress levels = %v", levels)
	}
}

func TestCountPerLevel(t *testing.T) {
	tr, _ := figure1Tree(t)
	sizes, err := CountPerLevel(tr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Level 1: 6 distinct labels. Level 2: distinct parent-child label
	// pairs: computer-laptops, computer-desktops, laptops-laptop,
	// laptop-brand, laptop-price = 5, plus laptops(laptop,laptop)? No —
	// level 2 patterns have exactly 2 nodes, so 5.
	if sizes[1] != 6 || sizes[2] != 5 {
		t.Fatalf("level sizes = %v, want [_, 6, 5]", sizes)
	}
}

func TestMineDeterministic(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(23))
	tr := treetest.RandomTree(rng, 40, alphabet, dict)
	s1, err := Mine(tr, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Mine(tr, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := s1.Entries(0), s2.Entries(0)
	if len(e1) != len(e2) {
		t.Fatal("nondeterministic pattern count")
	}
	for i := range e1 {
		if e1[i].Pattern.Key() != e2[i].Pattern.Key() || e1[i].Count != e2[i].Count {
			t.Fatal("nondeterministic mining result")
		}
	}
}

func TestMineContextCanceled(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(5))
	tr := treetest.RandomTree(rng, 200, alphabet, dict)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineContext(ctx, tr, 4, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled mine returned %v, want context.Canceled", err)
	}
}

func TestMineWorkerCountEquivalence(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(31))
	tr := treetest.RandomTree(rng, 80, alphabet, dict)
	base, err := Mine(tr, 4, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Mine(tr, 4, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		e1, e2 := base.Entries(0), got.Entries(0)
		if len(e1) != len(e2) {
			t.Fatalf("workers=%d: %d patterns, want %d", workers, len(e2), len(e1))
		}
		for i := range e1 {
			if e1[i].Pattern.Key() != e2[i].Pattern.Key() || e1[i].Count != e2[i].Count {
				t.Fatalf("workers=%d: entry %d differs", workers, i)
			}
		}
	}
}

// TestMineSerializedWorkerEquivalence asserts byte-identical summaries —
// including which isomorphism representative each entry stores, which is
// fixed by the candidate enumeration order — across worker counts. This
// pins the determinism contract of the incremental-key dedup: the byte
// encoder's lexicographic order decides candidate order, and that order
// must not depend on counting parallelism.
func TestMineSerializedWorkerEquivalence(t *testing.T) {
	dict, alphabet := treetest.Alphabet(4)
	rng := rand.New(rand.NewSource(37))
	tr := treetest.RandomTree(rng, 120, alphabet, dict)
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		sum, err := Mine(tr, 4, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := sum.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("workers=%d: serialized summary differs from workers=1", workers)
		}
	}
}

// TestMineKeysMatchPatterns verifies the incremental KeyBuilder keys the
// miner hands to AddKeyed: every stored entry must be retrievable by its
// pattern's independently recomputed canonical key.
func TestMineKeysMatchPatterns(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(41))
	tr := treetest.RandomTree(rng, 90, alphabet, dict)
	sum, err := Mine(tr, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sum.Entries(0) {
		if c, ok := sum.CountKey(e.Pattern.Key()); !ok || c != e.Count {
			t.Fatalf("entry %s not reachable under its recomputed key", e.Pattern.String(dict))
		}
	}
}

func TestMineSingleNodeDocument(t *testing.T) {
	dict := labeltree.NewDict()
	b := labeltree.NewBuilder(dict)
	b.AddRoot("only")
	tr := b.Build()
	sum, err := Mine(tr, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Len() != 1 {
		t.Fatalf("Len = %d, want 1", sum.Len())
	}
}
