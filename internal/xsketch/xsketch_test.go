package xsketch

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func parseDoc(t *testing.T, doc string) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func TestExactWhenFullyStable(t *testing.T) {
	// A rigid document becomes backward-stable under a generous budget:
	// path estimates are then exact.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 20; i++ {
		sb.WriteString("<a><b><c/></b></a>")
	}
	sb.WriteString("</r>")
	tr, dict := parseDoc(t, sb.String())
	syn := Build(tr, Options{BudgetBytes: 1 << 20})
	if syn.StableFraction() != 1 {
		t.Fatalf("stable fraction = %v, want 1", syn.StableFraction())
	}
	counter := match.NewCounter(tr)
	for _, qs := range []string{"a", "a(b)", "a(b(c))", "r(a(b(c)))"} {
		q := labeltree.MustParsePattern(qs, dict)
		want := float64(counter.Count(q))
		if got := syn.Estimate(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("Estimate(%s) = %v, want %v", qs, got, want)
		}
	}
}

func TestBudgetLimitsRefinement(t *testing.T) {
	dict, alphabet := treetest.Alphabet(5)
	rng := rand.New(rand.NewSource(3))
	tr := treetest.RandomTree(rng, 2000, alphabet, dict)
	small := Build(tr, Options{BudgetBytes: 400})
	big := Build(tr, Options{BudgetBytes: 1 << 20})
	if small.Nodes() > big.Nodes() {
		t.Fatalf("smaller budget produced more nodes: %d > %d", small.Nodes(), big.Nodes())
	}
	if small.SizeBytes() > 400+600 {
		// One refinement round may overshoot before the check; allow
		// bounded slack.
		t.Fatalf("size %d far beyond budget", small.SizeBytes())
	}
}

func TestLabelCountsExact(t *testing.T) {
	dict, alphabet := treetest.Alphabet(4)
	rng := rand.New(rand.NewSource(5))
	tr := treetest.RandomTree(rng, 600, alphabet, dict)
	syn := Build(tr, Options{BudgetBytes: 800})
	for _, l := range tr.DistinctLabels() {
		want := float64(tr.LabelCount(l))
		if got := syn.Estimate(labeltree.SingleNode(l)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("label %s: %v != %v", dict.Name(l), got, want)
		}
	}
}

func TestZeroForAbsentStructure(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b/></a>`)
	syn := Build(tr, Options{})
	for _, qs := range []string{"zzz", "b(a)", "a(b(b))"} {
		q := labeltree.MustParsePattern(qs, dict)
		if got := syn.Estimate(q); got != 0 {
			t.Errorf("Estimate(%s) = %v, want 0", qs, got)
		}
	}
}

func TestInstabilityDegradesBranchingQueries(t *testing.T) {
	// The Figure-11 style document: under a tight budget the two b-kinds
	// share a node and b(c,c) is overestimated by average multiplication.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 3; i++ {
		sb.WriteString("<b><c/><c/><c/><c/></b>")
	}
	sb.WriteString("<b><c/><c/></b>")
	sb.WriteString("</r>")
	tr, dict := parseDoc(t, sb.String())
	syn := Build(tr, Options{BudgetBytes: 60})
	q := labeltree.MustParsePattern("b(c,c)", dict)
	truth := float64(match.NewCounter(tr).Count(q))
	got := syn.Estimate(q)
	if got == truth {
		t.Fatalf("tight-budget estimate unexpectedly exact (%v)", got)
	}
	if got <= 0 {
		t.Fatalf("estimate = %v", got)
	}
}

func TestName(t *testing.T) {
	tr, _ := parseDoc(t, `<a/>`)
	if Build(tr, Options{}).Name() != "xsketch" {
		t.Fatal("name changed")
	}
}

func TestOnXMarkSanity(t *testing.T) {
	dict := labeltree.NewDict()
	tr, err := datagen.Generate(datagen.Config{Profile: datagen.XMark, Scale: 6000, Seed: 2}, dict)
	if err != nil {
		t.Fatal(err)
	}
	syn := Build(tr, Options{BudgetBytes: 8 << 10})
	counter := match.NewCounter(tr)
	q := labeltree.MustParsePattern("open_auction(bidder(date))", dict)
	truth := float64(counter.Count(q))
	got := syn.Estimate(q)
	if truth > 0 && (got <= 0 || math.IsNaN(got) || math.IsInf(got, 0)) {
		t.Fatalf("estimate = %v for true %v", got, truth)
	}
}
