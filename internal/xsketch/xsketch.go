// Package xsketch implements an XSketch-style baseline (Polyzotis &
// Garofalakis, SIGMOD 2002), the predecessor of TreeSketches in the
// paper's related work. Where TreeSketches clusters by child-count
// similarity and stores average multiplicities, XSketch refines a label
// partition toward *backward stability* — every element of a synopsis
// node has its parent in the same synopsis node — within a memory budget,
// and estimates by multiplying conditional edge probabilities under
// statistical independence assumptions on the unstable parts.
//
// Estimation model: for a synopsis edge u→v, the synopsis stores both the
// average number of v-children per u-element (forward multiplicity) and
// the fraction of v-elements whose parent lies in u (backward fraction).
// A twig estimate anchors at the root label's nodes and multiplies
// forward multiplicities down the query, exactly as a B-stable sketch
// justifies; where stability was sacrificed to the budget, the
// multiplication is an independence assumption and the estimate degrades
// — the behaviour the paper's lineage discusion describes.
package xsketch

import (
	"sort"

	"treelattice/internal/labeltree"
)

// Options configures construction.
type Options struct {
	// BudgetBytes bounds the synopsis size (default 50 KB).
	BudgetBytes int
	// MaxRefineRounds bounds stability refinement (default 12).
	MaxRefineRounds int
}

func (o *Options) fill() {
	if o.BudgetBytes == 0 {
		o.BudgetBytes = 50 << 10
	}
	if o.MaxRefineRounds == 0 {
		o.MaxRefineRounds = 12
	}
}

// Synopsis is a built XSketch. Immutable, safe for concurrent use.
type Synopsis struct {
	dict    *labeltree.Dict
	labels  []labeltree.LabelID
	counts  []int64
	forward [][]edge // avg children per element
	byLabel map[labeltree.LabelID][]int32
	stable  []bool // whether the node is backward-stable
}

type edge struct {
	to  int32
	avg float64
}

// Build constructs the synopsis: label partition, backward-stability
// refinement (split a node when its elements' parents span several
// synopsis nodes) until the budget or stability is reached.
func Build(t *labeltree.Tree, opts Options) *Synopsis {
	opts.fill()
	n := t.Size()
	cluster := make([]int32, n)
	next := make(map[labeltree.LabelID]int32)
	for i := int32(0); int(i) < n; i++ {
		l := t.Label(i)
		id, ok := next[l]
		if !ok {
			id = int32(len(next))
			next[l] = id
		}
		cluster[i] = id
	}
	numClusters := len(next)
	for round := 0; round < opts.MaxRefineRounds; round++ {
		if estimatedBytes(t, cluster) > opts.BudgetBytes {
			break
		}
		// Split by parent cluster: backward-stability refinement.
		type key struct{ own, parent int32 }
		ids := make(map[key]int32)
		refined := make([]int32, n)
		for i := int32(0); int(i) < n; i++ {
			k := key{own: cluster[i], parent: -1}
			if p := t.Parent(i); p >= 0 {
				k.parent = cluster[p]
			}
			id, ok := ids[k]
			if !ok {
				id = int32(len(ids))
				ids[k] = id
			}
			refined[i] = id
		}
		if len(ids) == numClusters {
			break // backward-stable
		}
		if estimatedBytes(t, refined) > opts.BudgetBytes {
			break // refinement would blow the budget; keep coarser
		}
		cluster = refined
		numClusters = len(ids)
	}
	return assemble(t, cluster)
}

// estimatedBytes approximates the synopsis size of a clustering: 12 bytes
// per node plus 12 per distinct edge.
func estimatedBytes(t *labeltree.Tree, cluster []int32) int {
	nodes := make(map[int32]bool)
	edges := make(map[[2]int32]bool)
	for i := int32(0); int(i) < t.Size(); i++ {
		nodes[cluster[i]] = true
		if p := t.Parent(i); p >= 0 {
			edges[[2]int32{cluster[p], cluster[i]}] = true
		}
	}
	return 12*len(nodes) + 12*len(edges)
}

func assemble(t *labeltree.Tree, cluster []int32) *Synopsis {
	dense := make(map[int32]int32)
	for _, c := range cluster {
		if _, ok := dense[c]; !ok {
			dense[c] = int32(len(dense))
		}
	}
	m := len(dense)
	s := &Synopsis{
		dict:    t.Dict(),
		labels:  make([]labeltree.LabelID, m),
		counts:  make([]int64, m),
		forward: make([][]edge, m),
		byLabel: make(map[labeltree.LabelID][]int32),
		stable:  make([]bool, m),
	}
	childSums := make([]map[int32]float64, m)
	parentSeen := make([]map[int32]bool, m)
	for i := int32(0); int(i) < t.Size(); i++ {
		c := dense[cluster[i]]
		s.labels[c] = t.Label(i)
		s.counts[c]++
		if childSums[c] == nil {
			childSums[c] = make(map[int32]float64)
			parentSeen[c] = make(map[int32]bool)
		}
		if p := t.Parent(i); p >= 0 {
			parentSeen[c][dense[cluster[p]]] = true
		} else {
			parentSeen[c][-1] = true
		}
		for _, ch := range t.Children(i) {
			childSums[c][dense[cluster[ch]]]++
		}
	}
	for c := 0; c < m; c++ {
		targets := make([]int32, 0, len(childSums[c]))
		for d := range childSums[c] {
			targets = append(targets, d)
		}
		sort.Slice(targets, func(a, b int) bool { return targets[a] < targets[b] })
		for _, d := range targets {
			s.forward[c] = append(s.forward[c], edge{to: d, avg: childSums[c][d] / float64(s.counts[c])})
		}
		s.stable[c] = len(parentSeen[c]) == 1
		s.byLabel[s.labels[c]] = append(s.byLabel[s.labels[c]], int32(c))
	}
	return s
}

// Nodes reports the number of synopsis nodes.
func (s *Synopsis) Nodes() int { return len(s.labels) }

// StableFraction reports the fraction of backward-stable synopsis nodes —
// 1.0 means estimates along single paths are exact.
func (s *Synopsis) StableFraction() float64 {
	if len(s.stable) == 0 {
		return 0
	}
	n := 0
	for _, st := range s.stable {
		if st {
			n++
		}
	}
	return float64(n) / float64(len(s.stable))
}

// SizeBytes is the accounted storage size.
func (s *Synopsis) SizeBytes() int {
	total := 12 * len(s.labels)
	for _, es := range s.forward {
		total += 12 * len(es)
	}
	return total
}

// Name identifies the estimator in experiment output.
func (s *Synopsis) Name() string { return "xsketch" }

// Estimate multiplies forward multiplicities along the query tree from
// every root-label synopsis node.
func (s *Synopsis) Estimate(q labeltree.Pattern) float64 {
	children := make([][]int32, q.Size())
	for i := int32(1); int(i) < q.Size(); i++ {
		children[q.Parent(i)] = append(children[q.Parent(i)], i)
	}
	memo := make(map[[2]int32]float64)
	var perElement func(c, p int32) float64
	perElement = func(c, p int32) float64 {
		if s.labels[c] != q.Label(p) {
			return 0
		}
		if len(children[p]) == 0 {
			return 1
		}
		key := [2]int32{c, p}
		if v, ok := memo[key]; ok {
			return v
		}
		prod := 1.0
		for _, pc := range children[p] {
			var sum float64
			for _, e := range s.forward[c] {
				if s.labels[e.to] == q.Label(pc) {
					sum += e.avg * perElement(e.to, pc)
				}
			}
			if sum == 0 {
				prod = 0
				break
			}
			prod *= sum
		}
		memo[key] = prod
		return prod
	}
	var total float64
	for _, c := range s.byLabel[q.RootLabel()] {
		total += float64(s.counts[c]) * perElement(c, 0)
	}
	return total
}
