package corpus

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"treelattice/internal/core"
)

// TestBuildShardSummaries: sharding the corpus and recombining through
// core.FromShards answers bit-identically to the corpus's own summary,
// and empty shards come back positional.
func TestBuildShardSummaries(t *testing.T) {
	c, err := Create(t.TempDir(), Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		doc := fmt.Sprintf(
			"<a><b><c/><d/></b><b><c/></b><e>%s</e></a>",
			strings.Repeat("<c/>", i+1))
		if err := c.AddXML(fmt.Sprintf("doc%d", i), strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	const n = 4
	shards, err := c.BuildShardSummaries(context.Background(), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != n {
		t.Fatalf("want %d positional shards, got %d", n, len(shards))
	}
	combined, err := core.FromShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	single := c.Summary()
	for _, qs := range []string{"a(b(c))", "b(c,d)", "e(c)", "a(b,e)"} {
		q, err := single.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range core.Methods() {
			want, err := single.Estimate(q, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := combined.Estimate(q, m)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s/%s: sharded %v != corpus %v", qs, m, got, want)
			}
		}
	}

	if _, err := c.BuildShardSummaries(context.Background(), 0, 0); err == nil {
		t.Fatal("want error for n=0")
	}
}
