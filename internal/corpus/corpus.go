// Package corpus manages a directory of XML documents with a persistent,
// incrementally maintained TreeLattice summary — the packaging a
// downstream system embeds: add and remove documents, estimate twig
// selectivities across the whole corpus, and reopen without re-mining.
//
// Layout under the corpus root:
//
//	corpus.meta          K, bucket configuration (plain text key=value)
//	summary.tlat         the merged lattice summary
//	docs/<name>.tltr     each document in the binary tree format
//
// All mutating operations write the summary through to disk; a corpus is
// single-writer (no file locking is attempted).
package corpus

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"treelattice/internal/core"
	"treelattice/internal/fsx"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/match"
	"treelattice/internal/metrics"
	"treelattice/internal/twigjoin"
	"treelattice/internal/xmlparse"
)

// Sentinel errors callers can branch on with errors.Is.
var (
	// ErrDocExists reports an add under a name already in the corpus.
	ErrDocExists = errors.New("corpus: document already exists")
	// ErrNoSuchDoc reports an operation on a name not in the corpus.
	ErrNoSuchDoc = errors.New("corpus: no such document")
)

// buildEmptySummary returns a zero-document summary at level k.
func buildEmptySummary(k int, dict *labeltree.Dict) (*core.Summary, error) {
	return core.FromLattice(lattice.New(k, dict)), nil
}

// Options configures corpus creation.
type Options struct {
	// K is the lattice level (default 4).
	K int
	// ValueBuckets and Attributes pass through to XML parsing; they must
	// stay fixed for the corpus lifetime and are persisted in the meta
	// file.
	ValueBuckets int
	Attributes   bool
}

// Corpus is an open corpus. Not safe for concurrent mutation; callers
// that mutate under traffic (the HTTP handler) serialize externally.
type Corpus struct {
	dir     string
	opts    Options
	dict    *labeltree.Dict
	summary *core.Summary
	docs    map[string]*labeltree.Tree
	workers int
	// unboundedParse lifts the default XML parse limits (depth, node
	// count). Set for CLI bulk loads of trusted files; leave unset when
	// parsing untrusted uploads.
	unboundedParse bool
	// lastBuild holds the per-stage timings of the most recent mutation
	// (add, batch add, remove).
	lastBuild *metrics.BuildTimings
	// ing, when non-nil, is the enabled zero-downtime ingest pipeline;
	// readers route through its current epoch instead of the fields
	// above (see ingest.go). Loaded atomically so readers never lock.
	ing atomic.Pointer[ingestState]
	// recovered carries ingest state reconstructed by a manifest-aware
	// read-only open, consumed by the next EnableIngest.
	recovered *ingestRecovery
	// indexer caches one twigjoin region index per document tree for
	// query execution; built at load, shared across ingest epochs
	// (epochs reuse unchanged tree pointers, so their indexes carry
	// over). Never nil after Create/open.
	indexer *twigjoin.Indexer
}

var _ core.TreeSource = (*Corpus)(nil)

// SetUnboundedParse lifts (true) or restores (false) the default XML
// parse limits for subsequent AddXML/AddXMLBatch calls. The limits exist
// for untrusted /v1/docs uploads; bulk CLI ingestion of trusted local
// files opts out.
func (c *Corpus) SetUnboundedParse(on bool) { c.unboundedParse = on }

// parseOptions assembles the xmlparse options for this corpus.
func (c *Corpus) parseOptions() xmlparse.Options {
	opts := xmlparse.Options{
		ValueBuckets: c.opts.ValueBuckets,
		Attributes:   c.opts.Attributes,
	}
	if c.unboundedParse {
		opts.MaxNodes = xmlparse.Unlimited
		opts.MaxDepth = xmlparse.Unlimited
	}
	return opts
}

// SetWorkers bounds the parallelism of subsequent summary-building
// operations (document fan-out and per-level candidate counting). Zero
// or negative, the default, means GOMAXPROCS; 1 forces sequential
// builds.
func (c *Corpus) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.workers = n
}

// Workers returns the configured build parallelism (0 = GOMAXPROCS).
func (c *Corpus) Workers() int { return c.workers }

// BuildTimings returns the per-stage timings of the most recent mutating
// operation, or nil if none has run.
func (c *Corpus) BuildTimings() *metrics.BuildTimings { return c.lastBuild }

// Create initializes a new corpus directory. dir must not already contain
// a corpus.
func Create(dir string, opts Options) (*Corpus, error) {
	if opts.K == 0 {
		opts.K = 4
	}
	if _, err := os.Stat(metaPath(dir)); err == nil {
		return nil, fmt.Errorf("corpus: %s already contains a corpus", dir)
	}
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		return nil, err
	}
	c := &Corpus{
		dir:     dir,
		opts:    opts,
		dict:    labeltree.NewDict(),
		docs:    make(map[string]*labeltree.Tree),
		indexer: twigjoin.NewIndexer(),
	}
	// An empty summary: build from a lattice with no entries.
	empty, err := buildEmptySummary(opts.K, c.dict)
	if err != nil {
		return nil, err
	}
	c.summary = empty
	c.summary.BindSource(c)
	if err := c.writeMeta(); err != nil {
		return nil, err
	}
	if err := c.writeSummary(); err != nil {
		return nil, err
	}
	return c, nil
}

// Open loads an existing corpus with a mutable summary. The summary
// file must be in the TLAT form (the form writeSummary maintains);
// compressed snapshots carry no mutable backend and are rejected here —
// load those with OpenReadOnly. A directory left behind by the
// zero-downtime ingest pipeline (epoch manifests present) is recovered
// and consolidated back to the legacy layout: the winning snapshot is
// materialized, unfolded documents are re-mined, and summary.tlat is
// rewritten to cover everything.
func Open(dir string) (*Corpus, error) {
	return open(dir, false)
}

// OpenReadOnly loads an existing corpus with its summary in an
// immutable read-optimized representation, detected from the summary
// file's magic: frozen (flat arena + open addressing) for TLAT
// snapshots, compressed (front-coded blocks, memory-mapped where the
// platform supports it) for TLCZ snapshots. The map backend is never
// materialized, estimate lookups are allocation-free, and every
// mutating operation fails with core.ErrFrozenSummary. The load path
// for read-only serving replicas. Ingest state left by a crashed or
// stopped pipeline is recovered without writing: unfolded documents are
// re-mined into a delta overlay and served merged with the snapshot.
func OpenReadOnly(dir string) (*Corpus, error) {
	return open(dir, true)
}

func open(dir string, readOnly bool) (*Corpus, error) {
	opts, err := readMeta(metaPath(dir))
	if err != nil {
		return nil, err
	}
	c := &Corpus{
		dir:     dir,
		opts:    opts,
		dict:    labeltree.NewDict(),
		docs:    make(map[string]*labeltree.Tree),
		indexer: twigjoin.NewIndexer(),
	}
	mans, err := scanManifests(dir)
	if err != nil {
		return nil, err
	}
	if len(mans) > 0 {
		if err := c.openWithManifest(mans, readOnly); err != nil {
			return nil, err
		}
		return c, nil
	}
	if readOnly {
		c.summary, err = core.OpenSnapshotFile(summaryPath(dir), c.dict)
	} else {
		c.summary, err = func() (*core.Summary, error) {
			f, oerr := os.Open(summaryPath(dir))
			if oerr != nil {
				return nil, oerr
			}
			defer f.Close()
			return core.Read(f, c.dict)
		}()
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: loading summary: %w", err)
	}
	if err := c.loadDocs(); err != nil {
		return nil, err
	}
	// The corpus itself is the summary's document source: sampling,
	// markov, and treesketch backends prepare from the live doc set.
	// Read-only replicas load their document trees too, so every backend
	// works on frozen summaries.
	c.summary.BindSource(c)
	// Region-index every loaded document once, up front: query execution
	// then never pays an index build on the request path.
	c.indexer.ForAll(c.Trees())
	return c, nil
}

// loadDocs reads every document tree under docs/ into the in-memory map.
func (c *Corpus) loadDocs() error {
	entries, err := os.ReadDir(filepath.Join(c.dir, "docs"))
	if err != nil {
		return err
	}
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".tltr")
		if !ok {
			continue
		}
		tree, err := c.readDoc(name)
		if err != nil {
			return err
		}
		c.docs[name] = tree
	}
	return nil
}

// Options returns the corpus configuration.
func (c *Corpus) Options() Options { return c.opts }

// Dict returns the corpus label dictionary (parse queries against it).
func (c *Corpus) Dict() *labeltree.Dict { return c.dict }

// Summary returns the live corpus summary. While ingest is enabled this
// is the current epoch's merged (base + delta) view; callers that load
// it once per request stay pinned to that epoch for the request's
// lifetime even as later epochs are published.
func (c *Corpus) Summary() *core.Summary {
	if st := c.ing.Load(); st != nil {
		return st.handle.Current().Summary
	}
	return c.summary
}

// Docs lists document names in sorted order.
func (c *Corpus) Docs() []string {
	if st := c.ing.Load(); st != nil {
		return append([]string(nil), st.handle.Current().Names...)
	}
	out := make([]string, 0, len(c.docs))
	for n := range c.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DocNames implements core.DocNamer: document names positionally
// aligned with Trees().
func (c *Corpus) DocNames() []string { return c.Docs() }

// TwigIndexer implements core.TwigIndexerSource: the corpus-lifetime
// region-index cache query execution runs on.
func (c *Corpus) TwigIndexer() *twigjoin.Indexer { return c.indexer }

// Doc returns a loaded document tree by name.
func (c *Corpus) Doc(name string) (*labeltree.Tree, bool) {
	if st := c.ing.Load(); st != nil {
		ep := st.handle.Current()
		if i, ok := ep.HasDoc(name); ok {
			return ep.Docs[i], true
		}
		return nil, false
	}
	t, ok := c.docs[name]
	return t, ok
}

// Trees implements core.TreeSource: the loaded document trees in sorted
// name order (a stable order keeps sampling probe selection
// deterministic). The slice reflects the live doc set; document mutations
// invalidate prepared backends through the summary.
func (c *Corpus) Trees() []*labeltree.Tree {
	if st := c.ing.Load(); st != nil {
		return st.handle.Current().Trees()
	}
	out := make([]*labeltree.Tree, 0, len(c.docs))
	for _, name := range c.Docs() {
		out = append(out, c.docs[name])
	}
	return out
}

// AddXML parses an XML document from r, folds it into the summary, and
// persists both. Adding under an existing name wraps ErrDocExists.
func (c *Corpus) AddXML(name string, r io.Reader) error {
	return c.AddXMLContext(context.Background(), name, r)
}

// AddXMLContext is AddXML with cancellation: the incoming document is
// mined into a private lattice with the corpus's configured worker count
// and merged only on success, so a canceled upload leaves the summary and
// the on-disk state untouched.
func (c *Corpus) AddXMLContext(ctx context.Context, name string, r io.Reader) error {
	if st := c.ing.Load(); st != nil {
		return c.ingestAdd(ctx, st, name, r)
	}
	if err := validName(name); err != nil {
		return err
	}
	if _, exists := c.docs[name]; exists {
		return fmt.Errorf("%w: %q", ErrDocExists, name)
	}
	timings := &metrics.BuildTimings{}
	stop := timings.Start("parse")
	tree, err := xmlparse.Parse(r, c.dict, c.parseOptions())
	stop()
	if err != nil {
		return err
	}
	stop = timings.Start("mine")
	err = c.summary.AddTreeContext(ctx, tree, c.workers)
	stop()
	if err != nil {
		return err
	}
	stop = timings.Start("persist")
	defer stop()
	if err := c.writeDoc(name, tree); err != nil {
		return err
	}
	c.docs[name] = tree
	c.lastBuild = timings
	return c.writeSummary()
}

// Remove deletes a document and subtracts its counts. Unknown names wrap
// ErrNoSuchDoc. Removal is not supported while the ingest pipeline is
// enabled (the delta overlay is add-only); disable ingest first.
func (c *Corpus) Remove(name string) error {
	if c.ing.Load() != nil {
		return fmt.Errorf("%w: remove %q", ErrIngestActive, name)
	}
	tree, ok := c.docs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDoc, name)
	}
	if err := c.summary.RemoveTree(tree); err != nil {
		return err
	}
	delete(c.docs, name)
	if err := os.Remove(c.docPath(name)); err != nil {
		return err
	}
	return c.writeSummary()
}

// EstimateQuery estimates a twig query's selectivity across the corpus.
func (c *Corpus) EstimateQuery(query string, method core.Method) (float64, error) {
	return c.Summary().EstimateQuery(query, method)
}

// ExactCount counts a query's matches exactly by scanning every document.
func (c *Corpus) ExactCount(q labeltree.Pattern) int64 {
	total, _ := c.ExactCountContext(context.Background(), q)
	return total
}

// ExactCountContext is ExactCount with cooperative cancellation: the
// per-document counting DP polls ctx at bounded intervals, so a deadline
// interrupts a Definition-1 ground-truth scan mid-document instead of
// after it.
func (c *Corpus) ExactCountContext(ctx context.Context, q labeltree.Pattern) (int64, error) {
	var total int64
	for _, tree := range c.Trees() {
		n, err := match.NewCounter(tree).CountContext(ctx, q)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// ---- persistence helpers ----

func metaPath(dir string) string    { return filepath.Join(dir, "corpus.meta") }
func summaryPath(dir string) string { return filepath.Join(dir, "summary.tlat") }

func (c *Corpus) docPath(name string) string {
	return filepath.Join(c.dir, "docs", name+".tltr")
}

func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("corpus: invalid document name %q", name)
	}
	return nil
}

func (c *Corpus) writeMeta() error {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d\nvaluebuckets=%d\nattributes=%v\n",
		c.opts.K, c.opts.ValueBuckets, c.opts.Attributes)
	return fsx.WriteFileAtomic(metaPath(c.dir), func(w io.Writer) error {
		_, err := io.WriteString(w, b.String())
		return err
	})
}

func readMeta(path string) (Options, error) {
	f, err := os.Open(path)
	if err != nil {
		return Options{}, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	opts := Options{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return Options{}, fmt.Errorf("corpus: malformed meta line %q", line)
		}
		switch key {
		case "k":
			opts.K, err = strconv.Atoi(val)
		case "valuebuckets":
			opts.ValueBuckets, err = strconv.Atoi(val)
		case "attributes":
			opts.Attributes, err = strconv.ParseBool(val)
		default:
			err = fmt.Errorf("corpus: unknown meta key %q", key)
		}
		if err != nil {
			return Options{}, err
		}
	}
	if err := sc.Err(); err != nil {
		return Options{}, err
	}
	if opts.K < 2 {
		return Options{}, fmt.Errorf("corpus: meta has invalid K=%d", opts.K)
	}
	return opts, nil
}

func (c *Corpus) writeSummary() error {
	return fsx.WriteFileAtomic(summaryPath(c.dir), func(w io.Writer) error {
		_, err := c.summary.WriteTo(w)
		return err
	})
}

func (c *Corpus) writeDoc(name string, t *labeltree.Tree) error {
	return fsx.WriteFileAtomic(c.docPath(name), func(w io.Writer) error {
		_, err := labeltree.WriteTree(w, t)
		return err
	})
}

func (c *Corpus) readDoc(name string) (*labeltree.Tree, error) {
	f, err := os.Open(c.docPath(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return labeltree.ReadTree(f, c.dict)
}
