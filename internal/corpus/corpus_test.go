package corpus

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treelattice/internal/core"
	"treelattice/internal/labeltree"
)

const docA = `<computer><laptops><laptop><brand/><price/></laptop></laptops></computer>`
const docB = `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/></laptop></laptops></computer>`

func createCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Create(t.TempDir(), Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateAndAdd(t *testing.T) {
	c := createCorpus(t)
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("b", strings.NewReader(docB)); err != nil {
		t.Fatal(err)
	}
	got, err := c.EstimateQuery("laptop(brand)", core.MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("corpus estimate = %v, want 3", got)
	}
	q := labeltree.MustParsePattern("laptop(brand,price)", c.Dict())
	if exact := c.ExactCount(q); exact != 2 {
		t.Fatalf("ExactCount = %d, want 2", exact)
	}
	if docs := c.Docs(); len(docs) != 2 || docs[0] != "a" || docs[1] != "b" {
		t.Fatalf("Docs = %v", docs)
	}
	if _, ok := c.Doc("a"); !ok {
		t.Fatal("Doc(a) missing")
	}
}

func TestReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3, ValueBuckets: 16, Attributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Options() != c.Options() {
		t.Fatalf("options changed across reopen: %+v vs %+v", re.Options(), c.Options())
	}
	got, err := re.EstimateQuery("laptop(brand,price)", core.MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("reopened estimate = %v, want 1", got)
	}
	if len(re.Docs()) != 1 {
		t.Fatalf("reopened docs = %v", re.Docs())
	}
}

func TestRemove(t *testing.T) {
	c := createCorpus(t)
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("b", strings.NewReader(docB)); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("b"); err != nil {
		t.Fatal(err)
	}
	got, err := c.EstimateQuery("laptop", core.MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("after remove: %v, want 1", got)
	}
	if err := c.Remove("b"); err == nil {
		t.Fatal("double remove accepted")
	}
	// Removal persists across reopen.
	re, err := Open(c.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Docs()) != 1 {
		t.Fatalf("reopened docs after remove = %v", re.Docs())
	}
}

func TestCreateGuards(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("double create accepted")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("open of empty dir accepted")
	}
}

func TestAddGuards(t *testing.T) {
	c := createCorpus(t)
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("a", strings.NewReader(docB)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	for _, bad := range []string{"", "x/y", "..", "a\\b"} {
		if err := c.AddXML(bad, strings.NewReader(docA)); err == nil {
			t.Fatalf("bad name %q accepted", bad)
		}
	}
	if err := c.AddXML("broken", strings.NewReader("<a><b>")); err == nil {
		t.Fatal("broken XML accepted")
	}
	// A failed add must not corrupt the summary.
	got, err := c.EstimateQuery("laptop", core.MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("estimate after failed adds = %v, want 1", got)
	}
}

func TestValueBucketsFlowThrough(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3, ValueBuckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	doc := `<shop><item><price>42</price></item><item><price>42</price></item><item><price>7</price></item></shop>`
	if err := c.AddXML("shop", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	got, err := c.EstimateQuery("item(price)", core.MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("structural estimate = %v", got)
	}
}

func TestOpenCorruptedMeta(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, Options{K: 3}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"k=1\n", "nonsense\n", "k=abc\n", "zzz=1\n"} {
		if err := os.WriteFile(filepath.Join(dir, "corpus.meta"), []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatalf("corrupted meta %q accepted", bad)
		}
	}
}

func TestOpenCorruptedSummary(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, Options{K: 3}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.tlat"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupted summary accepted")
	}
}

func TestOpenCorruptedDoc(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "docs", "a.tltr"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupted document accepted")
	}
}

func TestNonTltrFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "docs", "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Docs()) != 1 {
		t.Fatalf("docs = %v", re.Docs())
	}
}

func TestAddXMLBatchMatchesSequential(t *testing.T) {
	docs := []struct{ name, xml string }{
		{"a", docA},
		{"b", docB},
		{"c", `<computer><desktops><desktop><brand/></desktop></desktops></computer>`},
	}

	seq := createCorpus(t)
	for _, d := range docs {
		if err := seq.AddXML(d.name, strings.NewReader(d.xml)); err != nil {
			t.Fatal(err)
		}
	}

	bat := createCorpus(t)
	bat.SetWorkers(4)
	batch := make([]BatchDoc, len(docs))
	for i, d := range docs {
		batch[i] = BatchDoc{Name: d.name, R: strings.NewReader(d.xml)}
	}
	if err := bat.AddXMLBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}

	var wantBuf, gotBuf bytes.Buffer
	if _, err := seq.Summary().WriteTo(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := bat.Summary().WriteTo(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatal("batch summary differs from sequential adds")
	}
	if got := bat.Docs(); len(got) != 3 {
		t.Fatalf("Docs = %v", got)
	}
	tm := bat.BuildTimings()
	if tm == nil {
		t.Fatal("no build timings recorded")
	}
	ms := tm.Millis()
	for _, stage := range []string{"parse", "mine", "reduce", "merge", "persist"} {
		if _, ok := ms[stage]; !ok {
			t.Errorf("stage %q missing from timings %v", stage, ms)
		}
	}

	// The batch corpus must survive a reopen with identical contents.
	re, err := Open(bat.dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.EstimateQuery("laptop(brand)", core.MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("reopened batch estimate = %v, want 3", got)
	}
}

func TestAddXMLBatchAtomicOnError(t *testing.T) {
	c := createCorpus(t)
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if _, err := c.Summary().WriteTo(&before); err != nil {
		t.Fatal(err)
	}

	for _, batch := range [][]BatchDoc{
		{{Name: "b", R: strings.NewReader(docB)}, {Name: "bad", R: strings.NewReader("<x><y>")}},
		{{Name: "a", R: strings.NewReader(docB)}},
		{{Name: "dup", R: strings.NewReader(docA)}, {Name: "dup", R: strings.NewReader(docB)}},
		{{Name: "../evil", R: strings.NewReader(docA)}},
	} {
		if err := c.AddXMLBatch(context.Background(), batch); err == nil {
			t.Fatalf("bad batch %v accepted", batch)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.AddXMLBatch(ctx, []BatchDoc{{Name: "b", R: strings.NewReader(docB)}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch returned %v, want context.Canceled", err)
	}

	var after bytes.Buffer
	if _, err := c.Summary().WriteTo(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("failed batches mutated the summary")
	}
	if docs := c.Docs(); len(docs) != 1 || docs[0] != "a" {
		t.Fatalf("Docs after failed batches = %v", docs)
	}
}

func TestAddXMLBatchEmpty(t *testing.T) {
	c := createCorpus(t)
	if err := c.AddXMLBatch(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if c.BuildTimings() != nil {
		t.Fatal("empty batch recorded timings")
	}
}

func TestSetWorkers(t *testing.T) {
	c := createCorpus(t)
	c.SetWorkers(3)
	if got := c.Workers(); got != 3 {
		t.Fatalf("Workers = %d, want 3", got)
	}
	c.SetWorkers(-1)
	if got := c.Workers(); got != 0 {
		t.Fatalf("Workers after negative set = %d, want 0", got)
	}
}
