package corpus

import (
	"context"
	"fmt"
	"io"

	"treelattice/internal/core"
	"treelattice/internal/labeltree"
	"treelattice/internal/metrics"
	"treelattice/internal/xmlparse"
)

// BatchDoc names one document of a batch ingest.
type BatchDoc struct {
	Name string
	R    io.Reader
}

// AddXMLBatch ingests several documents at once through the parallel
// build pipeline: all documents are parsed first (sequentially, so label
// interning order — and therefore the on-disk summary — is deterministic),
// then fanned out across a worker pool that mines each into a private
// shard lattice, pairwise-reduced, and finally merged into the corpus
// summary and persisted.
//
// The batch is atomic with respect to the in-memory corpus: name
// validation, parsing, and mining all complete before the summary is
// touched, so a bad document or a canceled context leaves the corpus as
// it was. The result is bit-identical to adding the documents one by one
// in order, for any worker count (counts are additive across documents).
func (c *Corpus) AddXMLBatch(ctx context.Context, docs []BatchDoc) error {
	if len(docs) == 0 {
		return nil
	}
	if st := c.ing.Load(); st != nil {
		// Ingest mode: feed the delta overlay one document at a time so
		// each add publishes its own epoch. Batch atomicity narrows to
		// per-document (documents before a failure stay ingested — they
		// are already durable and served).
		for _, d := range docs {
			if err := c.ingestAdd(ctx, st, d.Name, d.R); err != nil {
				return fmt.Errorf("corpus: batch ingest %q: %w", d.Name, err)
			}
		}
		return nil
	}
	batchNames := make(map[string]bool, len(docs))
	for _, d := range docs {
		if err := validName(d.Name); err != nil {
			return err
		}
		if _, exists := c.docs[d.Name]; exists || batchNames[d.Name] {
			return fmt.Errorf("%w: %q", ErrDocExists, d.Name)
		}
		batchNames[d.Name] = true
	}
	timings := &metrics.BuildTimings{}
	stop := timings.Start("parse")
	trees := make([]*labeltree.Tree, len(docs))
	for i, d := range docs {
		tree, err := xmlparse.Parse(d.R, c.dict, c.parseOptions())
		if err != nil {
			stop()
			return fmt.Errorf("corpus: parsing %q: %w", d.Name, err)
		}
		trees[i] = tree
	}
	stop()

	batch, err := core.BuildForestContext(ctx, trees, core.BuildOptions{
		K:       c.opts.K,
		Workers: c.workers,
		Timings: timings,
	})
	if err != nil {
		return err
	}

	stop = timings.Start("merge")
	err = c.summary.MergeSummary(batch)
	stop()
	if err != nil {
		return err
	}

	stop = timings.Start("persist")
	defer stop()
	for i, d := range docs {
		if err := c.writeDoc(d.Name, trees[i]); err != nil {
			return err
		}
		c.docs[d.Name] = trees[i]
	}
	c.lastBuild = timings
	return c.writeSummary()
}

// EstimateQueryContext is EstimateQuery with cancellation; see
// core.Summary.EstimateQueryContext for the error contract.
func (c *Corpus) EstimateQueryContext(ctx context.Context, query string, method core.Method) (float64, error) {
	return c.Summary().EstimateQueryContext(ctx, query, method)
}
