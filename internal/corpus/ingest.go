package corpus

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/fsx"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/resilience"
	"treelattice/internal/xmlparse"
)

// This file is the zero-downtime ingest pipeline: document adds land in
// a small copy-on-write delta overlay, readers serve merged (immutable
// base + delta) views through RCU epoch swaps, and a background
// refreezer periodically folds the delta into a new durable snapshot.
//
// On-disk protocol (all files written with fsx.WriteFileAtomic):
//
//	docs/<name>.tltr     every document, folded or not
//	epoch-NNNNNN.tlat    numbered base snapshots (or .tlcz when compressed)
//	epoch-NNNNNN.meta    numbered manifests: snapshot=<file> + doc=<name> lines
//
// The manifest is the commit point. A refreeze writes the new snapshot
// first, then the manifest naming it together with every folded
// document; only after the manifest rename does it touch in-memory
// state. Reopening scans manifests highest-first, loads the first one
// whose snapshot is readable, and treats documents on disk that the
// winning manifest does not list as "unfolded" — they are re-mined into
// a fresh delta. A crash at any point therefore loses no documents and
// never double-counts: either the old manifest wins (the new snapshot
// is garbage, the cut documents are unfolded) or the new one does (the
// cut is folded exactly once).

// Sentinel errors of the ingest pipeline.
var (
	// ErrIngestBackpressure reports an add rejected because the delta hit
	// its hard size limit before the refreezer caught up. The serving
	// layer maps it to 429 with a Retry-After; the client should back off
	// and resubmit.
	ErrIngestBackpressure = errors.New("corpus: ingest backpressure, delta over hard limit")
	// ErrIngestActive reports a mutation (document removal, summary
	// rewrite) that the ingest pipeline does not support while enabled.
	ErrIngestActive = errors.New("corpus: operation unsupported while ingest is enabled")
)

// IngestOptions configures EnableIngest.
type IngestOptions struct {
	// RefreezeInterval is the cadence of timer-driven refreezes. Zero or
	// negative disables the timer: refreezes run only when the delta
	// crosses a watermark (or on DisableIngest).
	RefreezeInterval time.Duration
	// MaxDeltaBytes / MaxDeltaDocs / MaxDeltaAge are the soft watermarks:
	// crossing any of them kicks the refreezer without blocking the add.
	// Defaults: 4 MiB, 256 documents, 5 minutes.
	MaxDeltaBytes int
	MaxDeltaDocs  int
	MaxDeltaAge   time.Duration
	// HardDeltaBytes is the backpressure limit: adds that would grow the
	// delta past it fail with ErrIngestBackpressure until a refreeze
	// drains it. Default 4 × MaxDeltaBytes.
	HardDeltaBytes int
	// Compress writes refrozen snapshots in the TLCZ form instead of TLAT.
	Compress bool
	// RefreezeHook, when non-nil, runs after the snapshot write and
	// before the manifest commit — the fault-injection point: an error
	// here aborts the refreeze (no state changes) and the attempt retries
	// with jittered backoff.
	RefreezeHook func(ctx context.Context) error
	// BackoffBase / BackoffMax / BackoffSeed shape the retry schedule for
	// failed refreezes (see resilience.Backoff; zero values take its
	// defaults, seed 0 is time-seeded).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	BackoffSeed int64
	// Logf, when non-nil, receives refreeze failure diagnostics.
	Logf func(format string, args ...any)
}

// ingestState is the mutable spine of an enabled ingest pipeline. The
// mutex serializes writers (adds and the refreeze commit section);
// readers never take it — they load the current epoch from handle.
type ingestState struct {
	opts   IngestOptions
	handle *core.EpochHandle

	// freezeMu serializes whole refreeze attempts (the background loop
	// and explicit Refreeze calls).
	freezeMu sync.Mutex
	// foldLat / base / foldedNames / nextN are owned by the refreeze path
	// (written only under freezeMu, with the swap itself under mu).
	foldLat     *lattice.Summary
	base        *core.Summary
	foldedNames []string
	nextN       uint64

	mu         sync.Mutex
	delta      *lattice.Delta
	deltaNames []string // unfolded doc names, in arrival order
	deltaSince time.Time

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	refreezeAttempts atomic.Uint64
	refreezeFailures atomic.Uint64
	refreezes        atomic.Uint64
	lastRefreezeMS   atomic.Int64
	backpressured    atomic.Uint64
}

// ingestRecovery carries the state a manifest-aware open reconstructed,
// so a later EnableIngest resumes the pipeline (numbering, folded set,
// unfolded delta) instead of restarting it.
type ingestRecovery struct {
	base        *core.Summary
	delta       *lattice.Delta
	deltaNames  []string
	foldedNames []string
	nextN       uint64
	handle      *core.EpochHandle
}

// Ingesting reports whether the zero-downtime ingest pipeline is
// enabled. Safe for concurrent use.
func (c *Corpus) Ingesting() bool { return c.ing.Load() != nil }

// IngestStats snapshots the pipeline's observability counters. All
// zeros when ingest is not enabled.
func (c *Corpus) IngestStats() core.IngestStats {
	st := c.ing.Load()
	if st == nil {
		return core.IngestStats{}
	}
	st.mu.Lock()
	d := st.delta
	st.mu.Unlock()
	var epoch uint64
	if cur := st.handle.Current(); cur != nil {
		epoch = cur.ID
	}
	return core.IngestStats{
		Epoch:            epoch,
		DeltaDocs:        d.Docs(),
		DeltaBytes:       d.SizeBytes(),
		RefreezeAttempts: st.refreezeAttempts.Load(),
		RefreezeFailures: st.refreezeFailures.Load(),
		Refreezes:        st.refreezes.Load(),
		LastRefreezeMS:   st.lastRefreezeMS.Load(),
		Backpressured:    st.backpressured.Load(),
	}
}

// EnableIngest switches the corpus into zero-downtime ingest mode:
// subsequent AddXML/AddXMLBatch calls land in the delta overlay,
// readers serve merged epoch views, and a background refreezer folds
// the delta into durable snapshots. Works on mutable and read-only
// (frozen/compressed) corpora alike; pruned and shard-combined
// summaries cannot host ingest (their counts cannot be materialized).
func (c *Corpus) EnableIngest(opts IngestOptions) error {
	if c.ing.Load() != nil {
		return errors.New("corpus: ingest already enabled")
	}
	if opts.MaxDeltaBytes <= 0 {
		opts.MaxDeltaBytes = 4 << 20
	}
	if opts.MaxDeltaDocs <= 0 {
		opts.MaxDeltaDocs = 256
	}
	if opts.MaxDeltaAge <= 0 {
		opts.MaxDeltaAge = 5 * time.Minute
	}
	if opts.HardDeltaBytes <= 0 {
		opts.HardDeltaBytes = 4 * opts.MaxDeltaBytes
	}
	st := &ingestState{
		opts: opts,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if rec := c.recovered; rec != nil {
		st.base = rec.base
		st.delta = rec.delta
		st.deltaNames = append([]string(nil), rec.deltaNames...)
		st.foldedNames = append([]string(nil), rec.foldedNames...)
		st.nextN = rec.nextN
		st.handle = rec.handle
		if !st.delta.Empty() {
			st.deltaSince = time.Now()
		}
		c.recovered = nil
	} else {
		st.base = c.summary
		st.delta = lattice.NewDelta(c.opts.K, c.dict)
		st.foldedNames = c.Docs()
		st.nextN = 0
	}
	if st.handle == nil {
		st.handle = &core.EpochHandle{}
	}
	st.handle.SetTwigIndexer(c.indexer)
	foldLat, err := st.base.Materialize()
	if err != nil {
		return fmt.Errorf("corpus: enabling ingest: %w", err)
	}
	st.foldLat = foldLat
	if st.nextN == 0 {
		// First enable on a legacy layout: manifest 0 records that
		// summary.tlat covers exactly the current document set.
		if err := writeManifest(c.dir, 0, filepath.Base(summaryPath(c.dir)), st.foldedNames); err != nil {
			return fmt.Errorf("corpus: enabling ingest: %w", err)
		}
		st.nextN = 1
	}
	names := c.Docs()
	docs := make([]*labeltree.Tree, len(names))
	for i, n := range names {
		docs[i] = c.docs[n]
	}
	st.handle.Publish(st.base, st.delta, docs, names)
	c.ing.Store(st)
	st.wg.Add(1)
	go c.refreezeLoop(st)
	return nil
}

// DisableIngest stops the refreezer, folds any remaining delta, and
// returns the corpus to its classic single-writer mode. Must not run
// concurrently with readers or writers (it is a shutdown/teardown
// operation). A failed final fold is returned but not fatal: the
// unfolded documents are on disk and the manifest protocol recovers
// them on the next open.
func (c *Corpus) DisableIngest() error {
	st := c.ing.Load()
	if st == nil {
		return nil
	}
	close(st.done)
	st.wg.Wait()
	err := c.refreezeOnce(context.Background(), st)
	if err != nil {
		st.refreezeFailures.Add(1)
	}
	cur := st.handle.Current()
	docs := make(map[string]*labeltree.Tree, len(cur.Names))
	for i, n := range cur.Names {
		docs[n] = cur.Docs[i]
	}
	c.docs = docs
	switch {
	case err == nil && st.base.Mutable():
		// Refreezes happened: consolidate back to the legacy layout so
		// classic mutations (which rewrite summary.tlat) stay coherent.
		// Ordering keeps every intermediate state recoverable: the new
		// summary.tlat and the final manifest agree on the counts, so the
		// manifests can go only after summary.tlat lands.
		c.summary = st.base
		c.summary.BindSource(c)
		if werr := c.writeSummary(); werr != nil {
			err = werr
		} else {
			pruneIngestFiles(c.dir, ^uint64(0))
		}
	case err == nil:
		// Ingest enabled but never refroze: nothing changed on disk
		// beyond manifest 0, which restates summary.tlat and is harmless.
		c.summary = st.base
		c.summary.BindSource(c)
	default:
		// Final fold failed: keep serving the merged view; reopen
		// recovers the unfolded documents from docs/ + the manifest.
		c.summary = cur.Summary
	}
	c.ing.Store(nil)
	return err
}

// Refreeze folds the current delta into a new durable snapshot
// immediately, bypassing the timer. Primarily for tests and operational
// tooling; concurrent with serving traffic like any background
// refreeze.
func (c *Corpus) Refreeze(ctx context.Context) error {
	st := c.ing.Load()
	if st == nil {
		return errors.New("corpus: ingest not enabled")
	}
	return c.refreezeOnce(ctx, st)
}

// refreezeLoop is the background refreezer: it waits for a timer tick
// or a watermark kick, then folds, retrying failures with jittered
// exponential backoff until success or shutdown.
func (c *Corpus) refreezeLoop(st *ingestState) {
	defer st.wg.Done()
	var tick <-chan time.Time
	if st.opts.RefreezeInterval > 0 {
		t := time.NewTicker(st.opts.RefreezeInterval)
		defer t.Stop()
		tick = t.C
	}
	bo := &resilience.Backoff{Base: st.opts.BackoffBase, Max: st.opts.BackoffMax, Seed: st.opts.BackoffSeed}
	for {
		select {
		case <-st.done:
			return
		case <-tick:
		case <-st.kick:
		}
		for {
			err := c.refreezeOnce(context.Background(), st)
			if err == nil {
				bo.Reset()
				break
			}
			st.refreezeFailures.Add(1)
			d := bo.Next()
			if st.opts.Logf != nil {
				st.opts.Logf("corpus: refreeze failed (attempt %d, retrying in %v): %v", bo.Attempts(), d, err)
			}
			select {
			case <-st.done:
				return
			case <-time.After(d):
			}
		}
	}
}

// refreezeOnce runs one refreeze attempt: cut the delta, fold it into a
// cloned base lattice, write snapshot then manifest (the commit point),
// and only then swap the in-memory base, trim the delta, and publish
// the new epoch. Failing before the manifest rename changes nothing,
// in memory or on disk, that the next attempt cannot redo.
func (c *Corpus) refreezeOnce(ctx context.Context, st *ingestState) error {
	st.freezeMu.Lock()
	defer st.freezeMu.Unlock()

	st.mu.Lock()
	cut := st.delta
	cutNames := append([]string(nil), st.deltaNames...)
	st.mu.Unlock()
	if cut.Empty() {
		return nil
	}
	st.refreezeAttempts.Add(1)
	start := time.Now()

	newLat := st.foldLat.Clone()
	if err := newLat.Merge(cut.Summary()); err != nil {
		return err
	}
	newBase := core.FromLattice(newLat)
	n := st.nextN
	ext := "tlat"
	if st.opts.Compress {
		ext = "tlcz"
	}
	snapName := fmt.Sprintf("epoch-%06d.%s", n, ext)
	err := fsx.WriteFileAtomic(filepath.Join(c.dir, snapName), func(w io.Writer) error {
		if st.opts.Compress {
			_, err := newBase.WriteCompressed(w)
			return err
		}
		_, err := newBase.WriteTo(w)
		return err
	})
	if err != nil {
		return err
	}
	if st.opts.RefreezeHook != nil {
		if err := st.opts.RefreezeHook(ctx); err != nil {
			return err
		}
	}
	folded := append(append([]string(nil), st.foldedNames...), cutNames...)
	sort.Strings(folded)
	if err := writeManifest(c.dir, n, snapName, folded); err != nil {
		return err
	}

	// Committed. Swap the serving state; from here failures must not
	// leave the in-memory view disagreeing with the manifest.
	newBase.Freeze()
	st.mu.Lock()
	rest, serr := st.delta.Subtract(cut)
	if serr != nil {
		// Structurally impossible (the cut is a prefix of the delta);
		// keep serving the old, still-correct view and roll the
		// manifest back so disk agrees with memory.
		st.mu.Unlock()
		os.Remove(filepath.Join(c.dir, manifestName(n)))
		return serr
	}
	st.foldLat = newLat
	st.base = newBase
	st.delta = rest
	st.deltaNames = append([]string(nil), st.deltaNames[len(cutNames):]...)
	st.foldedNames = folded
	st.nextN = n + 1
	if rest.Empty() {
		st.deltaSince = time.Time{}
	} else {
		st.deltaSince = time.Now()
	}
	cur := st.handle.Current()
	st.handle.Publish(st.base, st.delta, cur.Docs, cur.Names)
	st.mu.Unlock()

	st.refreezes.Add(1)
	st.lastRefreezeMS.Store(time.Since(start).Milliseconds())
	pruneIngestFiles(c.dir, n)
	return nil
}

// ingestAdd is the add path while ingest is enabled: parse and mine
// outside the lock, then apply to the delta, persist the document, and
// publish the next epoch under it. Readers pinned to earlier epochs are
// untouched.
func (c *Corpus) ingestAdd(ctx context.Context, st *ingestState, name string, r io.Reader) error {
	if err := validName(name); err != nil {
		return err
	}
	tree, err := xmlparse.Parse(r, c.dict, c.parseOptions())
	if err != nil {
		return err
	}
	inc, err := c.mineTree(ctx, tree)
	if err != nil {
		return err
	}

	st.mu.Lock()
	cur := st.handle.Current()
	idx, exists := cur.HasDoc(name)
	if exists {
		st.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDocExists, name)
	}
	// Gate on the delta as it stands, not delta+increment: an empty
	// delta always accepts, so backpressure can never wedge ingest shut.
	if sz := st.delta.SizeBytes(); st.delta.Docs() > 0 && sz >= st.opts.HardDeltaBytes {
		st.backpressured.Add(1)
		st.mu.Unlock()
		kickNonBlocking(st.kick)
		return fmt.Errorf("%w (%d delta bytes, limit %d)",
			ErrIngestBackpressure, sz, st.opts.HardDeltaBytes)
	}
	next, err := st.delta.Apply(inc)
	if err != nil {
		st.mu.Unlock()
		return err
	}
	if err := c.writeDoc(name, tree); err != nil {
		st.mu.Unlock()
		return err
	}
	names := make([]string, 0, len(cur.Names)+1)
	names = append(names, cur.Names[:idx]...)
	names = append(names, name)
	names = append(names, cur.Names[idx:]...)
	docs := make([]*labeltree.Tree, 0, len(cur.Docs)+1)
	docs = append(docs, cur.Docs[:idx]...)
	docs = append(docs, tree)
	docs = append(docs, cur.Docs[idx:]...)
	st.delta = next
	st.deltaNames = append(st.deltaNames, name)
	if st.deltaSince.IsZero() {
		st.deltaSince = time.Now()
	}
	over := next.SizeBytes() >= st.opts.MaxDeltaBytes ||
		next.Docs() >= st.opts.MaxDeltaDocs ||
		time.Since(st.deltaSince) >= st.opts.MaxDeltaAge
	st.handle.Publish(st.base, st.delta, docs, names)
	st.mu.Unlock()

	if over {
		kickNonBlocking(st.kick)
	}
	return nil
}

// mineTree mines one document into a standalone lattice at the corpus
// configuration — the increment the delta overlay applies.
func (c *Corpus) mineTree(ctx context.Context, tree *labeltree.Tree) (*lattice.Summary, error) {
	sum, err := core.BuildForestContext(ctx, []*labeltree.Tree{tree}, core.BuildOptions{
		K:       c.opts.K,
		Workers: c.workers,
	})
	if err != nil {
		return nil, err
	}
	return sum.Lattice(), nil
}

func kickNonBlocking(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// ---- manifest protocol ----

// ingestManifest is one parsed epoch-NNNNNN.meta file.
type ingestManifest struct {
	n        uint64
	snapshot string
	docs     []string
}

func manifestName(n uint64) string { return fmt.Sprintf("epoch-%06d.meta", n) }

// writeManifest durably records that snapshot covers exactly docs. The
// atomic rename is the refreeze commit point.
func writeManifest(dir string, n uint64, snapshot string, docs []string) error {
	return fsx.WriteFileAtomic(filepath.Join(dir, manifestName(n)), func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "snapshot=%s\n", snapshot)
		for _, d := range docs {
			fmt.Fprintf(bw, "doc=%s\n", d)
		}
		return bw.Flush()
	})
}

// parseManifestIndex extracts N from an epoch-NNNNNN.meta (or snapshot)
// file name; ok is false for anything else.
func parseManifestIndex(name, suffix string) (uint64, bool) {
	rest, found := strings.CutPrefix(name, "epoch-")
	if !found {
		return 0, false
	}
	num, found := strings.CutSuffix(rest, suffix)
	if !found {
		return 0, false
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// scanManifests parses every readable epoch manifest in dir, sorted
// newest-first. Malformed manifests (a crash can leave none, never a
// half-written one, but defend anyway) are skipped.
func scanManifests(dir string) ([]ingestManifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []ingestManifest
	for _, e := range entries {
		n, ok := parseManifestIndex(e.Name(), ".meta")
		if !ok {
			continue
		}
		m, err := readManifest(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		m.n = n
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].n > out[j].n })
	return out, nil
}

func readManifest(path string) (ingestManifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return ingestManifest{}, err
	}
	defer f.Close()
	var m ingestManifest
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return ingestManifest{}, fmt.Errorf("corpus: malformed manifest line %q", line)
		}
		switch key {
		case "snapshot":
			m.snapshot = val
		case "doc":
			m.docs = append(m.docs, val)
		default:
			return ingestManifest{}, fmt.Errorf("corpus: unknown manifest key %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return ingestManifest{}, err
	}
	if m.snapshot == "" {
		return ingestManifest{}, errors.New("corpus: manifest missing snapshot")
	}
	return m, nil
}

// pruneIngestFiles removes epoch manifests and snapshots with index
// strictly below keep, best-effort (summary.tlat is never an epoch file
// and is never touched).
func pruneIngestFiles(dir string, below uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		for _, suffix := range []string{".meta", ".tlat", ".tlcz"} {
			if n, ok := parseManifestIndex(e.Name(), suffix); ok && n < below {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

// openWithManifest finishes opening a corpus whose directory carries
// epoch manifests. The winning manifest's snapshot becomes the base;
// documents on disk that it does not list are re-mined — into the
// in-memory summary for a mutable open (which then consolidates back to
// the legacy layout), or into a delta overlay for a read-only open
// (which serves the merged view and hands the state to a later
// EnableIngest).
func (c *Corpus) openWithManifest(mans []ingestManifest, readOnly bool) error {
	var winner *ingestManifest
	var base *core.Summary
	var lastErr error
	for i := range mans {
		m := &mans[i]
		sum, err := core.OpenSnapshotFile(filepath.Join(c.dir, m.snapshot), c.dict)
		if err != nil {
			lastErr = err
			continue
		}
		winner, base = m, sum
		break
	}
	if winner == nil {
		return fmt.Errorf("corpus: no loadable ingest snapshot: %w", lastErr)
	}
	if err := c.loadDocs(); err != nil {
		return err
	}
	folded := make(map[string]bool, len(winner.docs))
	for _, n := range winner.docs {
		folded[n] = true
	}
	var unfolded []string
	for _, n := range c.Docs() {
		if !folded[n] {
			unfolded = append(unfolded, n)
		}
	}

	if !readOnly {
		// Mutable open: materialize the base, re-mine the unfolded
		// documents, and consolidate to the legacy layout (summary.tlat
		// covering everything) so classic mutations work from here.
		lat, err := base.Materialize()
		if err != nil {
			return fmt.Errorf("corpus: recovering ingest state: %w", err)
		}
		base.CloseStore()
		sum := core.FromLattice(lat)
		for _, n := range unfolded {
			if err := sum.AddTreeContext(context.Background(), c.docs[n], c.workers); err != nil {
				return fmt.Errorf("corpus: re-mining unfolded %q: %w", n, err)
			}
		}
		c.summary = sum
		c.summary.BindSource(c)
		if err := c.writeSummary(); err != nil {
			return err
		}
		pruneIngestFiles(c.dir, ^uint64(0))
		return nil
	}

	// Read-only open: serve (base + re-mined delta) without writing
	// anything; stash the reconstructed state for EnableIngest.
	rec := &ingestRecovery{
		base:        base,
		delta:       lattice.NewDelta(c.opts.K, c.dict),
		deltaNames:  unfolded,
		foldedNames: winner.docs,
		nextN:       winner.n + 1,
	}
	for _, n := range unfolded {
		inc, err := c.mineTree(context.Background(), c.docs[n])
		if err != nil {
			return fmt.Errorf("corpus: re-mining unfolded %q: %w", n, err)
		}
		if rec.delta, err = rec.delta.Apply(inc); err != nil {
			return err
		}
	}
	if len(unfolded) == 0 {
		c.summary = base
		c.summary.BindSource(c)
		c.recovered = rec
		return nil
	}
	names := c.Docs()
	docs := make([]*labeltree.Tree, len(names))
	for i, n := range names {
		docs[i] = c.docs[n]
	}
	rec.handle = &core.EpochHandle{}
	rec.handle.SetTwigIndexer(c.indexer)
	ep := rec.handle.Publish(base, rec.delta, docs, names)
	c.summary = ep.Summary
	c.recovered = rec
	return nil
}
