package corpus

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"treelattice/internal/core"
)

const docC = `<computer><desktops><desktop><brand/><price/><ram/></desktop></desktops></computer>`

// ingestDoc returns a structurally varied document so successive adds
// change the counts.
func ingestDoc(i int) string {
	var b strings.Builder
	b.WriteString("<computer><laptops>")
	for j := 0; j <= i%3; j++ {
		b.WriteString("<laptop><brand/><price/></laptop>")
	}
	b.WriteString("</laptops>")
	if i%2 == 0 {
		b.WriteString("<desktops><desktop><brand/></desktop></desktops>")
	}
	b.WriteString("</computer>")
	return b.String()
}

// ingestQueries are the probe queries the differential checks compare on.
var ingestQueries = []string{
	"laptop(brand)",
	"laptop(brand,price)",
	"computer(laptops)",
	"desktop(brand)",
	"laptops(laptop(price))",
}

// assertSameEstimates asserts got and want answer every query
// bit-identically under every registered estimation method.
func assertSameEstimates(t *testing.T, got, want *Corpus, context string) {
	t.Helper()
	for _, m := range core.RegisteredMethods() {
		for _, q := range ingestQueries {
			g, gerr := got.EstimateQuery(q, m)
			w, werr := want.EstimateQuery(q, m)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("%s: %s %q: error mismatch: %v vs %v", context, m, q, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			if g != w {
				t.Fatalf("%s: %s %q = %v, want %v", context, m, q, g, w)
			}
		}
	}
}

// buildReference builds a from-scratch corpus over names[i] ↦ ingestDoc(i).
func buildReference(t *testing.T, n int) *Corpus {
	t.Helper()
	ref, err := Create(t.TempDir(), Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ref.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

// TestIngestDifferential is the acceptance check at the corpus level: a
// base of 3 documents plus 5 ingested into the delta answers every
// registered estimator bit-identically to a from-scratch rebuild — both
// before any refreeze (merged view) and after one (folded view), on
// mutable and read-only (frozen) base backends.
func TestIngestDifferential(t *testing.T) {
	for _, readOnly := range []bool{false, true} {
		t.Run(fmt.Sprintf("readonly=%v", readOnly), func(t *testing.T) {
			dir := t.TempDir()
			c, err := Create(dir, Options{K: 3})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := c.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
					t.Fatal(err)
				}
			}
			if readOnly {
				if c, err = OpenReadOnly(dir); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.EnableIngest(IngestOptions{}); err != nil {
				t.Fatal(err)
			}
			defer c.DisableIngest()
			for i := 3; i < 8; i++ {
				if err := c.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
					t.Fatal(err)
				}
			}
			ref := buildReference(t, 8)
			assertSameEstimates(t, c, ref, "merged before refreeze")
			st := c.IngestStats()
			if st.DeltaDocs != 5 || st.Epoch == 0 {
				t.Fatalf("stats before refreeze: %+v", st)
			}
			if err := c.Refreeze(context.Background()); err != nil {
				t.Fatal(err)
			}
			assertSameEstimates(t, c, ref, "after refreeze")
			st = c.IngestStats()
			if st.DeltaDocs != 0 || st.Refreezes != 1 {
				t.Fatalf("stats after refreeze: %+v", st)
			}
			if got := c.Summary().StoreKind(); got != "delta" {
				t.Fatalf("serving store kind = %q, want delta", got)
			}
		})
	}
}

// TestIngestCrashRecovery: documents ingested but never refrozen (the
// "crash" is abandoning the corpus without DisableIngest) are recovered
// on reopen — consolidated by a mutable open, served merged by a
// read-only open — with estimates identical to a from-scratch rebuild.
func TestIngestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.EnableIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 6; i++ {
		if err := c.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Fold the first two delta docs so the manifest advances, then add
	// two more that stay unfolded — the crash leaves both folded and
	// unfolded state behind.
	if err := c.Refreeze(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 8; i++ {
		if err := c.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop the corpus without DisableIngest. Stop the refreezer
	// goroutine only (its timer never fired — interval 0 means kick-only).
	close(c.ing.Load().done)
	c.ing.Load().wg.Wait()

	ref := buildReference(t, 8)

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, ro, ref, "read-only recovery")
	if got := ro.Summary().StoreKind(); got != "delta" {
		t.Fatalf("read-only recovered store kind = %q, want delta", got)
	}
	if docs := ro.Docs(); len(docs) != 8 {
		t.Fatalf("read-only recovery sees %d docs, want 8", len(docs))
	}

	rw, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, rw, ref, "mutable recovery")
	if got := rw.Summary().StoreKind(); got != "map" {
		t.Fatalf("consolidated store kind = %q, want map", got)
	}
	// Consolidation must have rewritten summary.tlat and removed every
	// epoch file, so a plain reopen works too.
	if m, _ := scanManifests(dir); len(m) != 0 {
		t.Fatalf("manifests left after consolidation: %v", m)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, again, ref, "reopen after consolidation")
}

// TestIngestManifestFallback: a newer manifest whose snapshot is
// corrupt is skipped; open falls back to the older valid manifest and
// re-mines the documents it does not cover.
func TestIngestManifestFallback(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.EnableIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("doc-003", strings.NewReader(ingestDoc(3))); err != nil {
		t.Fatal(err)
	}
	if err := c.Refreeze(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(c.ing.Load().done)
	c.ing.Load().wg.Wait()

	// Fake a torn future refreeze: manifest 99 names a snapshot full of
	// garbage. (A real crash cannot produce this — the manifest commits
	// after the snapshot — but open defends against it anyway.)
	if err := os.WriteFile(filepath.Join(dir, "epoch-000099.tlat"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(dir, 99, "epoch-000099.tlat", []string{"doc-000"}); err != nil {
		t.Fatal(err)
	}

	ref := buildReference(t, 4)
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, ro, ref, "fallback to older manifest")
}

// TestIngestBackpressure: adds past the hard delta limit fail with
// ErrIngestBackpressure and count in stats; a refreeze drains the delta
// and unblocks them.
func TestIngestBackpressure(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIngest(IngestOptions{HardDeltaBytes: 1}); err != nil {
		t.Fatal(err)
	}
	defer c.DisableIngest()
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	err = c.AddXML("b", strings.NewReader(docB))
	if !errors.Is(err, ErrIngestBackpressure) {
		t.Fatalf("over-limit add: %v, want ErrIngestBackpressure", err)
	}
	if st := c.IngestStats(); st.Backpressured != 1 {
		t.Fatalf("backpressured = %d, want 1", st.Backpressured)
	}
	if err := c.Refreeze(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("b", strings.NewReader(docB)); err != nil {
		t.Fatalf("add after refreeze drained delta: %v", err)
	}
}

// TestIngestRefreezeRetriesWithBackoff: injected refreeze failures
// retry until the fault clears, counting failures, and the pipeline
// stays fully serviceable meanwhile.
func TestIngestRefreezeRetriesWithBackoff(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	opts := IngestOptions{
		MaxDeltaDocs: 1, // every add kicks the refreezer
		BackoffBase:  time.Millisecond,
		BackoffMax:   5 * time.Millisecond,
		BackoffSeed:  1,
		RefreezeHook: func(context.Context) error {
			if calls.Add(1) <= 2 {
				return errors.New("injected fault")
			}
			return nil
		},
	}
	if err := c.EnableIngest(opts); err != nil {
		t.Fatal(err)
	}
	defer c.DisableIngest()
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.IngestStats()
		if st.Refreezes >= 1 {
			if st.RefreezeFailures != 2 {
				t.Fatalf("failures = %d, want 2", st.RefreezeFailures)
			}
			if st.RefreezeAttempts != 3 {
				t.Fatalf("attempts = %d, want 3", st.RefreezeAttempts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refreeze never succeeded: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Reads stayed correct throughout.
	ref := createCorpus(t)
	if err := ref.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, c, ref, "after faulty refreezes")
}

// TestIngestRejectsRemoveAndDuplicates documents the mutation surface
// while ingest is enabled.
func TestIngestRejectsRemoveAndDuplicates(t *testing.T) {
	c := createCorpus(t)
	if err := c.AddXML("a", strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	defer c.DisableIngest()
	if err := c.Remove("a"); !errors.Is(err, ErrIngestActive) {
		t.Fatalf("Remove during ingest: %v, want ErrIngestActive", err)
	}
	if err := c.AddXML("a", strings.NewReader(docA)); !errors.Is(err, ErrDocExists) {
		t.Fatalf("duplicate base name: %v, want ErrDocExists", err)
	}
	if err := c.AddXML("b", strings.NewReader(docB)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("b", strings.NewReader(docB)); !errors.Is(err, ErrDocExists) {
		t.Fatalf("duplicate delta name: %v, want ErrDocExists", err)
	}
	if err := c.EnableIngest(IngestOptions{}); err == nil {
		t.Fatal("double EnableIngest succeeded")
	}
}

// TestIngestCompressedSnapshots: refreezes can publish TLCZ snapshots;
// recovery loads them through the compressed loader.
func TestIngestCompressedSnapshots(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("doc-000", strings.NewReader(ingestDoc(0))); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIngest(IngestOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if err := c.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Refreeze(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(c.ing.Load().done)
	c.ing.Load().wg.Wait()

	ref := buildReference(t, 4)
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, ro, ref, "compressed snapshot recovery")
	if got := ro.Summary().StoreKind(); got != "compressed" {
		t.Fatalf("recovered store kind = %q, want compressed", got)
	}
}

// TestIngestDisableConsolidates: a clean DisableIngest folds the delta
// and returns the corpus to the legacy layout with classic mutations
// working again.
func TestIngestDisableConsolidates(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.AddXML(fmt.Sprintf("doc-%03d", i), strings.NewReader(ingestDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DisableIngest(); err != nil {
		t.Fatal(err)
	}
	if c.Ingesting() {
		t.Fatal("still ingesting after disable")
	}
	if m, _ := scanManifests(dir); len(m) != 0 {
		t.Fatalf("manifests left after disable: %v", m)
	}
	// Classic mutations work again.
	if err := c.Remove("doc-001"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddXML("extra", strings.NewReader(docC)); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, re, c, "reopen after disable")
}
