package corpus

import (
	"context"
	"fmt"

	"treelattice/internal/core"
	"treelattice/internal/fleet"
	"treelattice/internal/labeltree"
)

// BuildShardSummaries splits the corpus into n shard summaries by
// deterministic document→shard assignment (fleet.AssignShard over the
// document name) and mines each shard's forest independently. The
// returned slice has exactly n entries; a shard that drew no documents
// holds an empty summary at the corpus K, so shard files are positional
// and a fleet of N backends always loads N snapshots.
//
// Because per-document counts are additive, the shard summaries combined
// by the fleet's scatter-gather front end (core.FromShards) answer
// bit-identically to the corpus's own merged summary.
func (c *Corpus) BuildShardSummaries(ctx context.Context, n, workers int) ([]*core.Summary, error) {
	if n < 1 || n > fleet.MaxShards {
		return nil, fmt.Errorf("corpus: shard count %d out of range [1,%d]", n, fleet.MaxShards)
	}
	groups := make([][]*labeltree.Tree, n)
	for _, name := range c.Docs() {
		s := fleet.AssignShard(name, n)
		groups[s] = append(groups[s], c.docs[name])
	}
	out := make([]*core.Summary, n)
	for i, g := range groups {
		if len(g) == 0 {
			empty, err := buildEmptySummary(c.opts.K, c.dict)
			if err != nil {
				return nil, err
			}
			out[i] = empty
			continue
		}
		sum, err := core.BuildForestContext(ctx, g, core.BuildOptions{K: c.opts.K, Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("corpus: building shard %d: %w", i, err)
		}
		out[i] = sum
	}
	return out, nil
}
