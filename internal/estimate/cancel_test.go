package estimate

import (
	"context"
	"errors"
	"testing"

	"treelattice/internal/labeltree"
)

// TestEstimateContextCancellation is the estimator-layer cancellation
// table: every ContextEstimator returns promptly with the context's
// sentinel when the context is already done, and matches the plain
// Estimate value when it is live. The first recursion entry polls the
// context (the poll counter starts at 1), so even queries answered by a
// direct lattice hit fail fast under an expired budget.
func TestEstimateContextCancellation(t *testing.T) {
	tr, dict := parseDoc(t, `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`)
	sum := mineK(t, tr, 2)
	// Size 4 > K=2 forces the decomposition recursion for both methods.
	q := labeltree.MustParsePattern("laptop(brand,price)", dict)
	small := labeltree.MustParsePattern("laptop", dict)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithTimeout(context.Background(), -1)
	defer cancel2()

	for _, est := range []ContextEstimator{NewRecursive(sum, false), NewRecursive(sum, true), NewFixSized(sum)} {
		for _, tc := range []struct {
			name    string
			ctx     context.Context
			q       labeltree.Pattern
			wantErr error
		}{
			{"live", context.Background(), q, nil},
			{"live-direct-hit", context.Background(), small, nil},
			{"canceled", canceled, q, context.Canceled},
			{"expired", expired, q, context.DeadlineExceeded},
			{"expired-direct-hit", expired, small, context.DeadlineExceeded},
		} {
			t.Run(est.Name()+"/"+tc.name, func(t *testing.T) {
				got, err := est.EstimateContext(tc.ctx, tc.q)
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("EstimateContext err = %v, want %v", err, tc.wantErr)
				}
				if tc.wantErr == nil {
					if want := est.Estimate(tc.q); got != want {
						t.Fatalf("EstimateContext = %v, Estimate = %v; live context changed the estimate", got, want)
					}
				} else if got != 0 {
					t.Fatalf("EstimateContext returned %v alongside error %v, want 0", got, err)
				}
			})
		}
	}
}
