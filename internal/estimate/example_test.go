package estimate_test

import (
	"fmt"
	"log"
	"strings"

	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/mine"
	"treelattice/internal/xmlparse"
)

// ExampleAugment applies Theorem 1 directly: two twigs with counts 6 and
// 4 sharing a common part with count 2 combine to an estimate of 12.
func ExampleAugment() {
	fmt.Println(estimate.Augment(6, 4, 2))
	// Output: 12
}

// ExampleRecursive_EstimateWithTrace shows the work record attached to an
// estimate: how many lattice lookups hit, and how deep the decomposition
// recursed (each level compounds one independence assumption).
func ExampleRecursive_EstimateWithTrace() {
	dict := labeltree.NewDict()
	doc := `<root>` + strings.Repeat(`<a><b/><c/><d/></a>`, 5) + `</root>`
	tree, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := mine.Mine(tree, 3, mine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r := estimate.NewRecursive(sum, true)
	q := labeltree.MustParsePattern("root(a(b,c,d))", dict)
	est, trace := r.EstimateWithTrace(q)
	fmt.Printf("estimate %.0f after %d decomposition levels\n", est, trace.MaxDepth)
	// Output: estimate 5 after 2 decomposition levels
}

// ExampleEstimateInterval brackets an estimate by the spread of
// decomposition choices; a zero-width interval means every choice agrees.
func ExampleEstimateInterval() {
	dict := labeltree.NewDict()
	doc := `<root>` + strings.Repeat(`<a><b/><c/><d/></a>`, 4) + `</root>`
	tree, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := mine.Mine(tree, 3, mine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	iv := estimate.EstimateInterval(sum, labeltree.MustParsePattern("root(a(b,c,d))", dict))
	fmt.Printf("[%.0f, %.0f]\n", iv.Lo, iv.Hi)
	// Output: [4, 4]
}
