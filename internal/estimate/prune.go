package estimate

import (
	"math"

	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
)

// PruneDerivable implements the δ-derivable pruning algorithm of Figure 6
// (Section 4.3). A pattern is δ-derivable (Definition 2) when its true
// selectivity is within relative tolerance δ of the selectivity the
// lattice would estimate for it by decomposition; such patterns carry no
// information and can be dropped. The result is a new summary containing
// levels 1 and 2 in full and, per level m ≥ 3 in ascending order, only the
// patterns that are not δ-derivable from the summary built so far.
//
// With δ = 0 the pruned summary yields exactly the same estimates as the
// full one for every query that occurs in the data (Lemma 5): every
// removed pattern is reconstructed exactly by the recursive fallback, and
// every subpattern of an occurring query occurs. Queries with zero true
// selectivity may estimate nonzero against a pruned summary, because the
// summary cannot distinguish "pruned as derivable" from "never occurred";
// this is the same failure mode the paper reports for negative workloads
// (Section 5.1, <1% of cases).
func PruneDerivable(sum *lattice.Summary, delta float64) *lattice.Summary {
	out := lattice.New(sum.K(), sum.Dict())
	out.MarkPruned()
	for _, e := range sum.Entries(1) {
		mustAdd(out, e)
	}
	for _, e := range sum.Entries(2) {
		mustAdd(out, e)
	}
	for level := 3; level <= sum.K(); level++ {
		for _, e := range sum.Entries(level) {
			memo := make(map[labeltree.Key]float64)
			est := lookup(out, e.Pattern, memo)
			if relErr(float64(e.Count), est) > delta {
				mustAdd(out, e)
			}
		}
	}
	return out
}

// relErr is |s − ŝ| / s; stored counts are always positive.
func relErr(truth, est float64) float64 {
	if truth <= 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(truth-est) / truth
}

func mustAdd(s *lattice.Summary, e lattice.Entry) {
	if err := s.Add(e.Pattern, e.Count); err != nil {
		// Entries come from a valid summary of the same K; failure here
		// is a programming error, not an input condition.
		panic(err)
	}
}
