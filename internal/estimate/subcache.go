package estimate

import (
	"sync"
	"sync/atomic"

	"treelattice/internal/labeltree"
	"treelattice/internal/obs"
)

// SubCache is a bounded, concurrency-safe cache of sub-twig estimates
// keyed by canonical pattern key, shared across queries and goroutines.
// The decomposition engine layers its per-query memo over it: repeated
// sub-twigs across a workload — the common case, since optimizer-issued
// queries share structure — are decomposed once instead of per query.
//
// The cache is sharded by key hash to keep lock contention off the hot
// path and bounded per shard with FIFO replacement: sub-estimate values
// are cheap to recompute, so replacement recency is not worth an LRU's
// extra bookkeeping under contention.
//
// A SubCache must only be shared by estimators with the same store and
// configuration: cached values are deterministic for a (store, config)
// pair, which is what keeps cached and uncached estimates bit-identical.
// A nil *SubCache is valid and disables caching.
type SubCache struct {
	shardCap int
	shards   [subCacheShards]subCacheShard

	hits, misses, evictions atomic.Int64

	// Optional obs mirrors, set by Instrument before the cache sees
	// traffic.
	hitC, missC, evictC *obs.Counter
}

const subCacheShards = 16

type subCacheShard struct {
	mu   sync.Mutex
	m    map[labeltree.Key]float64
	ring []labeltree.Key // FIFO of resident keys; next is the eviction hand
	next int
}

// NewSubCache returns a cache bounded to roughly capacity entries
// (rounded up to a multiple of the shard count). capacity <= 0 picks a
// default suited to serving workloads.
func NewSubCache(capacity int) *SubCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	per := (capacity + subCacheShards - 1) / subCacheShards
	return &SubCache{shardCap: per}
}

// Instrument mirrors hit/miss/eviction events into obs counters (any may
// be nil to skip that event). Call before the cache sees traffic.
func (c *SubCache) Instrument(hits, misses, evictions *obs.Counter) {
	c.hitC, c.missC, c.evictC = hits, misses, evictions
}

// shard maps a key to its shard by FNV-1a hash. The engine calls get and
// put with keys it already computed for memoization, so hashing is the
// only added per-lookup cost.
func (c *SubCache) shard(key labeltree.Key) *subCacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h&(subCacheShards-1)]
}

func (c *SubCache) get(key labeltree.Key) (float64, bool) {
	if c == nil {
		return 0, false
	}
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if c.hitC != nil {
			c.hitC.Inc()
		}
	} else {
		c.misses.Add(1)
		if c.missC != nil {
			c.missC.Inc()
		}
	}
	return v, ok
}

func (c *SubCache) put(key labeltree.Key, v float64) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[labeltree.Key]float64, c.shardCap)
	}
	if _, ok := s.m[key]; ok {
		s.m[key] = v
		s.mu.Unlock()
		return
	}
	evicted := false
	if len(s.m) >= c.shardCap {
		old := s.ring[s.next]
		delete(s.m, old)
		s.m[key] = v
		s.ring[s.next] = key
		s.next = (s.next + 1) % len(s.ring)
		evicted = true
	} else {
		s.m[key] = v
		s.ring = append(s.ring, key)
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
		if c.evictC != nil {
			c.evictC.Inc()
		}
	}
}

// Len reports the number of resident entries.
func (c *SubCache) Len() int {
	if c == nil {
		return 0
	}
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// Reset discards all entries. Counters are preserved: a reset is an
// invalidation event, not a restart.
func (c *SubCache) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.ring = nil
		s.next = 0
		s.mu.Unlock()
	}
}

// SubCacheStats is a point-in-time view of cache effectiveness.
type SubCacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// Stats returns current counters and occupancy.
func (c *SubCache) Stats() SubCacheStats {
	if c == nil {
		return SubCacheStats{}
	}
	return SubCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}

// HitRatio is hits / (hits + misses), or 0 before any lookup.
func (c *SubCache) HitRatio() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
