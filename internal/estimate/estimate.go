// Package estimate implements the paper's probabilistic decomposition
// framework (Section 3): estimating the selectivity of a twig query from
// the counts of its subtrees stored in a lattice summary.
//
// The foundation is Theorem 1: if T1 and T2 share a common part T and each
// extends T by one distinct edge, then under the assumption that the two
// extensions grow conditionally independently,
//
//	ŝ(T1 ∪ T2) = s(T1) · s(T2) / s(T).
//
// Lemma 1 generalizes this to any pair of subtrees T1, T2 with
// |T1 ∩ T2| = |T1| + |T2| − 1. Two concrete estimators apply it:
//
//   - Recursive decomposition (Section 3.2, Figure 4): remove two degree-1
//     nodes of the query to obtain T1, T2 one node smaller and their
//     common part two nodes smaller, and recurse until patterns fit in the
//     lattice. An optional voting extension averages the estimates of all
//     admissible leaf pairs at each level.
//   - Fix-sized decomposition (Section 3.3, Figure 5, Lemmas 2–3): cover
//     the query in preorder with n−K+1 K-subtrees whose consecutive
//     overlaps are (K−1)-subtrees, and take Π s(Ti) / Π s(overlap_i).
package estimate

import (
	"context"
	"sort"

	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
)

// Estimator is a selectivity estimator for twig queries.
type Estimator interface {
	// Estimate returns the estimated number of matches of q. Estimates
	// are non-negative and may be fractional.
	Estimate(q labeltree.Pattern) float64
	// Name identifies the estimator in experiment output.
	Name() string
}

// ContextEstimator is implemented by estimators whose evaluation polls the
// context at bounded intervals, so per-request deadlines interrupt an
// expensive decomposition instead of letting it run to completion. Both
// built-in estimators implement it.
type ContextEstimator interface {
	Estimator
	// EstimateContext is Estimate with cooperative cancellation: it
	// returns ctx.Err() once ctx is done, checked at bounded intervals
	// during the decomposition recursion.
	EstimateContext(ctx context.Context, q labeltree.Pattern) (float64, error)
}

// Store is the pattern-count source estimators read from. *lattice.Summary
// is the canonical implementation; the online tuner overlays corrections
// on top of one.
type Store interface {
	// Count returns the stored count for p and whether p is present.
	Count(p labeltree.Pattern) (int64, bool)
	// CountKey is Count for a precomputed canonical key. The
	// decomposition engine keys every pattern exactly once (the key is
	// also its memo identity), so stores must answer by key without
	// re-encoding.
	CountKey(key labeltree.Key) (int64, bool)
	// K is the size up to which the store is authoritative: a missing
	// pattern of size ≤ K either does not occur (complete store) or is
	// derivable (pruned store).
	K() int
	// Pruned reports whether missing in-range patterns may be derivable
	// rather than absent.
	Pruned() bool
}

var _ Store = (*lattice.Summary)(nil)
var _ Store = (*lattice.Frozen)(nil)
var _ Store = (*lattice.Compressed)(nil)

// Augment applies Theorem 1 / Lemma 1: the expected count of the union of
// two subtrees with counts s1 and s2 whose common part has count common.
// A zero common part makes the union impossible and yields 0.
func Augment(s1, s2, common float64) float64 {
	if common <= 0 {
		return 0
	}
	return s1 * s2 / common
}

// Trace records how an estimate was produced, supporting the paper's
// future-work direction of attaching confidence information to estimates:
// deeper recursion and more misses mean more compounded independence
// assumptions.
type Trace struct {
	// LatticeHits counts lookups answered directly from the summary.
	LatticeHits int
	// LatticeMisses counts patterns that had to be decomposed.
	LatticeMisses int
	// Reconstructions counts in-range patterns rebuilt because the
	// summary was pruned.
	Reconstructions int
	// Augmentations counts applications of the Theorem 1 formula.
	Augmentations int
	// MaxDepth is the deepest decomposition recursion reached — the
	// number of independence assumptions compounded on the worst path.
	MaxDepth int
	// CacheHits counts sub-estimates answered from the shared SubCache
	// instead of being decomposed.
	CacheHits int
}

// VotingScheme selects how the voting extension aggregates the estimates
// of the admissible leaf pairs at each level. The paper averages and
// leaves "different voting schemes ... accounting for higher order
// statistical moments" as an open question; Median and TrimmedMean are
// robust alternatives that down-weight outlier decompositions.
type VotingScheme uint8

// The implemented voting schemes.
const (
	// Mean averages all pair estimates (the paper's scheme).
	Mean VotingScheme = iota
	// Median takes the middle pair estimate.
	Median
	// TrimmedMean drops the lowest and highest quartile of pair
	// estimates before averaging (falls back to Mean below 4 pairs).
	TrimmedMean
)

func (v VotingScheme) String() string {
	switch v {
	case Median:
		return "median"
	case TrimmedMean:
		return "trimmed-mean"
	default:
		return "mean"
	}
}

// Recursive is the recursive decomposition estimator of Section 3.2, with
// the optional voting extension. The zero value is not ready to use; set
// Sum or use NewRecursive.
type Recursive struct {
	Sum Store
	// Voting aggregates the estimates of all admissible leaf pairs at
	// each recursion level instead of using one canonical pair.
	Voting bool
	// Scheme selects the voting aggregate (default Mean, the paper's).
	Scheme VotingScheme
	// MaxVotingPairs caps the number of leaf pairs considered per level
	// when voting (0 = all pairs). The paper's voting scheme considers
	// all decompositions; the cap bounds worst-case latency.
	MaxVotingPairs int
	// Cache, when non-nil, shares decomposed sub-estimates across
	// queries (and goroutines). It must be dedicated to estimators with
	// this estimator's store and configuration; see SubCache.
	Cache *SubCache
}

// NewRecursive returns a recursive decomposition estimator over sum.
func NewRecursive(sum Store, voting bool) *Recursive {
	return &Recursive{Sum: sum, Voting: voting}
}

// Name implements Estimator.
func (r *Recursive) Name() string {
	if r.Voting {
		return "recursive+voting"
	}
	return "recursive"
}

// Estimate implements Estimator.
func (r *Recursive) Estimate(q labeltree.Pattern) float64 {
	e := engine{sum: r.Sum, voting: r.Voting, scheme: r.Scheme, maxPairs: r.MaxVotingPairs, memo: make(map[labeltree.Key]float64), cache: r.Cache}
	return e.estimate(q, 0)
}

// EstimateContext implements ContextEstimator: the decomposition recursion
// polls ctx every ctxOpsInterval memo operations and unwinds with ctx.Err()
// once the context is done.
func (r *Recursive) EstimateContext(ctx context.Context, q labeltree.Pattern) (float64, error) {
	e := engine{sum: r.Sum, voting: r.Voting, scheme: r.Scheme, maxPairs: r.MaxVotingPairs, memo: make(map[labeltree.Key]float64), cache: r.Cache, ctx: ctx}
	est := e.estimate(q, 0)
	if e.ctxErr != nil {
		return 0, e.ctxErr
	}
	return est, nil
}

// EstimateWithTrace is Estimate plus a record of the work performed.
func (r *Recursive) EstimateWithTrace(q labeltree.Pattern) (float64, Trace) {
	e := engine{sum: r.Sum, voting: r.Voting, scheme: r.Scheme, maxPairs: r.MaxVotingPairs, memo: make(map[labeltree.Key]float64), cache: r.Cache, tr: &Trace{}}
	est := e.estimate(q, 0)
	return est, *e.tr
}

// ctxOpsInterval is how many estimateKeyed entries pass between context
// polls. Each entry does map work and possibly a decomposition enumeration,
// so 64 entries bound the post-cancellation overrun to well under a
// millisecond on realistic queries.
const ctxOpsInterval = 64

// engine is the shared decomposition evaluator: the recursive estimator
// itself, the fallback used for derivable patterns missing from pruned
// lattices, and the subroutine of the pruning algorithm.
type engine struct {
	sum      Store
	voting   bool
	scheme   VotingScheme
	maxPairs int
	memo     map[labeltree.Key]float64
	// cache, when non-nil, shares decomposed sub-estimates across engine
	// runs. The memo stays authoritative within a run; the cache is
	// consulted on memo misses and fed on decompositions, never on
	// cancelled (partially evaluated) results.
	cache *SubCache
	tr    *Trace

	// ctx, when non-nil, is polled every ctxOpsInterval estimateKeyed
	// entries; on cancellation ctxErr latches and the recursion unwinds
	// immediately, returning 0 at every level.
	ctx    context.Context
	ops    int
	ctxErr error
}

func (e *engine) estimate(q labeltree.Pattern, depth int) float64 {
	return e.estimateKeyed(q, q.Key(), depth)
}

// estimateKeyed is estimate for callers that already hold q's canonical
// key (the decomposition enumerator computes every subtree's key for its
// signature, so recursion never re-encodes a pattern).
func (e *engine) estimateKeyed(q labeltree.Pattern, key labeltree.Key, depth int) float64 {
	if e.ctx != nil {
		if e.ctxErr != nil {
			return 0
		}
		e.ops++
		// ops%interval == 1 so the very first entry polls: an
		// already-expired budget fails fast before any work.
		if e.ops%ctxOpsInterval == 1 {
			if err := e.ctx.Err(); err != nil {
				e.ctxErr = err
				return 0
			}
		}
	}
	if e.tr != nil && depth > e.tr.MaxDepth {
		e.tr.MaxDepth = depth
	}
	if v, ok := e.memo[key]; ok {
		return v
	}
	if c, ok := e.sum.CountKey(key); ok {
		if e.tr != nil {
			e.tr.LatticeHits++
		}
		e.memo[key] = float64(c)
		return float64(c)
	}
	if e.tr != nil {
		e.tr.LatticeMisses++
	}
	// Missing from the lattice. Sizes 1–2 are never pruned, so a missing
	// small pattern does not occur in the data at all. The same holds for
	// any in-range size when the lattice is complete.
	if q.Size() <= 2 || (q.Size() <= e.sum.K() && !e.sum.Pruned()) {
		e.memo[key] = 0
		return 0
	}
	// The shared cache sits below the memo and above decomposition: its
	// values were produced by this same deterministic evaluation (for
	// this store and configuration), so a hit is bit-identical to
	// recomputing.
	if v, ok := e.cache.get(key); ok {
		if e.tr != nil {
			e.tr.CacheHits++
		}
		e.memo[key] = v
		return v
	}
	voting := e.voting
	if q.Size() <= e.sum.K() {
		// In range but pruned as derivable: reconstruct with the same
		// canonical single-pair decomposition the pruning criterion
		// (Definition 2) was evaluated with, so pruned and full summaries
		// agree under every estimator. The reconstruction only touches
		// other in-range patterns, so the shared memo stays consistent.
		voting = false
		if e.tr != nil {
			e.tr.Reconstructions++
		}
	}
	ds := decompositions(q)
	if !voting {
		ds = ds[:1] // canonically smallest decomposition
	} else if e.maxPairs > 0 && len(ds) > e.maxPairs {
		ds = ds[:e.maxPairs]
	}
	saved := e.voting
	e.voting = voting
	votes := make([]float64, len(ds))
	for i, d := range ds {
		votes[i] = Augment(
			e.estimateKeyed(d.t1, d.t1Key, depth+1),
			e.estimateKeyed(d.t2, d.t2Key, depth+1),
			e.estimateKeyed(d.common, d.commonKey, depth+1),
		)
		if e.tr != nil {
			e.tr.Augmentations++
		}
	}
	e.voting = saved
	est := aggregate(votes, e.scheme)
	e.memo[key] = est
	// A cancelled recursion unwinds with zero placeholders; only fully
	// evaluated results may enter the shared cache.
	if e.ctxErr == nil {
		e.cache.put(key, est)
	}
	return est
}

// aggregate combines the per-pair vote estimates under the scheme.
func aggregate(votes []float64, scheme VotingScheme) float64 {
	if len(votes) == 1 {
		return votes[0]
	}
	switch scheme {
	case Median:
		s := append([]float64(nil), votes...)
		sort.Float64s(s)
		mid := len(s) / 2
		if len(s)%2 == 1 {
			return s[mid]
		}
		return (s[mid-1] + s[mid]) / 2
	case TrimmedMean:
		if len(votes) < 4 {
			break
		}
		s := append([]float64(nil), votes...)
		sort.Float64s(s)
		cut := len(s) / 4
		s = s[cut : len(s)-cut]
		var sum float64
		for _, v := range s {
			sum += v
		}
		return sum / float64(len(s))
	}
	var sum float64
	for _, v := range votes {
		sum += v
	}
	return sum / float64(len(votes))
}

// decomposition is one leaf-pair removal: T1 and T2 are the query minus
// one leaf each, common is the query minus both. The canonical keys of
// all three subtrees ride along so recursion and memoization never
// re-encode them.
type decomposition struct {
	t1, t2, common          labeltree.Pattern
	t1Key, t2Key, commonKey labeltree.Key
	sig                     decompSig
}

// decompSig orders decompositions canonically: the unordered {T1, T2} key
// pair (lo ≤ hi) then the common part's key, compared field-wise. A
// comparable struct of keys — no per-pair string building.
type decompSig struct {
	lo, hi, common labeltree.Key
}

func (a decompSig) less(b decompSig) bool {
	if a.lo != b.lo {
		return a.lo < b.lo
	}
	if a.hi != b.hi {
		return a.hi < b.hi
	}
	return a.common < b.common
}

// decompositions enumerates every admissible leaf-pair decomposition of q,
// ordered by a canonical signature. The order — and in particular the
// first element, which the non-voting estimator uses — is invariant under
// isomorphic renumbering of q's nodes. That invariance matters: δ-derivable
// pruning verifies a pattern against the deterministic decomposition, and
// query-time reconstruction encounters the same pattern under a different
// numbering; both must pick the same decomposition.
func decompositions(q labeltree.Pattern) []decomposition {
	leaves := q.Leaves()
	out := make([]decomposition, 0, len(leaves)*(len(leaves)-1)/2)
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			t1 := q.RemoveLeaf(leaves[i])
			t2 := q.RemoveLeaf(leaves[j])
			common := removeTwo(q, leaves[i], leaves[j])
			d := decomposition{
				t1: t1, t2: t2, common: common,
				t1Key: t1.Key(), t2Key: t2.Key(), commonKey: common.Key(),
			}
			lo, hi := d.t1Key, d.t2Key
			if hi < lo {
				lo, hi = hi, lo
			}
			d.sig = decompSig{lo: lo, hi: hi, common: d.commonKey}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].sig.less(out[b].sig) })
	return out
}

// removeTwo removes two degree-1 nodes from q at once.
func removeTwo(q labeltree.Pattern, u, v int32) labeltree.Pattern {
	keep := make([]int32, 0, q.Size()-2)
	for i := int32(0); int(i) < q.Size(); i++ {
		if i != u && i != v {
			keep = append(keep, i)
		}
	}
	return q.Subpattern(keep)
}

// lookup resolves a pattern count against the lattice, falling back to
// recursive decomposition when the lattice is pruned (Lemma 5: δ-derivable
// patterns can be removed without changing estimates because they are
// reconstructed on demand).
func lookup(sum Store, q labeltree.Pattern, memo map[labeltree.Key]float64) float64 {
	e := engine{sum: sum, memo: memo}
	return e.estimate(q, 0)
}
