package estimate

import (
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
)

func TestMergedStoreSumsCounts(t *testing.T) {
	dict := labeltree.NewDict()
	base := lattice.New(4, dict)
	delta := lattice.New(4, dict)
	a := labeltree.MustParsePattern("a", dict)
	b := labeltree.MustParsePattern("a(b)", dict)
	c := labeltree.MustParsePattern("c", dict)
	if err := base.Add(a, 10); err != nil {
		t.Fatal(err)
	}
	if err := base.Add(b, 4); err != nil {
		t.Fatal(err)
	}
	if err := delta.Add(a, 3); err != nil {
		t.Fatal(err)
	}
	if err := delta.Add(c, 7); err != nil {
		t.Fatal(err)
	}
	m := &Merged{Base: base, Delta: delta}
	for _, tc := range []struct {
		p    labeltree.Pattern
		want int64
		ok   bool
	}{
		{a, 13, true}, // both halves
		{b, 4, true},  // base only
		{c, 7, true},  // delta only
		{labeltree.MustParsePattern("zzz", dict), 0, false},
	} {
		if got, ok := m.Count(tc.p); got != tc.want || ok != tc.ok {
			t.Errorf("Count(%s) = %d,%v want %d,%v", tc.p.String(dict), got, ok, tc.want, tc.ok)
		}
		if got, ok := m.CountKey(tc.p.Key()); got != tc.want || ok != tc.ok {
			t.Errorf("CountKey(%s) = %d,%v want %d,%v", tc.p.String(dict), got, ok, tc.want, tc.ok)
		}
	}
	if m.K() != 4 {
		t.Fatalf("K = %d", m.K())
	}
	if m.Pruned() {
		t.Fatal("unpruned halves reported pruned")
	}
	if m.StoreKind() != "delta" {
		t.Fatalf("StoreKind = %q", m.StoreKind())
	}
	if m.Len() != base.Len()+delta.Len() {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.SizeBytes() != base.SizeBytes()+delta.SizeBytes() {
		t.Fatalf("SizeBytes = %d", m.SizeBytes())
	}
	if m.ResidentBytes() != base.ResidentBytes()+delta.ResidentBytes() {
		t.Fatalf("ResidentBytes = %d", m.ResidentBytes())
	}
}

// TestMergedStorePrunedContagion: a pruned half makes the merge pruned —
// missing patterns may be derivable, estimators must not treat them as
// absent.
func TestMergedStorePrunedContagion(t *testing.T) {
	dict := labeltree.NewDict()
	base := lattice.New(4, dict)
	base.MarkPruned()
	m := &Merged{Base: base, Delta: lattice.New(4, dict)}
	if !m.Pruned() {
		t.Fatal("pruned base did not propagate")
	}
}
