package estimate

import "treelattice/internal/labeltree"

// Merged overlays a small delta store on an immutable base store: the
// count of a pattern is the sum of its base and delta counts, and a
// pattern present in either is present in the merge. Documents are
// independent trees, so counts are additive across them — the merged
// store answers exactly what a store rebuilt over (base docs ∪ delta
// docs) would answer, which is what keeps every estimator bit-identical
// on the merged view. Both halves are immutable, so Merged is safe for
// concurrent use; the zero-downtime ingest path publishes a fresh
// Merged per epoch instead of mutating one in place.
type Merged struct {
	Base  Store
	Delta Store
}

var _ Store = (*Merged)(nil)

// Count implements Store: additive across base and delta.
func (m *Merged) Count(p labeltree.Pattern) (int64, bool) {
	return m.CountKey(p.Key())
}

// CountKey implements Store.
func (m *Merged) CountKey(key labeltree.Key) (int64, bool) {
	b, okB := m.Base.CountKey(key)
	d, okD := m.Delta.CountKey(key)
	return b + d, okB || okD
}

// K is the base's lattice level (delta is mined at the same level).
func (m *Merged) K() int { return m.Base.K() }

// Pruned is contagious from either half.
func (m *Merged) Pruned() bool { return m.Base.Pruned() || m.Delta.Pruned() }

// StoreKind names the backend for introspection surfaces.
func (m *Merged) StoreKind() string { return "delta" }

// lenSized / byteSized mirror core's sized interfaces without importing
// core (estimate sits below it).
type lenSized interface {
	SizeBytes() int
	Len() int
}

type residentSized interface{ ResidentBytes() int }

// SizeBytes sums the accounted storage of both halves.
func (m *Merged) SizeBytes() int {
	total := 0
	for _, st := range []Store{m.Base, m.Delta} {
		if sz, ok := st.(lenSized); ok {
			total += sz.SizeBytes()
		}
	}
	return total
}

// Len sums stored entries across both halves (a pattern in both counts
// twice; the figure reports stored entries, like the shard store).
func (m *Merged) Len() int {
	total := 0
	for _, st := range []Store{m.Base, m.Delta} {
		if sz, ok := st.(lenSized); ok {
			total += sz.Len()
		}
	}
	return total
}

// ResidentBytes sums resident bytes, falling back to accounted storage
// for halves that cannot report residency.
func (m *Merged) ResidentBytes() int {
	total := 0
	for _, st := range []Store{m.Base, m.Delta} {
		switch sz := st.(type) {
		case residentSized:
			total += sz.ResidentBytes()
		case lenSized:
			total += sz.SizeBytes()
		}
	}
	return total
}
