package estimate

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/markov"
	"treelattice/internal/match"
	"treelattice/internal/mine"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func parseDoc(t *testing.T, doc string) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func mineK(t *testing.T, tr *labeltree.Tree, k int) *lattice.Summary {
	t.Helper()
	sum, err := mine.Mine(tr, k, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestAugment(t *testing.T) {
	if got := Augment(6, 4, 2); got != 12 {
		t.Fatalf("Augment = %v, want 12", got)
	}
	if got := Augment(6, 4, 0); got != 0 {
		t.Fatalf("Augment with zero common = %v, want 0", got)
	}
}

func TestExactRecallWithinLattice(t *testing.T) {
	// Queries no larger than K must be answered exactly from the summary.
	tr, dict := parseDoc(t, `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`)
	sum := mineK(t, tr, 3)
	counter := match.NewCounter(tr)
	for _, est := range []Estimator{
		NewRecursive(sum, false),
		NewRecursive(sum, true),
		NewFixSized(sum),
	} {
		for _, qs := range []string{"laptop", "laptop(brand)", "laptop(brand,price)", "computer(laptops(laptop))"} {
			q := labeltree.MustParsePattern(qs, dict)
			want := float64(counter.Count(q))
			if got := est.Estimate(q); got != want {
				t.Errorf("%s: Estimate(%s) = %v, want %v", est.Name(), qs, got, want)
			}
		}
	}
}

func TestZeroForUnseenLabels(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b/><c/></a>`)
	sum := mineK(t, tr, 2)
	q := labeltree.MustParsePattern("a(b,zzz)", dict)
	for _, est := range []Estimator{NewRecursive(sum, false), NewRecursive(sum, true), NewFixSized(sum)} {
		if got := est.Estimate(q); got != 0 {
			t.Errorf("%s: Estimate = %v, want 0", est.Name(), got)
		}
	}
}

// uniformDoc builds a document of n identical fragments r(a(b,c,d)): the
// conditional independence assumption holds exactly, so decomposition must
// reproduce true counts for queries beyond the lattice level.
func uniformDoc(t *testing.T, n int) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < n; i++ {
		b.WriteString("<a><b/><c/><d/></a>")
	}
	b.WriteString("</root>")
	return parseDoc(t, b.String())
}

func TestDecompositionExactUnderIndependence(t *testing.T) {
	tr, dict := uniformDoc(t, 7)
	sum := mineK(t, tr, 3)
	counter := match.NewCounter(tr)
	queries := []string{
		"a(b,c,d)",       // size 4
		"root(a(b,c))",   // size 4
		"root(a(b,c,d))", // size 5
	}
	for _, est := range []Estimator{NewRecursive(sum, false), NewRecursive(sum, true), NewFixSized(sum)} {
		for _, qs := range queries {
			q := labeltree.MustParsePattern(qs, dict)
			want := float64(counter.Count(q))
			got := est.Estimate(q)
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Errorf("%s: Estimate(%s) = %v, want %v", est.Name(), qs, got, want)
			}
		}
	}
}

func TestLemma4MarkovEquivalence(t *testing.T) {
	// On path queries, both decomposition estimators must produce exactly
	// the Markov-table estimate (Lemma 4).
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(31))
	for _, k := range []int{2, 3, 4} {
		tr := treetest.RandomTree(rng, 120, alphabet, dict)
		sum := mineK(t, tr, k)
		tb := markov.Build(tr, k)
		rec := NewRecursive(sum, false)
		vote := NewRecursive(sum, true)
		fix := NewFixSized(sum)
		checked := 0
		for trial := 0; trial < 200; trial++ {
			n := k + 1 + rng.Intn(4)
			path := make([]labeltree.LabelID, n)
			for i := range path {
				path[i] = alphabet[rng.Intn(len(alphabet))]
			}
			q := labeltree.PathPattern(path...)
			want := tb.Estimate(path)
			if want > 0 {
				checked++
			}
			for _, est := range []Estimator{rec, vote, fix} {
				got := est.Estimate(q)
				if math.Abs(got-want) > 1e-9*math.Max(1, want) {
					t.Fatalf("k=%d %s: path %v: got %v, markov %v", k, est.Name(), path, got, want)
				}
			}
		}
		if checked < 10 {
			t.Fatalf("k=%d: only %d positive paths; test is weak", k, checked)
		}
	}
}

func TestVotingAveragesPairs(t *testing.T) {
	// A hand-built asymmetric case: query a(b,c,d) with K=3 where the
	// voting estimate is the average of the three leaf-pair estimates.
	tr, dict := parseDoc(t, `<root><a><b/><c/></a><a><b/><d/></a><a><c/><d/></a><a><b/><c/><d/></a></root>`)
	sum := mineK(t, tr, 3)
	q := labeltree.MustParsePattern("a(b,c,d)", dict)

	count := func(qs string) float64 {
		c, _ := sum.Count(labeltree.MustParsePattern(qs, dict))
		return float64(c)
	}
	// Pairs of leaves {b,c,d}: removing (b,c), (b,d), (c,d).
	e1 := count("a(b,c)") * count("a(b,d)") / count("a(b)") // common a(b)
	e2 := count("a(b,c)") * count("a(c,d)") / count("a(c)")
	e3 := count("a(b,d)") * count("a(c,d)") / count("a(d)")
	want := (e1 + e2 + e3) / 3
	got := NewRecursive(sum, true).Estimate(q)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("voting estimate = %v, want %v", got, want)
	}
	// Non-voting picks one canonical pair: the estimate must equal one of
	// the three pair estimates, and must be identical across isomorphic
	// renumberings of the query.
	gotSingle := NewRecursive(sum, false).Estimate(q)
	if math.Abs(gotSingle-e1) > 1e-12 && math.Abs(gotSingle-e2) > 1e-12 && math.Abs(gotSingle-e3) > 1e-12 {
		t.Fatalf("single-pair estimate = %v, not one of %v %v %v", gotSingle, e1, e2, e3)
	}
	iso := labeltree.MustParsePattern("a(d,c,b)", dict)
	if got := NewRecursive(sum, false).Estimate(iso); got != gotSingle {
		t.Fatalf("isomorphic query estimated differently: %v vs %v", got, gotSingle)
	}
}

func TestEstimateIsomorphismInvariant(t *testing.T) {
	// Estimates must depend only on the query's isomorphism class, for
	// all estimators.
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(61))
	tr := treetest.RandomTree(rng, 120, alphabet, dict)
	sum := mineK(t, tr, 3)
	ests := []Estimator{NewRecursive(sum, false), NewRecursive(sum, true), NewFixSized(sum)}
	for trial := 0; trial < 150; trial++ {
		q := treetest.RandomPattern(rng, 4+rng.Intn(4), alphabet)
		iso := treetest.ShufflePattern(rng, q)
		for _, est := range ests {
			a, b := est.Estimate(q), est.Estimate(iso)
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				t.Fatalf("%s: isomorphic estimates differ: %v vs %v for %s",
					est.Name(), a, b, q.String(dict))
			}
		}
	}
}

func TestMaxVotingPairsCaps(t *testing.T) {
	tr, dict := uniformDoc(t, 3)
	sum := mineK(t, tr, 3)
	q := labeltree.MustParsePattern("root(a(b,c,d))", dict)
	r := &Recursive{Sum: sum, Voting: true, MaxVotingPairs: 1}
	// With a cap of 1 the estimator still returns a sane estimate.
	if got := r.Estimate(q); got <= 0 {
		t.Fatalf("capped voting estimate = %v", got)
	}
}

func TestCoverProperties(t *testing.T) {
	dict, alphabet := treetest.Alphabet(4)
	_ = dict
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(3)
		n := k + rng.Intn(6)
		q := treetest.RandomPattern(rng, n, alphabet)
		cover := Cover(q, k)
		if len(cover) != n-k+1 {
			t.Fatalf("cover has %d steps, want %d", len(cover), n-k+1)
		}
		seen := make(map[int32]bool)
		for si, step := range cover {
			if len(step) != k {
				t.Fatalf("step %d has %d nodes, want %d", si, len(step), k)
			}
			// Each step must be a connected subtree (Subpattern panics
			// otherwise).
			_ = q.Subpattern(step)
			if si == 0 {
				for _, v := range step {
					seen[v] = true
				}
				continue
			}
			// All but the last node were already covered; the last is new.
			for _, v := range step[:k-1] {
				if !seen[v] {
					t.Fatalf("step %d uses uncovered node %d in overlap", si, v)
				}
			}
			newNode := step[k-1]
			if seen[newNode] {
				t.Fatalf("step %d re-covers node %d", si, newNode)
			}
			// Overlap must itself be connected.
			_ = q.Subpattern(step[:k-1])
			seen[newNode] = true
		}
		if len(seen) != n {
			t.Fatalf("cover visited %d of %d nodes", len(seen), n)
		}
	}
}

func TestCoverPanicsOnSmallPattern(t *testing.T) {
	_, alphabet := treetest.Alphabet(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Cover on undersized pattern did not panic")
		}
	}()
	Cover(labeltree.SingleNode(alphabet[0]), 2)
}

func TestPruneDerivableLemma5(t *testing.T) {
	// δ=0 pruning must not change any estimate (Lemma 5).
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(41))
	tr := treetest.RandomTree(rng, 100, alphabet, dict)
	sum := mineK(t, tr, 4)
	pruned := PruneDerivable(sum, 0)
	if !pruned.Pruned() {
		t.Fatal("pruned summary not marked pruned")
	}
	if pruned.Len() > sum.Len() {
		t.Fatal("pruning grew the summary")
	}
	full := NewRecursive(sum, false)
	prunedEst := NewRecursive(pruned, false)
	fullVote := NewRecursive(sum, true)
	prunedVote := NewRecursive(pruned, true)
	fullFix := NewFixSized(sum)
	prunedFix := NewFixSized(pruned)
	counter := match.NewCounter(tr)
	checked := 0
	for trial := 0; trial < 400; trial++ {
		q := treetest.RandomPattern(rng, 1+rng.Intn(6), alphabet)
		// Lemma 5 applies to queries that occur in the data: every
		// connected subpattern of an occurring query also occurs, so all
		// decomposition lookups resolve identically. Queries with zero
		// true selectivity may estimate nonzero against a pruned summary
		// (the summary cannot distinguish "pruned as derivable" from
		// "never occurred") — the paper's negative-query caveat.
		if counter.Count(q) == 0 {
			continue
		}
		checked++
		if a, b := full.Estimate(q), prunedEst.Estimate(q); math.Abs(a-b) > 1e-9*math.Max(1, a) {
			t.Fatalf("recursive: %s: full %v pruned %v", q.String(dict), a, b)
		}
		if a, b := fullVote.Estimate(q), prunedVote.Estimate(q); math.Abs(a-b) > 1e-9*math.Max(1, a) {
			t.Fatalf("voting: %s: full %v pruned %v", q.String(dict), a, b)
		}
		if a, b := fullFix.Estimate(q), prunedFix.Estimate(q); math.Abs(a-b) > 1e-9*math.Max(1, a) {
			t.Fatalf("fix-sized: %s: full %v pruned %v", q.String(dict), a, b)
		}
	}
	if checked < 30 {
		t.Fatalf("only %d positive queries checked; test is weak", checked)
	}
}

func TestPruneDerivableMonotoneInDelta(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	_ = dict
	rng := rand.New(rand.NewSource(43))
	tr := treetest.RandomTree(rng, 150, alphabet, dict)
	sum := mineK(t, tr, 4)
	prev := sum.Len() + 1
	for _, delta := range []float64{0, 0.1, 0.2, 0.3} {
		p := PruneDerivable(sum, delta)
		if p.Len() >= prev {
			t.Fatalf("delta=%v: size %d not smaller than %d", delta, p.Len(), prev)
		}
		prev = p.Len() + 1 // allow equality across deltas
	}
}

func TestPruneKeepsLevels1And2(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	_ = dict
	rng := rand.New(rand.NewSource(47))
	tr := treetest.RandomTree(rng, 80, alphabet, dict)
	sum := mineK(t, tr, 4)
	p := PruneDerivable(sum, 0.5)
	want := sum.LevelSizes()
	got := p.LevelSizes()
	if got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("levels 1-2 changed: got %v want %v", got, want)
	}
}

func TestEstimatorNames(t *testing.T) {
	dict := labeltree.NewDict()
	sum := lattice.New(2, dict)
	if NewRecursive(sum, false).Name() != "recursive" ||
		NewRecursive(sum, true).Name() != "recursive+voting" ||
		NewFixSized(sum).Name() != "fix-sized" {
		t.Fatal("estimator names changed")
	}
}

func TestVotingSchemes(t *testing.T) {
	// Asymmetric sibling correlations give three distinct pair estimates;
	// each scheme aggregates differently but all stay within the
	// [min, max] spread.
	tr, dict := parseDoc(t, `<root>`+
		strings.Repeat(`<a><b/><c/></a>`, 3)+
		`<a><b/><d/></a>`+
		strings.Repeat(`<a><c/><d/></a>`, 2)+
		`<a><b/><c/><d/></a>`+
		`</root>`)
	sum := mineK(t, tr, 3)
	q := labeltree.MustParsePattern("a(b,c,d)", dict)
	iv := EstimateInterval(sum, q)
	var values []float64
	for _, scheme := range []VotingScheme{Mean, Median, TrimmedMean} {
		r := &Recursive{Sum: sum, Voting: true, Scheme: scheme}
		got := r.Estimate(q)
		if !iv.Contains(got) {
			t.Fatalf("%s: %v outside spread %+v", scheme, got, iv)
		}
		values = append(values, got)
	}
	// Mean and median differ on this asymmetric case.
	if values[0] == values[1] {
		t.Fatalf("mean == median (%v); case not discriminating", values[0])
	}
}

func TestVotingSchemeStrings(t *testing.T) {
	if Mean.String() != "mean" || Median.String() != "median" || TrimmedMean.String() != "trimmed-mean" {
		t.Fatal("scheme names changed")
	}
}

func TestAggregate(t *testing.T) {
	votes := []float64{1, 2, 3, 100}
	if got := aggregate(votes, Mean); got != 26.5 {
		t.Fatalf("mean = %v", got)
	}
	if got := aggregate(votes, Median); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	if got := aggregate(votes, TrimmedMean); got != 2.5 {
		t.Fatalf("trimmed = %v", got)
	}
	if got := aggregate([]float64{5, 7, 9}, Median); got != 7 {
		t.Fatalf("odd median = %v", got)
	}
	// TrimmedMean falls back to mean below 4 votes.
	if got := aggregate([]float64{3, 6}, TrimmedMean); got != 4.5 {
		t.Fatalf("small trimmed = %v", got)
	}
	if got := aggregate([]float64{42}, Median); got != 42 {
		t.Fatalf("single vote = %v", got)
	}
}
