package estimate

import (
	"math/rand"
	"testing"

	"treelattice/internal/treetest"
)

// TestCoverAllocsBounded gates the fix-sized cover's allocation profile:
// a handful of query-sized scratch slices, never per-step or per-node
// maps. The bound is the slice count of the implementation (CSR pair,
// cursor/stack, preorder, covered, in, backing buffer, step headers,
// frontier) with one slot of headroom.
func TestCoverAllocsBounded(t *testing.T) {
	_, alphabet := treetest.Alphabet(4)
	rng := rand.New(rand.NewSource(29))
	for _, k := range []int{2, 3, 4} {
		q := treetest.RandomPattern(rng, k+8, alphabet)
		allocs := testing.AllocsPerRun(200, func() {
			Cover(q, k)
		})
		if allocs > 9 {
			t.Fatalf("Cover(size %d, k=%d) allocates %.1f per call, want <= 9", q.Size(), k, allocs)
		}
	}
}
