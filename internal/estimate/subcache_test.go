package estimate

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/mine"
	"treelattice/internal/obs"
	"treelattice/internal/treetest"
)

var testKeyDict = labeltree.NewDict()

func testKey(i int) labeltree.Key {
	return labeltree.SingleNode(testKeyDict.Intern(fmt.Sprintf("l%d", i))).Key()
}

func TestSubCacheGetPut(t *testing.T) {
	c := NewSubCache(64)
	k := testKey(1)
	if _, ok := c.get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(k, 3.5)
	if v, ok := c.get(k); !ok || v != 3.5 {
		t.Fatalf("get = %v,%v want 3.5,true", v, ok)
	}
	c.put(k, 4.5) // overwrite in place
	if v, _ := c.get(k); v != 4.5 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := c.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("HitRatio = %v", got)
	}
}

func TestSubCacheBounded(t *testing.T) {
	const capacity = 64
	c := NewSubCache(capacity)
	for i := 0; i < 10*capacity; i++ {
		c.put(testKey(i), float64(i))
	}
	// Rounded-up per-shard capacity: entries never exceed shards*ceil.
	limit := subCacheShards * ((capacity + subCacheShards - 1) / subCacheShards)
	if got := c.Len(); got > limit {
		t.Fatalf("cache holds %d entries, limit %d", got, limit)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
}

func TestSubCacheReset(t *testing.T) {
	c := NewSubCache(64)
	for i := 0; i < 32; i++ {
		c.put(testKey(i), float64(i))
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if _, ok := c.get(testKey(3)); ok {
		t.Fatal("hit after Reset")
	}
	// Refill past capacity again: the FIFO ring must have been reset too.
	for i := 0; i < 200; i++ {
		c.put(testKey(i), float64(i))
	}
}

func TestSubCacheNilSafe(t *testing.T) {
	var c *SubCache
	if _, ok := c.get(testKey(1)); ok {
		t.Fatal("nil cache hit")
	}
	c.put(testKey(1), 1)
	c.Reset()
	if c.Len() != 0 || c.HitRatio() != 0 {
		t.Fatal("nil cache reports state")
	}
	if st := c.Stats(); st != (SubCacheStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

func TestSubCacheInstrument(t *testing.T) {
	c := NewSubCache(16)
	reg := obs.NewRegistry()
	hits, misses, evict := reg.Counter("h"), reg.Counter("m"), reg.Counter("e")
	c.Instrument(hits, misses, evict)
	for i := 0; i < 100; i++ {
		c.put(testKey(i), float64(i))
	}
	c.get(testKey(99))
	c.get(testKey(12345))
	st := c.Stats()
	if int64(hits.Value()) != st.Hits || int64(misses.Value()) != st.Misses || int64(evict.Value()) != st.Evictions {
		t.Fatalf("obs mirrors diverge: %d/%d/%d vs %+v", hits.Value(), misses.Value(), evict.Value(), st)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions with capacity 16")
	}
}

// TestSubCacheConcurrent hammers one cache from 8 goroutines mixing gets,
// puts, stats reads, and resets; run under -race this is the shared-cache
// safety test the issue calls for.
func TestSubCacheConcurrent(t *testing.T) {
	c := NewSubCache(256)
	keys := make([]labeltree.Key, 128)
	for i := range keys {
		keys[i] = testKey(i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				k := keys[rng.Intn(len(keys))]
				switch rng.Intn(10) {
				case 0:
					c.Stats()
				case 1:
					c.HitRatio()
				case 2:
					if g == 0 && i%1000 == 999 {
						c.Reset()
					}
					c.put(k, float64(i))
				default:
					if v, ok := c.get(k); !ok {
						c.put(k, float64(i))
					} else {
						_ = v
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// minedStore builds a small mined summary for estimator-level cache tests.
func minedStore(t testing.TB) (*lattice.Summary, []labeltree.Pattern) {
	t.Helper()
	d, alphabet := treetest.Alphabet(4)
	rng := rand.New(rand.NewSource(5))
	tree := treetest.RandomTree(rng, 300, alphabet, d)
	sum, err := mine.Mine(tree, 3, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]labeltree.Pattern, 0, 40)
	for i := 0; i < 40; i++ {
		queries = append(queries, treetest.RandomPattern(rng, 4+rng.Intn(3), alphabet))
	}
	return sum, queries
}

// TestSharedCachePreservesEstimates is the bit-identity property: for
// both estimator families, over both the map-backed and frozen backends,
// estimates with a shared (and pre-warmed) cache equal the uncached
// estimates exactly. The store is pruned so the fix-sized estimator's
// in-range probes also exercise the reconstruction (and thus caching)
// path — over a complete lattice it never decomposes.
func TestSharedCachePreservesEstimates(t *testing.T) {
	full, queries := minedStore(t)
	sum := full.Filter(func(e lattice.Entry) bool {
		return e.Pattern.Size() <= 2 || e.Count > 1
	})
	frozen := lattice.Freeze(sum)
	backends := map[string]Store{"map": sum, "frozen": frozen}
	type mk func(s Store, c *SubCache) Estimator
	estimators := map[string]mk{
		"recursive": func(s Store, c *SubCache) Estimator {
			return &Recursive{Sum: s, Cache: c}
		},
		"recursive+voting": func(s Store, c *SubCache) Estimator {
			return &Recursive{Sum: s, Voting: true, Cache: c}
		},
		"fix-sized": func(s Store, c *SubCache) Estimator {
			return &FixSized{Sum: s, Cache: c}
		},
	}
	for bname, backend := range backends {
		for ename, make := range estimators {
			t.Run(bname+"/"+ename, func(t *testing.T) {
				plain := make(backend, nil)
				cache := NewSubCache(4096)
				cached := make(backend, cache)
				for round := 0; round < 2; round++ { // round 2 hits a warm cache
					for _, q := range queries {
						want := plain.Estimate(q)
						got := cached.Estimate(q)
						if got != want {
							t.Fatalf("round %d: cached %v != uncached %v", round, got, want)
						}
					}
				}
				if cache.Stats().Hits == 0 {
					t.Fatal("warm rounds produced no cache hits")
				}
			})
		}
	}
}

// TestSharedCacheBackendsBitIdentical pins map-vs-frozen equality when
// both run through (distinct) shared caches.
func TestSharedCacheBackendsBitIdentical(t *testing.T) {
	sum, queries := minedStore(t)
	frozen := lattice.Freeze(sum)
	onMap := &Recursive{Sum: sum, Voting: true, Cache: NewSubCache(1024)}
	onFrozen := &Recursive{Sum: frozen, Voting: true, Cache: NewSubCache(1024)}
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			if a, b := onMap.Estimate(q), onFrozen.Estimate(q); a != b {
				t.Fatalf("round %d: map %v != frozen %v for %s", round, a, b, q.String(sum.Dict()))
			}
		}
	}
}

// TestSharedCacheConcurrentEstimates drives one estimator configuration
// from 8 goroutines sharing one cache (the serving configuration) and
// checks every result against a single-threaded uncached baseline.
func TestSharedCacheConcurrentEstimates(t *testing.T) {
	sum, queries := minedStore(t)
	frozen := lattice.Freeze(sum)
	baseline := &Recursive{Sum: frozen, Voting: true}
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = baseline.Estimate(q)
	}
	cache := NewSubCache(4096)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			est := &Recursive{Sum: frozen, Voting: true, Cache: cache}
			for i := 0; i < 4*len(queries); i++ {
				qi := (g + i) % len(queries)
				if got := est.Estimate(queries[qi]); got != want[qi] {
					errs <- fmt.Errorf("goroutine %d: query %d: got %v want %v", g, qi, got, want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTraceCountsCacheHits: a warm cache answers the repeated query's
// decomposition from cache, visible in the trace.
func TestTraceCountsCacheHits(t *testing.T) {
	sum, queries := minedStore(t)
	est := &Recursive{Sum: sum, Cache: NewSubCache(1024)}
	q := queries[0]
	_, cold := est.EstimateWithTrace(q)
	if cold.CacheHits != 0 {
		t.Fatalf("cold trace has %d cache hits", cold.CacheHits)
	}
	_, warm := est.EstimateWithTrace(q)
	if warm.CacheHits == 0 {
		t.Fatal("warm trace has no cache hits")
	}
}
