package estimate

import (
	"math"
	"math/rand"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

func TestEstimateWithTraceInLattice(t *testing.T) {
	tr, dict := uniformDoc(t, 5)
	sum := mineK(t, tr, 3)
	r := NewRecursive(sum, false)
	q := labeltree.MustParsePattern("a(b,c)", dict)
	est, trace := r.EstimateWithTrace(q)
	if est != r.Estimate(q) {
		t.Fatal("traced estimate differs from plain estimate")
	}
	if trace.LatticeHits != 1 || trace.LatticeMisses != 0 || trace.Augmentations != 0 || trace.MaxDepth != 0 {
		t.Fatalf("in-lattice trace = %+v", trace)
	}
}

func TestEstimateWithTraceDecomposed(t *testing.T) {
	tr, dict := uniformDoc(t, 5)
	sum := mineK(t, tr, 3)
	r := NewRecursive(sum, false)
	q := labeltree.MustParsePattern("root(a(b,c,d))", dict) // size 5, K=3
	est, trace := r.EstimateWithTrace(q)
	if est != r.Estimate(q) {
		t.Fatal("traced estimate differs from plain estimate")
	}
	if trace.LatticeMisses == 0 || trace.Augmentations == 0 {
		t.Fatalf("decomposition trace = %+v", trace)
	}
	// Size 5 with K=3 needs two recursion levels.
	if trace.MaxDepth < 2 {
		t.Fatalf("MaxDepth = %d, want >= 2", trace.MaxDepth)
	}
}

func TestEstimateWithTraceReconstructions(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	_ = dict
	rng := rand.New(rand.NewSource(3))
	tr := treetest.RandomTree(rng, 100, alphabet, dict)
	sum := mineK(t, tr, 4)
	pruned := PruneDerivable(sum, 0)
	if pruned.Len() == sum.Len() {
		t.Skip("nothing pruned; reconstruction not exercised")
	}
	r := NewRecursive(pruned, true)
	sawReconstruction := false
	for trial := 0; trial < 100 && !sawReconstruction; trial++ {
		q := treetest.RandomPattern(rng, 6, alphabet)
		_, trace := r.EstimateWithTrace(q)
		if trace.Reconstructions > 0 {
			sawReconstruction = true
		}
	}
	if !sawReconstruction {
		t.Fatal("no reconstruction recorded against a pruned summary")
	}
}

func TestIntervalPointForLatticePatterns(t *testing.T) {
	tr, dict := uniformDoc(t, 5)
	sum := mineK(t, tr, 3)
	q := labeltree.MustParsePattern("a(b,c)", dict)
	iv := EstimateInterval(sum, q)
	if iv.Lo != iv.Hi || iv.Lo != 5 {
		t.Fatalf("interval = %+v, want point 5", iv)
	}
	if !iv.Contains(5) || iv.Contains(6) {
		t.Fatal("Contains misbehaves")
	}
	if iv.Width() != 0 {
		t.Fatalf("Width = %v", iv.Width())
	}
}

func TestIntervalBracketsEstimators(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(53))
	tr := treetest.RandomTree(rng, 150, alphabet, dict)
	sum := mineK(t, tr, 3)
	rec := NewRecursive(sum, false)
	vote := NewRecursive(sum, true)
	checked := 0
	for trial := 0; trial < 200; trial++ {
		q := treetest.RandomPattern(rng, 4+rng.Intn(4), alphabet)
		iv := EstimateInterval(sum, q)
		if iv.Lo > iv.Hi {
			t.Fatalf("inverted interval %+v for %s", iv, q.String(dict))
		}
		for _, est := range []Estimator{rec, vote} {
			v := est.Estimate(q)
			if !iv.Contains(v) {
				t.Fatalf("%s estimate %v outside interval %+v for %s",
					est.Name(), v, iv, q.String(dict))
			}
		}
		if iv.Hi > 0 {
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d informative intervals; test is weak", checked)
	}
}

func TestIntervalZeroWidthUnderUniformity(t *testing.T) {
	// On the perfectly uniform document every decomposition choice gives
	// the same value: the interval must collapse to the exact count.
	tr, dict := uniformDoc(t, 6)
	sum := mineK(t, tr, 3)
	q := labeltree.MustParsePattern("root(a(b,c,d))", dict)
	iv := EstimateInterval(sum, q)
	if math.Abs(iv.Width()) > 1e-9 {
		t.Fatalf("interval not a point under uniformity: %+v", iv)
	}
	if math.Abs(iv.Lo-6) > 1e-9 {
		t.Fatalf("interval = %+v, want 6", iv)
	}
}

func TestIntervalZeroForImpossibleQueries(t *testing.T) {
	tr, dict := uniformDoc(t, 4)
	sum := mineK(t, tr, 3)
	q := labeltree.MustParsePattern("root(zzz(b,c,d))", dict)
	iv := EstimateInterval(sum, q)
	if iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("interval for impossible query = %+v", iv)
	}
}
