package estimate

import (
	"context"
	"sort"

	"treelattice/internal/labeltree"
)

// FixSized is the fix-sized decomposition estimator of Section 3.3: it
// covers the query with K-subtrees in preorder (Figure 5) and applies the
// telescoping product of Lemma 3.
type FixSized struct {
	Sum Store
}

// NewFixSized returns a fix-sized decomposition estimator over sum.
func NewFixSized(sum Store) *FixSized { return &FixSized{Sum: sum} }

// Name implements Estimator.
func (f *FixSized) Name() string { return "fix-sized" }

// Estimate implements Estimator.
func (f *FixSized) Estimate(q labeltree.Pattern) float64 {
	est, _ := f.estimate(nil, q)
	return est
}

// EstimateContext implements ContextEstimator; the pruned-lattice
// reconstruction recursion behind each cover term polls ctx at bounded
// intervals.
func (f *FixSized) EstimateContext(ctx context.Context, q labeltree.Pattern) (float64, error) {
	return f.estimate(ctx, q)
}

func (f *FixSized) estimate(ctx context.Context, q labeltree.Pattern) (float64, error) {
	// One engine across all cover terms: the memo is shared exactly as the
	// per-call memo map was, and the context poll counter spans the whole
	// telescoping product.
	e := engine{sum: f.Sum, memo: make(map[labeltree.Key]float64), ctx: ctx}
	if ctx != nil {
		// Fail fast: the direct-hit path below never polls.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	if c, ok := f.Sum.Count(q); ok {
		return float64(c), nil
	}
	// The preorder cover depends on node numbering; canonicalizing first
	// makes the estimate a function of the query's isomorphism class.
	q = q.Canonicalize()
	if q.Size() <= f.Sum.K() {
		// In range but missing: absent (count 0) for a complete lattice,
		// derivable for a pruned one.
		est := e.estimate(q, 0)
		if e.ctxErr != nil {
			return 0, e.ctxErr
		}
		return est, nil
	}
	cover := Cover(q, f.Sum.K())
	est := e.estimate(q.Subpattern(cover[0]), 0)
	if e.ctxErr != nil {
		return 0, e.ctxErr
	}
	if est == 0 {
		return 0, nil
	}
	for _, step := range cover[1:] {
		overlap := step[:len(step)-1] // all but the newly covered node
		num := e.estimate(q.Subpattern(step), 0)
		if num == 0 {
			if e.ctxErr != nil {
				return 0, e.ctxErr
			}
			return 0, nil
		}
		den := e.estimate(q.Subpattern(overlap), 0)
		if den == 0 {
			if e.ctxErr != nil {
				return 0, e.ctxErr
			}
			return 0, nil
		}
		est *= num / den
	}
	if e.ctxErr != nil {
		return 0, e.ctxErr
	}
	return est, nil
}

// Cover computes the fix-sized covering of Lemma 2: a sequence of
// n−k+1 node sets, each a connected k-subtree of q. The first is the
// preorder prefix of k nodes; every later set consists of one newly
// covered node (its last element) plus a connected (k−1)-subset of the
// already-covered nodes that contains the new node's parent. Panics if
// q has fewer than k nodes.
func Cover(q labeltree.Pattern, k int) [][]int32 {
	n := q.Size()
	if n < k {
		panic("estimate: Cover called with pattern smaller than k")
	}
	order := q.Preorder()
	covered := make(map[int32]bool, n)
	first := append([]int32(nil), order[:k]...)
	for _, v := range first {
		covered[v] = true
	}
	out := [][]int32{first}
	for _, v := range order[k:] {
		overlap := overlapSet(q, covered, q.Parent(v), k-1)
		step := append(overlap, v)
		out = append(out, step)
		covered[v] = true
	}
	return out
}

// overlapSet returns a connected subset of covered nodes of the given size
// containing anchor. It prefers the anchor's ancestor chain, then grows
// breadth-first over covered neighbors in deterministic order.
func overlapSet(q labeltree.Pattern, covered map[int32]bool, anchor int32, size int) []int32 {
	in := map[int32]bool{anchor: true}
	set := []int32{anchor}
	// Walk up ancestors first: they are always covered and connected.
	for at := q.Parent(anchor); at >= 0 && len(set) < size; at = q.Parent(at) {
		in[at] = true
		set = append(set, at)
	}
	// Grow over covered neighbors (children of set members, and parents,
	// which are already in) until the target size.
	for len(set) < size {
		var frontier []int32
		for _, u := range set {
			for _, c := range q.Children(u) {
				if covered[c] && !in[c] {
					frontier = append(frontier, c)
				}
			}
		}
		if len(frontier) == 0 {
			panic("estimate: covered region too small for overlap; invariant violated")
		}
		sort.Slice(frontier, func(a, b int) bool { return frontier[a] < frontier[b] })
		for _, c := range frontier {
			if len(set) == size {
				break
			}
			if !in[c] {
				in[c] = true
				set = append(set, c)
			}
		}
	}
	return set
}
