package estimate

import (
	"context"

	"treelattice/internal/labeltree"
)

// FixSized is the fix-sized decomposition estimator of Section 3.3: it
// covers the query with K-subtrees in preorder (Figure 5) and applies the
// telescoping product of Lemma 3.
type FixSized struct {
	Sum Store
	// Cache, when non-nil, shares decomposed sub-estimates across
	// queries; see Recursive.Cache and SubCache.
	Cache *SubCache
}

// NewFixSized returns a fix-sized decomposition estimator over sum.
func NewFixSized(sum Store) *FixSized { return &FixSized{Sum: sum} }

// Name implements Estimator.
func (f *FixSized) Name() string { return "fix-sized" }

// Estimate implements Estimator.
func (f *FixSized) Estimate(q labeltree.Pattern) float64 {
	est, _ := f.estimate(nil, q)
	return est
}

// EstimateContext implements ContextEstimator; the pruned-lattice
// reconstruction recursion behind each cover term polls ctx at bounded
// intervals.
func (f *FixSized) EstimateContext(ctx context.Context, q labeltree.Pattern) (float64, error) {
	return f.estimate(ctx, q)
}

func (f *FixSized) estimate(ctx context.Context, q labeltree.Pattern) (float64, error) {
	// One engine across all cover terms: the memo is shared exactly as the
	// per-call memo map was, and the context poll counter spans the whole
	// telescoping product.
	e := engine{sum: f.Sum, memo: make(map[labeltree.Key]float64), cache: f.Cache, ctx: ctx}
	if ctx != nil {
		// Fail fast: the direct-hit path below never polls.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	if c, ok := f.Sum.Count(q); ok {
		return float64(c), nil
	}
	// The preorder cover depends on node numbering; canonicalizing first
	// makes the estimate a function of the query's isomorphism class.
	q = q.Canonicalize()
	if q.Size() <= f.Sum.K() {
		// In range but missing: absent (count 0) for a complete lattice,
		// derivable for a pruned one.
		est := e.estimate(q, 0)
		if e.ctxErr != nil {
			return 0, e.ctxErr
		}
		return est, nil
	}
	cover := Cover(q, f.Sum.K())
	est := e.estimate(q.Subpattern(cover[0]), 0)
	if e.ctxErr != nil {
		return 0, e.ctxErr
	}
	if est == 0 {
		return 0, nil
	}
	for _, step := range cover[1:] {
		overlap := step[:len(step)-1] // all but the newly covered node
		num := e.estimate(q.Subpattern(step), 0)
		if num == 0 {
			if e.ctxErr != nil {
				return 0, e.ctxErr
			}
			return 0, nil
		}
		den := e.estimate(q.Subpattern(overlap), 0)
		if den == 0 {
			if e.ctxErr != nil {
				return 0, e.ctxErr
			}
			return 0, nil
		}
		est *= num / den
	}
	if e.ctxErr != nil {
		return 0, e.ctxErr
	}
	return est, nil
}

// Cover computes the fix-sized covering of Lemma 2: a sequence of
// n−k+1 node sets, each a connected k-subtree of q. The first is the
// preorder prefix of k nodes; every later set consists of one newly
// covered node (its last element) plus a connected (k−1)-subset of the
// already-covered nodes that contains the new node's parent. Panics if
// q has fewer than k nodes.
//
// Every step slice is a full-capacity span into one backing buffer, and
// membership tracking uses flat []bool scratch — the cover runs once per
// over-size estimate, and per-step maps dominated its cost.
func Cover(q labeltree.Pattern, k int) [][]int32 {
	n := q.Size()
	if n < k {
		panic("estimate: Cover called with pattern smaller than k")
	}
	// CSR child lists and preorder built locally: Pattern.Children and
	// Pattern.Preorder allocate per node.
	childPos := make([]int32, n+1)
	for i := int32(1); int(i) < n; i++ {
		childPos[q.Parent(i)+1]++
	}
	for i := 0; i < n; i++ {
		childPos[i+1] += childPos[i]
	}
	childIdx := make([]int32, n-1)
	next := make([]int32, n)
	copy(next, childPos[:n])
	for i := int32(1); int(i) < n; i++ {
		p := q.Parent(i)
		childIdx[next[p]] = i
		next[p]++
	}
	order := make([]int32, 0, n)
	stack := append(next[:0], 0) // next's storage is free now; reuse it
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		kids := childIdx[childPos[u]:childPos[u+1]]
		for j := len(kids) - 1; j >= 0; j-- {
			stack = append(stack, kids[j])
		}
	}

	// Exact-capacity backing buffer: k nodes for the first set plus k per
	// later step, so appends never reallocate and spans stay valid.
	buf := make([]int32, 0, (n-k+1)*k)
	out := make([][]int32, 0, n-k+1)
	covered := make([]bool, n)
	in := make([]bool, n)
	buf = append(buf, order[:k]...)
	first := buf[0:k:k]
	for _, v := range first {
		covered[v] = true
	}
	out = append(out, first)
	var frontier []int32
	for _, v := range order[k:] {
		start := len(buf)
		buf, frontier = appendOverlap(buf, q, childPos, childIdx, covered, in, q.Parent(v), k-1, frontier)
		buf = append(buf, v)
		out = append(out, buf[start:len(buf):len(buf)])
		covered[v] = true
	}
	return out
}

// appendOverlap appends to buf a connected subset of covered nodes of the
// given size containing anchor. It prefers the anchor's ancestor chain,
// then grows breadth-first over covered neighbors in deterministic
// (ascending node) order — the same order the map-based implementation
// produced. The in scratch is cleared of every touched entry on return;
// frontier is returned so its storage is reused across steps.
func appendOverlap(buf []int32, q labeltree.Pattern, childPos, childIdx []int32, covered, in []bool, anchor int32, size int, frontier []int32) ([]int32, []int32) {
	start := len(buf)
	in[anchor] = true
	buf = append(buf, anchor)
	// Walk up ancestors first: they are always covered and connected.
	for at := q.Parent(anchor); at >= 0 && len(buf)-start < size; at = q.Parent(at) {
		in[at] = true
		buf = append(buf, at)
	}
	// Grow over covered neighbors (children of set members, and parents,
	// which are already in) until the target size.
	for len(buf)-start < size {
		frontier = frontier[:0]
		for _, u := range buf[start:] {
			for _, c := range childIdx[childPos[u]:childPos[u+1]] {
				if covered[c] && !in[c] {
					frontier = append(frontier, c)
				}
			}
		}
		if len(frontier) == 0 {
			panic("estimate: covered region too small for overlap; invariant violated")
		}
		// Insertion sort ascending: frontiers are tiny and this avoids
		// sort.Slice's closure and interface costs.
		for a := 1; a < len(frontier); a++ {
			c := frontier[a]
			b := a
			for b > 0 && frontier[b-1] > c {
				frontier[b] = frontier[b-1]
				b--
			}
			frontier[b] = c
		}
		for _, c := range frontier {
			if len(buf)-start == size {
				break
			}
			if !in[c] {
				in[c] = true
				buf = append(buf, c)
			}
		}
	}
	for _, u := range buf[start:] {
		in[u] = false
	}
	return buf, frontier
}
