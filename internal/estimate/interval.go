package estimate

import (
	"math"

	"treelattice/internal/labeltree"
)

// Interval brackets a selectivity estimate by the spread of decomposition
// choices: Lo and Hi are the smallest and largest values obtainable by
// picking leaf pairs at every recursion level. This is the empirical
// error-spread the paper's future work gestures at — not a statistical
// bound on the true count, but a measure of how sensitive the estimate is
// to the decomposition choice: a wide interval means the conditional
// independence assumption is doing a lot of work.
type Interval struct {
	Lo, Hi float64
}

// Width is Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies in [Lo, Hi] (with a small relative
// tolerance for float accumulation).
func (iv Interval) Contains(v float64) bool {
	eps := 1e-9 * math.Max(1, math.Abs(v))
	return v >= iv.Lo-eps && v <= iv.Hi+eps
}

// EstimateInterval computes the decomposition-choice interval of q against
// sum. Patterns answered directly by the lattice get point intervals;
// reconstruction of pruned in-range patterns is deterministic and also a
// point.
func EstimateInterval(sum Store, q labeltree.Pattern) Interval {
	memo := make(map[labeltree.Key]Interval)
	scalar := make(map[labeltree.Key]float64)
	var rec func(p labeltree.Pattern, key labeltree.Key) Interval
	rec = func(p labeltree.Pattern, key labeltree.Key) Interval {
		if iv, ok := memo[key]; ok {
			return iv
		}
		if c, ok := sum.CountKey(key); ok {
			iv := Interval{float64(c), float64(c)}
			memo[key] = iv
			return iv
		}
		if p.Size() <= sum.K() {
			// Absent (complete summary) or deterministically
			// reconstructed (pruned summary): a point either way.
			v := lookup(sum, p, scalar)
			iv := Interval{v, v}
			memo[key] = iv
			return iv
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, d := range decompositions(p) {
			iv1, iv2, ivc := rec(d.t1, d.t1Key), rec(d.t2, d.t2Key), rec(d.common, d.commonKey)
			plo := 0.0
			if ivc.Hi > 0 {
				plo = iv1.Lo * iv2.Lo / ivc.Hi
			}
			var phi float64
			switch {
			case ivc.Lo > 0:
				phi = iv1.Hi * iv2.Hi / ivc.Lo
			case iv1.Hi > 0 && iv2.Hi > 0 && ivc.Hi > 0:
				// The common part may or may not occur across
				// decomposition choices; the ratio is unbounded above.
				phi = math.Inf(1)
			default:
				phi = 0
			}
			if plo < lo {
				lo = plo
			}
			if phi > hi {
				hi = phi
			}
		}
		iv := Interval{lo, hi}
		memo[key] = iv
		return iv
	}
	return rec(q, q.Key())
}
