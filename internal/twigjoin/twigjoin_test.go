package twigjoin

import (
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func parseDoc(t *testing.T, doc string) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

// bruteDescendant counts matches allowing every edge to be
// ancestor-descendant, by exhaustive injective assignment.
func bruteDescendant(x *Index, q Query) int64 {
	p := q.Pattern
	assigned := make([]int32, p.Size())
	used := make(map[int32]bool)
	var total int64
	var rec func(i int32)
	rec = func(i int32) {
		if int(i) == p.Size() {
			total++
			return
		}
		for _, v := range x.Stream(p.Label(i)) {
			if used[v] {
				continue
			}
			if par := p.Parent(i); par >= 0 {
				pv := assigned[par]
				if q.Axes[i] == Child {
					if x.tree.Parent(v) != pv {
						continue
					}
				} else if !x.IsAncestor(pv, v) {
					continue
				}
			} else if q.Axes[0] == Child && v != 0 {
				continue
			}
			used[v] = true
			assigned[i] = v
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return total
}

func TestIndexRegions(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b><c/></b><d/></a>`)
	x := NewIndex(tr)
	if x.Start(0) != 0 || x.End(0) != 4 {
		t.Fatalf("root region = [%d,%d)", x.Start(0), x.End(0))
	}
	b, _ := dict.Lookup("b")
	bn := x.Stream(b)[0]
	if x.Level(bn) != 1 {
		t.Fatalf("level(b) = %d", x.Level(bn))
	}
	c, _ := dict.Lookup("c")
	cn := x.Stream(c)[0]
	if !x.IsAncestor(0, cn) || !x.IsAncestor(bn, cn) || x.IsAncestor(cn, bn) {
		t.Fatal("IsAncestor wrong")
	}
	if got := x.DescendantsByLabel(0, c); len(got) != 1 || got[0] != cn {
		t.Fatalf("DescendantsByLabel = %v", got)
	}
	if got := x.ChildrenByLabel(0, b); len(got) != 1 || got[0] != bn {
		t.Fatalf("ChildrenByLabel = %v", got)
	}
}

func TestIndexStreamsInDocumentOrder(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(5))
	tr := treetest.RandomTree(rng, 200, alphabet, dict)
	x := NewIndex(tr)
	for _, l := range alphabet {
		s := x.Stream(l)
		for i := 1; i < len(s); i++ {
			if x.Start(s[i-1]) >= x.Start(s[i]) {
				t.Fatal("stream not in document order")
			}
		}
	}
}

func TestChildOnlyMatchesMatchCounter(t *testing.T) {
	// The execution engine and the DP counter must agree exactly on
	// child-axis queries (Definition 1).
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(21))
	positives := 0
	for trial := 0; trial < 200; trial++ {
		tr := treetest.RandomTree(rng, 2+rng.Intn(60), alphabet, dict)
		x := NewIndex(tr)
		counter := match.NewCounter(tr)
		p := treetest.RandomPattern(rng, 1+rng.Intn(5), alphabet)
		q := MustQuery(p, nil)
		want := counter.Count(p)
		if got := Count(x, q); got != want {
			t.Fatalf("trial %d: twigjoin=%d matcher=%d for %s", trial, got, want, p.String(dict))
		}
		if want > 0 {
			positives++
		}
	}
	if positives < 20 {
		t.Fatalf("only %d positive trials", positives)
	}
}

func TestDescendantAxisAgainstBrute(t *testing.T) {
	dict, alphabet := treetest.Alphabet(2)
	rng := rand.New(rand.NewSource(33))
	positives := 0
	for trial := 0; trial < 150; trial++ {
		tr := treetest.RandomTree(rng, 2+rng.Intn(30), alphabet, dict)
		x := NewIndex(tr)
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		axes := make([]Axis, p.Size())
		axes[0] = Descendant
		for i := 1; i < p.Size(); i++ {
			if rng.Intn(2) == 0 {
				axes[i] = Descendant
			}
		}
		q := MustQuery(p, axes)
		want := bruteDescendant(x, q)
		if got := Count(x, q); got != want {
			t.Fatalf("trial %d: engine=%d brute=%d for %s", trial, got, want, q.String(dict))
		}
		if want > 0 {
			positives++
		}
	}
	if positives < 15 {
		t.Fatalf("only %d positive trials", positives)
	}
}

func TestAnchoredRoot(t *testing.T) {
	tr, dict := parseDoc(t, `<a><a><b/></a></a>`)
	x := NewIndex(tr)
	// //a(b): matches both the inner a (child b) -> 1 match.
	free := MustParseQuery("//a(b)", dict)
	if got := Count(x, free); got != 1 {
		t.Fatalf("free count = %d, want 1", got)
	}
	// /a(//b): anchored at root, descendant b -> 1 match.
	anchored := MustParseQuery("/a(//b)", dict)
	if got := Count(x, anchored); got != 1 {
		t.Fatalf("anchored count = %d, want 1", got)
	}
	// /b: root is not labeled b.
	if got := Count(x, MustParseQuery("/b", dict)); got != 0 {
		t.Fatalf("mislabeled anchor count = %d", got)
	}
}

func TestEnumerateTuplesAreValid(t *testing.T) {
	dict, alphabet := treetest.Alphabet(2)
	rng := rand.New(rand.NewSource(3))
	tr := treetest.RandomTree(rng, 40, alphabet, dict)
	x := NewIndex(tr)
	p := treetest.RandomPattern(rng, 3, alphabet)
	q := MustQuery(p, nil)
	seen := 0
	Enumerate(x, q, nil, func(m Match) bool {
		seen++
		used := make(map[int32]bool)
		for i := int32(0); int(i) < p.Size(); i++ {
			v := m[i]
			if tr.Label(v) != p.Label(i) {
				t.Fatalf("label mismatch in tuple %v", m)
			}
			if used[v] {
				t.Fatalf("non-injective tuple %v", m)
			}
			used[v] = true
			if par := p.Parent(i); par >= 0 && tr.Parent(v) != m[par] {
				t.Fatalf("edge violated in tuple %v", m)
			}
		}
		return true
	})
	if int64(seen) != Count(x, q) {
		t.Fatal("emit count != Count")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	tr, dict := parseDoc(t, `<r><a/><a/><a/></r>`)
	x := NewIndex(tr)
	q := MustParseQuery("//a", dict)
	calls := 0
	st := Enumerate(x, q, nil, func(Match) bool {
		calls++
		return calls < 2
	})
	if calls != 2 || st.Matches != 2 {
		t.Fatalf("calls=%d matches=%d, want 2", calls, st.Matches)
	}
	if m := EstimatedFirstMatch(x, q); m == nil {
		t.Fatal("no first match")
	}
	if m := EstimatedFirstMatch(x, MustParseQuery("//zzz", dict)); m != nil {
		t.Fatal("first match for impossible query")
	}
}

func TestBindOrderValidation(t *testing.T) {
	tr, dict := parseDoc(t, `<r><a/></r>`)
	x := NewIndex(tr)
	q := MustParseQuery("//r(a)", dict)
	// Valid alternative order.
	if st := Enumerate(x, q, []int32{0, 1}, func(Match) bool { return true }); st.Matches != 1 {
		t.Fatal("valid order failed")
	}
	for _, bad := range [][]int32{{1, 0}, {0, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %v accepted", bad)
				}
			}()
			Enumerate(x, q, bad, func(Match) bool { return true })
		}()
	}
}

func TestQueryParseAndString(t *testing.T) {
	dict := labeltree.NewDict()
	for _, src := range []string{"//a", "/a", "//a(b,//c(d))", "/a(//b(c),d)"} {
		q := MustParseQuery(src, dict)
		round := MustParseQuery(q.String(dict), dict)
		if round.String(dict) != q.String(dict) {
			t.Fatalf("round trip of %q: %q vs %q", src, round.String(dict), q.String(dict))
		}
	}
	if _, err := ParseQuery("//a(", dict); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := ParseQuery("//a)b", dict); err == nil {
		t.Fatal("trailing input accepted")
	}
	q := MustParseQuery("//a(b,c)", dict)
	if !q.ChildOnly() {
		t.Fatal("child-only not detected")
	}
	if MustParseQuery("//a(//b)", dict).ChildOnly() {
		t.Fatal("descendant edge missed")
	}
}

func TestNewQueryValidation(t *testing.T) {
	dict := labeltree.NewDict()
	p := labeltree.MustParsePattern("a(b)", dict)
	if _, err := NewQuery(p, []Axis{Descendant}); err == nil {
		t.Fatal("wrong axes length accepted")
	}
}

func TestCountPathAgainstEnumerate(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		tr := treetest.RandomTree(rng, 2+rng.Intn(80), alphabet, dict)
		x := NewIndex(tr)
		k := 1 + rng.Intn(4)
		labels := make([]labeltree.LabelID, k)
		for i := range labels {
			labels[i] = alphabet[rng.Intn(len(alphabet))]
		}
		for _, axis := range []Axis{Child, Descendant} {
			p := labeltree.PathPattern(labels...)
			axes := make([]Axis, k)
			axes[0] = Descendant
			for i := 1; i < k; i++ {
				axes[i] = axis
			}
			want := Count(x, MustQuery(p, axes))
			if got := CountPath(x, labels, axis); got != want {
				t.Fatalf("trial %d axis %v: CountPath=%d enumerate=%d", trial, axis, got, want)
			}
		}
	}
}

func TestCountPathEmpty(t *testing.T) {
	tr, _ := parseDoc(t, `<a/>`)
	x := NewIndex(tr)
	if got := CountPath(x, nil, Descendant); got != 0 {
		t.Fatalf("empty path count = %d", got)
	}
}

func TestStatsCandidates(t *testing.T) {
	tr, dict := parseDoc(t, `<r><a><b/></a><a/><a/></r>`)
	x := NewIndex(tr)
	st := Enumerate(x, MustParseQuery("//a(b)", dict), nil, func(Match) bool { return true })
	if st.Matches != 1 {
		t.Fatalf("matches = %d", st.Matches)
	}
	if st.Candidates < 3 {
		t.Fatalf("candidates = %d, want >= 3 (all a nodes scanned)", st.Candidates)
	}
}
