package twigjoin

import (
	"math/rand"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

// bruteAnswers checks each candidate root by recursive existential
// satisfaction.
func bruteAnswers(x *Index, q Query) []int32 {
	p := q.Pattern
	children := make([][]int32, p.Size())
	for i := int32(1); int(i) < p.Size(); i++ {
		children[p.Parent(i)] = append(children[p.Parent(i)], i)
	}
	var satisfies func(v, qi int32) bool
	satisfies = func(v, qi int32) bool {
		if x.tree.Label(v) != p.Label(qi) {
			return false
		}
		for _, qc := range children[qi] {
			var pool []int32
			if q.Axes[qc] == Child {
				pool = x.tree.Children(v)
			} else {
				pool = x.DescendantsByLabel(v, p.Label(qc))
			}
			found := false
			for _, w := range pool {
				if satisfies(w, qc) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	var out []int32
	if q.Axes[0] == Child {
		if satisfies(0, 0) {
			out = append(out, 0)
		}
		return out
	}
	for _, v := range x.Stream(p.RootLabel()) {
		if satisfies(v, 0) {
			out = append(out, v)
		}
	}
	return out
}

func TestAnswersAgainstBrute(t *testing.T) {
	dict, alphabet := treetest.Alphabet(2)
	rng := rand.New(rand.NewSource(71))
	nonEmpty := 0
	for trial := 0; trial < 200; trial++ {
		tr := treetest.RandomTree(rng, 2+rng.Intn(50), alphabet, dict)
		x := NewIndex(tr)
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		axes := make([]Axis, p.Size())
		axes[0] = Descendant
		for i := 1; i < p.Size(); i++ {
			if rng.Intn(2) == 0 {
				axes[i] = Descendant
			}
		}
		q := MustQuery(p, axes)
		want := bruteAnswers(x, q)
		got := Answers(x, q)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d answers, want %d for %s", trial, len(got), len(want), q.String(dict))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: answer %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 20 {
		t.Fatalf("only %d non-empty trials", nonEmpty)
	}
}

func TestAnswersExistentialVsInjective(t *testing.T) {
	// a(b,b) on an a with a single b child: existential answers include
	// it, injective matching does not.
	tr, dict := parseDoc(t, `<a><b/></a>`)
	x := NewIndex(tr)
	q := MustParseQuery("//a(b,b)", dict)
	if got := CountAnswers(x, q); got != 1 {
		t.Fatalf("CountAnswers = %d, want 1 (existential)", got)
	}
	if got := Count(x, q); got != 0 {
		t.Fatalf("Count = %d, want 0 (injective)", got)
	}
}

func TestAnswersAnchoredRoot(t *testing.T) {
	tr, dict := parseDoc(t, `<a><a><b/></a></a>`)
	x := NewIndex(tr)
	if got := CountAnswers(x, MustParseQuery("/a(//b)", dict)); got != 1 {
		t.Fatalf("anchored = %d, want 1", got)
	}
	if got := CountAnswers(x, MustParseQuery("/b", dict)); got != 0 {
		t.Fatalf("mislabeled anchor = %d", got)
	}
	// Unanchored //a(b): only the inner a has a b child.
	if got := CountAnswers(x, MustParseQuery("//a(b)", dict)); got != 1 {
		t.Fatalf("unanchored = %d, want 1", got)
	}
}

func TestAnswersDocumentOrder(t *testing.T) {
	tr, dict := parseDoc(t, `<r><a><b/></a><c/><a><b/></a></r>`)
	x := NewIndex(tr)
	got := Answers(x, MustParseQuery("//a(b)", dict))
	if len(got) != 2 || x.Start(got[0]) >= x.Start(got[1]) {
		t.Fatalf("answers not in document order: %v", got)
	}
}

func TestAnswersSizeGuard(t *testing.T) {
	dict := labeltree.NewDict()
	labels := make([]labeltree.LabelID, 65)
	parents := make([]int32, 65)
	parents[0] = -1
	for i := range labels {
		labels[i] = dict.Intern("x")
		if i > 0 {
			parents[i] = 0
		}
	}
	big := labeltree.MustPattern(labels, parents)
	tr, _ := parseDoc(t, `<x/>`)
	x := NewIndex(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized query accepted")
		}
	}()
	Answers(x, MustQuery(big, nil))
}
