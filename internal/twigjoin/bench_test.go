package twigjoin

import (
	"math/rand"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

// scanCount evaluates q without the region index: candidate lists come
// from linear child-list walks (child axis) and full-subtree DFS walks
// (descendant axis and the root stream) — the access pattern the
// label-region index replaces. Used as the BenchmarkTwigExecIndexed
// baseline.
func scanCount(tr *labeltree.Tree, q Query) int64 {
	p := q.Pattern
	assigned := make([]int32, p.Size())
	used := make(map[int32]bool, p.Size())
	var matches int64
	var subtree func(n int32, label labeltree.LabelID, out []int32) []int32
	subtree = func(n int32, label labeltree.LabelID, out []int32) []int32 {
		for _, c := range tr.Children(n) {
			if tr.Label(c) == label {
				out = append(out, c)
			}
			out = subtree(c, label, out)
		}
		return out
	}
	var rec func(i int32)
	rec = func(i int32) {
		if int(i) == p.Size() {
			matches++
			return
		}
		label := p.Label(i)
		var candidates []int32
		if par := p.Parent(i); par < 0 {
			if q.Axes[0] == Child {
				if tr.Label(0) == label {
					candidates = []int32{0}
				}
			} else {
				for n := int32(0); int(n) < tr.Size(); n++ {
					if tr.Label(n) == label {
						candidates = append(candidates, n)
					}
				}
			}
		} else {
			pv := assigned[par]
			if q.Axes[i] == Child {
				for _, c := range tr.Children(pv) {
					if tr.Label(c) == label {
						candidates = append(candidates, c)
					}
				}
			} else {
				candidates = subtree(pv, label, nil)
			}
		}
		for _, v := range candidates {
			if used[v] {
				continue
			}
			used[v] = true
			assigned[i] = v
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return matches
}

// BenchmarkTwigExecIndexed compares the region-indexed executor against
// the unindexed tree-walk scan on the same query and document.
func BenchmarkTwigExecIndexed(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	dict, labels := treetest.Alphabet(6)
	tr := treetest.RandomTree(rng, 20000, labels, dict)
	q := MustParseQuery("//l0(l1,//l2(l3))", dict)
	x := NewIndex(tr)
	want := Count(x, q)
	if got := scanCount(tr, q); got != want {
		b.Fatalf("scan count %d != indexed count %d", got, want)
	}

	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if Count(x, q) != want {
				b.Fatal("count mismatch")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if scanCount(tr, q) != want {
				b.Fatal("count mismatch")
			}
		}
	})
}
