package twigjoin

import (
	"context"
	"errors"

	"treelattice/internal/labeltree"
)

// ErrNodeBudget reports an execution stopped because it exhausted its
// candidate-visit budget. Sampling estimators branch on it with errors.Is
// to distinguish "ran out of budget" from "the context was canceled".
var ErrNodeBudget = errors.New("twigjoin: node budget exhausted")

// Match is one query answer: Match[i] is the data node bound to query
// node i. The slice passed to emit callbacks is reused between calls;
// copy it to retain.
type Match []int32

// Stats reports the work an execution performed — the planner's cost
// signal.
type Stats struct {
	// Candidates is the number of data nodes considered for binding.
	Candidates int64
	// Matches is the number of tuples produced.
	Matches int64
}

// Enumerate streams every match of q to emit in a deterministic order,
// binding query nodes in the given bind order (nil = stored numbering,
// which is parent-before-child). It stops early if emit returns false.
func Enumerate(x *Index, q Query, bindOrder []int32, emit func(Match) bool) Stats {
	if bindOrder == nil {
		bindOrder = make([]int32, q.Pattern.Size())
		for i := range bindOrder {
			bindOrder[i] = int32(i)
		}
	}
	e := executor{x: x, q: q, order: validateOrder(q.Pattern, bindOrder)}
	e.assigned = make([]int32, q.Pattern.Size())
	e.used = make(map[int32]bool, q.Pattern.Size())
	e.run(0, emit)
	return e.stats
}

// Count counts all matches of q.
func Count(x *Index, q Query) int64 {
	st := Enumerate(x, q, nil, func(Match) bool { return true })
	return st.Matches
}

// budgetPollInterval is how many candidate visits pass between context
// polls in budgeted executions. Each visit does at worst a map probe and
// a recursion step, so 256 visits bound the post-cancellation overrun to
// well under a millisecond.
const budgetPollInterval = 256

// CountAnchoredContext counts the matches of q whose root binds exactly
// to the data node root, under a cooperative budget: the execution polls
// ctx every budgetPollInterval candidate visits, and when nodeBudget is
// non-nil it is decremented per candidate visit and the execution stops
// with ErrNodeBudget once it reaches zero. The budget is shared across
// calls through the pointer, so a sampler can spread one budget over many
// probes. A root whose label does not match q's root counts zero matches
// without consuming budget.
func CountAnchoredContext(ctx context.Context, x *Index, q Query, root int32, nodeBudget *int64) (int64, error) {
	// Fail fast: the periodic poll below only fires every
	// budgetPollInterval visits.
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if x.tree.Label(root) != q.Pattern.Label(0) {
		return 0, nil
	}
	bindOrder := make([]int32, q.Pattern.Size())
	for i := range bindOrder {
		bindOrder[i] = int32(i)
	}
	e := executor{x: x, q: q, order: validateOrder(q.Pattern, bindOrder), ctx: ctx, budget: nodeBudget}
	e.assigned = make([]int32, q.Pattern.Size())
	e.used = make(map[int32]bool, q.Pattern.Size())
	e.assigned[0] = root
	e.used[root] = true
	e.run(1, func(Match) bool { return true })
	return e.stats.Matches, e.err
}

// validateOrder checks that order is a permutation binding parents before
// children and returns it.
func validateOrder(p labeltree.Pattern, order []int32) []int32 {
	if len(order) != p.Size() {
		panic("twigjoin: bind order has wrong length")
	}
	pos := make([]int, p.Size())
	for i := range pos {
		pos[i] = -1
	}
	for at, n := range order {
		if n < 0 || int(n) >= p.Size() || pos[n] != -1 {
			panic("twigjoin: bind order is not a permutation")
		}
		pos[n] = at
	}
	for i := int32(1); int(i) < p.Size(); i++ {
		if pos[i] < pos[p.Parent(i)] {
			panic("twigjoin: bind order binds a child before its parent")
		}
	}
	return order
}

type executor struct {
	x        *Index
	q        Query
	order    []int32
	assigned []int32
	used     map[int32]bool
	stats    Stats
	stopped  bool

	// ctx and budget, when set, make the execution cooperative: ctx is
	// polled every budgetPollInterval candidate visits, and budget is
	// decremented per visit. err latches the stop reason.
	ctx    context.Context
	budget *int64
	err    error
}

func (e *executor) run(depth int, emit func(Match) bool) {
	if e.stopped {
		return
	}
	if depth == len(e.order) {
		e.stats.Matches++
		if !emit(Match(e.assigned)) {
			e.stopped = true
		}
		return
	}
	qn := e.order[depth]
	label := e.q.Pattern.Label(qn)
	var candidates []int32
	if par := e.q.Pattern.Parent(qn); par < 0 {
		if e.q.Axes[qn] == Child {
			// Anchored at the document root.
			if e.x.tree.Label(0) == label {
				candidates = []int32{0}
			}
		} else {
			candidates = e.x.Stream(label)
		}
	} else {
		pv := e.assigned[par]
		if e.q.Axes[qn] == Child {
			candidates = e.x.ChildrenByLabel(pv, label)
		} else {
			candidates = e.x.DescendantsByLabel(pv, label)
		}
	}
	for _, v := range candidates {
		e.stats.Candidates++
		if e.budget != nil {
			if *e.budget <= 0 {
				e.err = ErrNodeBudget
				e.stopped = true
				return
			}
			*e.budget--
		}
		if e.ctx != nil && e.stats.Candidates%budgetPollInterval == 0 {
			if err := e.ctx.Err(); err != nil {
				e.err = err
				e.stopped = true
				return
			}
		}
		if e.used[v] {
			continue
		}
		e.used[v] = true
		e.assigned[qn] = v
		e.run(depth+1, emit)
		delete(e.used, v)
		if e.stopped {
			return
		}
	}
}

// EstimatedFirstMatch returns the first match in the deterministic order,
// or nil if the query has none; a convenience for EXISTS-style checks.
func EstimatedFirstMatch(x *Index, q Query) Match {
	var got Match
	Enumerate(x, q, nil, func(m Match) bool {
		got = append(Match(nil), m...)
		return false
	})
	return got
}
