package twigjoin

import "treelattice/internal/labeltree"

// Match is one query answer: Match[i] is the data node bound to query
// node i. The slice passed to emit callbacks is reused between calls;
// copy it to retain.
type Match []int32

// Stats reports the work an execution performed — the planner's cost
// signal.
type Stats struct {
	// Candidates is the number of data nodes considered for binding.
	Candidates int64
	// Matches is the number of tuples produced.
	Matches int64
}

// Enumerate streams every match of q to emit in a deterministic order,
// binding query nodes in the given bind order (nil = stored numbering,
// which is parent-before-child). It stops early if emit returns false.
func Enumerate(x *Index, q Query, bindOrder []int32, emit func(Match) bool) Stats {
	if bindOrder == nil {
		bindOrder = make([]int32, q.Pattern.Size())
		for i := range bindOrder {
			bindOrder[i] = int32(i)
		}
	}
	e := executor{x: x, q: q, order: validateOrder(q.Pattern, bindOrder)}
	e.assigned = make([]int32, q.Pattern.Size())
	e.used = make(map[int32]bool, q.Pattern.Size())
	e.run(0, emit)
	return e.stats
}

// Count counts all matches of q.
func Count(x *Index, q Query) int64 {
	st := Enumerate(x, q, nil, func(Match) bool { return true })
	return st.Matches
}

// validateOrder checks that order is a permutation binding parents before
// children and returns it.
func validateOrder(p labeltree.Pattern, order []int32) []int32 {
	if len(order) != p.Size() {
		panic("twigjoin: bind order has wrong length")
	}
	pos := make([]int, p.Size())
	for i := range pos {
		pos[i] = -1
	}
	for at, n := range order {
		if n < 0 || int(n) >= p.Size() || pos[n] != -1 {
			panic("twigjoin: bind order is not a permutation")
		}
		pos[n] = at
	}
	for i := int32(1); int(i) < p.Size(); i++ {
		if pos[i] < pos[p.Parent(i)] {
			panic("twigjoin: bind order binds a child before its parent")
		}
	}
	return order
}

type executor struct {
	x        *Index
	q        Query
	order    []int32
	assigned []int32
	used     map[int32]bool
	stats    Stats
	stopped  bool
}

func (e *executor) run(depth int, emit func(Match) bool) {
	if e.stopped {
		return
	}
	if depth == len(e.order) {
		e.stats.Matches++
		if !emit(Match(e.assigned)) {
			e.stopped = true
		}
		return
	}
	qn := e.order[depth]
	label := e.q.Pattern.Label(qn)
	var candidates []int32
	if par := e.q.Pattern.Parent(qn); par < 0 {
		if e.q.Axes[qn] == Child {
			// Anchored at the document root.
			if e.x.tree.Label(0) == label {
				candidates = []int32{0}
			}
		} else {
			candidates = e.x.Stream(label)
		}
	} else {
		pv := e.assigned[par]
		if e.q.Axes[qn] == Child {
			candidates = e.x.ChildrenByLabel(pv, label)
		} else {
			candidates = e.x.DescendantsByLabel(pv, label)
		}
	}
	for _, v := range candidates {
		e.stats.Candidates++
		if e.used[v] {
			continue
		}
		e.used[v] = true
		e.assigned[qn] = v
		e.run(depth+1, emit)
		delete(e.used, v)
		if e.stopped {
			return
		}
	}
}

// EstimatedFirstMatch returns the first match in the deterministic order,
// or nil if the query has none; a convenience for EXISTS-style checks.
func EstimatedFirstMatch(x *Index, q Query) Match {
	var got Match
	Enumerate(x, q, nil, func(m Match) bool {
		got = append(Match(nil), m...)
		return false
	})
	return got
}
