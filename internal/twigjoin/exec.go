package twigjoin

import (
	"context"
	"errors"
	"sync"

	"treelattice/internal/labeltree"
)

// ErrNodeBudget reports an execution stopped because it exhausted its
// candidate-visit budget. Sampling estimators branch on it with errors.Is
// to distinguish "ran out of budget" from "the context was canceled".
var ErrNodeBudget = errors.New("twigjoin: node budget exhausted")

// Match is one query answer: Match[i] is the data node bound to query
// node i. The slice passed to emit callbacks is reused between calls;
// copy it to retain.
type Match []int32

// Stats reports the work an execution performed — the planner's cost
// signal.
type Stats struct {
	// Candidates is the number of data nodes considered for binding.
	Candidates int64
	// Matches is the number of tuples produced.
	Matches int64
}

// execScratch is the per-execution working set, pooled so steady-state
// executions allocate nothing: the bind order and assignment slices are
// sized to the query, the used bitmap to the data tree (cleared lazily
// through usedStack, so reuse costs O(marks), not O(tree)).
type execScratch struct {
	order     []int32
	assigned  []int32
	pos       []int32 // validateOrder scratch
	used      []bool  // indexed by data node id
	usedStack []int32 // nodes currently marked, stack-disciplined
}

var scratchPool = sync.Pool{New: func() any { return new(execScratch) }}

func acquireScratch(querySize, treeSize int) *execScratch {
	s := scratchPool.Get().(*execScratch)
	if cap(s.order) < querySize {
		s.order = make([]int32, querySize)
		s.assigned = make([]int32, querySize)
		s.pos = make([]int32, querySize)
	}
	s.order = s.order[:querySize]
	s.assigned = s.assigned[:querySize]
	s.pos = s.pos[:querySize]
	if cap(s.used) < treeSize {
		s.used = make([]bool, treeSize)
	}
	s.used = s.used[:treeSize]
	return s
}

func releaseScratch(s *execScratch) {
	// Executions unmark on unwind even when stopping early, so only
	// externally anchored marks remain; clear whatever is left.
	for _, v := range s.usedStack {
		s.used[v] = false
	}
	s.usedStack = s.usedStack[:0]
	scratchPool.Put(s)
}

// Enumerate streams every match of q to emit in a deterministic order,
// binding query nodes in the given bind order (nil = stored numbering,
// which is parent-before-child). It stops early if emit returns false.
func Enumerate(x *Index, q Query, bindOrder []int32, emit func(Match) bool) Stats {
	st, _ := EnumerateContext(nil, x, q, bindOrder, nil, emit)
	return st
}

// EnumerateContext is Enumerate under cooperative control: ctx (when
// non-nil) is polled every budgetPollInterval candidate visits, and
// nodeBudget (when non-nil) is decremented per candidate visit, stopping
// the execution with ErrNodeBudget at zero. The budget is shared across
// calls through the pointer, so one budget can cover a whole corpus scan.
// The stats accumulated up to the stop are returned alongside the error,
// so a truncated execution still reports the work it did.
func EnumerateContext(ctx context.Context, x *Index, q Query, bindOrder []int32, nodeBudget *int64, emit func(Match) bool) (Stats, error) {
	if ctx != nil {
		// Fail fast: the periodic poll below only fires every
		// budgetPollInterval visits.
		if err := ctx.Err(); err != nil {
			return Stats{}, err
		}
	}
	scratch := acquireScratch(q.Pattern.Size(), x.tree.Size())
	defer releaseScratch(scratch)
	if bindOrder == nil {
		for i := range scratch.order {
			scratch.order[i] = int32(i)
		}
	} else {
		copy(scratch.order, bindOrder)
	}
	validateOrder(q.Pattern, scratch.order, scratch.pos)
	e := executor{x: x, q: q, order: scratch.order, scratch: scratch, ctx: ctx, budget: nodeBudget}
	e.run(0, emit)
	return e.stats, e.err
}

// Count counts all matches of q.
func Count(x *Index, q Query) int64 {
	st := Enumerate(x, q, nil, func(Match) bool { return true })
	return st.Matches
}

// CountContext counts all matches of q under cooperative cancellation and
// an optional shared node budget, returning the partial count with the
// stop reason when truncated.
func CountContext(ctx context.Context, x *Index, q Query, bindOrder []int32, nodeBudget *int64) (Stats, error) {
	return EnumerateContext(ctx, x, q, bindOrder, nodeBudget, func(Match) bool { return true })
}

// budgetPollInterval is how many candidate visits pass between context
// polls in budgeted executions. Each visit does at worst a bitmap probe
// and a recursion step, so 256 visits bound the post-cancellation overrun
// to well under a millisecond.
const budgetPollInterval = 256

// CountAnchoredContext counts the matches of q whose root binds exactly
// to the data node root, under a cooperative budget: the execution polls
// ctx every budgetPollInterval candidate visits, and when nodeBudget is
// non-nil it is decremented per candidate visit and the execution stops
// with ErrNodeBudget once it reaches zero. The budget is shared across
// calls through the pointer, so a sampler can spread one budget over many
// probes. A root whose label does not match q's root counts zero matches
// without consuming budget.
func CountAnchoredContext(ctx context.Context, x *Index, q Query, root int32, nodeBudget *int64) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if x.tree.Label(root) != q.Pattern.Label(0) {
		return 0, nil
	}
	scratch := acquireScratch(q.Pattern.Size(), x.tree.Size())
	defer releaseScratch(scratch)
	for i := range scratch.order {
		scratch.order[i] = int32(i)
	}
	e := executor{x: x, q: q, order: scratch.order, scratch: scratch, ctx: ctx, budget: nodeBudget}
	scratch.assigned[0] = root
	e.mark(root)
	e.run(1, func(Match) bool { return true })
	return e.stats.Matches, e.err
}

// validateOrder checks that order is a permutation binding parents before
// children, using pos as scratch.
func validateOrder(p labeltree.Pattern, order []int32, pos []int32) {
	if len(order) != p.Size() {
		panic("twigjoin: bind order has wrong length")
	}
	for i := range pos {
		pos[i] = -1
	}
	for at, n := range order {
		if n < 0 || int(n) >= p.Size() || pos[n] != -1 {
			panic("twigjoin: bind order is not a permutation")
		}
		pos[n] = int32(at)
	}
	for i := int32(1); int(i) < p.Size(); i++ {
		if pos[i] < pos[p.Parent(i)] {
			panic("twigjoin: bind order binds a child before its parent")
		}
	}
}

type executor struct {
	x       *Index
	q       Query
	order   []int32
	scratch *execScratch
	stats   Stats
	stopped bool

	// ctx and budget, when set, make the execution cooperative: ctx is
	// polled every budgetPollInterval candidate visits, and budget is
	// decremented per visit. err latches the stop reason.
	ctx    context.Context
	budget *int64
	err    error
}

func (e *executor) mark(v int32) {
	e.scratch.used[v] = true
	e.scratch.usedStack = append(e.scratch.usedStack, v)
}

func (e *executor) unmark(v int32) {
	e.scratch.used[v] = false
	e.scratch.usedStack = e.scratch.usedStack[:len(e.scratch.usedStack)-1]
}

func (e *executor) run(depth int, emit func(Match) bool) {
	if e.stopped {
		return
	}
	if depth == len(e.order) {
		e.stats.Matches++
		if !emit(Match(e.scratch.assigned)) {
			e.stopped = true
		}
		return
	}
	qn := e.order[depth]
	label := e.q.Pattern.Label(qn)
	var candidates []int32
	if par := e.q.Pattern.Parent(qn); par < 0 {
		if e.q.Axes[qn] == Child {
			// Anchored at the document root.
			if e.x.tree.Label(0) == label {
				candidates = e.x.rootSelf(label)
			}
		} else {
			candidates = e.x.Stream(label)
		}
	} else {
		pv := e.scratch.assigned[par]
		if e.q.Axes[qn] == Child {
			candidates = e.x.ChildrenByLabel(pv, label)
		} else {
			// Descendant step: region-containment range probe within
			// (start(pv), end(pv)).
			candidates = e.x.DescendantsByLabel(pv, label)
		}
	}
	for _, v := range candidates {
		e.stats.Candidates++
		if e.budget != nil {
			if *e.budget <= 0 {
				e.err = ErrNodeBudget
				e.stopped = true
				return
			}
			*e.budget--
		}
		if e.ctx != nil && e.stats.Candidates%budgetPollInterval == 0 {
			if err := e.ctx.Err(); err != nil {
				e.err = err
				e.stopped = true
				return
			}
		}
		if e.scratch.used[v] {
			continue
		}
		e.mark(v)
		e.scratch.assigned[qn] = v
		e.run(depth+1, emit)
		e.unmark(v)
		if e.stopped {
			return
		}
	}
}

// rootSelf returns the one-element candidate list holding the document
// root, without allocating: the root is always the first entry of its
// label's region list.
func (x *Index) rootSelf(label labeltree.LabelID) []int32 {
	r := x.regions[label]
	if r == nil || len(r.nodes) == 0 || r.nodes[0] != 0 {
		return nil
	}
	return r.nodes[:1]
}

// EstimatedFirstMatch returns the first match in the deterministic order,
// or nil if the query has none; a convenience for EXISTS-style checks.
func EstimatedFirstMatch(x *Index, q Query) Match {
	var got Match
	Enumerate(x, q, nil, func(m Match) bool {
		got = append(Match(nil), m...)
		return false
	})
	return got
}
