package twigjoin

import "treelattice/internal/labeltree"

// CountPath counts matches of a pure path query q1 ▸ q2 ▸ … ▸ qk where ▸
// is the given axis for every step, without enumerating tuples — the
// PathStack-style linear-merge counting of Bruno et al., realized as a
// single DFS carrying per-level accumulators. Runs in O(n·k) time
// regardless of the (possibly enormous) number of path solutions.
//
// For the Descendant axis, acc[j] maintains the number of partial matches
// of the prefix q1…qj that end at an ancestor of the current DFS
// position; a node matching qj+1 extends all of them at once. For the
// Child axis the accumulator is per-edge rather than per-root-path.
func CountPath(x *Index, labels []labeltree.LabelID, axis Axis) int64 {
	k := len(labels)
	if k == 0 {
		return 0
	}
	var total int64

	switch axis {
	case Descendant:
		acc := make([]int64, k+1) // acc[j]: prefix matches of length j on the root path
		type delta struct {
			j int
			f int64
		}
		var dfs func(v int32)
		dfs = func(v int32) {
			// Compute this node's contribution per level, high to low so
			// a node matching several levels does not feed itself.
			var touched []delta
			for j := k; j >= 1; j-- {
				if x.tree.Label(v) != labels[j-1] {
					continue
				}
				var f int64
				if j == 1 {
					f = 1
				} else {
					f = acc[j-1]
				}
				if f == 0 {
					continue
				}
				if j == k {
					total += f
				}
				touched = append(touched, delta{j, f})
				acc[j] += f
			}
			for _, c := range x.tree.Children(v) {
				dfs(c)
			}
			for _, d := range touched {
				acc[d.j] -= d.f
			}
		}
		dfs(0)

	case Child:
		// f[v][j] depends only on the parent: carry the parent's vector
		// down the DFS.
		var dfs func(v int32, parentF []int64)
		dfs = func(v int32, parentF []int64) {
			f := make([]int64, k+1)
			for j := 1; j <= k; j++ {
				if x.tree.Label(v) != labels[j-1] {
					continue
				}
				if j == 1 {
					f[1] = 1
				} else if parentF != nil {
					f[j] = parentF[j-1]
				}
				if j == k {
					total += f[j]
				}
			}
			for _, c := range x.tree.Children(v) {
				dfs(c, f)
			}
		}
		dfs(0, nil)
	}
	return total
}
