package twigjoin

import (
	"context"
	"errors"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/xmlparse"
)

func anchoredFixture(t *testing.T) (*Index, Query, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	doc := `<r>` + strings.Repeat(`<a><b/><b/><c/></a>`, 6) + `<a><c/></a></r>`
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewIndex(tr), MustParseQuery("//a(b,c)", dict), dict
}

// TestAnchoredCountsPartitionTotal: anchoring the root at each occurrence
// of its label partitions the match set, so the anchored counts sum to
// the unanchored Count.
func TestAnchoredCountsPartitionTotal(t *testing.T) {
	x, q, _ := anchoredFixture(t)
	want := Count(x, q)
	if want == 0 {
		t.Fatal("fixture query should match")
	}
	var got int64
	for _, root := range x.Stream(q.Pattern.Label(0)) {
		n, err := CountAnchoredContext(context.Background(), x, q, root, nil)
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	if got != want {
		t.Fatalf("anchored sum %d != Count %d", got, want)
	}
}

// TestAnchoredRootLabelMismatch: anchoring at a node of the wrong label
// counts zero without consuming any budget.
func TestAnchoredRootLabelMismatch(t *testing.T) {
	x, q, dict := anchoredFixture(t)
	b, _ := dict.Lookup("b")
	budget := int64(1)
	n, err := CountAnchoredContext(context.Background(), x, q, x.Stream(b)[0], &budget)
	if err != nil || n != 0 {
		t.Fatalf("got (%d, %v), want (0, nil)", n, err)
	}
	if budget != 1 {
		t.Fatalf("mismatched root consumed budget: %d left", budget)
	}
}

// TestAnchoredBudgetShared: the budget pointer is decremented across
// calls, and an exhausted budget stops the execution with ErrNodeBudget.
func TestAnchoredBudgetShared(t *testing.T) {
	x, q, _ := anchoredFixture(t)
	roots := x.Stream(q.Pattern.Label(0))
	budget := int64(4)
	if _, err := CountAnchoredContext(context.Background(), x, q, roots[0], &budget); err != nil {
		t.Fatal(err)
	}
	if budget >= 4 {
		t.Fatalf("first call consumed no budget: %d left", budget)
	}
	// Drain the remainder: eventually a call must fail with ErrNodeBudget.
	var sawExhausted bool
	for _, root := range roots {
		if _, err := CountAnchoredContext(context.Background(), x, q, root, &budget); err != nil {
			if !errors.Is(err, ErrNodeBudget) {
				t.Fatalf("unexpected error %v", err)
			}
			sawExhausted = true
			break
		}
	}
	if !sawExhausted {
		t.Fatal("4-node budget survived every probe of a query needing 3+ visits each")
	}
}

// TestAnchoredCancellation: a canceled context fails fast, before any
// execution work.
func TestAnchoredCancellation(t *testing.T) {
	x, q, _ := anchoredFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	root := x.Stream(q.Pattern.Label(0))[0]
	if _, err := CountAnchoredContext(ctx, x, q, root, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
