package twigjoin

import (
	"sync"

	"treelattice/internal/labeltree"
)

// Indexer caches one Index per document, keyed by tree identity. Trees
// are immutable once built, and ingest epochs share unchanged tree
// pointers across snapshots, so a corpus-lifetime Indexer builds each
// document's region index exactly once no matter how many epochs or
// requests touch it. Safe for concurrent use; a lost build race costs one
// duplicate build, never an inconsistent index.
type Indexer struct {
	mu sync.RWMutex
	m  map[*labeltree.Tree]*Index
}

// NewIndexer returns an empty cache.
func NewIndexer() *Indexer {
	return &Indexer{m: make(map[*labeltree.Tree]*Index)}
}

// For returns the cached index for t, building it on first use.
func (ix *Indexer) For(t *labeltree.Tree) *Index {
	ix.mu.RLock()
	idx := ix.m[t]
	ix.mu.RUnlock()
	if idx != nil {
		return idx
	}
	idx = NewIndex(t)
	ix.mu.Lock()
	if prior := ix.m[t]; prior != nil {
		idx = prior
	} else {
		ix.m[t] = idx
	}
	ix.mu.Unlock()
	return idx
}

// ForAll returns indexes positionally aligned with trees.
func (ix *Indexer) ForAll(trees []*labeltree.Tree) []*Index {
	out := make([]*Index, len(trees))
	for i, t := range trees {
		out[i] = ix.For(t)
	}
	return out
}

// Len reports how many documents are indexed.
func (ix *Indexer) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.m)
}
