package twigjoin

import "fmt"

// MaxAnswerQueryNodes bounds query size for the answer-selection DP,
// which packs query nodes into a 64-bit satisfaction mask.
const MaxAnswerQueryNodes = 64

// Answers returns the data nodes that can root a satisfaction of q under
// XPath's existential semantics: a node answers the query if, for every
// query child, *some* node in the right axis relation satisfies that
// child's subquery. Unlike Enumerate/Count — which count 1-1 embeddings
// per the paper's Definition 1 — answers do not require distinct sibling
// witnesses: a(b,b) is answered by an element with a single b child.
// Results are in document order. Runs in O(n·|q|) time.
func Answers(x *Index, q Query) []int32 {
	n := q.Pattern.Size()
	if n > MaxAnswerQueryNodes {
		panic(fmt.Sprintf("twigjoin: query has %d nodes; Answers supports at most %d", n, MaxAnswerQueryNodes))
	}
	children := make([][]int32, n)
	for i := int32(1); int(i) < n; i++ {
		children[q.Pattern.Parent(i)] = append(children[q.Pattern.Parent(i)], i)
	}
	t := x.tree
	sat := make([]uint64, t.Size())     // query nodes satisfied at this data node
	below := make([]uint64, t.Size())   // satisfied at some strict descendant
	byChild := make([]uint64, t.Size()) // satisfied at some child

	// Post-order over the data tree (children before parents): node
	// indices are parent-before-child, so descending order works.
	for v := int32(t.Size() - 1); v >= 0; v-- {
		for _, c := range t.Children(v) {
			below[v] |= sat[c] | below[c]
			byChild[v] |= sat[c]
		}
		for qi := int32(n - 1); qi >= 0; qi-- {
			if t.Label(v) != q.Pattern.Label(qi) {
				continue
			}
			ok := true
			for _, qc := range children[qi] {
				var have uint64
				if q.Axes[qc] == Child {
					have = byChild[v]
				} else {
					have = below[v]
				}
				if have&(1<<uint(qc)) == 0 {
					ok = false
					break
				}
			}
			if ok {
				sat[v] |= 1 << uint(qi)
			}
		}
	}
	var out []int32
	if q.Axes[0] == Child {
		if sat[0]&1 != 0 {
			out = append(out, 0)
		}
		return out
	}
	// Document order = ascending start rank.
	root := q.Pattern.RootLabel()
	for _, v := range x.Stream(root) {
		if sat[v]&1 != 0 {
			out = append(out, v)
		}
	}
	return out
}

// CountAnswers reports the number of answer nodes.
func CountAnswers(x *Index, q Query) int {
	return len(Answers(x, q))
}
