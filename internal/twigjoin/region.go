// Package twigjoin executes twig queries against data trees: where
// internal/match only counts, this engine produces the actual match
// tuples — the output whose cardinality TreeLattice estimates. It is the
// substrate the paper's motivation presumes ("determining an optimal
// query plan, based on said estimates"): internal/planner chooses
// evaluation orders over this engine using TreeLattice estimates.
//
// The engine supports both structural axes of twig queries:
//
//   - Child ("/"): the paper's Definition 1 semantics; an edge (u, u')
//     must map to a parent-child edge.
//   - Descendant ("//"): the edge may map to any ancestor-descendant
//     pair, the usual XPath semantics.
//
// Matching is 1-1 (injective) in both cases, matching Definition 1.
//
// Data access goes through an Index: a region (start, end, level)
// encoding from one DFS and an inverted label-region index — per label,
// the (start, end, level) region list in document order plus a
// level-partitioned view of the same list. Both structural axes then
// become binary-searched range probes that return shared subslices:
// descendant steps probe the label's full region list within
// (start, end), and child steps probe the label's level[v]+1 partition
// within the same bounds (a descendant exactly one level deeper is
// necessarily a child). Neither probe walks the subtree or allocates.
package twigjoin

import (
	"sort"

	"treelattice/internal/labeltree"
)

// Index is the access structure the join algorithms run on. Build one per
// document with NewIndex; it is immutable and safe for concurrent use.
type Index struct {
	tree  *labeltree.Tree
	start []int32 // preorder rank
	end   []int32 // start of last descendant + 1 (exclusive bound on subtree)
	level []int32

	regions map[labeltree.LabelID]*labelRegions
}

// labelRegions is one label's slice of the inverted region index: every
// node carrying the label, in document order, with the preorder starts
// copied alongside so range probes binary-search a dense array instead of
// chasing node ids back into the tree-wide start table; plus the same
// list partitioned by level for child-axis probes.
type labelRegions struct {
	nodes  []int32 // document order (ascending start)
	starts []int32 // starts[i] == Index.start[nodes[i]]

	levels    []int32 // distinct levels present, ascending
	levOff    []int32 // len(levels)+1 offsets into levNodes/levStarts
	levNodes  []int32 // nodes grouped by level, document order within a group
	levStarts []int32 // aligned starts for levNodes
}

// NewIndex region-encodes t and builds the label-region index.
func NewIndex(t *labeltree.Tree) *Index {
	n := t.Size()
	idx := &Index{
		tree:    t,
		start:   make([]int32, n),
		end:     make([]int32, n),
		level:   make([]int32, n),
		regions: make(map[labeltree.LabelID]*labelRegions),
	}
	// Iterative DFS assigning preorder starts and subtree ends.
	type frame struct {
		node  int32
		child int // next child index to visit
	}
	var counter int32
	stack := []frame{{node: 0}}
	idx.start[0] = counter
	counter++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.Children(f.node)
		if f.child < len(kids) {
			c := kids[f.child]
			f.child++
			idx.start[c] = counter
			idx.level[c] = idx.level[f.node] + 1
			counter++
			stack = append(stack, frame{node: c})
			continue
		}
		idx.end[f.node] = counter
		stack = stack[:len(stack)-1]
	}
	for i := int32(0); int(i) < n; i++ {
		l := t.Label(i)
		r := idx.regions[l]
		if r == nil {
			r = &labelRegions{}
			idx.regions[l] = r
		}
		r.nodes = append(r.nodes, i)
	}
	for _, r := range idx.regions {
		// Document order within a region list = ascending start; node
		// indices are assigned parent-before-child but not in DFS order,
		// so sort, then build the aligned starts and the level partition.
		sort.Slice(r.nodes, func(a, b int) bool { return idx.start[r.nodes[a]] < idx.start[r.nodes[b]] })
		r.starts = make([]int32, len(r.nodes))
		for i, v := range r.nodes {
			r.starts[i] = idx.start[v]
		}
		idx.buildLevels(r)
	}
	return idx
}

// buildLevels groups r.nodes by level (stably, preserving document order
// within a level) and records the group offsets.
func (x *Index) buildLevels(r *labelRegions) {
	counts := make(map[int32]int32)
	for _, v := range r.nodes {
		counts[x.level[v]]++
	}
	r.levels = make([]int32, 0, len(counts))
	for l := range counts {
		r.levels = append(r.levels, l)
	}
	sort.Slice(r.levels, func(a, b int) bool { return r.levels[a] < r.levels[b] })
	r.levOff = make([]int32, len(r.levels)+1)
	at := make(map[int32]int32, len(r.levels))
	var off int32
	for i, l := range r.levels {
		r.levOff[i] = off
		at[l] = off
		off += counts[l]
	}
	r.levOff[len(r.levels)] = off
	r.levNodes = make([]int32, len(r.nodes))
	r.levStarts = make([]int32, len(r.nodes))
	for _, v := range r.nodes {
		p := at[x.level[v]]
		at[x.level[v]] = p + 1
		r.levNodes[p] = v
		r.levStarts[p] = x.start[v]
	}
}

// Tree returns the indexed document.
func (x *Index) Tree() *labeltree.Tree { return x.tree }

// Start returns the preorder rank of node i.
func (x *Index) Start(i int32) int32 { return x.start[i] }

// End returns the exclusive preorder bound of node i's subtree.
func (x *Index) End(i int32) int32 { return x.end[i] }

// Level returns the depth of node i (root = 0).
func (x *Index) Level(i int32) int32 { return x.level[i] }

// Stream returns all nodes with the given label in document order. The
// slice is shared and must not be modified.
func (x *Index) Stream(label labeltree.LabelID) []int32 {
	r := x.regions[label]
	if r == nil {
		return nil
	}
	return r.nodes
}

// IsAncestor reports whether a is a proper ancestor of d.
func (x *Index) IsAncestor(a, d int32) bool {
	return x.start[a] < x.start[d] && x.start[d] < x.end[a]
}

// searchAbove returns the first position in starts holding a value > v.
// Manual binary search: the aligned starts arrays make this a probe over
// a dense int32 run with no closure or tree indirection.
func searchAbove(starts []int32, v int32) int {
	lo, hi := 0, len(starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if starts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchAtOrAbove returns the first position in starts holding a value >= v.
func searchAtOrAbove(starts []int32, v int32) int {
	lo, hi := 0, len(starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if starts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DescendantsByLabel returns the descendants of node i carrying label, in
// document order, as a shared subslice of the label's region list: a
// binary-searched range probe for starts in (start(i), end(i)). The
// result must not be modified; iteration allocates nothing.
func (x *Index) DescendantsByLabel(i int32, label labeltree.LabelID) []int32 {
	r := x.regions[label]
	if r == nil {
		return nil
	}
	lo := searchAbove(r.starts, x.start[i])
	hi := searchAtOrAbove(r.starts[lo:], x.end[i]) + lo
	return r.nodes[lo:hi]
}

// ChildrenByLabel returns the children of node i carrying label, in
// document order, as a shared subslice of the label's level-partitioned
// region list. A descendant of i at level(i)+1 is necessarily a child
// (depth grows by exactly one per edge), so the probe binary-searches the
// label's level(i)+1 partition for starts in (start(i), end(i)) instead
// of walking i's child list. The result must not be modified; iteration
// allocates nothing.
func (x *Index) ChildrenByLabel(i int32, label labeltree.LabelID) []int32 {
	r := x.regions[label]
	if r == nil {
		return nil
	}
	want := x.level[i] + 1
	k := searchAtOrAbove(r.levels, want)
	if k == len(r.levels) || r.levels[k] != want {
		return nil
	}
	starts := r.levStarts[r.levOff[k]:r.levOff[k+1]]
	lo := searchAbove(starts, x.start[i])
	hi := searchAtOrAbove(starts[lo:], x.end[i]) + lo
	return r.levNodes[int(r.levOff[k])+lo : int(r.levOff[k])+hi]
}
