// Package twigjoin executes twig queries against data trees: where
// internal/match only counts, this engine produces the actual match
// tuples — the output whose cardinality TreeLattice estimates. It is the
// substrate the paper's motivation presumes ("determining an optimal
// query plan, based on said estimates"): internal/planner chooses
// evaluation orders over this engine using TreeLattice estimates.
//
// The engine supports both structural axes of twig queries:
//
//   - Child ("/"): the paper's Definition 1 semantics; an edge (u, u')
//     must map to a parent-child edge.
//   - Descendant ("//"): the edge may map to any ancestor-descendant
//     pair, the usual XPath semantics.
//
// Matching is 1-1 (injective) in both cases, matching Definition 1.
//
// Data access goes through an Index: a region (start, end, level)
// encoding from one DFS, per-label node streams in document order, and
// per-node label-filtered child adjacency. Descendant steps become
// binary-searched range scans of a label stream within (start, end).
package twigjoin

import (
	"sort"

	"treelattice/internal/labeltree"
)

// Index is the access structure the join algorithms run on. Build one per
// document with NewIndex; it is immutable and safe for concurrent use.
type Index struct {
	tree  *labeltree.Tree
	start []int32 // preorder rank
	end   []int32 // start of last descendant + 1 (exclusive bound on subtree)
	level []int32

	streams map[labeltree.LabelID][]int32 // nodes per label, document order
}

// NewIndex region-encodes t and builds the label streams.
func NewIndex(t *labeltree.Tree) *Index {
	n := t.Size()
	idx := &Index{
		tree:    t,
		start:   make([]int32, n),
		end:     make([]int32, n),
		level:   make([]int32, n),
		streams: make(map[labeltree.LabelID][]int32),
	}
	// Iterative DFS assigning preorder starts and subtree ends.
	type frame struct {
		node  int32
		child int // next child index to visit
	}
	var counter int32
	stack := []frame{{node: 0}}
	idx.start[0] = counter
	counter++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.Children(f.node)
		if f.child < len(kids) {
			c := kids[f.child]
			f.child++
			idx.start[c] = counter
			idx.level[c] = idx.level[f.node] + 1
			counter++
			stack = append(stack, frame{node: c})
			continue
		}
		idx.end[f.node] = counter
		stack = stack[:len(stack)-1]
	}
	for i := int32(0); int(i) < n; i++ {
		l := t.Label(i)
		idx.streams[l] = append(idx.streams[l], i)
	}
	// Document order within a stream = ascending start; node indices are
	// assigned parent-before-child but not in DFS order, so sort.
	for _, s := range idx.streams {
		sort.Slice(s, func(a, b int) bool { return idx.start[s[a]] < idx.start[s[b]] })
	}
	return idx
}

// Tree returns the indexed document.
func (x *Index) Tree() *labeltree.Tree { return x.tree }

// Start returns the preorder rank of node i.
func (x *Index) Start(i int32) int32 { return x.start[i] }

// End returns the exclusive preorder bound of node i's subtree.
func (x *Index) End(i int32) int32 { return x.end[i] }

// Level returns the depth of node i (root = 0).
func (x *Index) Level(i int32) int32 { return x.level[i] }

// Stream returns all nodes with the given label in document order. The
// slice is shared and must not be modified.
func (x *Index) Stream(label labeltree.LabelID) []int32 { return x.streams[label] }

// IsAncestor reports whether a is a proper ancestor of d.
func (x *Index) IsAncestor(a, d int32) bool {
	return x.start[a] < x.start[d] && x.start[d] < x.end[a]
}

// DescendantsByLabel returns the descendants of node i carrying label, in
// document order, as a subslice of the label stream.
func (x *Index) DescendantsByLabel(i int32, label labeltree.LabelID) []int32 {
	s := x.streams[label]
	lo := sort.Search(len(s), func(k int) bool { return x.start[s[k]] > x.start[i] })
	hi := sort.Search(len(s), func(k int) bool { return x.start[s[k]] >= x.end[i] })
	return s[lo:hi]
}

// ChildrenByLabel returns the children of node i carrying label.
func (x *Index) ChildrenByLabel(i int32, label labeltree.LabelID) []int32 {
	var out []int32
	for _, c := range x.tree.Children(i) {
		if x.tree.Label(c) == label {
			out = append(out, c)
		}
	}
	return out
}
