package twigjoin

import (
	"fmt"
	"strings"

	"treelattice/internal/labeltree"
)

// Axis is the structural relationship between a query node and its parent.
type Axis uint8

// The two supported axes.
const (
	// Child requires a parent-child edge (Definition 1 of the paper).
	Child Axis = iota
	// Descendant allows any proper ancestor-descendant pair.
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Query is a twig pattern with a per-edge axis. Axes[i] describes the
// edge from node i to its parent; Axes[0] is the axis of the whole query
// relative to the document (Descendant = match anywhere, Child = the
// query root must map to the document root).
type Query struct {
	Pattern labeltree.Pattern
	Axes    []Axis
}

// NewQuery builds a query; a nil axes slice defaults every edge to Child
// with a Descendant root (match anywhere), the semantics of the
// estimator's patterns.
func NewQuery(p labeltree.Pattern, axes []Axis) (Query, error) {
	if axes == nil {
		axes = make([]Axis, p.Size())
		axes[0] = Descendant
	}
	if len(axes) != p.Size() {
		return Query{}, fmt.Errorf("twigjoin: %d axes for %d nodes", len(axes), p.Size())
	}
	return Query{Pattern: p, Axes: axes}, nil
}

// MustQuery is NewQuery that panics on error.
func MustQuery(p labeltree.Pattern, axes []Axis) Query {
	q, err := NewQuery(p, axes)
	if err != nil {
		panic(err)
	}
	return q
}

// Parser guards mirroring labeltree's pattern parser: adversarial input
// (the query endpoint is fuzzed) must not exhaust memory or the stack.
// The limits are far above any meaningful twig.
const (
	maxParseNodes = 1 << 16
	maxParseDepth = 1 << 12
)

// ParseQuery parses the twig syntax extended with a per-edge axis: each
// child may be prefixed with "//" for the descendant axis, e.g.
// "a(b,//c(d))". A leading "//" (default) matches the query anywhere in
// the document; a leading "/" anchors it at the document root.
func ParseQuery(s string, dict *labeltree.Dict) (Query, error) {
	p := &queryParser{src: strings.TrimSpace(s), dict: dict}
	rootAxis := Descendant
	switch {
	case strings.HasPrefix(p.src, "//"):
		p.pos = 2
	case strings.HasPrefix(p.src, "/"):
		rootAxis = Child
		p.pos = 1
	}
	if err := p.parseNode(-1, rootAxis, 0); err != nil {
		return Query{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Query{}, fmt.Errorf("twigjoin: trailing input %q", p.src[p.pos:])
	}
	pat, err := labeltree.NewPattern(p.labels, p.parents)
	if err != nil {
		return Query{}, err
	}
	return Query{Pattern: pat, Axes: p.axes}, nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string, dict *labeltree.Dict) Query {
	q, err := ParseQuery(s, dict)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the query in the extended twig syntax.
func (q Query) String(dict *labeltree.Dict) string {
	children := make([][]int32, q.Pattern.Size())
	for i := int32(1); int(i) < q.Pattern.Size(); i++ {
		children[q.Pattern.Parent(i)] = append(children[q.Pattern.Parent(i)], i)
	}
	var render func(i int32) string
	render = func(i int32) string {
		out := dict.Name(q.Pattern.Label(i))
		if len(children[i]) > 0 {
			parts := make([]string, len(children[i]))
			for j, c := range children[i] {
				prefix := ""
				if q.Axes[c] == Descendant {
					prefix = "//"
				}
				parts[j] = prefix + render(c)
			}
			out += "(" + strings.Join(parts, ",") + ")"
		}
		return out
	}
	prefix := "//"
	if q.Axes[0] == Child {
		prefix = "/"
	}
	return prefix + render(0)
}

// ChildOnly reports whether every edge uses the child axis (the
// estimator-compatible form).
func (q Query) ChildOnly() bool {
	for _, a := range q.Axes[1:] {
		if a != Child {
			return false
		}
	}
	return true
}

type queryParser struct {
	src     string
	pos     int
	dict    *labeltree.Dict
	labels  []labeltree.LabelID
	parents []int32
	axes    []Axis
}

func (p *queryParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func isQueryLabelByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' || c == '@' || c == '#' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

func (p *queryParser) parseNode(parent int32, axis Axis, depth int) error {
	if depth > maxParseDepth {
		return fmt.Errorf("twigjoin: query exceeds depth %d", maxParseDepth)
	}
	if len(p.labels) >= maxParseNodes {
		return fmt.Errorf("twigjoin: query exceeds %d nodes", maxParseNodes)
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isQueryLabelByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return fmt.Errorf("twigjoin: expected label at offset %d in %q", p.pos, p.src)
	}
	idx := int32(len(p.labels))
	p.labels = append(p.labels, p.dict.Intern(p.src[start:p.pos]))
	p.parents = append(p.parents, parent)
	p.axes = append(p.axes, axis)
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			p.skipSpace()
			childAxis := Child
			if strings.HasPrefix(p.src[p.pos:], "//") {
				childAxis = Descendant
				p.pos += 2
			}
			if err := p.parseNode(idx, childAxis, depth+1); err != nil {
				return err
			}
			p.skipSpace()
			if p.pos >= len(p.src) {
				return fmt.Errorf("twigjoin: unterminated '(' in %q", p.src)
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return fmt.Errorf("twigjoin: expected ',' or ')' at offset %d in %q", p.pos, p.src)
		}
	}
	return nil
}
