package twigjoin

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

// TestChildrenByLabelAgainstWalk checks the level-partitioned range probe
// against a direct walk of the child list, for every node and label of
// random trees.
func TestChildrenByLabelAgainstWalk(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dict, labels := treetest.Alphabet(4)
		tr := treetest.RandomTree(rng, 200, labels, dict)
		x := NewIndex(tr)
		for i := int32(0); int(i) < tr.Size(); i++ {
			for _, l := range labels {
				var want []int32
				for _, c := range tr.Children(i) {
					if tr.Label(c) == l {
						want = append(want, c)
					}
				}
				got := x.ChildrenByLabel(i, l)
				if len(got) != len(want) {
					t.Fatalf("seed %d node %d label %d: got %v want %v", seed, i, l, got, want)
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("seed %d node %d label %d: got %v want %v", seed, i, l, got, want)
					}
				}
			}
		}
	}
}

// TestDescendantsByLabelAgainstWalk checks the range probe against a
// subtree walk.
func TestDescendantsByLabelAgainstWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dict, labels := treetest.Alphabet(3)
	tr := treetest.RandomTree(rng, 300, labels, dict)
	x := NewIndex(tr)
	for i := int32(0); int(i) < tr.Size(); i++ {
		for _, l := range labels {
			var want []int32
			var walk func(n int32)
			walk = func(n int32) {
				for _, c := range tr.Children(n) {
					if tr.Label(c) == l {
						want = append(want, c)
					}
					walk(c)
				}
			}
			walk(i)
			got := x.DescendantsByLabel(i, l)
			if len(got) != len(want) {
				t.Fatalf("node %d label %d: got %d want %d", i, l, len(got), len(want))
			}
			// The probe returns document order; the walk returns DFS
			// order, which is the same thing.
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("node %d label %d: got %v want %v", i, l, got, want)
				}
			}
		}
	}
}

// TestExecZeroAlloc gates the executor fast path: index probes and whole
// enumerations over a warmed scratch pool must not allocate.
func TestExecZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dict, labels := treetest.Alphabet(3)
	tr := treetest.RandomTree(rng, 500, labels, dict)
	x := NewIndex(tr)
	q := MustParseQuery("//l0(l1,//l2)", dict)

	if n := testing.AllocsPerRun(100, func() {
		_ = x.ChildrenByLabel(0, labels[1])
		_ = x.DescendantsByLabel(0, labels[2])
	}); n != 0 {
		t.Fatalf("index probes allocate: %v allocs/op", n)
	}

	var sink int64
	emit := func(Match) bool { return true }
	Enumerate(x, q, nil, emit) // warm the scratch pool
	if n := testing.AllocsPerRun(50, func() {
		st := Enumerate(x, q, nil, emit)
		sink += st.Matches
	}); n != 0 {
		t.Fatalf("Enumerate allocates: %v allocs/op", n)
	}

	order := []int32{0, 2, 1}
	if n := testing.AllocsPerRun(50, func() {
		st, _ := EnumerateContext(context.Background(), x, q, order, nil, emit)
		sink += st.Matches
	}); n != 0 {
		t.Fatalf("EnumerateContext allocates: %v allocs/op", n)
	}
	_ = sink
}

// TestEnumerateContextBudget checks that a too-small node budget stops
// the execution with ErrNodeBudget and partial stats, and that a
// sufficient budget reproduces the unbudgeted count.
func TestEnumerateContextBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dict, labels := treetest.Alphabet(2)
	tr := treetest.RandomTree(rng, 400, labels, dict)
	x := NewIndex(tr)
	q := MustParseQuery("//l0(//l1)", dict)

	full := Enumerate(x, q, nil, func(Match) bool { return true })
	if full.Candidates < 10 {
		t.Skip("tree too small to exercise the budget")
	}

	budget := full.Candidates / 2
	st, err := CountContext(context.Background(), x, q, nil, &budget)
	if !errors.Is(err, ErrNodeBudget) {
		t.Fatalf("want ErrNodeBudget, got %v", err)
	}
	if st.Candidates >= full.Candidates || st.Candidates == 0 {
		t.Fatalf("partial candidates %d out of range (full %d)", st.Candidates, full.Candidates)
	}

	budget = full.Candidates + 1
	st, err = CountContext(context.Background(), x, q, nil, &budget)
	if err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if st.Matches != full.Matches {
		t.Fatalf("budgeted count %d != full count %d", st.Matches, full.Matches)
	}
}

// TestEnumerateContextCanceled checks both the fail-fast path and the
// periodic poll.
func TestEnumerateContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dict, labels := treetest.Alphabet(2)
	tr := treetest.RandomTree(rng, 2000, labels, dict)
	x := NewIndex(tr)
	q := MustParseQuery("//l0(//l1,//l0)", dict)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountContext(ctx, x, q, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// A mid-run cancel stops at the next poll; if the execution finishes
	// before a poll fires, it must have produced the full count.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var visits int
	st, err := EnumerateContext(ctx2, x, q, nil, nil, func(Match) bool {
		visits++
		if visits == 3 {
			cancel2()
		}
		return true
	})
	if err == nil {
		if full := Count(x, q); st.Matches != full {
			t.Fatalf("no cancel error but partial count %d != %d", st.Matches, full)
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestIndexerCachesByTree checks index identity per tree pointer.
func TestIndexerCachesByTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dict, labels := treetest.Alphabet(2)
	_ = dict
	t1 := treetest.RandomTree(rng, 50, labels, dict)
	t2 := treetest.RandomTree(rng, 50, labels, dict)
	ix := NewIndexer()
	a := ix.For(t1)
	if b := ix.For(t1); b != a {
		t.Fatal("same tree produced two indexes")
	}
	if c := ix.For(t2); c == a {
		t.Fatal("distinct trees shared an index")
	}
	got := ix.ForAll([]*labeltree.Tree{t1, t2, t1})
	if got[0] != a || got[2] != a || got[1] == a {
		t.Fatal("ForAll alignment wrong")
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
}

// TestQueryParserGuards checks the fuzz-safety limits.
func TestQueryParserGuards(t *testing.T) {
	dict := labeltree.NewDict()
	deep := ""
	for i := 0; i < maxParseDepth+2; i++ {
		deep += "a("
	}
	if _, err := ParseQuery(deep, dict); err == nil {
		t.Fatal("deep query accepted")
	}
}
