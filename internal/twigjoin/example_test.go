package twigjoin_test

import (
	"fmt"
	"log"
	"strings"

	"treelattice/internal/labeltree"
	"treelattice/internal/twigjoin"
	"treelattice/internal/xmlparse"
)

// ExampleEnumerate streams every match of a twig query, in deterministic
// order.
func ExampleEnumerate() {
	dict := labeltree.NewDict()
	tree, err := xmlparse.Parse(strings.NewReader(
		`<site><item><name/><price/></item><item><name/><price/></item></site>`), dict, xmlparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	x := twigjoin.NewIndex(tree)
	q := twigjoin.MustParseQuery("//item(name,price)", dict)
	matches := 0
	twigjoin.Enumerate(x, q, nil, func(m twigjoin.Match) bool {
		matches++
		return true
	})
	fmt.Println(matches, "matches")
	// Output: 2 matches
}

// ExampleCountPath counts a descendant-axis path in O(n·k) without
// enumerating the (possibly huge) set of path solutions.
func ExampleCountPath() {
	dict := labeltree.NewDict()
	tree, err := xmlparse.Parse(strings.NewReader(
		`<a><x><b><b><c/></b></b></x></a>`), dict, xmlparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	x := twigjoin.NewIndex(tree)
	a, _ := dict.Lookup("a")
	b, _ := dict.Lookup("b")
	c, _ := dict.Lookup("c")
	// a//b//c: the c leaf pairs with either of the two nested b's.
	fmt.Println(twigjoin.CountPath(x, []labeltree.LabelID{a, b, c}, twigjoin.Descendant))
	// Output: 2
}

// ExampleAnswers selects the answer nodes of a query under XPath's
// existential semantics, in document order.
func ExampleAnswers() {
	dict := labeltree.NewDict()
	tree, err := xmlparse.Parse(strings.NewReader(
		`<r><a><b/></a><a/><a><b/></a></r>`), dict, xmlparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	x := twigjoin.NewIndex(tree)
	q := twigjoin.MustParseQuery("//a(b)", dict)
	fmt.Println(len(twigjoin.Answers(x, q)), "answer nodes")
	// Output: 2 answer nodes
}
