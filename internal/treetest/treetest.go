// Package treetest provides deterministic random generators for trees and
// patterns, shared by the test suites of the other packages. It is not
// part of the public API.
package treetest

import (
	"fmt"
	"math/rand"

	"treelattice/internal/labeltree"
)

// Alphabet interns n single-letter-ish labels ("l0".."l{n-1}") into a fresh
// dict and returns both.
func Alphabet(n int) (*labeltree.Dict, []labeltree.LabelID) {
	dict := labeltree.NewDict()
	ids := make([]labeltree.LabelID, n)
	for i := range ids {
		ids[i] = dict.Intern(fmt.Sprintf("l%d", i))
	}
	return dict, ids
}

// RandomPattern generates a random pattern with size nodes drawing labels
// from alphabet using rng. Shapes are uniform over parent choices, biased
// toward bushy trees.
func RandomPattern(rng *rand.Rand, size int, alphabet []labeltree.LabelID) labeltree.Pattern {
	if size < 1 {
		panic("treetest: size must be >= 1")
	}
	labels := make([]labeltree.LabelID, size)
	parent := make([]int32, size)
	parent[0] = -1
	for i := 0; i < size; i++ {
		labels[i] = alphabet[rng.Intn(len(alphabet))]
		if i > 0 {
			parent[i] = int32(rng.Intn(i))
		}
	}
	return labeltree.MustPattern(labels, parent)
}

// ShufflePattern returns an isomorphic renumbering of p: the same unordered
// tree with node indices permuted (respecting parent-before-child). Used to
// check that canonical keys are order-insensitive.
func ShufflePattern(rng *rand.Rand, p labeltree.Pattern) labeltree.Pattern {
	n := p.Size()
	// Generate a random topological order of p's nodes.
	indeg := make([]int, n)
	children := make([][]int32, n)
	for i := int32(1); int(i) < n; i++ {
		children[p.Parent(i)] = append(children[p.Parent(i)], i)
		indeg[i] = 1
	}
	ready := []int32{0}
	order := make([]int32, 0, n) // order[newIdx] = oldIdx
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		nd := ready[k]
		ready[k] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, nd)
		ready = append(ready, children[nd]...)
	}
	newIdx := make([]int32, n)
	for ni, oi := range order {
		newIdx[oi] = int32(ni)
	}
	labels := make([]labeltree.LabelID, n)
	parent := make([]int32, n)
	for ni, oi := range order {
		labels[ni] = p.Label(oi)
		if pp := p.Parent(oi); pp < 0 {
			parent[ni] = -1
		} else {
			parent[ni] = newIdx[pp]
		}
	}
	return labeltree.MustPattern(labels, parent)
}

// RandomTree generates a random data tree with size nodes drawing labels
// from alphabet using rng.
func RandomTree(rng *rand.Rand, size int, alphabet []labeltree.LabelID, dict *labeltree.Dict) *labeltree.Tree {
	b := labeltree.NewBuilder(dict)
	b.AddRoot(dict.Name(alphabet[rng.Intn(len(alphabet))]))
	for i := 1; i < size; i++ {
		parent := int32(rng.Intn(i))
		b.AddChildID(parent, alphabet[rng.Intn(len(alphabet))])
	}
	return b.Build()
}

// TreeFromPattern materializes a pattern as a one-occurrence data tree.
func TreeFromPattern(p labeltree.Pattern, dict *labeltree.Dict) *labeltree.Tree {
	b := labeltree.NewBuilder(dict)
	b.AddRoot(dict.Name(p.Label(0)))
	for i := int32(1); int(i) < p.Size(); i++ {
		b.AddChildID(p.Parent(i), p.Label(i))
	}
	return b.Build()
}
