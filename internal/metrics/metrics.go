// Package metrics implements the error metric of Section 5.1: the
// absolute error |s − ŝ| / max(sanity, s), where the sanity bound keeps
// low-count queries from producing artificially high percentages. The
// paper sets the bound to the 10th percentile of true query counts, and at
// least 10.
package metrics

import (
	"math"
	"sort"
)

// MinSanity is the floor on the sanity bound, per the paper.
const MinSanity = 10

// SanityBound returns max(MinSanity, 10th percentile of trueCounts).
func SanityBound(trueCounts []int64) float64 {
	if len(trueCounts) == 0 {
		return MinSanity
	}
	sorted := append([]int64(nil), trueCounts...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	p10 := sorted[len(sorted)/10]
	if float64(p10) < MinSanity {
		return MinSanity
	}
	return float64(p10)
}

// AbsError is |truth − est| / max(sanity, truth).
func AbsError(truth, est, sanity float64) float64 {
	den := math.Max(sanity, truth)
	if den <= 0 {
		den = 1
	}
	return math.Abs(truth-est) / den
}

// Mean averages xs; it returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs by the
// nearest-rank method. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CDFPoint is one point of a cumulative error distribution: the fraction
// (in percent) of observations with error ≤ Threshold.
type CDFPoint struct {
	Threshold  float64
	CumPercent float64
}

// CDF evaluates the cumulative distribution of errs at the given
// thresholds (which should be ascending, e.g. logarithmically spaced as in
// Figure 8).
func CDF(errs []float64, thresholds []float64) []CDFPoint {
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(thresholds))
	for i, th := range thresholds {
		n := sort.SearchFloat64s(sorted, math.Nextafter(th, math.Inf(1)))
		pct := 0.0
		if len(sorted) > 0 {
			pct = 100 * float64(n) / float64(len(sorted))
		}
		out[i] = CDFPoint{Threshold: th, CumPercent: pct}
	}
	return out
}

// LogThresholds returns n thresholds logarithmically spaced between lo and
// hi inclusive, matching the X axis of Figure 8 (0.1% to 10000%).
func LogThresholds(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic("metrics: LogThresholds requires n >= 2 and 0 < lo < hi")
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := range out {
		out[i] = x
		x *= ratio
	}
	out[n-1] = hi
	return out
}
