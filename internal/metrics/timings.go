package metrics

import (
	"sync"
	"time"
)

// StageTiming is the wall-clock duration of one named build stage.
type StageTiming struct {
	Stage    string        `json:"stage"`
	Duration time.Duration `json:"duration"`
}

// BuildTimings accumulates per-stage wall-clock timings of a summary
// build (parse, mine, reduce, merge, persist). It is safe for concurrent
// use, and a nil *BuildTimings is a valid no-op sink, so producers can
// record unconditionally.
type BuildTimings struct {
	mu     sync.Mutex
	stages []StageTiming
}

// Record adds a completed stage measurement.
func (b *BuildTimings) Record(stage string, d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stages = append(b.stages, StageTiming{Stage: stage, Duration: d})
}

// Start begins timing a stage and returns the function that stops the
// clock and records the measurement.
func (b *BuildTimings) Start(stage string) func() {
	if b == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { b.Record(stage, time.Since(t0)) }
}

// Stages returns the recorded measurements in record order.
func (b *BuildTimings) Stages() []StageTiming {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]StageTiming(nil), b.stages...)
}

// Total sums all recorded stage durations.
func (b *BuildTimings) Total() time.Duration {
	var total time.Duration
	for _, s := range b.Stages() {
		total += s.Duration
	}
	return total
}

// Millis returns stage durations in (fractional) milliseconds, summing
// repeated stages — the shape the stats endpoint serves.
func (b *BuildTimings) Millis() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range b.Stages() {
		out[s.Stage] += float64(s.Duration) / float64(time.Millisecond)
	}
	return out
}
