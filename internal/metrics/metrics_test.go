package metrics

import (
	"math"
	"testing"
)

func TestSanityBound(t *testing.T) {
	if got := SanityBound(nil); got != MinSanity {
		t.Fatalf("empty = %v, want %v", got, MinSanity)
	}
	small := []int64{1, 2, 3, 4, 5}
	if got := SanityBound(small); got != MinSanity {
		t.Fatalf("small counts = %v, want floor %v", got, MinSanity)
	}
	// 10th percentile of 100..1090 step 10 is around 200.
	var big []int64
	for i := 0; i < 100; i++ {
		big = append(big, int64(100+10*i))
	}
	got := SanityBound(big)
	if got < 100 || got > 300 {
		t.Fatalf("p10 = %v, want ~200", got)
	}
}

func TestAbsError(t *testing.T) {
	if got := AbsError(100, 150, 10); got != 0.5 {
		t.Fatalf("AbsError = %v, want 0.5", got)
	}
	// Sanity bound caps the denominator from below.
	if got := AbsError(1, 11, 10); got != 1 {
		t.Fatalf("AbsError = %v, want 1", got)
	}
	if got := AbsError(0, 0, 10); got != 0 {
		t.Fatalf("AbsError = %v, want 0", got)
	}
	if got := AbsError(0, 0, 0); got != 0 {
		t.Fatalf("AbsError with zero sanity = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	errs := []float64{0.1, 0.5, 1, 2, 10}
	pts := CDF(errs, []float64{0.1, 1, 100})
	if pts[0].CumPercent != 20 {
		t.Fatalf("CDF(0.1) = %v, want 20", pts[0].CumPercent)
	}
	if pts[1].CumPercent != 60 {
		t.Fatalf("CDF(1) = %v, want 60", pts[1].CumPercent)
	}
	if pts[2].CumPercent != 100 {
		t.Fatalf("CDF(100) = %v, want 100", pts[2].CumPercent)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].CumPercent < pts[i-1].CumPercent {
			t.Fatal("CDF not monotone")
		}
	}
	empty := CDF(nil, []float64{1})
	if empty[0].CumPercent != 0 {
		t.Fatalf("CDF of empty = %v", empty[0].CumPercent)
	}
}

func TestLogThresholds(t *testing.T) {
	ths := LogThresholds(0.1, 10000, 6)
	if len(ths) != 6 || ths[0] != 0.1 || ths[5] != 10000 {
		t.Fatalf("thresholds = %v", ths)
	}
	for i := 1; i < len(ths); i++ {
		ratio := ths[i] / ths[i-1]
		if math.Abs(ratio-10) > 1e-9 {
			t.Fatalf("ratio %v at %d, want 10", ratio, i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad arguments accepted")
		}
	}()
	LogThresholds(0, 1, 3)
}
