package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBuildTimingsNilSafe(t *testing.T) {
	var b *BuildTimings
	b.Record("mine", time.Second) // must not panic
	b.Start("parse")()
	if got := b.Stages(); got != nil {
		t.Fatalf("nil Stages = %v", got)
	}
	if got := b.Total(); got != 0 {
		t.Fatalf("nil Total = %v", got)
	}
	if got := b.Millis(); len(got) != 0 {
		t.Fatalf("nil Millis = %v", got)
	}
}

func TestBuildTimingsRecordAndStart(t *testing.T) {
	b := &BuildTimings{}
	b.Record("parse", 20*time.Millisecond)
	stop := b.Start("mine")
	time.Sleep(time.Millisecond)
	stop()
	b.Record("mine", 10*time.Millisecond)

	stages := b.Stages()
	if len(stages) != 3 || stages[0].Stage != "parse" || stages[1].Stage != "mine" {
		t.Fatalf("stages = %v", stages)
	}
	if stages[1].Duration <= 0 {
		t.Fatalf("Start/stop recorded %v", stages[1].Duration)
	}
	if got := b.Total(); got < 30*time.Millisecond {
		t.Fatalf("Total = %v, want >= 30ms", got)
	}
	ms := b.Millis()
	if ms["parse"] != 20 {
		t.Fatalf("Millis[parse] = %v, want 20", ms["parse"])
	}
	// Repeated stages sum.
	if ms["mine"] <= 10 {
		t.Fatalf("Millis[mine] = %v, want > 10", ms["mine"])
	}
}

func TestBuildTimingsConcurrent(t *testing.T) {
	b := &BuildTimings{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Record("mine", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := len(b.Stages()); got != 800 {
		t.Fatalf("recorded %d stages, want 800", got)
	}
}
