// Package statix implements a StatiX-style baseline (Freire et al.,
// SIGMOD 2002), the schema-aware statistics system in the paper's related
// work. Types are approximated by element labels; for every (parent
// label, child label) pair the summary stores a *histogram* of per-parent
// child counts, not just an average.
//
// Histograms are what distinguish this estimator from the synopsis
// baselines: the expected number of injective sibling assignments needs
// falling-factorial moments E[k·(k−1)···(k−m+1)], which a histogram
// answers exactly while an average (TreeSketches, XSketch) must
// approximate by k̄^m — the Figure 11 failure mode. Across different
// child labels StatiX still assumes independence, so correlated data
// (IMDB) defeats it the same way it defeats decomposition.
package statix

import (
	"sort"

	"treelattice/internal/labeltree"
)

// Options configures construction.
type Options struct {
	// MaxBuckets bounds each histogram's distinct-count buckets; counts
	// beyond the cap are folded into the largest bucket (default 64).
	MaxBuckets int
}

func (o *Options) fill() {
	if o.MaxBuckets == 0 {
		o.MaxBuckets = 64
	}
}

// Summary is a built StatiX summary. Immutable and safe for concurrent
// use.
type Summary struct {
	opts        Options
	labelCounts map[labeltree.LabelID]int64
	hists       map[[2]labeltree.LabelID]*histogram // (parent, child) → counts
}

// histogram maps a child-count value to the number of parent elements
// with exactly that many children of the label (zero-count parents
// included implicitly via the parent label total).
type histogram struct {
	buckets map[int32]int64
	parents int64 // parents with ≥1 child of the label
}

// Build scans t once, collecting per-(parent,child) count histograms.
func Build(t *labeltree.Tree, opts Options) *Summary {
	opts.fill()
	s := &Summary{
		opts:        opts,
		labelCounts: make(map[labeltree.LabelID]int64),
		hists:       make(map[[2]labeltree.LabelID]*histogram),
	}
	counts := make(map[labeltree.LabelID]int32)
	for v := int32(0); int(v) < t.Size(); v++ {
		s.labelCounts[t.Label(v)]++
		for k := range counts {
			delete(counts, k)
		}
		for _, c := range t.Children(v) {
			counts[t.Label(c)]++
		}
		for cl, k := range counts {
			key := [2]labeltree.LabelID{t.Label(v), cl}
			h, ok := s.hists[key]
			if !ok {
				h = &histogram{buckets: make(map[int32]int64)}
				s.hists[key] = h
			}
			h.add(k, opts.MaxBuckets)
		}
	}
	return s
}

func (h *histogram) add(k int32, maxBuckets int) {
	h.parents++
	if _, ok := h.buckets[k]; !ok && len(h.buckets) >= maxBuckets {
		// Fold into the largest existing bucket to respect the cap.
		var largest int32
		for b := range h.buckets {
			if b > largest {
				largest = b
			}
		}
		k = largest
	}
	h.buckets[k]++
}

// fallingFactorialMoment returns Σ_parents k·(k−1)···(k−m+1) over parents
// of the pair, i.e. the exact number of ordered injective selections of m
// children summed across parents.
func (h *histogram) fallingFactorialMoment(m int) float64 {
	var total float64
	for k, parents := range h.buckets {
		term := 1.0
		for j := 0; j < m; j++ {
			term *= float64(int(k) - j)
		}
		if term > 0 {
			total += term * float64(parents)
		}
	}
	return total
}

// Pairs reports the number of stored (parent, child) histograms.
func (s *Summary) Pairs() int { return len(s.hists) }

// SizeBytes is the accounted size: 12 bytes per histogram bucket plus 16
// per pair.
func (s *Summary) SizeBytes() int {
	total := 0
	for _, h := range s.hists {
		total += 16 + 12*len(h.buckets)
	}
	return total
}

// Name identifies the estimator in experiment output.
func (s *Summary) Name() string { return "statix" }

// Estimate returns the StatiX estimate of a twig pattern: per element of
// the root label, multiply the expected injective assignments per child
// label group (falling-factorial moments from the histograms, exact per
// label) and recurse, assuming independence across labels and levels.
func (s *Summary) Estimate(q labeltree.Pattern) float64 {
	children := make([][]int32, q.Size())
	for i := int32(1); int(i) < q.Size(); i++ {
		children[q.Parent(i)] = append(children[q.Parent(i)], i)
	}
	var perElement func(n int32) float64
	perElement = func(n int32) float64 {
		kids := children[n]
		if len(kids) == 0 {
			return 1
		}
		// Group children by label; within a group the falling-factorial
		// moment gives the exact injective-assignment count when the
		// group members have identical subtrees, and an independence
		// approximation otherwise.
		groups := make(map[labeltree.LabelID][]int32)
		var order []labeltree.LabelID
		for _, k := range kids {
			l := q.Label(k)
			if _, ok := groups[l]; !ok {
				order = append(order, l)
			}
			groups[l] = append(groups[l], k)
		}
		sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
		parentCount := float64(s.labelCounts[q.Label(n)])
		if parentCount == 0 {
			return 0
		}
		prod := 1.0
		for _, l := range order {
			group := groups[l]
			h, ok := s.hists[[2]labeltree.LabelID{q.Label(n), l}]
			if !ok {
				return 0
			}
			m := len(group)
			// Expected ordered injective selections per parent element.
			avgAssignments := h.fallingFactorialMoment(m) / parentCount
			if avgAssignments == 0 {
				return 0
			}
			subProd := 1.0
			for _, k := range group {
				subProd *= perElement(k)
			}
			prod *= avgAssignments * subProd
		}
		return prod
	}
	return float64(s.labelCounts[q.RootLabel()]) * perElement(0)
}
