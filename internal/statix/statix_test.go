package statix

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func parseDoc(t *testing.T, doc string) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

// figure11Doc: 3×b(cccc) + 1×b(cc) under r — average-based synopses
// estimate b(c,c) at 49; histograms recover the exact 38.
func figure11Doc(t *testing.T) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 3; i++ {
		sb.WriteString("<b><c/><c/><c/><c/></b>")
	}
	sb.WriteString("<b><c/><c/></b>")
	sb.WriteString("</r>")
	return parseDoc(t, sb.String())
}

func TestHistogramsBeatAveragesOnFigure11(t *testing.T) {
	tr, dict := figure11Doc(t)
	s := Build(tr, Options{})
	q := labeltree.MustParsePattern("b(c,c)", dict)
	truth := float64(match.NewCounter(tr).Count(q))
	got := s.Estimate(q)
	if math.Abs(got-truth) > 1e-9 {
		t.Fatalf("Estimate = %v, want exact %v (histogram second moment)", got, truth)
	}
}

func TestSingleEdgeExact(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(3))
	tr := treetest.RandomTree(rng, 300, alphabet, dict)
	s := Build(tr, Options{})
	counter := match.NewCounter(tr)
	for _, a := range alphabet {
		if got := s.Estimate(labeltree.SingleNode(a)); got != float64(tr.LabelCount(a)) {
			t.Fatalf("label count mismatch: %v", got)
		}
		for _, b := range alphabet {
			q := labeltree.PathPattern(a, b)
			want := float64(counter.Count(q))
			if got := s.Estimate(q); math.Abs(got-want) > 1e-9 {
				t.Fatalf("edge %v/%v: %v != %v", a, b, got, want)
			}
		}
	}
}

func TestDuplicateSiblingsExactPerLabel(t *testing.T) {
	// Same-label sibling groups use falling-factorial moments: exact for
	// flat duplicate-leaf queries, any multiplicity.
	dict, alphabet := treetest.Alphabet(2)
	rng := rand.New(rand.NewSource(7))
	tr := treetest.RandomTree(rng, 200, alphabet, dict)
	s := Build(tr, Options{})
	counter := match.NewCounter(tr)
	a, b := alphabet[0], alphabet[1]
	for m := 1; m <= 4; m++ {
		labels := []labeltree.LabelID{a}
		parents := []int32{-1}
		for i := 0; i < m; i++ {
			labels = append(labels, b)
			parents = append(parents, 0)
		}
		q := labeltree.MustPattern(labels, parents)
		want := float64(counter.Count(q))
		got := s.Estimate(q)
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("m=%d: %v != %v", m, got, want)
		}
	}
}

func TestZeroForAbsentPairs(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b/></a>`)
	s := Build(tr, Options{})
	for _, qs := range []string{"zzz", "b(a)", "a(zzz)"} {
		q := labeltree.MustParsePattern(qs, dict)
		if got := s.Estimate(q); got != 0 {
			t.Fatalf("Estimate(%s) = %v", qs, got)
		}
	}
}

func TestBucketCap(t *testing.T) {
	// Many distinct counts with a tiny cap still build and keep totals
	// plausible.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 1; i <= 20; i++ {
		sb.WriteString("<p>")
		for j := 0; j < i; j++ {
			sb.WriteString("<q/>")
		}
		sb.WriteString("</p>")
	}
	sb.WriteString("</r>")
	tr, dict := parseDoc(t, sb.String())
	s := Build(tr, Options{MaxBuckets: 4})
	if s.SizeBytes() <= 0 || s.Pairs() == 0 {
		t.Fatal("degenerate summary")
	}
	q := labeltree.MustParsePattern("p(q)", dict)
	got := s.Estimate(q)
	if got <= 0 {
		t.Fatalf("capped estimate = %v", got)
	}
	// Totals drift under capping but stay the right order of magnitude.
	truth := float64(match.NewCounter(tr).Count(q))
	if got < truth/3 || got > truth*3 {
		t.Fatalf("capped estimate %v too far from %v", got, truth)
	}
}

func TestDeepQuerySanity(t *testing.T) {
	tr, dict := figure11Doc(t)
	s := Build(tr, Options{})
	q := labeltree.MustParsePattern("r(b(c,c),b(c))", dict)
	truth := float64(match.NewCounter(tr).Count(q))
	got := s.Estimate(q)
	if got <= 0 || math.IsNaN(got) {
		t.Fatalf("estimate = %v (true %v)", got, truth)
	}
	if s.Name() != "statix" {
		t.Fatal("name changed")
	}
}
